// Passive device observer wiring serve control loops to device signals
// (library hq_serve).
//
// HtoD queue wait/service pairs feed the overload controller, and injected
// copy stalls are attributed (via the op's owning app) to the app's class
// breaker. One instance watches one device; the single-device Service and
// each shard of the fleet serving layer (src/fleet) attach their own.
//
// Like every DeviceObserver, the signals observer never mutates device
// state, so attaching it is zero-perturbation: the simulated schedule and
// trace::digest are bit-identical with or without it.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <set>
#include <vector>

#include "fault/breaker.hpp"
#include "gpusim/observer.hpp"
#include "serve/controller.hpp"
#include "serve/service.hpp"

namespace hq::serve {

class ServeSignals final : public gpu::DeviceObserver {
 public:
  /// `jobs` maps app ids (= job ids) to their class; `breakers` holds one
  /// breaker per class (empty or nullptr disables attribution).
  ServeSignals(OverloadController* controller,
               std::deque<JobRecord>* jobs,
               std::vector<std::unique_ptr<fault::CircuitBreaker>>* breakers)
      : controller_(controller), jobs_(jobs), breakers_(breakers) {}

  void on_copy_enqueued(TimeNs now, gpu::CopyDirection dir, gpu::OpId op,
                        gpu::StreamId /*stream*/, std::int32_t /*app*/,
                        Bytes /*bytes*/) override {
    if (dir == gpu::CopyDirection::HtoD) enqueued_[op] = now;
  }

  void on_copy_served(TimeNs now, gpu::CopyDirection dir, gpu::OpId op,
                      std::int32_t app, TimeNs begin, TimeNs end,
                      Bytes /*bytes*/) override {
    if (dir == gpu::CopyDirection::HtoD) {
      const auto it = enqueued_.find(op);
      if (it != enqueued_.end()) {
        const DurationNs wait = begin - it->second;
        const DurationNs service = end - begin;
        enqueued_.erase(it);
        if (controller_ != nullptr) {
          controller_->observe_htod(now, wait, service);
        }
      }
    }
    const auto stalled = stalled_.find(op);
    if (stalled != stalled_.end()) {
      stalled_.erase(stalled);
      if (app >= 0 && breakers_ != nullptr && !breakers_->empty() &&
          static_cast<std::size_t>(app) < jobs_->size()) {
        const std::size_t klass = (*jobs_)[static_cast<std::size_t>(app)].klass;
        (*breakers_)[klass]->record_failure(now);
      }
    }
  }

  void on_fault_injected(TimeNs /*now*/, gpu::ObservedFault kind,
                         std::uint64_t key, DurationNs /*penalty*/) override {
    if (kind == gpu::ObservedFault::CopyStall) stalled_.insert(key);
  }

 private:
  OverloadController* controller_;
  std::deque<JobRecord>* jobs_;
  std::vector<std::unique_ptr<fault::CircuitBreaker>>* breakers_;
  std::map<gpu::OpId, TimeNs> enqueued_;
  std::set<std::uint64_t> stalled_;
};

}  // namespace hq::serve
