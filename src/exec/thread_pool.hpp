// Bounded-concurrency job engine (library hq_exec).
//
// Every figure sweep, fuzz iteration, and adaptive-scheduler probe in this
// repo is an independent, fully deterministic Harness::run; the pool fans
// those runs out over OS threads. Determinism is preserved by a single rule
// enforced by the callers (parallel_map, SweepRunner, Fuzzer): results are
// keyed by submission index, never by completion order, so any aggregate
// built from them is byte-identical at any thread count.
//
// The pool itself is a fixed set of workers pulling from one FIFO queue —
// jobs here are whole simulations (milliseconds to seconds), so queue
// contention is irrelevant and a work-stealing deque would buy nothing.
#pragma once

#include <atomic>
#include <deque>
#include <functional>
#include <thread>
#include <type_traits>
#include <vector>

#include "exec/future.hpp"

namespace hq::exec {

class ThreadPool {
 public:
  /// Usable hardware parallelism; at least 1 even when the runtime cannot
  /// tell (std::thread::hardware_concurrency() may return 0).
  static int hardware_jobs();

  /// Spawns `threads` workers (>= 1).
  explicit ThreadPool(int threads);

  /// Cancels all queued-but-unstarted jobs, then joins the workers. Jobs
  /// already executing run to completion.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int size() const { return static_cast<int>(workers_.size()); }

  /// Enqueues fn for execution and returns the Future observing it. fn must
  /// be invocable with no arguments and return non-void.
  template <typename F>
  auto submit(F&& fn) -> Future<std::invoke_result_t<std::decay_t<F>&>> {
    using R = std::invoke_result_t<std::decay_t<F>&>;
    static_assert(!std::is_void_v<R>,
                  "submit() needs a value-returning job; return a small "
                  "struct or a bool for effect-only work");
    auto state = std::make_shared<detail::SharedState<R>>();
    enqueue(QueuedJob{
        [state, fn = std::forward<F>(fn)]() mutable {
          try {
            state->set_value(fn());
          } catch (...) {
            state->set_error(std::current_exception());
          }
        },
        [state] { state->set_cancelled(); }});
    return Future<R>(state);
  }

  /// Discards every queued job that no worker has started; their futures
  /// throw CancelledError from get(). In-flight jobs are unaffected.
  void cancel_pending();

  /// Blocks until the queue is empty and every worker is idle.
  void wait_idle();

  /// Jobs a worker has picked up for execution since startup (cancelled
  /// jobs never count). Incremented before the job runs, so once a job's
  /// future is ready its pickup is already visible here.
  std::size_t jobs_executed() const { return executed_.load(); }

 private:
  struct QueuedJob {
    std::function<void()> run;
    std::function<void()> abandon;  ///< settles the future as cancelled
  };

  void enqueue(QueuedJob job);
  void worker_loop();

  mutable std::mutex mutex_;
  std::condition_variable cv_;        ///< wakes workers
  std::condition_variable idle_cv_;   ///< wakes wait_idle
  std::deque<QueuedJob> queue_;
  int active_ = 0;                    ///< jobs currently executing
  bool shutting_down_ = false;
  std::atomic<std::size_t> executed_{0};
  std::vector<std::thread> workers_;  ///< last member: started after state
};

}  // namespace hq::exec
