// Deterministic stress: large mixed workloads through every code path at
// once (all seven applications, both transfer modes, chunking, priorities,
// streaming) — verifying conservation invariants rather than exact values.
#include <gtest/gtest.h>

#include <map>

#include "hyperq/harness.hpp"
#include "hyperq/schedule.hpp"
#include "hyperq/streaming.hpp"
#include "rodinia/registry.hpp"

namespace hq::fw {
namespace {

TEST(StressTest, SixtyFourMixedAppsCompleteConsistently) {
  HarnessConfig config;
  config.num_streams = 32;
  config.monitor_power = true;
  config.power_period = 5 * kMillisecond;
  config.sensor.noise_stddev = 0.0;

  rodinia::AppParams square = {64, 2, 1};
  rodinia::AppParams nn_params = {4000, std::nullopt, 2};
  rodinia::AppParams path_params = {2000, 30, 3};

  std::vector<WorkloadItem> workload;
  std::map<std::string, int> expected_kernels;
  const auto& names = rodinia::app_names();
  for (int i = 0; i < 64; ++i) {
    const std::string& name = names[i % names.size()];
    rodinia::AppParams params = square;
    if (name == "nn") params = nn_params;
    if (name == "pathfinder") params = path_params;
    workload.push_back(rodinia::make_app(name, params));
  }

  Harness harness(config);
  const auto result = harness.run(workload);

  EXPECT_EQ(result.apps.size(), 64u);
  for (const auto& app : result.apps) {
    EXPECT_GT(app.end_time, 0u) << app.app_id << " " << app.type;
    EXPECT_LE(app.end_time, result.phase_end);
  }
  // Byte conservation: device counters equal the sum of app declarations.
  Bytes expected_htod = 0, expected_dtoh = 0;
  for (const auto& app : result.apps) {
    expected_htod += app.htod_bytes;
    expected_dtoh += app.dtoh_bytes;
  }
  EXPECT_EQ(result.device_stats.bytes_htod, expected_htod);
  EXPECT_EQ(result.device_stats.bytes_dtoh, expected_dtoh);
  EXPECT_GT(result.device_stats.kernels_completed, 64u);
  EXPECT_GT(result.energy_exact, 0.0);

  // Determinism at scale.
  Harness harness2(config);
  const auto again = harness2.run(workload);
  EXPECT_EQ(again.makespan, result.makespan);
  EXPECT_EQ(again.trace->size(), result.trace->size());
}

TEST(StressTest, ChunkedFunctionalWorkloadStaysCorrect) {
  // Chunking changes transfer granularity; functional verification proves
  // the data still arrives intact under heavy interleaving.
  HarnessConfig config;
  config.num_streams = 8;
  config.functional = true;
  config.transfer_chunk_bytes = 4 * kKiB;
  config.monitor_power = false;
  config.launch_stagger = kMicrosecond;

  rodinia::AppParams square = {32, 2, 7};
  std::vector<WorkloadItem> workload;
  for (int i = 0; i < 8; ++i) {
    workload.push_back(
        rodinia::make_app(i % 2 == 0 ? "needle" : "srad", square));
  }
  Harness harness(config);
  const auto result = harness.run(workload);
  EXPECT_TRUE(result.all_verified);
  // 4 KiB chunks of ~4.3 KiB (needle 33x33 ints) and 4 KiB planes (srad
  // 32x32 floats): more HtoD transactions than buffers.
  EXPECT_GT(result.device_stats.copies_htod, 12u);
}

TEST(StressTest, StreamingUnderSustainedOverload) {
  StreamingHarness::Config config;
  config.window = 30 * kMillisecond;
  config.mean_interarrival = 100 * kMicrosecond;  // heavy overload
  config.num_streams = 4;
  rodinia::AppParams square = {64, 2, 5};
  config.mix = {rodinia::make_app("needle", square),
                rodinia::make_app("srad", square),
                rodinia::make_app("hotspot", square)};
  const auto result = StreamingHarness(config).run();
  EXPECT_GT(result.admitted, 100);
  EXPECT_EQ(result.completed, result.admitted);
  EXPECT_GT(result.average_occupancy, 0.0);
  // Under overload, p95 turnaround far exceeds the mean service time.
  EXPECT_GT(result.p95_turnaround, result.mean_turnaround);
}

TEST(StressTest, FermiModeHandlesLargeMixedWorkloads) {
  HarnessConfig config;
  config.device = gpu::DeviceSpec::fermi_single_queue();
  config.num_streams = 16;
  config.monitor_power = false;
  rodinia::AppParams square = {64, 2, 11};
  std::vector<WorkloadItem> workload;
  for (int i = 0; i < 32; ++i) {
    workload.push_back(
        rodinia::make_app(i % 2 == 0 ? "gaussian" : "needle", square));
  }
  Harness harness(config);
  const auto result = harness.run(workload);
  EXPECT_EQ(result.apps.size(), 32u);
  EXPECT_GT(result.makespan, 0u);
}

}  // namespace
}  // namespace hq::fw
