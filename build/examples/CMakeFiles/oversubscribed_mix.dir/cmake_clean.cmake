file(REMOVE_RECURSE
  "CMakeFiles/oversubscribed_mix.dir/oversubscribed_mix.cpp.o"
  "CMakeFiles/oversubscribed_mix.dir/oversubscribed_mix.cpp.o.d"
  "oversubscribed_mix"
  "oversubscribed_mix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oversubscribed_mix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
