# Empty compiler generated dependencies file for memory_contention.
# This may be replaced when dependencies are built.
