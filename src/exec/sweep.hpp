// Declarative experiment sweeps (library hq_sweep).
//
// A SweepGrid names the axes of an experiment — application sets x NA x NS
// x launch order x memory-sync x shuffle seed — and SweepRunner fans the
// cross product out over a thread pool, each point an independent
// Harness::run. The determinism contract:
//
//   * expand() enumerates points in fixed row-major axis order, assigning
//     each a submission index;
//   * results are returned (and the progress callback fired) in submission
//     index order, never completion order;
//   * each point's simulation is seeded only by its own grid coordinates;
//
// so the outcome vector, every digest in it, and any report rendered from
// it are byte-identical at any `jobs` count. Proven by tests/exec and
// re-checked on every bench_sweep run.
#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <span>
#include <string>
#include <vector>

#include "hyperq/harness.hpp"
#include "hyperq/schedule.hpp"
#include "rodinia/registry.hpp"

namespace hq::exec {

/// Axes of a sweep. The cross product of all vectors is run; every vector
/// must be non-empty.
struct SweepGrid {
  /// Each entry is one workload mix: 1+ registered application type names.
  /// NA instances are split evenly across the entry's types (remainder to
  /// the later types, matching the figure benches).
  std::vector<std::vector<std::string>> app_sets;
  std::vector<int> na = {8};
  std::vector<int> ns = {8};
  std::vector<fw::Order> orders = {fw::Order::NaiveFifo};
  std::vector<bool> memory_sync = {false};
  /// Shuffle seeds (only Order::RandomShuffle consumes them, but every
  /// point is keyed by one for uniform labelling).
  std::vector<std::uint64_t> seeds = {42};

  /// Template for per-point harness configs; num_streams and memory_sync
  /// are overwritten from the point's coordinates.
  fw::HarnessConfig base;
  /// Application parameters, shared by every type in every set.
  rodinia::AppParams params;
};

/// One point of the cross product, with its deterministic submission index.
struct SweepPoint {
  std::size_t index = 0;
  std::vector<std::string> apps;
  int na = 0;
  int ns = 0;
  fw::Order order = fw::Order::NaiveFifo;
  bool memory_sync = false;
  std::uint64_t seed = 0;

  /// Instance counts per app type (even split, remainder to later types).
  std::vector<int> counts() const;
  /// Compact human-readable coordinates, e.g. "gaussian+nn na=8 ns=4 ...".
  std::string label() const;
};

/// Scalar results of one point — everything the aggregate reports need,
/// with the heavyweight trace reduced to its digest inside the worker.
struct SweepOutcome {
  SweepPoint point;
  DurationNs makespan = 0;
  Joules energy_exact = 0;
  Watts average_power = 0;
  Watts peak_power = 0;
  double average_occupancy = 0;
  std::uint64_t trace_digest = 0;
  bool all_verified = true;
  /// Telemetry aggregates (filled when grid.base.collect_telemetry; zero
  /// otherwise). Mean Le is the Figure-6 quantity; the interleave totals
  /// sum the foreign-transfer attribution over all apps of the point; the
  /// peak depth is the deepest the HtoD copy queue ever got.
  double mean_htod_latency_ns = 0;
  std::uint64_t htod_interleave_count = 0;
  Bytes htod_interleave_bytes = 0;
  double peak_copy_queue_depth_htod = 0;
  /// Fault accounting (zero without a fault plan): total injected fault
  /// events and the number of apps the recovery layer quarantined.
  std::uint64_t faults_injected = 0;
  std::uint64_t quarantined_apps = 0;
};

class SweepRunner {
 public:
  struct Options {
    /// Worker threads; 1 = serial (no pool), 0 = ThreadPool::hardware_jobs().
    int jobs = 1;
    /// Fired once per point **in submission order** with (outcome, done,
    /// total); `done` counts points reported so far, including this one.
    std::function<void(const SweepOutcome&, std::size_t, std::size_t)>
        progress;
    /// Crash-safe checkpoint file (see exec/journal.hpp): every finished
    /// point is appended and flushed, so an interrupted sweep can be
    /// resumed. Empty = no journal.
    std::string journal_path;
    /// Replay finished points from journal_path and run only the missing
    /// ones; the resumed outcome vector (and any report rendered from it)
    /// is byte-identical to an uninterrupted run. Throws hq::Error when the
    /// journal belongs to a different grid.
    bool resume = false;
  };

  /// Enumerates the grid's cross product in row-major order (app_sets
  /// outermost, seeds innermost).
  static std::vector<SweepPoint> expand(const SweepGrid& grid);

  /// Runs one point: builds the schedule and workload from the point's
  /// coordinates and executes a fresh harness. Thread-safe.
  static SweepOutcome run_point(const SweepGrid& grid, const SweepPoint& point);

  /// Runs the whole grid with bounded concurrency; outcomes are indexed by
  /// submission order.
  std::vector<SweepOutcome> run(const SweepGrid& grid,
                                const Options& options) const;
  /// Serial convenience overload (jobs = 1, no progress callback).
  std::vector<SweepOutcome> run(const SweepGrid& grid) const {
    return run(grid, Options{});
  }
};

/// Order-insensitive-input, order-fixed-output 64-bit digest over the
/// outcome vector (digests + makespans + energies, in index order). Equal
/// digests across job counts are the cheap byte-identity witness.
std::uint64_t combined_digest(std::span<const SweepOutcome> outcomes);

/// Renders the deterministic aggregate table + summary footer. Two sweeps
/// of the same grid must produce byte-identical reports at any job count.
std::string render_report(std::span<const SweepOutcome> outcomes);

/// Versioned per-point aggregate metrics JSON ({"schema_version", "points",
/// "combined_digest"}). Outcomes are emitted in submission-index order and
/// doubles in shortest round-trip form, so the bytes are identical at any
/// job count — the property the CI determinism check diffs.
void write_sweep_metrics_json(std::ostream& os,
                              std::span<const SweepOutcome> outcomes);
std::string sweep_metrics_json(std::span<const SweepOutcome> outcomes);

}  // namespace hq::exec
