
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/power_study.cpp" "examples/CMakeFiles/power_study.dir/power_study.cpp.o" "gcc" "examples/CMakeFiles/power_study.dir/power_study.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/rodinia/CMakeFiles/hq_rodinia.dir/DependInfo.cmake"
  "/root/repo/build/src/hyperq/CMakeFiles/hq_framework.dir/DependInfo.cmake"
  "/root/repo/build/src/cudart/CMakeFiles/hq_cudart.dir/DependInfo.cmake"
  "/root/repo/build/src/nvml/CMakeFiles/hq_nvml.dir/DependInfo.cmake"
  "/root/repo/build/src/gpusim/CMakeFiles/hq_gpusim.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/hq_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/hq_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/hq_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
