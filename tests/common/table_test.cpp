#include "common/table.hpp"

#include <gtest/gtest.h>

#include "common/check.hpp"

namespace hq {
namespace {

TEST(TextTableTest, RendersAlignedColumns) {
  TextTable t;
  t.set_header({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"b", "22222"});
  const std::string out = t.render();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("22222"), std::string::npos);
  // Header separator present.
  EXPECT_NE(out.find("---"), std::string::npos);
}

TEST(TextTableTest, RowArityMismatchThrows) {
  TextTable t;
  t.set_header({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), Error);
}

TEST(TextTableTest, SeparatorRows) {
  TextTable t;
  t.set_header({"x"});
  t.add_row({"1"});
  t.add_separator();
  t.add_row({"2"});
  const std::string out = t.render();
  // Two separators: one under the header, one explicit.
  std::size_t count = 0;
  for (std::size_t pos = out.find("--"); pos != std::string::npos;
       pos = out.find("--", pos + 1)) {
    ++count;
  }
  EXPECT_GE(count, 2u);
}

TEST(TextTableTest, NoHeaderWorks) {
  TextTable t;
  t.add_row({"a", "b", "c"});
  EXPECT_EQ(t.row_count(), 1u);
  EXPECT_NE(t.render().find("a"), std::string::npos);
}

TEST(FormatTest, FormatFixed) {
  EXPECT_EQ(format_fixed(3.14159, 2), "3.14");
  EXPECT_EQ(format_fixed(-1.0, 1), "-1.0");
  EXPECT_EQ(format_fixed(2.0, 0), "2");
}

TEST(FormatTest, FormatPercent) {
  EXPECT_EQ(format_percent(0.318), "+31.8%");
  EXPECT_EQ(format_percent(-0.104), "-10.4%");
  EXPECT_EQ(format_percent(0.0), "+0.0%");
  EXPECT_EQ(format_percent(0.25, 0), "+25%");
}

}  // namespace
}  // namespace hq
