#include "serve/streaming.hpp"

#include "common/check.hpp"
#include "serve/service.hpp"

namespace hq::fw {

void StreamingHarness::Config::validate() const {
  HQ_CHECK_MSG(!mix.empty(), "streaming mix must not be empty");
  HQ_CHECK_MSG(window > 0, "streaming config: window must be positive");
  HQ_CHECK_MSG(mean_interarrival > 0,
               "streaming config: mean_interarrival must be positive");
  HQ_CHECK_MSG(num_streams >= 1,
               "streaming config: num_streams must be >= 1, got "
                   << num_streams);
}

StreamingHarness::Result StreamingHarness::run() {
  config_.validate();

  serve::ServiceConfig service_config;
  service_config.device = config_.device;
  service_config.num_streams = config_.num_streams;
  service_config.memory_sync = config_.memory_sync;
  service_config.functional = config_.functional;
  service_config.window = config_.window;
  service_config.mean_interarrival = config_.mean_interarrival;
  service_config.seed = config_.seed;
  service_config.classes.reserve(config_.mix.size());
  for (const WorkloadItem& item : config_.mix) {
    service_config.classes.push_back({item, 0});
  }
  // Every overload feature off: the service is then schedule-identical to
  // the original StreamingHarness (same RNG draws, same spawn order).
  service_config.collect_metrics = false;

  serve::Service service(std::move(service_config));
  const serve::ServeResult serve_result = service.run();
  const serve::ServeReport& report = serve_result.report;

  Result result;
  result.admitted = static_cast<int>(report.arrived);
  result.completed = static_cast<int>(report.completed);
  result.throughput_per_sec = report.throughput_per_sec;
  result.mean_turnaround = report.mean_turnaround;
  result.p95_turnaround = report.p95_turnaround;
  result.max_turnaround = report.max_turnaround;
  result.total_time = report.total_time;
  result.energy = report.energy;
  result.energy_per_task = report.energy_per_completed;
  result.average_occupancy = report.average_occupancy;
  result.trace_digest = report.trace_digest;
  return result;
}

}  // namespace hq::fw
