#include "trace/chrome_trace.hpp"

#include <charconv>
#include <ostream>
#include <sstream>
#include <string_view>

namespace hq::trace {
namespace {

/// Shortest round-trip decimal form (std::to_chars), so rendered output is
/// byte-identical across runs and toolchain locales — stream operator<<
/// would round to 6 significant digits and honour global precision state.
void write_double(std::ostream& os, double v) {
  char buf[64];
  const auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), v);
  os.write(buf, ptr - buf);
  (void)ec;
}

void write_escaped(std::ostream& os, std::string_view s) {
  for (char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          // Control characters are not expected in span names; drop them.
          break;
        }
        os << c;
    }
  }
}

}  // namespace

void write_chrome_trace(const Recorder& recorder, std::ostream& os) {
  write_chrome_trace(recorder, {}, os);
}

void write_chrome_trace(const Recorder& recorder,
                        const std::vector<CounterTrack>& counters,
                        std::ostream& os) {
  os << "[";
  bool first = true;
  for (const Span& s : recorder.spans()) {
    if (!first) os << ",";
    first = false;
    os << "\n  {\"name\": \"";
    write_escaped(os, recorder.name_of(s.name));
    os << "\", \"cat\": \"" << span_kind_name(s.kind) << "\""
       << ", \"ph\": \"X\""
       << ", \"ts\": " << static_cast<double>(s.begin) / 1e3
       << ", \"dur\": " << static_cast<double>(s.duration()) / 1e3
       << ", \"pid\": 0"
       << ", \"tid\": " << s.lane << ", \"args\": {\"app\": " << s.app_id
       << "}}";
  }
  for (const CounterTrack& track : counters) {
    for (const CounterPoint& p : track.points) {
      if (!first) os << ",";
      first = false;
      os << "\n  {\"name\": \"";
      write_escaped(os, track.name);
      os << "\", \"ph\": \"C\", \"ts\": ";
      write_double(os, static_cast<double>(p.time) / 1e3);
      os << ", \"pid\": 0, \"args\": {\"value\": ";
      write_double(os, p.value);
      os << "}}";
    }
  }
  os << "\n]\n";
}

namespace {

void write_spans(std::ostream& os, const Recorder& recorder, int pid,
                 bool& first) {
  for (const Span& s : recorder.spans()) {
    if (!first) os << ",";
    first = false;
    os << "\n  {\"name\": \"";
    write_escaped(os, recorder.name_of(s.name));
    os << "\", \"cat\": \"" << span_kind_name(s.kind) << "\""
       << ", \"ph\": \"X\""
       << ", \"ts\": " << static_cast<double>(s.begin) / 1e3
       << ", \"dur\": " << static_cast<double>(s.duration()) / 1e3
       << ", \"pid\": " << pid << ", \"tid\": " << s.lane
       << ", \"args\": {\"app\": " << s.app_id << "}}";
  }
}

void write_counters(std::ostream& os,
                    const std::vector<CounterTrack>& counters, int pid,
                    bool& first) {
  for (const CounterTrack& track : counters) {
    for (const CounterPoint& p : track.points) {
      if (!first) os << ",";
      first = false;
      os << "\n  {\"name\": \"";
      write_escaped(os, track.name);
      os << "\", \"ph\": \"C\", \"ts\": ";
      write_double(os, static_cast<double>(p.time) / 1e3);
      os << ", \"pid\": " << pid << ", \"args\": {\"value\": ";
      write_double(os, p.value);
      os << "}}";
    }
  }
}

}  // namespace

void write_chrome_trace(const std::vector<ProcessTrack>& processes,
                        const std::vector<FlowEvent>& flows,
                        std::ostream& os) {
  os << "[";
  bool first = true;
  for (const ProcessTrack& proc : processes) {
    if (!first) os << ",";
    first = false;
    os << "\n  {\"name\": \"process_name\", \"ph\": \"M\", \"pid\": "
       << proc.pid << ", \"args\": {\"name\": \"";
    write_escaped(os, proc.name);
    os << "\"}}";
    if (proc.recorder != nullptr) write_spans(os, *proc.recorder, proc.pid,
                                              first);
    write_counters(os, proc.counters, proc.pid, first);
  }
  for (const FlowEvent& flow : flows) {
    // A start/finish pair bound by id; "bp":"e" attaches the finish to the
    // enclosing slice so viewers draw the arrow into the dispatch span.
    for (const bool start : {true, false}) {
      if (!first) os << ",";
      first = false;
      os << "\n  {\"name\": \"";
      write_escaped(os, flow.name);
      os << "\", \"cat\": \"flow\", \"ph\": \"" << (start ? 's' : 'f')
         << "\"";
      if (!start) os << ", \"bp\": \"e\"";
      os << ", \"id\": " << flow.id << ", \"ts\": ";
      write_double(os,
                   static_cast<double>(start ? flow.from_time : flow.to_time) /
                       1e3);
      os << ", \"pid\": " << (start ? flow.from_pid : flow.to_pid)
         << ", \"tid\": 0}";
    }
  }
  os << "\n]\n";
}

std::string chrome_trace_json(const std::vector<ProcessTrack>& processes,
                              const std::vector<FlowEvent>& flows) {
  std::ostringstream os;
  write_chrome_trace(processes, flows, os);
  return os.str();
}

std::string chrome_trace_json(const Recorder& recorder) {
  return chrome_trace_json(recorder, {});
}

std::string chrome_trace_json(const Recorder& recorder,
                              const std::vector<CounterTrack>& counters) {
  std::ostringstream os;
  write_chrome_trace(recorder, counters, os);
  return os.str();
}

}  // namespace hq::trace
