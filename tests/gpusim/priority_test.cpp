// Stream-priority semantics (Kepler CC 3.5 cudaStreamCreateWithPriority):
// pending blocks of a higher-priority stream place ahead of waiting
// lower-priority kernels, without preempting resident blocks.
#include <gtest/gtest.h>

#include "cudart/runtime.hpp"
#include "gpusim/device.hpp"
#include "sim/simulator.hpp"
#include "trace/trace.hpp"

namespace hq::gpu {
namespace {

KernelLaunch make_kernel(const std::string& name, std::uint32_t blocks,
                         std::uint32_t tpb, DurationNs block_duration) {
  return KernelLaunch{name, Dim3{blocks, 1, 1}, Dim3{tpb, 1, 1},
                      16,   0,                  block_duration,
                      0.0,  nullptr};
}

class PriorityTest : public ::testing::Test {
 protected:
  PriorityTest() : device_(sim_, DeviceSpec::tesla_k20(), &recorder_) {}

  sim::Simulator sim_;
  trace::Recorder recorder_;
  Device device_;
};

TEST_F(PriorityTest, PriorityStoredPerStream) {
  device_.register_stream(0, -1);
  device_.register_stream(1);
  EXPECT_EQ(device_.priority_of(0), -1);
  EXPECT_EQ(device_.priority_of(1), 0);
}

TEST_F(PriorityTest, HighPriorityJumpsPendingQueue) {
  device_.register_stream(0, 0);
  device_.register_stream(1, 0);
  device_.register_stream(2, -1);
  // Saturate the device: 52 blocks of 1024 threads = 2 waves of 26.
  device_.submit_kernel(0, make_kernel("big", 52, 1024, 10 * kMicrosecond), {});
  // A default-priority waiter, then a high-priority kernel submitted later.
  device_.submit_kernel(1, make_kernel("low", 26, 1024, 10 * kMicrosecond), {});
  device_.submit_kernel(2, make_kernel("high", 26, 1024, 10 * kMicrosecond), {});
  sim_.run();

  const auto spans = recorder_.by_kind(trace::SpanKind::Kernel);
  ASSERT_EQ(spans.size(), 3u);
  TimeNs high_start = 0, low_start = 0;
  for (const auto& s : spans) {
    if (recorder_.name_of(s.name) == "high") high_start = s.begin;
    if (recorder_.name_of(s.name) == "low") low_start = s.begin;
  }
  // Both waited behind "big", but the high-priority stream placed first.
  EXPECT_LT(high_start, low_start);
}

TEST_F(PriorityTest, NoPreemptionOfResidentBlocks) {
  device_.register_stream(0, 0);
  device_.register_stream(1, -5);
  device_.submit_kernel(0, make_kernel("resident", 26, 1024, 50 * kMicrosecond),
                        {});
  sim_.run_until(10 * kMicrosecond);  // resident saturates the device
  device_.submit_kernel(1, make_kernel("urgent", 1, 1024, kMicrosecond), {});
  sim_.run();

  const auto spans = recorder_.by_kind(trace::SpanKind::Kernel);
  ASSERT_EQ(spans.size(), 2u);
  const auto& resident = recorder_.name_of(spans[0].name) == "resident" ? spans[0] : spans[1];
  const auto& urgent = recorder_.name_of(spans[0].name) == "urgent" ? spans[0] : spans[1];
  // Urgent cannot start until resident's blocks complete: no preemption.
  EXPECT_GE(urgent.begin, resident.end);
}

TEST_F(PriorityTest, EqualPrioritiesKeepDispatchOrder) {
  device_.register_stream(0, 3);
  device_.register_stream(1, 3);
  device_.submit_kernel(0, make_kernel("first", 26, 1024, 10 * kMicrosecond),
                        {});
  device_.submit_kernel(1, make_kernel("second", 26, 1024, 10 * kMicrosecond),
                        {});
  sim_.run();
  const auto spans = recorder_.by_kind(trace::SpanKind::Kernel);
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_EQ(recorder_.name_of(spans[0].name), "first");
  EXPECT_EQ(recorder_.name_of(spans[1].name), "second");
}

TEST_F(PriorityTest, RuntimeExposesPrioritizedStreams) {
  rt::Runtime runtime(sim_, device_);
  const rt::Stream normal = runtime.stream_create();
  const rt::Stream fast = runtime.stream_create_with_priority(-1);
  EXPECT_EQ(device_.priority_of(normal.id), 0);
  EXPECT_EQ(device_.priority_of(fast.id), -1);
}

TEST_F(PriorityTest, LeftoverStillFillsAroundPriorities) {
  // A high-priority kernel that cannot fully place does not starve a
  // lower-priority kernel whose blocks fit in the leftover space — wait, it
  // does under strict ordering: priority order is strict, like dispatch
  // order. Verify the strictness.
  device_.register_stream(0, 0);
  device_.register_stream(1, -1);
  // Low priority first: 1024-thread blocks, fills device (26 resident).
  device_.submit_kernel(0, make_kernel("low_big", 52, 1024, 10 * kMicrosecond),
                        {});
  // High priority, arrives later, needs more than the leftover: it goes to
  // the FRONT of the pending order and places at the next wave boundary.
  device_.submit_kernel(1, make_kernel("high_big", 26, 1024, 10 * kMicrosecond),
                        {});
  sim_.run();
  const auto spans = recorder_.by_kind(trace::SpanKind::Kernel);
  ASSERT_EQ(spans.size(), 2u);
  TimeNs low_end = 0, high_end = 0;
  for (const auto& s : spans) {
    if (recorder_.name_of(s.name) == "low_big") low_end = s.end;
    if (recorder_.name_of(s.name) == "high_big") high_end = s.end;
  }
  // The high-priority kernel finishes before the low one's second wave
  // completes is impossible (no preemption), but it must finish no later
  // than the low kernel plus one wave.
  EXPECT_LE(high_end, low_end + 10 * kMicrosecond);
}

}  // namespace
}  // namespace hq::gpu
