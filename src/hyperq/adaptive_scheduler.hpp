// Adaptive schedule search (the paper's envisioned future-work Scheduler
// class, Section III-E / VI: "a separate Scheduler class ... which can
// dynamically modify the schedule and adjust queue orders to optimize on
// different objectives", "learning algorithms capable of proposing dynamic
// reordering of the task queue").
//
// The search is a deterministic stochastic local search over launch orders:
// it scores the five canonical orderings first, then spends the remaining
// evaluation budget on random pairwise swaps of the incumbent (accepting
// improvements). The objective is a caller-provided evaluator — typically a
// full simulated harness run returning makespan or energy — so the same
// optimizer serves both of the paper's optimization targets.
#pragma once

#include <functional>
#include <span>
#include <vector>

#include "common/rng.hpp"
#include "exec/thread_pool.hpp"
#include "hyperq/schedule.hpp"

namespace hq::fw {

class AdaptiveScheduler {
 public:
  struct Options {
    /// Total number of schedule evaluations (>= 5; the canonical orders are
    /// always scored first).
    int evaluation_budget = 25;
    std::uint64_t seed = 1;
    /// Number of swap proposals generated per hill-climbing round. Every
    /// proposal in a round derives from the same incumbent, so rounds can be
    /// evaluated concurrently; acceptance scans the round in submission
    /// order. The search trajectory depends on (seed, budget, batch) only —
    /// never on the thread count. batch == 1 is the paper's serial greedy
    /// climb, bit for bit.
    int proposal_batch = 1;
    /// Evaluates canonical orders and proposal rounds concurrently when set
    /// (the evaluator must then be thread-safe — a fresh Harness::run is).
    /// Null = serial evaluation. Results are identical either way.
    exec::ThreadPool* pool = nullptr;
  };

  /// Scores a schedule; lower is better (e.g. makespan in ns, energy in J).
  using Evaluator = std::function<double(const std::vector<Slot>&)>;

  struct Outcome {
    std::vector<Slot> best_schedule;
    double best_score = 0.0;
    /// Best canonical order (the paper's five), for comparison.
    Order best_canonical = Order::NaiveFifo;
    double best_canonical_score = 0.0;
    int evaluations = 0;
    /// Best-so-far score after each evaluation (monotone non-increasing).
    std::vector<double> history;
  };

  AdaptiveScheduler() = default;
  explicit AdaptiveScheduler(Options options) : options_(options) {}

  /// Searches launch orders for `counts[t]` instances of each type.
  Outcome optimize(std::span<const int> counts, const Evaluator& evaluate);

 private:
  Options options_{};
};

}  // namespace hq::fw
