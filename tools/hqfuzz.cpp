// hqfuzz — differential / metamorphic fuzzer for the Hyper-Q simulator.
//
// Generates seeded random workloads, runs each under several scheduling
// configurations (Hyper-Q, serialized, Fermi single-queue) with the online
// invariant checker attached, and validates the metamorphic oracles
// described in check/fuzzer.hpp. Exit code 0 = every iteration clean.
//
// Examples:
//   hqfuzz --seed 1 --iters 100
//   hqfuzz --seed 1 --iters 300 --jobs 0      (all hardware threads,
//                                              identical output to --jobs 1)
//   hqfuzz --case-seed 1234567890 --verbose   (replay one failing case)
//   hqfuzz --seed 1 --iters 50 --fault-rate 0.5   (fault-mode oracles on)
//   hqfuzz --seed 1 --iters 0 --serve-iters 50    (serving-mode oracles)
//   hqfuzz --serve-case-seed 99 --verbose         (replay one serve case)
//   hqfuzz --seed 1 --iters 0 --fleet-iters 50    (fleet-mode oracles)
//   hqfuzz --fleet-case-seed 99 --verbose         (replay one fleet case)
//   hqfuzz --seed 1 --iters 0 --fleet-iters 50 --chaos-rate 0.5
//                                                 (device-lifecycle chaos)
//   hqfuzz --fleet-case-seed 99 --chaos-rate 0.5  (replay one chaos case)
//   hqfuzz --seed 1 --iters 0 --fleet-iters 50 --sdc-rate 0.5
//                                                 (SDC integrity oracles)
//   hqfuzz --fleet-case-seed 99 --sdc-rate 0.5    (replay one SDC case)
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <iterator>
#include <optional>
#include <string>

#include "check/fuzzer.hpp"
#include "tools/cli.hpp"

namespace {

// Case seeds are full 64-bit values (Rng::next_u64), so they routinely
// exceed LLONG_MAX; parse them unsigned rather than via ArgParser::get_int.
std::optional<std::uint64_t> parse_u64(const std::string& text) {
  if (text.empty() || text[0] == '-') return std::nullopt;
  errno = 0;
  char* end = nullptr;
  const unsigned long long value = std::strtoull(text.c_str(), &end, 10);
  if (errno != 0 || end == nullptr || *end != '\0') return std::nullopt;
  return static_cast<std::uint64_t>(value);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace hq;
  tools::ArgParser args;
  args.add_option("seed", "master seed; case seeds derive from it", "1");
  args.add_option("iters", "number of fuzz iterations", "100");
  args.add_option("jobs",
                  "worker threads for the iteration loop (0 = all hardware "
                  "threads); output is identical at any job count",
                  "1");
  args.add_option("case-seed",
                  "run exactly one case with this seed (replay mode)", "");
  args.add_option("serve-iters",
                  "serving-mode iterations appended after the harness cases "
                  "(admission/deadline/breaker oracles; 0 = off)",
                  "0");
  args.add_option("serve-case-seed",
                  "run exactly one serving-mode case with this seed", "");
  args.add_option("fleet-iters",
                  "fleet-mode iterations appended after the serving cases "
                  "(single-device equivalence, conservation, placement "
                  "permutation oracles; 0 = off)",
                  "0");
  args.add_option("fleet-case-seed",
                  "run exactly one fleet-mode case with this seed", "");
  args.add_option("chaos-rate",
                  "per-device lifecycle-fault probability in [0,1]; > 0 adds "
                  "the fleet chaos oracles (crash-schedule conservation, "
                  "failover determinism, inert-knob byte identity, "
                  "all-devices-dead drain) to every fleet iteration",
                  "0");
  args.add_option("sdc-rate",
                  "per-device silent-data-corruption probability in [0,1]; "
                  "> 0 adds the SDC integrity oracles (re-execution "
                  "conservation, detected+missed == injected partition, "
                  "inert-plan byte identity, blocklist placement freeze) to "
                  "every fleet iteration",
                  "0");
  args.add_option("fault-rate",
                  "fault-plan intensity in [0,1]; > 0 adds the fault-mode "
                  "oracles (zero-perturbation, faulted determinism, "
                  "functional digest equality) to every case",
                  "0");
  args.add_flag("verbose", "print every case as it runs");
  args.add_flag("help", "show this help");

  if (!args.parse(argc, argv) || args.get_flag("help")) {
    if (!args.error().empty()) {
      std::fprintf(stderr, "error: %s\n", args.error().c_str());
    }
    std::fprintf(stderr, "%s", args.usage("hqfuzz").c_str());
    return args.get_flag("help") ? 0 : 2;
  }

  double fault_rate = 0.0;
  {
    errno = 0;
    char* end = nullptr;
    const std::string text = args.get("fault-rate");
    fault_rate = std::strtod(text.c_str(), &end);
    if (errno != 0 || end == nullptr || *end != '\0' || fault_rate < 0.0 ||
        fault_rate > 1.0) {
      std::fprintf(stderr, "error: --fault-rate needs a number in [0,1]\n");
      return 2;
    }
  }

  double chaos_rate = 0.0;
  {
    errno = 0;
    char* end = nullptr;
    const std::string text = args.get("chaos-rate");
    chaos_rate = std::strtod(text.c_str(), &end);
    if (errno != 0 || end == nullptr || *end != '\0' || chaos_rate < 0.0 ||
        chaos_rate > 1.0) {
      std::fprintf(stderr, "error: --chaos-rate needs a number in [0,1]\n");
      return 2;
    }
  }

  double sdc_rate = 0.0;
  {
    errno = 0;
    char* end = nullptr;
    const std::string text = args.get("sdc-rate");
    sdc_rate = std::strtod(text.c_str(), &end);
    if (errno != 0 || end == nullptr || *end != '\0' || sdc_rate < 0.0 ||
        sdc_rate > 1.0) {
      std::fprintf(stderr, "error: --sdc-rate needs a number in [0,1]\n");
      return 2;
    }
  }

  if (args.provided("fleet-case-seed")) {
    const auto case_seed = parse_u64(args.get("fleet-case-seed"));
    if (!case_seed) {
      std::fprintf(stderr,
                   "error: --fleet-case-seed needs an unsigned integer\n");
      return 2;
    }
    std::string summary;
    auto problems = check::Fuzzer::run_fleet_case(*case_seed, &summary);
    if (chaos_rate > 0) {
      std::string chaos_summary;
      auto chaos = check::Fuzzer::run_fleet_chaos_case(*case_seed, chaos_rate,
                                                       &chaos_summary);
      summary = std::move(chaos_summary);
      problems.insert(problems.end(),
                      std::make_move_iterator(chaos.begin()),
                      std::make_move_iterator(chaos.end()));
    }
    if (sdc_rate > 0) {
      std::string sdc_summary;
      auto sdc = check::Fuzzer::run_fleet_sdc_case(*case_seed, sdc_rate,
                                                   &sdc_summary);
      summary = std::move(sdc_summary);
      problems.insert(problems.end(),
                      std::make_move_iterator(sdc.begin()),
                      std::make_move_iterator(sdc.end()));
    }
    std::printf("case %s\n", summary.c_str());
    for (const auto& p : problems) std::printf("  - %s\n", p.c_str());
    std::printf("%s\n", problems.empty() ? "clean" : "FAILED");
    return problems.empty() ? 0 : 1;
  }

  if (args.provided("serve-case-seed")) {
    const auto case_seed = parse_u64(args.get("serve-case-seed"));
    if (!case_seed) {
      std::fprintf(stderr,
                   "error: --serve-case-seed needs an unsigned integer\n");
      return 2;
    }
    std::string summary;
    const auto problems = check::Fuzzer::run_serve_case(*case_seed, &summary);
    std::printf("case %s\n", summary.c_str());
    for (const auto& p : problems) std::printf("  - %s\n", p.c_str());
    std::printf("%s\n", problems.empty() ? "clean" : "FAILED");
    return problems.empty() ? 0 : 1;
  }

  if (args.provided("case-seed")) {
    const auto case_seed = parse_u64(args.get("case-seed"));
    if (!case_seed) {
      std::fprintf(stderr, "error: --case-seed needs an unsigned integer\n");
      return 2;
    }
    std::string summary;
    const auto problems =
        check::Fuzzer::run_case(*case_seed, fault_rate, &summary);
    std::printf("case %s\n", summary.c_str());
    for (const auto& p : problems) std::printf("  - %s\n", p.c_str());
    std::printf("%s\n", problems.empty() ? "clean" : "FAILED");
    return problems.empty() ? 0 : 1;
  }

  const auto seed = parse_u64(args.get("seed"));
  const auto iters = args.get_int("iters");
  const auto serve_iters = args.get_int("serve-iters");
  const auto fleet_iters = args.get_int("fleet-iters");
  const auto jobs = args.get_int("jobs");
  if (!seed || !iters || *iters < 0 || !serve_iters || *serve_iters < 0 ||
      !fleet_iters || *fleet_iters < 0 || !jobs || *jobs < 0) {
    std::fprintf(stderr,
                 "error: bad --seed/--iters/--serve-iters/--fleet-iters/"
                 "--jobs\n");
    return 2;
  }
  if (*iters == 0 && *serve_iters == 0 && *fleet_iters == 0) {
    std::fprintf(stderr,
                 "error: need --iters, --serve-iters, or --fleet-iters > 0\n");
    return 2;
  }

  check::FuzzOptions options;
  options.seed = *seed;
  options.iterations = static_cast<int>(*iters);
  options.serve_iterations = static_cast<int>(*serve_iters);
  options.fleet_iterations = static_cast<int>(*fleet_iters);
  options.jobs = static_cast<int>(*jobs);
  options.fault_rate = fault_rate;
  options.chaos_rate = chaos_rate;
  options.sdc_rate = sdc_rate;
  const bool verbose = args.get_flag("verbose");

  check::Fuzzer fuzzer(options);
  const auto report = fuzzer.run(
      [verbose](int i, std::uint64_t case_seed, const std::string& summary,
                bool clean) {
        if (verbose) {
          std::printf("[%4d] %s: %s\n", i, clean ? "ok" : "FAIL",
                      summary.c_str());
        } else if (!clean) {
          std::printf("[%4d] FAIL seed=%llu\n", i,
                      static_cast<unsigned long long>(case_seed));
        }
      });

  std::printf("%s\n", report.to_string().c_str());
  return report.ok() ? 0 : 1;
}
