// Ablation (ours) — dual per-direction DMA engines (Tesla K20, the paper's
// testbed) vs a single shared copy engine (GeForce-class parts).
//
// The paper's Section III-B observes that "GPU execution can be parallelized
// among transfers in different direction, i.e. overlap HtoD transfer with
// DtoH transfers". This ablation quantifies how much of the concurrent
// pipeline depends on that: with one shared engine, DtoH read-backs contend
// with the next applications' HtoD transfers.
#include <cstdio>

#include "bench/common.hpp"
#include "common/stats.hpp"

int main() {
  using namespace hq;
  using namespace hq::bench;

  print_header("Ablation",
               "dual per-direction DMA engines (K20) vs a single shared "
               "copy engine, NA = NS = 16");

  const gpu::DeviceSpec single = gpu::DeviceSpec::single_copy_engine();
  RunningStats advantage;
  TextTable table;
  table.set_header({"pair", "single engine", "dual engines (K20)",
                    "dual-engine advantage"});
  for (const Pair& pair : hetero_pairs()) {
    const auto one =
        run_pair(pair, 16, 16, fw::Order::NaiveFifo, false, 0, 42, &single);
    const auto two = run_pair(pair, 16, 16);
    const double adv = fw::improvement(static_cast<double>(one.makespan),
                                       static_cast<double>(two.makespan));
    advantage.add(adv);
    table.add_row({pair.label(), format_duration(one.makespan),
                   format_duration(two.makespan), format_percent(adv)});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("dual-engine advantage: avg %s, max %s\n",
              format_percent(advantage.mean()).c_str(),
              format_percent(advantage.max()).c_str());
  std::printf("(these workloads read back little data, so the advantage is "
              "modest — exactly why the paper's contention story centres on "
              "the HtoD engine)\n");
  return 0;
}
