#include "hyperq/streaming.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"
#include "common/stats.hpp"

namespace hq::fw {

struct StreamingHarness::RunState {
  const Config* config = nullptr;
  sim::Simulator* sim = nullptr;
  gpu::Device* device = nullptr;
  rt::Runtime* runtime = nullptr;
  StreamManager* manager = nullptr;
  sim::Mutex* htod_lock = nullptr;
  sim::Event* drained = nullptr;
  Rng* rng = nullptr;

  struct Task {
    std::unique_ptr<Kernel> app;
    Context context;
    TimeNs admitted_at = 0;
    TimeNs completed_at = 0;
  };
  /// Deque: element addresses stay stable as new tasks are admitted.
  std::deque<Task>* tasks = nullptr;

  bool admission_closed = false;
  int outstanding = 0;

  void maybe_finish() {
    if (admission_closed && outstanding == 0 && !drained->fired()) {
      drained->fire();
    }
  }
};

sim::Task StreamingHarness::task_lifecycle(RunState* st, int index) {
  RunState::Task& task = (*st->tasks)[static_cast<std::size_t>(index)];
  Kernel& app = *task.app;
  Context& ctx = task.context;

  // Setup is part of the task's turnaround in a streaming service, but is
  // host-side and instantaneous in virtual time (as in the finite harness).
  app.allocateHostMemory(ctx);
  app.allocateDeviceMemory(ctx);
  app.initializeHostMemory(ctx);

  ctx.stream = st->manager->acquire();
  if (st->config->memory_sync) {
    auto guard = co_await st->htod_lock->scoped_lock();
    co_await app.transferMemory(ctx, Direction::HostToDevice);
    guard.reset();
  } else {
    co_await app.transferMemory(ctx, Direction::HostToDevice);
  }
  co_await app.executeKernel(ctx);
  co_await app.transferMemory(ctx, Direction::DeviceToHost);

  app.freeHostMemory(ctx);
  app.freeDeviceMemory(ctx);
  task.completed_at = st->sim->now();
  --st->outstanding;
  st->maybe_finish();
}

sim::Task StreamingHarness::generator_task(RunState* st) {
  const TimeNs window_end = st->sim->now() + st->config->window;
  while (st->sim->now() < window_end) {
    // Poisson arrivals: exponential inter-arrival times.
    const double u = std::max(st->rng->next_double(), 1e-12);
    const auto gap = static_cast<DurationNs>(
        -std::log(u) * static_cast<double>(st->config->mean_interarrival));
    co_await st->sim->delay(std::max<DurationNs>(gap, 1));
    if (st->sim->now() >= window_end) break;

    const auto pick = st->rng->next_below(st->config->mix.size());
    RunState::Task task;
    task.app = st->config->mix[pick].factory();
    task.admitted_at = st->sim->now();
    task.context.sim = st->sim;
    task.context.runtime = st->runtime;
    task.context.htod_lock = st->htod_lock;
    task.context.app_id = static_cast<int>(st->tasks->size());
    task.context.functional = st->config->functional;
    st->tasks->push_back(std::move(task));

    ++st->outstanding;
    st->sim->spawn(
        task_lifecycle(st, static_cast<int>(st->tasks->size()) - 1));
  }
  st->admission_closed = true;
  st->maybe_finish();
}

StreamingHarness::Result StreamingHarness::run() {
  HQ_CHECK_MSG(!config_.mix.empty(), "streaming mix must not be empty");

  sim::Simulator sim;
  gpu::Device device(sim, config_.device);
  rt::RuntimeOptions rt_options;
  rt_options.functional = config_.functional;
  rt::Runtime runtime(sim, device, rt_options);
  StreamManager manager(runtime, config_.num_streams);
  sim::Mutex htod_lock(sim);
  sim::Event drained(sim);
  Rng rng(config_.seed);
  std::deque<RunState::Task> tasks;

  RunState state;
  state.config = &config_;
  state.sim = &sim;
  state.device = &device;
  state.runtime = &runtime;
  state.manager = &manager;
  state.htod_lock = &htod_lock;
  state.drained = &drained;
  state.rng = &rng;
  state.tasks = &tasks;

  sim.spawn(generator_task(&state));
  sim.run();
  HQ_CHECK_MSG(drained.fired() || tasks.empty(),
               "streaming run ended with tasks outstanding");

  Result result;
  result.admitted = static_cast<int>(tasks.size());
  result.total_time = sim.now();
  result.energy = device.energy();
  result.average_occupancy = device.average_occupancy();

  RunningStats turnaround;
  std::vector<double> samples;
  for (const auto& task : tasks) {
    if (task.completed_at == 0) continue;
    ++result.completed;
    const auto t = static_cast<double>(task.completed_at - task.admitted_at);
    turnaround.add(t);
    samples.push_back(t);
  }
  if (result.completed > 0) {
    result.mean_turnaround = static_cast<DurationNs>(turnaround.mean());
    result.max_turnaround = static_cast<DurationNs>(turnaround.max());
    result.p95_turnaround =
        static_cast<DurationNs>(percentile(std::move(samples), 95));
    result.throughput_per_sec =
        static_cast<double>(result.completed) / to_seconds(result.total_time);
    result.energy_per_task =
        result.energy / static_cast<double>(result.completed);
  }
  return result;
}

}  // namespace hq::fw
