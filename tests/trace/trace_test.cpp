#include "trace/trace.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <type_traits>
#include <utility>

#include "common/check.hpp"
#include "tests/common/json_check.hpp"
#include "trace/ascii_timeline.hpp"
#include "trace/chrome_trace.hpp"

namespace hq::trace {
namespace {

void add_span(Recorder& r, std::int32_t lane, std::int32_t app, SpanKind kind,
              TimeNs begin, TimeNs end, std::string_view name = "s") {
  r.add(lane, app, kind, name, begin, end);
}

TEST(RecorderTest, AddAndQuery) {
  Recorder r;
  add_span(r, 0, 1, SpanKind::Kernel, 10, 20);
  add_span(r, 1, 1, SpanKind::MemcpyHtoD, 0, 5);
  add_span(r, 0, 2, SpanKind::MemcpyDtoH, 30, 40);
  EXPECT_EQ(r.size(), 3u);
  EXPECT_EQ(r.by_app(1).size(), 2u);
  EXPECT_EQ(r.by_kind(SpanKind::Kernel).size(), 1u);
  EXPECT_EQ(r.by_lane(0).size(), 2u);
  EXPECT_EQ(*r.min_time(), 0u);
  EXPECT_EQ(*r.max_time(), 40u);
}

TEST(RecorderTest, EmptyExtentsAreNullopt) {
  Recorder r;
  EXPECT_FALSE(r.min_time().has_value());
  EXPECT_FALSE(r.max_time().has_value());
}

TEST(RecorderTest, InvertedSpanThrows) {
  Recorder r;
  EXPECT_THROW(add_span(r, 0, 0, SpanKind::Kernel, 20, 10), hq::Error);
}

TEST(RecorderTest, ZeroLengthSpanAllowed) {
  Recorder r;
  add_span(r, 0, 0, SpanKind::Kernel, 10, 10);
  EXPECT_EQ(r.spans()[0].duration(), 0u);
}

TEST(SpanKindTest, Names) {
  EXPECT_STREQ(span_kind_name(SpanKind::MemcpyHtoD), "HtoD");
  EXPECT_STREQ(span_kind_name(SpanKind::MemcpyDtoH), "DtoH");
  EXPECT_STREQ(span_kind_name(SpanKind::Kernel), "kernel");
}

TEST(AsciiTimelineTest, EmptyRecorderRendersEmpty) {
  Recorder r;
  EXPECT_EQ(render_ascii_timeline(r), "");
}

TEST(AsciiTimelineTest, LanesRenderWithGlyphs) {
  Recorder r;
  add_span(r, 0, 0, SpanKind::MemcpyHtoD, 0, 50);
  add_span(r, 0, 0, SpanKind::Kernel, 50, 100);
  add_span(r, 1, 1, SpanKind::MemcpyDtoH, 25, 75);
  AsciiTimelineOptions opt;
  opt.width = 20;
  const std::string out = render_ascii_timeline(r, opt);
  EXPECT_NE(out.find("Stream 0"), std::string::npos);
  EXPECT_NE(out.find("Stream 1"), std::string::npos);
  EXPECT_NE(out.find('H'), std::string::npos);
  EXPECT_NE(out.find('K'), std::string::npos);
  EXPECT_NE(out.find('D'), std::string::npos);
}

TEST(AsciiTimelineTest, TinySpanStillVisible) {
  Recorder r;
  add_span(r, 0, 0, SpanKind::Kernel, 0, 1);
  add_span(r, 0, 0, SpanKind::MemcpyHtoD, 1000000, 2000000);
  AsciiTimelineOptions opt;
  opt.width = 50;
  const std::string out = render_ascii_timeline(r, opt);
  EXPECT_NE(out.find('K'), std::string::npos);
}

TEST(AsciiTimelineTest, KernelGlyphWinsOverlappedCell) {
  Recorder r;
  add_span(r, 0, 0, SpanKind::LockWait, 0, 100);
  add_span(r, 0, 0, SpanKind::Kernel, 0, 100);
  AsciiTimelineOptions opt;
  opt.width = 10;
  const std::string out = render_ascii_timeline(r, opt);
  // Examine only the data row for stream 0 (the legend also contains 'w').
  const std::size_t row_start = out.find("Stream 0");
  ASSERT_NE(row_start, std::string::npos);
  const std::string row = out.substr(row_start, out.find('\n', row_start) - row_start);
  EXPECT_NE(row.find('K'), std::string::npos);
  EXPECT_EQ(row.find('w'), std::string::npos);
}

TEST(AsciiTimelineTest, LaneLabelBaseOffsetsLabels) {
  Recorder r;
  add_span(r, 0, 0, SpanKind::Kernel, 0, 10);
  AsciiTimelineOptions opt;
  opt.lane_label_base = 34;  // match the paper's figures
  const std::string out = render_ascii_timeline(r, opt);
  EXPECT_NE(out.find("Stream 34"), std::string::npos);
}

TEST(AsciiTimelineTest, WindowRestrictsRendering) {
  Recorder r;
  add_span(r, 0, 0, SpanKind::Kernel, 0, 100);
  add_span(r, 1, 0, SpanKind::Kernel, 500, 600);
  AsciiTimelineOptions opt;
  opt.begin = 400;
  opt.end = 700;
  const std::string out = render_ascii_timeline(r, opt);
  EXPECT_EQ(out.find("Stream 0"), std::string::npos);
  EXPECT_NE(out.find("Stream 1"), std::string::npos);
}

TEST(ChromeTraceTest, ProducesWellFormedJson) {
  Recorder r;
  add_span(r, 3, 9, SpanKind::Kernel, 1000, 3000, "Fan1");
  const std::string json = chrome_trace_json(r);
  EXPECT_NE(json.find("\"name\": \"Fan1\""), std::string::npos);
  EXPECT_NE(json.find("\"cat\": \"kernel\""), std::string::npos);
  EXPECT_NE(json.find("\"ts\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"dur\": 2"), std::string::npos);
  EXPECT_NE(json.find("\"tid\": 3"), std::string::npos);
  EXPECT_NE(json.find("\"app\": 9"), std::string::npos);
  EXPECT_EQ(json.front(), '[');
  EXPECT_EQ(json[json.size() - 2], ']');
}

TEST(ChromeTraceTest, EscapesSpecialCharacters) {
  Recorder r;
  add_span(r, 0, 0, SpanKind::Kernel, 0, 1, "a\"b\\c");
  const std::string json = chrome_trace_json(r);
  EXPECT_NE(json.find("a\\\"b\\\\c"), std::string::npos);
}

TEST(ChromeTraceTest, EmptyRecorderIsEmptyArray) {
  Recorder r;
  EXPECT_EQ(chrome_trace_json(r), "[\n]\n");
}

// ------------------------------------------------------- counter events

TEST(ChromeTraceCounterTest, EmitsCounterEventsAfterSpans) {
  Recorder r;
  add_span(r, 0, 0, SpanKind::Kernel, 1000, 3000, "k");
  std::vector<CounterTrack> counters(1);
  counters[0].name = "copy_queue_depth_htod";
  counters[0].points = {{0, 0.0}, {2000, 3.0}, {5000, 1.0}};
  const std::string json = chrome_trace_json(r, counters);
  EXPECT_TRUE(hq::testing::json_well_formed(json)) << json;
  EXPECT_NE(json.find("\"ph\": \"C\""), std::string::npos);
  EXPECT_NE(json.find("\"name\": \"copy_queue_depth_htod\""),
            std::string::npos);
  EXPECT_NE(json.find("\"args\": {\"value\": 3}"), std::string::npos);
  // Span events still precede the counter events.
  EXPECT_LT(json.find("\"ph\": \"X\""), json.find("\"ph\": \"C\""));
}

TEST(ChromeTraceCounterTest, CountersAloneAreWellFormed) {
  // No spans: the first emitted event is a counter, which must not be
  // preceded by a comma.
  Recorder r;
  std::vector<CounterTrack> counters(2);
  counters[0].name = "power_watts";
  counters[0].points = {{0, 25.0}, {100, 137.5}};
  counters[1].name = "occupancy";
  counters[1].points = {{0, 0.25}};
  const std::string json = chrome_trace_json(r, counters);
  EXPECT_TRUE(hq::testing::json_well_formed(json)) << json;
  EXPECT_NE(json.find("137.5"), std::string::npos);
}

TEST(ChromeTraceCounterTest, TimestampsStayMonotonicPerTrack) {
  Recorder r;
  std::vector<CounterTrack> counters(1);
  counters[0].name = "depth";
  counters[0].points = {{1000, 1.0}, {2000, 2.0}, {2000, 3.0}, {250000, 0.0}};
  const std::string json = chrome_trace_json(r, counters);
  EXPECT_TRUE(hq::testing::json_well_formed(json)) << json;
  // Extract the "ts" values in emission order and check they never decrease
  // (Perfetto sorts stably, but out-of-order counters render misleadingly).
  std::vector<double> ts;
  std::size_t pos = 0;
  while ((pos = json.find("\"ts\": ", pos)) != std::string::npos) {
    pos += 6;
    ts.push_back(std::stod(json.substr(pos)));
  }
  ASSERT_EQ(ts.size(), 4u);
  EXPECT_TRUE(std::is_sorted(ts.begin(), ts.end())) << json;
}

TEST(ChromeTraceCounterTest, EscapesQuotesAndBackslashesInTrackNames) {
  Recorder r;
  std::vector<CounterTrack> counters(1);
  counters[0].name = "weird\"name\\track";
  counters[0].points = {{0, 1.0}};
  const std::string json = chrome_trace_json(r, counters);
  EXPECT_TRUE(hq::testing::json_well_formed(json)) << json;
  EXPECT_NE(json.find("weird\\\"name\\\\track"), std::string::npos);
}

// --------------------------------------------------------------- digest

TEST(DigestTest, IdenticalRecordersAgree) {
  Recorder a, b;
  for (Recorder* r : {&a, &b}) {
    add_span(*r, 0, 1, SpanKind::MemcpyHtoD, 0, 100, "in");
    add_span(*r, 1, 1, SpanKind::Kernel, 100, 300, "k");
  }
  EXPECT_EQ(digest(a), digest(b));
  EXPECT_NE(digest(a), digest(Recorder{}));
}

TEST(DigestTest, RecordingOrderMatters) {
  Recorder a, b;
  add_span(a, 0, 0, SpanKind::Kernel, 0, 10, "x");
  add_span(a, 1, 0, SpanKind::Kernel, 0, 10, "y");
  add_span(b, 1, 0, SpanKind::Kernel, 0, 10, "y");
  add_span(b, 0, 0, SpanKind::Kernel, 0, 10, "x");
  EXPECT_NE(digest(a), digest(b));
}

TEST(DigestTest, EveryFieldIsSignificant) {
  // Span fields fed to one recorder per case; each mutation of the base
  // scenario must move the digest.
  struct Fields {
    std::int32_t lane = 2;
    std::int32_t app = 3;
    SpanKind kind = SpanKind::MemcpyDtoH;
    std::string_view name = "out";
    TimeNs begin = 50;
    TimeNs end = 90;
  };
  const auto digest_with = [](auto mutate) {
    Fields f;
    mutate(f);
    Recorder r;
    r.add(f.lane, f.app, f.kind, f.name, f.begin, f.end);
    return digest(r);
  };
  const std::uint64_t ref_digest = digest_with([](Fields&) {});
  EXPECT_NE(digest_with([](Fields& f) { f.lane = 9; }), ref_digest);
  EXPECT_NE(digest_with([](Fields& f) { f.app = 9; }), ref_digest);
  EXPECT_NE(digest_with([](Fields& f) { f.kind = SpanKind::Kernel; }),
            ref_digest);
  EXPECT_NE(digest_with([](Fields& f) { f.name = "oops"; }), ref_digest);
  EXPECT_NE(digest_with([](Fields& f) { f.begin = 51; }), ref_digest);
  EXPECT_NE(digest_with([](Fields& f) { f.end = 91; }), ref_digest);
}

TEST(DigestTest, DigestIsIndependentOfInterningOrder) {
  // Two recorders with identical span sequences but different name-table
  // layouts (b interns extra names first, so "x"/"y" get different ids)
  // must digest identically: the digest covers resolved name bytes.
  Recorder a, b;
  b.intern("unused-1");
  b.intern("unused-2");
  for (Recorder* r : {&a, &b}) {
    add_span(*r, 0, 1, SpanKind::Kernel, 0, 10, "x");
    add_span(*r, 1, 1, SpanKind::Kernel, 10, 20, "y");
  }
  EXPECT_NE(a.spans()[0].name, b.spans()[0].name);  // ids differ...
  EXPECT_EQ(digest(a), digest(b));                  // ...digests agree
}

// ------------------------------------------------------------- interning

TEST(InterningTest, RoundTripAndDeduplication) {
  Recorder r;
  const NameId a = r.intern("Fan1");
  const NameId b = r.intern("Fan2");
  const NameId a2 = r.intern("Fan1");
  EXPECT_EQ(a, a2);
  EXPECT_NE(a, b);
  EXPECT_EQ(r.name_of(a), "Fan1");
  EXPECT_EQ(r.name_of(b), "Fan2");
  EXPECT_EQ(r.name_count(), 2u);
}

TEST(InterningTest, IdsAreDenseInFirstInterningOrder) {
  Recorder r;
  EXPECT_EQ(r.intern("a"), 0u);
  EXPECT_EQ(r.intern("b"), 1u);
  EXPECT_EQ(r.intern("a"), 0u);
  EXPECT_EQ(r.intern("c"), 2u);
  EXPECT_EQ(r.name_count(), 3u);
}

TEST(InterningTest, ViewsStayValidAsTableGrows) {
  // name_of views must remain stable while the table grows (the digest and
  // exporters hold them across interleaved interning).
  Recorder r;
  const NameId first = r.intern("first-name");
  const std::string_view view = r.name_of(first);
  for (int i = 0; i < 1000; ++i) {
    r.intern("grow-" + std::to_string(i));
  }
  EXPECT_EQ(view, "first-name");
  EXPECT_EQ(r.name_of(first), "first-name");
}

TEST(InterningTest, RecorderIsMoveOnly) {
  // ids_ keys are string_views into names_, so a memberwise copy would leave
  // the copy aliasing the source's strings; copying must not compile. Moves
  // transfer the deque's blocks without relocating elements, so they are
  // allowed and must keep previously issued ids and views valid.
  static_assert(!std::is_copy_constructible_v<Recorder>);
  static_assert(!std::is_copy_assignable_v<Recorder>);
  static_assert(std::is_move_constructible_v<Recorder>);
  static_assert(std::is_move_assignable_v<Recorder>);

  Recorder r;
  const NameId k = r.intern("moved-kernel");
  add_span(r, 0, 0, SpanKind::Kernel, 0, 1, "moved-kernel");
  const std::uint64_t before = digest(r);

  Recorder moved = std::move(r);
  EXPECT_EQ(moved.name_of(k), "moved-kernel");
  EXPECT_EQ(moved.intern("moved-kernel"), k);
  EXPECT_EQ(moved.size(), 1u);
  EXPECT_EQ(digest(moved), before);
}

TEST(InterningTest, AddRejectsForeignNameIds) {
  // A span naming an id the recorder never issued is a hard error — spans
  // are meaningless without their own recorder's table.
  Recorder r;
  EXPECT_THROW(r.add(Span{0, 0, SpanKind::Kernel, 7, 0, 1}), hq::Error);
  EXPECT_THROW((void)r.name_of(0), hq::Error);
}

TEST(InterningTest, SpansShareOneTableEntry) {
  Recorder r;
  for (int i = 0; i < 100; ++i) {
    add_span(r, i, 0, SpanKind::Kernel, i, i + 1, "same-kernel");
  }
  EXPECT_EQ(r.size(), 100u);
  EXPECT_EQ(r.name_count(), 1u);
  for (const Span& s : r.spans()) EXPECT_EQ(r.name_of(s.name), "same-kernel");
}

TEST(InterningTest, ClearResetsSpansAndNames) {
  Recorder r;
  add_span(r, 0, 0, SpanKind::Kernel, 0, 1, "k");
  r.clear();
  EXPECT_TRUE(r.empty());
  EXPECT_EQ(r.name_count(), 0u);
  EXPECT_EQ(r.intern("fresh"), 0u);
}

TEST(DigestTest, StableAcrossProcessRuns) {
  // Pinned constant: the digest is part of the determinism contract, so a
  // change to the hash or the span encoding must be deliberate and visible.
  Recorder r;
  add_span(r, 0, 0, SpanKind::MemcpyHtoD, 0, 64, "in");
  add_span(r, 0, 0, SpanKind::Kernel, 64, 128, "k");
  add_span(r, 0, 0, SpanKind::MemcpyDtoH, 128, 160, "out");
  EXPECT_EQ(digest(r), 0x7dae9fc389d8afbdULL);
}

// -------------------------------------------------------------- AppIndex

TEST(AppIndexTest, UnknownAppAndNegativeAttribution) {
  // Spans with app_id -1 (unattributed device work) are a first-class
  // group, and looking up an app the trace never saw returns an empty span
  // — not a crash, not a nearby group.
  Recorder r;
  add_span(r, 0, -1, SpanKind::Kernel, 0, 5, "orphan");
  add_span(r, 0, 3, SpanKind::Kernel, 5, 10, "k");
  add_span(r, 1, -1, SpanKind::MemcpyHtoD, 2, 4, "h2d");
  const AppIndex index(r);
  EXPECT_EQ(index.app_count(), 2u);
  EXPECT_EQ(index.app_ids(), (std::vector<std::int32_t>{-1, 3}));
  ASSERT_EQ(index.spans_for(-1).size(), 2u);
  EXPECT_EQ(r.name_of(index.spans_for(-1)[0]->name), "orphan");
  EXPECT_EQ(r.name_of(index.spans_for(-1)[1]->name), "h2d");
  // Unknown ids, including ones between/outside the known range.
  EXPECT_TRUE(index.spans_for(0).empty());
  EXPECT_TRUE(index.spans_for(2).empty());
  EXPECT_TRUE(index.spans_for(4).empty());
  EXPECT_TRUE(index.spans_for(-2).empty());
}

TEST(AppIndexTest, EmptyRecorderYieldsEmptyIndex) {
  const Recorder r;
  const AppIndex index(r);
  EXPECT_EQ(index.app_count(), 0u);
  EXPECT_TRUE(index.app_ids().empty());
  EXPECT_TRUE(index.spans_for(0).empty());
}

TEST(AppIndexTest, SparseIdsTakeTheSortFallback) {
  // App ids spread wider than the dense counting-scatter cap (2^20) force
  // the stable-sort fallback; grouping and recording order must match the
  // dense path exactly.
  Recorder r;
  add_span(r, 0, 5'000'000, SpanKind::Kernel, 0, 1, "far");
  add_span(r, 0, -3, SpanKind::Kernel, 1, 2, "neg");
  add_span(r, 0, 5'000'000, SpanKind::Kernel, 2, 3, "far2");
  add_span(r, 0, 0, SpanKind::Kernel, 3, 4, "zero");
  const AppIndex index(r);
  EXPECT_EQ(index.app_ids(), (std::vector<std::int32_t>{-3, 0, 5'000'000}));
  ASSERT_EQ(index.spans_for(5'000'000).size(), 2u);
  EXPECT_EQ(index.spans_for(5'000'000)[0]->begin, 0);
  EXPECT_EQ(index.spans_for(5'000'000)[1]->begin, 2);
  EXPECT_EQ(index.spans_for(-3).size(), 1u);
  EXPECT_EQ(index.spans_for(0).size(), 1u);
  EXPECT_TRUE(index.spans_for(1'000'000).empty());
}

}  // namespace
}  // namespace hq::trace
