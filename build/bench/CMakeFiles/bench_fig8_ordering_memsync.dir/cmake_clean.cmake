file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_ordering_memsync.dir/bench_fig8_ordering_memsync.cpp.o"
  "CMakeFiles/bench_fig8_ordering_memsync.dir/bench_fig8_ordering_memsync.cpp.o.d"
  "bench_fig8_ordering_memsync"
  "bench_fig8_ordering_memsync.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_ordering_memsync.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
