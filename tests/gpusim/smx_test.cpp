#include "gpusim/smx.hpp"

#include <gtest/gtest.h>

#include "common/check.hpp"

namespace hq::gpu {
namespace {

DeviceSpec k20() { return DeviceSpec::tesla_k20(); }

TEST(SmxTest, FreshSmxIsEmpty) {
  Smx smx(k20(), 0);
  EXPECT_EQ(smx.used_blocks(), 0);
  EXPECT_EQ(smx.used_threads(), 0);
  EXPECT_EQ(smx.free_blocks(), 16);
  EXPECT_EQ(smx.free_threads(), 2048);
  EXPECT_EQ(smx.free_registers(), 65536u);
  EXPECT_EQ(smx.free_shared_mem(), 48 * kKiB);
}

TEST(SmxTest, FitCountLimitedByBlockSlots) {
  Smx smx(k20(), 0);
  // Tiny blocks: the 16-slot limit binds first.
  const BlockDemand d{32, 32 * 32, 0};
  EXPECT_EQ(smx.fit_count(d), 16);
}

TEST(SmxTest, FitCountLimitedByThreads) {
  Smx smx(k20(), 0);
  // 256-thread blocks with modest registers: 2048/256 = 8 blocks.
  const BlockDemand d{256, 256 * 20, 0};
  EXPECT_EQ(smx.fit_count(d), 8);
}

TEST(SmxTest, FitCountLimitedByRegisters) {
  Smx smx(k20(), 0);
  // 128 threads x 160 regs = 20480 regs per block -> 3 blocks by registers.
  const BlockDemand d{128, 128 * 160, 0};
  EXPECT_EQ(smx.fit_count(d), 3);
}

TEST(SmxTest, FitCountLimitedBySharedMemory) {
  Smx smx(k20(), 0);
  const BlockDemand d{64, 64 * 16, 20 * kKiB};  // 48/20 -> 2 blocks
  EXPECT_EQ(smx.fit_count(d), 2);
}

TEST(SmxTest, OccupyReducesCapacity) {
  Smx smx(k20(), 0);
  const BlockDemand d{256, 256 * 32, 4 * kKiB};
  const int fit = smx.fit_count(d);
  ASSERT_GT(fit, 1);
  smx.occupy(d, 2);
  EXPECT_EQ(smx.used_blocks(), 2);
  EXPECT_EQ(smx.used_threads(), 512);
  EXPECT_EQ(smx.fit_count(d), fit - 2);
}

TEST(SmxTest, ReleaseRestoresCapacity) {
  Smx smx(k20(), 0);
  const BlockDemand d{512, 512 * 32, 8 * kKiB};
  const int fit = smx.fit_count(d);
  smx.occupy(d, fit);
  EXPECT_EQ(smx.fit_count(d), 0);
  smx.release(d, fit);
  EXPECT_EQ(smx.fit_count(d), fit);
  EXPECT_EQ(smx.used_blocks(), 0);
  EXPECT_EQ(smx.used_threads(), 0);
}

TEST(SmxTest, MixedDemandsShareResources) {
  Smx smx(k20(), 0);
  const BlockDemand big{1024, 1024 * 32, 0};  // 2 fit by threads
  const BlockDemand small{256, 256 * 16, 0};
  smx.occupy(big, 1);
  // 1024 threads remain: 4 small blocks fit by threads.
  EXPECT_EQ(smx.fit_count(small), 4);
  smx.occupy(small, 4);
  EXPECT_EQ(smx.free_threads(), 0);
  EXPECT_EQ(smx.fit_count(small), 0);
}

TEST(SmxTest, OverOccupyThrows) {
  Smx smx(k20(), 0);
  const BlockDemand d{2048, 2048 * 8, 0};
  EXPECT_EQ(smx.fit_count(d), 1);
  EXPECT_THROW(smx.occupy(d, 2), hq::Error);
}

TEST(SmxTest, OverReleaseThrows) {
  Smx smx(k20(), 0);
  const BlockDemand d{128, 128 * 8, 0};
  smx.occupy(d, 1);
  EXPECT_THROW(smx.release(d, 2), hq::Error);
}

TEST(SmxTest, ZeroResourceDemandLimitedBySlotsOnly) {
  Smx smx(k20(), 0);
  const BlockDemand d{0, 0, 0};
  EXPECT_EQ(smx.fit_count(d), 16);
}

}  // namespace
}  // namespace hq::gpu
