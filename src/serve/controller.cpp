#include "serve/controller.hpp"

#include "common/check.hpp"

namespace hq::serve {

OverloadController::OverloadController(Config config) : config_(config) {
  HQ_CHECK_MSG(config_.release_stretch >= 1.0,
               "overload controller: release_stretch must be >= 1, got "
                   << config_.release_stretch);
  HQ_CHECK_MSG(config_.engage_stretch > config_.release_stretch,
               "overload controller: engage_stretch ("
                   << config_.engage_stretch
                   << ") must be strictly above release_stretch ("
                   << config_.release_stretch << ")");
  HQ_CHECK_MSG(config_.alpha > 0.0 && config_.alpha <= 1.0,
               "overload controller: alpha must be in (0, 1], got "
                   << config_.alpha);
}

void OverloadController::observe_htod(TimeNs now, DurationNs wait,
                                      DurationNs service) {
  if (!config_.enabled) return;
  if (service == 0) return;  // degenerate transfer; stretch is undefined

  const double sample = static_cast<double>(wait + service) /
                        static_cast<double>(service);
  ++samples_;
  stretch_ = samples_ == 1
                 ? sample
                 : config_.alpha * sample + (1.0 - config_.alpha) * stretch_;

  const bool dwell_ok =
      transitions_.empty() || now >= last_transition_ + config_.min_dwell;
  if (!engaged_) {
    if (samples_ >= config_.min_samples &&
        stretch_ >= config_.engage_stretch && dwell_ok) {
      engaged_ = true;
      ++engagements_;
      last_transition_ = now;
      transitions_.push_back({now, true, stretch_});
    }
  } else if (stretch_ <= config_.release_stretch && dwell_ok) {
    engaged_ = false;
    ++releases_;
    last_transition_ = now;
    transitions_.push_back({now, false, stretch_});
  }
}

}  // namespace hq::serve
