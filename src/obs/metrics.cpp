#include "obs/metrics.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace hq::obs {

Histogram::Histogram(std::vector<double> upper_bounds)
    : bounds_(std::move(upper_bounds)) {
  HQ_CHECK_MSG(!bounds_.empty(), "histogram needs at least one bucket bound");
  HQ_CHECK_MSG(std::is_sorted(bounds_.begin(), bounds_.end()) &&
                   std::adjacent_find(bounds_.begin(), bounds_.end()) ==
                       bounds_.end(),
               "histogram bounds must be strictly increasing");
  counts_.assign(bounds_.size() + 1, 0);
}

void Histogram::record(double v) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  ++counts_[static_cast<std::size_t>(it - bounds_.begin())];
  ++count_;
  sum_ += v;
}

void Histogram::merge(const Histogram& other) {
  HQ_CHECK_MSG(bounds_ == other.bounds_,
               "histogram merge needs identical bucket bounds");
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    counts_[i] += other.counts_[i];
  }
  count_ += other.count_;
  sum_ += other.sum_;
}

void Series::sample(TimeNs t, double value) {
  if (!points_.empty()) {
    HQ_CHECK_MSG(t >= points_.back().time,
                 "series sampled backwards in time");
    if (points_.back().time == t) {
      // Several transitions at one instant: keep the final value.
      points_.back().value = value;
      peak_ = std::max(peak_, value);
      return;
    }
    if (points_.back().value == value) return;  // unchanged: no event
  }
  points_.push_back(Point{t, value});
  peak_ = std::max(peak_, value);
}

const char* metric_kind_name(MetricKind kind) {
  switch (kind) {
    case MetricKind::Counter: return "counter";
    case MetricKind::Gauge: return "gauge";
    case MetricKind::Histogram: return "histogram";
    case MetricKind::Series: return "series";
  }
  return "?";
}

MetricsRegistry::Entry& MetricsRegistry::entry(
    std::string_view name, std::string_view help, MetricKind kind,
    std::variant<Counter, Gauge, Histogram, Series> fresh) {
  HQ_CHECK_MSG(!name.empty(), "metric name must not be empty");
  if (const auto it = index_.find(name); it != index_.end()) {
    Entry& existing = entries_[it->second];
    HQ_CHECK_MSG(existing.kind == kind,
                 "metric '" << existing.name << "' registered as "
                            << metric_kind_name(existing.kind)
                            << ", requested as " << metric_kind_name(kind));
    return existing;
  }
  entries_.push_back(Entry{std::string(name), std::string(help), kind,
                           std::move(fresh)});
  index_.emplace(std::string(name), entries_.size() - 1);
  return entries_.back();
}

Counter& MetricsRegistry::counter(std::string_view name,
                                  std::string_view help) {
  return std::get<Counter>(
      entry(name, help, MetricKind::Counter, Counter{}).metric);
}

Gauge& MetricsRegistry::gauge(std::string_view name, std::string_view help) {
  return std::get<Gauge>(entry(name, help, MetricKind::Gauge, Gauge{}).metric);
}

Histogram& MetricsRegistry::histogram(std::string_view name,
                                      std::vector<double> upper_bounds,
                                      std::string_view help) {
  return std::get<Histogram>(
      entry(name, help, MetricKind::Histogram,
            Histogram(std::move(upper_bounds)))
          .metric);
}

Series& MetricsRegistry::series(std::string_view name, std::string_view help) {
  return std::get<Series>(
      entry(name, help, MetricKind::Series, Series{}).metric);
}

const MetricsRegistry::Entry* MetricsRegistry::find(
    std::string_view name) const {
  const auto it = index_.find(name);
  return it == index_.end() ? nullptr : &entries_[it->second];
}

}  // namespace hq::obs
