// Seed-sweep determinism: running the identical workload + configuration
// twice in one process must reproduce the run bit-for-bit — equal trace
// digests, makespans, energies, and per-application metrics. This is the
// repo's determinism contract, and the foundation the hqfuzz replay mode
// (--case-seed) rests on.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/rng.hpp"
#include "hyperq/harness.hpp"
#include "hyperq/schedule.hpp"
#include "rodinia/registry.hpp"
#include "trace/trace.hpp"

namespace hq {
namespace {

fw::HarnessConfig config_for_seed(std::uint64_t seed) {
  fw::HarnessConfig config;
  config.num_streams = 1 + static_cast<int>(seed % 4);
  config.memory_sync = (seed % 2) == 0;
  config.blocking_transfers = (seed % 3) != 0;
  config.transfer_chunk_bytes = (seed % 2) == 1 ? 64 * kKiB : 0;
  config.launch_stagger = (seed % 3) * 10 * kMicrosecond;
  config.functional = (seed % 3) == 0;
  config.monitor_power = (seed % 2) == 0;
  return config;
}

std::vector<fw::WorkloadItem> workload_for_seed(std::uint64_t seed) {
  rodinia::AppParams ga;
  ga.size = 16;
  ga.seed = seed;
  rodinia::AppParams ne;
  ne.size = 32;
  ne.seed = seed + 1;
  Rng rng(99 + seed);
  const std::vector<int> counts{2, 2};
  const std::vector<fw::Slot> slots =
      fw::make_schedule(fw::Order::RandomShuffle, counts, &rng);
  return rodinia::build_workload(slots, {"gaussian", "needle"}, {ga, ne});
}

TEST(DeterminismTest, SeedSweepReproducesRunsExactly) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    const fw::HarnessConfig config = config_for_seed(seed);
    const auto workload = workload_for_seed(seed);

    fw::Harness harness(config);
    const auto a = harness.run(workload);
    const auto b = harness.run(workload);

    ASSERT_NE(a.trace, nullptr);
    ASSERT_NE(b.trace, nullptr);
    EXPECT_EQ(trace::digest(*a.trace), trace::digest(*b.trace))
        << "seed " << seed;
    EXPECT_EQ(a.makespan, b.makespan) << "seed " << seed;
    EXPECT_EQ(a.phase_begin, b.phase_begin) << "seed " << seed;
    EXPECT_EQ(a.energy_exact, b.energy_exact) << "seed " << seed;
    EXPECT_EQ(a.energy_sensor, b.energy_sensor) << "seed " << seed;
    EXPECT_EQ(a.average_occupancy, b.average_occupancy) << "seed " << seed;
    EXPECT_EQ(a.power_trace.size(), b.power_trace.size()) << "seed " << seed;

    ASSERT_EQ(a.apps.size(), b.apps.size());
    for (std::size_t i = 0; i < a.apps.size(); ++i) {
      EXPECT_EQ(a.apps[i].htod_effective_latency,
                b.apps[i].htod_effective_latency);
      EXPECT_EQ(a.apps[i].dtoh_effective_latency,
                b.apps[i].dtoh_effective_latency);
      EXPECT_EQ(a.apps[i].htod_own_time, b.apps[i].htod_own_time);
      EXPECT_EQ(a.apps[i].first_activity, b.apps[i].first_activity);
      EXPECT_EQ(a.apps[i].output_digest, b.apps[i].output_digest);
    }
    if (config.functional) {
      EXPECT_TRUE(a.all_verified && b.all_verified) << "seed " << seed;
    }
  }
}

TEST(DeterminismTest, DifferentSchedulesProduceDifferentDigests) {
  // A digest that never changes would vacuously pass the test above.
  rodinia::AppParams p;
  p.size = 16;
  fw::HarnessConfig one;
  one.num_streams = 1;
  one.monitor_power = false;
  fw::HarnessConfig many = one;
  many.num_streams = 2;

  const std::vector<fw::WorkloadItem> workload = {
      rodinia::make_app("gaussian", p), rodinia::make_app("gaussian", p)};
  const auto serial = fw::Harness(one).run(workload);
  const auto concurrent = fw::Harness(many).run(workload);
  EXPECT_NE(trace::digest(*serial.trace), trace::digest(*concurrent.trace));
}

}  // namespace
}  // namespace hq
