// Calibrated cost-model constants for the ported Rodinia kernels.
//
// The paper does not publish per-kernel timings, so these constants are set
// from the launch structure in its Table III plus public Tesla K20
// characteristics, then tuned so the *relative* results (who wins, by
// roughly what factor) match the paper's figures. EXPERIMENTS.md records the
// resulting paper-vs-measured comparison for every figure.
//
// block_duration is the execution cost of one thread block at low occupancy;
// contention_sensitivity scales it up linearly with device thread occupancy
// (memory-bandwidth pressure from co-resident blocks).
#pragma once

#include "common/units.hpp"

namespace hq::rodinia {

struct KernelCost {
  std::uint32_t regs_per_thread;
  Bytes smem_per_block;
  DurationNs block_duration;
  double contention_sensitivity;
};

// --- gaussian (Gaussian elimination, 511 iterations of Fan1 + Fan2) --------
/// Fan1: one 512-thread block computing a multiplier column. Tiny kernel;
/// leaves ~96% of the device idle (the concurrency opportunity).
inline constexpr KernelCost kFan1{14, 0, 4 * kMicrosecond, 0.1};
/// Fan2: 1024 blocks updating the trailing submatrix; memory-bound.
inline constexpr KernelCost kFan2{20, 0, 2500, 0.4};

// --- needle (Needleman-Wunsch, 32-wide blocked wavefront) -------------------
/// Diagonal-wavefront kernels with (32+1)^2 x2 int shared-memory tiles; tiny
/// grids (1..16 blocks) that badly underutilize the device.
inline constexpr KernelCost kNeedle1{24, 8712, 12 * kMicrosecond, 0.15};
inline constexpr KernelCost kNeedle2{24, 8712, 12 * kMicrosecond, 0.15};

// --- srad (speckle reducing anisotropic diffusion v2) ------------------------
/// Stencil kernels over a 512x512 image, 1024 blocks each, memory-bound.
inline constexpr KernelCost kSrad1{24, 2 * kKiB, 3 * kMicrosecond, 0.5};
inline constexpr KernelCost kSrad2{24, 2 * kKiB, 3 * kMicrosecond, 0.5};

// --- hotspot (extension app, not in the paper's Table I) ---------------------
/// calculate_temp: 16x16 stencil tiles over the floorplan; memory-bound.
inline constexpr KernelCost kHotspot{28, 3 * kKiB, 3 * kMicrosecond, 0.45};

// --- lud (extension: blocked LU decomposition) -------------------------------
/// lud_diagonal: a single 16-thread... (Rodinia uses 16) block; serial-ish.
inline constexpr KernelCost kLudDiagonal{30, 2 * kKiB, 8 * kMicrosecond, 0.05};
/// lud_perimeter: 32-thread blocks, one per border tile pair.
inline constexpr KernelCost kLudPerimeter{32, 4 * kKiB, 10 * kMicrosecond, 0.2};
/// lud_internal: 256-thread blocks, (tiles-i-1)^2 of them; compute-dense.
inline constexpr KernelCost kLudInternal{28, 2 * kKiB, 4 * kMicrosecond, 0.25};

// --- pathfinder (extension: grid DP) ------------------------------------------
/// dynproc_kernel: 256-thread blocks marching the DP front; latency-bound.
inline constexpr KernelCost kPathfinder{20, 1 * kKiB, 5 * kMicrosecond, 0.3};

// --- nn (k-nearest neighbours) ----------------------------------------------
/// euclid: one distance per thread, 168 blocks, trivially memory-bound.
inline constexpr KernelCost kEuclid{16, 0, 10 * kMicrosecond, 0.3};

}  // namespace hq::rodinia
