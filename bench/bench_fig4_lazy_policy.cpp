// Figure 4 — performance improvement of heterogeneous workloads over
// serialized execution under the lazy (LEFTOVER) resource utilization
// policy, for half-concurrent (NA = 2*NS) and full-concurrent (NA = NS)
// scenarios, across all six application pairings and increasing workload
// sizes.
//
// Paper result: up to 56% improvement (23.6% average) half-concurrent, up to
// 59% (24.8% average) full-concurrent, from Hyper-Q + the hardware block
// scheduler alone (no resource-sharing machinery).
#include <cstdio>

#include "bench/common.hpp"
#include "common/stats.hpp"

int main() {
  using namespace hq;
  using namespace hq::bench;

  print_header("Figure 4",
               "heterogeneous workload speedup vs serialized execution "
               "(lazy resource utilization policy)");

  RunningStats half_stats, full_stats;
  TextTable table;
  table.set_header({"pair", "NA", "serial(ms)", "half NS", "half(ms)",
                    "half impr", "full(ms)", "full impr"});

  for (const Pair& pair : hetero_pairs()) {
    for (int na : {4, 8, 16, 32}) {
      const auto serial = run_pair(pair, na, 1);
      const auto half = run_pair(pair, na, na / 2);
      const auto full = run_pair(pair, na, na);

      const double serial_ms = to_milliseconds(serial.makespan);
      const double half_impr =
          fw::improvement(static_cast<double>(serial.makespan),
                          static_cast<double>(half.makespan));
      const double full_impr =
          fw::improvement(static_cast<double>(serial.makespan),
                          static_cast<double>(full.makespan));
      half_stats.add(half_impr);
      full_stats.add(full_impr);

      table.add_row({pair.label(), std::to_string(na),
                     format_fixed(serial_ms, 2), std::to_string(na / 2),
                     format_fixed(to_milliseconds(half.makespan), 2),
                     format_percent(half_impr),
                     format_fixed(to_milliseconds(full.makespan), 2),
                     format_percent(full_impr)});
    }
    table.add_separator();
  }
  std::printf("%s\n", table.render().c_str());

  std::printf("half-concurrent: avg %s, max %s   (paper: avg +23.6%%, max +56%%)\n",
              format_percent(half_stats.mean()).c_str(),
              format_percent(half_stats.max()).c_str());
  std::printf("full-concurrent: avg %s, max %s   (paper: avg +24.8%%, max +59%%)\n",
              format_percent(full_stats.mean()).c_str(),
              format_percent(full_stats.max()).c_str());
  return 0;
}
