#include "sim/simulator.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace hq::sim {

std::coroutine_handle<> Task::promise_type::FinalAwaiter::await_suspend(
    Task::Handle h) const noexcept {
  promise_type& p = h.promise();
  if (p.continuation) {
    // A parent is awaiting us; hand control straight back (same instant).
    return p.continuation;
  }
  if (p.owner != nullptr) {
    p.owner->on_root_task_finished(h);
  }
  return std::noop_coroutine();
}

Simulator::~Simulator() {
  reap_finished_tasks();
  for (Task::Handle h : live_tasks_) {
    h.destroy();
  }
}

void Simulator::check_not_past(TimeNs t) const {
  HQ_CHECK_MSG(t >= now_, "cannot schedule into the past: t=" << t
                                                              << " now=" << now_);
}

void Simulator::sift_up() {
  // Hole-based insertion into the 4-ary min-heap: bubble the hole up moving
  // parents down, then drop the new event in — one move per level instead of
  // the swap chain std::push_heap performs on 48-byte events. Heap shape
  // never affects dispatch order: (time, seq) is a strict total order, so
  // every correct priority queue pops the same sequence.
  std::size_t i = heap_.size() - 1;
  if (i == 0) return;
  std::size_t parent = (i - 1) / kHeapArity;
  if (!(heap_[parent] > heap_[i])) return;  // already in place: zero moves
  Event ev = std::move(heap_[i]);
  do {
    heap_[i] = std::move(heap_[parent]);
    i = parent;
    parent = (i - 1) / kHeapArity;
  } while (i > 0 && heap_[parent] > ev);
  heap_[i] = std::move(ev);
}

void Simulator::sift_down(Event tail) {
  // Re-seat the former last element after a root pop, again moving a hole
  // down instead of swapping. Four children per node halves the tree depth
  // and keeps the child scan inside one cache line of Event keys.
  std::size_t i = 0;
  const std::size_t n = heap_.size();
  for (;;) {
    const std::size_t first = i * kHeapArity + 1;
    if (first >= n) break;
    const std::size_t end = std::min(first + kHeapArity, n);
    std::size_t best = first;
    for (std::size_t c = first + 1; c < end; ++c) {
      if (heap_[best] > heap_[c]) best = c;
    }
    if (!(tail > heap_[best])) break;
    heap_[i] = std::move(heap_[best]);
    i = best;
  }
  heap_[i] = std::move(tail);
}

void Simulator::spawn(Task task) {
  HQ_CHECK_MSG(task.valid(), "spawn of an empty (moved-from or spawned) Task");
  Task::Handle h = task.release();
  h.promise().owner = this;
  live_tasks_.push_back(h);
  schedule(0, [h] { h.resume(); });
}

void Simulator::on_root_task_finished(Task::Handle h) {
  if (h.promise().exception && !pending_exception_) {
    pending_exception_ = h.promise().exception;
  }
  auto it = std::find(live_tasks_.begin(), live_tasks_.end(), h);
  HQ_CHECK(it != live_tasks_.end());
  live_tasks_.erase(it);
  // The coroutine is suspended at its final suspend point; it cannot destroy
  // itself, so defer destruction to the run loop.
  finished_tasks_.push_back(h);
}

void Simulator::dispatch_one() {
  // Moving the event out of the heap before invoking keeps the storage alive
  // across whatever the callback schedules, and its destructor reclaims the
  // pooled slot even when the callback throws.
  Event ev = std::move(heap_.front());
  if (heap_.size() > 1) {
    Event tail = std::move(heap_.back());
    heap_.pop_back();
    sift_down(std::move(tail));
  } else {
    heap_.pop_back();
  }
  HQ_CHECK(ev.time >= now_);
  now_ = ev.time;
  ++events_processed_;
  ev.fn();
  reap_finished_tasks();
  if (pending_exception_) {
    std::exception_ptr e = std::exchange(pending_exception_, nullptr);
    std::rethrow_exception(e);
  }
}

void Simulator::reap_finished_tasks() {
  for (Task::Handle h : finished_tasks_) {
    h.destroy();
  }
  finished_tasks_.clear();
}

std::size_t Simulator::run() {
  const std::uint64_t before = events_processed_;
  while (!heap_.empty()) {
    dispatch_one();
  }
  return static_cast<std::size_t>(events_processed_ - before);
}

std::size_t Simulator::run_until(TimeNs t) {
  HQ_CHECK_MSG(t >= now_, "run_until into the past");
  const std::uint64_t before = events_processed_;
  while (!heap_.empty() && heap_.front().time <= t) {
    dispatch_one();
  }
  now_ = std::max(now_, t);
  return static_cast<std::size_t>(events_processed_ - before);
}

}  // namespace hq::sim
