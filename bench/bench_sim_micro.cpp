// Substrate microbenchmarks (google-benchmark): event-queue throughput,
// coroutine task switching, block-scheduler placement, copy-engine service,
// and a full harness run. These bound the cost of the simulation itself,
// not the modelled hardware.
#include <benchmark/benchmark.h>

#include "bench/common.hpp"
#include "gpusim/device.hpp"
#include "hyperq/metrics.hpp"
#include "sim/simulator.hpp"
#include "sim/sync.hpp"
#include "trace/trace.hpp"

namespace {

using namespace hq;

void BM_EventQueueThroughput(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::Simulator sim;
    for (int i = 0; i < n; ++i) {
      sim.schedule(static_cast<DurationNs>((i * 7919) % 1000), [] {});
    }
    benchmark::DoNotOptimize(sim.run());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_EventQueueThroughput)->Arg(1000)->Arg(100000);

sim::Task ping_pong(sim::Simulator* sim, int hops) {
  for (int i = 0; i < hops; ++i) {
    co_await sim->delay(1);
  }
}

void BM_CoroutineSwitching(benchmark::State& state) {
  const int hops = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::Simulator sim;
    sim.spawn(ping_pong(&sim, hops));
    sim.run();
  }
  state.SetItemsProcessed(state.iterations() * hops);
}
BENCHMARK(BM_CoroutineSwitching)->Arg(10000);

void BM_BlockSchedulerWaves(benchmark::State& state) {
  // A 1024-block kernel executing in ~10 waves, like gaussian Fan2.
  for (auto _ : state) {
    sim::Simulator sim;
    gpu::Device device(sim, gpu::DeviceSpec::tesla_k20());
    device.register_stream(0);
    device.submit_kernel(0,
                         gpu::KernelLaunch{"fan2",
                                           gpu::Dim3{1024, 1, 1},
                                           gpu::Dim3{256, 1, 1},
                                           20,
                                           0,
                                           3 * kMicrosecond,
                                           0.0,
                                           nullptr},
                         {});
    sim.run();
  }
  state.SetItemsProcessed(state.iterations() * 1024);
}
BENCHMARK(BM_BlockSchedulerWaves);

void BM_CopyEngineTransactions(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::Simulator sim;
    gpu::Device device(sim, gpu::DeviceSpec::tesla_k20());
    device.register_stream(0);
    for (int i = 0; i < n; ++i) {
      device.submit_copy(
          0, gpu::CopyRequest{gpu::CopyDirection::HtoD, 64 * kKiB, nullptr},
          {});
    }
    sim.run();
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_CopyEngineTransactions)->Arg(1000);

trace::Recorder synthetic_transfer_trace(int apps, int spans_per_app) {
  trace::Recorder rec;
  TimeNs t = 0;
  for (int s = 0; s < spans_per_app; ++s) {
    for (int a = 0; a < apps; ++a) {
      rec.add(a, a, trace::SpanKind::MemcpyHtoD, "h2d", t, t + 1000);
      t += 1500;
    }
  }
  return rec;
}

// Per-app Le extraction, the quadratic way: one full recorder scan (plus a
// span copy inside by_app-style filtering) per application.
void BM_PerAppLatencyScan(benchmark::State& state) {
  const int apps = static_cast<int>(state.range(0));
  const trace::Recorder rec = synthetic_transfer_trace(apps, 64);
  for (auto _ : state) {
    DurationNs total = 0;
    for (int a = 0; a < apps; ++a) {
      total += fw::effective_transfer_latency(rec, a,
                                              trace::SpanKind::MemcpyHtoD)
                   .value_or(0);
    }
    benchmark::DoNotOptimize(total);
  }
  state.SetItemsProcessed(state.iterations() * apps);
}
BENCHMARK(BM_PerAppLatencyScan)->Arg(8)->Arg(64);

// Same extraction through a trace::AppIndex built once: one pass over the
// spans total, then O(own spans) per app — the path the harness uses.
void BM_PerAppLatencyIndexed(benchmark::State& state) {
  const int apps = static_cast<int>(state.range(0));
  const trace::Recorder rec = synthetic_transfer_trace(apps, 64);
  for (auto _ : state) {
    const trace::AppIndex index(rec);
    DurationNs total = 0;
    for (int a = 0; a < apps; ++a) {
      total += fw::effective_transfer_latency(index, a,
                                              trace::SpanKind::MemcpyHtoD)
                   .value_or(0);
    }
    benchmark::DoNotOptimize(total);
  }
  state.SetItemsProcessed(state.iterations() * apps);
}
BENCHMARK(BM_PerAppLatencyIndexed)->Arg(8)->Arg(64);

void BM_HarnessPairRun(benchmark::State& state) {
  // One full {nn, needle} 8-application timing run (the smallest pairing).
  for (auto _ : state) {
    const auto result =
        hq::bench::run_pair(hq::bench::Pair{"nn", "needle"}, 8, 8);
    benchmark::DoNotOptimize(result.makespan);
  }
}
BENCHMARK(BM_HarnessPairRun)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
