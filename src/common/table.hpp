// Fixed-width text table printer used by the figure/table bench binaries to
// emit the paper's rows in a readable, diffable form.
#pragma once

#include <string>
#include <vector>

namespace hq {

/// Accumulates rows of cells and renders them with aligned columns.
class TextTable {
 public:
  /// Sets the header row; column count is inferred from it.
  void set_header(std::vector<std::string> header);

  /// Appends a data row; must match the header's column count if one is set.
  void add_row(std::vector<std::string> row);

  /// Appends a horizontal separator line.
  void add_separator();

  /// Renders the table as a string (ASCII, two-space gutters).
  std::string render() const;

  std::size_t row_count() const { return rows_.size(); }

 private:
  struct Row {
    std::vector<std::string> cells;
    bool separator = false;
  };
  std::vector<std::string> header_;
  std::vector<Row> rows_;
};

/// Formats a double with the given precision (fixed notation).
std::string format_fixed(double value, int precision);

/// Formats a ratio as a signed percentage, e.g. 0.318 -> "+31.8%".
std::string format_percent(double ratio, int precision = 1);

}  // namespace hq
