// Stream and StreamManager (paper Section III-E).
//
// "The features of our framework include a Stream class which abstracts the
// CUDA streams interface, and a StreamManager class which provides
// functionality for dynamically creating, destroying, and managing the
// independent streams."
//
// Applications do not own streams; each application child thread *acquires*
// a stream from the manager when it starts. With more applications than
// streams (NA > NS), acquisition order — and therefore the schedule order —
// controls which applications serialize behind one another in a stream,
// which is the serialization-dependency lever Section III-C exploits.
#pragma once

#include <vector>

#include "cudart/runtime.hpp"

namespace hq::fw {

/// Thin abstraction over the runtime stream interface.
class Stream {
 public:
  Stream(rt::Runtime& runtime, rt::Stream handle)
      : runtime_(&runtime), handle_(handle) {}

  rt::Stream handle() const { return handle_; }
  int index() const { return handle_.id; }
  bool idle() const { return runtime_->stream_query(handle_); }

 private:
  rt::Runtime* runtime_;
  rt::Stream handle_;
};

/// Creates, hands out (round-robin), and destroys the pool of NS streams.
class StreamManager {
 public:
  /// Creates `num_streams` streams on the runtime.
  StreamManager(rt::Runtime& runtime, int num_streams);
  ~StreamManager();
  StreamManager(const StreamManager&) = delete;
  StreamManager& operator=(const StreamManager&) = delete;

  /// Hands out streams in round-robin order; the k-th acquisition returns
  /// stream k mod NS. This makes stream allocation order follow application
  /// launch order, as the paper's scheduling section requires.
  rt::Stream acquire();

  int size() const { return static_cast<int>(streams_.size()); }
  std::uint64_t acquisitions() const { return acquisitions_; }
  const Stream& stream(int i) const { return streams_[static_cast<std::size_t>(i)]; }

  /// Destroys all streams; every stream must be idle. Returns the first
  /// non-Ok status encountered (streams already destroyed are skipped).
  rt::Status destroy_all();

 private:
  rt::Runtime& runtime_;
  std::vector<Stream> streams_;
  std::uint64_t acquisitions_ = 0;
  bool destroyed_ = false;
};

}  // namespace hq::fw
