#include "exec/journal.hpp"

#include <bit>
#include <cstdlib>
#include <istream>
#include <map>
#include <sstream>

#include "common/check.hpp"
#include "common/hash.hpp"
#include "fault/fault.hpp"
#include "obs/report.hpp"

namespace hq::exec {

namespace journal_io {

std::optional<std::map<std::string, std::string>> fields_of(
    const std::string& line, const std::string& kind) {
  std::istringstream in(line);
  std::string token;
  if (!(in >> token) || token != kind) return std::nullopt;
  std::map<std::string, std::string> fields;
  bool ended = false;
  while (in >> token) {
    if (token == "end") {
      ended = true;
      break;
    }
    const std::size_t eq = token.find('=');
    if (eq == std::string::npos || eq == 0) return std::nullopt;
    fields[token.substr(0, eq)] = token.substr(eq + 1);
  }
  if (!ended || (in >> token)) return std::nullopt;  // torn or trailing junk
  return fields;
}

bool get_u64(const std::map<std::string, std::string>& fields,
             const std::string& key, std::uint64_t* out, int base) {
  const auto it = fields.find(key);
  if (it == fields.end()) return false;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(it->second.c_str(), &end, base);
  if (end == nullptr || *end != '\0' || end == it->second.c_str()) return false;
  *out = v;
  return true;
}

bool get_double(const std::map<std::string, std::string>& fields,
                const std::string& key, double* out) {
  const auto it = fields.find(key);
  if (it == fields.end()) return false;
  char* end = nullptr;
  // Exact round-trip: the writer uses std::to_chars shortest form
  // (obs::format_double), which strtod parses back to the identical bits.
  const double v = std::strtod(it->second.c_str(), &end);
  if (end == nullptr || *end != '\0' || end == it->second.c_str()) return false;
  *out = v;
  return true;
}

std::string hex(std::uint64_t value) {
  std::ostringstream os;
  os << std::hex << value;
  return os.str();
}

void mix_device_spec(Fnv1a64& h, const gpu::DeviceSpec& dev) {
  const auto mix_double = [&h](double v) {
    h.mix_u64(std::bit_cast<std::uint64_t>(v));
  };
  h.mix_string(dev.name);
  h.mix_i64(dev.num_smx);
  h.mix_i64(dev.max_blocks_per_smx);
  h.mix_i64(dev.max_threads_per_smx);
  h.mix_i64(dev.max_threads_per_block);
  h.mix_u64(dev.registers_per_smx);
  h.mix_u64(dev.shared_mem_per_smx);
  h.mix_u64(dev.global_memory);
  h.mix_i64(dev.num_work_queues);
  h.mix_u64(dev.kernel_dispatch_latency);
  mix_double(dev.htod_bytes_per_sec);
  mix_double(dev.dtoh_bytes_per_sec);
  h.mix_u64(dev.copy_overhead);
  h.mix_i64(dev.num_copy_engines);
  mix_double(dev.idle_power);
  mix_double(dev.active_base_power);
  mix_double(dev.max_dynamic_power);
  mix_double(dev.power_exponent);
  mix_double(dev.copy_engine_power);
}

}  // namespace journal_io

namespace {

constexpr const char* kMagic = "hq-sweep-journal";
constexpr const char* kVersion = "v1";

using journal_io::fields_of;
using journal_io::get_double;
using journal_io::get_u64;
using journal_io::hex;

}  // namespace

std::uint64_t sweep_grid_key(const SweepGrid& grid,
                             std::span<const SweepPoint> points) {
  Fnv1a64 h;
  const auto mix_double = [&h](double v) {
    h.mix_u64(std::bit_cast<std::uint64_t>(v));
  };
  const auto mix_bool = [&h](bool v) { h.mix_u64(v ? 1 : 0); };
  const auto mix_opt_i64 = [&h](const auto& opt) {
    h.mix_u64(opt.has_value() ? 1 : 0);
    h.mix_i64(opt.has_value() ? static_cast<std::int64_t>(*opt) : 0);
  };

  h.mix_string(kMagic);
  h.mix_u64(points.size());
  for (const SweepPoint& p : points) h.mix_string(p.label());

  // Every result-affecting piece of base config must be mixed in: a key
  // collision between two configs would let --resume silently splice cached
  // outcomes from one configuration into the other's report. num_streams
  // and memory_sync are overwritten from each point's coordinates (already
  // in the labels above), so only those two are exempt.
  journal_io::mix_device_spec(h, grid.base.device);

  h.mix_u64(grid.base.transfer_chunk_bytes);
  mix_bool(grid.base.blocking_transfers);
  h.mix_u64(grid.base.launch_stagger);
  mix_bool(grid.base.functional);
  mix_bool(grid.base.check_invariants);
  mix_bool(grid.base.monitor_power);
  h.mix_u64(grid.base.power_period);
  mix_double(grid.base.sensor.filter_alpha);
  mix_double(grid.base.sensor.noise_stddev);
  mix_double(grid.base.sensor.quantization);
  h.mix_u64(grid.base.sensor.seed);
  mix_bool(grid.base.collect_telemetry);
  h.mix_string(fault::fault_plan_to_string(grid.base.fault_plan));
  h.mix_i64(grid.base.retry.max_attempts);
  h.mix_u64(grid.base.retry.base_backoff);
  mix_double(grid.base.retry.multiplier);
  h.mix_u64(grid.base.retry.max_backoff);
  h.mix_u64(grid.base.watchdog_timeout);

  mix_opt_i64(grid.params.size);
  mix_opt_i64(grid.params.iterations);
  mix_opt_i64(grid.params.seed);
  return h.value();
}

std::string journal_header_line(std::uint64_t grid_key,
                                std::size_t total_points) {
  std::ostringstream os;
  os << kMagic << " version=" << kVersion << " grid=" << hex(grid_key)
     << " points=" << total_points << " end";
  return os.str();
}

std::string journal_outcome_line(const SweepOutcome& o) {
  std::ostringstream os;
  os << "point index=" << o.point.index << " makespan=" << o.makespan
     << " energy=" << obs::format_double(o.energy_exact)
     << " avgw=" << obs::format_double(o.average_power)
     << " peakw=" << obs::format_double(o.peak_power)
     << " occ=" << obs::format_double(o.average_occupancy)
     << " meanle=" << obs::format_double(o.mean_htod_latency_ns)
     << " ilc=" << o.htod_interleave_count
     << " ilb=" << o.htod_interleave_bytes
     << " qdepth=" << obs::format_double(o.peak_copy_queue_depth_htod)
     << " faults=" << o.faults_injected << " quar=" << o.quarantined_apps
     << " verified=" << (o.all_verified ? 1 : 0)
     << " digest=" << hex(o.trace_digest) << " end";
  return os.str();
}

std::optional<SweepOutcome> parse_journal_outcome(
    const std::string& line, std::span<const SweepPoint> points) {
  const auto fields = fields_of(line, "point");
  if (!fields) return std::nullopt;
  std::uint64_t index = 0;
  if (!get_u64(*fields, "index", &index) || index >= points.size()) {
    return std::nullopt;
  }
  SweepOutcome o;
  o.point = points[index];
  std::uint64_t verified = 0;
  const bool ok = get_u64(*fields, "makespan", &o.makespan) &&
                  get_double(*fields, "energy", &o.energy_exact) &&
                  get_double(*fields, "avgw", &o.average_power) &&
                  get_double(*fields, "peakw", &o.peak_power) &&
                  get_double(*fields, "occ", &o.average_occupancy) &&
                  get_double(*fields, "meanle", &o.mean_htod_latency_ns) &&
                  get_u64(*fields, "ilc", &o.htod_interleave_count) &&
                  get_u64(*fields, "ilb", &o.htod_interleave_bytes) &&
                  get_double(*fields, "qdepth",
                             &o.peak_copy_queue_depth_htod) &&
                  get_u64(*fields, "faults", &o.faults_injected) &&
                  get_u64(*fields, "quar", &o.quarantined_apps) &&
                  get_u64(*fields, "verified", &verified) &&
                  get_u64(*fields, "digest", &o.trace_digest, 16);
  if (!ok) return std::nullopt;
  o.all_verified = verified != 0;
  return o;
}

std::size_t load_journal(std::istream& in, std::uint64_t grid_key,
                         std::span<const SweepPoint> points,
                         std::vector<std::optional<SweepOutcome>>* cached,
                         bool* header_read) {
  HQ_CHECK(cached != nullptr);
  if (header_read != nullptr) *header_read = false;
  cached->resize(points.size());
  std::string line;
  if (!std::getline(in, line)) return 0;  // empty file = fresh journal
  const auto header = fields_of(line, kMagic);
  HQ_CHECK_MSG(header.has_value(),
               "sweep journal: unrecognized or torn header line");
  const auto version = header->find("version");
  HQ_CHECK_MSG(version != header->end() && version->second == kVersion,
               "sweep journal: unsupported version '"
                   << (version == header->end() ? "" : version->second)
                   << "' (expected " << kVersion << ")");
  std::uint64_t key = 0;
  std::uint64_t total = 0;
  HQ_CHECK_MSG(get_u64(*header, "grid", &key, 16) &&
                   get_u64(*header, "points", &total),
               "sweep journal: malformed header line");
  HQ_CHECK_MSG(key == grid_key && total == points.size(),
               "sweep journal: grid mismatch (journal grid="
                   << hex(key) << " points=" << total << ", sweep grid="
                   << hex(grid_key) << " points=" << points.size()
                   << ") — refusing to resume a different sweep");
  if (header_read != nullptr) *header_read = true;
  std::size_t loaded = 0;
  while (std::getline(in, line)) {
    auto outcome = parse_journal_outcome(line, points);
    if (!outcome) continue;  // torn trailing line after a crash
    auto& slot = (*cached)[outcome->point.index];
    if (!slot) ++loaded;
    slot = std::move(*outcome);
  }
  return loaded;
}

}  // namespace hq::exec
