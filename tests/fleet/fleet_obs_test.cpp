// The fleet observability plane: attaching per-device telemetry, the job
// lifecycle tracer, and fleet-scope metrics must leave the pinned golden
// fleet digests untouched (zero-perturbation); every export (fleet metrics
// JSON, device-labeled Prometheus, multi-device Chrome trace, snapshot
// JSONL) must be byte-identical across runs; and the recorded lifecycle
// chains must tell a coherent story (monotone times, arrival -> placement
// -> dispatch -> terminal, steal hops where the scheduler stole).
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "common/units.hpp"
#include "fleet/fleet.hpp"
#include "fleet/report.hpp"
#include "fleet/telemetry.hpp"
#include "tests/common/json_check.hpp"
#include "tests/hyperq/synthetic_app.hpp"

namespace hq::fleet {
namespace {

using fw::testing::SyntheticApp;

// The golden_fleet_test scenarios, re-run with the observability plane on.
constexpr std::uint64_t kPinnedHomogeneousDigest = 0x71a2819fb95e7eadULL;
constexpr std::uint64_t kPinnedHeterogeneousDigest = 0xc992d15f5854845bULL;

serve::ServiceConfig golden_base() {
  serve::ServiceConfig config;
  config.window = 10 * kMillisecond;
  config.mean_interarrival = 100 * kMicrosecond;
  config.num_streams = 2;
  config.max_inflight = 2;
  SyntheticApp::Spec spec;
  spec.num_kernels = 3;
  spec.block_duration = 30 * kMicrosecond;
  config.classes.push_back(
      {fw::WorkloadItem{"synthetic",
                        [spec] { return std::make_unique<SyntheticApp>(spec); }},
       0});
  config.collect_metrics = true;
  return config;
}

FleetConfig homogeneous_config() {
  FleetConfig config;
  config.base = golden_base();
  config.resize_homogeneous(4);
  config.placement = PlacementPolicy::LeastLoaded;
  return config;
}

FleetConfig heterogeneous_config() {
  FleetConfig config;
  config.base = golden_base();
  config.devices = {
      gpu::DeviceSpec::tesla_k20(), gpu::DeviceSpec::tesla_k20(),
      gpu::DeviceSpec::single_copy_engine(),
      gpu::DeviceSpec::single_copy_engine()};
  config.placement = PlacementPolicy::CopyAware;
  config.work_stealing = true;
  return config;
}

/// Class-affinity with a single class funnels everything to device 0, so
/// peers must steal — guarantees Stolen lifecycle events and flow arrows.
FleetConfig stealing_config() {
  FleetConfig config;
  config.base = golden_base();
  config.base.mean_interarrival = 50 * kMicrosecond;
  config.base.queue_cap = 16;
  config.resize_homogeneous(4);
  config.placement = PlacementPolicy::ClassAffinity;
  config.work_stealing = true;
  return config;
}

TEST(FleetObsTest, ObserversLeaveGoldenDigestsPinned) {
  const FleetResult homog = FleetService(homogeneous_config()).run();
  EXPECT_EQ(fleet_report_digest(homog.report), kPinnedHomogeneousDigest)
      << std::hex << "digest moved with observers attached: 0x"
      << fleet_report_digest(homog.report);
  const FleetResult hetero = FleetService(heterogeneous_config()).run();
  EXPECT_EQ(fleet_report_digest(hetero.report), kPinnedHeterogeneousDigest)
      << std::hex << "digest moved with observers attached: 0x"
      << fleet_report_digest(hetero.report);
}

TEST(FleetObsTest, ResultCarriesObservabilityOnlyWhenAsked) {
  const FleetResult on = FleetService(homogeneous_config()).run();
  ASSERT_EQ(on.devices.size(), 4u);
  for (const FleetDeviceResult& dev : on.devices) {
    EXPECT_NE(dev.telemetry, nullptr);
    EXPECT_NE(dev.metrics, nullptr);
  }
  EXPECT_NE(on.lifecycle, nullptr);
  EXPECT_NE(on.fleet_metrics, nullptr);

  FleetConfig off_config = homogeneous_config();
  off_config.base.collect_metrics = false;
  const FleetResult off = FleetService(off_config).run();
  for (const FleetDeviceResult& dev : off.devices) {
    EXPECT_EQ(dev.telemetry, nullptr);
    EXPECT_EQ(dev.metrics, nullptr);
  }
  EXPECT_EQ(off.lifecycle, nullptr);
  EXPECT_EQ(off.fleet_metrics, nullptr);
}

TEST(FleetObsTest, EveryExportIsByteIdenticalAcrossRuns) {
  const FleetResult a = FleetService(heterogeneous_config()).run();
  const FleetResult b = FleetService(heterogeneous_config()).run();
  EXPECT_EQ(fleet_metrics_json(a), fleet_metrics_json(b));
  EXPECT_EQ(fleet_prometheus_text(a), fleet_prometheus_text(b));
  EXPECT_EQ(fleet_chrome_trace_json(a), fleet_chrome_trace_json(b));
  EXPECT_EQ(fleet_snapshots_jsonl(a, 500 * kMicrosecond),
            fleet_snapshots_jsonl(b, 500 * kMicrosecond));
}

TEST(FleetObsTest, FleetMetricsJsonIsWellFormedAndVersioned) {
  const FleetResult result = FleetService(homogeneous_config()).run();
  const std::string json = fleet_metrics_json(result);
  EXPECT_TRUE(hq::testing::json_well_formed(json));
  EXPECT_NE(json.find("\"schema_version\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"devices\": ["), std::string::npos);
  EXPECT_NE(json.find("\"fleet_metrics\": ["), std::string::npos);
  EXPECT_NE(json.find("\"merged_metrics\": ["), std::string::npos);
  // Fleet-scope latency breakdowns with exact percentiles.
  EXPECT_NE(json.find("fleet_job_queue_wait_ns"), std::string::npos);
  EXPECT_NE(json.find("fleet_job_placement_ns"), std::string::npos);
  EXPECT_NE(json.find("fleet_job_service_ns"), std::string::npos);
  EXPECT_NE(json.find("fleet_job_turnaround_ns_p99_ns"), std::string::npos);
}

TEST(FleetObsTest, PrometheusCarriesDeviceLabelsAndMovementCounters) {
  const FleetResult result = FleetService(stealing_config()).run();
  const std::string prom = fleet_prometheus_text(result);
  for (int d = 0; d < 4; ++d) {
    const std::string label = "{device=\"" + std::to_string(d) + "\"}";
    EXPECT_NE(prom.find("hq_serve_arrived" + label), std::string::npos)
        << "device " << d;
    EXPECT_NE(prom.find("hq_device_stolen_in" + label), std::string::npos);
    EXPECT_NE(prom.find("hq_device_requeued_in" + label), std::string::npos);
    EXPECT_NE(prom.find("hq_device_breaker_trips" + label),
              std::string::npos);
  }
  // Fleet-scope counters render unlabeled; merged series as hq_fleet_*.
  EXPECT_NE(prom.find("\nhq_fleet_steal_hops "), std::string::npos);
  EXPECT_NE(prom.find("\nhq_fleet_serve_arrived "), std::string::npos);
}

TEST(FleetObsTest, LifecycleChainsAreCoherent) {
  const FleetResult result = FleetService(homogeneous_config()).run();
  const serve::JobLifecycleTracer& tracer = *result.lifecycle;
  ASSERT_EQ(tracer.num_jobs(), result.jobs.size());
  for (const serve::JobRecord& job : result.jobs) {
    const std::vector<serve::JobEvent>& chain = tracer.events(job.job_id);
    ASSERT_FALSE(chain.empty()) << "job " << job.job_id;
    EXPECT_EQ(chain.front().kind, serve::JobEventKind::Arrived);
    EXPECT_EQ(chain.front().at, job.arrived_at);
    for (std::size_t i = 1; i < chain.size(); ++i) {
      EXPECT_LE(chain[i - 1].at, chain[i].at) << "job " << job.job_id;
    }
    if (job.state == serve::JobState::CompletedOk) {
      EXPECT_EQ(chain.back().kind, serve::JobEventKind::CompletedOk);
      EXPECT_EQ(chain.back().at, job.completed_at);
      bool dispatched = false;
      for (const serve::JobEvent& e : chain) {
        if (e.kind == serve::JobEventKind::Dispatched) {
          dispatched = true;
          EXPECT_EQ(e.at, job.dispatched_at);
          EXPECT_EQ(e.device, result.owners[std::size_t(job.job_id)]);
        }
      }
      EXPECT_TRUE(dispatched) << "job " << job.job_id;
    }
  }
}

TEST(FleetObsTest, StealHopsAreRecordedAndDrawnAsFlows) {
  const FleetResult result = FleetService(stealing_config()).run();
  EXPECT_GT(result.report.stolen, 0u);
  EXPECT_EQ(result.lifecycle->steal_hops(), result.report.stolen);

  std::uint64_t stolen_events = 0;
  for (std::size_t job = 0; job < result.lifecycle->num_jobs(); ++job) {
    for (const serve::JobEvent& e :
         result.lifecycle->events(static_cast<int>(job))) {
      if (e.kind != serve::JobEventKind::Stolen) continue;
      ++stolen_events;
      EXPECT_EQ(e.from_device, 0);  // class-affinity funnels to device 0
      EXPECT_GT(e.device, 0);
    }
  }
  EXPECT_EQ(stolen_events, result.report.stolen);

  const std::string trace = fleet_chrome_trace_json(result);
  EXPECT_TRUE(hq::testing::json_well_formed(trace));
  EXPECT_NE(trace.find("\"name\": \"steal\", \"cat\": \"flow\", "
                       "\"ph\": \"s\""),
            std::string::npos);
  EXPECT_NE(trace.find("\"ph\": \"f\""), std::string::npos);
}

/// Chaos scenario with the observability plane on: device 0 crashes
/// mid-window while injecting copy stalls, hedging races its stragglers.
FleetConfig chaos_obs_config() {
  FleetConfig config;
  config.base = golden_base();
  config.resize_homogeneous(3);
  config.placement = PlacementPolicy::LeastLoaded;
  config.hedging = true;
  config.hedge_threshold = 1.5;
  config.hedge_min_samples = 2;
  fault::FaultPlan chaotic = fault::FaultPlan::zero();
  chaotic.copy_stall_rate = 0.5;
  chaotic.copy_stall_ns = kMillisecond;
  chaotic.crash_at = 6 * kMillisecond;
  config.device_fault_plans = {chaotic, fault::FaultPlan{},
                               fault::FaultPlan{}};
  return config;
}

TEST(FleetObsTest, FaultAndFaultDomainCountersSurfaceInExports) {
  const FleetResult result = FleetService(chaos_obs_config()).run();
  const std::string prom = fleet_prometheus_text(result);

  // Per-device fault-injector counters carry device labels and roll up
  // into the merged hq_fleet_* series.
  EXPECT_NE(prom.find("hq_fault_injected_total{device=\"0\"}"),
            std::string::npos);
  EXPECT_NE(prom.find("hq_fault_copy_stalls{device=\"0\"}"),
            std::string::npos);
  EXPECT_NE(prom.find("\nhq_fleet_fault_injected_total "), std::string::npos);
  EXPECT_NE(prom.find("\nhq_fleet_fault_copy_stalls "), std::string::npos);
  // Fault-domain counters: device-labeled and fleet-scope.
  EXPECT_NE(prom.find("hq_device_lifecycle_downs{device=\"0\"}"),
            std::string::npos);
  EXPECT_NE(prom.find("\nhq_fleet_failed_over "), std::string::npos);
  EXPECT_NE(prom.find("\nhq_fleet_hedges_launched "), std::string::npos);
  EXPECT_NE(prom.find("\nhq_fleet_shed_failover_exhausted "),
            std::string::npos);

  const std::string json = fleet_metrics_json(result);
  EXPECT_TRUE(hq::testing::json_well_formed(json));
  EXPECT_NE(json.find("fault_injected_total"), std::string::npos);
  EXPECT_NE(json.find("device_lifecycle_downs"), std::string::npos);
  EXPECT_NE(json.find("fleet_failed_over"), std::string::npos);
}

TEST(FleetObsTest, FailoverAndHedgeHopsAreRecordedAndDrawnAsFlows) {
  const FleetResult result = FleetService(chaos_obs_config()).run();
  EXPECT_EQ(result.lifecycle->failover_hops(), result.report.failed_over);
  EXPECT_EQ(result.lifecycle->hedge_launches(),
            result.report.hedges_launched);
  ASSERT_GT(result.report.failed_over + result.report.hedges_launched, 0u);

  const std::string trace = fleet_chrome_trace_json(result);
  EXPECT_TRUE(hq::testing::json_well_formed(trace));
  if (result.report.failed_over > 0) {
    EXPECT_NE(trace.find("\"name\": \"failover\", \"cat\": \"flow\", "
                         "\"ph\": \"s\""),
              std::string::npos);
  }
  if (result.report.hedges_launched > 0) {
    EXPECT_NE(trace.find("\"name\": \"hedge\", \"cat\": \"flow\", "
                         "\"ph\": \"s\""),
              std::string::npos);
  }
}

TEST(FleetObsTest, ChromeTraceHasOneProcessLanePerDevice) {
  const FleetResult result = FleetService(heterogeneous_config()).run();
  const std::string trace = fleet_chrome_trace_json(result);
  EXPECT_TRUE(hq::testing::json_well_formed(trace));
  for (int d = 0; d < 4; ++d) {
    std::ostringstream meta;
    meta << "{\"name\": \"process_name\", \"ph\": \"M\", \"pid\": " << d;
    EXPECT_NE(trace.find(meta.str()), std::string::npos) << "device " << d;
  }
  // Per-device counter tracks ride along on each pid.
  EXPECT_NE(trace.find("\"name\": \"serve_queue_depth\", \"ph\": \"C\""),
            std::string::npos);
}

TEST(FleetObsTest, SnapshotsAreClampedDeterministicJsonLines) {
  const FleetResult result = FleetService(homogeneous_config()).run();
  const DurationNs interval = 2 * kMillisecond;
  const std::vector<FleetSnapshot> snaps =
      sample_fleet_snapshots(result, interval);
  ASSERT_GE(snaps.size(), 2u);
  EXPECT_EQ(snaps.front().t, 0);
  EXPECT_EQ(snaps.back().t, result.report.total_time);
  for (std::size_t i = 1; i < snaps.size(); ++i) {
    EXPECT_GT(snaps[i].t, snaps[i - 1].t);
    ASSERT_EQ(snaps[i].devices.size(), 4u);
  }
  // The final snapshot agrees with the report: all queues drained and the
  // per-device completed counters sum to the fleet total.
  double completed = 0;
  for (const DeviceSnapshot& dev : snaps.back().devices) {
    EXPECT_EQ(dev.queue_depth, 0.0);
    EXPECT_EQ(dev.inflight, 0.0);
    completed += dev.completed;
  }
  EXPECT_EQ(completed, static_cast<double>(result.report.completed));

  const std::string jsonl = fleet_snapshots_jsonl(result, interval);
  std::istringstream lines(jsonl);
  std::string line;
  std::size_t line_count = 0;
  while (std::getline(lines, line)) {
    ++line_count;
    EXPECT_TRUE(hq::testing::json_well_formed(line)) << line;
    EXPECT_NE(line.find("\"schema_version\": 1"), std::string::npos);
  }
  EXPECT_EQ(line_count, snaps.size());

  EXPECT_ANY_THROW(sample_fleet_snapshots(result, 0));
}

TEST(FleetObsTest, ExportsRequireMetricsCollection) {
  FleetConfig config = homogeneous_config();
  config.base.collect_metrics = false;
  const FleetResult result = FleetService(config).run();
  EXPECT_ANY_THROW(fleet_metrics_json(result));
  EXPECT_ANY_THROW(fleet_prometheus_text(result));
  EXPECT_ANY_THROW(fleet_chrome_trace_json(result));
  EXPECT_ANY_THROW(fleet_snapshots_jsonl(result, kMillisecond));
}

}  // namespace
}  // namespace hq::fleet
