// CUDA-runtime-like host API over the simulated device.
//
// This is the API surface the paper's Hyper-Q Management Framework wraps
// (its Kernel class methods encapsulate cudaMallocHost / cudaMalloc /
// cudaMemcpyAsync / kernel launches / cudaFree*, Table II). Operations are
// issued from simulated host threads (hq::sim::Task coroutines); every
// asynchronous submission costs driver-call time in virtual time, which is
// what makes concurrent host threads interleave their copy-queue submissions
// exactly as on real hardware.
//
// Memory objects carry a real backing store, so in functional mode transfers
// move actual bytes and kernels can compute on "device" data; tests verify
// the ported Rodinia algorithms end to end.
#pragma once

#include <cstddef>
#include <deque>
#include <span>
#include <unordered_map>
#include <vector>

#include "cudart/status.hpp"
#include "gpusim/device.hpp"
#include "sim/simulator.hpp"
#include "sim/task.hpp"

namespace hq::fault {
class FaultInjector;
}

namespace hq::rt {

/// Opaque handle to a device-memory allocation.
struct DevicePtr {
  std::uint64_t id = 0;
  bool null() const { return id == 0; }
  friend bool operator==(const DevicePtr&, const DevicePtr&) = default;
};

/// Opaque handle to a pinned host allocation.
struct HostPtr {
  std::uint64_t id = 0;
  bool null() const { return id == 0; }
  friend bool operator==(const HostPtr&, const HostPtr&) = default;
};

/// Opaque handle to a stream.
struct Stream {
  std::int32_t id = -1;
  bool valid() const { return id >= 0; }
  friend bool operator==(const Stream&, const Stream&) = default;
};

/// Opaque handle to a timing event (cudaEvent analogue).
struct EventHandle {
  std::uint64_t id = 0;
  friend bool operator==(const EventHandle&, const EventHandle&) = default;
};

/// Kernel launch description at the API level.
struct LaunchConfig {
  std::string name;
  gpu::Dim3 grid;
  gpu::Dim3 block;
  std::uint32_t regs_per_thread = 32;
  Bytes smem_per_block = 0;
  DurationNs block_duration = kMicrosecond;
  double contention_sensitivity = 0.0;
  /// Functional payload executed at kernel completion.
  std::function<void()> body;
};

/// Retry discipline for transient submission failures: capped exponential
/// backoff while the submitting coroutine stays suspended (so the stream
/// submission *order* — and therefore the functional output — is unchanged
/// by retries). Attempt n waits min(base_backoff * multiplier^(n-1),
/// max_backoff) before re-submitting; after max_attempts total attempts the
/// failure becomes sticky on the stream.
struct RetryPolicy {
  int max_attempts = 4;
  DurationNs base_backoff = 20 * kMicrosecond;
  double multiplier = 2.0;
  DurationNs max_backoff = kMillisecond;
};

/// Outcome of one submission attempt inside an AsyncSubmit.
struct SubmitOutcome {
  Status status = Status::Ok;
  /// Only retryable failures re-enter the backoff loop; non-retryable ones
  /// (e.g. ops on a stream already in fault state) surface immediately.
  bool retryable = false;
};

struct RuntimeOptions {
  /// Host driver overhead charged for an async memcpy submission.
  DurationNs memcpy_submit_overhead = 5 * kMicrosecond;
  /// Host driver overhead charged for a kernel launch submission.
  DurationNs kernel_submit_overhead = 5 * kMicrosecond;
  /// When false, transfers skip the actual byte movement (timing-only runs).
  bool functional = true;
  /// Retry discipline for transient launch failures.
  RetryPolicy retry;
  /// Optional hq_fault injector; when set, kernel-launch submissions and
  /// pinned host allocations consult it. Null = no faults (and, because the
  /// zero-fault path performs the identical single scheduled submission
  /// event, bit-identical schedules).
  fault::FaultInjector* fault_injector = nullptr;
};

/// Lifetime counters over all allocations; the basis for the hq_check
/// leak/double-free invariant (allocs == frees and no failed frees once a
/// run has torn down).
struct MemStats {
  std::uint64_t device_allocs = 0;
  std::uint64_t device_frees = 0;
  std::uint64_t host_allocs = 0;
  std::uint64_t host_frees = 0;
  /// free_device/free_host calls that failed with InvalidHandle — a
  /// double-free or a free of a never-allocated handle.
  std::uint64_t failed_frees = 0;
};

/// The runtime. One instance owns all allocations, streams, and events for
/// one device.
class Runtime {
 public:
  Runtime(sim::Simulator& sim, gpu::Device& device, RuntimeOptions options = {});

  // --- memory management ---------------------------------------------------
  /// Allocates device global memory; fails with OutOfMemory past capacity
  /// and InvalidValue for zero bytes.
  Result<DevicePtr> malloc_device(Bytes bytes);
  Status free_device(DevicePtr ptr);
  /// Allocates pinned host memory (cudaMallocHost analogue).
  Result<HostPtr> malloc_host(Bytes bytes);
  Status free_host(HostPtr ptr);

  Bytes device_bytes_in_use() const { return device_bytes_in_use_; }
  std::size_t device_allocation_count() const { return device_allocs_.size(); }
  std::size_t host_allocation_count() const { return host_allocs_.size(); }
  const MemStats& mem_stats() const { return mem_stats_; }

  /// Raw access to backing stores (functional mode).
  std::span<std::byte> host_bytes(HostPtr ptr);
  std::span<std::byte> device_bytes(DevicePtr ptr);

  /// Typed views; size must divide evenly.
  template <typename T>
  std::span<T> host_as(HostPtr ptr) {
    return typed_span<T>(host_bytes(ptr));
  }
  template <typename T>
  std::span<T> device_as(DevicePtr ptr) {
    return typed_span<T>(device_bytes(ptr));
  }

  // --- streams -------------------------------------------------------------
  Stream stream_create();
  /// cudaStreamCreateWithPriority analogue (CC 3.5 feature): lower value =
  /// higher priority. The device clamps nothing; any int is accepted.
  Stream stream_create_with_priority(int priority);
  /// Destroys an idle stream; returns NotReady if work is still pending.
  Status stream_destroy(Stream stream);
  std::size_t stream_count() const { return streams_.size(); }

  // --- asynchronous operations (awaitable submissions) ----------------------
  //
  // These return lightweight awaitables rather than sim::Task coroutines:
  // the awaiter object carries the submission closure and lives in the
  // calling coroutine's frame for the duration of the co_await expression.
  // (This also sidesteps GCC 12.2's double-destruction of non-trivially-
  // destructible coroutine parameters; see sim/task.hpp.)

  /// Awaitable submission: suspends the calling task for the driver
  /// overhead, then performs the enqueue. Must be co_awaited exactly once,
  /// and only as a *named local*:
  ///
  ///   auto op = rt.launch_kernel(stream, cfg);
  ///   co_await op;
  ///
  /// Awaiting the temporary directly (`co_await rt.launch_kernel(...)`) is
  /// disabled on purpose: GCC 12.2 miscompiles non-trivially-destructible
  /// temporaries inside co_await full-expressions (frame-slot reuse causing
  /// double destruction; see sim/task.hpp). The two-statement form keeps all
  /// non-trivial temporaries out of the co_await expression.
  class [[nodiscard]] AsyncSubmit {
   public:
    /// One submission attempt (1-based attempt number). Ok means the work
    /// was handed to the device; a retryable failure re-enters the backoff
    /// loop until the policy's attempt budget runs out.
    using Attempt = std::function<SubmitOutcome(int attempt)>;

    AsyncSubmit(sim::Simulator& sim, DurationNs overhead, RetryPolicy retry,
                Attempt attempt, std::function<void(Status)> give_up = nullptr)
        : sim_(sim),
          overhead_(overhead),
          retry_(retry),
          attempt_(std::move(attempt)),
          give_up_(std::move(give_up)) {}

    /// Wraps an infallible enqueue (the common, fault-free case).
    AsyncSubmit(sim::Simulator& sim, DurationNs overhead,
                std::function<void()> enqueue)
        : AsyncSubmit(sim, overhead, RetryPolicy{},
                      [enqueue = std::move(enqueue)](int) {
                        enqueue();
                        return SubmitOutcome{};
                      }) {}

    auto operator co_await() & noexcept {
      struct Awaiter {
        AsyncSubmit& op;
        bool await_ready() const noexcept { return false; }
        void await_suspend(std::coroutine_handle<> h) const {
          // `op` is a named local in the caller's frame; it stays valid
          // across the suspension (including across backoff retries).
          op.run_attempt(h, 1, op.overhead_);
        }
        Status await_resume() const noexcept { return op.result_; }
      };
      return Awaiter{*this};
    }
    /// Deleted: bind the submission to a named local first (see above).
    auto operator co_await() && noexcept = delete;

    /// Final status after the co_await completed (also its result value).
    Status result() const { return result_; }

   private:
    void run_attempt(std::coroutine_handle<> h, int attempt, DurationNs delay);
    DurationNs backoff_after(int attempt) const;

    sim::Simulator& sim_;
    DurationNs overhead_;
    RetryPolicy retry_;
    Attempt attempt_;
    std::function<void(Status)> give_up_;
    Status result_ = Status::Ok;
  };

  /// Awaitable that suspends until a stream drains.
  class [[nodiscard]] StreamIdle {
   public:
    StreamIdle(Runtime& rt, Stream stream) : rt_(rt), stream_(stream) {}
    bool await_ready() const { return rt_.stream_rec(stream_).pending == 0; }
    void await_suspend(std::coroutine_handle<> h) const {
      rt_.stream_rec(stream_).idle_waiters.push_back(h);
    }
    void await_resume() const noexcept {}

   private:
    Runtime& rt_;
    Stream stream_;
  };

  /// Awaitable that suspends until the whole device drains.
  class [[nodiscard]] DeviceIdle {
   public:
    explicit DeviceIdle(Runtime& rt) : rt_(rt) {}
    bool await_ready() const { return rt_.total_pending_ == 0; }
    void await_suspend(std::coroutine_handle<> h) const {
      rt_.device_idle_waiters_.push_back(h);
    }
    void await_resume() const noexcept {}

   private:
    Runtime& rt_;
  };

  /// Validates a launch configuration against device limits.
  Status validate_launch(const LaunchConfig& config) const;

  /// Submits an async host-to-device copy of `bytes` from `src` to `dst`,
  /// starting `offset` bytes into both allocations. The awaitable completes
  /// when the *submission* is done (driver overhead elapsed); the copy
  /// itself completes in stream order. Handles and sizes are validated
  /// eagerly (throws hq::Error on misuse). A zero-byte copy is valid (as in
  /// CUDA): it costs the driver overhead and completes in stream order, but
  /// never reaches a copy engine.
  AsyncSubmit memcpy_htod_async(Stream stream, DevicePtr dst, HostPtr src,
                                Bytes bytes, gpu::OpTag tag = {},
                                Bytes offset = 0);
  /// Submits an async device-to-host copy.
  AsyncSubmit memcpy_dtoh_async(Stream stream, HostPtr dst, DevicePtr src,
                                Bytes bytes, gpu::OpTag tag = {},
                                Bytes offset = 0);
  /// Submits a kernel launch; throws hq::Error on an invalid configuration
  /// (use validate_launch for a non-throwing check).
  AsyncSubmit launch_kernel(Stream stream, LaunchConfig config,
                            gpu::OpTag tag = {});

  // --- synchronization -------------------------------------------------------
  /// Suspends until every operation submitted to the stream has completed.
  StreamIdle stream_synchronize(Stream stream) { return {*this, stream}; }
  /// Suspends until all streams are idle.
  DeviceIdle device_synchronize() { return DeviceIdle{*this}; }

  /// True when the stream has no pending operations.
  bool stream_query(Stream stream) const;

  /// Sticky fault status of a stream: Ok until a submission on it exhausted
  /// its retry budget, then the terminal status (every later submission on
  /// the stream fails fast with it, like a sticky CUDA context error scoped
  /// to the stream). The recovery layer uses this to quarantine the app.
  Status stream_fault(Stream stream) const { return stream_rec(stream).fault; }

  // --- events ----------------------------------------------------------------
  EventHandle event_create();
  /// Records the event on a stream: it captures the virtual time at which
  /// all prior work on the stream has finished. Submission is immediate.
  void event_record(EventHandle event, Stream stream);
  /// True once a recorded event has triggered.
  bool event_complete(EventHandle event) const;
  /// Completion time of a triggered event; throws if not yet complete.
  TimeNs event_time(EventHandle event) const;
  Status event_destroy(EventHandle event);

  gpu::Device& device() { return device_; }
  const RuntimeOptions& options() const { return options_; }

 private:
  /// Accounting-first allocation: `size` is tracked (and enforced against
  /// device capacity) at malloc time, but the zeroed backing store is only
  /// materialized on the first host_bytes/device_bytes access. Timing-only
  /// runs never touch their buffers, so they never pay the memset — and the
  /// first functional touch sees exactly the zero-filled state the eager
  /// allocation used to provide.
  struct Allocation {
    std::unique_ptr<std::byte[]> data;  ///< null until first byte access
    Bytes size = 0;
  };
  struct StreamRec {
    std::uint64_t pending = 0;
    std::vector<std::coroutine_handle<>> idle_waiters;
    bool alive = true;
    /// Sticky terminal status (Ok = healthy); see Runtime::stream_fault.
    Status fault = Status::Ok;
  };
  struct EventRec {
    bool recorded = false;
    bool complete = false;
    TimeNs time = 0;
  };

  template <typename T>
  static std::span<T> typed_span(std::span<std::byte> raw) {
    HQ_CHECK_MSG(raw.size() % sizeof(T) == 0,
                 "allocation size not a multiple of element size");
    return std::span<T>(reinterpret_cast<T*>(raw.data()),
                        raw.size() / sizeof(T));
  }

  StreamRec& stream_rec(Stream stream);
  const StreamRec& stream_rec(Stream stream) const;
  Allocation& device_alloc(DevicePtr ptr);
  Allocation& host_alloc(HostPtr ptr);
  void op_submitted(Stream stream);
  void op_completed(Stream stream);
  AsyncSubmit memcpy_impl(Stream stream, gpu::CopyDirection dir, HostPtr host,
                          DevicePtr dev, Bytes bytes, Bytes offset,
                          gpu::OpTag tag);

  sim::Simulator& sim_;
  gpu::Device& device_;
  RuntimeOptions options_;

  std::unordered_map<std::uint64_t, Allocation> device_allocs_;
  std::unordered_map<std::uint64_t, Allocation> host_allocs_;
  std::unordered_map<std::int32_t, StreamRec> streams_;
  std::unordered_map<std::uint64_t, EventRec> events_;
  std::uint64_t next_device_id_ = 1;
  std::uint64_t next_host_id_ = 1;
  std::int32_t next_stream_id_ = 0;
  std::uint64_t next_event_id_ = 1;
  Bytes device_bytes_in_use_ = 0;
  MemStats mem_stats_;

  std::uint64_t total_pending_ = 0;
  std::vector<std::coroutine_handle<>> device_idle_waiters_;

  /// Deterministic keys for fault draws: launch submissions and host
  /// allocations are numbered in issue order (virtual-time order, so the
  /// sequence is identical at any --jobs count).
  std::uint64_t next_launch_key_ = 0;
  std::uint64_t next_host_alloc_key_ = 0;
};

}  // namespace hq::rt
