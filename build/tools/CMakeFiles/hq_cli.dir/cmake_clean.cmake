file(REMOVE_RECURSE
  "CMakeFiles/hq_cli.dir/cli.cpp.o"
  "CMakeFiles/hq_cli.dir/cli.cpp.o.d"
  "libhq_cli.a"
  "libhq_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hq_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
