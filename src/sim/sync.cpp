#include "sim/sync.hpp"

namespace hq::sim {

void Event::fire() {
  HQ_CHECK_MSG(!fired_, "Event fired twice");
  fired_ = true;
  while (!waiters_.empty()) {
    std::coroutine_handle<> h = waiters_.front();
    waiters_.pop_front();
    sim_.schedule(0, [h] { h.resume(); });
  }
}

void Mutex::unlock() {
  HQ_CHECK_MSG(locked_, "unlock of an unlocked Mutex");
  if (waiters_.empty()) {
    locked_ = false;
    return;
  }
  // Ownership transfers directly to the oldest waiter; the mutex stays
  // locked so tasks arriving in between cannot barge ahead.
  std::coroutine_handle<> h = waiters_.front();
  waiters_.pop_front();
  sim_.schedule(0, [h] { h.resume(); });
}

void Semaphore::release() {
  if (!waiters_.empty()) {
    std::coroutine_handle<> h = waiters_.front();
    waiters_.pop_front();
    sim_.schedule(0, [h] { h.resume(); });
    return;
  }
  ++count_;
}

}  // namespace hq::sim
