// Golden-output tests: exact, byte-for-byte renderings of deterministic
// scenarios. These catch any unintended change to the simulation schedule,
// the trace pipeline, or the renderers.
#include <gtest/gtest.h>

#include "gpusim/device.hpp"
#include "sim/simulator.hpp"
#include "trace/ascii_timeline.hpp"
#include "trace/chrome_trace.hpp"
#include "trace/trace.hpp"

namespace hq {
namespace {

TEST(GoldenOutputTest, TwoStreamTimelineRendersExactly) {
  sim::Simulator sim;
  trace::Recorder recorder;
  gpu::Device device(sim, gpu::DeviceSpec::tesla_k20(), &recorder);
  device.register_stream(0);
  device.register_stream(1);

  device.submit_copy(0, gpu::CopyRequest{gpu::CopyDirection::HtoD,
                                         61000, nullptr},
                     gpu::OpTag{0, "in"});
  device.submit_kernel(0,
                       gpu::KernelLaunch{"k", gpu::Dim3{1, 1, 1},
                                         gpu::Dim3{32, 1, 1}, 16, 0,
                                         18 * kMicrosecond, 0.0, nullptr},
                       gpu::OpTag{0, "k"});
  device.submit_kernel(1,
                       gpu::KernelLaunch{"k2", gpu::Dim3{1, 1, 1},
                                         gpu::Dim3{32, 1, 1}, 16, 0,
                                         36 * kMicrosecond, 0.0, nullptr},
                       gpu::OpTag{1, "k2"});
  sim.run();

  // Copy: 8us overhead + 10us transfer = 18us; then dispatch 3us + 18us
  // kernel => stream 0 spans [0, 39us]. Stream 1: dispatch 3us + 36us.
  trace::AsciiTimelineOptions opt;
  opt.width = 39;
  const std::string expected =
      "         |t=0.00 ns .. 39.00 us\n"
      "Stream 0 |HHHHHHHHHHHHHHHHHH...KKKKKKKKKKKKKKKKKK|\n"
      "Stream 1 |...KKKKKKKKKKKKKKKKKKKKKKKKKKKKKKKKKKKK|\n"
      "          H=HtoD copy  D=DtoH copy  K=kernel  h=host  w=lock wait  "
      ".=idle\n";
  EXPECT_EQ(render_ascii_timeline(recorder, opt), expected);
}

TEST(GoldenOutputTest, ChromeTraceJsonExact) {
  trace::Recorder recorder;
  recorder.add(2, 5, trace::SpanKind::MemcpyHtoD, "in", 1000,
                           3500);
  const std::string expected =
      "[\n"
      "  {\"name\": \"in\", \"cat\": \"HtoD\", \"ph\": \"X\", \"ts\": 1, "
      "\"dur\": 2.5, \"pid\": 0, \"tid\": 2, \"args\": {\"app\": 5}}\n"
      "]\n";
  EXPECT_EQ(chrome_trace_json(recorder), expected);
}

TEST(GoldenOutputTest, DeterministicEventCountForFixedScenario) {
  // The total number of simulator events for a fixed scenario is part of
  // the deterministic contract: scheduling changes show up here first.
  auto run_once = [] {
    sim::Simulator sim;
    gpu::Device device(sim, gpu::DeviceSpec::tesla_k20());
    device.register_stream(0);
    device.register_stream(1);
    for (int i = 0; i < 10; ++i) {
      device.submit_kernel(i % 2,
                           gpu::KernelLaunch{"k", gpu::Dim3{64, 1, 1},
                                             gpu::Dim3{256, 1, 1}, 16, 0,
                                             5 * kMicrosecond, 0.0, nullptr},
                           {});
    }
    sim.run();
    return sim.events_processed();
  };
  const auto first = run_once();
  EXPECT_EQ(first, run_once());
  EXPECT_GT(first, 20u);
}

TEST(GoldenOutputTest, TraceDigestPinnedForFixedScenario) {
  // Golden trace digest for the two-stream scenario above. Any change to
  // device timing, span emission order, or the digest algorithm itself
  // moves this constant; update it only for intentional schedule changes.
  auto run_once = [] {
    sim::Simulator sim;
    trace::Recorder recorder;
    gpu::Device device(sim, gpu::DeviceSpec::tesla_k20(), &recorder);
    device.register_stream(0);
    device.register_stream(1);
    device.submit_copy(0, gpu::CopyRequest{gpu::CopyDirection::HtoD,
                                           61000, nullptr},
                       gpu::OpTag{0, "in"});
    device.submit_kernel(0,
                         gpu::KernelLaunch{"k", gpu::Dim3{1, 1, 1},
                                           gpu::Dim3{32, 1, 1}, 16, 0,
                                           18 * kMicrosecond, 0.0, nullptr},
                         gpu::OpTag{0, "k"});
    device.submit_kernel(1,
                         gpu::KernelLaunch{"k2", gpu::Dim3{1, 1, 1},
                                           gpu::Dim3{32, 1, 1}, 16, 0,
                                           36 * kMicrosecond, 0.0, nullptr},
                         gpu::OpTag{1, "k2"});
    sim.run();
    return trace::digest(recorder);
  };
  const std::uint64_t first = run_once();
  EXPECT_EQ(first, run_once());
  EXPECT_EQ(first, 0xd519b5899d9df899ULL);
}

}  // namespace
}  // namespace hq
