// Smoke tests for the hq_fuzz case generator and fuzzer driver. The heavy
// lifting (hundreds of iterations) lives in the hqfuzz tool / CI; here we
// pin generator determinism, case diversity, and a short clean run.
#include "check/fuzzer.hpp"

#include <gtest/gtest.h>

#include <set>

namespace hq::check {
namespace {

TEST(FuzzCaseTest, GenerationIsDeterministic) {
  for (std::uint64_t seed : {1ull, 42ull, 0xdeadbeefull}) {
    const FuzzCase a = generate_case(seed);
    const FuzzCase b = generate_case(seed);
    EXPECT_EQ(a.summary(), b.summary());
    EXPECT_EQ(a.type_names, b.type_names);
    EXPECT_EQ(a.counts, b.counts);
    EXPECT_EQ(a.config.num_streams, b.config.num_streams);
    EXPECT_EQ(a.config.memory_sync, b.config.memory_sync);
  }
}

TEST(FuzzCaseTest, CasesAreWellFormed) {
  for (std::uint64_t seed = 1; seed <= 50; ++seed) {
    const FuzzCase c = generate_case(seed);
    ASSERT_FALSE(c.type_names.empty());
    ASSERT_EQ(c.type_names.size(), c.params.size());
    ASSERT_EQ(c.type_names.size(), c.counts.size());
    int total = 0;
    for (const auto& name : c.type_names) {
      EXPECT_TRUE(rodinia::is_app_name(name)) << name;
    }
    for (int n : c.counts) {
      EXPECT_GE(n, 1);
      total += n;
    }
    EXPECT_EQ(c.slots.size(), static_cast<std::size_t>(total));
    EXPECT_GE(c.config.num_streams, 1);
    EXPECT_TRUE(c.config.check_invariants);
    EXPECT_FALSE(c.summary().empty());
  }
}

TEST(FuzzCaseTest, GeneratorCoversTheConfigSpace) {
  std::set<std::string> apps;
  std::set<int> stream_counts;
  std::set<fw::Order> orders;
  bool saw_functional = false, saw_timing = false;
  bool saw_memsync = false, saw_no_memsync = false;
  for (std::uint64_t seed = 1; seed <= 60; ++seed) {
    const FuzzCase c = generate_case(seed);
    apps.insert(c.type_names.begin(), c.type_names.end());
    stream_counts.insert(c.config.num_streams);
    orders.insert(c.order);
    (c.config.functional ? saw_functional : saw_timing) = true;
    (c.config.memory_sync ? saw_memsync : saw_no_memsync) = true;
  }
  EXPECT_GE(apps.size(), 4u);
  EXPECT_GE(stream_counts.size(), 3u);
  EXPECT_GE(orders.size(), 2u);
  EXPECT_TRUE(saw_functional);
  EXPECT_TRUE(saw_timing);
  EXPECT_TRUE(saw_memsync);
  EXPECT_TRUE(saw_no_memsync);
}

TEST(FuzzerTest, ShortRunIsClean) {
  FuzzOptions options;
  options.seed = 7;
  options.iterations = 10;
  int calls = 0;
  Fuzzer fuzzer(options);
  const FuzzReport report = fuzzer.run(
      [&calls](int, std::uint64_t, const std::string&, bool) { ++calls; });
  EXPECT_EQ(report.iterations_run, 10);
  EXPECT_EQ(calls, 10);
  EXPECT_TRUE(report.ok()) << report.to_string();
}

TEST(FuzzerTest, RunCaseFillsSummaryAndIsClean) {
  std::string summary;
  const auto problems = Fuzzer::run_case(12345, &summary);
  EXPECT_FALSE(summary.empty());
  EXPECT_TRUE(problems.empty())
      << summary << ": " << (problems.empty() ? "" : problems.front());
}

}  // namespace
}  // namespace hq::check
