#include "exec/thread_pool.hpp"

namespace hq::exec {

int ThreadPool::hardware_jobs() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<int>(n);
}

ThreadPool::ThreadPool(int threads) {
  HQ_CHECK_MSG(threads >= 1, "thread pool needs at least one worker");
  workers_.reserve(static_cast<std::size_t>(threads));
  for (int i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  cancel_pending();
  {
    std::lock_guard lock(mutex_);
    shutting_down_ = true;
  }
  cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::enqueue(QueuedJob job) {
  {
    std::lock_guard lock(mutex_);
    HQ_CHECK_MSG(!shutting_down_, "submit() on a shutting-down pool");
    queue_.push_back(std::move(job));
  }
  cv_.notify_one();
}

void ThreadPool::cancel_pending() {
  std::deque<QueuedJob> abandoned;
  {
    std::lock_guard lock(mutex_);
    abandoned.swap(queue_);
  }
  // Settle the futures outside the lock; get() waiters wake immediately.
  for (QueuedJob& job : abandoned) job.abandon();
  idle_cv_.notify_all();
}

void ThreadPool::wait_idle() {
  std::unique_lock lock(mutex_);
  idle_cv_.wait(lock, [&] { return queue_.empty() && active_ == 0; });
}

void ThreadPool::worker_loop() {
  for (;;) {
    QueuedJob job;
    {
      std::unique_lock lock(mutex_);
      cv_.wait(lock, [&] { return shutting_down_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutting down and drained
      job = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    // Count the pickup before running: observers that synchronize on the
    // job's future must not see a stale count after get() returns.
    executed_.fetch_add(1);
    job.run();  // never throws: submit() wraps the callable in a try/catch
    {
      std::lock_guard lock(mutex_);
      --active_;
      if (queue_.empty() && active_ == 0) idle_cv_.notify_all();
    }
  }
}

}  // namespace hq::exec
