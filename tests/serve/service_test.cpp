#include "serve/service.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/check.hpp"
#include "exec/parallel.hpp"
#include "obs/report.hpp"
#include "serve/report.hpp"
#include "tests/hyperq/synthetic_app.hpp"

namespace hq::serve {
namespace {

using fw::testing::SyntheticApp;

ServiceConfig base_config() {
  ServiceConfig config;
  config.window = 20 * kMillisecond;
  config.mean_interarrival = kMillisecond;
  config.num_streams = 8;
  SyntheticApp::Spec spec;
  spec.num_kernels = 3;
  spec.block_duration = 30 * kMicrosecond;
  config.classes.push_back(
      {fw::WorkloadItem{"synthetic",
                        [spec] { return std::make_unique<SyntheticApp>(spec); }},
       0});
  return config;
}

/// A config that actually overloads the device: arrivals far faster than
/// service on a narrow stream pool.
ServiceConfig overload_config() {
  ServiceConfig config = base_config();
  config.mean_interarrival = 100 * kMicrosecond;
  config.window = 10 * kMillisecond;
  config.num_streams = 2;
  config.max_inflight = 2;
  return config;
}

TEST(ServeServiceTest, PlainRunCompletesEverything) {
  Service service(base_config());
  const ServeResult result = service.run();
  const ServeReport& report = result.report;
  EXPECT_GT(report.arrived, 5u);
  EXPECT_EQ(report.completed, report.arrived);
  EXPECT_EQ(report.completed_ok, report.completed);
  EXPECT_EQ(report.shed_queue_full, 0u);
  EXPECT_EQ(report.shed_breaker, 0u);
  EXPECT_EQ(report.timed_out_queued, 0u);
  EXPECT_EQ(report.quarantined, 0u);
  EXPECT_DOUBLE_EQ(report.goodput_per_sec, report.throughput_per_sec);
  EXPECT_DOUBLE_EQ(report.deadline_miss_ratio, 0.0);
  EXPECT_GT(report.trace_digest, 0u);
}

TEST(ServeServiceTest, ReportIsByteIdenticalAcrossRuns) {
  const ServeResult a = Service(overload_config()).run();
  const ServeResult b = Service(overload_config()).run();
  EXPECT_EQ(report_json(a.report), report_json(b.report));
  EXPECT_EQ(report_digest(a.report), report_digest(b.report));
}

TEST(ServeServiceTest, ReportIsByteIdenticalAcrossJobCounts) {
  // Shard four distinct configs over 1 worker and over 8; fold the JSON
  // reports in index order — the bytes must match exactly.
  auto run_config = [](std::size_t i) {
    ServiceConfig config = overload_config();
    config.seed = 10 + i;
    config.queue_cap = 4 + i;
    return report_json(Service(std::move(config)).run().report);
  };
  const auto serial = exec::parallel_map_jobs(1, 4, run_config);
  const auto threaded = exec::parallel_map_jobs(8, 4, run_config);
  ASSERT_EQ(serial.size(), threaded.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i], threaded[i]) << "config " << i;
  }
}

TEST(ServeServiceTest, QueueCapShedsUnderOverload) {
  ServiceConfig config = overload_config();
  config.queue_cap = 6;
  const ServeResult result = Service(std::move(config)).run();
  const ServeReport& report = result.report;
  EXPECT_GT(report.shed_queue_full, 0u);
  EXPECT_GT(report.completed, 0u);
  // Conservation identity (also enforced internally by hq_check).
  EXPECT_EQ(report.arrived, report.completed_ok + report.completed_late +
                                report.shed_queue_full + report.shed_breaker +
                                report.timed_out_queued + report.quarantined);
  EXPECT_LE(report.peak_queue_depth, 6u);
  // Shed jobs never consume device time: they have no dispatch timestamp.
  for (const JobRecord& job : result.jobs) {
    if (job.state == JobState::ShedQueueFull) {
      EXPECT_EQ(job.dispatched_at, 0);
      EXPECT_EQ(job.completed_at, 0);
    }
  }
}

TEST(ServeServiceTest, RaisingQueueCapNeverDecreasesCompleted) {
  std::uint64_t previous = 0;
  for (std::size_t cap : {4u, 8u, 16u, 0u}) {  // 0 = unbounded
    ServiceConfig config = overload_config();
    config.queue_cap = cap;
    const ServeReport report = Service(std::move(config)).run().report;
    EXPECT_GE(report.completed, previous) << "cap " << cap;
    previous = report.completed;
  }
}

TEST(ServeServiceTest, DeadlinesAreAccountingOnlyWithoutExpiry) {
  // With expire_queued off and drop-tail shedding, the deadline changes
  // bookkeeping but provably not the schedule.
  ServiceConfig no_deadline = overload_config();
  ServiceConfig tight = overload_config();
  tight.deadline = 500 * kMicrosecond;  // ~ the mean turnaround under load
  const ServeReport a = Service(std::move(no_deadline)).run().report;
  const ServeReport b = Service(std::move(tight)).run().report;
  EXPECT_EQ(a.trace_digest, b.trace_digest);
  EXPECT_EQ(a.completed, b.completed_ok + b.completed_late);
  EXPECT_GT(b.completed_late, 0u);  // the overloaded tail misses 500 us
  EXPECT_LT(b.goodput_per_sec, b.throughput_per_sec);
  EXPECT_GT(b.deadline_miss_ratio, 0.0);
}

TEST(ServeServiceTest, ExpireQueuedTimesOutStaleJobs) {
  ServiceConfig config = overload_config();
  config.deadline = 300 * kMicrosecond;  // queue waits routinely exceed this
  config.expire_queued = true;
  const ServeReport report = Service(std::move(config)).run().report;
  EXPECT_GT(report.timed_out_queued, 0u);
  EXPECT_EQ(report.arrived, report.completed_ok + report.completed_late +
                                report.shed_queue_full + report.shed_breaker +
                                report.timed_out_queued + report.quarantined);
}

TEST(ServeServiceTest, BreakerTripsUnderLaunchFaultsAndShedsWork) {
  ServiceConfig config = overload_config();
  config.breaker_enabled = true;
  config.breaker.failure_threshold = 3;
  config.breaker.cooldown = 2 * kMillisecond;
  // Every launch fails (transiently, below the retry budget), so breakers
  // trip fast; probes re-fail and re-open.
  config.fault_plan =
      fault::parse_fault_plan("launch-fail-rate=1.0,seed=5").value();
  const ServeResult result = Service(std::move(config)).run();
  const ServeReport& report = result.report;
  EXPECT_GT(report.breaker_trips, 0u);
  EXPECT_GT(report.shed_breaker, 0u);
  EXPECT_GT(report.faults_injected, 0u);
  EXPECT_EQ(report.arrived, report.completed_ok + report.completed_late +
                                report.shed_queue_full + report.shed_breaker +
                                report.timed_out_queued + report.quarantined);
  // Breaker-shed jobs never touched the device.
  for (const JobRecord& job : result.jobs) {
    if (job.state == JobState::ShedBreaker) {
      EXPECT_EQ(job.dispatched_at, 0);
    }
  }
}

TEST(ServeServiceTest, BreakerRecoversViaHalfOpenProbe) {
  ServiceConfig config = overload_config();
  config.window = 20 * kMillisecond;
  config.breaker_enabled = true;
  config.breaker.failure_threshold = 2;
  config.breaker.cooldown = kMillisecond;
  // Moderate fault rate: bursts of launch failures trip the breaker, quiet
  // stretches let a half-open probe succeed and close it again.
  config.fault_plan =
      fault::parse_fault_plan("launch-fail-rate=0.1,seed=3").value();
  const ServeReport report = Service(std::move(config)).run().report;
  EXPECT_GT(report.breaker_trips, 0u);
  EXPECT_GT(report.breaker_probes, 0u);
  ASSERT_EQ(report.classes.size(), 1u);
  EXPECT_EQ(report.classes[0].breaker_final_state, "closed");
  EXPECT_GT(report.completed, 0u);
}

TEST(ServeServiceTest, ControllerEngagesUnderDmaContention) {
  ServiceConfig config = base_config();
  config.classes.clear();
  SyntheticApp::Spec heavy;
  heavy.name = "copy-heavy";
  heavy.htod_bytes = 8 * kMiB;
  heavy.htod_pieces = 4;
  heavy.num_kernels = 1;
  heavy.block_duration = 10 * kMicrosecond;
  config.classes.push_back(
      {fw::WorkloadItem{
           "copy-heavy",
           [heavy] { return std::make_unique<SyntheticApp>(heavy); }},
       0});
  config.window = 20 * kMillisecond;
  config.mean_interarrival = 150 * kMicrosecond;
  config.num_streams = 16;
  config.controller.enabled = true;
  const ServeResult result = Service(std::move(config)).run();
  const ServeReport& report = result.report;
  EXPECT_GT(report.controller_engagements, 0u);
  EXPECT_GT(report.pseudo_burst_jobs, 0u);
  EXPECT_FALSE(result.controller_transitions.empty());
  EXPECT_EQ(report.completed, report.arrived);
}

TEST(ServeServiceTest, ArrivalReplayIsExact) {
  ServiceConfig config = base_config();
  config.arrivals = {{0, 0}, {kMillisecond, 0}, {kMillisecond, 0},
                     {3 * kMillisecond, 0}};
  const ServeReport report = Service(std::move(config)).run().report;
  EXPECT_EQ(report.arrived, 4u);
  EXPECT_EQ(report.completed, 4u);
}

TEST(ServeServiceTest, PriorityShedPolicyProtectsImportantClass) {
  ServiceConfig config = overload_config();
  SyntheticApp::Spec spec;
  spec.num_kernels = 3;
  spec.block_duration = 30 * kMicrosecond;
  spec.name = "vip";
  config.classes.push_back(
      {fw::WorkloadItem{"vip",
                        [spec] { return std::make_unique<SyntheticApp>(spec); }},
       5});
  config.queue_cap = 4;
  config.shed_policy = ShedPolicy::Priority;
  const ServeResult result = Service(std::move(config)).run();
  const ServeReport& report = result.report;
  ASSERT_EQ(report.classes.size(), 2u);
  EXPECT_GT(report.shed_queue_full, 0u);
  const ClassStats& plain = report.classes[0];
  const ClassStats& vip = report.classes[1];
  ASSERT_GT(plain.arrived, 0u);
  ASSERT_GT(vip.arrived, 0u);
  const double plain_shed_ratio = static_cast<double>(plain.shed_queue_full) /
                                  static_cast<double>(plain.arrived);
  const double vip_shed_ratio = static_cast<double>(vip.shed_queue_full) /
                                static_cast<double>(vip.arrived);
  EXPECT_LT(vip_shed_ratio, plain_shed_ratio);
}

TEST(ServeServiceTest, MetricsExportServeCounters) {
  ServiceConfig config = overload_config();
  config.queue_cap = 6;
  const ServeResult result = Service(std::move(config)).run();
  ASSERT_NE(result.metrics, nullptr);
  const std::string prom = obs::prometheus_text(*result.metrics);
  EXPECT_NE(prom.find("serve_arrived"), std::string::npos);
  EXPECT_NE(prom.find("serve_queue_wait_ns"), std::string::npos);
  EXPECT_NE(prom.find("serve_queue_depth"), std::string::npos);
  EXPECT_NE(prom.find("serve_shed_queue_full"), std::string::npos);
}

TEST(ServeServiceTest, ValidatesConfig) {
  {
    ServiceConfig config;  // no classes
    EXPECT_THROW(Service(std::move(config)).run(), hq::Error);
  }
  {
    ServiceConfig config = base_config();
    config.window = 0;
    EXPECT_THROW(Service(std::move(config)).run(), hq::Error);
  }
  {
    ServiceConfig config = base_config();
    config.mean_interarrival = 0;
    EXPECT_THROW(Service(std::move(config)).run(), hq::Error);
  }
  {
    ServiceConfig config = base_config();
    config.num_streams = 0;
    EXPECT_THROW(Service(std::move(config)).run(), hq::Error);
  }
  {
    ServiceConfig config = base_config();
    config.expire_queued = true;  // needs a deadline
    EXPECT_THROW(Service(std::move(config)).run(), hq::Error);
  }
  {
    ServiceConfig config = base_config();
    config.arrivals = {{10, 0}, {5, 0}};  // times decrease
    EXPECT_THROW(Service(std::move(config)).run(), hq::Error);
  }
  {
    ServiceConfig config = base_config();
    config.arrivals = {{0, 7}};  // class out of range
    EXPECT_THROW(Service(std::move(config)).run(), hq::Error);
  }
}

TEST(ServeServiceTest, JobStateNames) {
  EXPECT_EQ(std::string(job_state_name(JobState::CompletedOk)),
            "completed-ok");
  EXPECT_EQ(std::string(job_state_name(JobState::ShedQueueFull)),
            "shed-queue-full");
  EXPECT_EQ(std::string(job_state_name(JobState::TimedOutQueued)),
            "timed-out-queued");
  EXPECT_EQ(std::string(job_state_name(JobState::Quarantined)), "quarantined");
}

}  // namespace
}  // namespace hq::serve
