// Execution-span recording.
//
// The simulated device and runtime emit spans (kernel executions, memory
// transfers, lock waits) tagged with a lane (stream index or engine) and the
// owning application instance. The recorder is the data source for:
//   * the ASCII timeline renderer (reproducing the paper's Visual Profiler
//     screenshots, Figs. 1/2/5, as text),
//   * Chrome-trace JSON export (chrome://tracing / Perfetto),
//   * the effective-memory-transfer-latency metric (paper Eq. 1-2).
//
// Span names are interned: each distinct name string is stored once in a
// per-recorder symbol table and spans carry a 32-bit NameId. A run emits a
// handful of distinct names ("Fan1", "htod", ...) across hundreds of
// thousands of spans, so interning removes a std::string construction (and
// usually a heap allocation) per span. Every reader that needs the text —
// digest, Chrome trace, tests — resolves it through Recorder::name_of, so
// rendered output and digests are byte-identical to the pre-interning
// representation.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/units.hpp"

namespace hq::trace {

enum class SpanKind : std::uint8_t {
  MemcpyHtoD,
  MemcpyDtoH,
  Kernel,
  HostCompute,
  LockWait,
};

/// Short label for a span kind ("HtoD", "DtoH", "kernel", ...).
const char* span_kind_name(SpanKind kind);

/// Index into the owning Recorder's name table (Recorder::name_of).
using NameId = std::uint32_t;

/// One closed interval of activity attributed to a lane and an application.
/// Trivially copyable; the name is an id into the recorder that owns the
/// span (a Span is meaningless without its recorder's name table).
struct Span {
  std::int32_t lane = 0;    ///< row identifier; stream index by convention
  std::int32_t app_id = -1; ///< owning application instance, -1 if none
  SpanKind kind = SpanKind::Kernel;
  NameId name = 0;          ///< interned name (see Recorder::intern/name_of)
  TimeNs begin = 0;
  TimeNs end = 0;

  DurationNs duration() const { return end - begin; }
};

class Recorder;

/// Stable 64-bit digest of a recorder's spans (FNV-1a over every field of
/// every span, in recording order; names are digested as their full string
/// bytes, not their ids, so the digest is independent of interning order).
/// Bit-identical across platforms and toolchains, so it serves as the
/// determinism fingerprint of a whole run: two runs of the same scenario
/// must produce equal digests, and any change to the simulated schedule
/// shows up as a digest change. Used by the golden tests, the seed-sweep
/// determinism tests, and the hqfuzz oracles.
std::uint64_t digest(const Recorder& recorder);

/// Append-only collection of spans with simple query helpers and the name
/// symbol table the spans' NameIds index into.
class Recorder {
 public:
  Recorder() = default;
  /// Not copyable: ids_ keys are string_views into names_, so a memberwise
  /// copy would leave the copy's map keys pointing at the source's strings.
  /// Moving is fine — a deque move transfers its blocks without relocating
  /// elements, so the views (and any NameIds already handed out) stay valid.
  Recorder(const Recorder&) = delete;
  Recorder& operator=(const Recorder&) = delete;
  Recorder(Recorder&&) = default;
  Recorder& operator=(Recorder&&) = default;

  /// Returns the id for `name`, adding it to the table on first sight.
  /// Ids are dense, assigned in first-interning order, and stay valid for
  /// the recorder's lifetime.
  NameId intern(std::string_view name);

  /// The string a span's NameId stands for. The view is stable for the
  /// recorder's lifetime.
  std::string_view name_of(NameId id) const;

  /// Distinct names interned so far (deterministic for a fixed scenario —
  /// the perf budget regression test pins it).
  std::size_t name_count() const { return names_.size(); }

  /// Appends a span whose name is already interned in *this* recorder.
  void add(Span span);

  /// Interns `name` and appends — the one-stop producer API.
  void add(std::int32_t lane, std::int32_t app_id, SpanKind kind,
           std::string_view name, TimeNs begin, TimeNs end) {
    add(Span{lane, app_id, kind, intern(name), begin, end});
  }

  /// Pre-sizes span storage for an expected span count (capacity hint).
  void reserve(std::size_t spans) { spans_.reserve(spans); }

  const std::vector<Span>& spans() const { return spans_; }
  bool empty() const { return spans_.empty(); }
  std::size_t size() const { return spans_.size(); }
  /// Drops spans and the name table (all previously issued NameIds become
  /// invalid — there are no spans left to hold them).
  void clear();

  std::vector<Span> by_app(std::int32_t app_id) const;
  std::vector<Span> by_kind(SpanKind kind) const;
  std::vector<Span> by_lane(std::int32_t lane) const;

  /// Zero-copy filtering visitors: unlike the by_* helpers above these do
  /// not materialize a span vector per query, so a caller that visits every
  /// app still touches each span only once per visit instead of paying an
  /// allocation + full copy per app.
  template <typename Pred, typename Fn>
  void for_each_if(Pred&& pred, Fn&& fn) const {
    for (const Span& s : spans_) {
      if (pred(s)) fn(s);
    }
  }
  template <typename Fn>
  void for_each_app(std::int32_t app_id, Fn&& fn) const {
    for_each_if([app_id](const Span& s) { return s.app_id == app_id; }, fn);
  }
  template <typename Fn>
  void for_each_kind(SpanKind kind, Fn&& fn) const {
    for_each_if([kind](const Span& s) { return s.kind == kind; }, fn);
  }

  /// Earliest span begin; nullopt when empty.
  std::optional<TimeNs> min_time() const;
  /// Latest span end; nullopt when empty.
  std::optional<TimeNs> max_time() const;

 private:
  std::vector<Span> spans_;
  /// Name storage with stable element addresses (a deque never relocates),
  /// so the string_view keys in ids_ and the views name_of hands out stay
  /// valid as the table grows.
  std::deque<std::string> names_;
  std::unordered_map<std::string_view, NameId> ids_;
};

/// One-pass per-app span index over a flat, sorted layout. Extracting
/// per-app metrics with Recorder::by_app costs O(apps * spans) plus a copy
/// of every matching span per query; building this index once costs
/// O(spans + app-id range) (a counting scatter over the dense app-id range,
/// falling back to a stable sort for pathological sparse ids) and each
/// subsequent per-app lookup is a binary search over the distinct ids,
/// O(log apps). The pointers alias the source recorder, which must outlive
/// the index and not grow while the index is in use.
class AppIndex {
 public:
  explicit AppIndex(const Recorder& recorder);

  /// Spans of one app, in recording order; empty for an unknown app (ids
  /// never seen in the trace, including -1 when every span is attributed).
  std::span<const Span* const> spans_for(std::int32_t app_id) const;

  /// Distinct app ids seen, ascending (includes -1 for unattributed spans).
  const std::vector<std::int32_t>& app_ids() const { return ids_; }

  std::size_t app_count() const { return ids_.size(); }

 private:
  std::vector<std::int32_t> ids_;        ///< distinct app ids, ascending
  std::vector<std::size_t> offsets_;     ///< ids_.size()+1 bounds into ptrs_
  std::vector<const Span*> ptrs_;        ///< grouped by app, recording order
};

}  // namespace hq::trace
