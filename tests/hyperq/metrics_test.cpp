// Edge cases of the paper's Eq. 1-2 effective-memory-transfer-latency
// extraction, and agreement between the recorder-scan and AppIndex paths.
#include "hyperq/metrics.hpp"

#include <gtest/gtest.h>

namespace hq::fw {
namespace {

void htod(trace::Recorder& r, int app, TimeNs begin, TimeNs end) {
  r.add(app, app, trace::SpanKind::MemcpyHtoD, "h2d", begin, end);
}

void dtoh(trace::Recorder& r, int app, TimeNs begin, TimeNs end) {
  r.add(app, app, trace::SpanKind::MemcpyDtoH, "d2h", begin, end);
}

TEST(EffectiveLatencyTest, SingleTransferIsItsOwnServiceTime) {
  trace::Recorder r;
  htod(r, 0, 100, 160);
  const auto le =
      effective_transfer_latency(r, 0, trace::SpanKind::MemcpyHtoD);
  ASSERT_TRUE(le.has_value());
  EXPECT_EQ(*le, 60);
  EXPECT_EQ(own_transfer_time(r, 0, trace::SpanKind::MemcpyHtoD), 60);
}

TEST(EffectiveLatencyTest, OneDirectionOnlyLeavesOtherEmpty) {
  trace::Recorder r;
  htod(r, 0, 0, 50);
  htod(r, 0, 80, 120);
  EXPECT_FALSE(
      effective_transfer_latency(r, 0, trace::SpanKind::MemcpyDtoH)
          .has_value());
  EXPECT_EQ(own_transfer_time(r, 0, trace::SpanKind::MemcpyDtoH), 0);
  // The populated direction is unaffected.
  EXPECT_EQ(*effective_transfer_latency(r, 0, trace::SpanKind::MemcpyHtoD),
            120);
}

TEST(EffectiveLatencyTest, UnknownAppIsEmptyNotZero) {
  trace::Recorder r;
  htod(r, 0, 0, 50);
  EXPECT_FALSE(
      effective_transfer_latency(r, 7, trace::SpanKind::MemcpyHtoD)
          .has_value());
  EXPECT_EQ(own_transfer_time(r, 7, trace::SpanKind::MemcpyHtoD), 0);
}

TEST(EffectiveLatencyTest, OutOfOrderSpansGiveSameWindow) {
  // Chunked/interleaved transfers can be recorded out of begin order; the
  // window must still be [min begin, max end].
  trace::Recorder in_order;
  htod(in_order, 1, 100, 150);
  htod(in_order, 1, 200, 260);
  htod(in_order, 1, 400, 410);
  trace::Recorder shuffled;
  htod(shuffled, 1, 400, 410);
  htod(shuffled, 1, 100, 150);
  htod(shuffled, 1, 200, 260);

  for (const trace::Recorder* r : {&in_order, &shuffled}) {
    EXPECT_EQ(*effective_transfer_latency(*r, 1, trace::SpanKind::MemcpyHtoD),
              310);
    EXPECT_EQ(own_transfer_time(*r, 1, trace::SpanKind::MemcpyHtoD),
              50 + 60 + 10);
  }
}

TEST(EffectiveLatencyTest, IndexAndScanPathsAgree) {
  trace::Recorder r;
  for (int app = 0; app < 5; ++app) {
    for (int i = 0; i < 4; ++i) {
      const TimeNs t = app * 1000 + i * 37;
      htod(r, app, t, t + 20);
      if (app % 2 == 0) dtoh(r, app, t + 500, t + 540);
    }
  }
  const trace::AppIndex index(r);
  for (int app = 0; app < 6; ++app) {  // 5 is unknown on purpose
    for (const auto dir :
         {trace::SpanKind::MemcpyHtoD, trace::SpanKind::MemcpyDtoH}) {
      EXPECT_EQ(effective_transfer_latency(r, app, dir),
                effective_transfer_latency(index, app, dir))
          << "app=" << app;
      EXPECT_EQ(own_transfer_time(r, app, dir),
                own_transfer_time(index, app, dir))
          << "app=" << app;
    }
  }
}

TEST(AppIndexTest, GroupsSpansByAppInRecordingOrder) {
  trace::Recorder r;
  htod(r, 2, 0, 10);
  htod(r, 0, 5, 15);
  htod(r, 2, 20, 30);
  r.add(9, -1, trace::SpanKind::Kernel, "k", 0, 1);
  const trace::AppIndex index(r);
  EXPECT_EQ(index.app_count(), 3u);
  EXPECT_EQ(index.app_ids(), (std::vector<std::int32_t>{-1, 0, 2}));
  ASSERT_EQ(index.spans_for(2).size(), 2u);
  EXPECT_EQ(index.spans_for(2)[0]->begin, 0);
  EXPECT_EQ(index.spans_for(2)[1]->begin, 20);
  EXPECT_TRUE(index.spans_for(4).empty());
}

}  // namespace
}  // namespace hq::fw
