// Property-based sweep of the schedule generators across all five orders and
// a matrix of type-count configurations.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <tuple>

#include "hyperq/schedule.hpp"

namespace hq::fw {
namespace {

using CountsCase = std::vector<int>;

class ScheduleProperty
    : public ::testing::TestWithParam<std::tuple<Order, CountsCase>> {
 protected:
  std::vector<Slot> build() {
    const auto& [order, counts] = GetParam();
    rng_ = std::make_unique<Rng>(99);
    return make_schedule(order, counts, rng_.get());
  }
  std::unique_ptr<Rng> rng_;
};

TEST_P(ScheduleProperty, SizeEqualsTotalCount) {
  const auto& counts = std::get<1>(GetParam());
  int total = 0;
  for (int c : counts) total += c;
  EXPECT_EQ(build().size(), static_cast<std::size_t>(total));
}

TEST_P(ScheduleProperty, EveryInstanceAppearsExactlyOnce) {
  const auto& counts = std::get<1>(GetParam());
  const auto slots = build();
  std::map<std::pair<int, int>, int> seen;
  for (const Slot& slot : slots) seen[{slot.type, slot.instance}]++;
  for (std::size_t t = 0; t < counts.size(); ++t) {
    for (int i = 1; i <= counts[t]; ++i) {
      EXPECT_EQ((seen[{static_cast<int>(t), i}]), 1)
          << "type " << t << " instance " << i;
    }
  }
  int total = 0;
  for (int c : counts) total += c;
  EXPECT_EQ(static_cast<int>(seen.size()), total);
}

TEST_P(ScheduleProperty, InstancesWithinTypeAreOrderedForDeterministicOrders) {
  const auto& [order, counts] = GetParam();
  if (order == Order::RandomShuffle) GTEST_SKIP() << "shuffle reorders";
  const auto slots = build();
  std::vector<int> last(counts.size(), 0);
  for (const Slot& slot : slots) {
    EXPECT_EQ(slot.instance, last[slot.type] + 1)
        << order_name(order) << " violates per-type instance order";
    last[slot.type] = slot.instance;
  }
}

TEST_P(ScheduleProperty, GenerationIsRepeatable) {
  const auto& [order, counts] = GetParam();
  Rng r1(7), r2(7);
  EXPECT_EQ(make_schedule(order, counts, &r1),
            make_schedule(order, counts, &r2));
}

TEST_P(ScheduleProperty, EmitsPermutationOfTheWorkload) {
  // Sorted slot multiset must equal Naive FIFO's for every policy —
  // schedules permute the workload, never drop or duplicate work.
  const auto& counts = std::get<1>(GetParam());
  auto slots = build();
  Rng rng(1);
  auto reference = make_schedule(Order::NaiveFifo, counts, &rng);
  auto key = [](const Slot& a, const Slot& b) {
    return std::tie(a.type, a.instance) < std::tie(b.type, b.instance);
  };
  std::sort(slots.begin(), slots.end(), key);
  std::sort(reference.begin(), reference.end(), key);
  EXPECT_EQ(slots, reference);
}

TEST(ScheduleOrderTest, ReverseFifoIsTypeReversalOfNaiveFifo) {
  // Reverse FIFO swaps type precedence, so its type sequence must equal
  // the reversed Naive FIFO type sequence for any count vector.
  const std::vector<CountsCase> cases = {
      {4, 4}, {1, 7}, {5, 0}, {3, 3, 3}, {1, 2, 3, 4}, {10}};
  for (const CountsCase& counts : cases) {
    const auto naive = make_schedule(Order::NaiveFifo, counts);
    const auto reversed = make_schedule(Order::ReverseFifo, counts);
    ASSERT_EQ(naive.size(), reversed.size());
    std::vector<int> naive_types, reversed_types;
    for (const Slot& s : naive) naive_types.push_back(s.type);
    for (const Slot& s : reversed) reversed_types.push_back(s.type);
    std::reverse(naive_types.begin(), naive_types.end());
    EXPECT_EQ(reversed_types, naive_types);
  }
}

TEST(ScheduleOrderTest, RoundRobinNeverRepeatsTypeWhileAnotherIsAvailable) {
  const std::vector<CountsCase> cases = {
      {4, 4}, {1, 7}, {7, 1}, {2, 2, 9}, {1, 2, 3, 4}, {16, 16}};
  for (const CountsCase& counts : cases) {
    for (Order order : {Order::RoundRobin, Order::ReverseRoundRobin}) {
      const auto slots = make_schedule(order, counts);
      std::vector<int> remaining = counts;
      for (std::size_t i = 0; i < slots.size(); ++i) {
        if (i > 0) {
          // If the previous type and at least one other type both still had
          // work, scheduling the previous type again breaks round-robin.
          const int prev = slots[i - 1].type;
          bool other_available = false;
          for (std::size_t t = 0; t < remaining.size(); ++t) {
            if (static_cast<int>(t) != prev && remaining[t] > 0) {
              other_available = true;
            }
          }
          if (other_available && remaining[prev] > 0) {
            EXPECT_NE(slots[i].type, prev)
                << order_name(order) << " repeated type " << prev
                << " at position " << i;
          }
        }
        --remaining[slots[i].type];
      }
    }
  }
}

TEST(ScheduleOrderTest, RandomShuffleIsSeedStable) {
  const CountsCase counts = {16, 16};
  Rng a(123), b(123), c(456);
  const auto first = make_schedule(Order::RandomShuffle, counts, &a);
  const auto second = make_schedule(Order::RandomShuffle, counts, &b);
  const auto different = make_schedule(Order::RandomShuffle, counts, &c);
  EXPECT_EQ(first, second) << "same seed must reproduce the shuffle";
  EXPECT_NE(first, different)
      << "32-slot shuffles from distinct seeds colliding is ~impossible";
}

INSTANTIATE_TEST_SUITE_P(
    OrderAndCounts, ScheduleProperty,
    ::testing::Combine(
        ::testing::Values(Order::NaiveFifo, Order::RoundRobin,
                          Order::RandomShuffle, Order::ReverseFifo,
                          Order::ReverseRoundRobin),
        ::testing::Values(CountsCase{4, 4}, CountsCase{16, 16},
                          CountsCase{1, 7}, CountsCase{5, 0},
                          CountsCase{3, 3, 3}, CountsCase{1, 2, 3, 4},
                          CountsCase{10})),
    [](const auto& param_info) {
      const Order order = std::get<0>(param_info.param);
      const CountsCase& counts = std::get<1>(param_info.param);
      std::string name;
      switch (order) {
        case Order::NaiveFifo: name = "Fifo"; break;
        case Order::RoundRobin: name = "RR"; break;
        case Order::RandomShuffle: name = "Shuffle"; break;
        case Order::ReverseFifo: name = "RevFifo"; break;
        case Order::ReverseRoundRobin: name = "RevRR"; break;
      }
      for (int c : counts) name += "_" + std::to_string(c);
      return name;
    });

}  // namespace
}  // namespace hq::fw
