// Status codes and a small expected-like result type for the runtime API.
//
// Mirrors the split in real CUDA: environment/model outcomes (out of memory,
// invalid launch configuration) are reported as status codes, while API
// contract violations (use of a destroyed handle) throw hq::Error.
#pragma once

#include <utility>

#include "common/check.hpp"

namespace hq::rt {

enum class Status {
  Ok,
  OutOfMemory,
  InvalidValue,
  InvalidHandle,
  InvalidConfiguration,
  NotReady,
  /// A kernel-launch submission was rejected (cudaErrorLaunchFailure
  /// analogue). Transient instances are retried with capped exponential
  /// backoff; once the retry budget is exhausted the status becomes sticky
  /// on the stream (see Runtime::stream_fault).
  LaunchFailure,
};

const char* status_name(Status status);

/// Value-or-status. Accessing value() on a failed result throws.
template <typename T>
class Result {
 public:
  Result(T value) : status_(Status::Ok), value_(std::move(value)) {}  // NOLINT(google-explicit-constructor)
  Result(Status status) : status_(status) {  // NOLINT(google-explicit-constructor)
    HQ_CHECK_MSG(status != Status::Ok, "Ok result requires a value");
  }

  bool ok() const { return status_ == Status::Ok; }
  Status status() const { return status_; }

  const T& value() const& {
    HQ_CHECK_MSG(ok(), "value() on failed result: " << status_name(status_));
    return value_;
  }
  T& value() & {
    HQ_CHECK_MSG(ok(), "value() on failed result: " << status_name(status_));
    return value_;
  }
  T&& value() && {
    HQ_CHECK_MSG(ok(), "value() on failed result: " << status_name(status_));
    return std::move(value_);
  }

 private:
  Status status_;
  T value_{};
};

}  // namespace hq::rt
