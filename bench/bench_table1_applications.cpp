// Table I — the Rodinia 3.0 applications ported into the Hyper-Q management
// framework, plus the Table II Kernel virtual-method interface they
// implement.
#include <cstdio>

#include "bench/common.hpp"

int main() {
  using namespace hq;
  using namespace hq::bench;

  print_header("Table I", "ported Rodinia 3.0 applications");
  TextTable t1;
  t1.set_header({"Benchmark Name", "CUDA Kernel Name(s)", "HtoD", "DtoH"});
  struct Row {
    const char* app;
    const char* kernels;
  };
  const Row rows[] = {
      {"Gaussian Elimination", "Fan1, Fan2"},
      {"k-Nearest Neighbors", "euclid"},
      {"Needleman-Wunsch", "needle_cuda_shared_1/2"},
      {"Speckle reducing anisotropic diffusion", "srad_cuda_1/2"},
  };
  const char* names[] = {"gaussian", "nn", "needle", "srad"};
  for (int i = 0; i < 4; ++i) {
    auto app = rodinia::make_app(names[i]).factory();
    t1.add_row({rows[i].app, rows[i].kernels, format_bytes(app->htod_bytes()),
                format_bytes(app->dtoh_bytes())});
  }
  std::printf("%s\n", t1.render().c_str());

  print_header("Table II", "Kernel class virtual method interface");
  TextTable t2;
  t2.set_header({"Kernel method", "Functionality"});
  t2.add_row({"allocateHostMemory", "Encapsulate cudaMallocHost calls"});
  t2.add_row({"allocateDeviceMemory", "Encapsulate cudaMalloc calls"});
  t2.add_row({"initializeHostMemory",
              "Encapsulate subroutine(s) for loading/initializing host data"});
  t2.add_row({"transferMemory", "Encapsulate cudaMemcpyAsync calls"});
  t2.add_row({"executeKernel",
              "Grid/block dimension setup, kernel function execution"});
  t2.add_row({"freeHostMemory", "Encapsulate cudaFreeHost calls"});
  t2.add_row({"freeDeviceMemory", "Encapsulate cudaFree calls"});
  std::printf("%s", t2.render().c_str());
  return 0;
}
