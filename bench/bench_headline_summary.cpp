// Headline results (paper abstract + Section V/VI): the end-to-end numbers
// the paper claims, regenerated:
//   * up to 59% improvement over serialized execution from Hyper-Q + lazy
//     utilization alone (full-concurrent, best pairing);
//   * up to an additional 31.8% from synchronized memory transfers combined
//     with application reordering;
//   * energy reduced by 8.5% on average (up to 22.9%) from full concurrency,
//     and by 10.4% on average (up to 25.7%) with memory synchronization.
#include <cstdio>

#include "bench/common.hpp"
#include "common/stats.hpp"

int main(int argc, char** argv) {
  using namespace hq;
  using namespace hq::bench;

  const int jobs = parse_jobs(argc, argv);
  print_header("Headline summary",
               "abstract/Section V claims regenerated over all six pairings "
               "(NA = 32)");

  // Per pairing: serialized, full-concurrent, and memory-sync runs.
  const std::vector<Pair> pairs = hetero_pairs();
  const auto results = run_indexed(jobs, pairs.size() * 3, [&](std::size_t i) {
    const Pair& pair = pairs[i / 3];
    switch (i % 3) {
      case 0: return run_pair(pair, 32, 1);
      // Telemetry on the full-concurrent runs feeds the per-app interleave
      // attribution table below (passive: timings are unchanged).
      case 1:
        return run_pair(pair, 32, 32, fw::Order::NaiveFifo, false, 0, 42,
                        nullptr, /*collect_telemetry=*/true);
      default: return run_pair(pair, 32, 32, fw::Order::NaiveFifo, true);
    }
  });

  RunningStats perf_full, energy_full, energy_sync;
  double best_perf = 0, best_energy = 0, best_energy_sync = 0;
  std::string best_perf_pair, best_energy_pair;

  TextTable table;
  table.set_header({"pair", "serial", "full-concurrent", "perf impr",
                    "energy impr", "+memsync energy impr"});

  for (std::size_t p = 0; p < pairs.size(); ++p) {
    const Pair& pair = pairs[p];
    const auto& serial = results[p * 3 + 0];
    const auto& full = results[p * 3 + 1];
    const auto& sync = results[p * 3 + 2];

    const double perf = fw::improvement(static_cast<double>(serial.makespan),
                                        static_cast<double>(full.makespan));
    const double energy =
        fw::improvement(serial.energy_exact, full.energy_exact);
    const double senergy =
        fw::improvement(serial.energy_exact, sync.energy_exact);
    perf_full.add(perf);
    energy_full.add(energy);
    energy_sync.add(senergy);
    if (perf > best_perf) {
      best_perf = perf;
      best_perf_pair = pair.label();
    }
    if (energy > best_energy) {
      best_energy = energy;
      best_energy_pair = pair.label();
    }
    best_energy_sync = std::max(best_energy_sync, senergy);

    table.add_row({pair.label(), format_duration(serial.makespan),
                   format_duration(full.makespan), format_percent(perf),
                   format_percent(energy), format_percent(senergy)});
  }
  std::printf("%s\n", table.render().c_str());

  std::printf("performance vs serialized: avg %s, max %s in %s\n",
              format_percent(perf_full.mean()).c_str(),
              format_percent(best_perf).c_str(), best_perf_pair.c_str());
  std::printf("  paper: up to +59%% (avg +24.8%% across workload sizes)\n");
  std::printf("energy vs serialized (full concurrency): avg %s, max %s in %s\n",
              format_percent(energy_full.mean()).c_str(),
              format_percent(best_energy).c_str(), best_energy_pair.c_str());
  std::printf("  paper: avg +8.5%%, up to +22.9%% ({needle, srad})\n");
  std::printf("energy with memory synchronization: avg %s, max %s\n",
              format_percent(energy_sync.mean()).c_str(),
              format_percent(best_energy_sync).c_str());
  std::printf("  paper: avg +10.4%%, up to +25.7%%\n");

  // Why Le stretches (Eq. 1-2): per-app HtoD interleave attribution for the
  // first pairing's full-concurrent run — foreign transfers served inside
  // each app's transfer window are the latency the app absorbs.
  const Pair& attr_pair = pairs.front();
  const auto& attr_run = results[1];
  TextTable attr;
  attr.set_header({"app", "type", "Le (HtoD)", "own time", "interleaved xfers",
                   "interleaved MB"});
  for (const fw::AppMetrics& m : attr_run.apps) {
    attr.add_row({std::to_string(m.app_id), m.type,
                  format_duration(m.htod_effective_latency),
                  format_duration(m.htod_own_time),
                  std::to_string(m.htod_interleave_count),
                  format_fixed(static_cast<double>(m.htod_interleave_bytes) /
                                   static_cast<double>(kMiB),
                               2)});
  }
  std::printf("\nHtoD interleave attribution, %s full-concurrent (NA=NS=32):\n%s",
              attr_pair.label().c_str(), attr.render().c_str());
  return 0;
}
