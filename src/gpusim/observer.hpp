// Device event observation interface.
//
// The simulated device (front end, copy engines, block scheduler, power
// integrator) reports every externally meaningful state transition through
// this interface. Clients are the hq_check invariant layer, which replays
// the event stream against an independent model of the hardware contract
// (FIFO copy engines, LEFTOVER dispatch, SMX resource conservation,
// energy ≡ ∫power) and flags any divergence (see src/check/invariants.hpp),
// and the hq_obs telemetry layer, which derives counters and time-series
// from the same stream (see src/obs/telemetry.hpp). ObserverFanout below
// lets both attach to one device at once.
//
// All callbacks default to no-ops so observers implement only what they
// need. Callbacks fire synchronously at the instant of the transition and
// must not mutate device state — which is what makes attaching any number
// of observers zero-perturbation: the simulated schedule (and therefore
// trace::digest) is bit-identical with or without them.
#pragma once

#include <vector>

#include "common/units.hpp"
#include "gpusim/smx.hpp"
#include "gpusim/types.hpp"

namespace hq::gpu {

struct KernelExec;

/// Operation categories visible to observers (mirrors the device's internal
/// op kinds without exposing them).
enum class ObservedOp : std::uint8_t { Kernel, Copy, Marker };

inline const char* observed_op_name(ObservedOp kind) {
  switch (kind) {
    case ObservedOp::Kernel: return "kernel";
    case ObservedOp::Copy: return "copy";
    case ObservedOp::Marker: return "marker";
  }
  return "?";
}

/// Fault categories reported by the hq_fault injector. The injector fires
/// on_fault_injected through the same observer chain as the device so the
/// invariant checker can prove every injected fault was observed and
/// accounted for (never silently absorbed) and the telemetry layer can
/// export fault counters.
enum class ObservedFault : std::uint8_t {
  CopyStall,         ///< fixed service-time stall on one DMA transaction
  CopySlowdown,      ///< multiplicative service-time stretch (ECC-retry style)
  CopyThrottle,      ///< power-cap throttle window slowed a transfer
  LaunchFailure,     ///< one transient kernel-launch attempt was rejected
  LaunchAbort,       ///< retries exhausted; the stream went into fault state
  HostAllocFailure,  ///< one pinned host allocation attempt failed
  SdcCopyCorruption,   ///< a DtoH copy's payload digest was bit-flipped
  SdcKernelCorruption, ///< a kernel's functional output digest was corrupted
};

inline constexpr int kNumObservedFaults = 8;

inline const char* observed_fault_name(ObservedFault kind) {
  switch (kind) {
    case ObservedFault::CopyStall: return "copy_stall";
    case ObservedFault::CopySlowdown: return "copy_slowdown";
    case ObservedFault::CopyThrottle: return "copy_throttle";
    case ObservedFault::LaunchFailure: return "launch_failure";
    case ObservedFault::LaunchAbort: return "launch_abort";
    case ObservedFault::HostAllocFailure: return "host_alloc_failure";
    case ObservedFault::SdcCopyCorruption: return "sdc_copy_corruption";
    case ObservedFault::SdcKernelCorruption: return "sdc_kernel_corruption";
  }
  return "?";
}

class DeviceObserver {
 public:
  virtual ~DeviceObserver() = default;

  // --- stream front end ----------------------------------------------------
  /// An operation entered a stream's submission FIFO.
  virtual void on_op_submitted(TimeNs /*now*/, OpId /*op*/, StreamId /*stream*/,
                               ObservedOp /*kind*/) {}
  /// An operation finished and left its stream's FIFO.
  virtual void on_op_completed(TimeNs /*now*/, OpId /*op*/, StreamId /*stream*/) {}

  // --- copy engines --------------------------------------------------------
  /// A transaction entered a copy engine's queue. `app` is the owning
  /// application instance (-1 when the transfer has no app attribution).
  virtual void on_copy_enqueued(TimeNs /*now*/, CopyDirection /*dir*/,
                                OpId /*op*/, StreamId /*stream*/,
                                std::int32_t /*app*/, Bytes /*bytes*/) {}
  /// A transaction finished service; [begin, end] is the service interval.
  virtual void on_copy_served(TimeNs /*now*/, CopyDirection /*dir*/, OpId /*op*/,
                              std::int32_t /*app*/, TimeNs /*begin*/,
                              TimeNs /*end*/, Bytes /*bytes*/) {}

  // --- block scheduler -----------------------------------------------------
  /// A kernel left its work queue and entered the block scheduler.
  virtual void on_kernel_dispatched(TimeNs /*now*/, OpId /*op*/,
                                    int /*priority*/, std::uint64_t /*blocks*/,
                                    const BlockDemand& /*demand*/) {}
  /// `count` blocks of a dispatched kernel became resident on an SMX.
  virtual void on_blocks_placed(TimeNs /*now*/, OpId /*op*/, int /*smx*/,
                                int /*count*/, const BlockDemand& /*demand*/) {}
  /// `count` blocks finished and released their SMX resources.
  virtual void on_blocks_released(TimeNs /*now*/, OpId /*op*/, int /*smx*/,
                                  int /*count*/, const BlockDemand& /*demand*/) {}
  /// A kernel's last block finished.
  virtual void on_kernel_completed(TimeNs /*now*/, const KernelExec& /*exec*/) {}

  // --- power/energy integration -------------------------------------------
  /// The device is about to change state at `now`; `power` and `occupancy`
  /// are the values that were in effect since the previous integration step
  /// (power is piecewise constant between state changes).
  virtual void on_power_integrated(TimeNs /*now*/, Watts /*power*/,
                                   double /*occupancy*/) {}

  // --- fault injection ------------------------------------------------------
  /// The hq_fault injector perturbed the model: `key` identifies the
  /// affected operation (op id, launch submission key, or allocation key,
  /// depending on the kind) and `penalty` is the injected extra service
  /// time (0 for non-timing faults such as launch rejections).
  virtual void on_fault_injected(TimeNs /*now*/, ObservedFault /*kind*/,
                                 std::uint64_t /*key*/,
                                 DurationNs /*penalty*/) {}
};

/// Forwards every callback to a list of observers, in attach order. Lets the
/// invariant checker and the telemetry observer (or any future client) watch
/// one device simultaneously through Device::set_observer, which accepts a
/// single pointer. Does not own its children; nullptr adds are ignored.
class ObserverFanout final : public DeviceObserver {
 public:
  void add(DeviceObserver* observer) {
    if (observer != nullptr) children_.push_back(observer);
  }
  std::size_t size() const { return children_.size(); }

  void on_op_submitted(TimeNs now, OpId op, StreamId stream,
                       ObservedOp kind) override {
    for (DeviceObserver* o : children_) o->on_op_submitted(now, op, stream, kind);
  }
  void on_op_completed(TimeNs now, OpId op, StreamId stream) override {
    for (DeviceObserver* o : children_) o->on_op_completed(now, op, stream);
  }
  void on_copy_enqueued(TimeNs now, CopyDirection dir, OpId op,
                        StreamId stream, std::int32_t app, Bytes bytes) override {
    for (DeviceObserver* o : children_) {
      o->on_copy_enqueued(now, dir, op, stream, app, bytes);
    }
  }
  void on_copy_served(TimeNs now, CopyDirection dir, OpId op, std::int32_t app,
                      TimeNs begin, TimeNs end, Bytes bytes) override {
    for (DeviceObserver* o : children_) {
      o->on_copy_served(now, dir, op, app, begin, end, bytes);
    }
  }
  void on_kernel_dispatched(TimeNs now, OpId op, int priority,
                            std::uint64_t blocks,
                            const BlockDemand& demand) override {
    for (DeviceObserver* o : children_) {
      o->on_kernel_dispatched(now, op, priority, blocks, demand);
    }
  }
  void on_blocks_placed(TimeNs now, OpId op, int smx, int count,
                        const BlockDemand& demand) override {
    for (DeviceObserver* o : children_) {
      o->on_blocks_placed(now, op, smx, count, demand);
    }
  }
  void on_blocks_released(TimeNs now, OpId op, int smx, int count,
                          const BlockDemand& demand) override {
    for (DeviceObserver* o : children_) {
      o->on_blocks_released(now, op, smx, count, demand);
    }
  }
  void on_kernel_completed(TimeNs now, const KernelExec& exec) override {
    for (DeviceObserver* o : children_) o->on_kernel_completed(now, exec);
  }
  void on_power_integrated(TimeNs now, Watts power, double occupancy) override {
    for (DeviceObserver* o : children_) {
      o->on_power_integrated(now, power, occupancy);
    }
  }
  void on_fault_injected(TimeNs now, ObservedFault kind, std::uint64_t key,
                         DurationNs penalty) override {
    for (DeviceObserver* o : children_) {
      o->on_fault_injected(now, kind, key, penalty);
    }
  }

 private:
  std::vector<DeviceObserver*> children_;
};

}  // namespace hq::gpu
