// Units and quantity helpers shared across the simulator and framework.
//
// All simulated time is kept in integral nanoseconds (TimeNs / DurationNs) so
// that event ordering is exact and platform independent; floating point is
// only used for derived, presentation-level quantities (watts, joules,
// percentages).
#pragma once

#include <cstdint>
#include <string>

namespace hq {

/// Absolute simulated time in nanoseconds since simulation start.
using TimeNs = std::uint64_t;

/// A span of simulated time in nanoseconds.
using DurationNs = std::uint64_t;

/// Size of a memory region in bytes.
using Bytes = std::uint64_t;

/// Instantaneous electrical power in watts.
using Watts = double;

/// Integrated energy in joules.
using Joules = double;

inline constexpr DurationNs kMicrosecond = 1'000;
inline constexpr DurationNs kMillisecond = 1'000'000;
inline constexpr DurationNs kSecond = 1'000'000'000;

inline constexpr Bytes kKiB = 1024;
inline constexpr Bytes kMiB = 1024 * 1024;
inline constexpr Bytes kGiB = 1024ull * 1024 * 1024;

/// Converts nanoseconds to seconds for reporting.
constexpr double to_seconds(DurationNs ns) {
  return static_cast<double>(ns) / 1e9;
}

/// Converts nanoseconds to milliseconds for reporting.
constexpr double to_milliseconds(DurationNs ns) {
  return static_cast<double>(ns) / 1e6;
}

/// Converts nanoseconds to microseconds for reporting.
constexpr double to_microseconds(DurationNs ns) {
  return static_cast<double>(ns) / 1e3;
}

/// Renders a duration with an adaptive unit, e.g. "12.34 ms".
std::string format_duration(DurationNs ns);

/// Renders a byte count with an adaptive unit, e.g. "1.00 MiB".
std::string format_bytes(Bytes bytes);

}  // namespace hq
