#include "serve/admission.hpp"

#include <gtest/gtest.h>

#include "common/check.hpp"
#include "common/units.hpp"

namespace hq::serve {
namespace {

QueuedJob job(int id, int priority = 0, TimeNs arrived = 0,
              TimeNs deadline = 0) {
  QueuedJob j;
  j.job_id = id;
  j.priority = priority;
  j.arrived_at = arrived;
  j.deadline_at = deadline;
  return j;
}

TEST(AdmissionQueueTest, UnboundedNeverSheds) {
  AdmissionQueue queue({/*capacity=*/0, ShedPolicy::DropTail});
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(queue.offer(job(i), /*now=*/0, /*inflight=*/1000));
  }
  EXPECT_EQ(queue.size(), 100u);
  EXPECT_EQ(queue.accepted(), 100u);
  EXPECT_EQ(queue.sheds(), 0u);
  EXPECT_EQ(queue.peak_depth(), 100u);
}

TEST(AdmissionQueueTest, CapacityCountsInflight) {
  AdmissionQueue queue({/*capacity=*/4, ShedPolicy::DropTail});
  // 3 inflight + 1 queued == capacity; the next arrival is shed.
  EXPECT_FALSE(queue.offer(job(0), 0, /*inflight=*/3));
  const auto victim = queue.offer(job(1), 0, /*inflight=*/3);
  ASSERT_TRUE(victim.has_value());
  EXPECT_EQ(victim->job_id, 1);
  EXPECT_EQ(queue.sheds(), 1u);
}

TEST(AdmissionQueueTest, DropTailShedsTheArrival) {
  AdmissionQueue queue({/*capacity=*/2, ShedPolicy::DropTail});
  EXPECT_FALSE(queue.offer(job(0), 0, 0));
  EXPECT_FALSE(queue.offer(job(1), 0, 0));
  const auto victim = queue.offer(job(2), 0, 0);
  ASSERT_TRUE(victim.has_value());
  EXPECT_EQ(victim->job_id, 2);  // the new arrival, never a queued job
  EXPECT_EQ(queue.size(), 2u);
  EXPECT_EQ(queue.pop_front().job_id, 0);  // FIFO survives intact
  EXPECT_EQ(queue.pop_front().job_id, 1);
}

TEST(AdmissionQueueTest, DeadlineAwareShedsLeastSlack) {
  AdmissionQueue queue({/*capacity=*/2, ShedPolicy::DeadlineAware});
  EXPECT_FALSE(queue.offer(job(0, 0, 0, /*deadline=*/100), 0, 0));
  EXPECT_FALSE(queue.offer(job(1, 0, 0, /*deadline=*/900), 0, 0));
  // Arrival has more slack than job 0, so job 0 (tightest deadline, least
  // likely to make it) is evicted in its favor.
  const auto victim = queue.offer(job(2, 0, 0, /*deadline=*/500), /*now=*/50, 0);
  ASSERT_TRUE(victim.has_value());
  EXPECT_EQ(victim->job_id, 0);
  EXPECT_EQ(queue.pop_front().job_id, 1);
  EXPECT_EQ(queue.pop_front().job_id, 2);
}

TEST(AdmissionQueueTest, DeadlineAwareTreatsNoDeadlineAsInfiniteSlack) {
  AdmissionQueue queue({/*capacity=*/1, ShedPolicy::DeadlineAware});
  EXPECT_FALSE(queue.offer(job(0, 0, 0, /*deadline=*/0), 0, 0));
  // The arrival has a finite deadline; the queued no-deadline job survives.
  const auto victim = queue.offer(job(1, 0, 0, /*deadline=*/500), 0, 0);
  ASSERT_TRUE(victim.has_value());
  EXPECT_EQ(victim->job_id, 1);
}

TEST(AdmissionQueueTest, PriorityShedsLowestPriority) {
  AdmissionQueue queue({/*capacity=*/2, ShedPolicy::Priority});
  EXPECT_FALSE(queue.offer(job(0, /*priority=*/5), 0, 0));
  EXPECT_FALSE(queue.offer(job(1, /*priority=*/1), 0, 0));
  const auto victim = queue.offer(job(2, /*priority=*/3), 0, 0);
  ASSERT_TRUE(victim.has_value());
  EXPECT_EQ(victim->job_id, 1);  // lowest priority in queue ∪ {arrival}
  EXPECT_EQ(queue.pop_front().job_id, 0);
  EXPECT_EQ(queue.pop_front().job_id, 2);
}

TEST(AdmissionQueueTest, TieBreaksOnNewestJobId) {
  AdmissionQueue queue({/*capacity=*/2, ShedPolicy::Priority});
  EXPECT_FALSE(queue.offer(job(0, 2), 0, 0));
  EXPECT_FALSE(queue.offer(job(1, 2), 0, 0));
  // All equal priority: the newest job (the arrival) is the victim, so a
  // stream of ties degenerates to drop-tail — deterministic and fair to
  // work already accepted.
  const auto victim = queue.offer(job(2, 2), 0, 0);
  ASSERT_TRUE(victim.has_value());
  EXPECT_EQ(victim->job_id, 2);
}

TEST(AdmissionQueueTest, PolicyNamesRoundTrip) {
  for (ShedPolicy policy : {ShedPolicy::DropTail, ShedPolicy::DeadlineAware,
                            ShedPolicy::Priority}) {
    const auto parsed = parse_shed_policy(shed_policy_name(policy));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, policy);
  }
  EXPECT_FALSE(parse_shed_policy("nonsense").has_value());
}

TEST(AdmissionQueueTest, PopFromEmptyThrows) {
  AdmissionQueue queue({});
  EXPECT_THROW(queue.pop_front(), hq::Error);
}

}  // namespace
}  // namespace hq::serve
