#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "common/units.hpp"
#include "sim/simulator.hpp"
#include "sim/task.hpp"

namespace hq::sim {
namespace {

Task delay_task(Simulator& sim, DurationNs d, std::vector<TimeNs>* log) {
  co_await sim.delay(d);
  log->push_back(sim.now());
}

TEST(TaskTest, SpawnedTaskRuns) {
  Simulator sim;
  std::vector<TimeNs> log;
  sim.spawn(delay_task(sim, 100, &log));
  sim.run();
  EXPECT_EQ(log, (std::vector<TimeNs>{100}));
  EXPECT_EQ(sim.live_tasks(), 0u);
}

TEST(TaskTest, UnspawnedTaskNeverRuns) {
  Simulator sim;
  std::vector<TimeNs> log;
  {
    Task t = delay_task(sim, 100, &log);  // destroyed without starting
    EXPECT_TRUE(t.valid());
  }
  sim.run();
  EXPECT_TRUE(log.empty());
}

TEST(TaskTest, SpawnOrderIsStartOrderAtSameInstant) {
  Simulator sim;
  std::vector<int> order;
  auto make = [&](int id) -> Task {
    order.push_back(id);
    co_return;
  };
  // NOTE: coroutine bodies run lazily, so push happens at first resume.
  sim.spawn(make(1));
  sim.spawn(make(2));
  sim.spawn(make(3));
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

Task child(Simulator& sim, std::vector<int>* log) {
  log->push_back(1);
  co_await sim.delay(10);
  log->push_back(2);
}

Task parent(Simulator& sim, std::vector<int>* log) {
  log->push_back(0);
  co_await child(sim, log);
  log->push_back(3);
  co_await sim.delay(5);
  log->push_back(4);
}

TEST(TaskTest, AwaitedChildRunsInline) {
  Simulator sim;
  std::vector<int> log;
  sim.spawn(parent(sim, &log));
  sim.run();
  EXPECT_EQ(log, (std::vector<int>{0, 1, 2, 3, 4}));
  EXPECT_EQ(sim.now(), 15u);
}

Task grandchild(Simulator& sim) {
  co_await sim.delay(7);
}

Task mid(Simulator& sim) {
  co_await grandchild(sim);
  co_await grandchild(sim);
}

Task top(Simulator& sim, TimeNs* end) {
  co_await mid(sim);
  co_await mid(sim);
  *end = sim.now();
}

TEST(TaskTest, DeepNestingAccumulatesDelays) {
  Simulator sim;
  TimeNs end = 0;
  sim.spawn(top(sim, &end));
  sim.run();
  EXPECT_EQ(end, 28u);  // 4 grandchildren x 7ns
}

Task thrower(Simulator& sim) {
  co_await sim.delay(1);
  throw std::runtime_error("task boom");
}

TEST(TaskTest, RootTaskExceptionPropagatesFromRun) {
  Simulator sim;
  sim.spawn(thrower(sim));
  EXPECT_THROW(sim.run(), std::runtime_error);
}

Task catching_parent(Simulator& sim, bool* caught) {
  try {
    co_await thrower(sim);
  } catch (const std::runtime_error&) {
    *caught = true;
  }
}

TEST(TaskTest, ChildExceptionRethrownAtAwaitSite) {
  Simulator sim;
  bool caught = false;
  sim.spawn(catching_parent(sim, &caught));
  sim.run();
  EXPECT_TRUE(caught);
}

TEST(TaskTest, ManyConcurrentTasksInterleaveDeterministically) {
  Simulator sim;
  std::vector<int> completions;
  auto worker = [](Simulator& s, int id, DurationNs d,
                   std::vector<int>* out) -> Task {
    co_await s.delay(d);
    out->push_back(id);
  };
  // Stagger delays so completion order is the reverse of spawn order.
  for (int i = 0; i < 50; ++i) {
    sim.spawn(worker(sim, i, static_cast<DurationNs>(1000 - 10 * i),
                     &completions));
  }
  sim.run();
  ASSERT_EQ(completions.size(), 50u);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(completions[static_cast<std::size_t>(i)], 49 - i);
  }
}

TEST(TaskTest, TaskMoveSemantics) {
  Simulator sim;
  std::vector<TimeNs> log;
  Task a = delay_task(sim, 3, &log);
  Task b = std::move(a);
  EXPECT_FALSE(a.valid());  // NOLINT(bugprone-use-after-move): testing state
  EXPECT_TRUE(b.valid());
  sim.spawn(std::move(b));
  EXPECT_FALSE(b.valid());  // NOLINT(bugprone-use-after-move)
  sim.run();
  EXPECT_EQ(log.size(), 1u);
}

TEST(TaskTest, SpawnFromWithinTask) {
  Simulator sim;
  std::vector<int> log;
  auto inner = [](Simulator& s, std::vector<int>* out) -> Task {
    co_await s.delay(5);
    out->push_back(2);
  };
  auto outer = [&inner](Simulator& s, std::vector<int>* out) -> Task {
    out->push_back(1);
    s.spawn(inner(s, out));
    co_await s.delay(20);
    out->push_back(3);
  };
  sim.spawn(outer(sim, &log));
  sim.run();
  EXPECT_EQ(log, (std::vector<int>{1, 2, 3}));
}

TEST(TaskTest, LiveTaskCountTracksCompletion) {
  Simulator sim;
  std::vector<TimeNs> log;
  sim.spawn(delay_task(sim, 100, &log));
  sim.spawn(delay_task(sim, 200, &log));
  EXPECT_EQ(sim.live_tasks(), 2u);
  sim.run_until(150);
  EXPECT_EQ(sim.live_tasks(), 1u);
  sim.run();
  EXPECT_EQ(sim.live_tasks(), 0u);
}

}  // namespace
}  // namespace hq::sim
