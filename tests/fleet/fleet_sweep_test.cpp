// Tests for the fleet sweep layer: grid expansion order, grid-key
// sensitivity to every result-affecting config field, journal round-trip
// and torn-line tolerance, resume correctness (refuses foreign grids,
// replays finished points, equals a fresh run), and byte-identical
// combined digests across --jobs counts.
#include "fleet/sweep.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "common/check.hpp"
#include "fault/fault.hpp"
#include "tests/hyperq/synthetic_app.hpp"

namespace hq::fleet {
namespace {

using fw::testing::SyntheticApp;

serve::ServiceConfig small_base() {
  serve::ServiceConfig config;
  config.window = 4 * kMillisecond;
  config.mean_interarrival = 100 * kMicrosecond;
  config.num_streams = 2;
  config.max_inflight = 2;
  SyntheticApp::Spec spec;
  spec.num_kernels = 2;
  spec.block_duration = 30 * kMicrosecond;
  config.classes.push_back(
      {fw::WorkloadItem{"synthetic",
                        [spec] { return std::make_unique<SyntheticApp>(spec); }},
       0});
  config.collect_metrics = false;
  return config;
}

FleetSweepGrid small_grid() {
  FleetSweepGrid grid;
  grid.base.base = small_base();
  grid.fleet_sizes = {1, 2};
  grid.placements = {PlacementPolicy::RoundRobin,
                     PlacementPolicy::LeastLoaded};
  return grid;
}

std::uint64_t key_of(const FleetSweepGrid& grid) {
  const auto points = expand_fleet_sweep(grid);
  return fleet_sweep_grid_key(grid, points);
}

/// RAII scratch file path for journal tests.
struct ScratchFile {
  std::string path;
  explicit ScratchFile(const std::string& name)
      : path(::testing::TempDir() + name) {
    std::remove(path.c_str());
  }
  ~ScratchFile() { std::remove(path.c_str()); }
};

TEST(FleetSweepTest, ExpandsRowMajorSizesOutermost) {
  const auto points = expand_fleet_sweep(small_grid());
  ASSERT_EQ(points.size(), 4u);
  EXPECT_EQ(points[0].label(), "n=1 placement=round-robin");
  EXPECT_EQ(points[1].label(), "n=1 placement=least-loaded");
  EXPECT_EQ(points[2].label(), "n=2 placement=round-robin");
  EXPECT_EQ(points[3].label(), "n=2 placement=least-loaded");
  for (std::size_t i = 0; i < points.size(); ++i) {
    EXPECT_EQ(points[i].index, i);
  }
}

TEST(FleetSweepTest, ApplyPointResizesCyclicallyFromResolvedSpecs) {
  FleetSweepGrid grid = small_grid();
  grid.base.devices = {gpu::DeviceSpec::tesla_k20(),
                       gpu::DeviceSpec::single_copy_engine()};
  grid.fleet_sizes = {3};
  grid.placements = {PlacementPolicy::CopyAware};
  const auto points = expand_fleet_sweep(grid);
  const FleetConfig config = apply_fleet_point(grid, points[0]);
  ASSERT_EQ(config.devices.size(), 3u);
  EXPECT_EQ(config.devices[0].name, gpu::DeviceSpec::tesla_k20().name);
  EXPECT_EQ(config.devices[1].name,
            gpu::DeviceSpec::single_copy_engine().name);
  EXPECT_EQ(config.devices[2].name, gpu::DeviceSpec::tesla_k20().name);
  EXPECT_EQ(config.placement, PlacementPolicy::CopyAware);
}

TEST(FleetSweepTest, GridKeyFingerprintsEveryResultAffectingField) {
  const FleetSweepGrid base = small_grid();
  const std::uint64_t base_key = key_of(base);

  std::vector<FleetSweepGrid> variants;
  const auto variant = [&]() -> FleetSweepGrid& {
    variants.push_back(base);
    return variants.back();
  };
  variant().fleet_sizes = {1, 4};
  variant().placements = {PlacementPolicy::RoundRobin};
  variant().base.devices = {gpu::DeviceSpec::single_copy_engine()};
  variant().base.copy_penalty = 0.5;
  variant().base.work_stealing = true;
  variant().base.device_breaker_enabled = true;
  variant().base.device_breaker.failure_threshold = 9;
  variant().base.device_breaker.cooldown = kMillisecond;
  variant().base.base.seed = 999;
  variant().base.base.window = 5 * kMillisecond;
  variant().base.base.mean_interarrival = 10 * kMicrosecond;
  variant().base.base.num_streams = 7;
  variant().base.base.max_inflight = 9;
  variant().base.base.memory_sync = !base.base.base.memory_sync;
  variant().base.base.queue_cap = 3;
  variant().base.base.deadline = kMillisecond;
  variant().base.base.expire_queued = !base.base.base.expire_queued;
  variant().base.base.classes.push_back(base.base.base.classes[0]);
  variant().base.base.classes[0].priority = 5;
  variant().base.base.controller.enabled = true;
  variant().base.base.breaker_enabled = !base.base.base.breaker_enabled;
  variant().base.base.fault_plan.enabled = true;
  variant().base.base.retry.max_attempts = 7;
  variant().base.base.arrivals.push_back({kMillisecond, 0});
  // Fault-domain knobs: a chaos-config edit must never splice a resumed
  // journal's cached outcomes into the new config's report.
  variant().base.device_fault_plans = {fault::FaultPlan::zero(),
                                       fault::FaultPlan::zero()};
  {
    FleetSweepGrid& g = variant();
    fault::FaultPlan crash = fault::FaultPlan::zero();
    crash.crash_at = 3 * kMillisecond;
    g.base.device_fault_plans = {crash, fault::FaultPlan::zero()};
  }
  variant().base.failover_budget = 0;
  variant().base.hedging = true;
  variant().base.hedge_threshold = 3.5;
  variant().base.hedge_min_samples = 9;
  // Integrity knobs: a policy or SDC-plan edit must also invalidate cached
  // journal outcomes.
  variant().base.integrity = IntegrityPolicy::Dmr;
  variant().base.spotcheck_rate = 0.77;
  variant().base.sdc_blocklist_threshold = 0.33;
  variant().base.sdc_score_alpha = 0.9;
  {
    FleetSweepGrid& g = variant();
    fault::FaultPlan sdc = fault::FaultPlan::zero();
    sdc.sdc_stuck_at = 3 * kMillisecond;
    g.base.device_fault_plans = {sdc, fault::FaultPlan::zero()};
  }
  {
    FleetSweepGrid& g = variant();
    fault::FaultPlan sdc = fault::FaultPlan::zero();
    sdc.sdc_copy_rate = 0.4;
    g.base.device_fault_plans = {sdc, fault::FaultPlan::zero()};
  }

  std::set<std::uint64_t> keys = {base_key};
  for (std::size_t i = 0; i < variants.size(); ++i) {
    const std::uint64_t key = key_of(variants[i]);
    EXPECT_NE(key, base_key) << "variant " << i << " did not move the key";
    EXPECT_TRUE(keys.insert(key).second)
        << "variant " << i << " collided with an earlier key";
  }
}

TEST(FleetSweepTest, JournalOutcomeLineRoundTrips) {
  const FleetSweepGrid grid = small_grid();
  const auto points = expand_fleet_sweep(grid);
  const FleetSweepOutcome out = run_fleet_point(grid, points[2]);
  const std::string line = fleet_journal_outcome_line(out);
  const auto parsed = parse_fleet_journal_outcome(line, points);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->point.index, out.point.index);
  EXPECT_EQ(parsed->point.fleet_size, out.point.fleet_size);
  EXPECT_EQ(parsed->point.placement, out.point.placement);
  EXPECT_EQ(parsed->arrived, out.arrived);
  EXPECT_EQ(parsed->completed_ok, out.completed_ok);
  EXPECT_EQ(parsed->completed, out.completed);
  EXPECT_EQ(parsed->shed, out.shed);
  EXPECT_EQ(parsed->requeued, out.requeued);
  EXPECT_EQ(parsed->stolen, out.stolen);
  EXPECT_EQ(parsed->goodput_per_sec, out.goodput_per_sec);
  EXPECT_EQ(parsed->total_time, out.total_time);
  EXPECT_EQ(parsed->report_digest, out.report_digest);
}

TEST(FleetSweepTest, LoadJournalSkipsTornAndForeignLines) {
  const FleetSweepGrid grid = small_grid();
  const auto points = expand_fleet_sweep(grid);
  const std::uint64_t key = fleet_sweep_grid_key(grid, points);
  const FleetSweepOutcome out = run_fleet_point(grid, points[1]);

  std::stringstream journal;
  journal << fleet_journal_header_line(key, points.size()) << "\n";
  journal << "garbage line\n";
  const std::string good = fleet_journal_outcome_line(out);
  journal << good.substr(0, good.size() / 2) << "\n";  // torn mid-write
  journal << "point index=99 arrived=1 end\n";         // out-of-range point
  journal << good << "\n";

  std::vector<std::optional<FleetSweepOutcome>> cached(points.size());
  bool header_read = false;
  const std::size_t loaded =
      load_fleet_journal(journal, key, points, &cached, &header_read);
  EXPECT_TRUE(header_read);
  EXPECT_EQ(loaded, 1u);
  ASSERT_TRUE(cached[1].has_value());
  EXPECT_EQ(cached[1]->report_digest, out.report_digest);
  EXPECT_FALSE(cached[0].has_value());
}

TEST(FleetSweepTest, LoadJournalRejectsForeignGridKey) {
  const FleetSweepGrid grid = small_grid();
  const auto points = expand_fleet_sweep(grid);
  const std::uint64_t key = fleet_sweep_grid_key(grid, points);
  std::stringstream journal;
  journal << fleet_journal_header_line(key ^ 1, points.size()) << "\n";
  std::vector<std::optional<FleetSweepOutcome>> cached(points.size());
  EXPECT_THROW(load_fleet_journal(journal, key, points, &cached), hq::Error);
}

TEST(FleetSweepTest, ResumeEqualsFreshRunAndRefusesForeignGrid) {
  const FleetSweepGrid grid = small_grid();
  const auto fresh = run_fleet_sweep(grid, {});

  // Journal a full run, then resume from it: every point replays from the
  // journal and the outcomes match the fresh run exactly.
  ScratchFile scratch("fleet_sweep_journal_test.log");
  FleetSweepOptions journaled;
  journaled.journal_path = scratch.path;
  const auto first = run_fleet_sweep(grid, journaled);
  FleetSweepOptions resumed = journaled;
  resumed.resume = true;
  const auto second = run_fleet_sweep(grid, resumed);
  ASSERT_EQ(first.size(), fresh.size());
  ASSERT_EQ(second.size(), fresh.size());
  EXPECT_EQ(fleet_combined_digest(first), fleet_combined_digest(fresh));
  EXPECT_EQ(fleet_combined_digest(second), fleet_combined_digest(fresh));

  // A different grid must refuse to resume from this journal.
  FleetSweepGrid other = grid;
  other.base.base.seed = 4242;
  EXPECT_THROW(run_fleet_sweep(other, resumed), hq::Error);
}

TEST(FleetSweepTest, CombinedDigestIsByteIdenticalAcrossJobCounts) {
  const FleetSweepGrid grid = small_grid();
  const auto serial = run_fleet_sweep(grid, {});
  for (const int jobs : {2, 8}) {
    FleetSweepOptions options;
    options.jobs = jobs;
    const auto threaded = run_fleet_sweep(grid, options);
    ASSERT_EQ(threaded.size(), serial.size());
    EXPECT_EQ(fleet_combined_digest(threaded),
              fleet_combined_digest(serial))
        << "jobs=" << jobs;
    for (std::size_t i = 0; i < serial.size(); ++i) {
      EXPECT_EQ(threaded[i].report_digest, serial[i].report_digest) << i;
    }
  }
}

TEST(FleetSweepTest, RenderedReportListsEveryPointAndCombinedDigest) {
  const FleetSweepGrid grid = small_grid();
  const auto outcomes = run_fleet_sweep(grid, {});
  const std::string report = render_fleet_sweep_report(outcomes);
  EXPECT_NE(report.find("round-robin"), std::string::npos);
  EXPECT_NE(report.find("least-loaded"), std::string::npos);
  EXPECT_NE(report.find("combined digest: 0x"), std::string::npos);
}

}  // namespace
}  // namespace hq::fleet
