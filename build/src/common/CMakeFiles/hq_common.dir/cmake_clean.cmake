file(REMOVE_RECURSE
  "CMakeFiles/hq_common.dir/log.cpp.o"
  "CMakeFiles/hq_common.dir/log.cpp.o.d"
  "CMakeFiles/hq_common.dir/rng.cpp.o"
  "CMakeFiles/hq_common.dir/rng.cpp.o.d"
  "CMakeFiles/hq_common.dir/stats.cpp.o"
  "CMakeFiles/hq_common.dir/stats.cpp.o.d"
  "CMakeFiles/hq_common.dir/table.cpp.o"
  "CMakeFiles/hq_common.dir/table.cpp.o.d"
  "CMakeFiles/hq_common.dir/units.cpp.o"
  "CMakeFiles/hq_common.dir/units.cpp.o.d"
  "libhq_common.a"
  "libhq_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hq_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
