file(REMOVE_RECURSE
  "libhq_gpusim.a"
)
