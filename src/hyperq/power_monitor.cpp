#include "hyperq/power_monitor.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "common/stats.hpp"

namespace hq::fw {

PowerMonitor::PowerMonitor(sim::Simulator& sim, nvml::ManagementLibrary& nvml,
                           DurationNs period)
    : sim_(sim), nvml_(nvml), period_(period) {
  HQ_CHECK(period_ > 0);
}

void PowerMonitor::start() {
  HQ_CHECK_MSG(!running_, "PowerMonitor started twice");
  running_ = true;
  stop_requested_ = false;
  samples_.push_back(PowerSample{sim_.now(), nvml_.power_usage_watts()});
  sim_.spawn(sample_loop(this));
}

void PowerMonitor::stop() { stop_requested_ = true; }

sim::Task PowerMonitor::sample_loop(PowerMonitor* self) {
  while (!self->stop_requested_) {
    co_await self->sim_.delay(self->period_);
    self->samples_.push_back(
        PowerSample{self->sim_.now(), self->nvml_.power_usage_watts()});
  }
  self->running_ = false;
}

Joules PowerMonitor::energy_between(TimeNs begin, TimeNs end) const {
  std::vector<std::pair<double, double>> window;
  for (const PowerSample& s : samples_) {
    if (s.time >= begin && s.time <= end) {
      window.emplace_back(to_seconds(s.time), s.watts);
    }
  }
  return trapezoid_integral(window);
}

Watts PowerMonitor::average_power(TimeNs begin, TimeNs end) const {
  RunningStats stats;
  for (const PowerSample& s : samples_) {
    if (s.time >= begin && s.time <= end) stats.add(s.watts);
  }
  return stats.mean();
}

Watts PowerMonitor::peak_power(TimeNs begin, TimeNs end) const {
  RunningStats stats;
  for (const PowerSample& s : samples_) {
    if (s.time >= begin && s.time <= end) stats.add(s.watts);
  }
  return stats.max();
}

}  // namespace hq::fw
