// Serving-layer accounting invariants (library hq_check).
//
// The serving Service (src/serve) classifies every arrival into exactly one
// terminal state. Two properties must hold for any configuration, fault
// plan, and seed:
//
//   1. Conservation: arrived == completed_ok + completed_late +
//      shed_queue_full + shed_breaker + timed_out_queued + quarantined.
//      No job is lost or double-counted, even under faults and shedding.
//
//   2. Shed work is free: a job rejected before dispatch (shed or expired
//      in the queue) never touched the device, so its app id must not
//      appear on any trace span.
//
// The checks live in hq_check (not hq_serve) so the fuzz oracles can verify
// serving runs through the same layer that validates device invariants.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "trace/trace.hpp"

namespace hq::check {

/// Final job accounting of one serving run (filled by serve::Service).
struct ServeAccounting {
  std::uint64_t arrived = 0;
  std::uint64_t completed_ok = 0;
  std::uint64_t completed_late = 0;
  std::uint64_t shed_queue_full = 0;
  std::uint64_t shed_breaker = 0;
  std::uint64_t timed_out_queued = 0;
  std::uint64_t quarantined = 0;
  /// Fleet-only: arrivals rejected because no healthy device existed. Not
  /// part of this device's `arrived` (no device ever saw them), but their
  /// ids still ride in undispatched_apps for the span-free check.
  std::uint64_t shed_no_device = 0;
  /// Fleet-only: jobs dropped after exhausting their failover budget (or
  /// the supply of healthy survivors) WITHOUT ever dispatching. Like
  /// shed_no_device they are not part of this device's `arrived`, and
  /// their ids ride in undispatched_apps for the span-free check. Jobs
  /// that dispatched before their device went down are accounted only at
  /// the fleet level (their partial runs legitimately own trace spans).
  std::uint64_t shed_failover_exhausted = 0;
  /// App ids of jobs rejected before dispatch (shed or expired while
  /// queued); these must have no trace spans.
  std::vector<std::int32_t> undispatched_apps;
};

/// Verifies the serve accounting invariants. Returns human-readable
/// violation descriptions; empty means every invariant holds. `trace` may
/// be nullptr, which skips the span check.
std::vector<std::string> verify_serve_accounting(const ServeAccounting& acc,
                                                 const trace::Recorder* trace);

}  // namespace hq::check
