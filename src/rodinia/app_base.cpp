#include "rodinia/app_base.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "common/hash.hpp"

namespace hq::rodinia {

Bytes RodiniaApp::htod_bytes() const {
  Bytes total = 0;
  for (const Buffer& b : buffers_) {
    if (b.to_device) total += b.bytes;
  }
  return total;
}

Bytes RodiniaApp::dtoh_bytes() const {
  Bytes total = 0;
  for (const Buffer& b : buffers_) {
    if (b.to_host) total += b.bytes;
  }
  return total;
}

std::uint64_t RodiniaApp::output_digest(fw::Context& ctx) const {
  Fnv1a64 h;
  for (const Buffer& b : buffers_) {
    if (!b.to_host || b.host.null()) continue;
    h.mix_string(b.label);
    h.mix_bytes(ctx.runtime->host_bytes(b.host));
  }
  return h.value();
}

RodiniaApp::Buffer& RodiniaApp::add_buffer(std::string label, Bytes bytes,
                                           bool to_device, bool to_host,
                                           bool host_side, bool device_side) {
  HQ_CHECK(bytes > 0);
  HQ_CHECK_MSG(!(to_device || to_host) || (host_side && device_side),
               "transferred buffers need both sides");
  Buffer b;
  b.label = std::move(label);
  b.bytes = bytes;
  b.to_device = to_device;
  b.to_host = to_host;
  b.host_side = host_side;
  b.device_side = device_side;
  buffers_.push_back(std::move(b));
  return buffers_.back();
}

RodiniaApp::Buffer& RodiniaApp::buffer(const std::string& label) {
  auto it = std::find_if(buffers_.begin(), buffers_.end(),
                         [&label](const Buffer& b) { return b.label == label; });
  HQ_CHECK_MSG(it != buffers_.end(), name() << ": no buffer '" << label << "'");
  return *it;
}

const RodiniaApp::Buffer& RodiniaApp::buffer(const std::string& label) const {
  auto it = std::find_if(buffers_.begin(), buffers_.end(),
                         [&label](const Buffer& b) { return b.label == label; });
  HQ_CHECK_MSG(it != buffers_.end(), name() << ": no buffer '" << label << "'");
  return *it;
}

void RodiniaApp::allocateHostMemory(fw::Context& ctx) {
  // Pinned allocation can fail transiently under fault injection; retry a
  // bounded number of times before giving up (the harness quarantines the
  // app when this throws).
  constexpr int kMaxAllocAttempts = 8;
  for (Buffer& b : buffers_) {
    if (!b.host_side) continue;
    auto result = ctx.runtime->malloc_host(b.bytes);
    for (int attempt = 1; !result.ok() && attempt < kMaxAllocAttempts;
         ++attempt) {
      result = ctx.runtime->malloc_host(b.bytes);
    }
    HQ_CHECK_MSG(result.ok(), name() << ": host allocation of " << b.bytes
                                     << " bytes failed after "
                                     << kMaxAllocAttempts << " attempts");
    b.host = result.value();
  }
}

void RodiniaApp::allocateDeviceMemory(fw::Context& ctx) {
  for (Buffer& b : buffers_) {
    if (!b.device_side) continue;
    auto result = ctx.runtime->malloc_device(b.bytes);
    HQ_CHECK_MSG(result.ok(), name() << ": device allocation of " << b.bytes
                                     << " bytes failed ("
                                     << rt::status_name(result.status()) << ")");
    b.dev = result.value();
  }
}

void RodiniaApp::freeHostMemory(fw::Context& ctx) {
  for (Buffer& b : buffers_) {
    if (!b.host_side || b.host.null()) continue;
    HQ_CHECK(ctx.runtime->free_host(b.host) == rt::Status::Ok);
    b.host = {};
  }
}

void RodiniaApp::freeDeviceMemory(fw::Context& ctx) {
  for (Buffer& b : buffers_) {
    if (!b.device_side || b.dev.null()) continue;
    HQ_CHECK(ctx.runtime->free_device(b.dev) == rt::Status::Ok);
    b.dev = {};
  }
}

sim::Task RodiniaApp::transferMemory(fw::Context& ctx,
                                     fw::Direction direction) {
  for (std::size_t i = 0; i < buffers_.size(); ++i) {
    // Index-based loop: the buffer vector is stable during a run, and the
    // coroutine frame only holds trivially-destructible state.
    Buffer& b = buffers_[i];
    const bool wanted = direction == fw::Direction::HostToDevice
                            ? b.to_device
                            : b.to_host;
    if (!wanted) continue;

    const Bytes chunk = ctx.transfer_chunk_bytes == 0
                            ? b.bytes
                            : std::min(ctx.transfer_chunk_bytes, b.bytes);
    for (Bytes offset = 0; offset < b.bytes; offset += chunk) {
      const Bytes len = std::min(chunk, b.bytes - offset);
      gpu::OpTag tag{ctx.app_id, b.label};
      auto op = direction == fw::Direction::HostToDevice
                    ? ctx.runtime->memcpy_htod_async(ctx.stream, b.dev, b.host,
                                                     len, std::move(tag), offset)
                    : ctx.runtime->memcpy_dtoh_async(ctx.stream, b.host, b.dev,
                                                     len, std::move(tag), offset);
      co_await op;
      if (ctx.blocking_transfers) {
        // cudaMemcpy semantics: wait for this transfer before the next one,
        // letting other applications' transfers slot in between (Figure 1).
        co_await ctx.runtime->stream_synchronize(ctx.stream);
      }
    }
  }
  // Rodinia applications use blocking transfers at stage boundaries; the
  // stage ends only when the data has actually arrived.
  co_await ctx.runtime->stream_synchronize(ctx.stream);
}

rt::LaunchConfig RodiniaApp::make_launch(const std::string& kernel_name,
                                         gpu::Dim3 grid, gpu::Dim3 block,
                                         const KernelCost& cost,
                                         std::function<void()> body) {
  rt::LaunchConfig config;
  config.name = kernel_name;
  config.grid = grid;
  config.block = block;
  config.regs_per_thread = cost.regs_per_thread;
  config.smem_per_block = cost.smem_per_block;
  config.block_duration = cost.block_duration;
  config.contention_sensitivity = cost.contention_sensitivity;
  config.body = std::move(body);
  return config;
}

}  // namespace hq::rodinia
