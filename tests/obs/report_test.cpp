// Telemetry exporters: deterministic double formatting, JSON/Prometheus
// shape and escaping, and Series -> Chrome-trace counter-track conversion.
#include "obs/report.hpp"

#include <gtest/gtest.h>

#include <limits>

#include "tests/common/json_check.hpp"
#include "trace/chrome_trace.hpp"

namespace hq::obs {
namespace {

using hq::testing::json_well_formed;

MetricsRegistry sample_registry() {
  MetricsRegistry reg;
  reg.counter("copies", "transfers enqueued").add(3);
  reg.gauge("energy", "joules").set(1.5);
  auto& h = reg.histogram("wait_ns", {10.0, 100.0}, "queue wait");
  h.record(5.0);
  h.record(50.0);
  h.record(500.0);
  auto& s = reg.series("depth", "queue depth");
  s.sample(0, 1.0);
  s.sample(1000, 2.0);
  s.sample(2500, 0.0);
  return reg;
}

TEST(ReportTest, FormatDoubleIsShortestRoundTrip) {
  EXPECT_EQ(format_double(0.5), "0.5");
  EXPECT_EQ(format_double(1.0), "1");
  EXPECT_EQ(format_double(-2.25), "-2.25");
  EXPECT_EQ(format_double(0.0), "0");
  // Shortest form that round-trips, not a fixed precision.
  EXPECT_EQ(format_double(0.1), "0.1");
  EXPECT_EQ(std::stod(format_double(1e9)), 1e9);
  EXPECT_EQ(std::stod(format_double(123.456789012345)), 123.456789012345);
}

TEST(ReportTest, FormatDoubleClampsNonFiniteToZero) {
  // Metrics derived from degenerate runs (zero-duration windows, empty
  // sample sets) must never leak NaN/Inf into JSON — both are invalid JSON
  // tokens and would corrupt the byte-identity contract of the reports.
  EXPECT_EQ(format_double(std::numeric_limits<double>::quiet_NaN()), "0");
  EXPECT_EQ(format_double(std::numeric_limits<double>::infinity()), "0");
  EXPECT_EQ(format_double(-std::numeric_limits<double>::infinity()), "0");
}

TEST(ReportTest, MetricsJsonIsWellFormedAndVersioned) {
  const MetricsRegistry reg = sample_registry();
  RunInfo info;
  info.workload = "gaussian+needle";
  info.num_apps = 2;
  info.num_streams = 4;
  info.order = "naive-fifo";
  info.makespan = 12345;
  info.trace_digest = 0xdeadbeef12345678ULL;
  AppReport app;
  app.app_id = 0;
  app.type = "gaussian";
  app.htod_effective_latency = 100;
  app.htod_interleave_count = 2;
  app.htod_interleave_bytes = 64;
  const std::string json = metrics_json(info, reg, {app});

  EXPECT_TRUE(json_well_formed(json));
  EXPECT_NE(json.find("\"schema_version\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"workload\": \"gaussian+needle\""), std::string::npos);
  EXPECT_NE(json.find("\"trace_digest\": \"0xdeadbeef12345678\""),
            std::string::npos);
  EXPECT_NE(json.find("\"htod_interleave_count\": 2"), std::string::npos);
  // Series points render as [t, v] pairs.
  EXPECT_NE(json.find("[1000, 2]"), std::string::npos);
}

TEST(ReportTest, MetricsJsonIsByteIdenticalAcrossIdenticalRuns) {
  RunInfo info;
  info.workload = "w";
  const std::string a = metrics_json(info, sample_registry(), {});
  const std::string b = metrics_json(info, sample_registry(), {});
  EXPECT_EQ(a, b);
}

TEST(ReportTest, EmptyRegistryAndAppsStillWellFormed) {
  const std::string json = metrics_json(RunInfo{}, MetricsRegistry{}, {});
  EXPECT_TRUE(json_well_formed(json));
  EXPECT_NE(json.find("\"apps\": []"), std::string::npos);
  EXPECT_NE(json.find("\"metrics\": []"), std::string::npos);
}

TEST(ReportTest, JsonEscapesQuotesAndBackslashes) {
  MetricsRegistry reg;
  reg.counter("odd\"name\\", "help with \"quotes\"").add(1);
  RunInfo info;
  info.workload = "w\"x\\y";
  const std::string json = metrics_json(info, reg, {});
  EXPECT_TRUE(json_well_formed(json));
  EXPECT_NE(json.find("odd\\\"name\\\\"), std::string::npos);
  EXPECT_NE(json.find("w\\\"x\\\\y"), std::string::npos);
}

TEST(ReportTest, PrometheusShapesEachKind) {
  const std::string text = prometheus_text(sample_registry());
  EXPECT_NE(text.find("# TYPE hq_copies counter\nhq_copies 3\n"),
            std::string::npos);
  EXPECT_NE(text.find("hq_energy 1.5\n"), std::string::npos);
  EXPECT_NE(text.find("hq_energy_peak 1.5\n"), std::string::npos);
  // Histogram buckets are cumulative and end with +Inf, _sum and _count.
  EXPECT_NE(text.find("hq_wait_ns_bucket{le=\"10\"} 1\n"), std::string::npos);
  EXPECT_NE(text.find("hq_wait_ns_bucket{le=\"100\"} 2\n"), std::string::npos);
  EXPECT_NE(text.find("hq_wait_ns_bucket{le=\"+Inf\"} 3\n"), std::string::npos);
  EXPECT_NE(text.find("hq_wait_ns_sum 555\n"), std::string::npos);
  EXPECT_NE(text.find("hq_wait_ns_count 3\n"), std::string::npos);
  // Series snapshot: last value + peak.
  EXPECT_NE(text.find("hq_depth 0\n"), std::string::npos);
  EXPECT_NE(text.find("hq_depth_peak 2\n"), std::string::npos);
}

TEST(ReportTest, CounterTracksPickOnlySeriesInRegistrationOrder) {
  const MetricsRegistry reg = sample_registry();
  const auto tracks = counter_tracks(reg);
  ASSERT_EQ(tracks.size(), 1u);
  EXPECT_EQ(tracks[0].name, "depth");
  ASSERT_EQ(tracks[0].points.size(), 3u);
  EXPECT_EQ(tracks[0].points[1].time, 1000);
  EXPECT_EQ(tracks[0].points[1].value, 2.0);
}

TEST(ReportTest, CounterTracksRenderAsChromeCounterEvents) {
  const auto tracks = counter_tracks(sample_registry());
  trace::Recorder recorder;
  const std::string json = trace::chrome_trace_json(recorder, tracks);
  EXPECT_TRUE(json_well_formed(json));
  EXPECT_NE(json.find("\"ph\": \"C\""), std::string::npos);
  EXPECT_NE(json.find("\"name\": \"depth\""), std::string::npos);
}

}  // namespace
}  // namespace hq::obs
