# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("sim")
subdirs("gpusim")
subdirs("trace")
subdirs("cudart")
subdirs("nvml")
subdirs("hyperq")
subdirs("rodinia")
