file(REMOVE_RECURSE
  "CMakeFiles/hq_framework.dir/adaptive_scheduler.cpp.o"
  "CMakeFiles/hq_framework.dir/adaptive_scheduler.cpp.o.d"
  "CMakeFiles/hq_framework.dir/harness.cpp.o"
  "CMakeFiles/hq_framework.dir/harness.cpp.o.d"
  "CMakeFiles/hq_framework.dir/metrics.cpp.o"
  "CMakeFiles/hq_framework.dir/metrics.cpp.o.d"
  "CMakeFiles/hq_framework.dir/power_monitor.cpp.o"
  "CMakeFiles/hq_framework.dir/power_monitor.cpp.o.d"
  "CMakeFiles/hq_framework.dir/schedule.cpp.o"
  "CMakeFiles/hq_framework.dir/schedule.cpp.o.d"
  "CMakeFiles/hq_framework.dir/stream_manager.cpp.o"
  "CMakeFiles/hq_framework.dir/stream_manager.cpp.o.d"
  "CMakeFiles/hq_framework.dir/streaming.cpp.o"
  "CMakeFiles/hq_framework.dir/streaming.cpp.o.d"
  "libhq_framework.a"
  "libhq_framework.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hq_framework.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
