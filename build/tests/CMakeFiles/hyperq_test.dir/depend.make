# Empty dependencies file for hyperq_test.
# This may be replaced when dependencies are built.
