// Performance and effective-memory-transfer-latency metrics.
//
// Paper Eq. 1–2: an application Ai consists of operations {mHD..., k..., mDH...};
// its effective memory transfer latency Le (per direction) is the span from
// the start (Tstart) of its first memory transfer to the completion (Tend)
// of its last. When transfers from other applications interleave in the copy
// queue, Le stretches far beyond the application's own service time — up to
// 8x in the paper's baseline.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "common/units.hpp"
#include "trace/trace.hpp"

namespace hq::fw {

/// Eq. 2: Tend(last transfer) - Tstart(first transfer) for one application
/// and direction, from recorded spans. nullopt when the app has no transfers
/// of that direction; a single transfer yields its own service time.
/// Order-independent: first/last are the min begin / max end over the app's
/// transfers, so spans may be recorded in any order.
std::optional<DurationNs> effective_transfer_latency(
    const trace::Recorder& recorder, int app_id, trace::SpanKind direction);
/// Same, over a prebuilt per-app index — O(app's spans) instead of
/// O(all spans), the non-quadratic path for per-app sweeps.
std::optional<DurationNs> effective_transfer_latency(
    const trace::AppIndex& index, int app_id, trace::SpanKind direction);

/// Sum of the application's own transfer service times for a direction (the
/// latency it would see with exclusive use of the copy engine). Zero when
/// the app has no transfers of that direction; order-independent.
DurationNs own_transfer_time(const trace::Recorder& recorder, int app_id,
                             trace::SpanKind direction);
DurationNs own_transfer_time(const trace::AppIndex& index, int app_id,
                             trace::SpanKind direction);

/// The paper's improvement measure, "relative to serialized execution":
/// (t_base - t) / t_base. Positive = faster than the baseline.
double improvement(double t_base, double t);

/// Per-application timing extracted after a harness run.
struct AppMetrics {
  int app_id = -1;
  std::string type;
  /// When the child thread was launched (spawned).
  TimeNs launch_time = 0;
  /// First device activity attributed to this app.
  TimeNs first_activity = 0;
  /// Completion of the app's last operation.
  TimeNs end_time = 0;
  DurationNs htod_effective_latency = 0;
  DurationNs dtoh_effective_latency = 0;
  DurationNs htod_own_time = 0;
  Bytes htod_bytes = 0;
  Bytes dtoh_bytes = 0;
  /// Foreign HtoD transfers served inside this app's Eq.-2 window — the
  /// interleaving that stretches Le. Filled from telemetry; 0 when the run
  /// did not collect it (HarnessConfig::collect_telemetry off).
  std::uint64_t htod_interleave_count = 0;
  Bytes htod_interleave_bytes = 0;
  /// Digest of the app's host-visible outputs (functional runs only; 0
  /// otherwise). Identical workloads must produce identical digests under
  /// every scheduling mode — an hqfuzz oracle.
  std::uint64_t output_digest = 0;
  /// Set when the recovery layer gave up on this app (allocation failure,
  /// exhausted launch retries, watchdog deadline). Quarantined apps are
  /// excluded from verification; the rest of the workload still completes.
  bool quarantined = false;
  std::string quarantine_reason;
};

/// Average Le (HtoD) across applications, in nanoseconds — the quantity the
/// paper's Figure 6 plots.
double mean_htod_effective_latency(const std::vector<AppMetrics>& apps);

}  // namespace hq::fw
