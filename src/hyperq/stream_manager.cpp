#include "hyperq/stream_manager.hpp"

#include "common/check.hpp"

namespace hq::fw {

StreamManager::StreamManager(rt::Runtime& runtime, int num_streams)
    : runtime_(runtime) {
  HQ_CHECK_MSG(num_streams >= 1, "need at least one stream");
  streams_.reserve(static_cast<std::size_t>(num_streams));
  for (int i = 0; i < num_streams; ++i) {
    streams_.emplace_back(runtime_, runtime_.stream_create());
  }
}

StreamManager::~StreamManager() {
  if (!destroyed_) destroy_all();
}

rt::Stream StreamManager::acquire() {
  HQ_CHECK(!destroyed_);
  const auto index = acquisitions_ % streams_.size();
  ++acquisitions_;
  return streams_[index].handle();
}

rt::Status StreamManager::destroy_all() {
  rt::Status first_error = rt::Status::Ok;
  for (const Stream& s : streams_) {
    const rt::Status status = runtime_.stream_destroy(s.handle());
    if (status != rt::Status::Ok && first_error == rt::Status::Ok) {
      first_error = status;
    }
  }
  destroyed_ = true;
  return first_error;
}

}  // namespace hq::fw
