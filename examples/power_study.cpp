// Scenario: measure the power/energy behaviour of increasing concurrency,
// the way the paper's PowerMonitor experiments do (Section V-D).
//
// Sweeps the number of streams for a 16-application {needle, srad} workload,
// sampling the simulated NVML power sensor at 66.7 Hz, and writes a CSV of
// the power traces plus a summary table.
#include <cstdio>

#include "common/table.hpp"
#include <fstream>

#include "hyperq/harness.hpp"
#include "hyperq/schedule.hpp"
#include "rodinia/registry.hpp"

int main() {
  using namespace hq;

  const int ns_values[] = {1, 2, 4, 8, 16};
  std::vector<fw::HarnessResult> results;

  for (int ns : ns_values) {
    fw::HarnessConfig config;
    config.num_streams = ns;
    config.power_period = kMillisecond;  // fine-grained: these runs are short
    Rng rng(1);
    const int counts[] = {8, 8};
    const auto schedule =
        fw::make_schedule(fw::Order::RoundRobin, counts, &rng);
    const auto workload =
        rodinia::build_workload(schedule, {"needle", "srad"}, {{}, {}});
    results.push_back(fw::Harness(config).run(workload));
  }

  std::printf("%-8s %-12s %-10s %-10s %-12s %-10s\n", "streams", "makespan",
              "avg W", "peak W", "energy J", "avg occup");
  for (std::size_t i = 0; i < results.size(); ++i) {
    const auto& r = results[i];
    const double exact_avg_w =
        r.energy_exact / to_seconds(std::max<DurationNs>(r.makespan, 1));
    std::printf("%-8d %-12s %-10.1f %-10.1f %-12.2f %-10.3f\n", ns_values[i],
                format_duration(r.makespan).c_str(), exact_avg_w,
                r.peak_power, r.energy_exact, r.average_occupancy);
  }

  std::ofstream csv("power_traces.csv");
  csv << "streams,t_ms,watts\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    for (const auto& sample : results[i].power_trace) {
      csv << ns_values[i] << "," << to_milliseconds(sample.time) << ","
          << sample.watts << "\n";
    }
  }
  std::printf("\nwrote power_traces.csv (streams,t_ms,watts)\n");
  std::printf("\nobservation (paper #4): average power grows far slower than "
              "concurrency, so the shorter runs cost less energy.\n");
  return 0;
}
