// Stable 64-bit hashing (FNV-1a).
//
// Used wherever the project needs a digest that is bit-identical across
// platforms and toolchains: trace digests (hq::trace::digest), functional
// output digests of the Rodinia ports, and the hqfuzz metamorphic oracles.
// Only fixed-width integers and raw bytes are ever fed in, so the result
// never depends on implementation-defined representations.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string_view>

namespace hq {

inline constexpr std::uint64_t kFnvOffsetBasis = 0xcbf29ce484222325ull;
inline constexpr std::uint64_t kFnvPrime = 0x100000001b3ull;

/// Incremental FNV-1a accumulator.
class Fnv1a64 {
 public:
  Fnv1a64& mix_byte(std::uint8_t b) {
    state_ = (state_ ^ b) * kFnvPrime;
    return *this;
  }

  Fnv1a64& mix_bytes(std::span<const std::byte> bytes) {
    for (std::byte b : bytes) mix_byte(static_cast<std::uint8_t>(b));
    return *this;
  }

  /// Mixes a 64-bit value little-endian byte by byte (platform independent).
  Fnv1a64& mix_u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) mix_byte(static_cast<std::uint8_t>(v >> (8 * i)));
    return *this;
  }

  Fnv1a64& mix_i64(std::int64_t v) { return mix_u64(static_cast<std::uint64_t>(v)); }

  /// Mixes length then contents, so "ab","c" and "a","bc" digest differently.
  Fnv1a64& mix_string(std::string_view s) {
    mix_u64(s.size());
    for (char c : s) mix_byte(static_cast<std::uint8_t>(c));
    return *this;
  }

  std::uint64_t value() const { return state_; }

 private:
  std::uint64_t state_ = kFnvOffsetBasis;
};

}  // namespace hq
