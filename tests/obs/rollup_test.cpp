// FleetRollup semantics: per-metric merge rules (counter/gauge/histogram/
// series), merge-order independence of every export byte, series_value_at,
// and the export shape for edge cases (no devices, never-recorded
// histograms).
#include "obs/rollup.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "common/check.hpp"
#include "obs/report.hpp"
#include "tests/common/json_check.hpp"

namespace hq::obs {
namespace {

std::shared_ptr<MetricsRegistry> device_registry(double scale) {
  auto reg = std::make_shared<MetricsRegistry>();
  reg->counter("jobs", "jobs done").add(static_cast<std::uint64_t>(10 * scale));
  reg->gauge("power_w", "power draw").set(50.0 * scale);
  Histogram& h = reg->histogram("wait_ns", {10.0, 100.0}, "queue wait");
  h.record(5.0 * scale);
  h.record(500.0);
  Series& s = reg->series("depth", "queue depth");
  s.sample(0, 0.0);
  s.sample(static_cast<TimeNs>(100 * scale), 2.0);
  s.sample(static_cast<TimeNs>(200 * scale), 1.0);
  return reg;
}

TEST(SeriesValueAtTest, StepsAndClamps) {
  Series s;
  EXPECT_EQ(series_value_at(s, 0), 0.0);  // empty series reads 0
  s.sample(100, 2.0);
  s.sample(200, 5.0);
  EXPECT_EQ(series_value_at(s, 0), 0.0);    // before the first point
  EXPECT_EQ(series_value_at(s, 100), 2.0);  // exactly on a point
  EXPECT_EQ(series_value_at(s, 150), 2.0);  // between points: previous value
  EXPECT_EQ(series_value_at(s, 999), 5.0);  // after the last point
}

TEST(FleetRollupTest, MergeSumsEveryKind) {
  FleetRollup rollup;
  rollup.add_device(0, "a", device_registry(1.0));
  rollup.add_device(1, "b", device_registry(2.0));

  const MetricsRegistry merged = rollup.merged();
  EXPECT_EQ(std::get<Counter>(merged.find("jobs")->metric).value(), 30u);
  EXPECT_DOUBLE_EQ(std::get<Gauge>(merged.find("power_w")->metric).value(),
                   150.0);

  const Histogram& h = std::get<Histogram>(merged.find("wait_ns")->metric);
  EXPECT_EQ(h.count(), 4u);
  EXPECT_EQ(h.counts(), (std::vector<std::uint64_t>{2, 0, 2}));

  // depth: device a steps 0 -> 2@100 -> 1@200; device b 0 -> 2@200 -> 1@400.
  const Series& s = std::get<Series>(merged.find("depth")->metric);
  EXPECT_EQ(series_value_at(s, 50), 0.0);
  EXPECT_EQ(series_value_at(s, 100), 2.0);
  EXPECT_EQ(series_value_at(s, 200), 3.0);  // 1 (a) + 2 (b)
  EXPECT_EQ(series_value_at(s, 400), 2.0);  // 1 (a) + 1 (b)
}

TEST(FleetRollupTest, ExportsIndependentOfAddOrder) {
  FleetInfo info;
  info.workload = "synthetic";
  info.num_devices = 3;
  info.placement = "least-loaded";

  FleetRollup ascending;
  FleetRollup shuffled;
  for (int d : {0, 1, 2}) {
    ascending.add_device(d, "dev" + std::to_string(d),
                         device_registry(1.0 + d));
  }
  for (int d : {2, 0, 1}) {
    shuffled.add_device(d, "dev" + std::to_string(d),
                        device_registry(1.0 + d));
  }
  EXPECT_EQ(fleet_metrics_json(info, ascending),
            fleet_metrics_json(info, shuffled));
  EXPECT_EQ(fleet_prometheus_text(ascending),
            fleet_prometheus_text(shuffled));
}

TEST(FleetRollupTest, RejectsDuplicateAndInvalidDevices) {
  FleetRollup rollup;
  rollup.add_device(0, "a", device_registry(1.0));
  EXPECT_THROW(rollup.add_device(0, "dup", device_registry(1.0)), hq::Error);
  EXPECT_THROW(rollup.add_device(-1, "neg", device_registry(1.0)), hq::Error);
  EXPECT_THROW(rollup.add_device(1, "null", nullptr), hq::Error);
}

TEST(FleetRollupTest, RejectsKindMismatchAcrossDevices) {
  auto a = std::make_shared<MetricsRegistry>();
  a->counter("x");
  auto b = std::make_shared<MetricsRegistry>();
  b->gauge("x");
  FleetRollup rollup;
  rollup.add_device(0, "a", a);
  rollup.add_device(1, "b", b);
  EXPECT_THROW(rollup.merged(), hq::Error);
}

TEST(FleetRollupTest, EmptyHistogramExportsZeroBuckets) {
  auto reg = std::make_shared<MetricsRegistry>();
  reg->histogram("wait_ns", {10.0, 100.0}, "never recorded");
  FleetRollup rollup;
  rollup.add_device(0, "a", reg);

  const std::string prom = fleet_prometheus_text(rollup);
  EXPECT_NE(prom.find("hq_wait_ns_bucket{device=\"0\",le=\"10\"} 0\n"),
            std::string::npos)
      << prom;
  EXPECT_NE(prom.find("hq_wait_ns_bucket{device=\"0\",le=\"+Inf\"} 0\n"),
            std::string::npos);
  EXPECT_NE(prom.find("hq_wait_ns_count{device=\"0\"} 0\n"),
            std::string::npos);
  EXPECT_NE(prom.find("hq_fleet_wait_ns_count 0\n"), std::string::npos);

  const std::string json = fleet_metrics_json(FleetInfo{}, rollup);
  EXPECT_TRUE(hq::testing::json_well_formed(json)) << json;
}

TEST(FleetRollupTest, NoDevicesStillRendersWellFormedJson) {
  FleetRollup rollup;
  rollup.fleet().counter("fleet_only", "a fleet-scope counter").add(7);
  const std::string json = fleet_metrics_json(FleetInfo{}, rollup);
  EXPECT_TRUE(hq::testing::json_well_formed(json)) << json;
  const std::string prom = fleet_prometheus_text(rollup);
  EXPECT_NE(prom.find("hq_fleet_only 7\n"), std::string::npos) << prom;
}

}  // namespace
}  // namespace hq::obs
