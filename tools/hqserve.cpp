// hqserve — overload-robust streaming serving driver.
//
// Runs the serve::Service engine: open Poisson (or replayed) arrivals onto
// the simulated Hyper-Q device, with a bounded admission queue, per-job
// deadlines and SLO accounting, an auto-memsync overload controller, and
// per-class circuit breakers over the fault-injection layer. Reports are
// byte-identical for a given config + seed at any --jobs count.
//
// Examples:
//   hqserve --mix gaussian,needle --size 96 --window-ms 20 --mean-gap-us 400
//   hqserve --mix gaussian:2,nn:0 --queue-cap 12 --shed-policy priority
//   hqserve --mix gaussian --deadline-us 3000 --expire-queued --report json
//   hqserve --mix gaussian --auto-memsync --breaker
//           --fault-plan launch-fail-rate=0.2,seed=7
//   hqserve --mix gaussian --size 64 --sweep-cap 4,8,16,0 --jobs 0
//   hqserve --mix gaussian --arrivals arrivals.txt   (lines: <time_us> <class>)
//
// Fleet mode (--devices / --device-spec-file / --sweep-fleet) shards the
// service across N simulated devices under one virtual clock, with a
// pluggable placement policy, optional work stealing, and per-device
// health breakers (src/fleet):
//   hqserve --mix gaussian --devices 4 --placement least-loaded
//   hqserve --mix gaussian --device-spec-file fleet.txt --steal
//           (lines: 'k20|fermi|single-copy [name=.. smx=N queues=N
//            copy-engines=N]')
//   hqserve --mix gaussian --sweep-fleet 1,2,4 --sweep-placement all
//           --jobs 0 --journal fleet.journal --resume
//
// Fleet fault domains layer device-lifecycle chaos on fleet mode: a
// per-device fault-plan file (--device-fault-plan-file, one --fault-plan
// line per device, 'disabled' = fault-free) can crash, flap, or degrade
// individual devices; displaced jobs fail over to survivors within
// --failover-budget hops, and --hedge races straggling jobs on idle peers:
//   hqserve --mix gaussian --devices 4 --device-fault-plan-file chaos.txt
//           --failover-budget 2 --hedge --hedge-threshold 2.5
//
// The integrity pipeline detects silent data corruption: --sdc-plan-file
// gives devices seeded corruption plans (sdc-copy-rate=, sdc-kernel-rate=,
// sdc-at-us=, sdc-stuck-at-us=) and --integrity picks the verification
// policy (trust = accept everything, spotcheck = re-execute a seeded
// fraction on a different device, dmr = re-execute every job and break
// mismatches with a third vote). Devices whose SDC score crosses
// --sdc-blocklist-threshold are permanently blocklisted:
//   hqserve --mix gaussian --devices 4 --sdc-plan-file sdc.txt
//           --integrity spotcheck --spotcheck-rate 0.25
//
// Exit codes: 0 success, 2 usage error, 3 run error (hq::Error).
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "common/check.hpp"
#include "common/table.hpp"
#include "exec/parallel.hpp"
#include "fault/fault.hpp"
#include "fleet/fleet.hpp"
#include "fleet/sweep.hpp"
#include "fleet/telemetry.hpp"
#include "obs/report.hpp"
#include "rodinia/registry.hpp"
#include "serve/report.hpp"
#include "serve/service.hpp"
#include "tools/cli.hpp"
#include "trace/chrome_trace.hpp"

namespace {

std::vector<std::string> split_csv(const std::string& s) {
  std::vector<std::string> out;
  std::stringstream ss(s);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (!item.empty()) out.push_back(item);
  }
  return out;
}

/// Parses one --mix entry of the form "app" or "app:priority".
bool parse_class(const std::string& entry, int size,
                 hq::serve::ServiceConfig& config, std::string* error) {
  std::string name = entry;
  int priority = 0;
  if (const auto colon = entry.find(':'); colon != std::string::npos) {
    name = entry.substr(0, colon);
    const std::string prio = entry.substr(colon + 1);
    errno = 0;
    char* end = nullptr;
    const long value = std::strtol(prio.c_str(), &end, 10);
    if (prio.empty() || errno != 0 || end == nullptr || *end != '\0') {
      *error = "bad priority in mix entry '" + entry + "'";
      return false;
    }
    priority = static_cast<int>(value);
  }
  if (!hq::rodinia::is_app_name(name)) {
    *error = "unknown application '" + name + "'";
    return false;
  }
  hq::rodinia::AppParams params;
  if (size > 0) params.size = size;
  config.classes.push_back({hq::rodinia::make_app(name, params), priority});
  return true;
}

/// Reads an arrival trace: one "<time_us> <class-index>" pair per line;
/// blank lines and lines starting with '#' are skipped.
bool read_arrivals(const std::string& path,
                   std::vector<hq::serve::Arrival>& out, std::string* error) {
  std::ifstream in(path);
  if (!in) {
    *error = "cannot open arrivals file '" + path + "'";
    return false;
  }
  std::string line;
  int line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    double time_us = 0;
    std::size_t klass = 0;
    if (!(ls >> time_us >> klass) || time_us < 0) {
      *error = "bad arrival at " + path + ":" + std::to_string(line_no) +
               " (want '<time_us> <class-index>')";
      return false;
    }
    out.push_back({static_cast<hq::TimeNs>(time_us * 1000.0), klass});
  }
  return true;
}

/// Reads a device-spec file: one device per line as a preset name (k20,
/// fermi, single-copy) followed by optional 'key=value' overrides (name=,
/// smx=, queues=, copy-engines=). Blank lines and '#' comments are skipped.
bool read_device_specs(const std::string& path,
                       std::vector<hq::gpu::DeviceSpec>& out,
                       std::string* error) {
  std::ifstream in(path);
  if (!in) {
    *error = "cannot open device-spec file '" + path + "'";
    return false;
  }
  std::string line;
  int line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    std::string preset;
    ls >> preset;
    hq::gpu::DeviceSpec spec;
    if (preset == "k20") {
      spec = hq::gpu::DeviceSpec::tesla_k20();
    } else if (preset == "fermi") {
      spec = hq::gpu::DeviceSpec::fermi_single_queue();
    } else if (preset == "single-copy") {
      spec = hq::gpu::DeviceSpec::single_copy_engine();
    } else {
      *error = "unknown device preset '" + preset + "' at " + path + ":" +
               std::to_string(line_no) + " (want k20, fermi, or single-copy)";
      return false;
    }
    std::string token;
    while (ls >> token) {
      const std::size_t eq = token.find('=');
      const std::string key =
          eq == std::string::npos ? token : token.substr(0, eq);
      const std::string value =
          eq == std::string::npos ? "" : token.substr(eq + 1);
      const auto as_int = [&]() -> std::optional<int> {
        errno = 0;
        char* end = nullptr;
        const long v = std::strtol(value.c_str(), &end, 10);
        if (value.empty() || errno != 0 || end == nullptr || *end != '\0' ||
            v < 1) {
          return std::nullopt;
        }
        return static_cast<int>(v);
      };
      bool ok = true;
      if (key == "name") {
        ok = !value.empty();
        if (ok) spec.name = value;
      } else if (key == "smx") {
        const auto v = as_int();
        ok = v.has_value();
        if (ok) spec.num_smx = *v;
      } else if (key == "queues") {
        const auto v = as_int();
        ok = v.has_value();
        if (ok) spec.num_work_queues = *v;
      } else if (key == "copy-engines") {
        const auto v = as_int();
        ok = v.has_value();
        if (ok) spec.num_copy_engines = *v;
      } else {
        ok = false;
      }
      if (!ok) {
        *error = "bad device override '" + token + "' at " + path + ":" +
                 std::to_string(line_no);
        return false;
      }
    }
    out.push_back(std::move(spec));
  }
  if (out.empty()) {
    *error = "device-spec file '" + path + "' declares no devices";
    return false;
  }
  return true;
}

/// Reads a per-device fault-plan file: one fault plan per line in the
/// `key=value,...` syntax of --fault-plan; "disabled" (or "none") gives
/// that device no faults. Blank lines and '#' comments are skipped. Line i
/// configures device i, so the file must declare exactly one line per
/// fleet device.
bool read_fault_plans(const std::string& path,
                      std::vector<hq::fault::FaultPlan>& out,
                      std::string* error) {
  std::ifstream in(path);
  if (!in) {
    *error = "cannot open device-fault-plan file '" + path + "'";
    return false;
  }
  std::string line;
  int line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty() || line[0] == '#') continue;
    std::string plan_error;
    const auto plan = hq::fault::parse_fault_plan(line, &plan_error);
    if (!plan) {
      *error = "bad fault plan at " + path + ":" + std::to_string(line_no) +
               ": " + plan_error;
      return false;
    }
    out.push_back(*plan);
  }
  if (out.empty()) {
    *error = "device-fault-plan file '" + path + "' declares no plans";
    return false;
  }
  return true;
}

/// Parses a duration literal "<number><ns|us|ms|s>" (e.g. "50ms", "250us")
/// into nanoseconds. Returns nullopt on malformed input or a non-positive
/// value.
std::optional<hq::DurationNs> parse_duration_ns(const std::string& text) {
  errno = 0;
  char* end = nullptr;
  const double value = std::strtod(text.c_str(), &end);
  if (text.empty() || errno != 0 || end == nullptr || end == text.c_str() ||
      value <= 0.0) {
    return std::nullopt;
  }
  const std::string unit(end);
  double scale = 0.0;
  if (unit == "ns") {
    scale = 1.0;
  } else if (unit == "us") {
    scale = 1e3;
  } else if (unit == "ms") {
    scale = 1e6;
  } else if (unit == "s") {
    scale = 1e9;
  } else {
    return std::nullopt;
  }
  const double ns = value * scale;
  if (ns < 1.0 || ns > 9e18) return std::nullopt;
  return static_cast<hq::DurationNs>(ns);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace hq;
  tools::ArgParser args;
  args.add_option("mix",
                  "comma-separated application classes, each 'app' or "
                  "'app:priority' (larger = more important)",
                  "gaussian,needle");
  args.add_option("size", "application problem-size override (0 = default)",
                  "96");
  args.add_option("window-ms", "admission window in milliseconds", "20");
  args.add_option("mean-gap-us", "mean Poisson inter-arrival time (us)", "500");
  args.add_option("streams", "stream-pool size", "8");
  args.add_option("seed", "arrival-process seed", "1");
  args.add_flag("memsync", "force the HtoD memory-sync (pseudo-burst) mutex");
  args.add_option("queue-cap",
                  "bound on queued + inflight jobs (0 = unbounded)", "0");
  args.add_option("max-inflight",
                  "bound on concurrently dispatched jobs (0 = unbounded)",
                  "0");
  args.add_option("shed-policy",
                  "admission shed policy: drop-tail|deadline|priority",
                  "drop-tail");
  args.add_option("deadline-us", "per-job relative deadline (0 = none)", "0");
  args.add_flag("expire-queued",
                "expire queued jobs whose deadline passed before dispatch");
  args.add_flag("auto-memsync",
                "enable the hysteresis overload controller (switches into "
                "memory-sync mode under DMA contention)");
  args.add_flag("breaker", "enable per-class circuit breakers");
  args.add_option("breaker-threshold",
                  "consecutive failures that trip a breaker", "3");
  args.add_option("breaker-cooldown-us",
                  "open-state cooldown before the half-open probe (us)",
                  "20000");
  args.add_option("fault-plan",
                  "deterministic fault plan (key=value,... ; see hqrun)", "");
  args.add_option("arrivals",
                  "replay arrivals from this file instead of the Poisson "
                  "process (lines: '<time_us> <class-index>')",
                  "");
  args.add_option("report", "report format on stdout: text|json", "text");
  args.add_option("metrics", "write the metrics JSON report to this path", "");
  args.add_option("prom", "write Prometheus text metrics to this path", "");
  args.add_option("trace", "write a Chrome-trace JSON to this path", "");
  args.add_option("snapshot-interval",
                  "fleet mode: virtual-clock snapshot period as "
                  "'<number><ns|us|ms|s>' (e.g. 50ms); pair with "
                  "--snapshot-file",
                  "");
  args.add_option("snapshot-file",
                  "fleet mode: append one JSON fleet snapshot per "
                  "--snapshot-interval tick to this JSONL path",
                  "");
  args.add_option("sweep-cap",
                  "run a queue-cap sweep over this comma-separated list "
                  "(0 = unbounded) instead of a single run",
                  "");
  args.add_option("jobs",
                  "worker threads for --sweep-cap / --sweep-fleet (0 = all "
                  "hardware threads); output is identical at any job count",
                  "1");
  args.add_option("devices",
                  "fleet mode: shard the service across this many devices "
                  "(0 = single-device mode)",
                  "0");
  args.add_option("device-spec-file",
                  "fleet mode with per-device specs from this file (lines: "
                  "'k20|fermi|single-copy [name=.. smx=N queues=N "
                  "copy-engines=N]')",
                  "");
  args.add_option("placement",
                  "fleet placement policy: round-robin|least-loaded|"
                  "copy-aware|class-affinity",
                  "round-robin");
  args.add_option("copy-penalty",
                  "copy-queue-depth weight of the copy-aware policy", "2");
  args.add_flag("steal",
                "fleet mode: idle devices steal the newest queued job from "
                "the deepest peer queue");
  args.add_flag("device-breaker",
                "fleet mode: per-device health breakers (tripped devices "
                "are quarantined and their queues rebalanced)");
  args.add_option("device-breaker-threshold",
                  "consecutive job failures that trip a device breaker", "3");
  args.add_option("device-breaker-cooldown-us",
                  "device-breaker open-state cooldown before the half-open "
                  "probe (us)",
                  "20000");
  args.add_option("device-fault-plan-file",
                  "fleet mode: per-device fault plans, one --fault-plan "
                  "line per device ('disabled' = fault-free); supports "
                  "lifecycle faults (crash-at-us=, flap-period-us=, "
                  "degrade-at-us=, ...)",
                  "");
  args.add_option("failover-budget",
                  "fleet mode: failover hops per job before it is shed as "
                  "failover-exhausted",
                  "3");
  args.add_flag("hedge",
                "fleet mode: hedge straggling jobs on an idle healthy peer "
                "(first completion wins)");
  args.add_option("hedge-threshold",
                  "hedge once a job runs past this multiple of its class's "
                  "mean service time",
                  "2");
  args.add_option("hedge-min-samples",
                  "completed jobs per class before hedging engages", "4");
  args.add_option("sdc-plan-file",
                  "fleet mode: per-device silent-data-corruption fault "
                  "plans, one --fault-plan line per device ('disabled' = "
                  "clean; sdc-copy-rate=, sdc-kernel-rate=, sdc-at-us=, "
                  "sdc-stuck-at-us=); mutually exclusive with "
                  "--device-fault-plan-file",
                  "");
  args.add_option("integrity",
                  "fleet mode: completed-job integrity policy: "
                  "trust|spotcheck|dmr",
                  "trust");
  args.add_option("spotcheck-rate",
                  "fraction of completed jobs re-executed on a different "
                  "device under --integrity spotcheck",
                  "0.1");
  args.add_option("sdc-blocklist-threshold",
                  "SDC score (EWMA of corruption-vote blame) at which a "
                  "device is permanently blocklisted",
                  "0.8");
  args.add_option("sweep-fleet",
                  "run a fleet-size x placement sweep over this "
                  "comma-separated list of fleet sizes",
                  "");
  args.add_option("sweep-placement",
                  "placement policies for --sweep-fleet: 'all' or a "
                  "comma-separated subset",
                  "all");
  args.add_option("journal",
                  "crash-safe journal for --sweep-fleet (pair with --resume)",
                  "");
  args.add_flag("resume",
                "replay finished --sweep-fleet points from --journal");
  args.add_flag("help", "show this help");

  if (!args.parse(argc, argv) || args.get_flag("help")) {
    if (!args.error().empty()) {
      std::fprintf(stderr, "error: %s\n", args.error().c_str());
    }
    std::fprintf(stderr, "%s", args.usage("hqserve").c_str());
    return args.get_flag("help") ? 0 : 2;
  }

  const auto size = args.get_int("size");
  const auto window_ms = args.get_int("window-ms");
  const auto gap_us = args.get_int("mean-gap-us");
  const auto streams = args.get_int("streams");
  const auto seed = args.get_int("seed");
  const auto queue_cap = args.get_int("queue-cap");
  const auto max_inflight = args.get_int("max-inflight");
  const auto deadline_us = args.get_int("deadline-us");
  const auto breaker_threshold = args.get_int("breaker-threshold");
  const auto breaker_cooldown_us = args.get_int("breaker-cooldown-us");
  const auto jobs = args.get_int("jobs");
  const auto devices = args.get_int("devices");
  const auto device_breaker_threshold =
      args.get_int("device-breaker-threshold");
  const auto device_breaker_cooldown_us =
      args.get_int("device-breaker-cooldown-us");
  const auto failover_budget = args.get_int("failover-budget");
  const auto hedge_min_samples = args.get_int("hedge-min-samples");
  if (!size || *size < 0 || !window_ms || *window_ms < 1 || !gap_us ||
      *gap_us < 1 || !streams || *streams < 1 || !seed || *seed < 0 ||
      !queue_cap || *queue_cap < 0 || !max_inflight || *max_inflight < 0 ||
      !deadline_us || *deadline_us < 0 || !breaker_threshold ||
      *breaker_threshold < 1 || !breaker_cooldown_us ||
      *breaker_cooldown_us < 1 || !jobs || *jobs < 0 || !devices ||
      *devices < 0 || !device_breaker_threshold ||
      *device_breaker_threshold < 1 || !device_breaker_cooldown_us ||
      *device_breaker_cooldown_us < 1 || !failover_budget ||
      *failover_budget < 0 || !hedge_min_samples || *hedge_min_samples < 1) {
    std::fprintf(stderr, "error: bad numeric option\n");
    return 2;
  }

  double hedge_threshold = 2.0;
  {
    errno = 0;
    char* end = nullptr;
    const std::string text = args.get("hedge-threshold");
    hedge_threshold = std::strtod(text.c_str(), &end);
    if (errno != 0 || end == nullptr || *end != '\0' ||
        hedge_threshold <= 0.0) {
      std::fprintf(stderr, "error: --hedge-threshold needs a number > 0\n");
      return 2;
    }
  }

  double copy_penalty = 2.0;
  {
    errno = 0;
    char* end = nullptr;
    const std::string text = args.get("copy-penalty");
    copy_penalty = std::strtod(text.c_str(), &end);
    if (errno != 0 || end == nullptr || *end != '\0' || copy_penalty < 0.0) {
      std::fprintf(stderr, "error: --copy-penalty needs a number >= 0\n");
      return 2;
    }
  }

  double spotcheck_rate = 0.1;
  {
    errno = 0;
    char* end = nullptr;
    const std::string text = args.get("spotcheck-rate");
    spotcheck_rate = std::strtod(text.c_str(), &end);
    if (errno != 0 || end == nullptr || *end != '\0' || spotcheck_rate < 0.0 ||
        spotcheck_rate > 1.0) {
      std::fprintf(stderr,
                   "error: --spotcheck-rate needs a number in [0, 1]\n");
      return 2;
    }
  }

  double sdc_blocklist_threshold = 0.8;
  {
    errno = 0;
    char* end = nullptr;
    const std::string text = args.get("sdc-blocklist-threshold");
    sdc_blocklist_threshold = std::strtod(text.c_str(), &end);
    if (errno != 0 || end == nullptr || *end != '\0' ||
        sdc_blocklist_threshold <= 0.0 || sdc_blocklist_threshold > 1.0) {
      std::fprintf(stderr,
                   "error: --sdc-blocklist-threshold needs a number in "
                   "(0, 1]\n");
      return 2;
    }
  }

  fleet::IntegrityPolicy integrity = fleet::IntegrityPolicy::Trust;
  {
    const std::string text = args.get("integrity");
    if (text == "trust") {
      integrity = fleet::IntegrityPolicy::Trust;
    } else if (text == "spotcheck") {
      integrity = fleet::IntegrityPolicy::SpotCheck;
    } else if (text == "dmr") {
      integrity = fleet::IntegrityPolicy::Dmr;
    } else {
      std::fprintf(stderr,
                   "error: --integrity must be trust, spotcheck, or dmr\n");
      return 2;
    }
  }

  const std::string report_format = args.get("report");
  if (report_format != "text" && report_format != "json") {
    std::fprintf(stderr, "error: --report must be text or json\n");
    return 2;
  }

  serve::ServiceConfig config;
  config.window = static_cast<DurationNs>(*window_ms) * kMillisecond;
  config.mean_interarrival = static_cast<DurationNs>(*gap_us) * kMicrosecond;
  config.num_streams = static_cast<int>(*streams);
  config.seed = static_cast<std::uint64_t>(*seed);
  config.memory_sync = args.get_flag("memsync");
  config.queue_cap = static_cast<std::size_t>(*queue_cap);
  config.max_inflight = static_cast<std::size_t>(*max_inflight);
  config.deadline = static_cast<DurationNs>(*deadline_us) * kMicrosecond;
  config.expire_queued = args.get_flag("expire-queued");
  config.controller.enabled = args.get_flag("auto-memsync");
  config.breaker_enabled = args.get_flag("breaker");
  config.breaker.failure_threshold = static_cast<int>(*breaker_threshold);
  config.breaker.cooldown =
      static_cast<DurationNs>(*breaker_cooldown_us) * kMicrosecond;

  const auto policy = serve::parse_shed_policy(args.get("shed-policy"));
  if (!policy) {
    std::fprintf(stderr,
                 "error: --shed-policy must be drop-tail, deadline, or "
                 "priority\n");
    return 2;
  }
  config.shed_policy = *policy;

  std::string error;
  for (const std::string& entry : split_csv(args.get("mix"))) {
    if (!parse_class(entry, static_cast<int>(*size), config, &error)) {
      std::fprintf(stderr, "error: %s\n", error.c_str());
      return 2;
    }
  }
  if (config.classes.empty()) {
    std::fprintf(stderr, "error: --mix selected no applications\n");
    return 2;
  }

  if (!args.get("fault-plan").empty()) {
    std::string plan_error;
    const auto plan = fault::parse_fault_plan(args.get("fault-plan"),
                                              &plan_error);
    if (!plan) {
      std::fprintf(stderr, "error: bad --fault-plan: %s\n",
                   plan_error.c_str());
      return 2;
    }
    config.fault_plan = *plan;
  }

  if (!args.get("arrivals").empty()) {
    if (!read_arrivals(args.get("arrivals"), config.arrivals, &error)) {
      std::fprintf(stderr, "error: %s\n", error.c_str());
      return 2;
    }
  }

  const bool fleet_mode = *devices > 0 ||
                          !args.get("device-spec-file").empty() ||
                          !args.get("sweep-fleet").empty();

  if (!args.get("device-fault-plan-file").empty()) {
    if (!fleet_mode) {
      std::fprintf(stderr,
                   "error: --device-fault-plan-file needs fleet mode "
                   "(--devices or --device-spec-file)\n");
      return 2;
    }
    if (!args.get("sweep-fleet").empty()) {
      std::fprintf(stderr,
                   "error: --device-fault-plan-file fixes one plan per "
                   "device; it does not apply to --sweep-fleet's varying "
                   "fleet sizes\n");
      return 2;
    }
  }
  if (args.get_flag("hedge") && !fleet_mode) {
    std::fprintf(stderr, "error: --hedge needs fleet mode (--devices or "
                         "--device-spec-file)\n");
    return 2;
  }

  // Integrity-pipeline combinations: verification re-executes jobs on a
  // *different* device, so every knob is fleet-only, and spot-check tuning
  // without the spot-check policy is a configuration mistake, not a no-op.
  if (integrity != fleet::IntegrityPolicy::Trust && !fleet_mode) {
    std::fprintf(stderr,
                 "error: --integrity %s needs fleet mode (--devices or "
                 "--device-spec-file)\n",
                 args.get("integrity").c_str());
    return 2;
  }
  if (args.provided("spotcheck-rate") &&
      integrity != fleet::IntegrityPolicy::SpotCheck) {
    std::fprintf(stderr,
                 "error: --spotcheck-rate only applies with --integrity "
                 "spotcheck\n");
    return 2;
  }
  if (args.provided("sdc-blocklist-threshold") &&
      integrity == fleet::IntegrityPolicy::Trust) {
    std::fprintf(stderr,
                 "error: --sdc-blocklist-threshold only applies with "
                 "--integrity spotcheck or dmr (trust never blames a "
                 "device)\n");
    return 2;
  }
  if (!args.get("sdc-plan-file").empty()) {
    if (!fleet_mode) {
      std::fprintf(stderr,
                   "error: --sdc-plan-file needs fleet mode (--devices or "
                   "--device-spec-file)\n");
      return 2;
    }
    if (!args.get("sweep-fleet").empty()) {
      std::fprintf(stderr,
                   "error: --sdc-plan-file fixes one plan per device; it "
                   "does not apply to --sweep-fleet's varying fleet sizes\n");
      return 2;
    }
    if (!args.get("device-fault-plan-file").empty()) {
      std::fprintf(stderr,
                   "error: --sdc-plan-file and --device-fault-plan-file are "
                   "mutually exclusive (put SDC keys in the device fault "
                   "plans instead)\n");
      return 2;
    }
  }

  // Export-flag validation up front: every unsupported combination is a
  // hard usage error, never a silent no-op.
  const bool want_metrics = !args.get("metrics").empty();
  const bool want_prom = !args.get("prom").empty();
  const bool want_trace = !args.get("trace").empty();
  const bool want_snapshots = !args.get("snapshot-file").empty() ||
                              !args.get("snapshot-interval").empty();
  const bool want_exports =
      want_metrics || want_prom || want_trace || want_snapshots;
  std::optional<DurationNs> snapshot_interval;
  if (want_snapshots) {
    if (args.get("snapshot-file").empty() ||
        args.get("snapshot-interval").empty()) {
      std::fprintf(stderr,
                   "error: --snapshot-file and --snapshot-interval must be "
                   "used together\n");
      return 2;
    }
    if (!fleet_mode) {
      std::fprintf(stderr,
                   "error: fleet snapshots need fleet mode (--devices or "
                   "--device-spec-file)\n");
      return 2;
    }
    snapshot_interval = parse_duration_ns(args.get("snapshot-interval"));
    if (!snapshot_interval) {
      std::fprintf(stderr,
                   "error: --snapshot-interval wants '<number><ns|us|ms|s>' "
                   "(e.g. 50ms), got '%s'\n",
                   args.get("snapshot-interval").c_str());
      return 2;
    }
  }
  if (want_exports && !args.get("sweep-fleet").empty()) {
    std::fprintf(stderr,
                 "error: --metrics/--prom/--trace/--snapshot-* are "
                 "per-run exports; they do not apply to --sweep-fleet\n");
    return 2;
  }
  if (want_exports && !args.get("sweep-cap").empty()) {
    std::fprintf(stderr,
                 "error: --metrics/--prom/--trace/--snapshot-* are "
                 "per-run exports; they do not apply to --sweep-cap\n");
    return 2;
  }

  try {
    if (fleet_mode) {
      fleet::FleetConfig fleet_config;
      // Per-device registries, the lifecycle tracer, and fleet-scope
      // metrics exist only when an export asked for them; either way the
      // report bytes are identical (zero-perturbation).
      config.collect_metrics = want_exports;
      fleet_config.base = config;
      if (!args.get("device-spec-file").empty()) {
        if (!read_device_specs(args.get("device-spec-file"),
                               fleet_config.devices, &error)) {
          std::fprintf(stderr, "error: %s\n", error.c_str());
          return 2;
        }
        if (*devices > 0 &&
            static_cast<std::size_t>(*devices) != fleet_config.devices.size()) {
          std::fprintf(stderr,
                       "error: --devices %d disagrees with the %zu devices in "
                       "--device-spec-file\n",
                       static_cast<int>(*devices), fleet_config.devices.size());
          return 2;
        }
      } else if (*devices > 0) {
        fleet_config.resize_homogeneous(static_cast<std::size_t>(*devices));
      }
      const auto placement =
          fleet::parse_placement_policy(args.get("placement"));
      if (!placement) {
        std::fprintf(stderr,
                     "error: --placement must be round-robin, least-loaded, "
                     "copy-aware, or class-affinity\n");
        return 2;
      }
      fleet_config.placement = *placement;
      fleet_config.copy_penalty = copy_penalty;
      fleet_config.work_stealing = args.get_flag("steal");
      fleet_config.device_breaker_enabled = args.get_flag("device-breaker");
      fleet_config.device_breaker.failure_threshold =
          static_cast<int>(*device_breaker_threshold);
      fleet_config.device_breaker.cooldown =
          static_cast<DurationNs>(*device_breaker_cooldown_us) * kMicrosecond;
      fleet_config.failover_budget = static_cast<int>(*failover_budget);
      fleet_config.hedging = args.get_flag("hedge");
      fleet_config.hedge_threshold = hedge_threshold;
      fleet_config.hedge_min_samples =
          static_cast<std::size_t>(*hedge_min_samples);
      fleet_config.integrity = integrity;
      fleet_config.spotcheck_rate = spotcheck_rate;
      fleet_config.sdc_blocklist_threshold = sdc_blocklist_threshold;
      if (!args.get("device-fault-plan-file").empty()) {
        if (!read_fault_plans(args.get("device-fault-plan-file"),
                              fleet_config.device_fault_plans, &error)) {
          std::fprintf(stderr, "error: %s\n", error.c_str());
          return 2;
        }
        if (fleet_config.device_fault_plans.size() !=
            fleet_config.num_devices()) {
          std::fprintf(stderr,
                       "error: --device-fault-plan-file declares %zu plans "
                       "for %zu devices\n",
                       fleet_config.device_fault_plans.size(),
                       fleet_config.num_devices());
          return 2;
        }
      }
      if (!args.get("sdc-plan-file").empty()) {
        if (!read_fault_plans(args.get("sdc-plan-file"),
                              fleet_config.device_fault_plans, &error)) {
          std::fprintf(stderr, "error: %s\n", error.c_str());
          return 2;
        }
        if (fleet_config.device_fault_plans.size() !=
            fleet_config.num_devices()) {
          std::fprintf(stderr,
                       "error: --sdc-plan-file declares %zu plans for %zu "
                       "devices\n",
                       fleet_config.device_fault_plans.size(),
                       fleet_config.num_devices());
          return 2;
        }
      }

      // --- fleet-size x placement sweep ------------------------------------
      if (!args.get("sweep-fleet").empty()) {
        fleet::FleetSweepGrid grid;
        grid.base = fleet_config;
        grid.fleet_sizes.clear();
        for (const std::string& n : split_csv(args.get("sweep-fleet"))) {
          errno = 0;
          char* end = nullptr;
          const unsigned long long value = std::strtoull(n.c_str(), &end, 10);
          if (errno != 0 || end == nullptr || *end != '\0' || value < 1) {
            std::fprintf(stderr, "error: bad --sweep-fleet entry '%s'\n",
                         n.c_str());
            return 2;
          }
          grid.fleet_sizes.push_back(static_cast<std::size_t>(value));
        }
        grid.placements.clear();
        if (args.get("sweep-placement") == "all") {
          const auto& all = fleet::all_placement_policies();
          grid.placements.assign(all.begin(), all.end());
        } else {
          for (const std::string& p : split_csv(args.get("sweep-placement"))) {
            const auto parsed = fleet::parse_placement_policy(p);
            if (!parsed) {
              std::fprintf(stderr, "error: bad --sweep-placement entry '%s'\n",
                           p.c_str());
              return 2;
            }
            grid.placements.push_back(*parsed);
          }
        }
        fleet::FleetSweepOptions options;
        options.jobs = static_cast<int>(*jobs);
        options.journal_path = args.get("journal");
        options.resume = args.get_flag("resume");
        const auto outcomes = fleet::run_fleet_sweep(grid, options);
        if (report_format == "json") {
          std::cout << "{\n  \"points\": [";
          for (std::size_t i = 0; i < outcomes.size(); ++i) {
            const fleet::FleetSweepOutcome& o = outcomes[i];
            std::cout << (i == 0 ? "\n" : ",\n");
            std::cout << "    {\"index\": " << o.point.index
                      << ", \"fleet_size\": " << o.point.fleet_size
                      << ", \"placement\": \""
                      << fleet::placement_policy_name(o.point.placement)
                      << "\", \"arrived\": " << o.arrived
                      << ", \"completed_ok\": " << o.completed_ok
                      << ", \"completed\": " << o.completed
                      << ", \"shed\": " << o.shed
                      << ", \"requeued\": " << o.requeued
                      << ", \"stolen\": " << o.stolen
                      << ", \"goodput_per_sec\": "
                      << obs::format_double(o.goodput_per_sec)
                      << ", \"deadline_miss_ratio\": "
                      << obs::format_double(o.deadline_miss_ratio)
                      << ", \"energy_j\": " << obs::format_double(o.energy)
                      << ", \"report_digest\": \"0x" << std::hex
                      << o.report_digest << std::dec << "\"}";
          }
          std::cout << (outcomes.empty() ? "],\n" : "\n  ],\n");
          std::cout << "  \"combined_digest\": \"0x" << std::hex
                    << fleet::fleet_combined_digest(outcomes) << std::dec
                    << "\"\n}\n";
        } else {
          std::cout << fleet::render_fleet_sweep_report(outcomes);
        }
        return 0;
      }

      // --- single fleet run --------------------------------------------------
      const fleet::FleetResult result =
          fleet::FleetService(fleet_config).run();
      if (report_format == "json") {
        fleet::write_fleet_report_json(std::cout, result.report);
      } else {
        fleet::render_fleet_report_text(std::cout, result.report);
      }
      if (want_metrics) {
        std::ofstream out(args.get("metrics"));
        HQ_CHECK_MSG(out.good(), "cannot open --metrics path for writing");
        fleet::write_fleet_metrics_json(out, result);
      }
      if (want_prom) {
        std::ofstream out(args.get("prom"));
        HQ_CHECK_MSG(out.good(), "cannot open --prom path for writing");
        fleet::write_fleet_prometheus(out, result);
      }
      if (want_trace) {
        std::ofstream out(args.get("trace"));
        HQ_CHECK_MSG(out.good(), "cannot open --trace path for writing");
        fleet::write_fleet_chrome_trace(out, result);
      }
      if (want_snapshots) {
        std::ofstream out(args.get("snapshot-file"));
        HQ_CHECK_MSG(out.good(),
                     "cannot open --snapshot-file path for writing");
        fleet::write_fleet_snapshots_jsonl(out, result, *snapshot_interval);
      }
      return 0;
    }

    // --- queue-cap sweep ----------------------------------------------------
    if (!args.get("sweep-cap").empty()) {
      std::vector<std::size_t> caps;
      for (const std::string& cap : split_csv(args.get("sweep-cap"))) {
        errno = 0;
        char* end = nullptr;
        const unsigned long long value = std::strtoull(cap.c_str(), &end, 10);
        if (errno != 0 || end == nullptr || *end != '\0') {
          std::fprintf(stderr, "error: bad --sweep-cap entry '%s'\n",
                       cap.c_str());
          return 2;
        }
        caps.push_back(static_cast<std::size_t>(value));
      }
      const int workers =
          *jobs == 0 ? exec::ThreadPool::hardware_jobs()
                     : static_cast<int>(*jobs);
      // Points are keyed by submission index, so the sweep output is
      // byte-identical at any job count.
      const auto reports = exec::parallel_map_jobs(
          workers, caps.size(), [&config, &caps](std::size_t i) {
            serve::ServiceConfig point = config;
            point.queue_cap = caps[i];
            point.collect_metrics = false;
            return serve::Service(std::move(point)).run().report;
          });
      if (report_format == "json") {
        std::cout << "[";
        for (std::size_t i = 0; i < reports.size(); ++i) {
          if (i > 0) std::cout << ",";
          std::cout << "\n";
          serve::write_report_json(std::cout, reports[i]);
        }
        std::cout << "\n]\n";
      } else {
        TextTable table;
        table.set_header({"cap", "arrived", "completed", "shed", "timed-out",
                          "goodput/s", "miss-ratio", "p95-turnaround-ms"});
        for (std::size_t i = 0; i < reports.size(); ++i) {
          const serve::ServeReport& r = reports[i];
          table.add_row(
              {caps[i] == 0 ? std::string("inf") : std::to_string(caps[i]),
               std::to_string(r.arrived), std::to_string(r.completed),
               std::to_string(r.shed_queue_full + r.shed_breaker),
               std::to_string(r.timed_out_queued),
               format_fixed(r.goodput_per_sec, 1),
               format_fixed(r.deadline_miss_ratio, 3),
               format_fixed(static_cast<double>(r.p95_turnaround) / 1e6, 3)});
        }
        std::cout << table.render();
      }
      return 0;
    }

    // --- single run ---------------------------------------------------------
    const serve::ServeResult result = serve::Service(config).run();
    if (report_format == "json") {
      serve::write_report_json(std::cout, result.report);
      std::cout << "\n";
    } else {
      serve::render_report_text(std::cout, result.report);
    }

    if (!args.get("metrics").empty() && result.metrics != nullptr) {
      obs::RunInfo info;
      info.workload = result.report.workload;
      info.num_apps = static_cast<int>(result.report.arrived);
      info.num_streams = config.num_streams;
      info.memory_sync = config.memory_sync;
      info.makespan = result.report.total_time;
      info.energy_j = result.report.energy;
      info.average_occupancy = result.report.average_occupancy;
      info.trace_digest = result.report.trace_digest;
      std::ofstream out(args.get("metrics"));
      HQ_CHECK_MSG(out.good(), "cannot open --metrics path for writing");
      obs::write_metrics_json(out, info, *result.metrics, {});
    }
    if (!args.get("prom").empty() && result.metrics != nullptr) {
      std::ofstream out(args.get("prom"));
      HQ_CHECK_MSG(out.good(), "cannot open --prom path for writing");
      obs::write_prometheus(out, *result.metrics);
    }
    if (!args.get("trace").empty() && result.trace != nullptr) {
      std::ofstream out(args.get("trace"));
      HQ_CHECK_MSG(out.good(), "cannot open --trace path for writing");
      trace::write_chrome_trace(*result.trace, out);
    }
    return 0;
  } catch (const hq::Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 3;
  }
}
