# Empty compiler generated dependencies file for hq_gpusim.
# This may be replaced when dependencies are built.
