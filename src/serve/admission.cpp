#include "serve/admission.hpp"

#include <algorithm>
#include <limits>

#include "common/check.hpp"

namespace hq::serve {

const char* shed_policy_name(ShedPolicy policy) {
  switch (policy) {
    case ShedPolicy::DropTail: return "drop-tail";
    case ShedPolicy::DeadlineAware: return "deadline";
    case ShedPolicy::Priority: return "priority";
  }
  return "?";
}

std::optional<ShedPolicy> parse_shed_policy(const std::string& name) {
  if (name == "drop-tail") return ShedPolicy::DropTail;
  if (name == "deadline") return ShedPolicy::DeadlineAware;
  if (name == "priority") return ShedPolicy::Priority;
  return std::nullopt;
}

namespace {

/// Remaining time to the deadline (negative once missed). Jobs without a
/// deadline report infinite slack, so they never lose a deadline-aware
/// comparison.
std::int64_t slack_of(const QueuedJob& job, TimeNs now) {
  if (job.deadline_at == 0) return std::numeric_limits<std::int64_t>::max();
  return static_cast<std::int64_t>(job.deadline_at) -
         static_cast<std::int64_t>(now);
}

/// True when `a` should be shed in preference to `b`. Ties break on the
/// larger job id (the newest job), which also makes the arriving job the
/// victim when every candidate looks identical.
bool sheds_before(const QueuedJob& a, const QueuedJob& b, ShedPolicy policy,
                  TimeNs now) {
  if (policy == ShedPolicy::DeadlineAware) {
    const std::int64_t sa = slack_of(a, now);
    const std::int64_t sb = slack_of(b, now);
    if (sa != sb) return sa < sb;
  } else if (policy == ShedPolicy::Priority) {
    if (a.priority != b.priority) return a.priority < b.priority;
  }
  return a.job_id > b.job_id;
}

}  // namespace

std::optional<QueuedJob> AdmissionQueue::offer(const QueuedJob& job, TimeNs now,
                                               std::size_t inflight) {
  if (config_.capacity == 0 || queue_.size() + inflight < config_.capacity) {
    queue_.push_back(job);
    ++accepted_;
    peak_depth_ = std::max(peak_depth_, queue_.size());
    return std::nullopt;
  }

  ++sheds_;
  if (config_.policy == ShedPolicy::DropTail || queue_.empty()) {
    // DropTail always rejects the arrival; the other policies fall back to
    // it when there is no queued candidate to displace.
    return job;
  }

  const QueuedJob* worst = &job;
  std::size_t worst_index = queue_.size();  // sentinel: the arrival
  for (std::size_t i = 0; i < queue_.size(); ++i) {
    if (sheds_before(queue_[i], *worst, config_.policy, now)) {
      worst = &queue_[i];
      worst_index = i;
    }
  }
  if (worst_index == queue_.size()) return job;

  const QueuedJob victim = queue_[worst_index];
  queue_.erase(queue_.begin() + static_cast<std::ptrdiff_t>(worst_index));
  queue_.push_back(job);
  ++accepted_;
  return victim;
}

QueuedJob AdmissionQueue::pop_front() {
  HQ_CHECK_MSG(!queue_.empty(), "AdmissionQueue::pop_front on an empty queue");
  const QueuedJob job = queue_.front();
  queue_.pop_front();
  return job;
}

QueuedJob AdmissionQueue::pop_back() {
  HQ_CHECK_MSG(!queue_.empty(), "AdmissionQueue::pop_back on an empty queue");
  const QueuedJob job = queue_.back();
  queue_.pop_back();
  return job;
}

void AdmissionQueue::restore_front(const QueuedJob& job) {
  queue_.push_front(job);
  peak_depth_ = std::max(peak_depth_, queue_.size());
}

void AdmissionQueue::restore_back(const QueuedJob& job) {
  queue_.push_back(job);
  peak_depth_ = std::max(peak_depth_, queue_.size());
}

}  // namespace hq::serve
