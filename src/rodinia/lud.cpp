#include "rodinia/lud.hpp"

#include <cmath>

#include "common/check.hpp"
#include "common/rng.hpp"

namespace hq::rodinia {
namespace {

constexpr int kB = LudApp::kBlock;

}  // namespace

LudApp::LudApp(LudParams params) : RodiniaApp("lud"), params_(params) {
  HQ_CHECK_MSG(params_.n >= kB && params_.n % kB == 0,
               "lud size must be a positive multiple of 16");
  const auto n = static_cast<Bytes>(params_.n);
  add_buffer("a", n * n * sizeof(float), /*to_device=*/true, /*to_host=*/true);
}

void LudApp::initializeHostMemory(fw::Context& ctx) {
  const int n = params_.n;
  auto a = host_view<float>(ctx, "a");
  Rng rng(params_.seed);
  // Diagonally dominant: LU without pivoting stays stable.
  for (int i = 0; i < n; ++i) {
    double row = 0;
    for (int j = 0; j < n; ++j) {
      a[i * n + j] = static_cast<float>(rng.next_double_in(-1.0, 1.0));
      row += std::abs(a[i * n + j]);
    }
    a[i * n + i] = static_cast<float>(row + 1.0);
  }
  a0_.assign(a.begin(), a.end());
}

void LudApp::diagonal_body(fw::Context* ctx, int step) {
  // In-place Doolittle factorization of the diagonal tile.
  const int n = params_.n;
  const int base = step * kB;
  auto a = device_view<float>(*ctx, "a");
  auto at = [&](int r, int c) -> float& { return a[(base + r) * n + base + c]; };
  for (int k = 0; k < kB; ++k) {
    for (int i = k + 1; i < kB; ++i) {
      at(i, k) /= at(k, k);
      for (int j = k + 1; j < kB; ++j) {
        at(i, j) -= at(i, k) * at(k, j);
      }
    }
  }
}

void LudApp::perimeter_body(fw::Context* ctx, int step) {
  const int n = params_.n;
  const int tiles = n / kB;
  const int base = step * kB;
  auto a = device_view<float>(*ctx, "a");
  auto diag = [&](int r, int c) -> float { return a[(base + r) * n + base + c]; };

  for (int t = step + 1; t < tiles; ++t) {
    const int off = t * kB;
    // Row tiles right of the diagonal: solve L_diag * U = A (forward subst).
    for (int c = 0; c < kB; ++c) {
      for (int r = 1; r < kB; ++r) {
        float acc = a[(base + r) * n + off + c];
        for (int k = 0; k < r; ++k) {
          acc -= diag(r, k) * a[(base + k) * n + off + c];
        }
        a[(base + r) * n + off + c] = acc;
      }
    }
    // Column tiles below: solve L * U_diag = A (backward over columns).
    for (int r = 0; r < kB; ++r) {
      for (int c = 0; c < kB; ++c) {
        float acc = a[(off + r) * n + base + c];
        for (int k = 0; k < c; ++k) {
          acc -= a[(off + r) * n + base + k] * diag(k, c);
        }
        a[(off + r) * n + base + c] = acc / diag(c, c);
      }
    }
  }
}

void LudApp::internal_body(fw::Context* ctx, int step) {
  const int n = params_.n;
  const int tiles = n / kB;
  const int base = step * kB;
  auto a = device_view<float>(*ctx, "a");
  for (int tr = step + 1; tr < tiles; ++tr) {
    for (int tc = step + 1; tc < tiles; ++tc) {
      for (int r = 0; r < kB; ++r) {
        for (int c = 0; c < kB; ++c) {
          float acc = a[(tr * kB + r) * n + tc * kB + c];
          for (int k = 0; k < kB; ++k) {
            acc -= a[(tr * kB + r) * n + base + k] *
                   a[(base + k) * n + tc * kB + c];
          }
          a[(tr * kB + r) * n + tc * kB + c] = acc;
        }
      }
    }
  }
}

sim::Task LudApp::executeKernel(fw::Context& ctx) {
  const int tiles = params_.n / kB;
  for (int step = 0; step < tiles; ++step) {
    {
      std::function<void()> body;
      if (ctx.functional) body = [this, c = &ctx, step] { diagonal_body(c, step); };
      rt::LaunchConfig cfg =
          make_launch("lud_diagonal", gpu::Dim3{1, 1, 1},
                      gpu::Dim3{kB, 1, 1}, kLudDiagonal, std::move(body));
      gpu::OpTag tag{ctx.app_id, "lud_diagonal"};
      auto op = ctx.runtime->launch_kernel(ctx.stream, std::move(cfg),
                                           std::move(tag));
      co_await op;
    }
    if (step + 1 < tiles) {
      const auto remaining = static_cast<std::uint32_t>(tiles - step - 1);
      {
        std::function<void()> body;
        if (ctx.functional) {
          body = [this, c = &ctx, step] { perimeter_body(c, step); };
        }
        rt::LaunchConfig cfg = make_launch(
            "lud_perimeter", gpu::Dim3{remaining, 1, 1},
            gpu::Dim3{2 * kB, 1, 1}, kLudPerimeter, std::move(body));
        gpu::OpTag tag{ctx.app_id, "lud_perimeter"};
        auto op = ctx.runtime->launch_kernel(ctx.stream, std::move(cfg),
                                             std::move(tag));
        co_await op;
      }
      {
        std::function<void()> body;
        if (ctx.functional) {
          body = [this, c = &ctx, step] { internal_body(c, step); };
        }
        rt::LaunchConfig cfg = make_launch(
            "lud_internal", gpu::Dim3{remaining, remaining, 1},
            gpu::Dim3{kB, kB, 1}, kLudInternal, std::move(body));
        gpu::OpTag tag{ctx.app_id, "lud_internal"};
        auto op = ctx.runtime->launch_kernel(ctx.stream, std::move(cfg),
                                             std::move(tag));
        co_await op;
      }
    }
  }
  co_await ctx.runtime->stream_synchronize(ctx.stream);
}

bool LudApp::verify(fw::Context& ctx) const {
  const int n = params_.n;
  auto* self = const_cast<LudApp*>(this);
  auto lu = self->host_view<float>(ctx, "a");

  // Reconstruct A = L * U (L unit lower triangular, U upper) and compare
  // with the pristine input.
  double worst = 0.0;
  double scale = 0.0;
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      double acc = 0.0;
      const int kmax = std::min(i, j);
      for (int k = 0; k < kmax; ++k) {
        acc += static_cast<double>(lu[i * n + k]) * lu[k * n + j];
      }
      // Diagonal of L is implicit 1.
      if (i <= j) {
        acc += lu[i * n + j];
      } else {
        acc += static_cast<double>(lu[i * n + kmax]) * lu[kmax * n + j];
      }
      worst = std::max(worst, std::abs(acc - a0_[i * n + j]));
      scale = std::max(scale, std::abs(static_cast<double>(a0_[i * n + j])));
    }
  }
  return worst <= 1e-3 * std::max(scale, 1.0);
}

}  // namespace hq::rodinia
