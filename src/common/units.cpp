#include "common/units.hpp"

#include <iomanip>
#include <sstream>

namespace hq {
namespace {

std::string format_scaled(double value, const char* unit) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(2) << value << ' ' << unit;
  return os.str();
}

}  // namespace

std::string format_duration(DurationNs ns) {
  const auto v = static_cast<double>(ns);
  if (ns >= kSecond) return format_scaled(v / 1e9, "s");
  if (ns >= kMillisecond) return format_scaled(v / 1e6, "ms");
  if (ns >= kMicrosecond) return format_scaled(v / 1e3, "us");
  return format_scaled(v, "ns");
}

std::string format_bytes(Bytes bytes) {
  const auto v = static_cast<double>(bytes);
  if (bytes >= kGiB) return format_scaled(v / static_cast<double>(kGiB), "GiB");
  if (bytes >= kMiB) return format_scaled(v / static_cast<double>(kMiB), "MiB");
  if (bytes >= kKiB) return format_scaled(v / static_cast<double>(kKiB), "KiB");
  return format_scaled(v, "B");
}

}  // namespace hq
