// Tests for StreamManager, PowerMonitor, and the metrics helpers.
#include <gtest/gtest.h>

#include "gpusim/device.hpp"
#include "hyperq/metrics.hpp"
#include "hyperq/power_monitor.hpp"
#include "hyperq/stream_manager.hpp"
#include "sim/simulator.hpp"

namespace hq::fw {
namespace {

class FrameworkTest : public ::testing::Test {
 protected:
  FrameworkTest()
      : device_(sim_, gpu::DeviceSpec::tesla_k20()), rt_(sim_, device_) {}

  sim::Simulator sim_;
  gpu::Device device_;
  rt::Runtime rt_;
};

// ------------------------------------------------------------ StreamManager

TEST_F(FrameworkTest, ManagerCreatesRequestedStreams) {
  StreamManager manager(rt_, 8);
  EXPECT_EQ(manager.size(), 8);
  EXPECT_EQ(rt_.stream_count(), 8u);
}

TEST_F(FrameworkTest, AcquireIsRoundRobin) {
  StreamManager manager(rt_, 3);
  const rt::Stream a = manager.acquire();
  const rt::Stream b = manager.acquire();
  const rt::Stream c = manager.acquire();
  const rt::Stream d = manager.acquire();
  EXPECT_NE(a.id, b.id);
  EXPECT_NE(b.id, c.id);
  EXPECT_EQ(a.id, d.id);  // wraps after NS acquisitions
  EXPECT_EQ(manager.acquisitions(), 4u);
}

TEST_F(FrameworkTest, SingleStreamManagerSerializesEveryone) {
  StreamManager manager(rt_, 1);
  EXPECT_EQ(manager.acquire().id, manager.acquire().id);
}

TEST_F(FrameworkTest, DestroyAllReleasesStreams) {
  StreamManager manager(rt_, 4);
  EXPECT_EQ(manager.destroy_all(), rt::Status::Ok);
  EXPECT_EQ(rt_.stream_count(), 0u);
}

TEST_F(FrameworkTest, ZeroStreamsRejected) {
  EXPECT_THROW(StreamManager(rt_, 0), hq::Error);
}

TEST_F(FrameworkTest, StreamWrapperReportsIdle) {
  StreamManager manager(rt_, 1);
  EXPECT_TRUE(manager.stream(0).idle());
}

// ------------------------------------------------------------- PowerMonitor

TEST_F(FrameworkTest, MonitorSamplesAtConfiguredPeriod) {
  nvml::SensorOptions sensor;
  sensor.noise_stddev = 0.0;
  sensor.quantization = 0.0;
  nvml::ManagementLibrary nvml(sim_, device_, sensor);
  PowerMonitor monitor(sim_, nvml, 15 * kMillisecond);
  monitor.start();
  sim_.schedule(100 * kMillisecond, [&monitor] { monitor.stop(); });
  sim_.run();
  // t=0 sample + samples at 15,30,...,105 (the stop lands mid-period, so
  // the loop wakes once more).
  ASSERT_GE(monitor.samples().size(), 7u);
  EXPECT_EQ(monitor.samples()[0].time, 0u);
  EXPECT_EQ(monitor.samples()[1].time, 15 * kMillisecond);
  EXPECT_EQ(monitor.samples()[2].time, 30 * kMillisecond);
  EXPECT_FALSE(monitor.running());
}

TEST_F(FrameworkTest, MonitorEnergyWindowIntegration) {
  nvml::SensorOptions sensor;
  sensor.noise_stddev = 0.0;
  sensor.quantization = 0.0;
  nvml::ManagementLibrary nvml(sim_, device_, sensor);
  PowerMonitor monitor(sim_, nvml, 10 * kMillisecond);
  monitor.start();
  sim_.schedule(100 * kMillisecond, [&monitor] { monitor.stop(); });
  sim_.run();
  // Idle device at ~25 W for 0.1 s => ~2.5 J.
  const Joules e = monitor.energy_between(0, 100 * kMillisecond);
  EXPECT_NEAR(e, 2.5, 0.1);
  EXPECT_NEAR(monitor.average_power(0, 100 * kMillisecond), 25.0, 0.5);
  EXPECT_NEAR(monitor.peak_power(0, 100 * kMillisecond), 25.0, 0.5);
}

TEST_F(FrameworkTest, MonitorEmptyAndZeroDurationWindowsAreFiniteZero) {
  // Degenerate windows (no samples at all, or begin == end) must yield
  // exact zeros, never NaN — these values feed the metrics JSON, where a
  // NaN would be an invalid token.
  nvml::SensorOptions sensor;
  sensor.noise_stddev = 0.0;
  sensor.quantization = 0.0;
  nvml::ManagementLibrary nvml(sim_, device_, sensor);
  PowerMonitor monitor(sim_, nvml, 10 * kMillisecond);
  // Never started: zero samples everywhere.
  EXPECT_EQ(monitor.energy_between(0, kMillisecond), 0.0);
  EXPECT_EQ(monitor.average_power(0, kMillisecond), 0.0);
  EXPECT_EQ(monitor.peak_power(0, kMillisecond), 0.0);
  monitor.start();
  sim_.schedule(50 * kMillisecond, [&monitor] { monitor.stop(); });
  sim_.run();
  // Window outside the sampled range, and a zero-duration window.
  EXPECT_EQ(monitor.average_power(kSecond, 2 * kSecond), 0.0);
  EXPECT_EQ(monitor.energy_between(kSecond, kSecond), 0.0);
  const Watts at_instant = monitor.average_power(0, 0);
  EXPECT_TRUE(at_instant == at_instant);  // never NaN
}

TEST_F(FrameworkTest, MonitorDoubleStartThrows) {
  nvml::ManagementLibrary nvml(sim_, device_, {});
  PowerMonitor monitor(sim_, nvml);
  monitor.start();
  EXPECT_THROW(monitor.start(), hq::Error);
  monitor.stop();
  sim_.run();
}

// ------------------------------------------------------------------ metrics

void copy_span(trace::Recorder& r, int app, TimeNs begin, TimeNs end,
               trace::SpanKind kind = trace::SpanKind::MemcpyHtoD) {
  r.add(0, app, kind, "copy", begin, end);
}

TEST(MetricsTest, EffectiveLatencySpansFirstToLast) {
  trace::Recorder r;
  copy_span(r, 1, 100, 200);
  copy_span(r, 1, 500, 600);   // interleaved gap in between
  copy_span(r, 2, 200, 500);   // other app's transfer
  const auto le =
      effective_transfer_latency(r, 1, trace::SpanKind::MemcpyHtoD);
  ASSERT_TRUE(le.has_value());
  EXPECT_EQ(*le, 500u);  // 600 - 100
}

TEST(MetricsTest, EffectiveLatencyNulloptWithoutTransfers) {
  trace::Recorder r;
  copy_span(r, 2, 0, 10);
  EXPECT_FALSE(
      effective_transfer_latency(r, 1, trace::SpanKind::MemcpyHtoD).has_value());
}

TEST(MetricsTest, EffectiveLatencyFiltersDirection) {
  trace::Recorder r;
  copy_span(r, 1, 0, 10, trace::SpanKind::MemcpyHtoD);
  copy_span(r, 1, 50, 80, trace::SpanKind::MemcpyDtoH);
  EXPECT_EQ(*effective_transfer_latency(r, 1, trace::SpanKind::MemcpyHtoD),
            10u);
  EXPECT_EQ(*effective_transfer_latency(r, 1, trace::SpanKind::MemcpyDtoH),
            30u);
}

TEST(MetricsTest, OwnTransferTimeSumsServiceOnly) {
  trace::Recorder r;
  copy_span(r, 1, 100, 200);
  copy_span(r, 1, 500, 600);
  EXPECT_EQ(own_transfer_time(r, 1, trace::SpanKind::MemcpyHtoD), 200u);
}

TEST(MetricsTest, ImprovementMatchesPaperConvention) {
  // 59% improvement over serial means concurrent takes 41% of the time.
  EXPECT_NEAR(improvement(100.0, 41.0), 0.59, 1e-12);
  EXPECT_NEAR(improvement(100.0, 100.0), 0.0, 1e-12);
  EXPECT_LT(improvement(100.0, 120.0), 0.0);  // regression is negative
}

TEST(MetricsTest, MeanHtodEffectiveLatency) {
  std::vector<AppMetrics> apps(2);
  apps[0].htod_effective_latency = 100;
  apps[1].htod_effective_latency = 300;
  EXPECT_DOUBLE_EQ(mean_htod_effective_latency(apps), 200.0);
  EXPECT_DOUBLE_EQ(mean_htod_effective_latency({}), 0.0);
}

}  // namespace
}  // namespace hq::fw
