// bench_sweep — parallel experiment-engine benchmark and determinism proof.
//
// Runs a fixed 60-point grid (all six heterogeneous pairings x five launch
// orders x default/memsync transfers at NA = NS = 16) twice: serially
// (--jobs 1 baseline) and with the requested job count. Verifies that the
// two aggregate reports are byte-identical and every trace digest matches,
// then emits BENCH_sweep.json — the repo's machine-readable perf
// trajectory record (wall time, runs/sec, speedup vs --jobs 1).
//
// Examples:
//   bench_sweep                 # --jobs 0 = all hardware threads
//   bench_sweep --jobs 8 --out BENCH_sweep.json
#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <thread>

#include "exec/sweep.hpp"
#include "exec/thread_pool.hpp"
#include "tools/cli.hpp"

namespace {

hq::exec::SweepGrid make_grid() {
  using namespace hq;
  exec::SweepGrid grid;
  for (const auto& [x, y] :
       std::initializer_list<std::pair<const char*, const char*>>{
           {"gaussian", "nn"},   {"gaussian", "needle"}, {"gaussian", "srad"},
           {"nn", "needle"},     {"nn", "srad"},         {"needle", "srad"}}) {
    grid.app_sets.push_back({x, y});
  }
  grid.na = {16};
  grid.ns = {16};
  grid.orders.assign(std::begin(fw::kAllOrders), std::end(fw::kAllOrders));
  grid.memory_sync = {false, true};
  grid.seeds = {42};
  grid.base.functional = false;
  grid.base.sensor.noise_stddev = 0.0;
  grid.base.sensor.quantization = 0.0;
  return grid;
}

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

// Serial throughput of the seed-code bench_sweep on this same 60-run grid,
// recorded before the hot-path overhaul (event pool, name interning,
// scan-free placement). speedup_vs_baseline_* track absolute progress
// against it; speedup_vs_jobs1 only measures parallel scaling and is
// bounded by host_cpus.
constexpr double kSeedSerialRunsPerSec = 3.19897;

}  // namespace

int main(int argc, char** argv) {
  using namespace hq;
  tools::ArgParser args;
  args.add_option("jobs", "worker threads (0 = all hardware threads)", "0");
  args.add_option("out", "JSON output path", "BENCH_sweep.json");
  args.add_flag("help", "show this help");
  if (!args.parse(argc, argv) || args.get_flag("help")) {
    if (!args.error().empty()) {
      std::fprintf(stderr, "error: %s\n", args.error().c_str());
    }
    std::fprintf(stderr, "%s", args.usage("bench_sweep").c_str());
    return args.get_flag("help") ? 0 : 2;
  }
  const auto jobs_arg = args.get_int("jobs");
  if (!jobs_arg || *jobs_arg < 0) {
    std::fprintf(stderr, "error: bad --jobs\n");
    return 2;
  }
  const int jobs = *jobs_arg == 0 ? exec::ThreadPool::hardware_jobs()
                                  : static_cast<int>(*jobs_arg);

  const exec::SweepGrid grid = make_grid();
  exec::SweepRunner runner;
  const std::size_t runs = exec::SweepRunner::expand(grid).size();
  std::printf("sweep: %zu runs, baseline --jobs 1 then --jobs %d\n", runs,
              jobs);

  const auto t_serial = std::chrono::steady_clock::now();
  const auto serial = runner.run(grid, {.jobs = 1, .progress = {}, .journal_path = {}, .resume = false});
  const double wall_serial = seconds_since(t_serial);

  const auto t_parallel = std::chrono::steady_clock::now();
  const auto parallel = runner.run(grid, {.jobs = jobs, .progress = {}, .journal_path = {}, .resume = false});
  const double wall_parallel = seconds_since(t_parallel);

  // Determinism proof: identical digests per point and identical aggregate
  // report bytes, independent of the job count.
  bool identical = serial.size() == parallel.size();
  for (std::size_t i = 0; identical && i < serial.size(); ++i) {
    identical = serial[i].trace_digest == parallel[i].trace_digest &&
                serial[i].makespan == parallel[i].makespan;
  }
  const std::string report_serial = exec::render_report(serial);
  const std::string report_parallel = exec::render_report(parallel);
  identical = identical && report_serial == report_parallel;

  std::printf("%s", report_parallel.c_str());
  const double speedup = wall_parallel > 0 ? wall_serial / wall_parallel : 0;
  std::printf("\n--jobs 1: %.3f s (%.1f runs/s)   --jobs %d: %.3f s "
              "(%.1f runs/s)   speedup %.2fx\n",
              wall_serial, static_cast<double>(runs) / wall_serial, jobs,
              wall_parallel, static_cast<double>(runs) / wall_parallel,
              speedup);
  std::printf("determinism across job counts: %s\n",
              identical ? "byte-identical" : "MISMATCH");

  const std::string out_path = args.get("out");
  {
    std::ostringstream digest;
    digest << std::hex << exec::combined_digest(parallel);
    std::ofstream out(out_path);
    out << "{\n"
        << "  \"bench\": \"sweep\",\n"
        << "  \"host_cpus\": " << std::thread::hardware_concurrency()
        << ",\n"
        << "  \"grid\": {\"pairs\": " << grid.app_sets.size()
        << ", \"orders\": " << grid.orders.size()
        << ", \"memsync_modes\": " << grid.memory_sync.size()
        << ", \"na\": " << grid.na[0] << ", \"ns\": " << grid.ns[0] << "},\n"
        << "  \"runs\": " << runs << ",\n"
        << "  \"jobs\": " << jobs << ",\n"
        << "  \"wall_s_jobs1\": " << wall_serial << ",\n"
        << "  \"wall_s_jobsN\": " << wall_parallel << ",\n"
        << "  \"runs_per_s_jobs1\": "
        << static_cast<double>(runs) / wall_serial << ",\n"
        << "  \"runs_per_s_jobsN\": "
        << static_cast<double>(runs) / wall_parallel << ",\n"
        << "  \"speedup_vs_jobs1\": " << speedup << ",\n"
        << "  \"baseline_runs_per_s\": " << kSeedSerialRunsPerSec << ",\n"
        << "  \"baseline_source\": \"seed-code bench_sweep --jobs 1, same "
           "grid\",\n"
        << "  \"speedup_vs_baseline_jobs1\": "
        << (static_cast<double>(runs) / wall_serial) / kSeedSerialRunsPerSec
        << ",\n"
        << "  \"speedup_vs_baseline_jobsN\": "
        << (static_cast<double>(runs) / wall_parallel) / kSeedSerialRunsPerSec
        << ",\n"
        << "  \"deterministic\": " << (identical ? "true" : "false") << ",\n"
        << "  \"combined_digest\": \"0x" << digest.str() << "\"\n"
        << "}\n";
  }
  std::printf("wrote %s\n", out_path.c_str());
  return identical ? 0 : 1;
}
