// Rodinia "pathfinder": shortest-path dynamic programming over a 2D grid
// (extension port).
//
// Each kernel call advances the DP front by `pyramid_height` rows:
//   dst[x] = weight[r][x] + min(src[x-1], src[x], src[x+1])
// with grid ceil(cols / 256) blocks of 256 threads. A long chain of
// identical medium-sized kernels with a single small result read-back —
// a latency-bound, launch-overhead-dominated pattern distinct from every
// Table I application.
#pragma once

#include <vector>

#include "rodinia/app_base.hpp"

namespace hq::rodinia {

struct PathfinderParams {
  int cols = 100000;
  int rows = 100;
  /// Rows advanced per kernel call.
  int pyramid_height = 20;
  std::uint64_t seed = 7007;
};

class PathfinderApp final : public RodiniaApp {
 public:
  explicit PathfinderApp(PathfinderParams params = {});

  void initializeHostMemory(fw::Context& ctx) override;
  sim::Task executeKernel(fw::Context& ctx) override;
  bool verify(fw::Context& ctx) const override;

  const PathfinderParams& params() const { return params_; }
  static constexpr int kBlock = 256;

 private:
  void step_body(fw::Context* ctx, int first_row, int row_count);

  PathfinderParams params_;
  std::vector<int> wall0_;
};

}  // namespace hq::rodinia
