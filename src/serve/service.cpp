#include "serve/service.hpp"

#include <algorithm>
#include <cmath>
#include <deque>
#include <sstream>

#include "check/invariants.hpp"
#include "common/check.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "serve/signals.hpp"

namespace hq::serve {

const char* job_state_name(JobState state) {
  switch (state) {
    case JobState::Queued: return "queued";
    case JobState::Inflight: return "inflight";
    case JobState::CompletedOk: return "completed-ok";
    case JobState::CompletedLate: return "completed-late";
    case JobState::ShedQueueFull: return "shed-queue-full";
    case JobState::ShedBreaker: return "shed-breaker";
    case JobState::TimedOutQueued: return "timed-out-queued";
    case JobState::Quarantined: return "quarantined";
    case JobState::ShedNoDevice: return "shed-no-device";
    case JobState::ShedFailoverExhausted: return "shed-failover-exhausted";
  }
  return "?";
}

void ServiceConfig::validate() const {
  HQ_CHECK_MSG(!classes.empty(),
               "serve config: classes must not be empty "
               "(need at least one application class)");
  for (std::size_t i = 0; i < classes.size(); ++i) {
    HQ_CHECK_MSG(classes[i].item.factory != nullptr,
                 "serve config: class " << i << " ('"
                     << classes[i].item.type_name << "') has a null factory");
  }
  HQ_CHECK_MSG(window > 0, "serve config: window must be positive");
  HQ_CHECK_MSG(mean_interarrival > 0,
               "serve config: mean_interarrival must be positive");
  HQ_CHECK_MSG(num_streams >= 1,
               "serve config: num_streams must be >= 1, got " << num_streams);
  for (std::size_t i = 0; i < arrivals.size(); ++i) {
    HQ_CHECK_MSG(arrivals[i].klass < classes.size(),
                 "serve config: arrival " << i << " names class "
                     << arrivals[i].klass << " but only " << classes.size()
                     << " classes exist");
    if (i > 0) {
      HQ_CHECK_MSG(arrivals[i - 1].at <= arrivals[i].at,
                   "serve config: arrival times must not decrease (arrival "
                       << i << " at " << arrivals[i].at << " follows "
                       << arrivals[i - 1].at << ")");
    }
  }
  HQ_CHECK_MSG(expire_queued ? deadline > 0 : true,
               "serve config: expire_queued needs a positive deadline");
}

/// Everything a run's coroutines need, gathered behind one trivially-
/// destructible pointer (see the coroutine parameter rule in sim/task.hpp).
struct Service::RunState {
  const ServiceConfig* config = nullptr;
  sim::Simulator* sim = nullptr;
  gpu::Device* device = nullptr;
  rt::Runtime* runtime = nullptr;
  trace::Recorder* recorder = nullptr;
  fw::StreamManager* manager = nullptr;
  sim::Mutex* htod_lock = nullptr;
  sim::Event* drained = nullptr;
  Rng* rng = nullptr;
  fault::FaultInjector* injector = nullptr;
  AdmissionQueue* queue = nullptr;
  OverloadController* controller = nullptr;
  /// Empty when the breaker is disabled; else one breaker per class.
  std::vector<std::unique_ptr<fault::CircuitBreaker>>* breakers = nullptr;

  /// Per-job application instance + context, created at dispatch. Deques:
  /// element addresses stay stable as new jobs arrive.
  struct Slot {
    std::unique_ptr<fw::Kernel> app;
    fw::Context context;
  };
  std::deque<JobRecord>* jobs = nullptr;
  std::deque<Slot>* slots = nullptr;

  bool admission_closed = false;
  TimeNs window_closed_at = 0;
  std::size_t inflight = 0;
  std::size_t peak_inflight = 0;
  std::uint64_t pseudo_burst_jobs = 0;

  // Serving instruments (all nullptr unless config.collect_metrics).
  obs::Histogram* queue_wait_hist = nullptr;
  obs::Series* queue_depth_series = nullptr;
  obs::Series* inflight_series = nullptr;

  fault::CircuitBreaker* breaker_for(std::size_t klass) {
    if (breakers == nullptr || breakers->empty()) return nullptr;
    return (*breakers)[klass].get();
  }

  bool can_dispatch() const {
    return config->max_inflight == 0 || inflight < config->max_inflight;
  }

  void sample_depths() {
    if (queue_depth_series != nullptr) {
      queue_depth_series->sample(sim->now(),
                                 static_cast<double>(queue->size()));
    }
    if (inflight_series != nullptr) {
      inflight_series->sample(sim->now(), static_cast<double>(inflight));
    }
  }

  void dispatch(int job_id) {
    JobRecord& job = (*jobs)[static_cast<std::size_t>(job_id)];
    Slot& slot = (*slots)[static_cast<std::size_t>(job_id)];
    const ClassSpec& spec = config->classes[job.klass];
    slot.app = spec.item.factory();
    HQ_CHECK_MSG(slot.app != nullptr, "factory for '" << spec.item.type_name
                                                      << "' returned null");
    fw::Context ctx;
    ctx.sim = sim;
    ctx.runtime = runtime;
    ctx.htod_lock = htod_lock;
    ctx.recorder = recorder;
    ctx.app_id = job_id;
    ctx.functional = config->functional;
    slot.context = ctx;

    job.state = JobState::Inflight;
    job.dispatched_at = sim->now();
    ++inflight;
    peak_inflight = std::max(peak_inflight, inflight);
    if (queue_wait_hist != nullptr) {
      queue_wait_hist->record(
          static_cast<double>(job.dispatched_at - job.arrived_at));
    }
    sim->spawn(Service::job_lifecycle(this, job_id));
    sample_depths();
  }

  void pump() {
    while (!queue->empty() && can_dispatch()) {
      const QueuedJob next = queue->pop_front();
      JobRecord& job = (*jobs)[static_cast<std::size_t>(next.job_id)];
      if (config->expire_queued && job.deadline_at != 0 &&
          sim->now() > job.deadline_at) {
        // Expired before dispatch: the job never touches the device.
        job.state = JobState::TimedOutQueued;
        continue;
      }
      dispatch(next.job_id);
    }
    sample_depths();
  }

  void on_arrival(std::size_t klass) {
    const TimeNs now = sim->now();
    const int job_id = static_cast<int>(jobs->size());
    JobRecord rec;
    rec.job_id = job_id;
    rec.klass = klass;
    rec.arrived_at = now;
    rec.deadline_at = config->deadline > 0 ? now + config->deadline : 0;
    jobs->push_back(rec);
    slots->emplace_back();
    JobRecord& job = jobs->back();

    fault::CircuitBreaker* breaker = breaker_for(klass);
    if (breaker != nullptr && !breaker->allow(now)) {
      job.state = JobState::ShedBreaker;
      return;
    }

    // Fast path: empty queue with dispatch and capacity headroom. This is
    // the path every arrival takes in a legacy-equivalent configuration, so
    // the spawn order matches the original StreamingHarness exactly.
    if (queue->empty() && can_dispatch() &&
        (config->queue_cap == 0 || inflight < config->queue_cap)) {
      dispatch(job_id);
      return;
    }

    const auto victim = queue->offer(
        {job_id, config->classes[klass].priority, now, job.deadline_at}, now,
        inflight);
    if (victim.has_value()) {
      (*jobs)[static_cast<std::size_t>(victim->job_id)].state =
          JobState::ShedQueueFull;
    }
    sample_depths();
    pump();
  }

  void maybe_finish() {
    if (admission_closed && inflight == 0 && queue->empty() &&
        !drained->fired()) {
      drained->fire();
    }
  }
};

sim::Task Service::job_lifecycle(RunState* st, int index) {
  JobRecord& job = (*st->jobs)[static_cast<std::size_t>(index)];
  RunState::Slot& slot = (*st->slots)[static_cast<std::size_t>(index)];
  fw::Kernel& app = *slot.app;
  fw::Context& ctx = slot.context;

  // Setup is host-side and instantaneous in virtual time, as in the legacy
  // streaming harness. Under fault injection a pinned allocation can
  // exhaust its bounded retries; quarantine the job and keep serving.
  bool alloc_failed = false;
  // Timing-only jobs never read their host buffers, so skip the (often
  // RNG-heavy) host initialization exactly as the batch harness does.
  const bool init_host = st->config->functional;
  if (st->injector == nullptr) {
    app.allocateHostMemory(ctx);
    app.allocateDeviceMemory(ctx);
    if (init_host) app.initializeHostMemory(ctx);
  } else {
    try {
      app.allocateHostMemory(ctx);
      app.allocateDeviceMemory(ctx);
      if (init_host) app.initializeHostMemory(ctx);
    } catch (const Error& e) {
      job.state = JobState::Quarantined;
      job.quarantine_reason = std::string("allocation-failed: ") + e.what();
      alloc_failed = true;
    }
  }

  if (!alloc_failed) {
    ctx.stream = st->manager->acquire();
    const bool engaged =
        st->controller != nullptr && st->controller->engaged();
    const bool memsync = st->config->memory_sync || engaged;
    if (engaged && !st->config->memory_sync) {
      job.pseudo_burst = true;
      ++st->pseudo_burst_jobs;
    }
    if (memsync) {
      const TimeNs requested = st->sim->now();
      auto guard = co_await st->htod_lock->scoped_lock();
      const TimeNs acquired = st->sim->now();
      if (st->recorder != nullptr && acquired > requested) {
        st->recorder->add(ctx.stream.id, ctx.app_id, trace::SpanKind::LockWait,
                          "htod-lock", requested, acquired);
      }
      co_await app.transferMemory(ctx, fw::Direction::HostToDevice);
      guard.reset();
    } else {
      co_await app.transferMemory(ctx, fw::Direction::HostToDevice);
    }
    co_await app.executeKernel(ctx);
    co_await app.transferMemory(ctx, fw::Direction::DeviceToHost);
  }

  // Frees mirror the harness: tracked buffers only, so partially allocated
  // (quarantined) jobs release exactly what they acquired.
  app.freeHostMemory(ctx);
  app.freeDeviceMemory(ctx);
  job.completed_at = st->sim->now();

  if (job.state != JobState::Quarantined) {
    // A launch that exhausted its retry budget left the stream in a sticky
    // fault state; the job drained but produced nothing useful.
    if (st->injector != nullptr &&
        st->runtime->stream_fault(ctx.stream) != rt::Status::Ok) {
      job.state = JobState::Quarantined;
      job.quarantine_reason = "launch-aborted";
    } else {
      const bool late =
          job.deadline_at != 0 && job.completed_at > job.deadline_at;
      job.state = late ? JobState::CompletedLate : JobState::CompletedOk;
    }
  }

  fault::CircuitBreaker* breaker = st->breaker_for(job.klass);
  if (breaker != nullptr) {
    if (job.state == JobState::Quarantined) {
      breaker->record_failure(st->sim->now());
    } else {
      breaker->record_success(st->sim->now());
    }
  }

  --st->inflight;
  st->sample_depths();
  st->pump();
  st->maybe_finish();
}

sim::Task Service::generator_task(RunState* st) {
  if (!st->config->arrivals.empty()) {
    // Trace replay: deterministic by construction.
    const std::size_t n = st->config->arrivals.size();
    for (std::size_t i = 0; i < n; ++i) {
      const TimeNs at = st->config->arrivals[i].at;
      if (at > st->sim->now()) {
        co_await st->sim->delay(at - st->sim->now());
      }
      st->on_arrival(st->config->arrivals[i].klass);
    }
  } else {
    // Poisson arrivals: exponential inter-arrival times. The draw sequence
    // (one next_double + one next_below per arrival) matches the legacy
    // StreamingHarness verbatim — the legacy-equivalence contract.
    const TimeNs window_end = st->sim->now() + st->config->window;
    while (st->sim->now() < window_end) {
      const double u = std::max(st->rng->next_double(), 1e-12);
      const auto gap = static_cast<DurationNs>(
          -std::log(u) * static_cast<double>(st->config->mean_interarrival));
      co_await st->sim->delay(std::max<DurationNs>(gap, 1));
      if (st->sim->now() >= window_end) break;

      const auto pick = st->rng->next_below(st->config->classes.size());
      st->on_arrival(static_cast<std::size_t>(pick));
    }
  }
  st->admission_closed = true;
  st->window_closed_at = st->sim->now();
  st->maybe_finish();
}

ServeResult Service::run() {
  config_.validate();

  // The injector (when a plan is enabled) is built first: SMX offlining
  // degrades the spec every other component sees, and the runtime needs the
  // injector for launch/allocation fault decisions.
  std::unique_ptr<fault::FaultInjector> injector;
  gpu::DeviceSpec device_spec = config_.device;
  if (config_.fault_plan.enabled) {
    injector = std::make_unique<fault::FaultInjector>(config_.fault_plan);
    device_spec = injector->degraded(device_spec);
  }

  sim::Simulator sim;
  auto recorder = std::make_shared<trace::Recorder>();
  gpu::Device device(sim, device_spec, recorder.get());
  rt::RuntimeOptions rt_options;
  rt_options.functional = config_.functional;
  rt_options.retry = config_.retry;
  rt_options.fault_injector = injector.get();
  rt::Runtime runtime(sim, device, rt_options);
  fw::StreamManager manager(runtime, config_.num_streams);
  sim::Mutex htod_lock(sim);
  sim::Event drained(sim);
  Rng rng(config_.seed);

  OverloadController controller(config_.controller);
  std::vector<std::unique_ptr<fault::CircuitBreaker>> breakers;
  if (config_.breaker_enabled) {
    breakers.reserve(config_.classes.size());
    for (std::size_t i = 0; i < config_.classes.size(); ++i) {
      breakers.push_back(
          std::make_unique<fault::CircuitBreaker>(config_.breaker));
    }
  }
  AdmissionQueue queue({config_.queue_cap, config_.shed_policy});

  std::deque<JobRecord> jobs;
  std::deque<RunState::Slot> slots;

  std::shared_ptr<obs::MetricsRegistry> metrics;
  RunState state;
  state.config = &config_;
  state.sim = &sim;
  state.device = &device;
  state.runtime = &runtime;
  state.recorder = recorder.get();
  state.manager = &manager;
  state.htod_lock = &htod_lock;
  state.drained = &drained;
  state.rng = &rng;
  state.injector = injector.get();
  state.queue = &queue;
  state.controller = &controller;
  state.breakers = &breakers;
  state.jobs = &jobs;
  state.slots = &slots;

  if (config_.collect_metrics) {
    metrics = std::make_shared<obs::MetricsRegistry>();
    state.queue_wait_hist = &metrics->histogram(
        "serve_queue_wait_ns",
        {1e4, 1e5, 1e6, 5e6, 1e7, 5e7, 1e8, 5e8},
        "Admission-queue wait per dispatched job (arrival to dispatch)");
    state.queue_depth_series = &metrics->series(
        "serve_queue_depth", "Admission-queue depth over virtual time");
    state.inflight_series = &metrics->series(
        "serve_inflight", "Dispatched jobs in flight over virtual time");
  }

  std::unique_ptr<check::InvariantChecker> checker;
  if (config_.check_invariants) {
    checker = std::make_unique<check::InvariantChecker>(device_spec);
  }
  ServeSignals signals(&controller, &jobs, &breakers);
  gpu::ObserverFanout fanout;
  fanout.add(checker.get());
  fanout.add(&signals);
  device.set_observer(&fanout);
  if (injector != nullptr) {
    // Faults report through the same chain as device events, so the checker
    // can reconcile every on_fault_injected against the injector's stats
    // and the signal observer can attribute copy stalls to classes.
    injector->set_observer(&fanout);
    device.set_copy_fault_hook(
        [inj = injector.get()](TimeNs now, gpu::CopyDirection dir,
                               gpu::OpId op, Bytes bytes, DurationNs base) {
          return inj->copy_service_penalty(now, dir, op, bytes, base);
        });
    if (!breakers.empty()) {
      injector->set_launch_fault_hook(
          [st = &state](TimeNs now, std::int32_t app_id, bool /*aborted*/) {
            if (app_id < 0 ||
                static_cast<std::size_t>(app_id) >= st->jobs->size()) {
              return;
            }
            fault::CircuitBreaker* breaker = st->breaker_for(
                (*st->jobs)[static_cast<std::size_t>(app_id)].klass);
            if (breaker != nullptr) breaker->record_failure(now);
          });
    }
  }

  sim.spawn(generator_task(&state));
  sim.run();
  HQ_CHECK_MSG(sim.live_tasks() == 0, "serve run finished with live tasks");
  HQ_CHECK_MSG(drained.fired(), "serve run ended without draining");

  if (checker != nullptr) {
    checker->finalize(device);
    checker->finalize_runtime(runtime);
    if (injector != nullptr) checker->finalize_faults(injector->stats());
    HQ_CHECK_MSG(checker->ok(),
                 "invariant violations:\n" << checker->report());
  }

  // --- accounting ----------------------------------------------------------
  ServeResult result;
  result.trace = recorder;
  result.metrics = metrics;
  if (injector != nullptr) result.fault_stats = injector->stats();
  result.controller_transitions = controller.transitions();

  check::ServeAccounting& acc = result.accounting;
  ServeReport& report = result.report;
  report.classes.resize(config_.classes.size());
  for (std::size_t i = 0; i < config_.classes.size(); ++i) {
    ClassStats& c = report.classes[i];
    c.name = config_.classes[i].item.type_name;
    c.priority = config_.classes[i].priority;
    if (!report.workload.empty()) report.workload += '+';
    report.workload += c.name;
  }

  RunningStats turnaround;
  std::vector<double> turnaround_samples;
  RunningStats queue_wait;
  for (const JobRecord& job : jobs) {
    ClassStats& c = report.classes[job.klass];
    ++acc.arrived;
    ++c.arrived;
    switch (job.state) {
      case JobState::CompletedOk:
        ++acc.completed_ok;
        ++c.completed_ok;
        break;
      case JobState::CompletedLate:
        ++acc.completed_late;
        ++c.completed_late;
        break;
      case JobState::ShedQueueFull:
        ++acc.shed_queue_full;
        ++c.shed_queue_full;
        acc.undispatched_apps.push_back(job.job_id);
        break;
      case JobState::ShedBreaker:
        ++acc.shed_breaker;
        ++c.shed_breaker;
        acc.undispatched_apps.push_back(job.job_id);
        break;
      case JobState::TimedOutQueued:
        ++acc.timed_out_queued;
        ++c.timed_out_queued;
        acc.undispatched_apps.push_back(job.job_id);
        break;
      case JobState::Quarantined:
        ++acc.quarantined;
        ++c.quarantined;
        break;
      case JobState::ShedNoDevice:
      case JobState::ShedFailoverExhausted:
      case JobState::Queued:
      case JobState::Inflight:
        // ShedNoDevice/ShedFailoverExhausted are fleet-level terminal
        // states (src/fleet); the single-device service never produces
        // them.
        HQ_CHECK_MSG(false, "job " << job.job_id
                                   << " ended the run in unexpected state "
                                   << job_state_name(job.state));
    }
    const bool dispatched = job.state == JobState::CompletedOk ||
                            job.state == JobState::CompletedLate ||
                            job.state == JobState::Quarantined;
    if (dispatched) {
      queue_wait.add(static_cast<double>(job.dispatched_at - job.arrived_at));
    }
    if (job.state == JobState::CompletedOk ||
        job.state == JobState::CompletedLate) {
      const auto t = static_cast<double>(job.completed_at - job.arrived_at);
      turnaround.add(t);
      turnaround_samples.push_back(t);
    }
  }

  const std::vector<std::string> violations =
      check::verify_serve_accounting(acc, recorder.get());
  if (config_.check_invariants && !violations.empty()) {
    std::ostringstream os;
    for (const std::string& v : violations) os << v << "\n";
    HQ_CHECK_MSG(false, "serve invariant violations:\n" << os.str());
  }

  // --- report --------------------------------------------------------------
  report.num_streams = config_.num_streams;
  report.memory_sync = config_.memory_sync;
  report.seed = config_.seed;
  report.window = config_.window;
  report.mean_interarrival = config_.mean_interarrival;
  report.deadline = config_.deadline;
  report.queue_cap = config_.queue_cap;
  report.max_inflight = config_.max_inflight;
  report.shed_policy = shed_policy_name(config_.shed_policy);
  report.expire_queued = config_.expire_queued;
  report.controller_enabled = config_.controller.enabled;
  report.breaker_enabled = config_.breaker_enabled;
  report.fault_plan = fault_plan_to_string(config_.fault_plan);

  report.arrived = acc.arrived;
  report.admitted = acc.arrived - acc.shed_queue_full - acc.shed_breaker;
  report.completed = acc.completed_ok + acc.completed_late;
  report.completed_ok = acc.completed_ok;
  report.completed_late = acc.completed_late;
  report.shed_queue_full = acc.shed_queue_full;
  report.shed_breaker = acc.shed_breaker;
  report.timed_out_queued = acc.timed_out_queued;
  report.quarantined = acc.quarantined;

  report.total_time = sim.now();
  report.drain_time = report.total_time >= state.window_closed_at
                          ? report.total_time - state.window_closed_at
                          : 0;
  report.energy = device.energy();
  report.average_occupancy = device.average_occupancy();
  if (report.total_time > 0) {
    const double seconds = to_seconds(report.total_time);
    report.goodput_per_sec =
        static_cast<double>(report.completed_ok) / seconds;
    report.throughput_per_sec =
        static_cast<double>(report.completed) / seconds;
  }
  if (report.admitted > 0) {
    report.deadline_miss_ratio =
        static_cast<double>(report.completed_late + report.timed_out_queued) /
        static_cast<double>(report.admitted);
  }
  if (report.completed > 0) {
    report.mean_turnaround = static_cast<DurationNs>(turnaround.mean());
    report.max_turnaround = static_cast<DurationNs>(turnaround.max());
    report.p95_turnaround = static_cast<DurationNs>(
        percentile(std::move(turnaround_samples), 95));
    report.energy_per_completed =
        report.energy / static_cast<double>(report.completed);
  }
  if (queue_wait.count() > 0) {
    report.mean_queue_wait = static_cast<DurationNs>(queue_wait.mean());
    report.max_queue_wait = static_cast<DurationNs>(queue_wait.max());
  }
  report.peak_queue_depth = queue.peak_depth();
  report.peak_inflight = state.peak_inflight;

  report.controller_engagements = controller.engagements();
  report.controller_releases = controller.releases();
  report.pseudo_burst_jobs = state.pseudo_burst_jobs;
  if (!breakers.empty()) {
    for (std::size_t i = 0; i < breakers.size(); ++i) {
      const fault::CircuitBreaker& b = *breakers[i];
      ClassStats& c = report.classes[i];
      c.breaker_trips = b.trips();
      c.breaker_probes = b.probes();
      c.breaker_rejected = b.rejected();
      c.breaker_final_state = breaker_state_name(b.state());
      report.breaker_trips += b.trips();
      report.breaker_probes += b.probes();
      report.breaker_rejected += b.rejected();
    }
  }
  if (injector != nullptr) report.faults_injected = injector->stats().total();
  report.trace_digest = trace::digest(*recorder);

  if (metrics != nullptr) {
    metrics->counter("serve_arrived", "Jobs that arrived").add(acc.arrived);
    metrics->counter("serve_completed_ok", "Jobs completed within deadline")
        .add(acc.completed_ok);
    metrics->counter("serve_completed_late", "Jobs completed past deadline")
        .add(acc.completed_late);
    metrics->counter("serve_shed_queue_full", "Jobs shed by the queue")
        .add(acc.shed_queue_full);
    metrics->counter("serve_shed_breaker", "Jobs shed by open breakers")
        .add(acc.shed_breaker);
    metrics->counter("serve_timed_out_queued", "Jobs expired in the queue")
        .add(acc.timed_out_queued);
    metrics->counter("serve_quarantined", "Dispatched jobs that failed")
        .add(acc.quarantined);
    metrics->counter("serve_breaker_trips", "Breaker trips across classes")
        .add(report.breaker_trips);
    metrics->counter("serve_pseudo_burst_jobs",
                     "Jobs forced into pseudo-burst transfers")
        .add(report.pseudo_burst_jobs);
    metrics->counter("serve_faults_injected", "Faults the injector fired")
        .add(report.faults_injected);
  }

  result.jobs.assign(jobs.begin(), jobs.end());
  return result;
}

}  // namespace hq::serve
