// Property-based sweep of the schedule generators across all five orders and
// a matrix of type-count configurations.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <tuple>

#include "hyperq/schedule.hpp"

namespace hq::fw {
namespace {

using CountsCase = std::vector<int>;

class ScheduleProperty
    : public ::testing::TestWithParam<std::tuple<Order, CountsCase>> {
 protected:
  std::vector<Slot> build() {
    const auto& [order, counts] = GetParam();
    rng_ = std::make_unique<Rng>(99);
    return make_schedule(order, counts, rng_.get());
  }
  std::unique_ptr<Rng> rng_;
};

TEST_P(ScheduleProperty, SizeEqualsTotalCount) {
  const auto& counts = std::get<1>(GetParam());
  int total = 0;
  for (int c : counts) total += c;
  EXPECT_EQ(build().size(), static_cast<std::size_t>(total));
}

TEST_P(ScheduleProperty, EveryInstanceAppearsExactlyOnce) {
  const auto& counts = std::get<1>(GetParam());
  const auto slots = build();
  std::map<std::pair<int, int>, int> seen;
  for (const Slot& slot : slots) seen[{slot.type, slot.instance}]++;
  for (std::size_t t = 0; t < counts.size(); ++t) {
    for (int i = 1; i <= counts[t]; ++i) {
      EXPECT_EQ((seen[{static_cast<int>(t), i}]), 1)
          << "type " << t << " instance " << i;
    }
  }
  int total = 0;
  for (int c : counts) total += c;
  EXPECT_EQ(static_cast<int>(seen.size()), total);
}

TEST_P(ScheduleProperty, InstancesWithinTypeAreOrderedForDeterministicOrders) {
  const auto& [order, counts] = GetParam();
  if (order == Order::RandomShuffle) GTEST_SKIP() << "shuffle reorders";
  const auto slots = build();
  std::vector<int> last(counts.size(), 0);
  for (const Slot& slot : slots) {
    EXPECT_EQ(slot.instance, last[slot.type] + 1)
        << order_name(order) << " violates per-type instance order";
    last[slot.type] = slot.instance;
  }
}

TEST_P(ScheduleProperty, GenerationIsRepeatable) {
  const auto& [order, counts] = GetParam();
  Rng r1(7), r2(7);
  EXPECT_EQ(make_schedule(order, counts, &r1),
            make_schedule(order, counts, &r2));
}

INSTANTIATE_TEST_SUITE_P(
    OrderAndCounts, ScheduleProperty,
    ::testing::Combine(
        ::testing::Values(Order::NaiveFifo, Order::RoundRobin,
                          Order::RandomShuffle, Order::ReverseFifo,
                          Order::ReverseRoundRobin),
        ::testing::Values(CountsCase{4, 4}, CountsCase{16, 16},
                          CountsCase{1, 7}, CountsCase{5, 0},
                          CountsCase{3, 3, 3}, CountsCase{1, 2, 3, 4},
                          CountsCase{10})),
    [](const auto& param_info) {
      const Order order = std::get<0>(param_info.param);
      const CountsCase& counts = std::get<1>(param_info.param);
      std::string name;
      switch (order) {
        case Order::NaiveFifo: name = "Fifo"; break;
        case Order::RoundRobin: name = "RR"; break;
        case Order::RandomShuffle: name = "Shuffle"; break;
        case Order::ReverseFifo: name = "RevFifo"; break;
        case Order::ReverseRoundRobin: name = "RevRR"; break;
      }
      for (int c : counts) name += "_" + std::to_string(c);
      return name;
    });

}  // namespace
}  // namespace hq::fw
