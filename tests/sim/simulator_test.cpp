#include "sim/simulator.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "common/check.hpp"

namespace hq::sim {
namespace {

TEST(SimulatorTest, StartsAtTimeZero) {
  Simulator sim;
  EXPECT_EQ(sim.now(), 0u);
  EXPECT_TRUE(sim.idle());
  EXPECT_EQ(sim.events_processed(), 0u);
}

TEST(SimulatorTest, ScheduleAdvancesClock) {
  Simulator sim;
  TimeNs seen = 0;
  sim.schedule(100, [&] { seen = sim.now(); });
  sim.run();
  EXPECT_EQ(seen, 100u);
  EXPECT_EQ(sim.now(), 100u);
  EXPECT_EQ(sim.events_processed(), 1u);
}

TEST(SimulatorTest, EventsRunInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule(300, [&] { order.push_back(3); });
  sim.schedule(100, [&] { order.push_back(1); });
  sim.schedule(200, [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(SimulatorTest, SimultaneousEventsRunFifo) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.schedule(50, [&order, i] { order.push_back(i); });
  }
  sim.run();
  std::vector<int> expected;
  for (int i = 0; i < 10; ++i) expected.push_back(i);
  EXPECT_EQ(order, expected);
}

TEST(SimulatorTest, NestedSchedulingAtSameInstant) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule(10, [&] {
    order.push_back(1);
    sim.schedule(0, [&] { order.push_back(3); });
  });
  sim.schedule(10, [&] { order.push_back(2); });
  sim.run();
  // The nested zero-delay event runs after already-queued same-time events.
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(SimulatorTest, ScheduleAtAbsoluteTime) {
  Simulator sim;
  TimeNs seen = 0;
  sim.schedule_at(777, [&] { seen = sim.now(); });
  sim.run();
  EXPECT_EQ(seen, 777u);
}

TEST(SimulatorTest, ScheduleIntoPastThrows) {
  Simulator sim;
  sim.schedule(100, [] {});
  sim.run();
  EXPECT_EQ(sim.now(), 100u);
  EXPECT_THROW(sim.schedule_at(50, [] {}), hq::Error);
}

TEST(SimulatorTest, RunUntilStopsAtBoundary) {
  Simulator sim;
  std::vector<TimeNs> seen;
  sim.schedule(100, [&] { seen.push_back(sim.now()); });
  sim.schedule(200, [&] { seen.push_back(sim.now()); });
  sim.schedule(300, [&] { seen.push_back(sim.now()); });

  sim.run_until(200);
  EXPECT_EQ(seen, (std::vector<TimeNs>{100, 200}));
  EXPECT_EQ(sim.now(), 200u);
  EXPECT_EQ(sim.pending_events(), 1u);

  sim.run();
  EXPECT_EQ(seen, (std::vector<TimeNs>{100, 200, 300}));
}

TEST(SimulatorTest, RunUntilAdvancesClockEvenWhenIdle) {
  Simulator sim;
  sim.run_until(5000);
  EXPECT_EQ(sim.now(), 5000u);
}

TEST(SimulatorTest, RunForIsRelative) {
  Simulator sim;
  sim.schedule(100, [] {});
  sim.run();
  sim.run_for(50);
  EXPECT_EQ(sim.now(), 150u);
}

TEST(SimulatorTest, RunReturnsEventCount) {
  Simulator sim;
  for (int i = 0; i < 5; ++i) sim.schedule(i, [] {});
  EXPECT_EQ(sim.run(), 5u);
  EXPECT_EQ(sim.run(), 0u);
}

TEST(SimulatorTest, ManyEventsStressOrdering) {
  Simulator sim;
  // Schedule events with colliding timestamps; verify global monotonic
  // dispatch order.
  TimeNs last = 0;
  int dispatched = 0;
  for (int i = 0; i < 10000; ++i) {
    const TimeNs t = static_cast<TimeNs>((i * 7919) % 1000);
    sim.schedule_at(t, [&, t] {
      EXPECT_GE(t, last);
      last = t;
      ++dispatched;
    });
  }
  sim.run();
  EXPECT_EQ(dispatched, 10000);
}

}  // namespace
}  // namespace hq::sim
