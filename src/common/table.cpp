#include "common/table.hpp"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "common/check.hpp"

namespace hq {

void TextTable::set_header(std::vector<std::string> header) {
  header_ = std::move(header);
}

void TextTable::add_row(std::vector<std::string> row) {
  if (!header_.empty()) {
    HQ_CHECK_MSG(row.size() == header_.size(),
                 "row has " << row.size() << " cells, header has "
                            << header_.size());
  }
  rows_.push_back(Row{std::move(row), false});
}

void TextTable::add_separator() { rows_.push_back(Row{{}, true}); }

std::string TextTable::render() const {
  std::vector<std::size_t> widths;
  auto widen = [&widths](const std::vector<std::string>& cells) {
    if (cells.size() > widths.size()) widths.resize(cells.size(), 0);
    for (std::size_t i = 0; i < cells.size(); ++i) {
      widths[i] = std::max(widths[i], cells[i].size());
    }
  };
  widen(header_);
  for (const auto& row : rows_) {
    if (!row.separator) widen(row.cells);
  }

  std::size_t total = 0;
  for (std::size_t w : widths) total += w + 2;

  std::ostringstream os;
  auto emit = [&os, &widths](const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < cells.size(); ++i) {
      os << std::left << std::setw(static_cast<int>(widths[i]) + 2) << cells[i];
    }
    os << '\n';
  };
  if (!header_.empty()) {
    emit(header_);
    os << std::string(total, '-') << '\n';
  }
  for (const auto& row : rows_) {
    if (row.separator) {
      os << std::string(total, '-') << '\n';
    } else {
      emit(row.cells);
    }
  }
  return os.str();
}

std::string format_fixed(double value, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << value;
  return os.str();
}

std::string format_percent(double ratio, int precision) {
  std::ostringstream os;
  os << (ratio >= 0 ? "+" : "") << std::fixed << std::setprecision(precision)
     << ratio * 100.0 << "%";
  return os.str();
}

}  // namespace hq
