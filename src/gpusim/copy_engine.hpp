// DMA copy engine model.
//
// The K20 has exactly one copy engine per transfer direction; every
// host-to-device transfer in the system serializes through the same engine
// regardless of which stream issued it. The engine serves its queue strictly
// FIFO in submission order, with head-of-line blocking when the head's
// stream dependency is not yet satisfied. This single-queue contention is
// the mechanism behind the paper's Figure 1: small transfers submitted by
// interleaved host threads are serviced interleaved, stretching every
// application's effective memory transfer latency.
#pragma once

#include <deque>
#include <functional>

#include "gpusim/device_spec.hpp"
#include "gpusim/types.hpp"
#include "sim/simulator.hpp"

namespace hq::gpu {

class DeviceObserver;

/// Extra service time injected into one DMA transaction by the hq_fault
/// layer: hook(now, direction, op, bytes, base_service_time) -> penalty_ns.
/// Installed through Device::set_copy_fault_hook; a null hook (the default)
/// leaves service times untouched.
using CopyFaultHook =
    std::function<DurationNs(TimeNs, CopyDirection, OpId, Bytes, DurationNs)>;

/// One directional DMA engine with a FIFO transaction queue.
class CopyEngine {
 public:
  /// A queued transaction. `ready` is consulted at service time (stream
  /// dependency); `on_served` fires when the transfer completes and must
  /// return control promptly.
  struct Transaction {
    OpId op_id = 0;
    StreamId stream = 0;
    Bytes bytes = 0;
    std::function<bool()> ready;
    std::function<void(TimeNs service_begin, TimeNs service_end)> on_served;
    /// Owning application instance, forwarded to observers for per-app
    /// interleave attribution; -1 when the transfer has no app.
    std::int32_t app_id = -1;
  };

  CopyEngine(sim::Simulator& sim, CopyDirection direction,
             double bytes_per_sec, DurationNs overhead,
             std::function<void()> pre_state_change);

  /// Attaches (or detaches, with nullptr) an event observer. Normally set
  /// through Device::set_observer.
  void set_observer(DeviceObserver* observer) { observer_ = observer; }

  /// Attaches (or detaches, with nullptr) the fault-injection hook. Normally
  /// set through Device::set_copy_fault_hook.
  void set_fault_hook(CopyFaultHook hook) { fault_hook_ = std::move(hook); }

  /// Appends a transaction to the engine queue and attempts to start it.
  void enqueue(Transaction txn);

  /// Re-examines the queue head; called when a stream dependency resolves.
  void pump();

  /// Service time for a transfer of the given size: fixed per-transaction
  /// overhead plus the bandwidth term (the "linear above 8 KB" behaviour).
  DurationNs service_time(Bytes bytes) const;

  bool busy() const { return busy_; }
  std::size_t queued() const { return queue_.size(); }
  CopyDirection direction() const { return direction_; }
  Bytes bytes_transferred() const { return bytes_transferred_; }
  std::uint64_t transactions_served() const { return transactions_served_; }

 private:
  void begin_service();

  sim::Simulator& sim_;
  CopyDirection direction_;
  double bytes_per_sec_;
  DurationNs overhead_;
  std::function<void()> pre_state_change_;
  DeviceObserver* observer_ = nullptr;
  CopyFaultHook fault_hook_;

  std::deque<Transaction> queue_;
  bool busy_ = false;
  Bytes bytes_transferred_ = 0;
  std::uint64_t transactions_served_ = 0;
};

}  // namespace hq::gpu
