// Hysteresis overload controller for the serving layer (library hq_serve).
//
// The paper's memory-sync mode (Section III-B pseudo-burst transfers)
// trades HtoD interleaving for serialized, burst-shaped transfers — a win
// exactly when the copy queue is congested. This controller closes the
// loop: it watches the per-transaction HtoD *stretch* (the effective
// latency inflation of paper Eq. 1: (queue wait + service) / service) as an
// EWMA and switches the service into memory-sync mode when the stretch
// crosses an engage watermark, releasing when it falls back below a lower
// release watermark.
//
// Flap control is twofold: the engage watermark sits strictly above the
// release watermark (hysteresis), and transitions are separated by a
// minimum dwell time. Both are evaluated on the virtual clock against
// deterministic observer events, so the engaged/released trajectory is
// bit-identical across runs and --jobs counts.
#pragma once

#include <cstdint>
#include <vector>

#include "common/units.hpp"

namespace hq::serve {

class OverloadController {
 public:
  struct Config {
    /// Disabled controllers never engage (observe_htod is a no-op).
    bool enabled = false;
    /// Engage pseudo-burst mode when the stretch EWMA rises to or above
    /// this watermark. Must be strictly greater than release_stretch.
    double engage_stretch = 3.0;
    /// Release back to interleaved transfers when the EWMA falls to or
    /// below this watermark. Must be >= 1 (a stretch below 1 cannot occur).
    double release_stretch = 1.5;
    /// EWMA smoothing factor in (0, 1]; 1 = no smoothing.
    double alpha = 0.25;
    /// Minimum observations before the controller may first engage.
    std::uint64_t min_samples = 4;
    /// Minimum virtual time between transitions (debounces flapping).
    DurationNs min_dwell = 2 * kMillisecond;
  };

  /// One engage/release edge, for reports and determinism tests.
  struct Transition {
    TimeNs at = 0;
    bool engaged = false;
    double stretch = 0.0;  ///< EWMA value that triggered the edge
  };

  explicit OverloadController(Config config);

  /// Feeds one served HtoD DMA transaction: `wait` is the time spent in the
  /// copy queue, `service` the actual service time. Updates the EWMA and
  /// applies the hysteresis rule.
  void observe_htod(TimeNs now, DurationNs wait, DurationNs service);

  bool enabled() const { return config_.enabled; }
  /// True while the service should run transfers in pseudo-burst mode.
  bool engaged() const { return engaged_; }
  double stretch() const { return stretch_; }

  std::uint64_t samples() const { return samples_; }
  std::uint64_t engagements() const { return engagements_; }
  std::uint64_t releases() const { return releases_; }
  const std::vector<Transition>& transitions() const { return transitions_; }

  const Config& config() const { return config_; }

 private:
  Config config_;
  bool engaged_ = false;
  double stretch_ = 1.0;
  std::uint64_t samples_ = 0;
  std::uint64_t engagements_ = 0;
  std::uint64_t releases_ = 0;
  TimeNs last_transition_ = 0;
  std::vector<Transition> transitions_;
};

}  // namespace hq::serve
