// Fleet fault-domain tests: device-lifecycle chaos (crash/flap/degrade),
// in-flight job failover with budgets, hedged dispatch, and the
// zero-perturbation contract — inert fault-domain knobs leave the fleet
// report byte-identical to the pre-chaos engine.
#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <string>
#include <vector>

#include "fault/lifecycle.hpp"
#include "fleet/fleet.hpp"
#include "fleet/report.hpp"
#include "serve/report.hpp"
#include "tests/hyperq/synthetic_app.hpp"

namespace hq::fleet {
namespace {

using fw::testing::SyntheticApp;

serve::ServiceConfig chaos_base() {
  serve::ServiceConfig config;
  config.window = 10 * kMillisecond;
  config.mean_interarrival = 100 * kMicrosecond;
  config.num_streams = 2;
  config.max_inflight = 2;
  SyntheticApp::Spec spec;
  spec.num_kernels = 3;
  spec.block_duration = 30 * kMicrosecond;
  config.classes.push_back(
      {fw::WorkloadItem{"synthetic",
                        [spec] { return std::make_unique<SyntheticApp>(spec); }},
       0});
  config.collect_metrics = false;
  return config;
}

FleetConfig chaos_fleet(std::size_t devices) {
  FleetConfig config;
  config.base = chaos_base();
  config.resize_homogeneous(devices);
  config.placement = PlacementPolicy::LeastLoaded;
  return config;
}

fault::FaultPlan crash_plan(TimeNs at) {
  fault::FaultPlan plan = fault::FaultPlan::zero();
  plan.crash_at = at;
  return plan;
}

fault::FaultPlan disabled_plan() { return fault::FaultPlan{}; }

/// The chaos conservation identity: every arrival ends in exactly one
/// terminal state, including the fleet-only failover-exhausted one.
void check_chaos_conservation(const FleetResult& result) {
  const FleetReport& r = result.report;
  EXPECT_EQ(r.arrived, r.completed_ok + r.completed_late + r.shed_queue_full +
                           r.shed_breaker + r.shed_no_device +
                           r.timed_out_queued + r.quarantined +
                           r.shed_failover_exhausted);
  std::uint64_t device_arrived = 0;
  for (const FleetDeviceStats& dev : r.devices) {
    device_arrived += dev.report.arrived;
  }
  EXPECT_EQ(device_arrived + r.shed_no_device + r.shed_failover_exhausted,
            r.arrived);
  // Job-level: ids unique, every job terminal, owners match the fleet-only
  // states.
  std::set<int> seen;
  std::uint64_t exhausted = 0;
  for (std::size_t i = 0; i < result.jobs.size(); ++i) {
    const serve::JobRecord& job = result.jobs[i];
    EXPECT_TRUE(seen.insert(job.job_id).second) << "duplicate id " << i;
    EXPECT_NE(job.state, serve::JobState::Queued) << "job " << i;
    EXPECT_NE(job.state, serve::JobState::Inflight) << "job " << i;
    if (job.state == serve::JobState::ShedNoDevice ||
        job.state == serve::JobState::ShedFailoverExhausted) {
      EXPECT_EQ(result.owners[i], -1) << "job " << i;
    } else {
      EXPECT_GE(result.owners[i], 0) << "job " << i;
    }
    if (job.state == serve::JobState::ShedFailoverExhausted) ++exhausted;
  }
  EXPECT_EQ(exhausted, r.shed_failover_exhausted);
}

TEST(FleetChaosTest, CrashFailsOverQueuedAndRunningJobs) {
  FleetConfig config = chaos_fleet(3);
  config.device_fault_plans = {crash_plan(3 * kMillisecond), disabled_plan(),
                               disabled_plan()};
  FleetResult result = FleetService(config).run();
  const FleetReport& r = result.report;

  EXPECT_TRUE(r.fault_domains);
  EXPECT_EQ(r.devices[0].lifecycle_downs, 1u);
  // The crash displaced at least the jobs running on device 0 at t=3ms.
  EXPECT_GT(r.failed_over + r.shed_failover_exhausted, 0u);
  EXPECT_EQ(r.devices[0].failed_over_in, 0u);
  EXPECT_EQ(r.failed_over,
            r.devices[1].failed_over_in + r.devices[2].failed_over_in);
  // Post-crash arrivals land on the survivors only; everyone still
  // completes (two healthy devices absorb this load).
  EXPECT_GT(r.completed, 0u);
  check_chaos_conservation(result);
}

TEST(FleetChaosTest, CrashedDeviceAcceptsNoWorkAfterCrash) {
  FleetConfig config = chaos_fleet(2);
  const TimeNs crash_at = 2 * kMillisecond;
  config.base.collect_metrics = true;
  config.device_fault_plans = {crash_plan(crash_at), disabled_plan()};
  FleetResult result = FleetService(config).run();

  // No lifecycle event places, dispatches, or completes anything on device
  // 0 after the crash instant.
  for (const serve::JobRecord& job : result.jobs) {
    for (const serve::JobEvent& e : result.lifecycle->events(job.job_id)) {
      if (e.device != 0) continue;
      if (e.kind == serve::JobEventKind::Placed ||
          e.kind == serve::JobEventKind::Dispatched ||
          e.kind == serve::JobEventKind::CompletedOk ||
          e.kind == serve::JobEventKind::CompletedLate) {
        EXPECT_LE(e.at, crash_at)
            << "job " << job.job_id << " event "
            << serve::job_event_kind_name(e.kind) << " on the dead device";
      }
    }
  }
  check_chaos_conservation(result);
}

TEST(FleetChaosTest, AllDevicesDeadDrainsCleanly) {
  FleetConfig config = chaos_fleet(2);
  config.device_fault_plans = {crash_plan(2 * kMillisecond),
                               crash_plan(2 * kMillisecond)};
  FleetResult result = FleetService(config).run();
  const FleetReport& r = result.report;

  // The run terminates (no hang), post-crash arrivals shed as no-device,
  // and displaced in-flight jobs exhaust with no survivor to take them.
  EXPECT_GT(r.shed_no_device, 0u);
  EXPECT_GT(r.completed, 0u);  // pre-crash work still finished
  check_chaos_conservation(result);
  // Nothing completed after the crash.
  for (const serve::JobRecord& job : result.jobs) {
    if (job.state == serve::JobState::CompletedOk ||
        job.state == serve::JobState::CompletedLate) {
      EXPECT_LE(job.completed_at, 2 * kMillisecond);
    }
  }
}

TEST(FleetChaosTest, FailoverBudgetZeroExhaustsDisplacedJobs) {
  FleetConfig config = chaos_fleet(2);
  config.failover_budget = 0;
  config.device_fault_plans = {crash_plan(3 * kMillisecond), disabled_plan()};
  FleetResult result = FleetService(config).run();
  const FleetReport& r = result.report;

  // With zero budget every displaced job exhausts instead of moving.
  EXPECT_EQ(r.failed_over, 0u);
  EXPECT_GT(r.shed_failover_exhausted, 0u);
  check_chaos_conservation(result);
}

TEST(FleetChaosTest, FlappingDeviceGoesDownAndRecovers) {
  FleetConfig config = chaos_fleet(2);
  fault::FaultPlan flappy = fault::FaultPlan::zero();
  flappy.flap_period = 2 * kMillisecond;
  flappy.flap_down = 500 * kMicrosecond;
  flappy.flap_jitter = 0.5;
  config.device_fault_plans = {flappy, disabled_plan()};
  FleetResult result = FleetService(config).run();
  const FleetReport& r = result.report;

  // ~5 cycles in a 10ms window: the device went down repeatedly and came
  // back to do real work.
  EXPECT_GE(r.devices[0].lifecycle_downs, 2u);
  EXPECT_GT(r.devices[0].report.completed, 0u);
  check_chaos_conservation(result);
}

TEST(FleetChaosTest, DegradePlanThrottlesCopiesFromDegradeTime) {
  FleetConfig config = chaos_fleet(2);
  fault::FaultPlan derated = fault::FaultPlan::zero();
  derated.degrade_at = 2 * kMillisecond;
  derated.degrade_copy_factor = 3.0;
  config.device_fault_plans = {derated, disabled_plan()};
  FleetResult result = FleetService(config).run();

  // Degradation is not a down state: the device keeps serving, but its
  // copies run slower (surfaced through the throttle fault channel).
  EXPECT_EQ(result.report.devices[0].lifecycle_downs, 0u);
  EXPECT_GT(result.devices[0].fault_stats.throttled_copies, 0u);
  EXPECT_GT(result.report.devices[0].report.completed, 0u);
  check_chaos_conservation(result);
}

TEST(FleetChaosTest, HedgingRacesStragglersAndConserves) {
  FleetConfig config = chaos_fleet(3);
  config.hedging = true;
  config.hedge_threshold = 1.5;
  config.hedge_min_samples = 2;
  // Device 0's copies stall often: its jobs straggle and deadline-less
  // completions give the hedge a clear win to take.
  fault::FaultPlan laggy = fault::FaultPlan::zero();
  laggy.copy_stall_rate = 0.8;
  laggy.copy_stall_ns = 2 * kMillisecond;
  config.device_fault_plans = {laggy, disabled_plan(), disabled_plan()};
  FleetResult result = FleetService(config).run();
  const FleetReport& r = result.report;

  EXPECT_TRUE(r.fault_domains);
  EXPECT_GT(r.hedges_launched, 0u);
  EXPECT_EQ(r.hedges_launched,
            r.devices[0].hedges_run + r.devices[1].hedges_run +
                r.devices[2].hedges_run);
  // Every hedged job resolved exactly one way: the loser was cancelled
  // (or the race never finished two-sided because one side was cancelled
  // by something else first).
  EXPECT_LE(r.hedge_wins, r.hedges_launched);
  EXPECT_LE(r.hedges_cancelled, r.attempts_cancelled);
  check_chaos_conservation(result);
}

TEST(FleetChaosTest, HedgingOffIsByteIdenticalToBaseline) {
  // The hedging knobs are inert unless hedging is on: threshold/samples
  // changes must not move a single byte of the report.
  FleetConfig baseline = chaos_fleet(4);
  FleetConfig tuned = chaos_fleet(4);
  tuned.hedging = false;
  tuned.hedge_threshold = 9.75;
  tuned.hedge_min_samples = 1;
  tuned.failover_budget = 0;  // also inert without lifecycle faults
  const std::string a = fleet_report_json(FleetService(baseline).run().report);
  const std::string b = fleet_report_json(FleetService(tuned).run().report);
  EXPECT_EQ(a, b);
}

TEST(FleetChaosTest, DisabledPerDevicePlansAreInert) {
  // An all-disabled plan list is the same as no plan list at all.
  FleetConfig baseline = chaos_fleet(2);
  FleetConfig plans = chaos_fleet(2);
  plans.device_fault_plans = {disabled_plan(), disabled_plan()};
  EXPECT_FALSE(plans.fault_domains_active());
  const std::string a = fleet_report_json(FleetService(baseline).run().report);
  const std::string b = fleet_report_json(FleetService(plans).run().report);
  EXPECT_EQ(a, b);
}

TEST(FleetChaosTest, CrashRunsAreByteIdenticalAcrossRuns) {
  FleetConfig config = chaos_fleet(3);
  config.hedging = true;
  config.hedge_threshold = 2.0;
  config.device_fault_plans = {crash_plan(3 * kMillisecond), disabled_plan(),
                               crash_plan(7 * kMillisecond)};
  const std::string a = fleet_report_json(FleetService(config).run().report);
  const std::string b = fleet_report_json(FleetService(config).run().report);
  EXPECT_EQ(a, b);
}

TEST(FleetChaosTest, ExhaustedJobsNeverDispatchedAreSpanFree) {
  FleetConfig config = chaos_fleet(2);
  config.failover_budget = 0;
  config.base.collect_metrics = true;
  config.device_fault_plans = {crash_plan(3 * kMillisecond), disabled_plan()};
  FleetResult result = FleetService(config).run();

  for (std::size_t i = 0; i < result.jobs.size(); ++i) {
    const serve::JobRecord& job = result.jobs[i];
    if (job.state != serve::JobState::ShedFailoverExhausted) continue;
    bool dispatched = false;
    for (const serve::JobEvent& e : result.lifecycle->events(job.job_id)) {
      if (e.kind == serve::JobEventKind::Dispatched) dispatched = true;
    }
    if (dispatched) continue;  // cancelled attempts legitimately own spans
    for (const FleetDeviceResult& dev : result.devices) {
      for (const trace::Span& span : dev.trace->spans()) {
        EXPECT_NE(span.app_id, job.job_id)
            << "undispatched exhausted job owns a span";
      }
    }
  }
  check_chaos_conservation(result);
}

TEST(FleetChaosTest, HalfOpenProbeStolenByPeerDoesNotDoubleCount) {
  // Breaker/steal interaction: device 0 trips its health breaker (poisoned
  // launches), its queue rebalances, and while it is open an idle peer may
  // steal the very job a half-open probe would dispatch. Conservation and
  // owner uniqueness must survive that race.
  FleetConfig config = chaos_fleet(2);
  config.work_stealing = true;
  config.device_breaker_enabled = true;
  config.device_breaker.failure_threshold = 2;
  config.device_breaker.cooldown = 500 * kMicrosecond;
  fault::FaultPlan flaky = fault::FaultPlan::zero();
  flaky.launch_failure_rate = 0.9;
  flaky.poison_app = 0;  // plus one guaranteed quarantine
  config.device_fault_plans = {flaky, disabled_plan()};
  config.base.retry.max_attempts = 2;
  FleetResult result = FleetService(config).run();
  const FleetReport& r = result.report;

  EXPECT_GT(r.device_breaker_trips, 0u);
  check_chaos_conservation(result);
  // Each job is accounted by exactly one device: per-device arrived sums
  // match distinct owners.
  std::vector<std::uint64_t> owned(r.num_devices, 0);
  for (std::size_t i = 0; i < result.jobs.size(); ++i) {
    if (result.owners[i] >= 0) {
      ++owned[static_cast<std::size_t>(result.owners[i])];
    }
  }
  for (std::size_t d = 0; d < r.num_devices; ++d) {
    EXPECT_EQ(owned[d], r.devices[d].report.arrived) << "device " << d;
  }
}

TEST(FleetChaosTest, ValidateRejectsBadFaultDomainConfigs) {
  FleetConfig config = chaos_fleet(2);
  config.device_fault_plans = {disabled_plan()};  // 1 plan, 2 devices
  EXPECT_THROW(config.validate(), hq::Error);

  config = chaos_fleet(2);
  config.failover_budget = -1;
  EXPECT_THROW(config.validate(), hq::Error);

  config = chaos_fleet(2);
  config.hedge_threshold = 0;
  EXPECT_THROW(config.validate(), hq::Error);

  config = chaos_fleet(2);
  config.hedge_min_samples = 0;
  EXPECT_THROW(config.validate(), hq::Error);
}

TEST(FleetChaosTest, GoodputDegradesWithEarlierCrash) {
  // The crashed-at-T property the demo plots: the earlier the crash, the
  // less goodput the fleet retains (monotone within tolerance).
  std::vector<double> goodput;
  for (const TimeNs at : {2 * kMillisecond, 5 * kMillisecond,
                          8 * kMillisecond}) {
    FleetConfig config = chaos_fleet(2);
    config.base.mean_interarrival = 60 * kMicrosecond;  // keep both busy
    config.device_fault_plans = {crash_plan(at), disabled_plan()};
    goodput.push_back(FleetService(config).run().report.goodput_per_sec);
  }
  EXPECT_LT(goodput[0], goodput[2]);
}

}  // namespace
}  // namespace hq::fleet
