// Error type and invariant-checking macros.
//
// HQ_CHECK is used for conditions that indicate a programming error in this
// library or in client code (contract violations); it throws hq::Error so
// tests can assert on misuse. Simulation-model errors (e.g. device
// out-of-memory) are reported through module-specific status enums instead.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace hq {

/// Exception thrown on contract violations detected by HQ_CHECK.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {

[[noreturn]] inline void throw_check_failure(const char* expr, const char* file,
                                             int line, const std::string& msg) {
  std::ostringstream os;
  os << "HQ_CHECK failed: " << expr << " at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw Error(os.str());
}

}  // namespace detail
}  // namespace hq

/// Always-on contract check; throws hq::Error with location info on failure.
#define HQ_CHECK(cond)                                                      \
  do {                                                                      \
    if (!(cond)) {                                                          \
      ::hq::detail::throw_check_failure(#cond, __FILE__, __LINE__, "");     \
    }                                                                       \
  } while (false)

/// Contract check with a streamed explanatory message.
#define HQ_CHECK_MSG(cond, msg_expr)                                        \
  do {                                                                      \
    if (!(cond)) {                                                          \
      std::ostringstream hq_check_os;                                       \
      hq_check_os << msg_expr;                                              \
      ::hq::detail::throw_check_failure(#cond, __FILE__, __LINE__,          \
                                        hq_check_os.str());                 \
    }                                                                       \
  } while (false)
