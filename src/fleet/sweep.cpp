#include "fleet/sweep.hpp"

#include <bit>
#include <fstream>
#include <mutex>
#include <sstream>

#include "common/check.hpp"
#include "common/hash.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "exec/journal.hpp"
#include "exec/parallel.hpp"
#include "fault/fault.hpp"
#include "obs/report.hpp"

namespace hq::fleet {
namespace {

constexpr const char* kMagic = "hq-fleet-journal";
constexpr const char* kVersion = "v1";

namespace jio = exec::journal_io;

}  // namespace

std::string FleetSweepPoint::label() const {
  std::ostringstream os;
  os << "n=" << fleet_size << " placement=" << placement_policy_name(placement);
  return os.str();
}

std::vector<FleetSweepPoint> expand_fleet_sweep(const FleetSweepGrid& grid) {
  HQ_CHECK_MSG(!grid.fleet_sizes.empty() && !grid.placements.empty(),
               "every fleet sweep axis needs at least one value");
  for (const std::size_t n : grid.fleet_sizes) {
    HQ_CHECK_MSG(n >= 1, "fleet size must be positive");
  }
  std::vector<FleetSweepPoint> points;
  for (const std::size_t n : grid.fleet_sizes) {
    for (const PlacementPolicy policy : grid.placements) {
      FleetSweepPoint p;
      p.index = points.size();
      p.fleet_size = n;
      p.placement = policy;
      points.push_back(p);
    }
  }
  return points;
}

FleetConfig apply_fleet_point(const FleetSweepGrid& grid,
                              const FleetSweepPoint& point) {
  FleetConfig config = grid.base;
  config.placement = point.placement;
  const std::vector<gpu::DeviceSpec> specs = grid.base.device_specs();
  config.devices.resize(point.fleet_size);
  for (std::size_t d = 0; d < point.fleet_size; ++d) {
    config.devices[d] = specs[d % specs.size()];
  }
  return config;
}

FleetSweepOutcome run_fleet_point(const FleetSweepGrid& grid,
                                  const FleetSweepPoint& point) {
  FleetService service(apply_fleet_point(grid, point));
  const FleetResult result = service.run();
  const FleetReport& r = result.report;

  FleetSweepOutcome o;
  o.point = point;
  o.arrived = r.arrived;
  o.completed_ok = r.completed_ok;
  o.completed = r.completed;
  o.shed = r.shed_queue_full + r.shed_breaker + r.shed_no_device;
  o.requeued = r.requeued;
  o.stolen = r.stolen;
  o.goodput_per_sec = r.goodput_per_sec;
  o.throughput_per_sec = r.throughput_per_sec;
  o.deadline_miss_ratio = r.deadline_miss_ratio;
  o.energy = r.energy;
  o.total_time = static_cast<std::uint64_t>(r.total_time);
  o.report_digest = fleet_report_digest(r);
  return o;
}

std::uint64_t fleet_sweep_grid_key(const FleetSweepGrid& grid,
                                   std::span<const FleetSweepPoint> points) {
  Fnv1a64 h;
  const auto mix_double = [&h](double v) {
    h.mix_u64(std::bit_cast<std::uint64_t>(v));
  };
  const auto mix_bool = [&h](bool v) { h.mix_u64(v ? 1 : 0); };

  h.mix_string(kMagic);
  h.mix_u64(points.size());
  for (const FleetSweepPoint& p : points) h.mix_string(p.label());

  // Every result-affecting piece of the base fleet config must be mixed in:
  // a key collision between two configs would let --resume silently splice
  // cached outcomes from one fleet shape into the other's report. Placement
  // and fleet size are per-point coordinates (already in the labels above);
  // everything else is fingerprinted here, starting with the resolved device
  // roster the points draw from cyclically.
  const std::vector<gpu::DeviceSpec> specs = grid.base.device_specs();
  h.mix_u64(specs.size());
  for (const gpu::DeviceSpec& spec : specs) jio::mix_device_spec(h, spec);

  // Fleet-level knobs.
  mix_double(grid.base.copy_penalty);
  mix_bool(grid.base.work_stealing);
  mix_bool(grid.base.device_breaker_enabled);
  h.mix_i64(grid.base.device_breaker.failure_threshold);
  h.mix_u64(grid.base.device_breaker.cooldown);

  // The shared per-device serving config.
  const serve::ServiceConfig& base = grid.base.base;
  jio::mix_device_spec(h, base.device);
  h.mix_i64(base.num_streams);
  mix_bool(base.memory_sync);
  mix_bool(base.functional);
  h.mix_u64(base.window);
  h.mix_u64(base.mean_interarrival);
  h.mix_u64(base.classes.size());
  for (const serve::ClassSpec& c : base.classes) {
    h.mix_string(c.item.type_name);
    h.mix_i64(c.priority);
  }
  h.mix_u64(base.seed);
  h.mix_u64(base.arrivals.size());
  for (const serve::Arrival& a : base.arrivals) {
    h.mix_u64(static_cast<std::uint64_t>(a.at));
    h.mix_u64(a.klass);
  }
  h.mix_u64(base.queue_cap);
  h.mix_u64(base.max_inflight);
  h.mix_string(serve::shed_policy_name(base.shed_policy));
  h.mix_u64(base.deadline);
  mix_bool(base.expire_queued);
  mix_bool(base.controller.enabled);
  mix_double(base.controller.engage_stretch);
  mix_double(base.controller.release_stretch);
  mix_double(base.controller.alpha);
  h.mix_u64(base.controller.min_samples);
  h.mix_u64(base.controller.min_dwell);
  mix_bool(base.breaker_enabled);
  h.mix_i64(base.breaker.failure_threshold);
  h.mix_u64(base.breaker.cooldown);
  h.mix_string(fault::fault_plan_to_string(base.fault_plan));
  // Fleet fault domains: per-device plans and failover/hedging knobs change
  // outcomes, so resuming across a chaos-config edit must miss the cache.
  h.mix_u64(grid.base.device_fault_plans.size());
  for (const fault::FaultPlan& plan : grid.base.device_fault_plans) {
    h.mix_string(fault::fault_plan_to_string(plan));
  }
  h.mix_i64(grid.base.failover_budget);
  mix_bool(grid.base.hedging);
  mix_double(grid.base.hedge_threshold);
  h.mix_u64(grid.base.hedge_min_samples);
  // Integrity pipeline: the policy and its knobs change outcomes (SDC plan
  // fields are already covered by the fault-plan strings above).
  h.mix_u64(static_cast<std::uint64_t>(grid.base.integrity));
  mix_double(grid.base.spotcheck_rate);
  mix_double(grid.base.sdc_blocklist_threshold);
  mix_double(grid.base.sdc_score_alpha);
  h.mix_i64(base.retry.max_attempts);
  h.mix_u64(base.retry.base_backoff);
  mix_double(base.retry.multiplier);
  h.mix_u64(base.retry.max_backoff);
  mix_bool(base.check_invariants);
  return h.value();
}

std::string fleet_journal_header_line(std::uint64_t grid_key,
                                      std::size_t total_points) {
  std::ostringstream os;
  os << kMagic << " version=" << kVersion << " grid=" << jio::hex(grid_key)
     << " points=" << total_points << " end";
  return os.str();
}

std::string fleet_journal_outcome_line(const FleetSweepOutcome& o) {
  std::ostringstream os;
  os << "point index=" << o.point.index << " arrived=" << o.arrived
     << " ok=" << o.completed_ok << " done=" << o.completed
     << " shed=" << o.shed << " requeued=" << o.requeued
     << " stolen=" << o.stolen
     << " goodput=" << obs::format_double(o.goodput_per_sec)
     << " tput=" << obs::format_double(o.throughput_per_sec)
     << " miss=" << obs::format_double(o.deadline_miss_ratio)
     << " energy=" << obs::format_double(o.energy) << " total=" << o.total_time
     << " digest=" << jio::hex(o.report_digest) << " end";
  return os.str();
}

std::optional<FleetSweepOutcome> parse_fleet_journal_outcome(
    const std::string& line, std::span<const FleetSweepPoint> points) {
  const auto fields = jio::fields_of(line, "point");
  if (!fields) return std::nullopt;
  std::uint64_t index = 0;
  if (!jio::get_u64(*fields, "index", &index) || index >= points.size()) {
    return std::nullopt;
  }
  FleetSweepOutcome o;
  o.point = points[index];
  const bool ok =
      jio::get_u64(*fields, "arrived", &o.arrived) &&
      jio::get_u64(*fields, "ok", &o.completed_ok) &&
      jio::get_u64(*fields, "done", &o.completed) &&
      jio::get_u64(*fields, "shed", &o.shed) &&
      jio::get_u64(*fields, "requeued", &o.requeued) &&
      jio::get_u64(*fields, "stolen", &o.stolen) &&
      jio::get_double(*fields, "goodput", &o.goodput_per_sec) &&
      jio::get_double(*fields, "tput", &o.throughput_per_sec) &&
      jio::get_double(*fields, "miss", &o.deadline_miss_ratio) &&
      jio::get_double(*fields, "energy", &o.energy) &&
      jio::get_u64(*fields, "total", &o.total_time) &&
      jio::get_u64(*fields, "digest", &o.report_digest, 16);
  if (!ok) return std::nullopt;
  return o;
}

std::size_t load_fleet_journal(
    std::istream& in, std::uint64_t grid_key,
    std::span<const FleetSweepPoint> points,
    std::vector<std::optional<FleetSweepOutcome>>* cached, bool* header_read) {
  HQ_CHECK(cached != nullptr);
  if (header_read != nullptr) *header_read = false;
  cached->resize(points.size());
  std::string line;
  if (!std::getline(in, line)) return 0;  // empty file = fresh journal
  const auto header = jio::fields_of(line, kMagic);
  HQ_CHECK_MSG(header.has_value(),
               "fleet journal: unrecognized or torn header line");
  const auto version = header->find("version");
  HQ_CHECK_MSG(version != header->end() && version->second == kVersion,
               "fleet journal: unsupported version '"
                   << (version == header->end() ? "" : version->second)
                   << "' (expected " << kVersion << ")");
  std::uint64_t key = 0;
  std::uint64_t total = 0;
  HQ_CHECK_MSG(jio::get_u64(*header, "grid", &key, 16) &&
                   jio::get_u64(*header, "points", &total),
               "fleet journal: malformed header line");
  HQ_CHECK_MSG(key == grid_key && total == points.size(),
               "fleet journal: grid mismatch (journal grid="
                   << jio::hex(key) << " points=" << total << ", sweep grid="
                   << jio::hex(grid_key) << " points=" << points.size()
                   << ") — refusing to resume a different fleet sweep");
  if (header_read != nullptr) *header_read = true;
  std::size_t loaded = 0;
  while (std::getline(in, line)) {
    auto outcome = parse_fleet_journal_outcome(line, points);
    if (!outcome) continue;  // torn trailing line after a crash
    auto& slot = (*cached)[outcome->point.index];
    if (!slot) ++loaded;
    slot = std::move(*outcome);
  }
  return loaded;
}

std::vector<FleetSweepOutcome> run_fleet_sweep(
    const FleetSweepGrid& grid, const FleetSweepOptions& options) {
  HQ_CHECK_MSG(options.jobs >= 0, "negative job count");
  const int jobs =
      options.jobs == 0 ? exec::ThreadPool::hardware_jobs() : options.jobs;

  const std::vector<FleetSweepPoint> points = expand_fleet_sweep(grid);

  // Crash-safe checkpointing, identical in structure to the harness sweeps
  // (exec/sweep.cpp): replay finished points on --resume, append each newly
  // finished point under a mutex, keep the journal append-only.
  std::vector<std::optional<FleetSweepOutcome>> cached(points.size());
  std::ofstream journal;
  std::mutex journal_mutex;
  if (!options.journal_path.empty()) {
    const std::uint64_t grid_key = fleet_sweep_grid_key(grid, points);
    bool has_header = false;
    if (options.resume) {
      std::ifstream in(options.journal_path);
      if (in) load_fleet_journal(in, grid_key, points, &cached, &has_header);
    }
    journal.open(options.journal_path,
                 has_header ? std::ios::app : std::ios::trunc);
    HQ_CHECK_MSG(journal.is_open(), "cannot open fleet journal '"
                                        << options.journal_path << "'");
    if (!has_header) {
      journal << fleet_journal_header_line(grid_key, points.size()) << '\n'
              << std::flush;
    }
  }

  const auto run_one = [&](std::size_t i) {
    if (cached[i]) return *cached[i];
    FleetSweepOutcome o = run_fleet_point(grid, points[i]);
    if (journal.is_open()) {
      const std::lock_guard<std::mutex> lock(journal_mutex);
      journal << fleet_journal_outcome_line(o) << '\n' << std::flush;
    }
    return o;
  };
  if (jobs <= 1) {
    return exec::parallel_map(nullptr, points.size(), run_one);
  }
  exec::ThreadPool pool(jobs);
  return exec::parallel_map_batched(
      &pool, points.size(),
      exec::default_batch_size(jobs, points.size()), run_one);
}

std::uint64_t fleet_combined_digest(
    std::span<const FleetSweepOutcome> outcomes) {
  Fnv1a64 h;
  h.mix_u64(outcomes.size());
  for (const FleetSweepOutcome& o : outcomes) {
    h.mix_u64(o.point.index);
    h.mix_u64(o.report_digest);
    h.mix_u64(o.arrived);
    h.mix_u64(o.completed_ok);
  }
  return h.value();
}

std::string render_fleet_sweep_report(
    std::span<const FleetSweepOutcome> outcomes) {
  TextTable table;
  table.set_header({"#", "n", "placement", "arrived", "ok", "shed", "requeued",
                    "stolen", "goodput/s", "miss", "digest"});
  for (const FleetSweepOutcome& o : outcomes) {
    std::ostringstream digest;
    digest << std::hex << o.report_digest;
    table.add_row({std::to_string(o.point.index),
                   std::to_string(o.point.fleet_size),
                   placement_policy_name(o.point.placement),
                   std::to_string(o.arrived), std::to_string(o.completed_ok),
                   std::to_string(o.shed), std::to_string(o.requeued),
                   std::to_string(o.stolen), format_fixed(o.goodput_per_sec, 1),
                   format_fixed(o.deadline_miss_ratio, 3), digest.str()});
  }
  std::ostringstream os;
  os << table.render();
  os << "runs: " << outcomes.size();
  std::ostringstream digest;
  digest << std::hex << fleet_combined_digest(outcomes);
  os << "\ncombined digest: 0x" << digest.str() << "\n";
  return os.str();
}

}  // namespace hq::fleet
