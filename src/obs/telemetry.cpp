#include "obs/telemetry.hpp"

#include <algorithm>
#include <map>

namespace hq::obs {

namespace {

/// Queue-wait buckets: 1us .. 1s in decades, in nanoseconds. Copy waits in
/// the paper's regime (Fig. 6) span microseconds (uncontended) to hundreds
/// of milliseconds (32-app interleaving), so decades resolve the spread.
std::vector<double> wait_bounds() {
  return {1e3, 1e4, 1e5, 1e6, 1e7, 1e8, 1e9};
}

}  // namespace

TelemetryObserver::TelemetryObserver(const gpu::DeviceSpec& spec)
    : spec_(spec) {
  // Register every metric up front so the export order (registration order)
  // is fixed by construction, independent of which events a run produces.
  registry_.counter("ops_submitted_kernel", "kernel launches submitted");
  registry_.counter("ops_submitted_copy", "memory copies submitted");
  registry_.counter("ops_submitted_marker", "markers/events submitted");
  registry_.counter("ops_completed", "operations retired from streams");
  registry_.counter("copies_htod", "host-to-device transfers enqueued");
  registry_.counter("copies_dtoh", "device-to-host transfers enqueued");
  registry_.counter("bytes_htod", "host-to-device bytes enqueued");
  registry_.counter("bytes_dtoh", "device-to-host bytes enqueued");
  registry_.counter("kernels_completed", "kernels fully retired");
  registry_.counter("blocks_placed", "thread blocks placed on SMXs");
  registry_.histogram("copy_queue_wait_htod_ns", wait_bounds(),
                      "HtoD enqueue-to-service-begin wait (ns)");
  registry_.histogram("copy_queue_wait_dtoh_ns", wait_bounds(),
                      "DtoH enqueue-to-service-begin wait (ns)");
  registry_.series("copy_queue_depth_htod",
                   "HtoD engine queue depth incl. in-service transaction");
  registry_.series("copy_queue_depth_dtoh",
                   "DtoH engine queue depth incl. in-service transaction");
  registry_.series("resident_blocks",
                   "device-wide resident thread blocks (cap 208 on K20)");
  registry_.series("thread_occupancy",
                   "resident threads / device maximum, in [0,1]");
  registry_.series("power_watts",
                   "instantaneous board power, piecewise constant");
  registry_.gauge("energy_joules", "energy integral over the whole run");
  // Fault-injection accounting (all zero without a fault plan; registered
  // unconditionally so the export schema never depends on the plan).
  registry_.counter("faults_copy_stall", "injected copy-engine stalls");
  registry_.counter("faults_copy_slowdown", "injected per-transfer slowdowns");
  registry_.counter("faults_copy_throttle",
                    "copies stretched by a power-cap throttle window");
  registry_.counter("faults_launch_failure",
                    "transient kernel-launch submission failures");
  registry_.counter("faults_launch_abort",
                    "launches abandoned after exhausting retries");
  registry_.counter("faults_host_alloc",
                    "injected pinned host-allocation failures");
  registry_.counter("fault_penalty_ns",
                    "total extra service time injected (ns)");
  registry_.series("fault_events",
                   "cumulative injected fault events over virtual time");
}

void TelemetryObserver::on_op_submitted(TimeNs /*now*/, gpu::OpId /*op*/,
                                        gpu::StreamId /*stream*/,
                                        gpu::ObservedOp kind) {
  ++events_observed_;
  switch (kind) {
    case gpu::ObservedOp::Kernel:
      registry_.counter("ops_submitted_kernel").add();
      break;
    case gpu::ObservedOp::Copy:
      registry_.counter("ops_submitted_copy").add();
      break;
    case gpu::ObservedOp::Marker:
      registry_.counter("ops_submitted_marker").add();
      break;
  }
}

void TelemetryObserver::on_op_completed(TimeNs /*now*/, gpu::OpId /*op*/,
                                        gpu::StreamId /*stream*/) {
  ++events_observed_;
  registry_.counter("ops_completed").add();
}

void TelemetryObserver::on_copy_enqueued(TimeNs now, gpu::CopyDirection dir,
                                         gpu::OpId op,
                                         gpu::StreamId /*stream*/,
                                         std::int32_t /*app*/, Bytes bytes) {
  ++events_observed_;
  const bool htod = dir == gpu::CopyDirection::HtoD;
  registry_.counter(htod ? "copies_htod" : "copies_dtoh").add();
  registry_.counter(htod ? "bytes_htod" : "bytes_dtoh").add(bytes);
  enqueue_time_.emplace(op, now);
  auto& depth = queue_depth_[static_cast<int>(dir)];
  ++depth;
  registry_.series(htod ? "copy_queue_depth_htod" : "copy_queue_depth_dtoh")
      .sample(now, static_cast<double>(depth));
}

void TelemetryObserver::on_copy_served(TimeNs now, gpu::CopyDirection dir,
                                       gpu::OpId op, std::int32_t app,
                                       TimeNs begin, TimeNs end, Bytes bytes) {
  ++events_observed_;
  const bool htod = dir == gpu::CopyDirection::HtoD;
  if (const auto it = enqueue_time_.find(op); it != enqueue_time_.end()) {
    registry_
        .histogram(htod ? "copy_queue_wait_htod_ns" : "copy_queue_wait_dtoh_ns",
                   wait_bounds())
        .record(static_cast<double>(begin - it->second));
    enqueue_time_.erase(it);
  }
  auto& depth = queue_depth_[static_cast<int>(dir)];
  --depth;
  registry_.series(htod ? "copy_queue_depth_htod" : "copy_queue_depth_dtoh")
      .sample(now, static_cast<double>(depth));
  if (htod) htod_served_.push_back(CopyRec{app, begin, end, bytes});
}

void TelemetryObserver::on_blocks_placed(TimeNs now, gpu::OpId /*op*/,
                                         int /*smx*/, int count,
                                         const gpu::BlockDemand& demand) {
  ++events_observed_;
  registry_.counter("blocks_placed").add(static_cast<std::uint64_t>(count));
  resident_blocks_ += count;
  resident_threads_ += static_cast<std::int64_t>(count) * demand.threads;
  registry_.series("resident_blocks")
      .sample(now, static_cast<double>(resident_blocks_));
  registry_.series("thread_occupancy")
      .sample(now, static_cast<double>(resident_threads_) /
                       spec_.max_resident_threads());
}

void TelemetryObserver::on_blocks_released(TimeNs now, gpu::OpId /*op*/,
                                           int /*smx*/, int count,
                                           const gpu::BlockDemand& demand) {
  ++events_observed_;
  resident_blocks_ -= count;
  resident_threads_ -= static_cast<std::int64_t>(count) * demand.threads;
  registry_.series("resident_blocks")
      .sample(now, static_cast<double>(resident_blocks_));
  registry_.series("thread_occupancy")
      .sample(now, static_cast<double>(resident_threads_) /
                       spec_.max_resident_threads());
}

void TelemetryObserver::on_kernel_completed(TimeNs /*now*/,
                                            const gpu::KernelExec& /*exec*/) {
  ++events_observed_;
  registry_.counter("kernels_completed").add();
}

void TelemetryObserver::on_power_integrated(TimeNs now, Watts power,
                                            double /*occupancy*/) {
  ++events_observed_;
  // `power` was in effect over [power_segment_begin_, now]: sample it at the
  // segment *begin* so the series is the true piecewise-constant trajectory.
  registry_.series("power_watts")
      .sample(power_segment_begin_, static_cast<double>(power));
  energy_j_ += power * static_cast<double>(now - power_segment_begin_) * 1e-9;
  power_segment_begin_ = now;
}

void TelemetryObserver::on_fault_injected(TimeNs now, gpu::ObservedFault kind,
                                          std::uint64_t /*key*/,
                                          DurationNs penalty) {
  ++events_observed_;
  switch (kind) {
    case gpu::ObservedFault::CopyStall:
      registry_.counter("faults_copy_stall").add();
      break;
    case gpu::ObservedFault::CopySlowdown:
      registry_.counter("faults_copy_slowdown").add();
      break;
    case gpu::ObservedFault::CopyThrottle:
      registry_.counter("faults_copy_throttle").add();
      break;
    case gpu::ObservedFault::LaunchFailure:
      registry_.counter("faults_launch_failure").add();
      break;
    case gpu::ObservedFault::LaunchAbort:
      registry_.counter("faults_launch_abort").add();
      break;
    case gpu::ObservedFault::HostAllocFailure:
      registry_.counter("faults_host_alloc").add();
      break;
    case gpu::ObservedFault::SdcCopyCorruption:
      registry_.counter("faults_sdc_copy").add();
      break;
    case gpu::ObservedFault::SdcKernelCorruption:
      registry_.counter("faults_sdc_kernel").add();
      break;
  }
  registry_.counter("fault_penalty_ns").add(penalty);
  ++fault_events_seen_;
  registry_.series("fault_events")
      .sample(now, static_cast<double>(fault_events_seen_));
}

void TelemetryObserver::finalize() {
  if (finalized_) return;
  finalized_ = true;
  registry_.gauge("energy_joules").set(energy_j_);

  // Service completions arrive in begin order (FIFO engine), but re-sorting
  // keeps the attribution correct even for synthetic event streams.
  std::stable_sort(htod_served_.begin(), htod_served_.end(),
                   [](const CopyRec& a, const CopyRec& b) {
                     return a.begin < b.begin;
                   });

  std::map<std::int32_t, AppAttribution> by_app;
  for (const CopyRec& r : htod_served_) {
    if (r.app < 0) continue;
    auto [it, fresh] = by_app.try_emplace(r.app);
    AppAttribution& a = it->second;
    if (fresh) {
      a.app_id = r.app;
      a.htod_window_begin = r.begin;
      a.htod_window_end = r.end;
    } else {
      a.htod_window_begin = std::min(a.htod_window_begin, r.begin);
      a.htod_window_end = std::max(a.htod_window_end, r.end);
    }
    ++a.own_htod_count;
    a.own_htod_bytes += r.bytes;
  }

  attribution_.clear();
  attribution_.reserve(by_app.size());
  for (auto& [id, a] : by_app) {
    // FIFO service intervals never overlap each other, so sorting by begin
    // also sorts by end: binary-search the first record that can reach into
    // the window, then scan only while records still start inside it. Total
    // cost O(A log M + overlap), not O(A * M).
    const auto first = std::partition_point(
        htod_served_.begin(), htod_served_.end(),
        [&](const CopyRec& r) { return r.end <= a.htod_window_begin; });
    for (auto it = first;
         it != htod_served_.end() && it->begin < a.htod_window_end; ++it) {
      if (it->app == id || it->end <= a.htod_window_begin) continue;
      ++a.foreign_htod_count;
      a.foreign_htod_bytes += it->bytes;
    }
    attribution_.push_back(a);
  }
}

}  // namespace hq::obs
