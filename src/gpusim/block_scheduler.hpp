// Device-side thread-block scheduler implementing the LEFTOVER (lazy) policy.
//
// Dispatched kernels wait in dispatch order. Whenever resources free up, the
// scheduler places thread blocks of the *oldest* incompletely-placed kernel
// onto SMXs until a resource is exhausted; it never reorders kernels or skips
// ahead. This is the hardware behaviour the paper relies on (Section III-A):
// a kernel needing more blocks than fit simply executes in multiple waves,
// and leftover capacity in any wave is filled with blocks from the next
// kernels in dispatch order — which is how five kernels totalling more than
// 208 blocks end up co-resident in Figure 5.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <vector>

#include "gpusim/smx.hpp"
#include "gpusim/types.hpp"
#include "sim/simulator.hpp"

namespace hq::gpu {

class DeviceObserver;

/// Execution state of one dispatched kernel.
struct KernelExec {
  OpId op_id = 0;
  StreamId stream = 0;
  /// Stream priority (CUDA convention: lower value = higher priority, 0 =
  /// default). Affects the order pending kernels place blocks, without
  /// preempting resident blocks — the Kepler CC 3.5 semantics.
  int priority = 0;
  OpTag tag;
  KernelLaunch launch;
  BlockDemand demand;

  std::uint64_t blocks_total = 0;
  std::uint64_t blocks_to_place = 0;   ///< not yet assigned to an SMX
  std::uint64_t blocks_outstanding = 0;  ///< assigned, not yet completed

  TimeNs dispatch_time = 0;
  TimeNs first_block_time = 0;
  TimeNs complete_time = 0;
  TimeNs last_place_time = 0;
  /// Number of distinct placement instants (execution rounds / waves).
  int waves = 0;

  bool fully_placed() const { return blocks_to_place == 0; }
  bool complete() const { return fully_placed() && blocks_outstanding == 0; }
};

/// Packs thread blocks onto SMXs in dispatch order (LEFTOVER policy) and
/// schedules their completion in virtual time. Block completions are grouped
/// per (kernel, SMX, placement instant), so cost scales with waves rather
/// than with individual blocks.
class BlockScheduler {
 public:
  /// `pre_state_change` runs immediately before any occupancy mutation (used
  /// by the device's power/energy integrator); `on_kernel_complete` fires
  /// when a kernel's last block finishes.
  BlockScheduler(sim::Simulator& sim, const DeviceSpec& spec,
                 std::function<void()> pre_state_change,
                 std::function<void(const KernelExec&)> on_kernel_complete);

  /// Attaches (or detaches, with nullptr) an event observer. Normally set
  /// through Device::set_observer.
  void set_observer(DeviceObserver* observer) { observer_ = observer; }

  /// Fault injection for negative tests only: when enabled, the scheduler
  /// deliberately violates the LEFTOVER contract by servicing the second
  /// pending kernel ahead of the head. The hq_check invariant layer must
  /// catch this; never enable outside tests.
  void set_fault_skip_head(bool enabled) { fault_skip_head_ = enabled; }

  /// Accepts a kernel for execution; takes ownership. Placement is attempted
  /// immediately (same virtual instant).
  void dispatch(std::unique_ptr<KernelExec> exec);

  // --- occupancy introspection -------------------------------------------
  int resident_blocks() const { return resident_blocks_; }
  int resident_threads() const { return resident_threads_; }
  /// Fraction of the device's thread capacity currently occupied, in [0,1].
  /// Cached on mutation (bit-identical to recomputing the division) because
  /// the power integrator reads it on every state change.
  double thread_occupancy() const { return occupancy_cache_; }
  /// Kernels dispatched but not yet complete.
  std::size_t kernels_in_flight() const { return in_flight_; }
  const std::vector<Smx>& smxs() const { return smxs_; }

 private:
  /// `released_smx >= 0` is a capacity hint from on_blocks_complete: the
  /// only SMX whose fit could have improved since the last full scan. When
  /// the head kernel is known-blocked, one fit_count there decides the whole
  /// rescan — zero skips it, positive feeds place_blocks scan-free.
  void pump(int released_smx = -1);
  /// Places as many blocks of `exec` as currently fit; returns blocks placed.
  /// `known_smx >= 0` asserts the caller proved every other SMX fit is zero
  /// and that `known_fit` is the current fit there, skipping the full scan.
  std::uint64_t place_blocks(KernelExec& exec, int known_smx = -1,
                             int known_fit = 0);
  /// Places min(blocks_to_place, fit) blocks of `exec` onto `smx` and
  /// schedules their completion; returns the count placed.
  std::uint64_t place_on(KernelExec& exec, int smx, int fit);
  void on_blocks_complete(KernelExec* exec, int smx_index, int count);
  void update_occupancy_cache();

  sim::Simulator& sim_;
  const DeviceSpec& spec_;
  std::function<void()> pre_state_change_;
  std::function<void(const KernelExec&)> on_kernel_complete_;
  DeviceObserver* observer_ = nullptr;
  bool fault_skip_head_ = false;

  std::vector<Smx> smxs_;
  /// Kernels with unplaced blocks, in dispatch order (front = oldest).
  std::deque<KernelExec*> pending_;
  /// Owning store for all in-flight kernels.
  std::vector<std::unique_ptr<KernelExec>> owned_;
  std::size_t in_flight_ = 0;

  int resident_blocks_ = 0;
  int resident_threads_ = 0;
  double occupancy_cache_ = 0.0;
  /// Per-call scratch for place_blocks' one-scan placement (kept here so a
  /// saturated device does not allocate on every pump).
  std::vector<int> fit_scratch_;
  /// Set when place_blocks left the current head with blocks unplaced —
  /// which can only happen once every SMX fit has reached zero for its
  /// demand. Capacity only grows via releases, and each release pumps with
  /// its SMX as a hint, so the flag plus one fit_count on the hinted SMX
  /// fully determines the next placement without a scan. Cleared whenever
  /// the head is re-placed.
  KernelExec* blocked_head_ = nullptr;
  bool pumping_ = false;
  bool repump_ = false;
};

}  // namespace hq::gpu
