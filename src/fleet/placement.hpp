// Deterministic placement policies for the fleet serving layer
// (library hq_fleet).
//
// The ClusterScheduler (src/fleet/fleet.hpp) asks a Placer to pick the
// device for every arriving job. A policy sees only a per-device load
// snapshot — health, outstanding work, copy-engine queue depth — taken at
// the arrival instant, so decisions depend on nothing but simulator state
// and are bit-identical across runs and --jobs counts (the repository-wide
// determinism contract).
//
// Quarantined devices (health breaker rejecting work) are never picked by
// any policy; when no device is healthy the placer returns nullopt and the
// fleet sheds the job as JobState::ShedNoDevice.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "common/units.hpp"

namespace hq::fleet {

enum class PlacementPolicy : std::uint8_t {
  /// Cyclic over healthy devices, independent of load. The baseline.
  RoundRobin,
  /// Fewest outstanding jobs (queued + inflight); ties go to the lowest
  /// device index.
  LeastLoaded,
  /// Least outstanding + copy_penalty * copy-engine queue depth: devices
  /// with deep HtoD/DtoH queues are penalized, steering work away from DMA
  /// contention. Ties go to the lowest device index.
  CopyAware,
  /// Class k prefers device k mod N; when the preferred device is
  /// unhealthy the scan continues cyclically to the next healthy one, so
  /// the fallback is deterministic.
  ClassAffinity,
};

/// Canonical name used in CLI flags and reports ("round-robin",
/// "least-loaded", "copy-aware", "class-affinity").
const char* placement_policy_name(PlacementPolicy policy);

/// Inverse of placement_policy_name; nullopt on an unknown name.
std::optional<PlacementPolicy> parse_placement_policy(const std::string& name);

/// Every policy, in enum order — the sweep/fuzz iteration set.
std::vector<PlacementPolicy> all_placement_policies();

/// Load snapshot of one device at a placement decision.
struct DeviceLoad {
  /// False while the device's health breaker rejects new work.
  bool healthy = true;
  /// Queued + inflight jobs on the device.
  std::size_t outstanding = 0;
  /// Transactions waiting in or being served by the copy engines
  /// (HtoD + DtoH).
  std::size_t copy_depth = 0;
};

/// Stateful (round-robin cursor) but purely deterministic device picker.
class Placer {
 public:
  Placer(PlacementPolicy policy, double copy_penalty)
      : policy_(policy), copy_penalty_(copy_penalty) {}

  /// Picks a healthy device for a job of class `klass`, or nullopt when no
  /// device is healthy.
  std::optional<std::size_t> place(std::span<const DeviceLoad> loads,
                                   std::size_t klass);

  PlacementPolicy policy() const { return policy_; }

 private:
  PlacementPolicy policy_;
  double copy_penalty_;
  /// Next device the round-robin scan starts from.
  std::size_t rr_next_ = 0;
};

}  // namespace hq::fleet
