file(REMOVE_RECURSE
  "CMakeFiles/order_search.dir/order_search.cpp.o"
  "CMakeFiles/order_search.dir/order_search.cpp.o.d"
  "order_search"
  "order_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/order_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
