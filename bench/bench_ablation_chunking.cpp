// Ablation (ours) — transfer chunking (Pai et al. [8]) vs our batching
// (memory synchronization) vs the default behaviour.
//
// Chunking splits large transfers into many small ones to exploit copy-queue
// interleaving (good when a few large transfers block many small ones).
// The paper argues that for workloads with many *small* transfers the right
// move is the opposite: batch each application's transfers (the mutex)
// to eliminate interleaving. This ablation shows both effects on
// {gaussian, needle}.
#include <cstdio>

#include "bench/common.hpp"

int main() {
  using namespace hq;
  using namespace hq::bench;

  print_header("Ablation",
               "transfer chunking [8] vs pseudo-burst batching (ours), "
               "{gaussian, needle}, NA = NS = 32");

  const Pair pair{"gaussian", "needle"};
  struct Config {
    const char* name;
    bool memory_sync;
    Bytes chunk;
  };
  const Config configs[] = {
      {"default (1 transaction per buffer)", false, 0},
      {"chunked 64 KiB", false, 64 * kKiB},
      {"chunked 8 KiB", false, 8 * kKiB},
      {"memory sync (batched)", true, 0},
      {"memory sync + chunked 64 KiB", true, 64 * kKiB},
  };

  TextTable table;
  table.set_header({"configuration", "makespan", "mean Le (HtoD)",
                    "HtoD transactions"});
  for (const Config& config : configs) {
    const auto result = run_pair(pair, 32, 32, fw::Order::NaiveFifo,
                                 config.memory_sync, config.chunk);
    table.add_row(
        {config.name, format_duration(result.makespan),
         format_duration(static_cast<DurationNs>(
             fw::mean_htod_effective_latency(result.apps))),
         std::to_string(result.device_stats.copies_htod)});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("expected shape: chunking multiplies transactions and adds "
              "per-transaction overhead (the paper's workloads have many\n"
              "small transfers, so chunking does not pay); batching restores "
              "per-app latency to its uncontended value.\n");
  return 0;
}
