// Deterministic fault injection for the device and runtime models
// (library hq_fault).
//
// A FaultPlan is a declarative, seed-driven description of degraded-service
// conditions: copy-engine stalls and per-transfer slowdowns (ECC-retry
// style), transient kernel-launch failures surfaced as cudart error
// statuses, SMX offlining, pinned host-allocation failures, and power-cap
// throttle windows. The FaultInjector turns a plan into concrete decisions.
//
// Determinism contract: every decision is a pure function of
// (plan.seed, fault domain, operation key) hashed through FNV-1a — never of
// wall-clock time, thread identity, or allocation addresses — so the same
// plan + seed reproduces byte-identical runs at any --jobs count. A plan
// whose rates are all zero draws nothing and emits nothing: attaching the
// injector is then provably zero-perturbation (pinned golden digests and
// sweep metrics JSON stay bit-identical).
//
// Accounting contract: every injected fault fires
// DeviceObserver::on_fault_injected on the attached observer chain and
// increments FaultStats. The invariant checker cross-checks the two
// (InvariantChecker::finalize_faults), so faults can never be silently
// absorbed by the model.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "common/units.hpp"
#include "gpusim/device_spec.hpp"
#include "gpusim/observer.hpp"
#include "gpusim/types.hpp"

namespace hq::fault {

/// Declarative description of the faults to inject into one run. All rates
/// are probabilities in [0, 1] evaluated once per eligible operation.
struct FaultPlan {
  /// Plans are inert unless enabled; an enabled plan with zero rates is the
  /// zero-perturbation baseline used to prove the injector adds nothing.
  bool enabled = false;
  std::uint64_t seed = 0;

  // --- copy engines --------------------------------------------------------
  /// Probability that one DMA transaction stalls for copy_stall_ns.
  double copy_stall_rate = 0.0;
  DurationNs copy_stall_ns = 200 * kMicrosecond;
  /// Probability that one DMA transaction is served copy_slowdown_factor
  /// times slower (ECC-retry style degradation); factor >= 1.
  double copy_slowdown_rate = 0.0;
  double copy_slowdown_factor = 2.0;

  // --- kernel launches -----------------------------------------------------
  /// Probability that one launch-submission attempt fails transiently with
  /// Status::LaunchFailure. The failure count per launch is capped below
  /// the retry budget, so retried launches always eventually succeed and
  /// functional output digests match the fault-free run.
  double launch_failure_rate = 0.0;
  /// App id whose launches always fail: retries exhaust, the stream goes
  /// into fault state, and the harness quarantines the app (-1 = none).
  std::int32_t poison_app = -1;

  // --- allocations ---------------------------------------------------------
  /// Probability that one pinned host-allocation attempt fails with
  /// Status::OutOfMemory (the caller retries a bounded number of times).
  double host_alloc_failure_rate = 0.0;

  // --- compute degradation -------------------------------------------------
  /// Number of SMXs taken offline before the run (clamped to leave >= 1).
  int offline_smx = 0;

  // --- power-cap throttle windows ------------------------------------------
  /// While (now % throttle_period) < throttle_duration, copy service is
  /// stretched by throttle_factor (>= 1). 0 period/duration disables.
  DurationNs throttle_period = 0;
  DurationNs throttle_duration = 0;
  double throttle_factor = 1.0;

  // --- device lifecycle (fleet fault domains) ------------------------------
  /// Permanent crash: the device goes down at crash_at and never returns
  /// (0 = never). The fleet layer fails queued/running jobs over to
  /// surviving devices.
  TimeNs crash_at = 0;
  /// Flapping: the device is down for roughly flap_down at the start of
  /// every flap_period cycle (both > 0 to enable). Each cycle's actual down
  /// duration is drawn deterministically from (seed, cycle) and jittered by
  /// +-flap_jitter (a fraction in [0, 1]), so fleets of flapping devices
  /// stay decorrelated yet byte-reproducible.
  DurationNs flap_period = 0;
  DurationNs flap_down = 0;
  double flap_jitter = 0.0;
  /// Sustained degradation: from degrade_at on, every DMA transaction is
  /// served degrade_copy_factor (>= 1) times slower — a permanently derated
  /// copy clock. Counted and observed through the throttle fault channel.
  TimeNs degrade_at = 0;
  double degrade_copy_factor = 1.0;

  // --- silent data corruption (fleet integrity fault domain) ----------------
  /// Probability that one consumed result digest had its DtoH payload
  /// digest bit-flipped (a single flipped bit of the 64-bit digest).
  double sdc_copy_rate = 0.0;
  /// Probability that one kernel's functional output digest was corrupted
  /// (a full scrambled digest, not a single bit). When sdc_at > 0 the
  /// effective rate ramps linearly from 0 at sdc_at to the full rate at
  /// 2 * sdc_at (aging silicon: corruption sets in and worsens).
  double sdc_kernel_rate = 0.0;
  TimeNs sdc_at = 0;
  /// Stuck-at mode: from sdc_stuck_at on, EVERY consumed result digest is
  /// corrupted until the device is blocklisted (0 = never). Models a device
  /// that lies on every job.
  TimeNs sdc_stuck_at = 0;

  /// Enabled plan with every rate zero (the zero-perturbation baseline).
  static FaultPlan zero() {
    FaultPlan plan;
    plan.enabled = true;
    return plan;
  }

  /// True when any fault can actually fire.
  bool any_faults() const;
  /// True when a device-lifecycle fault (crash, flap, or sustained
  /// degradation) is configured; the fleet layer schedules down/up
  /// transitions for such plans.
  bool any_lifecycle() const;
  /// True when silent-data-corruption faults are configured; the fleet
  /// integrity pipeline draws per-result corruption for such plans.
  bool any_sdc() const;
};

/// Parses the compact `key=value[,key=value...]` plan syntax used by
/// `hqrun --fault-plan` (see fault_plan_keys() / EXPERIMENTS.md). The
/// keyword "zero" yields FaultPlan::zero(); "disabled" (or "none") yields
/// an inert disabled plan — used by per-device fault-plan files for
/// fault-free devices. Returns nullopt and fills *error on malformed
/// input.
std::optional<FaultPlan> parse_fault_plan(const std::string& text,
                                          std::string* error = nullptr);

/// Canonical `key=value,...` rendering; parse(to_string(p)) == p. Used for
/// reporting and for mixing the plan into the sweep-journal grid key.
std::string fault_plan_to_string(const FaultPlan& plan);

/// Deterministic silent-data-corruption decision for one consumed result
/// digest: returns 0 when the result is clean, or a nonzero XOR mask to
/// apply to the job's functional output digest. Pure function of
/// (plan.seed, now, job_key, sub) — the fleet integrity pipeline owns
/// counting and attribution (shard-level, not device-level), so the
/// invariant checker's per-device fault cross-count is unaffected.
/// Precedence: stuck-at (now >= sdc_stuck_at > 0) corrupts every result
/// with a scrambled mask; otherwise a copy-digest bit-flip is drawn at
/// sdc_copy_rate; otherwise a kernel-output scramble is drawn at
/// sdc_kernel_rate (ramped after sdc_at). `kind_out` (optional) receives
/// which SDC kind fired when the mask is nonzero.
std::uint64_t sdc_corruption_mask(const FaultPlan& plan, TimeNs now,
                                  std::uint64_t job_key, std::uint64_t sub,
                                  gpu::ObservedFault* kind_out = nullptr);

/// Counters for every fault the injector actually fired.
struct FaultStats {
  std::uint64_t copy_stalls = 0;
  DurationNs copy_stall_total_ns = 0;
  std::uint64_t copy_slowdowns = 0;
  std::uint64_t throttled_copies = 0;
  std::uint64_t launch_failures = 0;
  std::uint64_t launch_aborts = 0;
  std::uint64_t host_alloc_failures = 0;
  std::uint64_t sdc_copy_corruptions = 0;
  std::uint64_t sdc_kernel_corruptions = 0;

  /// Total number of injected fault events (matches the number of
  /// on_fault_injected callbacks fired).
  std::uint64_t total() const {
    return copy_stalls + copy_slowdowns + throttled_copies + launch_failures +
           launch_aborts + host_alloc_failures + sdc_copy_corruptions +
           sdc_kernel_corruptions;
  }
  /// Expected on_fault_injected count for one observed fault kind.
  std::uint64_t count_for(gpu::ObservedFault kind) const;
};

/// One application removed from the schedule by the recovery layer.
struct QuarantinedApp {
  std::int32_t app_id = -1;
  std::string type;    ///< application name, e.g. "gaussian"
  std::string reason;  ///< e.g. "launch-aborted", "allocation-failed: ..."
};

/// Graceful-degradation summary attached to every HarnessResult: which apps
/// were quarantined (the rest of the schedule still completed) and what the
/// injector actually fired.
struct DegradedReport {
  std::vector<QuarantinedApp> quarantined;
  FaultStats stats;

  bool degraded() const { return !quarantined.empty(); }
};

/// Turns a FaultPlan into deterministic per-operation decisions and fires
/// the corresponding observer events. One injector serves one run.
class FaultInjector {
 public:
  explicit FaultInjector(FaultPlan plan);

  const FaultPlan& plan() const { return plan_; }
  const FaultStats& stats() const { return stats_; }

  /// Observer chain that receives on_fault_injected (normally the same
  /// fanout the device reports to); nullptr disables event emission but
  /// stats are still counted.
  void set_observer(gpu::DeviceObserver* observer) { observer_ = observer; }

  /// Device spec with plan.offline_smx SMXs removed (at least 1 remains).
  gpu::DeviceSpec degraded(gpu::DeviceSpec spec) const;

  /// Extra service time for one DMA transaction (Device copy-fault hook).
  /// `base` is the unperturbed service time.
  DurationNs copy_service_penalty(TimeNs now, gpu::CopyDirection dir,
                                  gpu::OpId op, Bytes bytes, DurationNs base);

  /// Number of launch-submission attempts that fail before one succeeds,
  /// drawn once per launch. Capped at max_retries so the final attempt of a
  /// transient failure always succeeds; a poisoned app returns
  /// max_retries + 1 (every attempt fails, forcing a launch abort).
  int launch_failures_for(std::int32_t app_id, std::uint64_t op_key,
                          int max_retries) const;

  /// Records one rejected launch attempt / one exhausted retry budget.
  /// `app_id` attributes the event to an application instance (-1 when
  /// unattributed); the launch-fault hook receives it so recovery layers
  /// (e.g. the serving circuit breaker) can track failures per class.
  void note_launch_failure(TimeNs now, std::uint64_t op_key,
                           std::int32_t app_id = -1);
  void note_launch_abort(TimeNs now, std::uint64_t op_key,
                         std::int32_t app_id = -1);

  /// Called on every launch fault with (now, app_id, aborted). Purely
  /// observational: the hook must not mutate simulation state.
  using LaunchFaultHook =
      std::function<void(TimeNs, std::int32_t, bool aborted)>;
  void set_launch_fault_hook(LaunchFaultHook hook) {
    launch_fault_hook_ = std::move(hook);
  }

  /// True when pinned host allocation attempt `alloc_key` should fail.
  bool host_alloc_fails(TimeNs now, std::uint64_t alloc_key);

 private:
  /// Uniform draw in [0, 1) from (seed, domain, key, sub).
  double draw(std::uint64_t domain, std::uint64_t key,
              std::uint64_t sub = 0) const;
  void emit(TimeNs now, gpu::ObservedFault kind, std::uint64_t key,
            DurationNs penalty);

  FaultPlan plan_;
  FaultStats stats_;
  gpu::DeviceObserver* observer_ = nullptr;
  LaunchFaultHook launch_fault_hook_;
};

}  // namespace hq::fault
