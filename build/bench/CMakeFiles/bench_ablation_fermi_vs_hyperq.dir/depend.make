# Empty dependencies file for bench_ablation_fermi_vs_hyperq.
# This may be replaced when dependencies are built.
