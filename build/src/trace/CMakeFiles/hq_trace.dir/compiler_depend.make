# Empty compiler generated dependencies file for hq_trace.
# This may be replaced when dependencies are built.
