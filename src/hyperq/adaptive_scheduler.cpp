#include "hyperq/adaptive_scheduler.hpp"

#include "common/check.hpp"

namespace hq::fw {

AdaptiveScheduler::Outcome AdaptiveScheduler::optimize(
    std::span<const int> counts, const Evaluator& evaluate) {
  HQ_CHECK(evaluate != nullptr);
  HQ_CHECK_MSG(options_.evaluation_budget >= 5,
               "budget must cover the five canonical orders");

  Rng rng(options_.seed);
  Outcome outcome;

  // Phase 1: the paper's five canonical orders.
  bool first = true;
  for (Order order : kAllOrders) {
    auto schedule = make_schedule(order, counts, &rng);
    const double score = evaluate(schedule);
    ++outcome.evaluations;
    if (first || score < outcome.best_score) {
      outcome.best_score = score;
      outcome.best_schedule = schedule;
    }
    if (first || score < outcome.best_canonical_score) {
      outcome.best_canonical_score = score;
      outcome.best_canonical = order;
    }
    first = false;
    outcome.history.push_back(outcome.best_score);
  }

  // Phase 2: pairwise-swap hill climbing from the incumbent.
  std::vector<Slot> candidate = outcome.best_schedule;
  while (outcome.evaluations < options_.evaluation_budget &&
         candidate.size() >= 2) {
    const std::size_t i = static_cast<std::size_t>(
        rng.next_below(candidate.size()));
    std::size_t j = static_cast<std::size_t>(rng.next_below(candidate.size()));
    if (i == j) j = (j + 1) % candidate.size();
    std::swap(candidate[i], candidate[j]);

    const double score = evaluate(candidate);
    ++outcome.evaluations;
    if (score < outcome.best_score) {
      outcome.best_score = score;
      outcome.best_schedule = candidate;
    } else {
      std::swap(candidate[i], candidate[j]);  // revert
    }
    outcome.history.push_back(outcome.best_score);
  }
  return outcome;
}

}  // namespace hq::fw
