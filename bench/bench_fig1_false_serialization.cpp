// Figure 1 — execution timeline showing false serialization of independent
// kernel-execution streams caused by copy-queue serialization and
// interleaving: small HtoD transfers from different streams serialize in the
// single copy queue, and control of the queue interleaves between
// applications' threads, stalling kernel starts despite free compute
// resources.
#include <cstdio>

#include "bench/common.hpp"
#include "trace/ascii_timeline.hpp"

int main() {
  using namespace hq;
  using namespace hq::bench;

  print_header("Figure 1",
               "false serialization and interleaving of HtoD transfers "
               "({gaussian, needle}, default behaviour, 8 apps on 8 streams)");

  const Pair pair{"gaussian", "needle"};
  const auto result = run_pair(pair, 8, 8, fw::Order::RoundRobin, false);

  // Render the opening window, where the copy-queue contention plays out.
  trace::AsciiTimelineOptions opt;
  opt.width = 110;
  opt.lane_label_base = 34;  // the paper's screenshots start at stream 34
  opt.begin = result.phase_begin;
  opt.end = result.phase_begin + 8 * kMillisecond;
  std::printf("%s\n", render_ascii_timeline(*result.trace, opt).c_str());

  std::printf("per-application effective HtoD latency (Eq. 1-2):\n");
  TextTable table;
  table.set_header({"app", "type", "Le (HtoD)", "own service time", "inflation"});
  for (const auto& app : result.apps) {
    table.add_row(
        {std::to_string(app.app_id), app.type,
         format_duration(app.htod_effective_latency),
         format_duration(app.htod_own_time),
         format_fixed(static_cast<double>(app.htod_effective_latency) /
                          static_cast<double>(app.htod_own_time),
                      2) +
             "x"});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf(
      "note: interleaved transfers (H cells split across streams in time)\n"
      "stall kernel starts even though SMX resources are free — the paper's\n"
      "false serialization.\n");
  return 0;
}
