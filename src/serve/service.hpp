// Overload-robust streaming serving layer (library hq_serve).
//
// Service generalizes the open-workload StreamingHarness into a serving
// system with explicit overload behavior:
//
//   * a bounded admission queue with pluggable shed policies (drop-tail,
//     deadline-aware, per-class priority) — src/serve/admission.hpp;
//   * per-job deadlines with SLO accounting: goodput vs raw throughput,
//     deadline-miss ratio, and a shed/timeout/quarantine breakdown;
//   * a hysteresis overload controller that watches copy-queue stretch and
//     auto-switches into the paper's memory-sync pseudo-burst mode under
//     DMA contention — src/serve/controller.hpp;
//   * per-class circuit breakers over the PR-4 fault layer: repeated launch
//     failures or attributed copy-engine stalls trip a class open, new work
//     for it is shed at admission, and a half-open probe closes it again —
//     src/fault/breaker.hpp;
//   * graceful drain: admission closes at the window end, everything
//     in flight completes, and the run ends with a deterministic report.
//
// Legacy equivalence: with every serving feature off (unbounded queue and
// inflight, no deadline, controller and breaker disabled, no fault plan)
// the service draws the same RNG sequence and spawns the same coroutines
// in the same order as the original StreamingHarness, so the simulated
// schedule — and trace::digest — is identical. StreamingHarness itself is
// now a thin wrapper over this class (src/serve/streaming.hpp).
//
// Determinism contract: same config + seed => byte-identical report and
// trace digest at any --jobs count (jobs only shard independent runs).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "check/serve_invariants.hpp"
#include "fault/breaker.hpp"
#include "fault/fault.hpp"
#include "hyperq/harness.hpp"
#include "obs/metrics.hpp"
#include "serve/admission.hpp"
#include "serve/controller.hpp"
#include "serve/report.hpp"

namespace hq::serve {

/// One application class jobs are drawn from (uniformly, like the
/// StreamingHarness mix), plus its admission priority.
struct ClassSpec {
  fw::WorkloadItem item;
  /// Larger = more important (Priority shed policy; echoed in reports).
  int priority = 0;
};

/// One replayed arrival (ServiceConfig::arrivals).
struct Arrival {
  TimeNs at = 0;
  std::size_t klass = 0;
};

struct ServiceConfig {
  gpu::DeviceSpec device = gpu::DeviceSpec::tesla_k20();
  int num_streams = 32;
  /// Global pseudo-burst mode (paper Section III-B), independent of the
  /// overload controller.
  bool memory_sync = false;
  bool functional = false;
  /// Admission window: arrivals are generated for this long; the run ends
  /// when the last admitted job completes (graceful drain).
  DurationNs window = 100 * kMillisecond;
  /// Mean inter-arrival time of the Poisson process.
  DurationNs mean_interarrival = 2 * kMillisecond;
  /// Application classes, sampled uniformly per arrival.
  std::vector<ClassSpec> classes;
  std::uint64_t seed = 1;
  /// When non-empty, these arrivals are replayed (times must not decrease)
  /// instead of drawing the Poisson process.
  std::vector<Arrival> arrivals;

  // --- admission -----------------------------------------------------------
  /// Bound on queued + inflight jobs; 0 = unbounded.
  std::size_t queue_cap = 0;
  /// Bound on concurrently dispatched jobs; 0 = unbounded (every admitted
  /// job dispatches immediately — the legacy StreamingHarness behavior).
  std::size_t max_inflight = 0;
  ShedPolicy shed_policy = ShedPolicy::DropTail;

  // --- deadlines -----------------------------------------------------------
  /// Relative deadline applied to every job (0 = none). A job finishing
  /// past arrival + deadline counts as completed_late (SLO miss).
  DurationNs deadline = 0;
  /// When set, a queued job whose deadline has already passed at dispatch
  /// time is expired (timed_out_queued) instead of dispatched. Off by
  /// default: deadlines are then pure accounting and provably do not
  /// perturb the schedule (the fuzz oracle pins this).
  bool expire_queued = false;

  // --- control loops -------------------------------------------------------
  OverloadController::Config controller;
  /// One circuit breaker per class, fed by launch faults and attributed
  /// copy stalls; open classes shed new work at admission.
  bool breaker_enabled = false;
  fault::CircuitBreaker::Config breaker;

  // --- robustness / instrumentation ---------------------------------------
  fault::FaultPlan fault_plan;
  rt::RetryPolicy retry;
  bool check_invariants = true;
  bool collect_metrics = true;

  /// Throws hq::Error on an unusable configuration.
  void validate() const;
};

/// Terminal (and transient) states of one job.
enum class JobState : std::uint8_t {
  Queued,          ///< transient: waiting in the admission queue
  Inflight,        ///< transient: dispatched, running its lifecycle
  CompletedOk,     ///< completed within its deadline (or had none)
  CompletedLate,   ///< completed past its deadline
  ShedQueueFull,   ///< rejected by the admission queue
  ShedBreaker,     ///< rejected because the class breaker was open
  TimedOutQueued,  ///< expired in the queue before dispatch
  Quarantined,     ///< dispatched but failed (launch abort / allocation)
  /// Fleet only (src/fleet): every device's health breaker rejected the
  /// arrival, so no placement was possible. Never produced by the
  /// single-device Service.
  ShedNoDevice,
  /// Fleet only (src/fleet): the job's device went down (crash or flap)
  /// and the per-job failover budget was exhausted — or no healthy
  /// survivor existed — before it could complete elsewhere. Never produced
  /// by the single-device Service.
  ShedFailoverExhausted,
};

const char* job_state_name(JobState state);

struct JobRecord {
  int job_id = -1;  ///< arrival index; doubles as the trace app id
  std::size_t klass = 0;
  JobState state = JobState::Queued;
  TimeNs arrived_at = 0;
  TimeNs dispatched_at = 0;
  TimeNs completed_at = 0;
  TimeNs deadline_at = 0;  ///< absolute; 0 = none
  /// Transfers ran under the htod mutex because the controller was engaged.
  bool pseudo_burst = false;
  std::string quarantine_reason;
};

struct ServeResult {
  ServeReport report;
  check::ServeAccounting accounting;
  std::vector<JobRecord> jobs;
  std::shared_ptr<trace::Recorder> trace;
  /// Serving metrics (queue depth/inflight series, wait histograms,
  /// counters); nullptr unless config.collect_metrics.
  std::shared_ptr<obs::MetricsRegistry> metrics;
  fault::FaultStats fault_stats;
  std::vector<OverloadController::Transition> controller_transitions;
};

class Service {
 public:
  explicit Service(ServiceConfig config) : config_(std::move(config)) {}

  /// Runs one serving experiment; deterministic per configuration.
  ServeResult run();

  const ServiceConfig& config() const { return config_; }

 private:
  struct RunState;
  static sim::Task generator_task(RunState* st);
  static sim::Task job_lifecycle(RunState* st, int index);

  ServiceConfig config_;
};

}  // namespace hq::serve
