// Rodinia "srad_v2": speckle reducing anisotropic diffusion (Table I/III).
//
// Each of the 10 iterations launches two stencil kernels over the 512x512
// image, both with grid (32,32,1) and block (16,16,1) = 1024 blocks of 256
// threads:
//   srad_cuda_1 — directional derivatives dN/dS/dW/dE and the diffusion
//                 coefficient C per cell;
//   srad_cuda_2 — divergence update J += lambda/4 * D.
// Transfers: J host-to-device before the loop, J device-to-host after; the
// derivative and coefficient planes live only on the device.
#pragma once

#include <vector>

#include "rodinia/app_base.hpp"

namespace hq::rodinia {

struct SradParams {
  /// Image side (square image); the paper uses 512.
  int size = 512;
  int iterations = 10;
  float lambda = 0.5f;
  std::uint64_t seed = 4004;
};

class SradApp final : public RodiniaApp {
 public:
  explicit SradApp(SradParams params = {});

  void initializeHostMemory(fw::Context& ctx) override;
  sim::Task executeKernel(fw::Context& ctx) override;
  bool verify(fw::Context& ctx) const override;

  const SradParams& params() const { return params_; }
  static constexpr int kBlock = 16;

 private:
  void srad1_body(fw::Context* ctx);
  void srad2_body(fw::Context* ctx);

  SradParams params_;
  /// Pristine J for the independent host reference in verify().
  std::vector<float> j0_;
};

}  // namespace hq::rodinia
