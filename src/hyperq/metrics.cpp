#include "hyperq/metrics.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace hq::fw {

std::optional<DurationNs> effective_transfer_latency(
    const trace::Recorder& recorder, int app_id, trace::SpanKind direction) {
  HQ_CHECK(direction == trace::SpanKind::MemcpyHtoD ||
           direction == trace::SpanKind::MemcpyDtoH);
  std::optional<TimeNs> first_start;
  std::optional<TimeNs> last_end;
  for (const trace::Span& s : recorder.spans()) {
    if (s.app_id != app_id || s.kind != direction) continue;
    first_start = first_start ? std::min(*first_start, s.begin) : s.begin;
    last_end = last_end ? std::max(*last_end, s.end) : s.end;
  }
  if (!first_start) return std::nullopt;
  return *last_end - *first_start;
}

DurationNs own_transfer_time(const trace::Recorder& recorder, int app_id,
                             trace::SpanKind direction) {
  DurationNs total = 0;
  for (const trace::Span& s : recorder.spans()) {
    if (s.app_id == app_id && s.kind == direction) total += s.duration();
  }
  return total;
}

double improvement(double t_base, double t) {
  HQ_CHECK(t_base > 0);
  return (t_base - t) / t_base;
}

double mean_htod_effective_latency(const std::vector<AppMetrics>& apps) {
  if (apps.empty()) return 0.0;
  double sum = 0.0;
  for (const AppMetrics& a : apps) {
    sum += static_cast<double>(a.htod_effective_latency);
  }
  return sum / static_cast<double>(apps.size());
}

}  // namespace hq::fw
