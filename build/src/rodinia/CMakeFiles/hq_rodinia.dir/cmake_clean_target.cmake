file(REMOVE_RECURSE
  "libhq_rodinia.a"
)
