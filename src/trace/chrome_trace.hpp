// Chrome-trace (chrome://tracing / Perfetto) JSON export of a recorded
// timeline. Each lane becomes a tid; spans become complete ("ph":"X") events
// with microsecond timestamps. Counter tracks (queue depth, occupancy,
// power) become counter ("ph":"C") events rendered by the viewer as stacked
// area charts under the span lanes.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "common/units.hpp"
#include "trace/trace.hpp"

namespace hq::trace {

/// One sample of a piecewise-constant counter track.
struct CounterPoint {
  TimeNs time = 0;
  double value = 0.0;
};

/// A named counter rendered as a "ph":"C" event sequence. Points must be in
/// non-decreasing time order (the order an event-driven sampler produces).
struct CounterTrack {
  std::string name;
  std::vector<CounterPoint> points;
};

/// Writes the recorder contents as a Chrome-trace JSON array.
void write_chrome_trace(const Recorder& recorder, std::ostream& os);

/// Same, with counter tracks appended to the event array after the spans.
void write_chrome_trace(const Recorder& recorder,
                        const std::vector<CounterTrack>& counters,
                        std::ostream& os);

/// Convenience: render to a string.
std::string chrome_trace_json(const Recorder& recorder);
std::string chrome_trace_json(const Recorder& recorder,
                              const std::vector<CounterTrack>& counters);

// --- multi-process traces (one pid per fleet device) ------------------------

/// One process lane of a multi-device trace: a pid, the display name
/// (emitted as a "process_name" metadata event), the device's span
/// recorder, and its counter tracks. The recorder may be null (counters
/// only).
struct ProcessTrack {
  int pid = 0;
  std::string name;
  const Recorder* recorder = nullptr;
  std::vector<CounterTrack> counters;
};

/// A flow arrow between two process lanes (a requeue or steal hop): a
/// "ph":"s" start event at (from_pid, from_time) connected to a
/// "ph":"f" finish event at (to_pid, to_time) by `id`.
struct FlowEvent {
  std::string name;  ///< e.g. "steal", "requeue"
  int id = 0;        ///< flow binding id (the job id)
  int from_pid = 0;
  TimeNs from_time = 0;
  int to_pid = 0;
  TimeNs to_time = 0;
};

/// Multi-process trace: per-process metadata, spans and counters (in
/// `processes` order), then flow events. Deterministic per input, like the
/// single-recorder writer.
void write_chrome_trace(const std::vector<ProcessTrack>& processes,
                        const std::vector<FlowEvent>& flows, std::ostream& os);
std::string chrome_trace_json(const std::vector<ProcessTrack>& processes,
                              const std::vector<FlowEvent>& flows);

}  // namespace hq::trace
