#include "common/units.hpp"

#include <gtest/gtest.h>

namespace hq {
namespace {

TEST(UnitsTest, ConversionConstants) {
  EXPECT_EQ(kMicrosecond, 1000u);
  EXPECT_EQ(kMillisecond, 1000u * 1000u);
  EXPECT_EQ(kSecond, 1000u * 1000u * 1000u);
  EXPECT_EQ(kMiB, 1024u * 1024u);
}

TEST(UnitsTest, ToSeconds) {
  EXPECT_DOUBLE_EQ(to_seconds(kSecond), 1.0);
  EXPECT_DOUBLE_EQ(to_seconds(500 * kMillisecond), 0.5);
  EXPECT_DOUBLE_EQ(to_milliseconds(kMillisecond), 1.0);
  EXPECT_DOUBLE_EQ(to_microseconds(kMicrosecond), 1.0);
}

TEST(UnitsTest, FormatDurationPicksAdaptiveUnit) {
  EXPECT_EQ(format_duration(500), "500.00 ns");
  EXPECT_EQ(format_duration(1500), "1.50 us");
  EXPECT_EQ(format_duration(2 * kMillisecond + kMillisecond / 2), "2.50 ms");
  EXPECT_EQ(format_duration(3 * kSecond), "3.00 s");
}

TEST(UnitsTest, FormatBytesPicksAdaptiveUnit) {
  EXPECT_EQ(format_bytes(512), "512.00 B");
  EXPECT_EQ(format_bytes(2048), "2.00 KiB");
  EXPECT_EQ(format_bytes(3 * kMiB), "3.00 MiB");
  EXPECT_EQ(format_bytes(5 * kGiB), "5.00 GiB");
}

}  // namespace
}  // namespace hq
