// Differential / metamorphic fuzzing of the simulator (library hq_fuzz).
//
// Each fuzz case is a seeded random workload (application mix, instance
// counts, launch order, stream count, transfer chunking, memory-sync and
// blocking-transfer modes, launch stagger, functional vs timing run). The
// case runs under several scheduling configurations and the results are
// compared against metamorphic oracles that must hold for ANY workload:
//
//   - Determinism: the same seed run twice yields an identical trace
//     digest, makespan, energy, and functional outputs.
//   - Serialization: the fully serialized run (NS = 1) is never faster
//     than the concurrent run.
//   - Hyper-Q: the Fermi single-work-queue ablation is never faster than
//     the 32-queue Hyper-Q run.
//   - Work conservation: every scheduling mode performs the same device
//     work (kernel count, copy counts, bytes per direction).
//   - Eq. 1–2 bounds: an application's effective transfer latency is at
//     least its own service time and at most the run's makespan.
//   - Energy: phase energy lies within [idle, plausible-peak] power x time.
//   - Functional equivalence: outputs verify and their digests are
//     byte-identical across every scheduling mode.
//
// With FuzzOptions::fault_rate > 0 every case additionally runs under a
// seed-derived transient fault plan and checks the fault-mode oracles:
// attaching a zero-rate plan is zero-perturbation (identical digest), the
// faulted run is deterministic, never materially faster than the fault-free
// run, performs identical device work, injects at least one observable
// fault (at rate 1), never quarantines (transient faults stay below the
// retry budget), and — in functional cases — produces output digests
// identical to the fault-free run.
//
// Every run also carries the hq_check InvariantChecker (via the harness),
// so scheduler/copy-engine/accounting invariant violations surface here as
// case failures too.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "fleet/fleet.hpp"
#include "hyperq/harness.hpp"
#include "hyperq/schedule.hpp"
#include "rodinia/registry.hpp"
#include "serve/service.hpp"

namespace hq::check {

/// One generated workload + configuration, fully determined by its seed.
struct FuzzCase {
  std::uint64_t seed = 0;
  std::vector<std::string> type_names;
  std::vector<rodinia::AppParams> params;
  std::vector<int> counts;  ///< instances per type
  fw::Order order = fw::Order::NaiveFifo;
  std::vector<fw::Slot> slots;  ///< concrete launch order
  /// The Hyper-Q (concurrent) configuration; oracle runs derive the
  /// serialized and Fermi variants from it.
  fw::HarnessConfig config;

  /// One-line human-readable description, e.g. for failure reports.
  std::string summary() const;
};

/// Deterministically expands a case seed into a workload + configuration.
FuzzCase generate_case(std::uint64_t case_seed);

/// One generated serving workload (open arrivals under overload knobs),
/// fully determined by its seed. Runs against the serving-mode oracles:
///
///   - Determinism: the same config twice yields a byte-identical report.
///   - Accounting: admitted = completed + shed + timed-out + quarantined,
///     and shed jobs never consume device time (no dispatch, no spans).
///   - Queue-cap monotonicity: raising the admission cap never decreases
///     the number of completed jobs, and never changes arrivals.
///   - Deadline monotonicity: with expiry off and drop-tail shedding,
///     deadlines are pure accounting — tightening one never increases
///     goodput and never perturbs the trace digest.
///   - Legacy equivalence: with every overload feature off and a zero-rate
///     fault plan attached, the service reproduces the plain
///     StreamingHarness trace digest exactly.
struct ServeFuzzCase {
  std::uint64_t seed = 0;
  serve::ServiceConfig config;

  /// One-line human-readable description, e.g. for failure reports.
  std::string summary() const;
};

/// Deterministically expands a case seed into a serving configuration.
ServeFuzzCase generate_serve_case(std::uint64_t case_seed);

/// One generated fleet workload (the serve case's config sharded over a
/// 1–3 device fleet with random placement / stealing / device-breaker
/// knobs, sometimes heterogeneous). Runs against the fleet oracles:
///
///   - Determinism: the same config twice yields a byte-identical
///     FleetReport (JSON and digest).
///   - Single-device equivalence: a 1-device fleet with every fleet-only
///     feature off emits a device-0 ServeReport byte-identical to the
///     single-device Service for the same base config.
///   - Conservation: fleet arrivals equal the sum of every terminal state
///     (including the fleet-only shed_no_device), and per-device arrivals
///     plus shed_no_device reproduce the fleet total.
///   - Placement permutation safety: every placement policy yields valid
///     conservation, even with a transient fault plan and the device
///     health breaker active.
///   - Fleet-size monotonicity (flagged, not gating): a larger fleet under
///     the same load should not complete fewer jobs; violations are
///     appended to the case summary rather than failing the case.
struct FleetFuzzCase {
  std::uint64_t seed = 0;
  fleet::FleetConfig config;

  /// One-line human-readable description, e.g. for failure reports.
  std::string summary() const;
};

/// Deterministically expands a case seed into a fleet configuration.
FleetFuzzCase generate_fleet_case(std::uint64_t case_seed);

struct FuzzOptions {
  /// Master seed; per-iteration case seeds derive from it.
  std::uint64_t seed = 1;
  int iterations = 100;
  /// Worker threads for the iteration loop; 1 = serial, 0 = all hardware
  /// threads. Case seeds, the report, and the progress-callback sequence
  /// are identical at any job count (cases are generated from the master
  /// seed up front and reported in iteration order).
  int jobs = 1;
  /// Scales the per-case transient fault plan in [0, 1]; 0 disables the
  /// fault-mode oracles entirely.
  double fault_rate = 0.0;
  /// Serving-mode iterations appended after the harness cases (their
  /// failure reports use iteration indices `iterations..`). 0 disables.
  int serve_iterations = 0;
  /// Fleet-mode iterations appended after the serving cases (their failure
  /// reports use iteration indices `iterations + serve_iterations..`).
  /// 0 disables.
  int fleet_iterations = 0;
  /// Probability in [0, 1] that each fleet device receives a seed-derived
  /// lifecycle fault (crash / flap / degrade schedule). When > 0 every
  /// fleet iteration additionally runs the chaos oracles
  /// (run_fleet_chaos_case): no-job-lost conservation under arbitrary
  /// crash schedules, failover determinism, hedge-off/inert-knob runs
  /// byte-identical to the baseline, and all-devices-dead draining
  /// cleanly. 0 disables.
  double chaos_rate = 0.0;
  /// Probability in [0, 1] that each fleet device receives a seed-derived
  /// silent-data-corruption plan. When > 0 every fleet iteration
  /// additionally runs the SDC integrity oracles (run_fleet_sdc_case):
  /// conservation with verification re-executions counted as attempts, the
  /// exact sdc_injected == sdc_detected + sdc_missed partition, two-run
  /// byte determinism, inert-plan/Trust runs byte-identical to the
  /// baseline, and no placements on a blocklisted device after its
  /// blocklist time. 0 disables.
  double sdc_rate = 0.0;
};

struct FuzzFailure {
  int iteration = 0;
  std::uint64_t case_seed = 0;
  std::string case_summary;
  std::vector<std::string> problems;
};

struct FuzzReport {
  int iterations_run = 0;
  std::vector<FuzzFailure> failures;
  bool ok() const { return failures.empty(); }
  std::string to_string() const;
};

class Fuzzer {
 public:
  /// Called after each case with (iteration, case seed, summary, clean).
  using Progress =
      std::function<void(int, std::uint64_t, const std::string&, bool)>;

  explicit Fuzzer(FuzzOptions options = {}) : options_(options) {}

  /// Runs options.iterations generated cases.
  FuzzReport run(const Progress& progress = nullptr);

  /// Runs every oracle for one case seed; returns the violated oracles
  /// (empty = clean). Used for replaying a failure and by tests.
  static std::vector<std::string> run_case(std::uint64_t case_seed,
                                           std::string* summary_out = nullptr);
  /// Same, with the fault-mode oracles at the given intensity.
  static std::vector<std::string> run_case(std::uint64_t case_seed,
                                           double fault_rate,
                                           std::string* summary_out);

  /// Runs the serving-mode oracles for one case seed; returns the violated
  /// oracles (empty = clean).
  static std::vector<std::string> run_serve_case(
      std::uint64_t case_seed, std::string* summary_out = nullptr);

  /// Runs the fleet-mode oracles for one case seed; returns the violated
  /// oracles (empty = clean). Non-gating flags (fleet-size monotonicity)
  /// are appended to the summary instead.
  static std::vector<std::string> run_fleet_case(
      std::uint64_t case_seed, std::string* summary_out = nullptr);

  /// Runs the fleet chaos oracles for one case seed: the fleet case's
  /// config plus a seed-derived device-lifecycle fault schedule (each
  /// device crashes, flaps, or degrades with probability `chaos_rate`) and
  /// random failover/hedging knobs. Checks no-job-lost conservation
  /// (including shed_failover_exhausted), two-run byte determinism, the
  /// inert-knob identity (hedging off + all-disabled plans ==
  /// byte-identical baseline report), and the all-devices-dead clean
  /// drain. Returns the violated oracles (empty = clean).
  static std::vector<std::string> run_fleet_chaos_case(
      std::uint64_t case_seed, double chaos_rate,
      std::string* summary_out = nullptr);

  /// Runs the SDC integrity oracles for one case seed: the fleet case's
  /// config plus a seed-derived per-device corruption schedule (each
  /// device corrupts copies, ramps kernel corruption, or goes stuck-at
  /// with probability `sdc_rate`) under a random non-Trust integrity
  /// policy. Checks conservation with re-executions counted as attempts,
  /// the exact detected + missed == injected partition, two-run byte
  /// determinism, the inert-plan identity (all-clean plans + Trust ==
  /// byte-identical baseline report), and that a blocklisted device
  /// receives no placements, hops, or dispatches after its blocklist
  /// time. Returns the violated oracles (empty = clean).
  static std::vector<std::string> run_fleet_sdc_case(
      std::uint64_t case_seed, double sdc_rate,
      std::string* summary_out = nullptr);

  /// The seed-derived transient-only plan fault-mode cases run under
  /// (stalls, slowdowns, throttle windows, retryable launch failures; no
  /// poison/offline/alloc faults, so no quarantine is ever legitimate).
  static fault::FaultPlan case_fault_plan(std::uint64_t case_seed,
                                          double fault_rate);

 private:
  FuzzOptions options_;
};

}  // namespace hq::check
