// Copy-path edge cases surfaced while building the fuzzer: zero-byte
// transfers (CUDA-valid no-ops), back-to-back same-timestamp submissions,
// and HtoD/DtoH engine independence under the memory-sync mutex.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/check.hpp"
#include "cudart/runtime.hpp"
#include "gpusim/copy_engine.hpp"
#include "gpusim/device.hpp"
#include "hyperq/harness.hpp"
#include "sim/simulator.hpp"
#include "tests/hyperq/synthetic_app.hpp"
#include "trace/trace.hpp"

namespace hq {
namespace {

class ZeroByteMemcpyTest : public ::testing::Test {
 protected:
  ZeroByteMemcpyTest()
      : device_(sim_, gpu::DeviceSpec::tesla_k20()), rt_(sim_, device_) {}

  void run(sim::Task task) {
    sim_.spawn(std::move(task));
    sim_.run();
  }

  sim::Simulator sim_;
  gpu::Device device_;
  rt::Runtime rt_;
};

TEST_F(ZeroByteMemcpyTest, ZeroByteCopiesNeverReachTheEngines) {
  auto h = rt_.malloc_host(kKiB);
  auto d = rt_.malloc_device(kKiB);
  ASSERT_TRUE(h.ok() && d.ok());
  auto s = rt_.stream_create();
  run([this, s, h = h.value(), d = d.value()]() -> sim::Task {
    auto up = rt_.memcpy_htod_async(s, d, h, 0);
    co_await up;
    auto down = rt_.memcpy_dtoh_async(s, h, d, 0);
    co_await down;
    co_await rt_.stream_synchronize(s);
  }());
  EXPECT_EQ(device_.stats().copies_htod, 0u);
  EXPECT_EQ(device_.stats().copies_dtoh, 0u);
  EXPECT_EQ(device_.stats().bytes_htod, 0u);
  EXPECT_EQ(device_.stats().bytes_dtoh, 0u);
  EXPECT_EQ(device_.htod_engine().transactions_served(), 0u);
  EXPECT_EQ(device_.dtoh_engine().transactions_served(), 0u);
}

TEST_F(ZeroByteMemcpyTest, ZeroByteCopyIsStreamOrdered) {
  auto h = rt_.malloc_host(kMiB);
  auto d = rt_.malloc_device(kMiB);
  ASSERT_TRUE(h.ok() && d.ok());
  auto s = rt_.stream_create();
  auto after_zero = rt_.event_create();
  run([this, s, after_zero, h = h.value(), d = d.value()]() -> sim::Task {
    auto big = rt_.memcpy_htod_async(s, d, h, kMiB);
    co_await big;
    auto zero = rt_.memcpy_htod_async(s, d, h, 0);
    co_await zero;
    rt_.event_record(after_zero, s);
    co_await rt_.stream_synchronize(s);
  }());
  // The no-op completes as a marker behind the 1 MiB transfer, never before.
  ASSERT_TRUE(rt_.event_complete(after_zero));
  EXPECT_GE(rt_.event_time(after_zero),
            device_.htod_engine().service_time(kMiB));
  EXPECT_EQ(device_.stats().copies_htod, 1u);
  EXPECT_EQ(device_.stats().bytes_htod, kMiB);
}

TEST_F(ZeroByteMemcpyTest, ZeroByteRespectsAllocationBounds) {
  auto h = rt_.malloc_host(kKiB);
  auto d = rt_.malloc_device(kKiB);
  ASSERT_TRUE(h.ok() && d.ok());
  auto s = rt_.stream_create();
  // Zero bytes at an offset inside the allocation is fine; one past the end
  // is still an overflow.
  run([this, s, h = h.value(), d = d.value()]() -> sim::Task {
    auto op = rt_.memcpy_htod_async(s, d, h, 0, {}, kKiB);
    co_await op;
    co_await rt_.stream_synchronize(s);
  }());
  EXPECT_THROW(
      (void)rt_.memcpy_htod_async(s, d.value(), h.value(), 0, {}, kKiB + 1),
      Error);
}

// ----------------------------------------------------- engine-level edges

struct Served {
  gpu::OpId id;
  TimeNs begin;
  TimeNs end;
};

class CopyEngineEdgeTest : public ::testing::Test {
 protected:
  CopyEngineEdgeTest()
      : engine_(sim_, gpu::CopyDirection::HtoD, /*bytes_per_sec=*/1e9,
                /*overhead=*/10 * kMicrosecond, [] {}) {}

  void enqueue(gpu::OpId id, Bytes bytes) {
    engine_.enqueue(gpu::CopyEngine::Transaction{
        id, 0, bytes, [] { return true; },
        [this, id](TimeNs b, TimeNs e) { served_.push_back({id, b, e}); }});
  }

  sim::Simulator sim_;
  gpu::CopyEngine engine_;
  std::vector<Served> served_;
};

TEST_F(CopyEngineEdgeTest, ZeroByteTransactionCostsOverheadOnly) {
  EXPECT_EQ(engine_.service_time(0), 10 * kMicrosecond);
  enqueue(1, 0);
  sim_.run();
  ASSERT_EQ(served_.size(), 1u);
  EXPECT_EQ(served_[0].end - served_[0].begin, 10 * kMicrosecond);
  EXPECT_EQ(engine_.bytes_transferred(), 0u);
  EXPECT_EQ(engine_.transactions_served(), 1u);
}

TEST_F(CopyEngineEdgeTest, SameTimestampSubmissionsStayFifoAndSerialized) {
  // Two independent host contexts submitting at the identical virtual
  // instant: service must follow enqueue order with no overlap.
  const TimeNs t = 5 * kMicrosecond;
  sim_.schedule(t, [this] { enqueue(1, 1000); });
  sim_.schedule(t, [this] { enqueue(2, 1000); });
  sim_.schedule(t, [this] { enqueue(3, 0); });
  sim_.run();
  ASSERT_EQ(served_.size(), 3u);
  EXPECT_EQ(served_[0].id, 1u);
  EXPECT_EQ(served_[1].id, 2u);
  EXPECT_EQ(served_[2].id, 3u);
  EXPECT_EQ(served_[0].begin, t);
  EXPECT_EQ(served_[1].begin, served_[0].end);
  EXPECT_EQ(served_[2].begin, served_[1].end);
}

// --------------------------------------- HtoD/DtoH engine independence

TEST(MemorySyncIndependenceTest, DtoHOverlapsHtoDUnderMemorySyncMutex) {
  // The Section III-B mutex serializes only the HtoD stage. A downstream
  // DtoH transfer must still overlap another application's HtoD, because the
  // two directions have dedicated engines.
  fw::testing::SyntheticApp::Spec producer;
  producer.name = "producer";
  producer.htod_bytes = kKiB;
  producer.htod_pieces = 1;
  producer.num_kernels = 0;
  producer.dtoh_bytes = 8 * kMiB;

  fw::testing::SyntheticApp::Spec consumer;
  consumer.name = "consumer";
  consumer.htod_bytes = 8 * kMiB;
  consumer.htod_pieces = 1;
  consumer.num_kernels = 0;
  consumer.dtoh_bytes = kKiB;

  fw::HarnessConfig config;
  config.num_streams = 2;
  config.memory_sync = true;
  config.launch_stagger = 0;
  config.monitor_power = false;

  std::vector<fw::WorkloadItem> workload;
  workload.push_back(fw::WorkloadItem{
      producer.name,
      [producer] { return std::make_unique<fw::testing::SyntheticApp>(producer); }});
  workload.push_back(fw::WorkloadItem{
      consumer.name,
      [consumer] { return std::make_unique<fw::testing::SyntheticApp>(consumer); }});

  const auto result = fw::Harness(config).run(workload);
  ASSERT_NE(result.trace, nullptr);

  const auto longest = [](std::vector<trace::Span> spans, int app_id) {
    std::erase_if(spans, [app_id](const trace::Span& s) {
      return s.app_id != app_id;
    });
    return *std::max_element(spans.begin(), spans.end(),
                             [](const trace::Span& a, const trace::Span& b) {
                               return a.duration() < b.duration();
                             });
  };
  const trace::Span big_dtoh =
      longest(result.trace->by_kind(trace::SpanKind::MemcpyDtoH), 0);
  const trace::Span big_htod =
      longest(result.trace->by_kind(trace::SpanKind::MemcpyHtoD), 1);
  EXPECT_LT(std::max(big_dtoh.begin, big_htod.begin),
            std::min(big_dtoh.end, big_htod.end))
      << "producer DtoH [" << big_dtoh.begin << ", " << big_dtoh.end
      << ") does not overlap consumer HtoD [" << big_htod.begin << ", "
      << big_htod.end << ")";
}

}  // namespace
}  // namespace hq
