file(REMOVE_RECURSE
  "CMakeFiles/properties_test.dir/properties/copy_property_test.cpp.o"
  "CMakeFiles/properties_test.dir/properties/copy_property_test.cpp.o.d"
  "CMakeFiles/properties_test.dir/properties/harness_property_test.cpp.o"
  "CMakeFiles/properties_test.dir/properties/harness_property_test.cpp.o.d"
  "CMakeFiles/properties_test.dir/properties/rodinia_property_test.cpp.o"
  "CMakeFiles/properties_test.dir/properties/rodinia_property_test.cpp.o.d"
  "CMakeFiles/properties_test.dir/properties/schedule_property_test.cpp.o"
  "CMakeFiles/properties_test.dir/properties/schedule_property_test.cpp.o.d"
  "CMakeFiles/properties_test.dir/properties/wave_property_test.cpp.o"
  "CMakeFiles/properties_test.dir/properties/wave_property_test.cpp.o.d"
  "properties_test"
  "properties_test.pdb"
  "properties_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/properties_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
