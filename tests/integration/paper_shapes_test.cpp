// Integration tests asserting the *shape* of every headline result in the
// paper's evaluation, at reduced scale so the suite stays fast. These are
// the guardrails that keep the simulator calibrated: if a change to the
// device model breaks a ranking the paper reports, a test here fails.
#include <gtest/gtest.h>

#include "bench/common.hpp"
#include "hyperq/metrics.hpp"

namespace hq::bench {
namespace {

// Smaller inputs so each simulated run finishes quickly.
fw::HarnessResult run_small_pair(const Pair& pair, int na, int ns,
                                 fw::Order order = fw::Order::NaiveFifo,
                                 bool memory_sync = false,
                                 const gpu::DeviceSpec* device = nullptr) {
  fw::HarnessConfig config = timing_config(ns);
  config.memory_sync = memory_sync;
  // Tight stagger: the miniature inputs transfer quickly, so contention only
  // appears when launches are nearly simultaneous.
  config.launch_stagger = 5 * kMicrosecond;
  if (device != nullptr) config.device = *device;
  rodinia::AppParams params;
  params.size = 128;  // gaussian/needle/srad at 128; nn unaffected below
  rodinia::AppParams nn_params;
  nn_params.size = 10000;
  auto params_for = [&](const std::string& name) {
    return name == "nn" ? nn_params : params;
  };
  Rng rng(42);
  const int counts[] = {na / 2, na - na / 2};
  const auto schedule = fw::make_schedule(order, counts, &rng);
  const auto workload = rodinia::build_workload(
      schedule, {pair.x, pair.y}, {params_for(pair.x), params_for(pair.y)});
  fw::Harness harness(config);
  return harness.run(workload);
}

// --- Section V-A: the lazy policy beats serialization -----------------------

TEST(PaperShapesTest, FullConcurrencyBeatsSerialForAllPairs) {
  for (const Pair& pair : hetero_pairs()) {
    const auto serial = run_small_pair(pair, 8, 1);
    const auto full = run_small_pair(pair, 8, 8);
    EXPECT_LT(full.makespan, serial.makespan) << pair.label();
  }
}

TEST(PaperShapesTest, HalfConcurrencyCapturesMostOfTheGain) {
  const Pair pair{"nn", "needle"};
  const auto serial = run_small_pair(pair, 16, 1);
  const auto half = run_small_pair(pair, 16, 8);
  const auto full = run_small_pair(pair, 16, 16);
  const double half_impr = fw::improvement(
      static_cast<double>(serial.makespan), static_cast<double>(half.makespan));
  const double full_impr = fw::improvement(
      static_cast<double>(serial.makespan), static_cast<double>(full.makespan));
  EXPECT_GT(half_impr, 0.0);
  EXPECT_GE(full_impr, half_impr - 0.02);  // full >= half (within noise)
  // Half-concurrency already captures the majority of the benefit (the
  // paper's 23.6% vs 24.8% averages).
  EXPECT_GT(half_impr, 0.6 * full_impr);
}

TEST(PaperShapesTest, TinyKernelPairsGainMost) {
  // The paper's biggest wins come from pairs whose kernels underutilize the
  // device ({nn, needle}); gaussian/srad-heavy pairs gain least. This claim
  // is about the paper-size inputs (Fan2/srad saturate the device there), so
  // it runs at Table III scale with a small NA.
  const auto serial_small = run_pair({"nn", "needle"}, 4, 1);
  const auto full_small = run_pair({"nn", "needle"}, 4, 4);
  const auto serial_big = run_pair({"gaussian", "srad"}, 4, 1);
  const auto full_big = run_pair({"gaussian", "srad"}, 4, 4);
  const double small_gain =
      fw::improvement(static_cast<double>(serial_small.makespan),
                      static_cast<double>(full_small.makespan));
  const double big_gain =
      fw::improvement(static_cast<double>(serial_big.makespan),
                      static_cast<double>(full_big.makespan));
  EXPECT_GT(small_gain, big_gain);
}

// --- Section V-B: effective memory transfer latency -------------------------

TEST(PaperShapesTest, InterleavingInflatesEffectiveLatency) {
  const Pair pair{"gaussian", "needle"};
  const auto concurrent = run_small_pair(pair, 8, 8);
  const auto solo = run_small_pair(pair, 2, 1);  // one of each, no contention

  const double inflated = fw::mean_htod_effective_latency(concurrent.apps);
  const double expected = fw::mean_htod_effective_latency(solo.apps);
  EXPECT_GT(inflated, 1.5 * expected);
}

TEST(PaperShapesTest, MemorySyncRestoresExpectedLatency) {
  const Pair pair{"gaussian", "needle"};
  const auto base = run_small_pair(pair, 8, 8, fw::Order::NaiveFifo, false);
  const auto sync = run_small_pair(pair, 8, 8, fw::Order::NaiveFifo, true);
  EXPECT_LT(fw::mean_htod_effective_latency(sync.apps),
            fw::mean_htod_effective_latency(base.apps));
  // Each app's Le collapses to its own service time plus its own
  // host-side submission gaps (one driver call between transfers).
  for (const auto& app : sync.apps) {
    EXPECT_LE(app.htod_effective_latency,
              app.htod_own_time + 4 * 5 * kMicrosecond)
        << app.app_id;
  }
}

TEST(PaperShapesTest, MemorySyncDoesNotHurtAtPaperScale) {
  // At the paper's input sizes, batching transfers leaves the makespan
  // essentially unchanged for the transfer-heavy pairs (its benefit is the
  // latency/overlap-potential restoration). Note the paper's own Figure 8
  // shows orderings where sync is slightly below the default (cells < 1.0),
  // so this is a no-significant-regression bound, not a strict win.
  for (const Pair& pair : {Pair{"gaussian", "needle"}, Pair{"gaussian", "nn"}}) {
    const auto base = run_pair(pair, 8, 8, fw::Order::NaiveFifo, false);
    const auto sync = run_pair(pair, 8, 8, fw::Order::NaiveFifo, true);
    EXPECT_LE(sync.makespan, base.makespan * 103 / 100) << pair.label();
  }
}

// --- Section V-C: application reordering -------------------------------------

TEST(PaperShapesTest, OrderingChangesMakespan) {
  const Pair pair{"needle", "srad"};
  double best = 1e300, worst = 0;
  Rng rng(42);
  for (fw::Order order : fw::kAllOrders) {
    const auto result = run_small_pair(pair, 8, 8, order);
    best = std::min(best, static_cast<double>(result.makespan));
    worst = std::max(worst, static_cast<double>(result.makespan));
  }
  EXPECT_GT((worst - best) / worst, 0.01);  // order matters measurably
}

// --- Section V-D: energy ------------------------------------------------------

TEST(PaperShapesTest, ConcurrencySavesEnergyDespiteHigherPower) {
  const Pair pair{"needle", "srad"};
  const auto serial = run_small_pair(pair, 8, 1);
  const auto full = run_small_pair(pair, 8, 8);
  const double p_serial = serial.energy_exact / to_seconds(serial.makespan);
  const double p_full = full.energy_exact / to_seconds(full.makespan);
  EXPECT_GT(p_full, p_serial);                       // power rises...
  EXPECT_LT(full.energy_exact, serial.energy_exact); // ...energy falls
}

TEST(PaperShapesTest, PowerSublinearInConcurrency) {
  // Observation #4: doubling the stream count must not double power.
  const Pair pair{"needle", "srad"};
  const auto half = run_small_pair(pair, 8, 4);
  const auto full = run_small_pair(pair, 8, 8);
  const double p_half = half.energy_exact / to_seconds(half.makespan);
  const double p_full = full.energy_exact / to_seconds(full.makespan);
  EXPECT_LT(p_full / p_half, 1.3);
}

// --- Motivation: Hyper-Q vs Fermi --------------------------------------------

TEST(PaperShapesTest, HyperQNoWorseThanFermiEverywhere) {
  const gpu::DeviceSpec fermi = gpu::DeviceSpec::fermi_single_queue();
  for (const Pair& pair : hetero_pairs()) {
    const auto fermi_run =
        run_small_pair(pair, 8, 8, fw::Order::NaiveFifo, false, &fermi);
    const auto hyperq_run = run_small_pair(pair, 8, 8);
    EXPECT_LE(hyperq_run.makespan, fermi_run.makespan * 101 / 100)
        << pair.label();
  }
}

// --- Determinism ---------------------------------------------------------------

TEST(PaperShapesTest, EveryConfigurationIsDeterministic) {
  const Pair pair{"gaussian", "needle"};
  for (bool sync : {false, true}) {
    const auto a = run_small_pair(pair, 4, 4, fw::Order::RoundRobin, sync);
    const auto b = run_small_pair(pair, 4, 4, fw::Order::RoundRobin, sync);
    EXPECT_EQ(a.makespan, b.makespan) << sync;
    EXPECT_DOUBLE_EQ(a.energy_exact, b.energy_exact);
  }
}

}  // namespace
}  // namespace hq::bench
