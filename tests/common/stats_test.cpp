#include "common/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/check.hpp"

namespace hq {
namespace {

TEST(RunningStatsTest, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 0.0);
  EXPECT_DOUBLE_EQ(s.max(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(RunningStatsTest, SingleValue) {
  RunningStats s;
  s.add(3.5);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 3.5);
  EXPECT_DOUBLE_EQ(s.min(), 3.5);
  EXPECT_DOUBLE_EQ(s.max(), 3.5);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(RunningStatsTest, KnownSeries) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
  // Sample variance with n-1 denominator: sum sq dev = 32, / 7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_NEAR(s.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
}

TEST(RunningStatsTest, NegativeValues) {
  RunningStats s;
  s.add(-5.0);
  s.add(5.0);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), -5.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
}

TEST(PercentileTest, EmptyReturnsZero) {
  EXPECT_DOUBLE_EQ(percentile({}, 50), 0.0);
}

TEST(PercentileTest, SingleSample) {
  EXPECT_DOUBLE_EQ(percentile({7.0}, 0), 7.0);
  EXPECT_DOUBLE_EQ(percentile({7.0}, 100), 7.0);
}

TEST(PercentileTest, MedianAndExtremes) {
  std::vector<double> v{5.0, 1.0, 3.0, 2.0, 4.0};
  EXPECT_DOUBLE_EQ(percentile(v, 0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 50), 3.0);
  EXPECT_DOUBLE_EQ(percentile(v, 100), 5.0);
}

TEST(PercentileTest, Interpolates) {
  std::vector<double> v{0.0, 10.0};
  EXPECT_DOUBLE_EQ(percentile(v, 25), 2.5);
  EXPECT_DOUBLE_EQ(percentile(v, 75), 7.5);
}

TEST(PercentileTest, OutOfRangeThrows) {
  EXPECT_THROW(percentile({1.0}, -1), Error);
  EXPECT_THROW(percentile({1.0}, 101), Error);
}

TEST(TrapezoidTest, FewPointsIsZero) {
  EXPECT_DOUBLE_EQ(trapezoid_integral({}), 0.0);
  EXPECT_DOUBLE_EQ(trapezoid_integral({{0.0, 5.0}}), 0.0);
}

TEST(TrapezoidTest, ConstantFunction) {
  EXPECT_DOUBLE_EQ(trapezoid_integral({{0.0, 2.0}, {1.0, 2.0}, {3.0, 2.0}}),
                   6.0);
}

TEST(TrapezoidTest, LinearRamp) {
  // Integral of y=x over [0,2] is 2.
  EXPECT_DOUBLE_EQ(trapezoid_integral({{0.0, 0.0}, {1.0, 1.0}, {2.0, 2.0}}),
                   2.0);
}

}  // namespace
}  // namespace hq
