// Fundamental types shared across the GPU device model.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "common/units.hpp"

namespace hq::gpu {

/// CUDA-style 3-component extent for grids and blocks.
struct Dim3 {
  std::uint32_t x = 1;
  std::uint32_t y = 1;
  std::uint32_t z = 1;

  constexpr std::uint64_t count() const {
    return static_cast<std::uint64_t>(x) * y * z;
  }
  friend bool operator==(const Dim3&, const Dim3&) = default;
};

/// Renders "(x, y, z)" like the paper's Table III.
std::string to_string(const Dim3& d);

/// Host-visible stream identifier. Streams are created by the runtime and
/// registered with the device, which maps them onto hardware work queues.
using StreamId = std::int32_t;

/// Monotonic identifier for submitted operations.
using OpId = std::uint64_t;

enum class CopyDirection : std::uint8_t { HtoD, DtoH };

inline const char* copy_direction_name(CopyDirection dir) {
  return dir == CopyDirection::HtoD ? "HtoD" : "DtoH";
}

/// Attribution carried by every submitted operation, used for traces and the
/// effective-memory-transfer-latency metric.
struct OpTag {
  std::int32_t app_id = -1;
  std::string label;
};

/// Description of one kernel launch as seen by the hardware model.
struct KernelLaunch {
  std::string name;
  Dim3 grid;
  Dim3 block;
  /// Register demand per thread; one SMX holds 65536 registers on CC 3.5.
  std::uint32_t regs_per_thread = 32;
  /// Static + dynamic shared memory per thread block.
  Bytes smem_per_block = 0;
  /// Calibrated execution cost of one thread block at low occupancy.
  DurationNs block_duration = kMicrosecond;
  /// Slowdown per unit of device thread occupancy, modelling memory-bandwidth
  /// contention between co-resident blocks: effective duration is
  /// block_duration * (1 + contention_sensitivity * occupancy).
  double contention_sensitivity = 0.0;
  /// Optional functional payload executed once, when the kernel completes
  /// (used to run the real algorithm in functional mode).
  std::function<void()> payload;
};

/// Description of one DMA transaction.
struct CopyRequest {
  CopyDirection direction = CopyDirection::HtoD;
  Bytes bytes = 0;
  /// Optional functional payload that performs the actual byte movement;
  /// executed when the transfer completes.
  std::function<void()> payload;
};

}  // namespace hq::gpu
