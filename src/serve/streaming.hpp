// Streaming (open) workload management — the paper's §VI future work:
// "intelligent scheduler algorithms to support energy efficient execution or
// manage streaming workloads, rather than a finite set."
//
// Applications arrive continuously (Poisson arrivals over a deterministic
// seeded stream), each is admitted onto a stream from the pool and runs its
// transfer/execute/transfer pattern; the harness reports steady-state
// throughput, turnaround latency percentiles, power, and energy per task.
//
// Since the serving layer landed, StreamingHarness is a thin wrapper over
// serve::Service configured with every overload feature off (unbounded
// queue and inflight, no deadlines, controller and breaker disabled). The
// service draws the same RNG sequence and spawns the same coroutines in
// the same order as the original implementation, so results are unchanged;
// overload behavior lives in serve::ServiceConfig.
#pragma once

#include <memory>
#include <vector>

#include "hyperq/harness.hpp"

namespace hq::fw {

class StreamingHarness {
 public:
  struct Config {
    gpu::DeviceSpec device = gpu::DeviceSpec::tesla_k20();
    int num_streams = 32;
    bool memory_sync = false;
    bool functional = false;
    /// Admission window: arrivals are generated for this long; the run ends
    /// when the last admitted application completes.
    DurationNs window = 100 * kMillisecond;
    /// Mean inter-arrival time of the Poisson process.
    DurationNs mean_interarrival = 2 * kMillisecond;
    /// Application mix, sampled uniformly per arrival.
    std::vector<WorkloadItem> mix;
    std::uint64_t seed = 1;
    DurationNs power_period = 15 * kMillisecond;

    /// Throws hq::Error on an unusable configuration (empty mix,
    /// non-positive window or mean inter-arrival time, num_streams < 1).
    void validate() const;
  };

  struct Result {
    int admitted = 0;
    int completed = 0;
    /// Tasks completed per second of total run time.
    double throughput_per_sec = 0;
    DurationNs mean_turnaround = 0;
    DurationNs p95_turnaround = 0;
    DurationNs max_turnaround = 0;
    /// Total run time: admission window + drain.
    DurationNs total_time = 0;
    Joules energy = 0;
    Joules energy_per_task = 0;
    double average_occupancy = 0;
    /// Determinism fingerprint of the simulated schedule (trace::digest).
    std::uint64_t trace_digest = 0;
  };

  explicit StreamingHarness(Config config) : config_(std::move(config)) {}

  /// Runs one streaming experiment; deterministic per configuration.
  Result run();

 private:
  Config config_;
};

}  // namespace hq::fw
