// Figure 6 — effective memory transfer latency (Eq. 1-2) for the
// {gaussian, needle} workload: expected latency (from the homogeneous runs)
// vs the default concurrent behaviour vs the memory-synchronization
// approach.
//
// Paper result: the baseline's average effective latency per application
// rises up to 8x over the expectation; the synchronized approach restores it
// to the expected estimate.
#include <cstdio>

#include "bench/common.hpp"
#include "common/stats.hpp"

int main() {
  using namespace hq;
  using namespace hq::bench;

  print_header("Figure 6",
               "effective HtoD memory transfer latency, {gaussian, needle}, "
               "NA = NS = 32");

  // Expected latency: the per-application HtoD latency measured in the
  // homogeneous case with no copy-queue contention (a single application has
  // exclusive use of the DMA engine), averaged across the pairing — the
  // paper's "expected effective memory transfer latency".
  const auto gaussian_homo = run_homogeneous("gaussian", 1, 1);
  const auto needle_homo = run_homogeneous("needle", 1, 1);
  const double expected_gaussian =
      fw::mean_htod_effective_latency(gaussian_homo.apps);
  const double expected_needle =
      fw::mean_htod_effective_latency(needle_homo.apps);
  const double expected = 0.5 * (expected_gaussian + expected_needle);

  const Pair pair{"gaussian", "needle"};
  const auto baseline = run_pair(pair, 32, 32, fw::Order::NaiveFifo, false);
  const auto synced = run_pair(pair, 32, 32, fw::Order::NaiveFifo, true);

  const double base_le = fw::mean_htod_effective_latency(baseline.apps);
  const double sync_le = fw::mean_htod_effective_latency(synced.apps);

  TextTable table;
  table.set_header({"configuration", "mean effective HtoD latency", "vs expected"});
  table.add_row({"expected (homogeneous)",
                 format_duration(static_cast<DurationNs>(expected)), "1.00x"});
  table.add_row({"default concurrent",
                 format_duration(static_cast<DurationNs>(base_le)),
                 format_fixed(base_le / expected, 2) + "x"});
  table.add_row({"memory synchronization",
                 format_duration(static_cast<DurationNs>(sync_le)),
                 format_fixed(sync_le / expected, 2) + "x"});
  std::printf("%s\n", table.render().c_str());

  std::printf("paper: baseline up to 8x expected; synchronized ~= expected\n");
  std::printf("makespan: default %.2f ms, synchronized %.2f ms (%s)\n",
              to_milliseconds(baseline.makespan),
              to_milliseconds(synced.makespan),
              format_percent(fw::improvement(
                                 static_cast<double>(baseline.makespan),
                                 static_cast<double>(synced.makespan)))
                  .c_str());
  return 0;
}
