#include "common/stats.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"

namespace hq {

void RunningStats::add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  // Chan et al. pairwise combination of Welford accumulators; merging
  // per-shard stats in a fixed order reproduces the serial fold exactly
  // enough for reporting (and bit-exactly for count/sum/min/max).
  const double n_a = static_cast<double>(count_);
  const double n_b = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double n = n_a + n_b;
  m2_ += other.m2_ + delta * delta * n_a * n_b / n;
  mean_ += delta * n_b / n;
  count_ += other.count_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStats::mean() const { return count_ == 0 ? 0.0 : mean_; }
double RunningStats::min() const { return count_ == 0 ? 0.0 : min_; }
double RunningStats::max() const { return count_ == 0 ? 0.0 : max_; }

double RunningStats::variance() const {
  if (count_ < 2) return 0.0;
  // m2_ can drift a hair below zero from floating-point cancellation on
  // near-constant series; clamp so stddev() never returns NaN.
  return std::max(0.0, m2_ / static_cast<double>(count_ - 1));
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double percentile(std::vector<double> samples, double p) {
  // Validate p before the size short-circuits so misuse (p out of range or
  // NaN) is caught on every input, including empty and single-sample ones.
  HQ_CHECK(p >= 0.0 && p <= 100.0);
  if (samples.empty()) return 0.0;
  std::sort(samples.begin(), samples.end());
  if (samples.size() == 1) return samples.front();
  const double rank = (p / 100.0) * static_cast<double>(samples.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const auto hi = std::min(lo + 1, samples.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return samples[lo] + frac * (samples[hi] - samples[lo]);
}

double trapezoid_integral(const std::vector<std::pair<double, double>>& xy) {
  if (xy.size() < 2) return 0.0;
  double acc = 0.0;
  for (std::size_t i = 1; i < xy.size(); ++i) {
    const double dx = xy[i].first - xy[i - 1].first;
    acc += dx * 0.5 * (xy[i].second + xy[i - 1].second);
  }
  return acc;
}

}  // namespace hq
