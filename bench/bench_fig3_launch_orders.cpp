// Figure 3 — representative launch orders for the five application
// scheduling techniques, for a workload of m = 4 copies of AX and n = 4
// copies of AY (8 applications total). This regenerates the paper's figure
// verbatim from the schedule generators (the same sequences are asserted
// exactly in tests/hyperq/schedule_test.cpp).
#include <cstdio>

#include "bench/common.hpp"

int main() {
  using namespace hq;
  using namespace hq::bench;

  print_header("Figure 3",
               "representative launch orders, m = 4 copies of X, n = 4 "
               "copies of Y");

  const std::vector<std::string> names = {"X", "Y"};
  const int counts[] = {4, 4};

  TextTable table;
  std::vector<std::string> header;
  for (fw::Order order : fw::kAllOrders) {
    header.push_back(fw::order_name(order));
  }
  table.set_header(header);

  std::vector<std::vector<fw::Slot>> schedules;
  for (fw::Order order : fw::kAllOrders) {
    Rng rng(42);
    schedules.push_back(fw::make_schedule(order, counts, &rng));
  }
  for (std::size_t row = 0; row < 8; ++row) {
    std::vector<std::string> cells;
    for (const auto& schedule : schedules) {
      cells.push_back(fw::slot_to_string(schedule[row], names));
    }
    table.add_row(cells);
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("(Random Shuffle uses seed 42; the other four columns are the "
              "paper's Figure 3 (a), (b), (d), (e) exactly)\n");
  return 0;
}
