#include "rodinia/registry.hpp"

#include "common/check.hpp"
#include "rodinia/gaussian.hpp"
#include "rodinia/hotspot.hpp"
#include "rodinia/lud.hpp"
#include "rodinia/needle.hpp"
#include "rodinia/nn.hpp"
#include "rodinia/pathfinder.hpp"
#include "rodinia/srad.hpp"

namespace hq::rodinia {

const std::vector<std::string>& app_names() {
  // The paper's Table I four, plus the hotspot extension port.
  static const std::vector<std::string> names = {
      "gaussian", "nn", "needle", "srad", "hotspot", "lud", "pathfinder"};
  return names;
}

bool is_app_name(const std::string& name) {
  const auto& names = app_names();
  return std::find(names.begin(), names.end(), name) != names.end();
}

fw::WorkloadItem make_app(const std::string& name, const AppParams& params) {
  if (name == "gaussian") {
    GaussianParams p;
    if (params.size) p.n = *params.size;
    if (params.seed) p.seed = *params.seed;
    return fw::WorkloadItem{
        name, [p] { return std::make_unique<GaussianApp>(p); }};
  }
  if (name == "nn") {
    NnParams p;
    if (params.size) p.records = *params.size;
    if (params.seed) p.seed = *params.seed;
    return fw::WorkloadItem{name, [p] { return std::make_unique<NnApp>(p); }};
  }
  if (name == "needle") {
    NeedleParams p;
    if (params.size) p.n = *params.size;
    if (params.seed) p.seed = *params.seed;
    return fw::WorkloadItem{
        name, [p] { return std::make_unique<NeedleApp>(p); }};
  }
  if (name == "hotspot") {
    HotspotParams p;
    if (params.size) p.size = *params.size;
    if (params.iterations) p.iterations = *params.iterations;
    if (params.seed) p.seed = *params.seed;
    return fw::WorkloadItem{name,
                            [p] { return std::make_unique<HotspotApp>(p); }};
  }
  if (name == "lud") {
    LudParams p;
    if (params.size) p.n = *params.size;
    if (params.seed) p.seed = *params.seed;
    return fw::WorkloadItem{name, [p] { return std::make_unique<LudApp>(p); }};
  }
  if (name == "pathfinder") {
    PathfinderParams p;
    if (params.size) p.cols = *params.size;
    if (params.iterations) p.rows = *params.iterations;
    if (params.seed) p.seed = *params.seed;
    return fw::WorkloadItem{
        name, [p] { return std::make_unique<PathfinderApp>(p); }};
  }
  if (name == "srad") {
    SradParams p;
    if (params.size) p.size = *params.size;
    if (params.iterations) p.iterations = *params.iterations;
    if (params.seed) p.seed = *params.seed;
    return fw::WorkloadItem{name,
                            [p] { return std::make_unique<SradApp>(p); }};
  }
  HQ_CHECK_MSG(false, "unknown application '" << name << "'");
  return {};
}

std::vector<fw::WorkloadItem> build_workload(
    const std::vector<fw::Slot>& schedule,
    const std::vector<std::string>& type_names,
    const std::vector<AppParams>& params) {
  HQ_CHECK(type_names.size() == params.size());
  std::vector<fw::WorkloadItem> workload;
  workload.reserve(schedule.size());
  for (const fw::Slot& slot : schedule) {
    HQ_CHECK(slot.type >= 0 &&
             static_cast<std::size_t>(slot.type) < type_names.size());
    workload.push_back(make_app(type_names[slot.type],
                                params[static_cast<std::size_t>(slot.type)]));
  }
  return workload;
}

std::vector<KernelConfigRow> kernel_config_rows() {
  // The paper's Table III, reproduced from the default launch shapes.
  return {
      {"gaussian", "Fan1", "512 x 512", 511, "(1, 1, 1)", "(512, 1, 1)", 1,
       512},
      {"gaussian", "Fan2", "512 x 512", 511, "(32, 32, 1)", "(16, 16, 1)",
       1024, 256},
      {"needle", "needle_cuda_shared_1", "512 x 512", 16,
       "(1, 1, 1) ... (16, 1, 1)", "(32, 1, 1)", 16, 32},
      {"needle", "needle_cuda_shared_2", "512 x 512", 15,
       "(15, 1, 1) ... (1, 1, 1)", "(32, 1, 1)", 15, 32},
      {"srad", "srad_cuda_1", "512 x 512", 10, "(32, 32, 1)", "(16, 16, 1)",
       1024, 256},
      {"srad", "srad_cuda_2", "512 x 512", 10, "(32, 32, 1)", "(16, 16, 1)",
       1024, 256},
      {"knearest", "euclid", "42764", 1, "(168, 1, 1)", "(256, 1, 1)", 168,
       256},
  };
}

}  // namespace hq::rodinia
