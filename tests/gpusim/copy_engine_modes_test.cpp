// Single-copy-engine (GeForce-class) device mode: both transfer directions
// share one DMA engine, so HtoD and DtoH serialize against each other — the
// overlap the paper's K20 gets from its dual engines disappears.
#include <gtest/gtest.h>

#include "gpusim/device.hpp"
#include "sim/simulator.hpp"
#include "trace/trace.hpp"

namespace hq::gpu {
namespace {

class SingleEngineTest : public ::testing::Test {
 protected:
  SingleEngineTest()
      : device_(sim_, DeviceSpec::single_copy_engine(), &recorder_) {
    device_.register_stream(0);
    device_.register_stream(1);
  }

  sim::Simulator sim_;
  trace::Recorder recorder_;
  Device device_;
};

TEST_F(SingleEngineTest, SpecPresetHasOneEngine) {
  EXPECT_EQ(device_.spec().num_copy_engines, 1);
  // Both accessors expose the shared engine.
  EXPECT_EQ(&device_.htod_engine(), &device_.dtoh_engine());
}

TEST_F(SingleEngineTest, OppositeDirectionsSerialize) {
  device_.submit_copy(0, CopyRequest{CopyDirection::HtoD, kMiB, nullptr}, {});
  device_.submit_copy(1, CopyRequest{CopyDirection::DtoH, kMiB, nullptr}, {});
  sim_.run();
  const auto h = recorder_.by_kind(trace::SpanKind::MemcpyHtoD);
  const auto d = recorder_.by_kind(trace::SpanKind::MemcpyDtoH);
  ASSERT_EQ(h.size(), 1u);
  ASSERT_EQ(d.size(), 1u);
  // No overlap: the DtoH transfer starts when the HtoD one ends.
  EXPECT_EQ(d[0].begin, h[0].end);
}

TEST_F(SingleEngineTest, DualEngineDeviceOverlapsTheSameWorkload) {
  sim::Simulator sim2;
  trace::Recorder rec2;
  Device dual(sim2, DeviceSpec::tesla_k20(), &rec2);
  dual.register_stream(0);
  dual.register_stream(1);

  device_.submit_copy(0, CopyRequest{CopyDirection::HtoD, 4 * kMiB, nullptr},
                      {});
  device_.submit_copy(1, CopyRequest{CopyDirection::DtoH, 4 * kMiB, nullptr},
                      {});
  dual.submit_copy(0, CopyRequest{CopyDirection::HtoD, 4 * kMiB, nullptr}, {});
  dual.submit_copy(1, CopyRequest{CopyDirection::DtoH, 4 * kMiB, nullptr}, {});
  sim_.run();
  sim2.run();
  EXPECT_GT(sim_.now(), sim2.now());  // single engine takes ~2x as long
}

TEST_F(SingleEngineTest, StreamOrderingStillHolds) {
  std::vector<int> order;
  device_.submit_copy(0, CopyRequest{CopyDirection::HtoD, 1000, nullptr}, {},
                      [&] { order.push_back(1); });
  device_.submit_copy(0, CopyRequest{CopyDirection::DtoH, 1000, nullptr}, {},
                      [&] { order.push_back(2); });
  device_.submit_copy(0, CopyRequest{CopyDirection::HtoD, 1000, nullptr}, {},
                      [&] { order.push_back(3); });
  sim_.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST_F(SingleEngineTest, PowerCountsTheSharedEngineOnce) {
  device_.submit_copy(0, CopyRequest{CopyDirection::HtoD, 8 * kMiB, nullptr},
                      {});
  sim_.run_until(100 * kMicrosecond);
  const Watts p = device_.instantaneous_power();
  const DeviceSpec& spec = device_.spec();
  EXPECT_NEAR(p, spec.idle_power + spec.active_base_power +
                     spec.copy_engine_power,
              1e-9);
  sim_.run();
}

TEST(DeviceSpecModesTest, InvalidEngineCountRejected) {
  sim::Simulator sim;
  DeviceSpec spec = DeviceSpec::tesla_k20();
  spec.num_copy_engines = 3;
  EXPECT_THROW(Device(sim, spec), hq::Error);
  spec.num_copy_engines = 0;
  EXPECT_THROW(Device(sim, spec), hq::Error);
}

}  // namespace
}  // namespace hq::gpu
