// Virtual-time synchronization primitives for simulated host threads.
//
// These mirror the host-side constructs the paper's framework uses on real
// hardware: the memory-transfer mutex (Section III-B), completion latches for
// joining child threads, and one-shot events for start/stop signalling. All
// wakeups are scheduled through the simulator's event queue in FIFO order, so
// contention outcomes are deterministic.
#pragma once

#include <coroutine>
#include <cstddef>
#include <deque>

#include "common/check.hpp"
#include "sim/simulator.hpp"

namespace hq::sim {

/// One-shot broadcast event: co_await wait() suspends until fire(). Waiters
/// arriving after fire() do not suspend.
class Event {
 public:
  explicit Event(Simulator& sim) : sim_(sim) {}
  Event(const Event&) = delete;
  Event& operator=(const Event&) = delete;

  bool fired() const { return fired_; }

  /// Fires the event; wakes all current waiters in arrival order at the
  /// current virtual instant. Firing twice is a contract violation.
  void fire();

  auto wait() {
    struct Awaiter {
      Event& ev;
      bool await_ready() const noexcept { return ev.fired_; }
      void await_suspend(std::coroutine_handle<> h) {
        ev.waiters_.push_back(h);
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{*this};
  }

 private:
  Simulator& sim_;
  bool fired_ = false;
  std::deque<std::coroutine_handle<>> waiters_;
};

/// FIFO-fair mutex in virtual time. This is the primitive behind the paper's
/// pseudo-burst memory transfer mechanism: a task holds the lock across its
/// entire host-to-device transfer stage.
class Mutex {
 public:
  explicit Mutex(Simulator& sim) : sim_(sim) {}
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  bool locked() const { return locked_; }
  std::size_t waiters() const { return waiters_.size(); }

  /// Awaitable acquire. Returns immediately (without suspending) when the
  /// mutex is free; otherwise queues FIFO.
  auto lock() {
    struct Awaiter {
      Mutex& m;
      bool await_ready() const noexcept {
        if (!m.locked_) {
          m.locked_ = true;
          return true;
        }
        return false;
      }
      void await_suspend(std::coroutine_handle<> h) { m.waiters_.push_back(h); }
      void await_resume() const noexcept {}
    };
    return Awaiter{*this};
  }

  /// Releases the mutex. If tasks are queued, ownership transfers to the
  /// oldest waiter, which resumes at the current virtual instant.
  void unlock();

  /// Move-only RAII guard; unlocks on destruction.
  class Guard {
   public:
    explicit Guard(Mutex* m) : mutex_(m) {}
    Guard(Guard&& other) noexcept : mutex_(std::exchange(other.mutex_, nullptr)) {}
    Guard& operator=(Guard&& other) noexcept {
      if (this != &other) {
        reset();
        mutex_ = std::exchange(other.mutex_, nullptr);
      }
      return *this;
    }
    Guard(const Guard&) = delete;
    Guard& operator=(const Guard&) = delete;
    ~Guard() { reset(); }

    /// Releases the lock early.
    void reset() {
      if (mutex_ != nullptr) {
        std::exchange(mutex_, nullptr)->unlock();
      }
    }
    bool owns_lock() const { return mutex_ != nullptr; }

   private:
    Mutex* mutex_;
  };

  /// Awaitable acquire returning an RAII guard:
  ///   auto guard = co_await mutex.scoped_lock();
  auto scoped_lock() {
    struct Awaiter {
      Mutex& m;
      bool await_ready() const noexcept {
        if (!m.locked_) {
          m.locked_ = true;
          return true;
        }
        return false;
      }
      void await_suspend(std::coroutine_handle<> h) { m.waiters_.push_back(h); }
      Guard await_resume() const noexcept { return Guard(&m); }
    };
    return Awaiter{*this};
  }

 private:
  Simulator& sim_;
  bool locked_ = false;
  std::deque<std::coroutine_handle<>> waiters_;
};

/// Counting semaphore in virtual time, FIFO-fair.
class Semaphore {
 public:
  Semaphore(Simulator& sim, std::size_t initial) : sim_(sim), count_(initial) {}
  Semaphore(const Semaphore&) = delete;
  Semaphore& operator=(const Semaphore&) = delete;

  std::size_t available() const { return count_; }

  auto acquire() {
    struct Awaiter {
      Semaphore& s;
      bool await_ready() const noexcept {
        if (s.count_ > 0) {
          --s.count_;
          return true;
        }
        return false;
      }
      void await_suspend(std::coroutine_handle<> h) { s.waiters_.push_back(h); }
      void await_resume() const noexcept {}
    };
    return Awaiter{*this};
  }

  void release();

 private:
  Simulator& sim_;
  std::size_t count_;
  std::deque<std::coroutine_handle<>> waiters_;
};

/// Countdown latch: wait() completes once count_down() has been called the
/// configured number of times. Used by the harness parent to join its
/// application child tasks (the paper's "after all child threads have
/// completed").
class CountdownLatch {
 public:
  CountdownLatch(Simulator& sim, std::size_t count)
      : event_(sim), remaining_(count) {
    if (remaining_ == 0) event_.fire();
  }

  std::size_t remaining() const { return remaining_; }

  void count_down() {
    HQ_CHECK_MSG(remaining_ > 0, "count_down below zero");
    if (--remaining_ == 0) event_.fire();
  }

  auto wait() { return event_.wait(); }

 private:
  Event event_;
  std::size_t remaining_;
};

}  // namespace hq::sim
