// Deterministic circuit breaker over the fault-injection layer
// (library hq_fault).
//
// The serving layer (src/serve) keeps one breaker per application class.
// Failures feeding it are the recovery events PR 4 introduced: transient
// kernel-launch rejections, launch aborts (retry budget exhausted, stream in
// fault state), allocation failures, and copy-engine stalls attributed to
// the class. The state machine is the classic three-state breaker:
//
//   Closed   — traffic flows; `failure_threshold` consecutive failures trip
//              the breaker.
//   Open     — all new work for the class is rejected (shed at admission,
//              consuming no device time) until `cooldown` of virtual time
//              has passed.
//   HalfOpen — exactly one probe job is admitted; its success closes the
//              breaker, any failure re-opens it for another cooldown.
//
// PR 10 adds a fourth, terminal state for the integrity pipeline:
//
//   Blocklisted — the subject is permanently removed from service (a device
//                 whose SDC score crossed the blocklist threshold). Unlike
//                 Open, there is no cooldown and no probe: a blocklisted
//                 breaker never admits again, and success/failure signals
//                 from in-flight stragglers are ignored.
//
// Everything is driven by the simulator's virtual clock and the caller's
// event order, so breaker trajectories are bit-identical across runs and
// job counts (the repository-wide determinism contract).
#pragma once

#include <cstdint>

#include "common/units.hpp"

namespace hq::fault {

class CircuitBreaker {
 public:
  enum class State : std::uint8_t { Closed, Open, HalfOpen, Blocklisted };

  struct Config {
    /// Consecutive failures that trip a Closed breaker.
    int failure_threshold = 3;
    /// Virtual time an Open breaker rejects work before probing.
    DurationNs cooldown = 20 * kMillisecond;
  };

  CircuitBreaker();
  explicit CircuitBreaker(Config config);

  /// Admission gate. In Closed: always true. In Open: false until the
  /// cooldown elapses, at which point the breaker moves to HalfOpen and
  /// admits exactly one probe. In HalfOpen: false while the probe is
  /// outstanding.
  bool allow(TimeNs now);

  /// Non-mutating preview of allow(): would a job offered at `now` be
  /// admitted? Counts nothing and performs no state transition, so callers
  /// (the fleet placement policies) can probe many breakers per decision
  /// and call allow() only on the one they pick.
  bool would_allow(TimeNs now) const;

  /// One unit of work for this class finished successfully. Resets the
  /// consecutive-failure count; resolves a HalfOpen probe by closing.
  void record_success(TimeNs now);

  /// One failure signal (transient launch rejection, launch abort,
  /// allocation failure, or an attributed copy-engine stall). Trips a
  /// Closed breaker at the threshold; re-opens a HalfOpen breaker.
  void record_failure(TimeNs now);

  /// Permanently removes the subject from service (integrity blocklist).
  /// Terminal: no cooldown, no probe, and later success/failure signals are
  /// ignored. Idempotent; records the first blocklist time.
  void blocklist(TimeNs now);

  State state() const { return state_; }
  bool open() const { return state_ == State::Open; }
  bool blocklisted() const { return state_ == State::Blocklisted; }
  int consecutive_failures() const { return consecutive_failures_; }

  // --- counters (monotonic, for reports) -----------------------------------
  std::uint64_t trips() const { return trips_; }
  std::uint64_t probes() const { return probes_; }
  std::uint64_t rejected() const { return rejected_; }
  std::uint64_t failures() const { return failures_; }
  std::uint64_t successes() const { return successes_; }
  /// Time of the most recent Closed/HalfOpen -> Open transition.
  TimeNs last_trip_time() const { return last_trip_time_; }
  /// End of the current Open cooldown (meaningful while open()); lets the
  /// fleet drain loop schedule its retry pump at the exact probe instant.
  TimeNs open_until() const { return open_until_; }
  /// Time of the blocklist() transition (meaningful while blocklisted()).
  TimeNs blocklisted_at() const { return blocklisted_at_; }

  const Config& config() const { return config_; }

 private:
  void trip(TimeNs now);

  Config config_;
  State state_ = State::Closed;
  int consecutive_failures_ = 0;
  bool probe_outstanding_ = false;
  TimeNs open_until_ = 0;
  TimeNs last_trip_time_ = 0;
  TimeNs blocklisted_at_ = 0;
  std::uint64_t trips_ = 0;
  std::uint64_t probes_ = 0;
  std::uint64_t rejected_ = 0;
  std::uint64_t failures_ = 0;
  std::uint64_t successes_ = 0;
};

const char* breaker_state_name(CircuitBreaker::State state);

}  // namespace hq::fault
