// Figure 8 — scheduling-order comparison with the memory synchronization
// technique enabled, normalized per pairing to the highest-latency ordering
// from Figure 7 (the default-transfer worst case).
//
// Paper result: with synchronized transfers, the best ordering achieves up
// to 31.8% improvement (7.8% on average) over the worst default-transfer
// ordering.
#include <cstdio>

#include "bench/common.hpp"
#include "common/stats.hpp"

int main(int argc, char** argv) {
  using namespace hq;
  using namespace hq::bench;

  const int jobs = parse_jobs(argc, argv);
  print_header("Figure 8",
               "scheduling-order impact with memory synchronization, "
               "NS = NA = 32 (normalized to Figure 7's worst order)");

  // Per pairing: 5 default-transfer baseline runs + 5 memory-sync runs.
  const std::vector<Pair> pairs = hetero_pairs();
  constexpr std::size_t kOrders = std::size(fw::kAllOrders);
  const std::size_t per_pair = 2 * kOrders;
  const auto results =
      run_indexed(jobs, pairs.size() * per_pair, [&](std::size_t i) {
        const std::size_t r = i % per_pair;
        return run_pair(pairs[i / per_pair], 32, 32,
                        fw::kAllOrders[r % kOrders],
                        /*memory_sync=*/r >= kOrders);
      });

  RunningStats effect_stats;
  double max_effect = 0.0;
  TextTable table;
  std::vector<std::string> header = {"pair"};
  for (fw::Order order : fw::kAllOrders) header.push_back(fw::order_name(order));
  header.push_back("best vs fig7 worst");
  table.set_header(header);

  for (std::size_t p = 0; p < pairs.size(); ++p) {
    const Pair& pair = pairs[p];
    // Figure 7 baseline: worst default-transfer ordering.
    double fig7_worst = 0.0;
    for (std::size_t k = 0; k < kOrders; ++k) {
      fig7_worst = std::max(
          fig7_worst,
          static_cast<double>(results[p * per_pair + k].makespan));
    }

    std::vector<double> makespans;
    for (std::size_t k = 0; k < kOrders; ++k) {
      makespans.push_back(static_cast<double>(
          results[p * per_pair + kOrders + k].makespan));
    }
    const double best = *std::min_element(makespans.begin(), makespans.end());

    std::vector<std::string> row = {pair.label()};
    for (double m : makespans) row.push_back(format_fixed(fig7_worst / m, 3));
    const double effect = (fig7_worst - best) / fig7_worst;
    effect_stats.add(effect);
    max_effect = std::max(max_effect, effect);
    row.push_back(format_percent(effect));
    table.add_row(row);
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("(cells: performance normalized to the worst default-transfer "
              "order, higher is better)\n\n");
  std::printf("memory-sync + best order: avg %s, max %s   "
              "(paper: avg +7.8%%, max +31.8%%)\n",
              format_percent(effect_stats.mean()).c_str(),
              format_percent(max_effect).c_str());
  return 0;
}
