// Execution-span recording.
//
// The simulated device and runtime emit spans (kernel executions, memory
// transfers, lock waits) tagged with a lane (stream index or engine) and the
// owning application instance. The recorder is the data source for:
//   * the ASCII timeline renderer (reproducing the paper's Visual Profiler
//     screenshots, Figs. 1/2/5, as text),
//   * Chrome-trace JSON export (chrome://tracing / Perfetto),
//   * the effective-memory-transfer-latency metric (paper Eq. 1-2).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/units.hpp"

namespace hq::trace {

enum class SpanKind : std::uint8_t {
  MemcpyHtoD,
  MemcpyDtoH,
  Kernel,
  HostCompute,
  LockWait,
};

/// Short label for a span kind ("HtoD", "DtoH", "kernel", ...).
const char* span_kind_name(SpanKind kind);

/// One closed interval of activity attributed to a lane and an application.
struct Span {
  std::int32_t lane = 0;    ///< row identifier; stream index by convention
  std::int32_t app_id = -1; ///< owning application instance, -1 if none
  SpanKind kind = SpanKind::Kernel;
  std::string name;
  TimeNs begin = 0;
  TimeNs end = 0;

  DurationNs duration() const { return end - begin; }
};

class Recorder;

/// Stable 64-bit digest of a recorder's spans (FNV-1a over every field of
/// every span, in recording order). Bit-identical across platforms and
/// toolchains, so it serves as the determinism fingerprint of a whole run:
/// two runs of the same scenario must produce equal digests, and any change
/// to the simulated schedule shows up as a digest change. Used by the golden
/// tests, the seed-sweep determinism tests, and the hqfuzz oracles.
std::uint64_t digest(const Recorder& recorder);

/// Append-only collection of spans with simple query helpers.
class Recorder {
 public:
  void add(Span span);

  const std::vector<Span>& spans() const { return spans_; }
  bool empty() const { return spans_.empty(); }
  std::size_t size() const { return spans_.size(); }
  void clear() { spans_.clear(); }

  std::vector<Span> by_app(std::int32_t app_id) const;
  std::vector<Span> by_kind(SpanKind kind) const;
  std::vector<Span> by_lane(std::int32_t lane) const;

  /// Earliest span begin; nullopt when empty.
  std::optional<TimeNs> min_time() const;
  /// Latest span end; nullopt when empty.
  std::optional<TimeNs> max_time() const;

 private:
  std::vector<Span> spans_;
};

}  // namespace hq::trace
