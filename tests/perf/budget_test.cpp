// Deterministic event-count and allocation budget regression gate.
//
// Runs the canonical gaussian+nn pair at NA = NS = 16 and pins, exactly:
// the number of simulation events dispatched, the number of distinct span
// names interned, and that zero event callbacks overflowed the pool's slot
// size. On top of that it holds the run to a heap-allocation *budget*
// measured through a counting global operator new: the budget has ~25%
// headroom over the measured value, so routine drift passes but an
// accidental per-event or per-span allocation (about 1.3M events / 500K
// spans per run) blows through it immediately.
//
// This file is its own test binary: replacing the global allocator is a
// program-wide decision that must not leak into the other suites.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <new>

#include "bench/common.hpp"
#include "trace/trace.hpp"

namespace {

std::atomic<std::uint64_t> g_allocations{0};
std::atomic<std::uint64_t> g_allocated_bytes{0};

}  // namespace

// Counting global allocator. Counts every successful allocation; the test
// reads deltas around the measured region (single-threaded, so the deltas
// are exact).
void* operator new(std::size_t size) {
  void* p = std::malloc(size);
  if (p == nullptr) throw std::bad_alloc{};
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  g_allocated_bytes.fetch_add(size, std::memory_order_relaxed);
  return p;
}

void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  void* p = std::malloc(size);
  if (p != nullptr) {
    g_allocations.fetch_add(1, std::memory_order_relaxed);
    g_allocated_bytes.fetch_add(size, std::memory_order_relaxed);
  }
  return p;
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
void* operator new[](std::size_t size) { return operator new(size); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace hq {
namespace {

// ---- pinned exact values for gaussian+nn, NA=NS=16, NaiveFifo, seed 42 ----
// These are consequences of the simulation model, not the host: a change
// means the event schedule or span stream moved for everyone.
constexpr std::uint64_t kExpectedEvents = 683'135;
constexpr std::size_t kExpectedNameCount = 8;
// Heap-allocation budget for the run (measured + ~25% headroom). A per-event
// allocation regression overshoots this by two orders of magnitude.
constexpr std::uint64_t kAllocationBudget = 64'000;  // measured ~50.6K

fw::HarnessResult run_canonical() {
  return bench::run_pair({"gaussian", "nn"}, 16, 16, fw::Order::NaiveFifo,
                         /*memory_sync=*/false);
}

TEST(BudgetTest, EventCountAndInterningArePinnedExactly) {
  const auto result = run_canonical();
  EXPECT_EQ(result.events_processed, kExpectedEvents);
  EXPECT_EQ(result.trace->name_count(), kExpectedNameCount);
  // Spans vastly outnumber names: interning actually deduplicates.
  EXPECT_GT(result.trace->size(), result.trace->name_count() * 100);
}

TEST(BudgetTest, NoCallbackEverOverflowsThePool) {
  const auto result = run_canonical();
  const auto& cb = result.callback_stats;
  EXPECT_EQ(cb.oversize, 0u)
      << "a scheduled closure outgrew EventPool::kSlotBytes — shrink the "
         "capture or raise the slot size deliberately";
  // The hot path is dominated by inline storage (coroutine resumes and
  // small device closures), with the pool covering the rest.
  EXPECT_GT(cb.inline_stored, cb.pooled);
  EXPECT_LE(cb.pool_slabs, 4u);
}

TEST(BudgetTest, RunStaysWithinAllocationBudget) {
  // Warm-up run: registry singletons, gtest bookkeeping, freelist slabs.
  (void)run_canonical();

  const std::uint64_t allocs_before =
      g_allocations.load(std::memory_order_relaxed);
  const auto result = run_canonical();
  const std::uint64_t allocs =
      g_allocations.load(std::memory_order_relaxed) - allocs_before;

  EXPECT_LE(allocs, kAllocationBudget)
      << "steady-state run allocated " << allocs << " times (budget "
      << kAllocationBudget << ", events " << result.events_processed
      << ") — did a per-event or per-span allocation sneak back in?";
  // And the budget must stay far below one allocation per event.
  EXPECT_LT(kAllocationBudget, result.events_processed / 4);
}

}  // namespace
}  // namespace hq
