#include "fault/lifecycle.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"
#include "common/hash.hpp"

namespace hq::fault {
namespace {

// Draw-stream domain for per-cycle flap jitter; disjoint from the injector
// domains in fault.cpp (0x01..0x04).
constexpr std::uint64_t kDomainFlap = 0x05;

}  // namespace

DeviceLifecycle::DeviceLifecycle(const FaultPlan& plan) : plan_(plan) {
  HQ_CHECK_MSG(plan_.enabled, "DeviceLifecycle needs an enabled plan");
  HQ_CHECK(plan_.flap_jitter >= 0.0 && plan_.flap_jitter <= 1.0);
  if (flaps()) {
    HQ_CHECK_MSG(plan_.flap_period > 1,
                 "flap period must leave room for an up window");
  }
}

DurationNs DeviceLifecycle::flap_down_for(std::uint64_t cycle) const {
  if (!flaps()) return 0;
  double down = static_cast<double>(plan_.flap_down);
  if (plan_.flap_jitter > 0.0) {
    Fnv1a64 hash;
    hash.mix_u64(plan_.seed);
    hash.mix_u64(kDomainFlap);
    hash.mix_u64(cycle);
    const double u = static_cast<double>(hash.value() >> 11) * 0x1.0p-53;
    down *= 1.0 + plan_.flap_jitter * (2.0 * u - 1.0);
  }
  const auto drawn = static_cast<DurationNs>(std::llround(down));
  // Keep both the down window and the up remainder non-empty so every flap
  // edge is a real state change.
  return std::clamp<DurationNs>(drawn, 1, plan_.flap_period - 1);
}

bool DeviceLifecycle::up(TimeNs now) const {
  if (crashes() && now >= plan_.crash_at) return false;
  if (flaps()) {
    const auto cycle =
        static_cast<std::uint64_t>(now / plan_.flap_period);
    if (now % plan_.flap_period < flap_down_for(cycle)) return false;
  }
  return true;
}

std::optional<LifecycleTransition> DeviceLifecycle::next_transition(
    TimeNs now) const {
  if (!crashes() && !flaps()) return std::nullopt;
  if (crashes() && now >= plan_.crash_at) return std::nullopt;  // down forever
  const bool cur = up(now);
  TimeNs t = now;
  while (true) {
    // Next candidate edge after t: the current flap window boundary and the
    // crash instant are the only places up() can change.
    TimeNs next = 0;
    if (flaps()) {
      const auto cycle = static_cast<std::uint64_t>(t / plan_.flap_period);
      const TimeNs start =
          static_cast<TimeNs>(cycle) * plan_.flap_period;
      const TimeNs down_end = start + flap_down_for(cycle);
      next = t < down_end ? down_end : start + plan_.flap_period;
    }
    if (crashes() && plan_.crash_at > t) {
      next = flaps() ? std::min(next, plan_.crash_at) : plan_.crash_at;
    }
    const bool state = up(next);
    if (state != cur) return LifecycleTransition{next, !state};
    // A crash landing inside a flap-down window changes nothing now and
    // pins the device down forever: no further transitions.
    if (crashes() && next >= plan_.crash_at) return std::nullopt;
    t = next;
  }
}

}  // namespace hq::fault
