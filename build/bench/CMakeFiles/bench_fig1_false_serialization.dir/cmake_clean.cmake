file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1_false_serialization.dir/bench_fig1_false_serialization.cpp.o"
  "CMakeFiles/bench_fig1_false_serialization.dir/bench_fig1_false_serialization.cpp.o.d"
  "bench_fig1_false_serialization"
  "bench_fig1_false_serialization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_false_serialization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
