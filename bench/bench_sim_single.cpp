// bench_sim_single — single-run simulator throughput and allocation record.
//
// Runs the twelve canonical single-simulator scenarios (six heterogeneous
// pairings x default/memory-sync transfers at NA = NS = 16, NaiveFifo) back
// to back on one thread and reports, per run and in aggregate: simulation
// events processed, wall time, events/sec, the trace digest, and the event
// callback storage counters (inline / pooled / oversize). Emits
// BENCH_sim_single.json with the aggregate throughput next to the recorded
// pre-overhaul baseline so the speedup is tracked in-repo.
//
// The baseline constant below was measured on the seed code (commit
// d47a068 lineage) via bench_sweep --jobs 1 on the same 60-point
// NA = NS = 16 grid: 18.756 s / 60 runs = 3.199 runs/s. Event counts per
// run are byte-identical across the overhaul (that is the digest
// contract), so runs/sec speedup equals events/sec speedup.
//
// Examples:
//   bench_sim_single                       # prints table, writes JSON
//   bench_sim_single --out BENCH_sim_single.json
#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench/common.hpp"
#include "common/hash.hpp"
#include "common/table.hpp"
#include "tools/cli.hpp"
#include "trace/trace.hpp"

namespace {

/// Seed-code single-thread sweep throughput on this scenario family
/// (see file header for provenance).
constexpr double kBaselineRunsPerSec = 3.19897;

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace hq;
  tools::ArgParser args;
  args.add_option("out", "JSON output path", "BENCH_sim_single.json");
  args.add_flag("help", "show this help");
  if (!args.parse(argc, argv) || args.get_flag("help")) {
    if (!args.error().empty()) {
      std::fprintf(stderr, "error: %s\n", args.error().c_str());
    }
    std::fprintf(stderr, "%s", args.usage("bench_sim_single").c_str());
    return args.get_flag("help") ? 0 : 2;
  }

  constexpr int kNa = 16;
  constexpr int kNs = 16;
  const auto pairs = bench::hetero_pairs();

  TextTable table;
  table.set_header({"workload", "memsync", "events", "wall ms", "events/s",
                    "inline", "pooled", "oversize", "digest"});

  std::uint64_t total_events = 0;
  std::uint64_t total_oversize = 0;
  double total_wall = 0;
  Fnv1a64 combined;
  std::size_t runs = 0;

  const auto t_all = std::chrono::steady_clock::now();
  for (const bool memsync : {false, true}) {
    for (const auto& pair : pairs) {
      const auto t_run = std::chrono::steady_clock::now();
      const auto result = bench::run_pair(pair, kNa, kNs,
                                          fw::Order::NaiveFifo, memsync);
      const double wall = seconds_since(t_run);
      const std::uint64_t digest = trace::digest(*result.trace);
      const auto& cb = result.callback_stats;

      total_events += result.events_processed;
      total_oversize += cb.oversize;
      total_wall += wall;
      combined.mix_u64(digest);
      combined.mix_u64(result.events_processed);
      ++runs;

      std::ostringstream hex;
      hex << std::hex << digest;
      table.add_row(
          {pair.label(), memsync ? "on" : "off",
           std::to_string(result.events_processed),
           format_fixed(wall * 1e3, 1),
           format_fixed(static_cast<double>(result.events_processed) / wall,
                        0),
           std::to_string(cb.inline_stored), std::to_string(cb.pooled),
           std::to_string(cb.oversize), hex.str()});
    }
  }
  const double wall_all = seconds_since(t_all);

  bench::print_header("bench_sim_single",
                      "single-thread simulator throughput, NA=NS=16");
  std::printf("%s", table.render().c_str());

  const double runs_per_s = static_cast<double>(runs) / wall_all;
  const double events_per_s = static_cast<double>(total_events) / total_wall;
  const double speedup = runs_per_s / kBaselineRunsPerSec;
  std::ostringstream combined_hex;
  combined_hex << std::hex << combined.value();
  std::printf(
      "\nruns: %zu  events: %llu  wall: %.3f s  events/s: %.0f  "
      "runs/s: %.2f\nbaseline (seed code, same grid family): %.2f runs/s  "
      "speedup: %.2fx\ncombined digest: 0x%s\n",
      runs, static_cast<unsigned long long>(total_events), wall_all,
      events_per_s, runs_per_s, kBaselineRunsPerSec, speedup,
      combined_hex.str().c_str());

  const std::string out_path = args.get("out");
  {
    std::ofstream out(out_path);
    out << "{\n"
        << "  \"bench\": \"sim_single\",\n"
        << "  \"grid\": {\"pairs\": " << pairs.size()
        << ", \"memsync_modes\": 2, \"na\": " << kNa << ", \"ns\": " << kNs
        << ", \"order\": \"naive-fifo\"},\n"
        << "  \"runs\": " << runs << ",\n"
        << "  \"host_cpus\": " << std::thread::hardware_concurrency() << ",\n"
        << "  \"total_events\": " << total_events << ",\n"
        << "  \"wall_s\": " << wall_all << ",\n"
        << "  \"events_per_s\": " << events_per_s << ",\n"
        << "  \"runs_per_s\": " << runs_per_s << ",\n"
        << "  \"baseline_runs_per_s\": " << kBaselineRunsPerSec << ",\n"
        << "  \"baseline_source\": \"seed-code bench_sweep --jobs 1, same "
           "NA=NS=16 grid family\",\n"
        << "  \"speedup_vs_baseline\": " << speedup << ",\n"
        << "  \"oversize_callbacks\": " << total_oversize << ",\n"
        << "  \"combined_digest\": \"0x" << combined_hex.str() << "\"\n"
        << "}\n";
  }
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}
