#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "check/fuzzer.hpp"

namespace hq::check {
namespace {

TEST(ServeFuzzTest, CaseGenerationIsDeterministic) {
  const ServeFuzzCase a = generate_serve_case(42);
  const ServeFuzzCase b = generate_serve_case(42);
  EXPECT_EQ(a.summary(), b.summary());
  EXPECT_EQ(a.config.seed, b.config.seed);
  EXPECT_EQ(a.config.queue_cap, b.config.queue_cap);
  EXPECT_EQ(a.config.classes.size(), b.config.classes.size());

  const ServeFuzzCase c = generate_serve_case(43);
  EXPECT_NE(a.summary(), c.summary());
}

TEST(ServeFuzzTest, CasesExerciseTheKnobSpace) {
  bool saw_two_classes = false;
  bool saw_deadline = false;
  bool saw_non_drop_tail = false;
  for (std::uint64_t seed = 1; seed <= 24; ++seed) {
    const ServeFuzzCase c = generate_serve_case(seed);
    EXPECT_GE(c.config.classes.size(), 1u);
    EXPECT_GT(c.config.queue_cap, c.config.max_inflight);
    saw_two_classes |= c.config.classes.size() == 2;
    saw_deadline |= c.config.deadline > 0;
    saw_non_drop_tail |= c.config.shed_policy != serve::ShedPolicy::DropTail;
  }
  EXPECT_TRUE(saw_two_classes);
  EXPECT_TRUE(saw_deadline);
  EXPECT_TRUE(saw_non_drop_tail);
}

TEST(ServeFuzzTest, SampledCasesAreClean) {
  // A handful of full serving-oracle evaluations; CI fuzzes wider via
  // hqfuzz --serve-iters.
  for (const std::uint64_t seed : {1ull, 7ull, 1234ull}) {
    std::string summary;
    const std::vector<std::string> problems =
        Fuzzer::run_serve_case(seed, &summary);
    EXPECT_TRUE(problems.empty())
        << "case " << summary << " violated:\n  " << problems[0];
  }
}

TEST(ServeFuzzTest, RunnerAppendsServeIterations) {
  FuzzOptions options;
  options.seed = 5;
  options.iterations = 0;  // serve-only sweep
  options.serve_iterations = 2;
  std::vector<std::string> summaries;
  const FuzzReport report = Fuzzer(options).run(
      [&summaries](int, std::uint64_t, const std::string& summary, bool) {
        summaries.push_back(summary);
      });
  EXPECT_EQ(report.iterations_run, 2);
  EXPECT_TRUE(report.ok()) << report.to_string();
  ASSERT_EQ(summaries.size(), 2u);
  EXPECT_NE(summaries[0].find("serve seed="), std::string::npos);
}

}  // namespace
}  // namespace hq::check
