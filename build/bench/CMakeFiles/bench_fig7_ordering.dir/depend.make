# Empty dependencies file for bench_fig7_ordering.
# This may be replaced when dependencies are built.
