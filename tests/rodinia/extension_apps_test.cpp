// Functional tests for the extension ports (lud, pathfinder): algorithms
// verified against independent references, launch structure checked, and
// interoperability with the paper's workload machinery demonstrated.
#include <gtest/gtest.h>

#include "hyperq/harness.hpp"
#include "rodinia/lud.hpp"
#include "rodinia/pathfinder.hpp"
#include "rodinia/registry.hpp"

namespace hq::rodinia {
namespace {

fw::HarnessConfig functional_config() {
  fw::HarnessConfig config;
  config.functional = true;
  config.num_streams = 1;
  config.monitor_power = false;
  return config;
}

template <typename App, typename Params>
fw::HarnessResult run_single(Params params) {
  fw::Harness harness(functional_config());
  std::vector<fw::WorkloadItem> workload;
  workload.push_back(fw::WorkloadItem{
      "app", [params] { return std::make_unique<App>(params); }});
  return harness.run(workload);
}

// ----------------------------------------------------------------------- lud

TEST(LudTest, FactorizationReconstructsInput) {
  LudParams params;
  params.n = 64;
  const auto result = run_single<LudApp>(params);
  EXPECT_TRUE(result.all_verified);
  // tiles = 4: 4 diagonal + 3 perimeter + 3 internal kernels.
  EXPECT_EQ(result.device_stats.kernels_completed, 10u);
}

TEST(LudTest, PropertySweep) {
  for (int n : {16, 48, 96}) {
    for (std::uint64_t seed : {1ull, 42ull}) {
      LudParams params;
      params.n = n;
      params.seed = seed;
      const auto result = run_single<LudApp>(params);
      EXPECT_TRUE(result.all_verified) << "n=" << n << " seed=" << seed;
    }
  }
}

TEST(LudTest, LaunchShapeShrinksAlongDiagonal) {
  fw::HarnessConfig config;
  config.functional = false;
  config.num_streams = 1;
  config.monitor_power = false;
  fw::Harness harness(config);
  AppParams params;
  params.size = 128;  // 8 tiles
  const auto result = harness.run({make_app("lud", params)});

  std::size_t diagonal = 0, perimeter = 0, internal = 0;
  for (const auto& span : result.trace->by_kind(trace::SpanKind::Kernel)) {
    if (result.trace->name_of(span.name) == "lud_diagonal") ++diagonal;
    if (result.trace->name_of(span.name) == "lud_perimeter") ++perimeter;
    if (result.trace->name_of(span.name) == "lud_internal") ++internal;
  }
  EXPECT_EQ(diagonal, 8u);
  EXPECT_EQ(perimeter, 7u);
  EXPECT_EQ(internal, 7u);
}

TEST(LudTest, SizeMustBeTileAligned) {
  LudParams params;
  params.n = 100;
  EXPECT_THROW(LudApp{params}, hq::Error);
}

// ---------------------------------------------------------------- pathfinder

TEST(PathfinderTest, MatchesReferenceDp) {
  PathfinderParams params;
  params.cols = 1000;
  params.rows = 50;
  params.pyramid_height = 10;
  const auto result = run_single<PathfinderApp>(params);
  EXPECT_TRUE(result.all_verified);
  // ceil((rows-1) / pyramid_height) = 5 kernel calls.
  EXPECT_EQ(result.device_stats.kernels_completed, 5u);
}

TEST(PathfinderTest, PropertySweep) {
  for (int cols : {64, 513, 2000}) {
    for (int pyramid : {1, 7, 100}) {
      PathfinderParams params;
      params.cols = cols;
      params.rows = 40;
      params.pyramid_height = pyramid;
      params.seed = static_cast<std::uint64_t>(cols + pyramid);
      const auto result = run_single<PathfinderApp>(params);
      EXPECT_TRUE(result.all_verified) << cols << "/" << pyramid;
    }
  }
}

TEST(PathfinderTest, PyramidHeightDoesNotChangeResult) {
  // The kernel chunking is a performance knob; the DP answer is identical.
  auto run_with = [](int pyramid) {
    PathfinderParams params;
    params.cols = 500;
    params.rows = 30;
    params.pyramid_height = pyramid;
    return run_single<PathfinderApp>(params).all_verified;
  };
  EXPECT_TRUE(run_with(1));
  EXPECT_TRUE(run_with(3));
  EXPECT_TRUE(run_with(29));
}

TEST(PathfinderTest, DegenerateConfigsRejected) {
  PathfinderParams params;
  params.rows = 1;
  EXPECT_THROW(PathfinderApp{params}, hq::Error);
  PathfinderParams zero_pyramid;
  zero_pyramid.pyramid_height = 0;
  EXPECT_THROW(PathfinderApp{zero_pyramid}, hq::Error);
}

// ----------------------------------------------------- cross-app integration

TEST(ExtensionAppsTest, AllSevenAppsRunConcurrently) {
  fw::HarnessConfig config;
  config.functional = true;
  config.num_streams = 7;
  config.monitor_power = false;
  AppParams square = {32, 2, 3};
  AppParams nn_params = {400, std::nullopt, 4};
  AppParams path_params = {300, 20, 5};
  fw::Harness harness(config);
  const auto result = harness.run({
      make_app("gaussian", square),
      make_app("nn", nn_params),
      make_app("needle", square),
      make_app("srad", square),
      make_app("hotspot", square),
      make_app("lud", square),
      make_app("pathfinder", path_params),
  });
  EXPECT_TRUE(result.all_verified);
  EXPECT_EQ(result.apps.size(), 7u);
}

}  // namespace
}  // namespace hq::rodinia
