
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hyperq/adaptive_scheduler.cpp" "src/hyperq/CMakeFiles/hq_framework.dir/adaptive_scheduler.cpp.o" "gcc" "src/hyperq/CMakeFiles/hq_framework.dir/adaptive_scheduler.cpp.o.d"
  "/root/repo/src/hyperq/harness.cpp" "src/hyperq/CMakeFiles/hq_framework.dir/harness.cpp.o" "gcc" "src/hyperq/CMakeFiles/hq_framework.dir/harness.cpp.o.d"
  "/root/repo/src/hyperq/metrics.cpp" "src/hyperq/CMakeFiles/hq_framework.dir/metrics.cpp.o" "gcc" "src/hyperq/CMakeFiles/hq_framework.dir/metrics.cpp.o.d"
  "/root/repo/src/hyperq/power_monitor.cpp" "src/hyperq/CMakeFiles/hq_framework.dir/power_monitor.cpp.o" "gcc" "src/hyperq/CMakeFiles/hq_framework.dir/power_monitor.cpp.o.d"
  "/root/repo/src/hyperq/schedule.cpp" "src/hyperq/CMakeFiles/hq_framework.dir/schedule.cpp.o" "gcc" "src/hyperq/CMakeFiles/hq_framework.dir/schedule.cpp.o.d"
  "/root/repo/src/hyperq/stream_manager.cpp" "src/hyperq/CMakeFiles/hq_framework.dir/stream_manager.cpp.o" "gcc" "src/hyperq/CMakeFiles/hq_framework.dir/stream_manager.cpp.o.d"
  "/root/repo/src/hyperq/streaming.cpp" "src/hyperq/CMakeFiles/hq_framework.dir/streaming.cpp.o" "gcc" "src/hyperq/CMakeFiles/hq_framework.dir/streaming.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/hq_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/hq_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/gpusim/CMakeFiles/hq_gpusim.dir/DependInfo.cmake"
  "/root/repo/build/src/cudart/CMakeFiles/hq_cudart.dir/DependInfo.cmake"
  "/root/repo/build/src/nvml/CMakeFiles/hq_nvml.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/hq_trace.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
