# Empty compiler generated dependencies file for bench_ablation_priorities.
# This may be replaced when dependencies are built.
