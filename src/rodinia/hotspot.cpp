#include "rodinia/hotspot.hpp"

#include <cmath>

#include "common/check.hpp"
#include "common/rng.hpp"

namespace hq::rodinia {
namespace {

// Physical constants from Rodinia's hotspot (chip 16mm x 16mm, t_chip
// 0.5mm), reduced to the per-cell update coefficients.
struct Coefficients {
  float rx_inv, ry_inv, rz_inv, cap_inv;
};

Coefficients coefficients(int n) {
  constexpr float kTChip = 0.0005f;
  constexpr float kChipWidth = 0.016f;
  constexpr float kChipHeight = 0.016f;
  constexpr float kFactorChip = 0.5f;
  constexpr float kSpecHeatSi = 1.75e6f;
  constexpr float kKSi = 100.0f;
  constexpr float kMaxPd = 3.0e6f;
  constexpr float kPrecision = 0.001f;

  const float grid_width = kChipWidth / static_cast<float>(n);
  const float grid_height = kChipHeight / static_cast<float>(n);
  const float cap =
      kFactorChip * kSpecHeatSi * kTChip * grid_width * grid_height;
  const float rx = grid_width / (2.0f * kKSi * kTChip * grid_height);
  const float ry = grid_height / (2.0f * kKSi * kTChip * grid_width);
  const float rz = kTChip / (kKSi * grid_height * grid_width);
  const float max_slope = kMaxPd / (kFactorChip * kTChip * kSpecHeatSi);
  const float step = kPrecision / max_slope;
  return Coefficients{1.0f / rx, 1.0f / ry, 1.0f / rz, step / cap};
}

constexpr float kAmbient = 80.0f;

/// One explicit-Euler step of the thermal grid (shared by the functional
/// kernel body and the host reference).
void hotspot_step(const std::vector<float>& temp_in,
                  const std::vector<float>& power, std::vector<float>& temp_out,
                  int n) {
  const Coefficients c = coefficients(n);
  for (int r = 0; r < n; ++r) {
    const int rn = std::max(r - 1, 0);
    const int rs = std::min(r + 1, n - 1);
    for (int col = 0; col < n; ++col) {
      const int cw = std::max(col - 1, 0);
      const int ce = std::min(col + 1, n - 1);
      const float t = temp_in[r * n + col];
      const float delta =
          c.cap_inv *
          (power[r * n + col] +
           (temp_in[rs * n + col] + temp_in[rn * n + col] - 2.0f * t) *
               c.ry_inv +
           (temp_in[r * n + ce] + temp_in[r * n + cw] - 2.0f * t) * c.rx_inv +
           (kAmbient - t) * c.rz_inv);
      temp_out[r * n + col] = t + delta;
    }
  }
}

}  // namespace

HotspotApp::HotspotApp(HotspotParams params)
    : RodiniaApp("hotspot"), params_(params) {
  HQ_CHECK(params_.size >= kBlock && params_.size % kBlock == 0);
  HQ_CHECK(params_.iterations >= 1);
  const auto n = static_cast<Bytes>(params_.size);
  const Bytes plane = n * n * sizeof(float);
  add_buffer("temp", plane, /*to_device=*/true, /*to_host=*/true);
  add_buffer("power", plane, /*to_device=*/true, /*to_host=*/false);
  add_buffer("temp_out", plane, false, false, /*host_side=*/false,
             /*device_side=*/true);
}

void HotspotApp::initializeHostMemory(fw::Context& ctx) {
  auto temp = host_view<float>(ctx, "temp");
  auto power = host_view<float>(ctx, "power");
  Rng rng(params_.seed);
  for (std::size_t i = 0; i < temp.size(); ++i) {
    temp[i] = static_cast<float>(rng.next_double_in(320.0, 345.0));
    power[i] = static_cast<float>(rng.next_double_in(0.0, 0.01));
  }
  temp0_.assign(temp.begin(), temp.end());
  power0_.assign(power.begin(), power.end());
}

void HotspotApp::step_body(fw::Context* ctx, int iteration) {
  const int n = params_.size;
  auto temp = device_view<float>(*ctx, "temp");
  auto power = device_view<float>(*ctx, "power");
  auto temp_out = device_view<float>(*ctx, "temp_out");
  // Device-side double buffering: even iterations read temp/write temp_out,
  // odd iterations the reverse; emulated here with an explicit copy-back so
  // `temp` always holds the latest plane at kernel completion.
  std::vector<float> in(temp.begin(), temp.end());
  std::vector<float> out(in.size());
  std::vector<float> pw(power.begin(), power.end());
  hotspot_step(in, pw, out, n);
  std::copy(out.begin(), out.end(), temp.begin());
  std::copy(in.begin(), in.end(), temp_out.begin());
  (void)iteration;
}

sim::Task HotspotApp::executeKernel(fw::Context& ctx) {
  const auto grid_dim = static_cast<std::uint32_t>(params_.size / kBlock);
  for (int iter = 0; iter < params_.iterations; ++iter) {
    std::function<void()> body;
    if (ctx.functional) {
      body = [this, ctx_ptr = &ctx, iter] { step_body(ctx_ptr, iter); };
    }
    rt::LaunchConfig cfg = make_launch(
        "calculate_temp", gpu::Dim3{grid_dim, grid_dim, 1},
        gpu::Dim3{kBlock, kBlock, 1}, kHotspot, std::move(body));
    gpu::OpTag tag{ctx.app_id, "calculate_temp"};
    auto op = ctx.runtime->launch_kernel(ctx.stream, std::move(cfg),
                                         std::move(tag));
    co_await op;
  }
  co_await ctx.runtime->stream_synchronize(ctx.stream);
}

bool HotspotApp::verify(fw::Context& ctx) const {
  const int n = params_.size;
  auto* self = const_cast<HotspotApp*>(this);
  auto result = self->host_view<float>(ctx, "temp");

  std::vector<float> a = temp0_;
  std::vector<float> b(a.size());
  for (int iter = 0; iter < params_.iterations; ++iter) {
    hotspot_step(a, power0_, b, n);
    std::swap(a, b);
  }
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::abs(a[i] - result[i]) > 1e-3f) return false;
  }
  return true;
}

}  // namespace hq::rodinia
