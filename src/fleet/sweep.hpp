// Placement-policy x fleet-size sweeps with a crash-safe journal
// (library hq_fleet).
//
// A FleetSweepGrid crosses fleet sizes with placement policies over one
// base FleetConfig; every point is an independent FleetService::run. The
// journal reuses the exec layer's torn-line-safe `<kind> key=value ... end`
// record format (exec/journal.hpp journal_io helpers) under its own magic
// and grid key, so `hqserve --sweep-fleet --journal/--resume` gets the same
// crash-safety guarantees as the harness sweeps: resuming against a
// different fleet shape or base config is a structured error, never a
// silent splice of foreign outcomes.
//
// Determinism contract: points expand in fixed row-major order (sizes
// outermost, policies innermost), each point's run depends only on its own
// config, and outcomes come back in submission-index order — byte-identical
// report and combined digest at any --jobs count.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "fleet/fleet.hpp"

namespace hq::fleet {

struct FleetSweepGrid {
  /// Template config. Each point overrides the fleet size (see
  /// apply_point) and the placement policy; everything else is shared.
  FleetConfig base;
  std::vector<std::size_t> fleet_sizes = {1, 2, 4};
  std::vector<PlacementPolicy> placements = {PlacementPolicy::RoundRobin};
};

struct FleetSweepPoint {
  std::size_t index = 0;
  std::size_t fleet_size = 0;
  PlacementPolicy placement = PlacementPolicy::RoundRobin;

  /// Compact coordinates, e.g. "n=4 placement=least-loaded".
  std::string label() const;
};

/// Scalar results of one point, with the full report reduced to its digest
/// inside the worker.
struct FleetSweepOutcome {
  FleetSweepPoint point;
  std::uint64_t arrived = 0;
  std::uint64_t completed_ok = 0;
  std::uint64_t completed = 0;
  std::uint64_t shed = 0;  ///< queue-full + breaker + no-device
  std::uint64_t requeued = 0;
  std::uint64_t stolen = 0;
  double goodput_per_sec = 0;
  double throughput_per_sec = 0;
  double deadline_miss_ratio = 0;
  double energy = 0;
  std::uint64_t total_time = 0;
  std::uint64_t report_digest = 0;  ///< fleet_report_digest of the point
};

/// Enumerates the cross product in row-major order (sizes outermost).
std::vector<FleetSweepPoint> expand_fleet_sweep(const FleetSweepGrid& grid);

/// The point's concrete config: the base with the placement replaced and
/// the device list resized to fleet_size — reusing the base's resolved
/// specs cyclically (so a 2-spec heterogeneous base sweeps as A,B,A,B,...).
FleetConfig apply_fleet_point(const FleetSweepGrid& grid,
                              const FleetSweepPoint& point);

/// Runs one point. Thread-safe.
FleetSweepOutcome run_fleet_point(const FleetSweepGrid& grid,
                                  const FleetSweepPoint& point);

/// Fingerprint of the expanded grid: point labels plus every
/// result-affecting field of the base fleet config (device specs, fleet
/// knobs, and the full serving base config). Two grids with the same key
/// produce interchangeable journals.
std::uint64_t fleet_sweep_grid_key(const FleetSweepGrid& grid,
                                   std::span<const FleetSweepPoint> points);

/// Journal records (same torn-line-safe format as exec/journal.hpp).
std::string fleet_journal_header_line(std::uint64_t grid_key,
                                      std::size_t total_points);
std::string fleet_journal_outcome_line(const FleetSweepOutcome& outcome);
std::optional<FleetSweepOutcome> parse_fleet_journal_outcome(
    const std::string& line, std::span<const FleetSweepPoint> points);

/// Replays a journal stream into `cached` (indexed by point); header
/// mismatch throws hq::Error. Same semantics as exec::load_journal.
std::size_t load_fleet_journal(
    std::istream& in, std::uint64_t grid_key,
    std::span<const FleetSweepPoint> points,
    std::vector<std::optional<FleetSweepOutcome>>* cached,
    bool* header_read = nullptr);

struct FleetSweepOptions {
  /// Worker threads; 1 = serial, 0 = ThreadPool::hardware_jobs().
  int jobs = 1;
  /// Crash-safe checkpoint file; empty = no journal.
  std::string journal_path;
  /// Replay finished points from journal_path and run only missing ones.
  bool resume = false;
};

/// Runs the whole grid with bounded concurrency; outcomes are indexed by
/// submission order and byte-identical at any jobs count.
std::vector<FleetSweepOutcome> run_fleet_sweep(const FleetSweepGrid& grid,
                                               const FleetSweepOptions& options);

/// Order-fixed 64-bit digest over the outcome vector — the cheap
/// byte-identity witness the CI fleet determinism check diffs.
std::uint64_t fleet_combined_digest(std::span<const FleetSweepOutcome> outcomes);

/// Deterministic aggregate table (placement-policy x fleet-size goodput).
std::string render_fleet_sweep_report(
    std::span<const FleetSweepOutcome> outcomes);

}  // namespace hq::fleet
