// Minimal leveled logger.
//
// Each simulation run is deterministic and single-threaded, so the logger
// is intentionally simple: a process-wide level and a stderr sink. Benches
// and examples raise the level for narrative output; tests keep it at Warn.
// The level is atomic and each emit is a single stream write, so logging
// from hq_exec pool workers is race-free (lines never interleave).
#pragma once

#include <sstream>
#include <string>

namespace hq {

enum class LogLevel { Trace = 0, Debug = 1, Info = 2, Warn = 3, Error = 4, Off = 5 };

/// Sets the process-wide minimum level that is emitted.
void set_log_level(LogLevel level);

/// Current process-wide log level.
LogLevel log_level();

namespace detail {
void log_emit(LogLevel level, const std::string& message);
}  // namespace detail

}  // namespace hq

#define HQ_LOG(level, msg_expr)                                   \
  do {                                                            \
    if (static_cast<int>(level) >=                                \
        static_cast<int>(::hq::log_level())) {                    \
      std::ostringstream hq_log_os;                               \
      hq_log_os << msg_expr;                                      \
      ::hq::detail::log_emit(level, hq_log_os.str());             \
    }                                                             \
  } while (false)

#define HQ_LOG_DEBUG(msg_expr) HQ_LOG(::hq::LogLevel::Debug, msg_expr)
#define HQ_LOG_INFO(msg_expr) HQ_LOG(::hq::LogLevel::Info, msg_expr)
#define HQ_LOG_WARN(msg_expr) HQ_LOG(::hq::LogLevel::Warn, msg_expr)
#define HQ_LOG_ERROR(msg_expr) HQ_LOG(::hq::LogLevel::Error, msg_expr)
