#include "hyperq/schedule.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace hq::fw {
namespace {

/// FIFO with the given type visitation order.
std::vector<Slot> fifo(std::span<const int> counts,
                       std::span<const int> type_order) {
  std::vector<Slot> out;
  for (int t : type_order) {
    for (int i = 1; i <= counts[t]; ++i) out.push_back(Slot{t, i});
  }
  return out;
}

/// Round-robin over types in the given order, appending leftovers as types
/// run out of instances.
std::vector<Slot> round_robin(std::span<const int> counts,
                              std::span<const int> type_order) {
  std::vector<Slot> out;
  std::vector<int> next(counts.size(), 1);
  bool produced = true;
  while (produced) {
    produced = false;
    for (int t : type_order) {
      if (next[t] <= counts[t]) {
        out.push_back(Slot{t, next[t]++});
        produced = true;
      }
    }
  }
  return out;
}

std::vector<int> forward_types(std::size_t n) {
  std::vector<int> order(n);
  for (std::size_t i = 0; i < n; ++i) order[i] = static_cast<int>(i);
  return order;
}

std::vector<int> reversed_types(std::size_t n) {
  auto order = forward_types(n);
  std::reverse(order.begin(), order.end());
  return order;
}

}  // namespace

const char* order_name(Order order) {
  switch (order) {
    case Order::NaiveFifo: return "Naive FIFO";
    case Order::RoundRobin: return "Round-Robin";
    case Order::RandomShuffle: return "Random Shuffle";
    case Order::ReverseFifo: return "Reverse FIFO";
    case Order::ReverseRoundRobin: return "Reverse Round-Robin";
  }
  return "?";
}

std::string slot_to_string(const Slot& slot,
                           std::span<const std::string> names) {
  HQ_CHECK(slot.type >= 0 &&
           static_cast<std::size_t>(slot.type) < names.size());
  return names[slot.type] + "(" + std::to_string(slot.instance) + ")";
}

std::vector<Slot> make_schedule(Order order, std::span<const int> counts,
                                Rng* rng) {
  HQ_CHECK_MSG(!counts.empty(), "schedule needs at least one type");
  for (int c : counts) HQ_CHECK_MSG(c >= 0, "negative instance count");

  switch (order) {
    case Order::NaiveFifo:
      return fifo(counts, forward_types(counts.size()));
    case Order::RoundRobin:
      return round_robin(counts, forward_types(counts.size()));
    case Order::RandomShuffle: {
      HQ_CHECK_MSG(rng != nullptr, "RandomShuffle requires an Rng");
      auto slots = fifo(counts, forward_types(counts.size()));
      rng->shuffle(slots);
      return slots;
    }
    case Order::ReverseFifo:
      return fifo(counts, reversed_types(counts.size()));
    case Order::ReverseRoundRobin:
      return round_robin(counts, reversed_types(counts.size()));
  }
  HQ_CHECK_MSG(false, "unknown order");
  return {};
}

}  // namespace hq::fw
