file(REMOVE_RECURSE
  "CMakeFiles/hyperq_test.dir/hyperq/adaptive_scheduler_test.cpp.o"
  "CMakeFiles/hyperq_test.dir/hyperq/adaptive_scheduler_test.cpp.o.d"
  "CMakeFiles/hyperq_test.dir/hyperq/framework_test.cpp.o"
  "CMakeFiles/hyperq_test.dir/hyperq/framework_test.cpp.o.d"
  "CMakeFiles/hyperq_test.dir/hyperq/harness_test.cpp.o"
  "CMakeFiles/hyperq_test.dir/hyperq/harness_test.cpp.o.d"
  "CMakeFiles/hyperq_test.dir/hyperq/schedule_test.cpp.o"
  "CMakeFiles/hyperq_test.dir/hyperq/schedule_test.cpp.o.d"
  "CMakeFiles/hyperq_test.dir/hyperq/streaming_test.cpp.o"
  "CMakeFiles/hyperq_test.dir/hyperq/streaming_test.cpp.o.d"
  "hyperq_test"
  "hyperq_test.pdb"
  "hyperq_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hyperq_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
