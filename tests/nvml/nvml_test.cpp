#include "nvml/nvml.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "sim/simulator.hpp"

namespace hq::nvml {
namespace {

gpu::KernelLaunch busy_kernel(DurationNs duration) {
  return gpu::KernelLaunch{"busy", gpu::Dim3{26, 1, 1}, gpu::Dim3{1024, 1, 1},
                           32,     0,                   duration,
                           0.0,    nullptr};
}

class NvmlTest : public ::testing::Test {
 protected:
  NvmlTest() : device_(sim_, gpu::DeviceSpec::tesla_k20()) {
    device_.register_stream(0);
  }

  sim::Simulator sim_;
  gpu::Device device_;
};

TEST_F(NvmlTest, FirstReadReflectsIdlePower) {
  SensorOptions opts;
  opts.noise_stddev = 0.0;
  opts.quantization = 0.0;
  PowerSensor sensor(sim_, device_, opts);
  EXPECT_NEAR(sensor.read(), device_.spec().idle_power, 1e-9);
}

TEST_F(NvmlTest, ReadingConvergesToBusyPower) {
  SensorOptions opts;
  opts.noise_stddev = 0.0;
  opts.quantization = 0.0;
  PowerSensor sensor(sim_, device_, opts);
  sensor.read();  // prime at idle

  device_.submit_kernel(0, busy_kernel(100 * kMillisecond), {});
  // Sample every 15 ms like the paper's PowerMonitor.
  Watts last = 0;
  for (int i = 0; i < 6; ++i) {
    sim_.run_until(sim_.now() + 15 * kMillisecond);
    last = sensor.read();
  }
  const Watts truth = device_.instantaneous_power();
  EXPECT_GT(last, truth * 0.8);
  EXPECT_GT(truth, device_.spec().idle_power + device_.spec().max_dynamic_power);
  sim_.run();
}

TEST_F(NvmlTest, FilteringSmoothsStepChanges) {
  SensorOptions opts;
  opts.noise_stddev = 0.0;
  opts.quantization = 0.0;
  opts.filter_alpha = 0.3;
  PowerSensor sensor(sim_, device_, opts);
  sensor.read();

  device_.submit_kernel(0, busy_kernel(30 * kMillisecond), {});
  sim_.run_until(15 * kMillisecond);
  const Watts first = sensor.read();
  sim_.run_until(30 * kMillisecond);
  const Watts second = sensor.read();
  // EMA: the reading climbs toward busy power, but the first post-step
  // sample must undershoot the true busy power.
  EXPECT_GT(second, first);
  EXPECT_LT(first, device_.spec().idle_power + device_.spec().active_base_power +
                       device_.spec().max_dynamic_power);
  sim_.run();
}

TEST_F(NvmlTest, NoiseIsDeterministicPerSeed) {
  SensorOptions opts;
  opts.seed = 42;
  PowerSensor a(sim_, device_, opts);
  PowerSensor b(sim_, device_, opts);
  for (int i = 0; i < 50; ++i) {
    EXPECT_DOUBLE_EQ(a.read(), b.read());
  }
}

TEST_F(NvmlTest, QuantizationAppliesGranularity) {
  SensorOptions opts;
  opts.noise_stddev = 0.0;
  opts.quantization = 0.5;
  PowerSensor sensor(sim_, device_, opts);
  const Watts v = sensor.read();
  EXPECT_DOUBLE_EQ(v, std::round(v / 0.5) * 0.5);
}

TEST_F(NvmlTest, ReadingNeverNegative) {
  SensorOptions opts;
  opts.noise_stddev = 500.0;  // absurd noise
  PowerSensor sensor(sim_, device_, opts);
  for (int i = 0; i < 200; ++i) {
    EXPECT_GE(sensor.read(), 0.0);
  }
}

TEST_F(NvmlTest, PowerUsageMilliwatts) {
  SensorOptions opts;
  opts.noise_stddev = 0.0;
  opts.quantization = 0.0;
  ManagementLibrary nvml(sim_, device_, opts);
  const unsigned int mw = nvml.power_usage_mw();
  EXPECT_NEAR(mw, device_.spec().idle_power * 1000.0, 1.0);
}

TEST_F(NvmlTest, UtilizationTracksBusyWindow) {
  ManagementLibrary nvml(sim_, device_, {});
  EXPECT_DOUBLE_EQ(nvml.utilization_gpu(), 0.0);

  // 40 ms busy (plus 3 us dispatch) inside a 100 ms window.
  device_.submit_kernel(0, busy_kernel(40 * kMillisecond), {});
  sim_.run_until(100 * kMillisecond);
  const double util = nvml.utilization_gpu();
  EXPECT_NEAR(util, 40.0, 1.0);

  // Next window is fully idle.
  sim_.run_until(200 * kMillisecond);
  EXPECT_NEAR(nvml.utilization_gpu(), 0.0, 1e-9);
}

TEST_F(NvmlTest, TotalEnergyMatchesDevice) {
  ManagementLibrary nvml(sim_, device_, {});
  device_.submit_kernel(0, busy_kernel(10 * kMillisecond), {});
  sim_.run();
  EXPECT_DOUBLE_EQ(nvml.total_energy(), device_.energy());
  EXPECT_GT(nvml.total_energy(), 0.0);
}

TEST_F(NvmlTest, DeviceNameExposed) {
  ManagementLibrary nvml(sim_, device_, {});
  EXPECT_EQ(nvml.device_name(), "Simulated Tesla K20");
}

TEST_F(NvmlTest, SensorEnergyIntegralApproximatesTruth) {
  // Sampling the sensor at 66.7 Hz and integrating should land near the
  // exact device energy — the premise of the paper's measurement method.
  SensorOptions opts;
  opts.noise_stddev = 0.4;
  opts.quantization = 0.25;
  opts.filter_alpha = 1.0;  // windowed averages integrate exactly
  PowerSensor sensor(sim_, device_, opts);
  sensor.read();

  device_.submit_kernel(0, busy_kernel(200 * kMillisecond), {});
  std::vector<std::pair<double, double>> samples;
  samples.emplace_back(0.0, static_cast<double>(sensor.read()));
  while (sim_.now() < 300 * kMillisecond) {
    sim_.run_until(sim_.now() + 15 * kMillisecond);
    samples.emplace_back(to_seconds(sim_.now()),
                         static_cast<double>(sensor.read()));
  }
  double integral = 0;
  for (std::size_t i = 1; i < samples.size(); ++i) {
    // Left-Riemann with window averages assigned to the right edge:
    integral += samples[i].second * (samples[i].first - samples[i - 1].first);
  }
  const double truth = device_.energy();
  EXPECT_NEAR(integral, truth, truth * 0.05);
}

}  // namespace
}  // namespace hq::nvml
