// Small-buffer-optimized event callbacks for the discrete-event simulator.
//
// Every scheduled event used to carry a std::function<void()>; closures
// above std::function's tiny inline buffer (16 bytes on libstdc++) forced
// one heap allocation + free per event — ~1.3M malloc/free pairs per
// simulated run, and the dominant cross-thread contention source when
// sweeps fan runs out over a pool. EventFn replaces it:
//
//   * trivially-copyable closures up to kInlineBytes (24) are stored inline
//     in the event itself — this covers the coroutine-resume ([h]) and all
//     harness/device closures on the hot path;
//   * anything larger (or not trivially copyable) is placement-newed into a
//     fixed-size slot from a per-simulator EventPool freelist, so even the
//     rare big closures (e.g. the copy-engine completion, which captures a
//     whole Transaction) recycle storage instead of hitting the allocator;
//   * closures larger than EventPool::kSlotBytes fall back to operator new
//     and are counted (CallbackStats::oversize) so a regression test can
//     pin the hot path at zero oversize allocations.
//
// Semantics match std::function<void()> where it matters: invocation order
// is untouched (the simulator's (time, seq) heap provides FIFO tie-breaks),
// and exceptions thrown by the callable propagate out of operator()
// unchanged, with the storage reclaimed by the owner's destructor.
#pragma once

#include <cstddef>
#include <cstring>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/check.hpp"

namespace hq::sim {

/// Counters describing how event callbacks were stored (per simulator).
struct CallbackStats {
  std::uint64_t inline_stored = 0;  ///< fit in the event's inline buffer
  std::uint64_t pooled = 0;         ///< placed in a recycled pool slot
  std::uint64_t oversize = 0;       ///< exceeded kSlotBytes; plain heap
  std::uint64_t pool_slabs = 0;     ///< slabs the pool carved slots from
};

/// Freelist of fixed-size storage slots for out-of-line event closures.
/// Slots are carved from slabs in bulk and recycled for the lifetime of the
/// owning simulator, so steady-state event scheduling performs no heap
/// allocation at all.
class EventPool {
 public:
  /// Large enough for every closure in the tree that exceeds the inline
  /// buffer (the biggest is the copy-engine completion at ~120 bytes).
  static constexpr std::size_t kSlotBytes = 192;
  static constexpr std::size_t kSlotAlign = alignof(std::max_align_t);
  static constexpr std::size_t kSlotsPerSlab = 64;

  EventPool() = default;
  EventPool(const EventPool&) = delete;
  EventPool& operator=(const EventPool&) = delete;

  void* allocate() {
    if (free_.empty()) grow();
    void* p = free_.back();
    free_.pop_back();
    return p;
  }

  void deallocate(void* p) noexcept { free_.push_back(p); }

  std::uint64_t slabs() const { return static_cast<std::uint64_t>(slabs_.size()); }

 private:
  void grow() {
    auto slab = std::make_unique<std::byte[]>(kSlotBytes * kSlotsPerSlab);
    std::byte* base = slab.get();
    free_.reserve(free_.size() + kSlotsPerSlab);
    for (std::size_t i = 0; i < kSlotsPerSlab; ++i) {
      free_.push_back(base + i * kSlotBytes);
    }
    slabs_.push_back(std::move(slab));
  }

  std::vector<void*> free_;
  std::vector<std::unique_ptr<std::byte[]>> slabs_;
};

/// Move-only type-erased void() callable with 24-byte inline storage and a
/// pool-backed out-of-line path. Built exclusively through the owning
/// simulator (which supplies the pool and keeps the counters).
class EventFn {
 public:
  static constexpr std::size_t kInlineBytes = 24;
  static constexpr std::size_t kInlineAlign = alignof(void*);

  EventFn() = default;

  template <typename F>
  EventFn(EventPool& pool, CallbackStats& stats, F&& fn) {
    using T = std::decay_t<F>;
    static_assert(std::is_invocable_r_v<void, T&>,
                  "event callbacks take no arguments and return void");
    if constexpr (fits_inline<T>()) {
      ::new (static_cast<void*>(inline_)) T(std::forward<F>(fn));
      ops_ = &kInlineOps<T>;
      ++stats.inline_stored;
    } else {
      if constexpr (sizeof(Node<T>) <= EventPool::kSlotBytes &&
                    alignof(Node<T>) <= EventPool::kSlotAlign) {
        void* slot = pool.allocate();
        try {
          out_.node = ::new (slot) Node<T>{std::forward<F>(fn), &pool};
        } catch (...) {
          // T's move/copy constructor threw; return the slot to the freelist
          // instead of leaking it (the oversize path below gets this for
          // free from the new-expression).
          pool.deallocate(slot);
          throw;
        }
        ops_ = &kPooledOps<T>;
        ++stats.pooled;
      } else {
        out_.node = new Node<T>{std::forward<F>(fn), nullptr};
        ops_ = &kOversizeOps<T>;
        ++stats.oversize;
      }
    }
  }

  EventFn(EventFn&& other) noexcept : ops_(other.ops_) {
    // Inline closures are trivially copyable by construction, so a raw byte
    // copy of the full union (inline_ is its largest member) moves either
    // representation.
    std::memcpy(inline_, other.inline_, sizeof(inline_));
    other.ops_ = nullptr;
  }

  EventFn& operator=(EventFn&& other) noexcept {
    if (this != &other) {
      destroy();
      ops_ = other.ops_;
      std::memcpy(inline_, other.inline_, sizeof(inline_));
      other.ops_ = nullptr;
    }
    return *this;
  }

  EventFn(const EventFn&) = delete;
  EventFn& operator=(const EventFn&) = delete;

  ~EventFn() { destroy(); }

  explicit operator bool() const noexcept { return ops_ != nullptr; }

  /// Invokes the callable; exceptions propagate to the caller exactly as
  /// they would through std::function. The storage stays valid until this
  /// EventFn is destroyed (the simulator destroys the popped event even
  /// when the callback throws).
  void operator()() {
    HQ_CHECK_MSG(ops_ != nullptr, "invoking an empty EventFn");
    ops_->invoke(*this);
  }

  /// True when the callable lives in the event's inline buffer.
  bool is_inline() const noexcept {
    return ops_ != nullptr && ops_->destroy == nullptr;
  }

 private:
  template <typename T>
  struct Node {
    T fn;
    EventPool* pool;  // nullptr for the oversize (plain heap) path
  };

  struct Ops {
    void (*invoke)(EventFn&);
    void (*destroy)(EventFn&) noexcept;  // nullptr: inline, trivial dtor
  };

  template <typename T>
  static constexpr bool fits_inline() {
    return std::is_trivially_copyable_v<T> &&
           std::is_trivially_destructible_v<T> && sizeof(T) <= kInlineBytes &&
           alignof(T) <= kInlineAlign;
  }

  template <typename T>
  static void invoke_inline(EventFn& e) {
    (*std::launder(reinterpret_cast<T*>(e.inline_)))();
  }

  template <typename T>
  static void invoke_node(EventFn& e) {
    (*static_cast<Node<T>*>(e.out_.node)).fn();
  }

  template <typename T>
  static void destroy_pooled(EventFn& e) noexcept {
    auto* node = static_cast<Node<T>*>(e.out_.node);
    EventPool* pool = node->pool;
    node->~Node<T>();
    pool->deallocate(node);
  }

  template <typename T>
  static void destroy_oversize(EventFn& e) noexcept {
    delete static_cast<Node<T>*>(e.out_.node);
  }

  template <typename T>
  static constexpr Ops kInlineOps{&invoke_inline<T>, nullptr};
  template <typename T>
  static constexpr Ops kPooledOps{&invoke_node<T>, &destroy_pooled<T>};
  template <typename T>
  static constexpr Ops kOversizeOps{&invoke_node<T>, &destroy_oversize<T>};

  void destroy() noexcept {
    if (ops_ != nullptr && ops_->destroy != nullptr) ops_->destroy(*this);
    ops_ = nullptr;
  }

  const Ops* ops_ = nullptr;
  union {
    alignas(kInlineAlign) std::byte inline_[kInlineBytes];
    struct {
      void* node;
    } out_;
  };
};

}  // namespace hq::sim
