// Forwarding header: StreamingHarness moved to the serving layer
// (src/serve/streaming.hpp) when serve::Service subsumed it. Kept so
// existing includes keep compiling; link hq_serve to use it.
#pragma once

#include "serve/streaming.hpp"
