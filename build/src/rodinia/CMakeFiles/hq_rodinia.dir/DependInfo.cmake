
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rodinia/app_base.cpp" "src/rodinia/CMakeFiles/hq_rodinia.dir/app_base.cpp.o" "gcc" "src/rodinia/CMakeFiles/hq_rodinia.dir/app_base.cpp.o.d"
  "/root/repo/src/rodinia/gaussian.cpp" "src/rodinia/CMakeFiles/hq_rodinia.dir/gaussian.cpp.o" "gcc" "src/rodinia/CMakeFiles/hq_rodinia.dir/gaussian.cpp.o.d"
  "/root/repo/src/rodinia/hotspot.cpp" "src/rodinia/CMakeFiles/hq_rodinia.dir/hotspot.cpp.o" "gcc" "src/rodinia/CMakeFiles/hq_rodinia.dir/hotspot.cpp.o.d"
  "/root/repo/src/rodinia/lud.cpp" "src/rodinia/CMakeFiles/hq_rodinia.dir/lud.cpp.o" "gcc" "src/rodinia/CMakeFiles/hq_rodinia.dir/lud.cpp.o.d"
  "/root/repo/src/rodinia/needle.cpp" "src/rodinia/CMakeFiles/hq_rodinia.dir/needle.cpp.o" "gcc" "src/rodinia/CMakeFiles/hq_rodinia.dir/needle.cpp.o.d"
  "/root/repo/src/rodinia/nn.cpp" "src/rodinia/CMakeFiles/hq_rodinia.dir/nn.cpp.o" "gcc" "src/rodinia/CMakeFiles/hq_rodinia.dir/nn.cpp.o.d"
  "/root/repo/src/rodinia/pathfinder.cpp" "src/rodinia/CMakeFiles/hq_rodinia.dir/pathfinder.cpp.o" "gcc" "src/rodinia/CMakeFiles/hq_rodinia.dir/pathfinder.cpp.o.d"
  "/root/repo/src/rodinia/registry.cpp" "src/rodinia/CMakeFiles/hq_rodinia.dir/registry.cpp.o" "gcc" "src/rodinia/CMakeFiles/hq_rodinia.dir/registry.cpp.o.d"
  "/root/repo/src/rodinia/srad.cpp" "src/rodinia/CMakeFiles/hq_rodinia.dir/srad.cpp.o" "gcc" "src/rodinia/CMakeFiles/hq_rodinia.dir/srad.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/hyperq/CMakeFiles/hq_framework.dir/DependInfo.cmake"
  "/root/repo/build/src/cudart/CMakeFiles/hq_cudart.dir/DependInfo.cmake"
  "/root/repo/build/src/nvml/CMakeFiles/hq_nvml.dir/DependInfo.cmake"
  "/root/repo/build/src/gpusim/CMakeFiles/hq_gpusim.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/hq_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/hq_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/hq_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
