
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gpusim/block_scheduler.cpp" "src/gpusim/CMakeFiles/hq_gpusim.dir/block_scheduler.cpp.o" "gcc" "src/gpusim/CMakeFiles/hq_gpusim.dir/block_scheduler.cpp.o.d"
  "/root/repo/src/gpusim/copy_engine.cpp" "src/gpusim/CMakeFiles/hq_gpusim.dir/copy_engine.cpp.o" "gcc" "src/gpusim/CMakeFiles/hq_gpusim.dir/copy_engine.cpp.o.d"
  "/root/repo/src/gpusim/device.cpp" "src/gpusim/CMakeFiles/hq_gpusim.dir/device.cpp.o" "gcc" "src/gpusim/CMakeFiles/hq_gpusim.dir/device.cpp.o.d"
  "/root/repo/src/gpusim/device_spec.cpp" "src/gpusim/CMakeFiles/hq_gpusim.dir/device_spec.cpp.o" "gcc" "src/gpusim/CMakeFiles/hq_gpusim.dir/device_spec.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/hq_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/hq_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/hq_trace.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
