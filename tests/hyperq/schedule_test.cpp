#include "hyperq/schedule.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "common/check.hpp"

namespace hq::fw {
namespace {

std::vector<Slot> schedule_for(Order order, int m, int n, Rng* rng = nullptr) {
  const int counts[] = {m, n};
  return make_schedule(order, counts, rng);
}

std::string render(const std::vector<Slot>& slots) {
  static const std::vector<std::string> names = {"X", "Y"};
  std::string out;
  for (const Slot& s : slots) {
    if (!out.empty()) out += " ";
    out += slot_to_string(s, names);
  }
  return out;
}

// --- the exact Figure 3 sequences for m = n = 4 ---------------------------

TEST(ScheduleTest, Figure3aNaiveFifo) {
  EXPECT_EQ(render(schedule_for(Order::NaiveFifo, 4, 4)),
            "X(1) X(2) X(3) X(4) Y(1) Y(2) Y(3) Y(4)");
}

TEST(ScheduleTest, Figure3bRoundRobin) {
  EXPECT_EQ(render(schedule_for(Order::RoundRobin, 4, 4)),
            "X(1) Y(1) X(2) Y(2) X(3) Y(3) X(4) Y(4)");
}

TEST(ScheduleTest, Figure3dReverseFifo) {
  EXPECT_EQ(render(schedule_for(Order::ReverseFifo, 4, 4)),
            "Y(1) Y(2) Y(3) Y(4) X(1) X(2) X(3) X(4)");
}

TEST(ScheduleTest, Figure3eReverseRoundRobin) {
  EXPECT_EQ(render(schedule_for(Order::ReverseRoundRobin, 4, 4)),
            "Y(1) X(1) Y(2) X(2) Y(3) X(3) Y(4) X(4)");
}

TEST(ScheduleTest, Figure3cRandomShuffleIsPermutationOfFifo) {
  Rng rng(7);
  auto shuffled = schedule_for(Order::RandomShuffle, 4, 4, &rng);
  auto fifo = schedule_for(Order::NaiveFifo, 4, 4);
  EXPECT_TRUE(std::is_permutation(fifo.begin(), fifo.end(), shuffled.begin()));
  // Counts per type preserved.
  const auto x_count = std::count_if(shuffled.begin(), shuffled.end(),
                                     [](const Slot& s) { return s.type == 0; });
  EXPECT_EQ(x_count, 4);
}

TEST(ScheduleTest, RandomShuffleDeterministicPerSeed) {
  Rng a(99), b(99), c(100);
  EXPECT_EQ(schedule_for(Order::RandomShuffle, 8, 8, &a),
            schedule_for(Order::RandomShuffle, 8, 8, &b));
  Rng a2(99);
  const auto base = schedule_for(Order::RandomShuffle, 8, 8, &a2);
  // Different seed almost surely differs for 16 items.
  EXPECT_NE(base, schedule_for(Order::RandomShuffle, 8, 8, &c));
}

TEST(ScheduleTest, RandomShuffleWithoutRngThrows) {
  const int counts[] = {2, 2};
  EXPECT_THROW(make_schedule(Order::RandomShuffle, counts, nullptr), hq::Error);
}

// --- generalization ---------------------------------------------------------

TEST(ScheduleTest, UnevenCountsRoundRobinAppendsLeftovers) {
  EXPECT_EQ(render(schedule_for(Order::RoundRobin, 4, 2)),
            "X(1) Y(1) X(2) Y(2) X(3) X(4)");
}

TEST(ScheduleTest, SingleTypeAllOrdersDegenerate) {
  const int counts[] = {3};
  for (Order order :
       {Order::NaiveFifo, Order::RoundRobin, Order::ReverseFifo,
        Order::ReverseRoundRobin}) {
    const auto slots = make_schedule(order, counts);
    ASSERT_EQ(slots.size(), 3u) << order_name(order);
    for (int i = 0; i < 3; ++i) {
      EXPECT_EQ(slots[i], (Slot{0, i + 1})) << order_name(order);
    }
  }
}

TEST(ScheduleTest, ThreeTypesRoundRobin) {
  const int counts[] = {2, 1, 2};
  const auto slots = make_schedule(Order::RoundRobin, counts);
  const std::vector<Slot> expected = {
      {0, 1}, {1, 1}, {2, 1}, {0, 2}, {2, 2}};
  EXPECT_EQ(slots, expected);
}

TEST(ScheduleTest, ZeroCountTypeSkipped) {
  const int counts[] = {0, 2};
  EXPECT_EQ(render(make_schedule(Order::NaiveFifo, counts)), "Y(1) Y(2)");
  EXPECT_EQ(render(make_schedule(Order::RoundRobin, counts)), "Y(1) Y(2)");
}

TEST(ScheduleTest, EmptyTypeListThrows) {
  EXPECT_THROW(make_schedule(Order::NaiveFifo, std::span<const int>{}),
               hq::Error);
}

TEST(ScheduleTest, NegativeCountThrows) {
  const int counts[] = {-1};
  EXPECT_THROW(make_schedule(Order::NaiveFifo, counts), hq::Error);
}

TEST(ScheduleTest, OrderNames) {
  EXPECT_STREQ(order_name(Order::NaiveFifo), "Naive FIFO");
  EXPECT_STREQ(order_name(Order::RandomShuffle), "Random Shuffle");
  EXPECT_STREQ(order_name(Order::ReverseRoundRobin), "Reverse Round-Robin");
}

TEST(ScheduleTest, AllOrdersPreserveTotalCount) {
  Rng rng(5);
  const int counts[] = {7, 3};
  for (Order order : kAllOrders) {
    const auto slots = make_schedule(order, counts, &rng);
    EXPECT_EQ(slots.size(), 10u) << order_name(order);
  }
}

}  // namespace
}  // namespace hq::fw
