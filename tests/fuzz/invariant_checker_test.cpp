// Tests for the hq_check invariant layer: a clean device run passes, every
// invariant class is triggerable through synthetic observer streams, and —
// the critical negative test — a deliberately injected scheduler bug
// (skipping the LEFTOVER head kernel) is caught.
#include "check/invariants.hpp"

#include <gtest/gtest.h>

#include "cudart/runtime.hpp"
#include "gpusim/device.hpp"
#include "hyperq/harness.hpp"
#include "rodinia/registry.hpp"
#include "sim/simulator.hpp"

namespace hq::check {
namespace {

gpu::KernelLaunch small_kernel(const char* name) {
  return gpu::KernelLaunch{name,           gpu::Dim3{4, 1, 1},
                           gpu::Dim3{64, 1, 1}, 16,
                           0,              10 * kMicrosecond,
                           0.0,            nullptr};
}

TEST(InvariantCheckerTest, CleanDeviceRunPasses) {
  sim::Simulator sim;
  gpu::Device device(sim, gpu::DeviceSpec::tesla_k20());
  InvariantChecker checker(device.spec());
  device.set_observer(&checker);

  device.register_stream(0);
  device.register_stream(1);
  device.submit_copy(0, gpu::CopyRequest{gpu::CopyDirection::HtoD, kMiB,
                                         nullptr},
                     gpu::OpTag{0, "in"});
  device.submit_kernel(0, small_kernel("k0"), gpu::OpTag{0, "k0"});
  device.submit_kernel(1, small_kernel("k1"), gpu::OpTag{1, "k1"});
  device.submit_copy(1, gpu::CopyRequest{gpu::CopyDirection::DtoH, kKiB,
                                         nullptr},
                     gpu::OpTag{1, "out"});
  device.submit_marker(0, gpu::OpTag{0, "event"});
  sim.run();

  checker.finalize(device);
  EXPECT_TRUE(checker.ok()) << checker.report();
  EXPECT_GT(checker.events_observed(), 10u);
}

// The acceptance-criteria negative test: injecting a LEFTOVER-order fault
// into the block scheduler (service the second pending kernel before the
// head) must be flagged by the checker.
TEST(InvariantCheckerTest, InjectedSkipHeadFaultIsCaught) {
  const auto run_scenario = [](bool inject) {
    sim::Simulator sim;
    gpu::Device device(sim, gpu::DeviceSpec::tesla_k20());
    InvariantChecker checker(device.spec());
    device.set_observer(&checker);
    device.block_scheduler_for_test().set_fault_skip_head(inject);

    device.register_stream(0);
    device.register_stream(1);
    // Kernel 1 cannot fully place (250 blocks of 1000 threads: 2 blocks per
    // SMX, 26 resident), so it stays at the head of the pending queue while
    // kernel 2 arrives behind it; 48 threads per SMX stay free, enough for
    // kernel 2's 32-thread blocks to place if the scheduler illegally skips
    // the head.
    device.submit_kernel(0,
                         gpu::KernelLaunch{"big", gpu::Dim3{250, 1, 1},
                                           gpu::Dim3{1000, 1, 1}, 16, 0,
                                           20 * kMicrosecond, 0.0, nullptr},
                         gpu::OpTag{0, "big"});
    device.submit_kernel(1,
                         gpu::KernelLaunch{"small", gpu::Dim3{1, 1, 1},
                                           gpu::Dim3{32, 1, 1}, 16, 0,
                                           5 * kMicrosecond, 0.0, nullptr},
                         gpu::OpTag{1, "small"});
    sim.run();
    checker.finalize(device);
    return checker;
  };

  const InvariantChecker clean = run_scenario(false);
  EXPECT_TRUE(clean.ok()) << clean.report();

  const InvariantChecker faulty = run_scenario(true);
  ASSERT_FALSE(faulty.ok());
  EXPECT_NE(faulty.report().find("LEFTOVER"), std::string::npos)
      << faulty.report();
}

TEST(InvariantCheckerTest, HarnessRunWithCheckerEnabledCompletes) {
  fw::HarnessConfig config;
  config.functional = true;
  config.num_streams = 2;
  config.monitor_power = false;
  ASSERT_TRUE(config.check_invariants);  // on by default
  rodinia::AppParams small;
  small.size = 32;
  fw::Harness harness(config);
  const auto result = harness.run(
      {rodinia::make_app("needle", small), rodinia::make_app("needle", small)});
  EXPECT_TRUE(result.all_verified);
}

// --------------------------------------------------- synthetic event streams

TEST(InvariantCheckerTest, DetectsClockGoingBackwards) {
  InvariantChecker c(gpu::DeviceSpec::tesla_k20());
  c.on_op_submitted(100, 1, 0, gpu::ObservedOp::Kernel);
  c.on_op_submitted(50, 2, 0, gpu::ObservedOp::Kernel);
  ASSERT_FALSE(c.ok());
  EXPECT_NE(c.report().find("clock went backwards"), std::string::npos);
}

TEST(InvariantCheckerTest, DetectsCopyFifoViolation) {
  InvariantChecker c(gpu::DeviceSpec::tesla_k20());
  c.on_copy_enqueued(0, gpu::CopyDirection::HtoD, 1, 0, -1, 100);
  c.on_copy_enqueued(0, gpu::CopyDirection::HtoD, 2, 0, -1, 100);
  c.on_copy_served(10, gpu::CopyDirection::HtoD, 2, -1, 0, 10, 100);
  ASSERT_FALSE(c.ok());
  EXPECT_NE(c.report().find("out of FIFO order"), std::string::npos);
}

TEST(InvariantCheckerTest, DetectsOverlappingCopyService) {
  InvariantChecker c(gpu::DeviceSpec::tesla_k20());
  c.on_copy_enqueued(0, gpu::CopyDirection::DtoH, 1, 0, -1, 100);
  c.on_copy_enqueued(0, gpu::CopyDirection::DtoH, 2, 0, -1, 100);
  c.on_copy_served(10, gpu::CopyDirection::DtoH, 1, -1, 0, 10, 100);
  // Second service starts before the first ended.
  c.on_copy_served(15, gpu::CopyDirection::DtoH, 2, -1, 5, 15, 100);
  ASSERT_FALSE(c.ok());
  EXPECT_NE(c.report().find("overlapping"), std::string::npos);
}

TEST(InvariantCheckerTest, DetectsStreamOrderViolation) {
  InvariantChecker c(gpu::DeviceSpec::tesla_k20());
  c.on_op_submitted(0, 1, 7, gpu::ObservedOp::Copy);
  c.on_op_submitted(0, 2, 7, gpu::ObservedOp::Kernel);
  c.on_op_completed(10, 2, 7);
  ASSERT_FALSE(c.ok());
  EXPECT_NE(c.report().find("out of submission order"), std::string::npos);
}

TEST(InvariantCheckerTest, DetectsSmxOverCapacity) {
  gpu::DeviceSpec spec = gpu::DeviceSpec::tesla_k20();
  InvariantChecker c(spec);
  const gpu::BlockDemand demand{1, 0, 0};
  const auto blocks =
      static_cast<std::uint64_t>(spec.max_blocks_per_smx) + 1;
  c.on_kernel_dispatched(0, 1, 0, blocks, demand);
  c.on_blocks_placed(0, 1, 0, static_cast<int>(blocks), demand);
  ASSERT_FALSE(c.ok());
  EXPECT_NE(c.report().find("over capacity"), std::string::npos);
}

TEST(InvariantCheckerTest, DetectsReleaseWithoutPlacement) {
  InvariantChecker c(gpu::DeviceSpec::tesla_k20());
  c.on_blocks_released(0, 99, 0, 1, gpu::BlockDemand{32, 16, 0});
  ASSERT_FALSE(c.ok());
  EXPECT_NE(c.report().find("unknown kernel"), std::string::npos);
}

TEST(InvariantCheckerTest, DetectsIncompleteKernelCompletion) {
  InvariantChecker c(gpu::DeviceSpec::tesla_k20());
  const gpu::BlockDemand demand{32, 16, 0};
  c.on_kernel_dispatched(0, 1, 0, 2, demand);
  c.on_blocks_placed(0, 1, 0, 1, demand);
  gpu::KernelExec exec;
  exec.op_id = 1;
  c.on_kernel_completed(10, exec);
  ASSERT_FALSE(c.ok());
  EXPECT_NE(c.report().find("completed with"), std::string::npos);
}

TEST(InvariantCheckerTest, DetectsImplausiblePower) {
  InvariantChecker c(gpu::DeviceSpec::tesla_k20());
  c.on_power_integrated(10, -5.0, 0.5);
  c.on_power_integrated(20, 1e6, 0.5);
  c.on_power_integrated(30, 50.0, 1.5);
  const auto& v = c.violations();
  ASSERT_EQ(v.size(), 3u);
  EXPECT_NE(v[0].find("implausible power"), std::string::npos);
  EXPECT_NE(v[2].find("outside [0,1]"), std::string::npos);
}

TEST(InvariantCheckerTest, FinalizeFlagsUnfinishedWork) {
  InvariantChecker c(gpu::DeviceSpec::tesla_k20());
  sim::Simulator sim;
  gpu::Device device(sim, gpu::DeviceSpec::tesla_k20());
  c.on_op_submitted(0, 1, 0, gpu::ObservedOp::Kernel);
  c.on_kernel_dispatched(0, 1, 0, 4, gpu::BlockDemand{32, 16, 0});
  c.finalize(device);
  ASSERT_FALSE(c.ok());
  EXPECT_NE(c.report().find("never completed"), std::string::npos);
  EXPECT_NE(c.report().find("unfinished ops"), std::string::npos);
}

// ------------------------------------------------------- memory accounting

TEST(InvariantCheckerTest, DetectsDeviceMemoryLeak) {
  sim::Simulator sim;
  gpu::Device device(sim, gpu::DeviceSpec::tesla_k20());
  rt::Runtime runtime(sim, device);
  ASSERT_TRUE(runtime.malloc_device(kMiB).ok());

  InvariantChecker c(device.spec());
  c.finalize_runtime(runtime);
  ASSERT_FALSE(c.ok());
  EXPECT_NE(c.report().find("device memory leak"), std::string::npos);
}

TEST(InvariantCheckerTest, DetectsDoubleFree) {
  sim::Simulator sim;
  gpu::Device device(sim, gpu::DeviceSpec::tesla_k20());
  rt::Runtime runtime(sim, device);
  auto r = runtime.malloc_device(64);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(runtime.free_device(r.value()), rt::Status::Ok);
  EXPECT_EQ(runtime.free_device(r.value()), rt::Status::InvalidHandle);

  InvariantChecker c(device.spec());
  c.finalize_runtime(runtime);
  ASSERT_FALSE(c.ok());
  EXPECT_NE(c.report().find("failed (double?) frees"), std::string::npos);
}

TEST(InvariantCheckerTest, CleanTeardownPassesMemoryAccounting) {
  sim::Simulator sim;
  gpu::Device device(sim, gpu::DeviceSpec::tesla_k20());
  rt::Runtime runtime(sim, device);
  auto d = runtime.malloc_device(kMiB);
  auto h = runtime.malloc_host(kKiB);
  ASSERT_TRUE(d.ok() && h.ok());
  EXPECT_EQ(runtime.free_device(d.value()), rt::Status::Ok);
  EXPECT_EQ(runtime.free_host(h.value()), rt::Status::Ok);

  InvariantChecker c(device.spec());
  c.finalize_runtime(runtime);
  EXPECT_TRUE(c.ok()) << c.report();
}

}  // namespace
}  // namespace hq::check
