#include "check/invariants.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <utility>

#include "cudart/runtime.hpp"
#include "fault/fault.hpp"

namespace hq::check {

namespace {
constexpr std::size_t kMaxRecordedViolations = 200;
constexpr double kEnergyRelTolerance = 1e-6;
}  // namespace

InvariantChecker::InvariantChecker(gpu::DeviceSpec spec)
    : spec_(std::move(spec)) {
  smx_usage_.resize(static_cast<std::size_t>(spec_.num_smx));
  // Upper bound on plausible board power: everything busy at once plus a
  // little slack for rounding.
  max_plausible_power_ = spec_.idle_power + spec_.active_base_power +
                         spec_.max_dynamic_power +
                         2 * spec_.copy_engine_power + 1.0;
}

void InvariantChecker::fail(std::string message) {
  if (violations_.size() < kMaxRecordedViolations) {
    violations_.push_back(std::move(message));
  }
}

void InvariantChecker::observe_time(TimeNs now, const char* where) {
  ++events_observed_;
  if (now < last_event_time_) {
    std::ostringstream os;
    os << "clock went backwards at " << where << ": " << now << " < "
       << last_event_time_;
    fail(os.str());
  }
  last_event_time_ = std::max(last_event_time_, now);
}

InvariantChecker::EngineState& InvariantChecker::engine(gpu::CopyDirection dir) {
  return engines_[static_cast<std::size_t>(dir)];
}

InvariantChecker::PendingKernel* InvariantChecker::find_kernel(gpu::OpId op) {
  if (kernel_memo_[0] != nullptr && kernel_memo_[0]->op == op) {
    return kernel_memo_[0];
  }
  if (kernel_memo_[1] != nullptr && kernel_memo_[1]->op == op) {
    std::swap(kernel_memo_[0], kernel_memo_[1]);  // most-recent first
    return kernel_memo_[0];
  }
  auto it = kernels_.find(op);
  if (it == kernels_.end()) return nullptr;
  kernel_memo_[1] = kernel_memo_[0];
  kernel_memo_[0] = &it->second;
  return kernel_memo_[0];
}

// ----------------------------------------------------------- stream order

void InvariantChecker::on_op_submitted(TimeNs now, gpu::OpId op,
                                       gpu::StreamId stream,
                                       gpu::ObservedOp /*kind*/) {
  observe_time(now, "op submit");
  stream_order_[stream].push_back(op);
}

void InvariantChecker::on_op_completed(TimeNs now, gpu::OpId op,
                                       gpu::StreamId stream) {
  observe_time(now, "op complete");
  auto& order = stream_order_[stream];
  if (order.empty() || order.front() != op) {
    std::ostringstream os;
    os << "stream " << stream << ": op " << op
       << " completed out of submission order (expected "
       << (order.empty() ? 0 : order.front()) << ")";
    fail(os.str());
    // Drop the op wherever it is so one violation does not cascade.
    auto it = std::find(order.begin(), order.end(), op);
    if (it != order.end()) order.erase(it);
    return;
  }
  order.pop_front();
}

// ----------------------------------------------------------- copy engines

void InvariantChecker::on_copy_enqueued(TimeNs now, gpu::CopyDirection dir,
                                        gpu::OpId op, gpu::StreamId /*stream*/,
                                        std::int32_t /*app*/, Bytes /*bytes*/) {
  observe_time(now, "copy enqueue");
  engine(dir).fifo.push_back(op);
}

void InvariantChecker::on_copy_served(TimeNs now, gpu::CopyDirection dir,
                                      gpu::OpId op, std::int32_t /*app*/,
                                      TimeNs begin, TimeNs end,
                                      Bytes /*bytes*/) {
  observe_time(now, "copy serve");
  EngineState& eng = engine(dir);
  if (eng.fifo.empty() || eng.fifo.front() != op) {
    std::ostringstream os;
    os << gpu::copy_direction_name(dir) << " engine served op " << op
       << " out of FIFO order (expected "
       << (eng.fifo.empty() ? 0 : eng.fifo.front()) << ")";
    fail(os.str());
    auto it = std::find(eng.fifo.begin(), eng.fifo.end(), op);
    if (it != eng.fifo.end()) eng.fifo.erase(it);
  } else {
    eng.fifo.pop_front();
  }
  if (end < begin || end != now) {
    std::ostringstream os;
    os << gpu::copy_direction_name(dir) << " engine op " << op
       << ": bad service interval [" << begin << ", " << end << "] at " << now;
    fail(os.str());
  }
  if (begin < eng.last_service_end) {
    std::ostringstream os;
    os << gpu::copy_direction_name(dir) << " engine op " << op
       << ": service began at " << begin
       << " overlapping the previous transaction (ended "
       << eng.last_service_end << ")";
    fail(os.str());
  }
  eng.last_service_end = std::max(eng.last_service_end, end);
  ++eng.served;
}

// ----------------------------------------------------- LEFTOVER + SMX model

void InvariantChecker::on_kernel_dispatched(TimeNs now, gpu::OpId op,
                                            int priority, std::uint64_t blocks,
                                            const gpu::BlockDemand& demand) {
  observe_time(now, "kernel dispatch");
  if (kernels_.count(op) != 0) {
    std::ostringstream os;
    os << "kernel op " << op << " dispatched twice";
    fail(os.str());
    return;
  }
  PendingKernel k;
  k.op = op;
  k.priority = priority;
  k.blocks_total = blocks;
  kernels_.emplace(op, k);
  if (demand.threads <= 0 ||
      demand.threads > spec_.max_threads_per_block) {
    std::ostringstream os;
    os << "kernel op " << op << " dispatched with invalid block demand ("
       << demand.threads << " threads)";
    fail(os.str());
  }
  // Same insertion rule as the block scheduler: a numerically lower priority
  // goes ahead of waiting higher-value priorities, never ahead of equals.
  auto pos = leftover_order_.end();
  while (pos != leftover_order_.begin()) {
    PendingKernel* prev = find_kernel(*(pos - 1));
    if (prev == nullptr || prev->priority <= priority) break;
    --pos;
  }
  leftover_order_.insert(pos, op);
}

void InvariantChecker::on_blocks_placed(TimeNs now, gpu::OpId op, int smx,
                                        int count,
                                        const gpu::BlockDemand& demand) {
  observe_time(now, "block placement");
  PendingKernel* k = find_kernel(op);
  if (k == nullptr) {
    std::ostringstream os;
    os << "blocks placed for unknown kernel op " << op;
    fail(os.str());
    return;
  }
  if (leftover_order_.empty() || leftover_order_.front() != op) {
    std::ostringstream os;
    os << "LEFTOVER violation: blocks of kernel op " << op
       << " placed while op "
       << (leftover_order_.empty() ? 0 : leftover_order_.front())
       << " (older or higher priority) still has unplaced blocks";
    fail(os.str());
  }
  if (count <= 0) {
    std::ostringstream os;
    os << "kernel op " << op << ": non-positive placement count " << count;
    fail(os.str());
    return;
  }
  k->placed += static_cast<std::uint64_t>(count);
  k->outstanding += static_cast<std::uint64_t>(count);
  if (k->placed > k->blocks_total) {
    std::ostringstream os;
    os << "kernel op " << op << ": placed " << k->placed << " of "
       << k->blocks_total << " blocks";
    fail(os.str());
  }
  if (k->placed >= k->blocks_total) {
    auto it = std::find(leftover_order_.begin(), leftover_order_.end(), op);
    if (it != leftover_order_.end()) leftover_order_.erase(it);
  }

  if (smx < 0 || smx >= spec_.num_smx) {
    std::ostringstream os;
    os << "kernel op " << op << ": placement on invalid SMX " << smx;
    fail(os.str());
    return;
  }
  SmxUsage& u = smx_usage_[static_cast<std::size_t>(smx)];
  u.blocks += count;
  u.threads += demand.threads * count;
  u.registers += static_cast<std::int64_t>(demand.registers) * count;
  u.shared_mem += static_cast<std::int64_t>(demand.shared_mem) * count;
  resident_blocks_ += count;
  resident_threads_ += demand.threads * count;
  if (u.blocks > spec_.max_blocks_per_smx ||
      u.threads > spec_.max_threads_per_smx ||
      u.registers > static_cast<std::int64_t>(spec_.registers_per_smx) ||
      u.shared_mem > static_cast<std::int64_t>(spec_.shared_mem_per_smx)) {
    std::ostringstream os;
    os << "SMX " << smx << " over capacity after placing " << count
       << " blocks of op " << op << " (blocks " << u.blocks << ", threads "
       << u.threads << ", regs " << u.registers << ", smem " << u.shared_mem
       << ")";
    fail(os.str());
  }
  if (resident_blocks_ > spec_.max_resident_blocks() ||
      resident_threads_ > spec_.max_resident_threads()) {
    std::ostringstream os;
    os << "device over capacity: " << resident_blocks_ << " blocks / "
       << resident_threads_ << " threads resident";
    fail(os.str());
  }
}

void InvariantChecker::on_blocks_released(TimeNs now, gpu::OpId op, int smx,
                                          int count,
                                          const gpu::BlockDemand& demand) {
  observe_time(now, "block release");
  PendingKernel* k = find_kernel(op);
  if (k == nullptr) {
    std::ostringstream os;
    os << "blocks released for unknown kernel op " << op;
    fail(os.str());
    return;
  }
  if (static_cast<std::uint64_t>(count) > k->outstanding) {
    std::ostringstream os;
    os << "kernel op " << op << ": released " << count << " blocks with only "
       << k->outstanding << " outstanding";
    fail(os.str());
    k->outstanding = 0;
  } else {
    k->outstanding -= static_cast<std::uint64_t>(count);
  }
  if (smx < 0 || smx >= spec_.num_smx) return;
  SmxUsage& u = smx_usage_[static_cast<std::size_t>(smx)];
  u.blocks -= count;
  u.threads -= demand.threads * count;
  u.registers -= static_cast<std::int64_t>(demand.registers) * count;
  u.shared_mem -= static_cast<std::int64_t>(demand.shared_mem) * count;
  resident_blocks_ -= count;
  resident_threads_ -= demand.threads * count;
  if (u.blocks < 0 || u.threads < 0 || u.registers < 0 || u.shared_mem < 0 ||
      resident_blocks_ < 0 || resident_threads_ < 0) {
    std::ostringstream os;
    os << "SMX " << smx << " resource accounting went negative releasing "
       << count << " blocks of op " << op;
    fail(os.str());
  }
}

void InvariantChecker::on_kernel_completed(TimeNs now,
                                           const gpu::KernelExec& exec) {
  observe_time(now, "kernel complete");
  PendingKernel* k = find_kernel(exec.op_id);
  if (k == nullptr) {
    std::ostringstream os;
    os << "unknown kernel op " << exec.op_id << " completed";
    fail(os.str());
    return;
  }
  if (k->placed != k->blocks_total || k->outstanding != 0) {
    std::ostringstream os;
    os << "kernel op " << exec.op_id << " completed with " << k->placed
       << "/" << k->blocks_total << " blocks placed and " << k->outstanding
       << " outstanding";
    fail(os.str());
  }
  auto it = std::find(leftover_order_.begin(), leftover_order_.end(),
                      exec.op_id);
  if (it != leftover_order_.end()) leftover_order_.erase(it);
  if (kernel_memo_[0] == k) kernel_memo_[0] = nullptr;
  if (kernel_memo_[1] == k) kernel_memo_[1] = nullptr;
  kernels_.erase(exec.op_id);
}

// --------------------------------------------------------------- power

void InvariantChecker::on_power_integrated(TimeNs now, Watts power,
                                           double occupancy) {
  observe_time(now, "power integration");
  if (power < 0.0 || power > max_plausible_power_) {
    std::ostringstream os;
    os << "implausible power " << power << " W at t=" << now;
    fail(os.str());
  }
  if (occupancy < 0.0 || occupancy > 1.0 + 1e-12) {
    std::ostringstream os;
    os << "occupancy " << occupancy << " outside [0,1] at t=" << now;
    fail(os.str());
  }
  if (now >= last_integration_) {
    energy_j_ +=
        power * static_cast<double>(now - last_integration_) / 1e9;
    last_integration_ = now;
  }
}

// --------------------------------------------------------------- faults

void InvariantChecker::on_fault_injected(TimeNs now, gpu::ObservedFault kind,
                                         std::uint64_t key,
                                         DurationNs penalty) {
  observe_time(now, "fault injection");
  (void)key;
  (void)penalty;
  const auto index = static_cast<std::size_t>(kind);
  if (index >= gpu::kNumObservedFaults) {
    std::ostringstream os;
    os << "unknown fault kind " << index << " at t=" << now;
    fail(os.str());
    return;
  }
  ++fault_events_[index];
}

// --------------------------------------------------------------- finalize

void InvariantChecker::finalize(const gpu::Device& device) {
  if (resident_blocks_ != 0 || resident_threads_ != 0) {
    std::ostringstream os;
    os << "run ended with " << resident_blocks_ << " blocks / "
       << resident_threads_ << " threads still resident";
    fail(os.str());
  }
  for (std::size_t i = 0; i < smx_usage_.size(); ++i) {
    const SmxUsage& u = smx_usage_[i];
    if (u.blocks != 0 || u.threads != 0 || u.registers != 0 ||
        u.shared_mem != 0) {
      std::ostringstream os;
      os << "SMX " << i << " resources not fully released at end of run";
      fail(os.str());
    }
  }
  if (!kernels_.empty() || !leftover_order_.empty()) {
    std::ostringstream os;
    os << kernels_.size() << " kernels never completed";
    fail(os.str());
  }
  for (const auto& [stream, order] : stream_order_) {
    if (!order.empty()) {
      std::ostringstream os;
      os << "stream " << stream << " ended with " << order.size()
         << " unfinished ops";
      fail(os.str());
    }
  }
  for (const EngineState& eng : engines_) {
    if (!eng.fifo.empty()) {
      std::ostringstream os;
      os << "copy engine ended with " << eng.fifo.size()
         << " unserved transactions";
      fail(os.str());
    }
  }
  const std::uint64_t served_device =
      device.htod_engine().transactions_served() +
      (&device.dtoh_engine() != &device.htod_engine()
           ? device.dtoh_engine().transactions_served()
           : 0);
  const std::uint64_t served_checker = engines_[0].served + engines_[1].served;
  if (served_device != served_checker) {
    std::ostringstream os;
    os << "copy-engine service count mismatch: device " << served_device
       << ", checker " << served_checker;
    fail(os.str());
  }

  // Energy ≡ ∫power. The device and the checker integrate the same
  // piecewise-constant power at the same instants; the only open interval is
  // the tail after the last state change, where power is still constant.
  const TimeNs now = device.now();
  const double tail =
      device.instantaneous_power() *
      static_cast<double>(now >= last_integration_ ? now - last_integration_
                                                   : 0) /
      1e9;
  const double expected = energy_j_ + tail;
  const double actual = device.energy();
  const double tolerance =
      kEnergyRelTolerance * std::max(1.0, std::max(expected, actual));
  if (std::abs(expected - actual) > tolerance) {
    std::ostringstream os;
    os << "energy mismatch: device reports " << actual
       << " J, integral of power is " << expected << " J";
    fail(os.str());
  }
}

void InvariantChecker::finalize_runtime(const rt::Runtime& runtime) {
  const rt::MemStats& m = runtime.mem_stats();
  if (m.failed_frees != 0) {
    std::ostringstream os;
    os << m.failed_frees << " failed (double?) frees";
    fail(os.str());
  }
  if (m.device_allocs != m.device_frees ||
      runtime.device_allocation_count() != 0 ||
      runtime.device_bytes_in_use() != 0) {
    std::ostringstream os;
    os << "device memory leak: " << m.device_allocs << " allocs, "
       << m.device_frees << " frees, " << runtime.device_bytes_in_use()
       << " bytes in use";
    fail(os.str());
  }
  if (m.host_allocs != m.host_frees || runtime.host_allocation_count() != 0) {
    std::ostringstream os;
    os << "host memory leak: " << m.host_allocs << " allocs, " << m.host_frees
       << " frees";
    fail(os.str());
  }
}

void InvariantChecker::finalize_faults(const fault::FaultStats& stats) {
  for (std::size_t i = 0; i < gpu::kNumObservedFaults; ++i) {
    const auto kind = static_cast<gpu::ObservedFault>(i);
    const std::uint64_t expected = stats.count_for(kind);
    if (fault_events_[i] != expected) {
      std::ostringstream os;
      os << "fault accounting mismatch for " << gpu::observed_fault_name(kind)
         << ": injector counted " << expected << ", observer saw "
         << fault_events_[i];
      fail(os.str());
    }
  }
}

std::string InvariantChecker::report() const {
  std::ostringstream os;
  os << violations_.size() << " invariant violation(s) over "
     << events_observed_ << " events";
  for (const std::string& v : violations_) os << "\n  - " << v;
  return os.str();
}

}  // namespace hq::check
