// Properties of the EventFn/EventPool callback storage introduced by the
// allocation overhaul: storage choice (inline / pooled / oversize) must be
// an implementation detail — dispatch order, exception behaviour, and
// determinism are identical across all three paths.
#include "sim/event_fn.hpp"

#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/check.hpp"
#include "sim/simulator.hpp"

namespace hq::sim {
namespace {

// Oversized payload: bigger than EventPool::kSlotBytes, forcing the plain
// heap fallback.
struct BigPayload {
  std::array<std::byte, EventPool::kSlotBytes + 64> bytes{};
};

// ------------------------------------------------------------ storage paths

TEST(EventFnTest, SmallTrivialClosureIsInline) {
  EventPool pool;
  CallbackStats stats;
  int hits = 0;
  int* p = &hits;
  EventFn fn(pool, stats, [p] { ++*p; });
  EXPECT_TRUE(fn.is_inline());
  EXPECT_EQ(stats.inline_stored, 1u);
  EXPECT_EQ(stats.pooled, 0u);
  EXPECT_EQ(stats.oversize, 0u);
  fn();
  EXPECT_EQ(hits, 1);
}

TEST(EventFnTest, ThreePointerClosureStillInline) {
  // The widest hot-path capture in the tree is 24 bytes (three words);
  // kInlineBytes must keep covering it.
  EventPool pool;
  CallbackStats stats;
  std::uint64_t a = 1, b = 2, c = 3, sum = 0;
  std::uint64_t* out = &sum;
  EventFn fn(pool, stats, [&a, &b, out] { *out = a + b; });
  static_assert(EventFn::kInlineBytes >= 3 * sizeof(void*));
  EXPECT_TRUE(fn.is_inline());
  fn();
  EXPECT_EQ(sum, 3u);
  (void)c;
}

TEST(EventFnTest, NonTriviallyCopyableClosureIsPooled) {
  EventPool pool;
  CallbackStats stats;
  auto big = std::make_shared<int>(7);  // shared_ptr capture: not trivial
  int got = 0;
  EventFn fn(pool, stats, [big, &got] { got = *big; });
  EXPECT_FALSE(fn.is_inline());
  EXPECT_EQ(stats.pooled, 1u);
  EXPECT_EQ(stats.oversize, 0u);
  fn();
  EXPECT_EQ(got, 7);
}

TEST(EventFnTest, HugeClosureFallsBackToHeap) {
  EventPool pool;
  CallbackStats stats;
  BigPayload payload;
  payload.bytes[0] = std::byte{42};
  int got = 0;
  EventFn fn(pool, stats, [payload, &got] {
    got = static_cast<int>(payload.bytes[0]);
  });
  EXPECT_FALSE(fn.is_inline());
  EXPECT_EQ(stats.oversize, 1u);
  EXPECT_EQ(stats.pooled, 0u);
  fn();
  EXPECT_EQ(got, 42);
}

TEST(EventFnTest, MovePreservesEveryStoragePath) {
  EventPool pool;
  CallbackStats stats;
  int inline_hits = 0, pooled_hits = 0, oversize_hits = 0;
  int* ip = &inline_hits;
  auto sp = std::make_shared<int>(1);
  int* pp = &pooled_hits;
  BigPayload payload;
  int* op = &oversize_hits;

  EventFn a(pool, stats, [ip] { ++*ip; });
  EventFn b(pool, stats, [sp, pp] { *pp += *sp; });
  EventFn c(pool, stats, [payload, op] { ++*op; });

  EventFn a2 = std::move(a);
  EventFn b2 = std::move(b);
  EventFn c2 = std::move(c);
  EXPECT_FALSE(static_cast<bool>(a));  // NOLINT(bugprone-use-after-move)
  a2();
  b2();
  c2();
  EXPECT_EQ(inline_hits, 1);
  EXPECT_EQ(pooled_hits, 1);
  EXPECT_EQ(oversize_hits, 1);
}

TEST(EventFnTest, InvokingEmptyThrows) {
  EventFn empty;
  EXPECT_FALSE(static_cast<bool>(empty));
  EXPECT_THROW(empty(), hq::Error);
}

TEST(EventFnTest, ThrowingConstructorReturnsSlotToPool) {
  // If the closure's copy/move constructor throws while it is being placed
  // into a pool slot, the slot must go back on the freelist: otherwise every
  // throw leaks a slot. 1000 throws from a 64-slot slab would force ~16
  // slabs if slots leaked; a single slab proves they are recycled.
  struct ThrowOnCopy {
    std::shared_ptr<int> keep;  // non-trivial capture: forces the pooled path
    ThrowOnCopy() : keep(std::make_shared<int>(0)) {}
    ThrowOnCopy(const ThrowOnCopy& other) : keep(other.keep) {
      throw std::runtime_error("copy boom");
    }
    void operator()() const {}
  };
  EventPool pool;
  CallbackStats stats;
  const ThrowOnCopy fn;  // lvalue, so EventFn copies (and the copy throws)
  for (int i = 0; i < 1000; ++i) {
    EXPECT_THROW(EventFn(pool, stats, fn), std::runtime_error);
  }
  EXPECT_EQ(stats.pooled, 0u);
  EXPECT_EQ(pool.slabs(), 1u);
  // The pool is still healthy: a normal pooled callback works.
  auto keep = std::make_shared<int>(0);
  EventFn ok(pool, stats, [keep] { ++*keep; });
  ok();
  EXPECT_EQ(*keep, 1);
  EXPECT_EQ(stats.pooled, 1u);
}

TEST(EventPoolTest, SlotsAreRecycledWithoutNewSlabs) {
  EventPool pool;
  CallbackStats stats;
  auto keep = std::make_shared<int>(0);
  // Far more sequential pooled callbacks than one slab holds: the freelist
  // must recycle slots instead of growing.
  for (int i = 0; i < 1000; ++i) {
    EventFn fn(pool, stats, [keep] { ++*keep; });
    fn();
  }
  EXPECT_EQ(*keep, 1000);
  EXPECT_EQ(stats.pooled, 1000u);
  EXPECT_EQ(pool.slabs(), 1u);
}

// --------------------------------------------------- simulator-level parity

TEST(EventFnSimTest, SameInstantFifoAcrossStorageKinds) {
  // Events scheduled for the same instant run in scheduling order even when
  // their callbacks alternate between inline, pooled, and oversize storage.
  Simulator sim;
  std::vector<int> order;
  auto shared = std::make_shared<int>(0);
  for (int i = 0; i < 30; ++i) {
    switch (i % 3) {
      case 0:
        sim.schedule(10, [&order, i] { order.push_back(i); });  // inline
        break;
      case 1:
        sim.schedule(10, [&order, shared, i] { order.push_back(i); });
        break;
      default: {
        BigPayload payload;
        sim.schedule(10, [&order, payload, i] { order.push_back(i); });
        break;
      }
    }
  }
  sim.run();
  ASSERT_EQ(order.size(), 30u);
  for (int i = 0; i < 30; ++i) EXPECT_EQ(order[i], i);
  const CallbackStats stats = sim.callback_stats();
  EXPECT_EQ(stats.inline_stored, 10u);
  EXPECT_EQ(stats.pooled, 10u);
  EXPECT_EQ(stats.oversize, 10u);
}

TEST(EventFnSimTest, ZeroDelayYieldIsDeterministic) {
  // Two tasks ping-ponging on zero-delay yields interleave the same way on
  // every run: the (time, seq) heap key decides, not callback storage.
  const auto run_once = [] {
    Simulator sim;
    std::vector<std::string> log;
    auto worker = [&sim, &log](std::string tag) -> Task {
      for (int i = 0; i < 3; ++i) {
        log.push_back(tag + std::to_string(i));
        co_await sim.delay(0);
      }
    };
    sim.spawn(worker("a"));
    sim.spawn(worker("b"));
    sim.run();
    return log;
  };
  const auto first = run_once();
  const auto second = run_once();
  EXPECT_EQ(first, second);
  ASSERT_EQ(first.size(), 6u);
  // Spawn order seeds the interleave: a0 b0 a1 b1 a2 b2.
  EXPECT_EQ(first[0], "a0");
  EXPECT_EQ(first[1], "b0");
  EXPECT_EQ(first[5], "b2");
}

TEST(EventFnSimTest, ExceptionPropagationParityAcrossStorage) {
  // A throwing callback must propagate out of run() identically for every
  // storage path, and the simulator must stay usable afterwards (the popped
  // event's destructor reclaims pooled storage even on throw).
  const auto throws_from = [](int kind) {
    Simulator sim;
    switch (kind) {
      case 0:
        sim.schedule(1, [] { throw std::runtime_error("inline boom"); });
        break;
      case 1: {
        auto p = std::make_shared<int>(0);
        sim.schedule(1, [p] { throw std::runtime_error("pooled boom"); });
        break;
      }
      default: {
        BigPayload payload;
        sim.schedule(1,
                     [payload] { throw std::runtime_error("oversize boom"); });
        break;
      }
    }
    std::string what;
    try {
      sim.run();
    } catch (const std::runtime_error& e) {
      what = e.what();
    }
    // The simulator survives: schedule and run again.
    int after = 0;
    sim.schedule(1, [&after] { after = 1; });
    sim.run();
    return std::pair{what, after};
  };
  EXPECT_EQ(throws_from(0), (std::pair{std::string("inline boom"), 1}));
  EXPECT_EQ(throws_from(1), (std::pair{std::string("pooled boom"), 1}));
  EXPECT_EQ(throws_from(2), (std::pair{std::string("oversize boom"), 1}));
}

TEST(EventFnSimTest, DestroyWithPendingPooledEventsIsSafe) {
  // A simulator destroyed mid-run (run_until stopped early, or run() threw)
  // still holds pending events whose pooled closures must be destroyed and
  // their slots returned while the pool is alive — the pool member has to
  // outlive the heap. Closure destruction is observable through the
  // shared_ptr count dropping back to 1, and ASan/valgrind would flag the
  // old pool-after-heap ordering as a use-after-free here.
  auto keep = std::make_shared<int>(0);
  {
    Simulator sim;
    for (int i = 0; i < 200; ++i) {
      sim.schedule(100 + i, [keep] { ++*keep; });  // pooled
    }
    BigPayload payload;
    sim.schedule(100, [payload, keep] { ++*keep; });  // oversize
    sim.run_until(50);  // stop with everything still pending
    EXPECT_EQ(sim.pending_events(), 201u);
  }
  EXPECT_EQ(keep.use_count(), 1);
  EXPECT_EQ(*keep, 0);
}

TEST(EventFnSimTest, DestroyAfterRunThrowsReleasesPendingEvents) {
  // run() rethrowing (e.g. under fault injection) leaves later events
  // pending; destroying the simulator in that state must reclaim their
  // pooled storage cleanly.
  auto keep = std::make_shared<int>(0);
  {
    Simulator sim;
    sim.schedule(1, [] { throw std::runtime_error("boom"); });
    for (int i = 0; i < 64; ++i) {
      sim.schedule(2, [keep] { ++*keep; });  // pooled, never dispatched
    }
    EXPECT_THROW(sim.run(), std::runtime_error);
    EXPECT_EQ(sim.pending_events(), 64u);
  }
  EXPECT_EQ(keep.use_count(), 1);
  EXPECT_EQ(*keep, 0);
}

TEST(EventFnSimTest, EventsProcessedCountsEveryDispatch) {
  Simulator sim;
  for (int i = 0; i < 5; ++i) sim.schedule(i, [] {});
  EXPECT_EQ(sim.events_processed(), 0u);
  sim.run();
  EXPECT_EQ(sim.events_processed(), 5u);
  sim.schedule(1, [] {});
  sim.run();
  EXPECT_EQ(sim.events_processed(), 6u);
}

TEST(EventFnSimTest, ReserveEventsDoesNotPerturbOrder) {
  const auto run_once = [](std::size_t reserve) {
    Simulator sim;
    if (reserve > 0) sim.reserve_events(reserve);
    std::vector<int> order;
    for (int i = 0; i < 20; ++i) {
      sim.schedule((i * 7) % 5, [&order, i] { order.push_back(i); });
    }
    sim.run();
    return order;
  };
  EXPECT_EQ(run_once(0), run_once(1024));
}

}  // namespace
}  // namespace hq::sim
