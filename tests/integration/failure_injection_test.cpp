// Failure-injection tests: misconfigurations and resource exhaustion must
// surface as crisp errors, never as silent corruption or hangs.
#include <gtest/gtest.h>

#include "hyperq/harness.hpp"
#include "rodinia/registry.hpp"
#include "tests/hyperq/synthetic_app.hpp"

namespace hq::fw {
namespace {

using testing::SyntheticApp;
using testing::synthetic_workload;

TEST(FailureInjectionTest, DeviceOutOfMemorySurfacesFromSetup) {
  // One app demanding more than the K20's 5 GiB: phase-1 allocation fails
  // loudly inside Harness::run.
  SyntheticApp::Spec spec;
  spec.htod_bytes = 6 * kGiB;
  HarnessConfig config;
  config.monitor_power = false;
  Harness harness(config);
  EXPECT_THROW(harness.run(synthetic_workload(1, spec)), hq::Error);
}

TEST(FailureInjectionTest, AggregateOomAcrossApps) {
  // Each app fits alone; two of them exceed the 5 GiB device together.
  SyntheticApp::Spec spec;
  spec.htod_bytes = 2600 * kMiB;
  HarnessConfig config;
  config.monitor_power = false;
  Harness harness(config);
  EXPECT_THROW(harness.run(synthetic_workload(2, spec)), hq::Error);
}

class BadLaunchApp final : public Kernel {
 public:
  void allocateHostMemory(Context&) override {}
  void allocateDeviceMemory(Context&) override {}
  void initializeHostMemory(Context&) override {}
  sim::Task transferMemory(Context& ctx, Direction) override {
    co_await ctx.runtime->stream_synchronize(ctx.stream);
  }
  sim::Task executeKernel(Context& ctx) override {
    rt::LaunchConfig cfg;
    cfg.name = "too_wide";
    cfg.grid = {1, 1, 1};
    cfg.block = {2048, 1, 1};  // exceeds the 1024-thread block limit
    auto op = ctx.runtime->launch_kernel(ctx.stream, std::move(cfg));
    co_await op;
  }
  void freeHostMemory(Context&) override {}
  void freeDeviceMemory(Context&) override {}
  const std::string& name() const override { return name_; }
  Bytes htod_bytes() const override { return 0; }
  Bytes dtoh_bytes() const override { return 0; }
  bool verify(Context&) const override { return true; }

 private:
  std::string name_ = "bad_launch";
};

TEST(FailureInjectionTest, InvalidLaunchConfigurationPropagates) {
  HarnessConfig config;
  config.monitor_power = false;
  Harness harness(config);
  std::vector<WorkloadItem> workload;
  workload.push_back(
      WorkloadItem{"bad", [] { return std::make_unique<BadLaunchApp>(); }});
  EXPECT_THROW(harness.run(workload), hq::Error);
}

TEST(FailureInjectionTest, NullFactoryRejected) {
  Harness harness{HarnessConfig{}};
  std::vector<WorkloadItem> workload;
  workload.push_back(WorkloadItem{"null", [] {
    return std::unique_ptr<Kernel>();
  }});
  EXPECT_THROW(harness.run(workload), hq::Error);
}

TEST(FailureInjectionTest, UnknownRegistryNameRejected) {
  EXPECT_THROW(rodinia::make_app("does-not-exist"), hq::Error);
}

TEST(FailureInjectionTest, RecoveryAfterFailedRun) {
  // A failed run must not poison subsequent runs (each run owns a fresh
  // simulator/device/runtime).
  SyntheticApp::Spec huge;
  huge.htod_bytes = 6 * kGiB;
  HarnessConfig config;
  config.monitor_power = false;
  {
    Harness harness(config);
    EXPECT_THROW(harness.run(synthetic_workload(1, huge)), hq::Error);
  }
  Harness harness(config);
  const auto result = harness.run(synthetic_workload(2, {}));
  EXPECT_GT(result.makespan, 0u);
}

}  // namespace
}  // namespace hq::fw
