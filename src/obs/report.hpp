// Telemetry export: versioned JSON report, Prometheus text exposition, and
// Chrome-trace counter tracks, all rendered from one MetricsRegistry.
//
// Determinism contract: every export here is byte-identical for a given
// registry + inputs. Doubles are printed with std::to_chars (shortest
// round-trip form, locale-independent), metrics are emitted in registration
// order, and apps in caller order — so a metrics report produced inside a
// parallel sweep is byte-identical at any --jobs (the PR-2 contract).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "common/units.hpp"
#include "obs/metrics.hpp"
#include "trace/chrome_trace.hpp"

namespace hq::obs {

/// Bump when the JSON layout changes shape (adding fields is compatible and
/// does not require a bump; renaming/removing does).
inline constexpr int kMetricsSchemaVersion = 1;

/// Per-application row of the report: paper Eq. 1-2 latencies plus the
/// interleave attribution explaining them.
struct AppReport {
  int app_id = -1;
  std::string type;
  DurationNs htod_effective_latency = 0;
  DurationNs dtoh_effective_latency = 0;
  DurationNs htod_own_time = 0;
  Bytes htod_bytes = 0;
  Bytes dtoh_bytes = 0;
  /// Foreign HtoD transfers served inside this app's [Tstart, Tend] window.
  std::uint64_t htod_interleave_count = 0;
  Bytes htod_interleave_bytes = 0;
};

/// Run-level header of the report.
struct RunInfo {
  std::string workload;  ///< e.g. "gaussian+needle"
  int num_apps = 0;
  int num_streams = 0;
  std::string order;  ///< issue-order name; empty when not applicable
  bool memory_sync = false;
  DurationNs makespan = 0;
  Joules energy_j = 0;
  Watts average_power_w = 0;
  Watts peak_power_w = 0;
  double average_occupancy = 0;
  std::uint64_t trace_digest = 0;
};

/// Shortest round-trip decimal rendering of a double (std::to_chars) —
/// the deterministic formatter every exporter here uses.
std::string format_double(double v);

/// Writes `s` as a JSON string literal (quoted, with control characters and
/// quotes escaped). Shared by every hand-rolled JSON exporter in the project
/// so string handling cannot drift between reports.
void write_json_quoted(std::ostream& os, std::string_view s);

/// One registry entry as a JSON object ({"name", "kind", "help", ...value
/// fields per kind}). Shared by the run-level and fleet-level metric
/// reports so the entry layout cannot drift between them.
void write_metric_entry_json(std::ostream& os,
                             const MetricsRegistry::Entry& entry);

/// Versioned JSON metrics report: {"schema_version", "run", "apps",
/// "metrics"}. Metric entries carry their kind; series points are [t, v]
/// pairs in nanoseconds.
void write_metrics_json(std::ostream& os, const RunInfo& info,
                        const MetricsRegistry& registry,
                        const std::vector<AppReport>& apps);
std::string metrics_json(const RunInfo& info, const MetricsRegistry& registry,
                         const std::vector<AppReport>& apps);

/// Prometheus text exposition (metric names prefixed "hq_"). Counters and
/// gauges map directly; histograms emit cumulative le-buckets, _sum and
/// _count; series snapshot to a gauge (last value) plus a _peak gauge.
void write_prometheus(std::ostream& os, const MetricsRegistry& registry);
std::string prometheus_text(const MetricsRegistry& registry);

/// Every Series in the registry as a Chrome-trace counter track, in
/// registration order — merged into the span trace by write_chrome_trace.
std::vector<trace::CounterTrack> counter_tracks(const MetricsRegistry& registry);

}  // namespace hq::obs
