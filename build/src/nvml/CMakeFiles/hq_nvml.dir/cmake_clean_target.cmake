file(REMOVE_RECURSE
  "libhq_nvml.a"
)
