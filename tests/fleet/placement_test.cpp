// Property tests for the fleet placement policies: health is inviolable
// (no policy ever routes to a quarantined device), round-robin cycles as a
// permutation over the healthy set, least-loaded/copy-aware minimize their
// scores with lowest-index tie-breaks, and class-affinity's fallback scan
// is deterministic.
#include "fleet/placement.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/rng.hpp"

namespace hq::fleet {
namespace {

std::vector<DeviceLoad> healthy_loads(std::size_t n) {
  return std::vector<DeviceLoad>(n, DeviceLoad{true, 0, 0});
}

TEST(PlacementTest, NamesRoundTrip) {
  for (const PlacementPolicy policy : all_placement_policies()) {
    const auto parsed = parse_placement_policy(placement_policy_name(policy));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, policy);
  }
  EXPECT_FALSE(parse_placement_policy("wat").has_value());
}

TEST(PlacementTest, NoPolicyEverPicksAnUnhealthyDevice) {
  // Randomized sweep: any load shape, any health mask with at least one
  // healthy device — the pick is always healthy.
  Rng rng(7);
  for (const PlacementPolicy policy : all_placement_policies()) {
    Placer placer(policy, 2.0);
    for (int trial = 0; trial < 500; ++trial) {
      const std::size_t n = 1 + rng.next_below(6);
      std::vector<DeviceLoad> loads(n);
      for (DeviceLoad& d : loads) {
        d.healthy = rng.next_below(3) != 0;
        d.outstanding = rng.next_below(10);
        d.copy_depth = rng.next_below(5);
      }
      loads[rng.next_below(n)].healthy = true;  // at least one healthy
      const auto pick = placer.place(loads, rng.next_below(4));
      ASSERT_TRUE(pick.has_value());
      EXPECT_TRUE(loads[*pick].healthy)
          << placement_policy_name(policy) << " picked quarantined device "
          << *pick;
    }
  }
}

TEST(PlacementTest, AllPoliciesReturnNulloptWhenNoDeviceIsHealthy) {
  std::vector<DeviceLoad> loads(4, DeviceLoad{false, 0, 0});
  for (const PlacementPolicy policy : all_placement_policies()) {
    Placer placer(policy, 2.0);
    EXPECT_FALSE(placer.place(loads, 0).has_value())
        << placement_policy_name(policy);
  }
}

TEST(PlacementTest, RoundRobinIsAPermutationOverAllDevices) {
  Placer placer(PlacementPolicy::RoundRobin, 2.0);
  const auto loads = healthy_loads(5);
  std::vector<int> hits(5, 0);
  for (int i = 0; i < 5; ++i) {
    const auto pick = placer.place(loads, 0);
    ASSERT_TRUE(pick.has_value());
    ++hits[*pick];
  }
  // One full cycle touches every device exactly once.
  EXPECT_TRUE(std::all_of(hits.begin(), hits.end(),
                          [](int h) { return h == 1; }));
}

TEST(PlacementTest, RoundRobinIsAPermutationOverTheHealthySubset) {
  Placer placer(PlacementPolicy::RoundRobin, 2.0);
  std::vector<DeviceLoad> loads = healthy_loads(6);
  loads[1].healthy = false;
  loads[4].healthy = false;
  std::vector<int> hits(6, 0);
  for (int i = 0; i < 4; ++i) {
    const auto pick = placer.place(loads, 0);
    ASSERT_TRUE(pick.has_value());
    ++hits[*pick];
  }
  EXPECT_EQ(hits[1], 0);
  EXPECT_EQ(hits[4], 0);
  for (const std::size_t d : {0u, 2u, 3u, 5u}) EXPECT_EQ(hits[d], 1) << d;
}

TEST(PlacementTest, LeastLoadedPicksMinimumOutstandingLowestIndexTie) {
  Placer placer(PlacementPolicy::LeastLoaded, 2.0);
  std::vector<DeviceLoad> loads = healthy_loads(4);
  loads[0].outstanding = 3;
  loads[1].outstanding = 1;
  loads[2].outstanding = 1;
  loads[3].outstanding = 2;
  EXPECT_EQ(placer.place(loads, 0), std::optional<std::size_t>(1));
}

TEST(PlacementTest, LeastLoadedSkipsQuarantinedMinimum) {
  Placer placer(PlacementPolicy::LeastLoaded, 2.0);
  std::vector<DeviceLoad> loads = healthy_loads(3);
  loads[0].outstanding = 0;
  loads[0].healthy = false;  // the global minimum is quarantined
  loads[1].outstanding = 5;
  loads[2].outstanding = 2;
  EXPECT_EQ(placer.place(loads, 0), std::optional<std::size_t>(2));
}

TEST(PlacementTest, CopyAwareWeighsCopyQueueDepth) {
  Placer placer(PlacementPolicy::CopyAware, 2.0);
  std::vector<DeviceLoad> loads = healthy_loads(2);
  // Device 0: fewer jobs but a deep copy queue (score 1 + 2*3 = 7).
  // Device 1: more jobs, idle engines (score 2 + 2*0 = 2).
  loads[0].outstanding = 1;
  loads[0].copy_depth = 3;
  loads[1].outstanding = 2;
  EXPECT_EQ(placer.place(loads, 0), std::optional<std::size_t>(1));

  // With a zero penalty the same snapshot degenerates to least-loaded.
  Placer unweighted(PlacementPolicy::CopyAware, 0.0);
  EXPECT_EQ(unweighted.place(loads, 0), std::optional<std::size_t>(0));
}

TEST(PlacementTest, ClassAffinityPrefersClassModuloDevices) {
  Placer placer(PlacementPolicy::ClassAffinity, 2.0);
  const auto loads = healthy_loads(3);
  EXPECT_EQ(placer.place(loads, 0), std::optional<std::size_t>(0));
  EXPECT_EQ(placer.place(loads, 1), std::optional<std::size_t>(1));
  EXPECT_EQ(placer.place(loads, 2), std::optional<std::size_t>(2));
  EXPECT_EQ(placer.place(loads, 4), std::optional<std::size_t>(1));
}

TEST(PlacementTest, ClassAffinityFallbackIsDeterministicCyclicScan) {
  Placer placer(PlacementPolicy::ClassAffinity, 2.0);
  std::vector<DeviceLoad> loads = healthy_loads(4);
  loads[1].healthy = false;
  loads[2].healthy = false;
  // Class 1 prefers device 1; the scan continues 2, 3 and lands on 3.
  for (int repeat = 0; repeat < 3; ++repeat) {
    EXPECT_EQ(placer.place(loads, 1), std::optional<std::size_t>(3));
  }
  // Class 3 is already on its healthy preferred device.
  EXPECT_EQ(placer.place(loads, 3), std::optional<std::size_t>(3));
}

TEST(PlacementTest, IdenticalSnapshotsYieldIdenticalDecisions) {
  // The placer is deterministic state: replaying the same load/class
  // sequence through two instances gives identical picks.
  Rng rng(11);
  for (const PlacementPolicy policy : all_placement_policies()) {
    Placer a(policy, 2.0);
    Placer b(policy, 2.0);
    Rng loads_a(99);
    Rng loads_b(99);
    const auto draw = [](Rng& r) {
      std::vector<DeviceLoad> loads(4);
      for (DeviceLoad& d : loads) {
        d.healthy = r.next_below(4) != 0;
        d.outstanding = r.next_below(8);
        d.copy_depth = r.next_below(4);
      }
      return loads;
    };
    for (int i = 0; i < 200; ++i) {
      const std::size_t klass = rng.next_below(5);
      EXPECT_EQ(a.place(draw(loads_a), klass), b.place(draw(loads_b), klass));
    }
  }
}

}  // namespace
}  // namespace hq::fleet
