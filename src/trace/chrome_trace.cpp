#include "trace/chrome_trace.hpp"

#include <ostream>
#include <sstream>

namespace hq::trace {
namespace {

void write_escaped(std::ostream& os, const std::string& s) {
  for (char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          // Control characters are not expected in span names; drop them.
          break;
        }
        os << c;
    }
  }
}

}  // namespace

void write_chrome_trace(const Recorder& recorder, std::ostream& os) {
  os << "[";
  bool first = true;
  for (const Span& s : recorder.spans()) {
    if (!first) os << ",";
    first = false;
    os << "\n  {\"name\": \"";
    write_escaped(os, s.name);
    os << "\", \"cat\": \"" << span_kind_name(s.kind) << "\""
       << ", \"ph\": \"X\""
       << ", \"ts\": " << static_cast<double>(s.begin) / 1e3
       << ", \"dur\": " << static_cast<double>(s.duration()) / 1e3
       << ", \"pid\": 0"
       << ", \"tid\": " << s.lane << ", \"args\": {\"app\": " << s.app_id
       << "}}";
  }
  os << "\n]\n";
}

std::string chrome_trace_json(const Recorder& recorder) {
  std::ostringstream os;
  write_chrome_trace(recorder, os);
  return os.str();
}

}  // namespace hq::trace
