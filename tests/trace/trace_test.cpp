#include "trace/trace.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "common/check.hpp"
#include "tests/common/json_check.hpp"
#include "trace/ascii_timeline.hpp"
#include "trace/chrome_trace.hpp"

namespace hq::trace {
namespace {

Span make_span(std::int32_t lane, std::int32_t app, SpanKind kind,
               TimeNs begin, TimeNs end, const std::string& name = "s") {
  return Span{lane, app, kind, name, begin, end};
}

TEST(RecorderTest, AddAndQuery) {
  Recorder r;
  r.add(make_span(0, 1, SpanKind::Kernel, 10, 20));
  r.add(make_span(1, 1, SpanKind::MemcpyHtoD, 0, 5));
  r.add(make_span(0, 2, SpanKind::MemcpyDtoH, 30, 40));
  EXPECT_EQ(r.size(), 3u);
  EXPECT_EQ(r.by_app(1).size(), 2u);
  EXPECT_EQ(r.by_kind(SpanKind::Kernel).size(), 1u);
  EXPECT_EQ(r.by_lane(0).size(), 2u);
  EXPECT_EQ(*r.min_time(), 0u);
  EXPECT_EQ(*r.max_time(), 40u);
}

TEST(RecorderTest, EmptyExtentsAreNullopt) {
  Recorder r;
  EXPECT_FALSE(r.min_time().has_value());
  EXPECT_FALSE(r.max_time().has_value());
}

TEST(RecorderTest, InvertedSpanThrows) {
  Recorder r;
  EXPECT_THROW(r.add(make_span(0, 0, SpanKind::Kernel, 20, 10)), hq::Error);
}

TEST(RecorderTest, ZeroLengthSpanAllowed) {
  Recorder r;
  r.add(make_span(0, 0, SpanKind::Kernel, 10, 10));
  EXPECT_EQ(r.spans()[0].duration(), 0u);
}

TEST(SpanKindTest, Names) {
  EXPECT_STREQ(span_kind_name(SpanKind::MemcpyHtoD), "HtoD");
  EXPECT_STREQ(span_kind_name(SpanKind::MemcpyDtoH), "DtoH");
  EXPECT_STREQ(span_kind_name(SpanKind::Kernel), "kernel");
}

TEST(AsciiTimelineTest, EmptyRecorderRendersEmpty) {
  Recorder r;
  EXPECT_EQ(render_ascii_timeline(r), "");
}

TEST(AsciiTimelineTest, LanesRenderWithGlyphs) {
  Recorder r;
  r.add(make_span(0, 0, SpanKind::MemcpyHtoD, 0, 50));
  r.add(make_span(0, 0, SpanKind::Kernel, 50, 100));
  r.add(make_span(1, 1, SpanKind::MemcpyDtoH, 25, 75));
  AsciiTimelineOptions opt;
  opt.width = 20;
  const std::string out = render_ascii_timeline(r, opt);
  EXPECT_NE(out.find("Stream 0"), std::string::npos);
  EXPECT_NE(out.find("Stream 1"), std::string::npos);
  EXPECT_NE(out.find('H'), std::string::npos);
  EXPECT_NE(out.find('K'), std::string::npos);
  EXPECT_NE(out.find('D'), std::string::npos);
}

TEST(AsciiTimelineTest, TinySpanStillVisible) {
  Recorder r;
  r.add(make_span(0, 0, SpanKind::Kernel, 0, 1));
  r.add(make_span(0, 0, SpanKind::MemcpyHtoD, 1000000, 2000000));
  AsciiTimelineOptions opt;
  opt.width = 50;
  const std::string out = render_ascii_timeline(r, opt);
  EXPECT_NE(out.find('K'), std::string::npos);
}

TEST(AsciiTimelineTest, KernelGlyphWinsOverlappedCell) {
  Recorder r;
  r.add(make_span(0, 0, SpanKind::LockWait, 0, 100));
  r.add(make_span(0, 0, SpanKind::Kernel, 0, 100));
  AsciiTimelineOptions opt;
  opt.width = 10;
  const std::string out = render_ascii_timeline(r, opt);
  // Examine only the data row for stream 0 (the legend also contains 'w').
  const std::size_t row_start = out.find("Stream 0");
  ASSERT_NE(row_start, std::string::npos);
  const std::string row = out.substr(row_start, out.find('\n', row_start) - row_start);
  EXPECT_NE(row.find('K'), std::string::npos);
  EXPECT_EQ(row.find('w'), std::string::npos);
}

TEST(AsciiTimelineTest, LaneLabelBaseOffsetsLabels) {
  Recorder r;
  r.add(make_span(0, 0, SpanKind::Kernel, 0, 10));
  AsciiTimelineOptions opt;
  opt.lane_label_base = 34;  // match the paper's figures
  const std::string out = render_ascii_timeline(r, opt);
  EXPECT_NE(out.find("Stream 34"), std::string::npos);
}

TEST(AsciiTimelineTest, WindowRestrictsRendering) {
  Recorder r;
  r.add(make_span(0, 0, SpanKind::Kernel, 0, 100));
  r.add(make_span(1, 0, SpanKind::Kernel, 500, 600));
  AsciiTimelineOptions opt;
  opt.begin = 400;
  opt.end = 700;
  const std::string out = render_ascii_timeline(r, opt);
  EXPECT_EQ(out.find("Stream 0"), std::string::npos);
  EXPECT_NE(out.find("Stream 1"), std::string::npos);
}

TEST(ChromeTraceTest, ProducesWellFormedJson) {
  Recorder r;
  r.add(make_span(3, 9, SpanKind::Kernel, 1000, 3000, "Fan1"));
  const std::string json = chrome_trace_json(r);
  EXPECT_NE(json.find("\"name\": \"Fan1\""), std::string::npos);
  EXPECT_NE(json.find("\"cat\": \"kernel\""), std::string::npos);
  EXPECT_NE(json.find("\"ts\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"dur\": 2"), std::string::npos);
  EXPECT_NE(json.find("\"tid\": 3"), std::string::npos);
  EXPECT_NE(json.find("\"app\": 9"), std::string::npos);
  EXPECT_EQ(json.front(), '[');
  EXPECT_EQ(json[json.size() - 2], ']');
}

TEST(ChromeTraceTest, EscapesSpecialCharacters) {
  Recorder r;
  r.add(make_span(0, 0, SpanKind::Kernel, 0, 1, "a\"b\\c"));
  const std::string json = chrome_trace_json(r);
  EXPECT_NE(json.find("a\\\"b\\\\c"), std::string::npos);
}

TEST(ChromeTraceTest, EmptyRecorderIsEmptyArray) {
  Recorder r;
  EXPECT_EQ(chrome_trace_json(r), "[\n]\n");
}

// ------------------------------------------------------- counter events

TEST(ChromeTraceCounterTest, EmitsCounterEventsAfterSpans) {
  Recorder r;
  r.add(make_span(0, 0, SpanKind::Kernel, 1000, 3000, "k"));
  std::vector<CounterTrack> counters(1);
  counters[0].name = "copy_queue_depth_htod";
  counters[0].points = {{0, 0.0}, {2000, 3.0}, {5000, 1.0}};
  const std::string json = chrome_trace_json(r, counters);
  EXPECT_TRUE(hq::testing::json_well_formed(json)) << json;
  EXPECT_NE(json.find("\"ph\": \"C\""), std::string::npos);
  EXPECT_NE(json.find("\"name\": \"copy_queue_depth_htod\""),
            std::string::npos);
  EXPECT_NE(json.find("\"args\": {\"value\": 3}"), std::string::npos);
  // Span events still precede the counter events.
  EXPECT_LT(json.find("\"ph\": \"X\""), json.find("\"ph\": \"C\""));
}

TEST(ChromeTraceCounterTest, CountersAloneAreWellFormed) {
  // No spans: the first emitted event is a counter, which must not be
  // preceded by a comma.
  Recorder r;
  std::vector<CounterTrack> counters(2);
  counters[0].name = "power_watts";
  counters[0].points = {{0, 25.0}, {100, 137.5}};
  counters[1].name = "occupancy";
  counters[1].points = {{0, 0.25}};
  const std::string json = chrome_trace_json(r, counters);
  EXPECT_TRUE(hq::testing::json_well_formed(json)) << json;
  EXPECT_NE(json.find("137.5"), std::string::npos);
}

TEST(ChromeTraceCounterTest, TimestampsStayMonotonicPerTrack) {
  Recorder r;
  std::vector<CounterTrack> counters(1);
  counters[0].name = "depth";
  counters[0].points = {{1000, 1.0}, {2000, 2.0}, {2000, 3.0}, {250000, 0.0}};
  const std::string json = chrome_trace_json(r, counters);
  EXPECT_TRUE(hq::testing::json_well_formed(json)) << json;
  // Extract the "ts" values in emission order and check they never decrease
  // (Perfetto sorts stably, but out-of-order counters render misleadingly).
  std::vector<double> ts;
  std::size_t pos = 0;
  while ((pos = json.find("\"ts\": ", pos)) != std::string::npos) {
    pos += 6;
    ts.push_back(std::stod(json.substr(pos)));
  }
  ASSERT_EQ(ts.size(), 4u);
  EXPECT_TRUE(std::is_sorted(ts.begin(), ts.end())) << json;
}

TEST(ChromeTraceCounterTest, EscapesQuotesAndBackslashesInTrackNames) {
  Recorder r;
  std::vector<CounterTrack> counters(1);
  counters[0].name = "weird\"name\\track";
  counters[0].points = {{0, 1.0}};
  const std::string json = chrome_trace_json(r, counters);
  EXPECT_TRUE(hq::testing::json_well_formed(json)) << json;
  EXPECT_NE(json.find("weird\\\"name\\\\track"), std::string::npos);
}

// --------------------------------------------------------------- digest

TEST(DigestTest, IdenticalRecordersAgree) {
  Recorder a, b;
  for (Recorder* r : {&a, &b}) {
    r->add(make_span(0, 1, SpanKind::MemcpyHtoD, 0, 100, "in"));
    r->add(make_span(1, 1, SpanKind::Kernel, 100, 300, "k"));
  }
  EXPECT_EQ(digest(a), digest(b));
  EXPECT_NE(digest(a), digest(Recorder{}));
}

TEST(DigestTest, RecordingOrderMatters) {
  Recorder a, b;
  const Span s1 = make_span(0, 0, SpanKind::Kernel, 0, 10, "x");
  const Span s2 = make_span(1, 0, SpanKind::Kernel, 0, 10, "y");
  a.add(s1);
  a.add(s2);
  b.add(s2);
  b.add(s1);
  EXPECT_NE(digest(a), digest(b));
}

TEST(DigestTest, EveryFieldIsSignificant) {
  const Span base = make_span(2, 3, SpanKind::MemcpyDtoH, 50, 90, "out");
  Recorder ref;
  ref.add(base);
  const std::uint64_t ref_digest = digest(ref);

  const auto digest_with = [&base](auto mutate) {
    Span s = base;
    mutate(s);
    Recorder r;
    r.add(s);
    return digest(r);
  };
  EXPECT_NE(digest_with([](Span& s) { s.lane = 9; }), ref_digest);
  EXPECT_NE(digest_with([](Span& s) { s.app_id = 9; }), ref_digest);
  EXPECT_NE(digest_with([](Span& s) { s.kind = SpanKind::Kernel; }),
            ref_digest);
  EXPECT_NE(digest_with([](Span& s) { s.name = "oops"; }), ref_digest);
  EXPECT_NE(digest_with([](Span& s) { s.begin = 51; }), ref_digest);
  EXPECT_NE(digest_with([](Span& s) { s.end = 91; }), ref_digest);
}

TEST(DigestTest, StableAcrossProcessRuns) {
  // Pinned constant: the digest is part of the determinism contract, so a
  // change to the hash or the span encoding must be deliberate and visible.
  Recorder r;
  r.add(make_span(0, 0, SpanKind::MemcpyHtoD, 0, 64, "in"));
  r.add(make_span(0, 0, SpanKind::Kernel, 64, 128, "k"));
  r.add(make_span(0, 0, SpanKind::MemcpyDtoH, 128, 160, "out"));
  EXPECT_EQ(digest(r), 0x7dae9fc389d8afbdULL);
}

}  // namespace
}  // namespace hq::trace
