// Fleet observability exports (library hq_fleet): the glue between a
// finished FleetResult and the obs/trace export writers.
//
//   * build_fleet_rollup: per-device TelemetryObserver registries +
//     fleet-scope metrics -> obs::FleetRollup (device-labeled Prometheus
//     series, versioned fleet metrics JSON, merged fleet registry);
//   * write_fleet_chrome_trace: multi-device Chrome trace — one process
//     lane (pid) per device with its span recorder and counter tracks,
//     plus flow arrows connecting requeue/steal hops between lanes;
//   * fleet snapshots ("hqtop"): periodic fleet state reconstructed
//     POST-HOC from the event-driven series at a fixed virtual-clock
//     interval, one JSON object per line. Because nothing is scheduled
//     during the run, snapshotting is zero-perturbation by construction —
//     the FleetReport bytes and digests are identical with or without it.
//
// Every export is byte-identical across runs and --jobs counts for a given
// configuration (the repository determinism contract).
#pragma once

#include <iosfwd>
#include <string>

#include "fleet/fleet.hpp"
#include "obs/rollup.hpp"

namespace hq::fleet {

/// Bump when the snapshot JSONL line layout changes shape.
inline constexpr int kFleetSnapshotSchemaVersion = 1;

/// One device's state at a snapshot instant, read back from its series.
struct DeviceSnapshot {
  int device = -1;
  double queue_depth = 0;
  double inflight = 0;
  double completed = 0;
  /// 0 closed, 1 open, 2 half-open; 0 when the breaker is disabled.
  double breaker_state = 0;
};

/// Fleet state at one virtual-clock instant.
struct FleetSnapshot {
  TimeNs t = 0;
  std::vector<DeviceSnapshot> devices;
};

/// The run header for the fleet metrics JSON.
obs::FleetInfo fleet_info_of(const FleetResult& result);

/// Assembles the rollup: every device's registry under its id and spec
/// name, plus a copy of the run's fleet-scope metrics. Requires
/// base.collect_metrics (throws hq::Error otherwise).
obs::FleetRollup build_fleet_rollup(const FleetResult& result);

/// Versioned fleet metrics JSON for the run (see obs/rollup.hpp).
void write_fleet_metrics_json(std::ostream& os, const FleetResult& result);
std::string fleet_metrics_json(const FleetResult& result);

/// Prometheus text exposition with device="<id>" labels.
void write_fleet_prometheus(std::ostream& os, const FleetResult& result);
std::string fleet_prometheus_text(const FleetResult& result);

/// Multi-device Chrome trace: one pid per device (spans + queue-depth /
/// inflight / power counter tracks), flow arrows for requeue/steal hops.
void write_fleet_chrome_trace(std::ostream& os, const FleetResult& result);
std::string fleet_chrome_trace_json(const FleetResult& result);

/// Snapshots at t = 0, interval, 2*interval, ... plus a final snapshot
/// clamped to the run's total_time. `interval` must be > 0; requires
/// base.collect_metrics.
std::vector<FleetSnapshot> sample_fleet_snapshots(const FleetResult& result,
                                                  DurationNs interval);

/// One JSON object per line:
/// {"schema_version":1,"t_ns":T,"devices":[{"device":0,...},...]}.
void write_fleet_snapshots_jsonl(std::ostream& os, const FleetResult& result,
                                 DurationNs interval);
std::string fleet_snapshots_jsonl(const FleetResult& result,
                                  DurationNs interval);

}  // namespace hq::fleet
