// Scenario: a 3-device fleet loses a device mid-run. A per-device fault
// plan crashes device 0 at time T; the fleet fails its queued and running
// jobs over to the two survivors. Sweeping T across the serving window
// shows goodput degrading in proportion to how long the fleet runs
// one device short — crash early and a third of the capacity is gone for
// nearly the whole run; crash late and almost nothing is lost. Every run
// conserves jobs exactly: arrived == completed + shed + failover-exhausted.
#include <cstdio>
#include <string>

#include "common/table.hpp"
#include "fault/fault.hpp"
#include "fleet/fleet.hpp"
#include "fleet/report.hpp"
#include "rodinia/registry.hpp"

int main() {
  using namespace hq;

  fleet::FleetConfig base;
  base.base.window = 20 * kMillisecond;
  base.base.mean_interarrival = 60 * kMicrosecond;  // ~saturates 3 devices
  base.base.num_streams = 4;
  base.base.max_inflight = 2;
  base.base.deadline = 4 * kMillisecond;
  rodinia::AppParams small = {256, 4, 1};
  base.base.classes = {{rodinia::make_app("needle", small), 0}};
  base.base.collect_metrics = false;
  base.resize_homogeneous(3);
  base.placement = fleet::PlacementPolicy::LeastLoaded;
  base.failover_budget = 2;

  TextTable table;
  table.set_header({"crash at", "arrived", "completed", "failed over",
                    "exhausted", "goodput/s", "energy (J)"});
  for (const TimeNs crash_at :
       {TimeNs{0}, 4 * kMillisecond, 8 * kMillisecond, 12 * kMillisecond,
        16 * kMillisecond}) {
    auto config = base;
    if (crash_at > 0) {
      fault::FaultPlan crash = fault::FaultPlan::zero();
      crash.crash_at = crash_at;
      config.device_fault_plans = {crash, fault::FaultPlan{},
                                   fault::FaultPlan{}};
    }
    const auto report = fleet::FleetService(config).run().report;
    table.add_row(
        {crash_at == 0 ? "never"
                       : format_duration(static_cast<DurationNs>(crash_at)),
         std::to_string(report.arrived), std::to_string(report.completed),
         std::to_string(report.failed_over),
         std::to_string(report.shed_failover_exhausted),
         format_fixed(report.goodput_per_sec, 0),
         format_fixed(report.energy, 2)});
  }
  std::printf("fleet failover: 3 devices, least-loaded placement, device 0\n"
              "crashes at T; queued and running jobs fail over to the two\n"
              "survivors (budget 2 hops)\n\n%s\n",
              table.render().c_str());
  std::printf("the earlier the crash, the longer the fleet runs at 2/3\n"
              "capacity and the lower its goodput; in-flight failover keeps\n"
              "every displaced job accounted — nothing is silently lost.\n");
  return 0;
}
