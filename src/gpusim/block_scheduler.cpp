#include "gpusim/block_scheduler.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "gpusim/observer.hpp"

namespace hq::gpu {

BlockScheduler::BlockScheduler(
    sim::Simulator& sim, const DeviceSpec& spec,
    std::function<void()> pre_state_change,
    std::function<void(const KernelExec&)> on_kernel_complete)
    : sim_(sim),
      spec_(spec),
      pre_state_change_(std::move(pre_state_change)),
      on_kernel_complete_(std::move(on_kernel_complete)) {
  HQ_CHECK(pre_state_change_ != nullptr);
  HQ_CHECK(on_kernel_complete_ != nullptr);
  smxs_.reserve(static_cast<std::size_t>(spec_.num_smx));
  for (int i = 0; i < spec_.num_smx; ++i) {
    smxs_.emplace_back(spec_, i);
  }
}

void BlockScheduler::update_occupancy_cache() {
  // The exact division the accessor used to perform on every call; caching
  // it on mutation keeps the returned double bit-identical while turning
  // the hundreds of millions of occupancy reads per sweep into loads.
  occupancy_cache_ = static_cast<double>(resident_threads_) /
                     static_cast<double>(spec_.max_resident_threads());
}

void BlockScheduler::dispatch(std::unique_ptr<KernelExec> exec) {
  HQ_CHECK(exec != nullptr);
  const KernelLaunch& l = exec->launch;
  exec->demand = BlockDemand{
      static_cast<int>(l.block.count()),
      l.regs_per_thread * static_cast<std::uint32_t>(l.block.count()),
      l.smem_per_block};
  // The runtime validates launch configurations; these are hard invariants
  // by the time a kernel reaches the hardware model.
  HQ_CHECK_MSG(l.grid.count() >= 1, "kernel '" << l.name << "' has empty grid");
  HQ_CHECK_MSG(exec->demand.threads <= spec_.max_threads_per_block,
               "kernel '" << l.name << "' exceeds threads-per-block limit");
  HQ_CHECK(exec->demand.threads <= spec_.max_threads_per_smx);
  HQ_CHECK(exec->demand.registers <= spec_.registers_per_smx);
  HQ_CHECK(exec->demand.shared_mem <= spec_.shared_mem_per_smx);

  exec->blocks_total = l.grid.count();
  exec->blocks_to_place = exec->blocks_total;
  exec->blocks_outstanding = 0;
  exec->dispatch_time = sim_.now();

  KernelExec* raw = exec.get();
  owned_.push_back(std::move(exec));
  ++in_flight_;
  if (observer_ != nullptr) {
    observer_->on_kernel_dispatched(sim_.now(), raw->op_id, raw->priority,
                                    raw->blocks_total, raw->demand);
  }
  // Insert in (priority, dispatch order): a higher-priority (numerically
  // lower) kernel places its remaining blocks ahead of waiting
  // lower-priority kernels, but never preempts blocks already resident.
  auto pos = pending_.end();
  while (pos != pending_.begin() && (*(pos - 1))->priority > raw->priority) {
    --pos;
  }
  pending_.insert(pos, raw);
  pump();
}

void BlockScheduler::pump(int released_smx) {
  if (pumping_) {
    repump_ = true;
    return;
  }
  // Blocked-head fast path. place_blocks only ever leaves a head waiting
  // when every SMX fit has reached zero, occupies are head-gated by the
  // LEFTOVER rule while a head waits, and every release re-enters here with
  // its SMX as the hint — so for a known-blocked head, the hinted SMX is
  // the only one whose fit can have moved. One fit_count therefore decides
  // the whole rescan: zero means the scan would have been a side-effect-free
  // no-op (skip it), and a positive fit means the head fits *only* there,
  // which the scan-free placement below reproduces exactly. This turns the
  // saturated-device steady state (one completion per resident block) from
  // a full placement scan per completion into a single division chain.
  int known_smx = -1;
  int known_fit = 0;
  if (released_smx >= 0 && !fault_skip_head_ && !pending_.empty() &&
      pending_.front() == blocked_head_) {
    known_fit = smxs_[static_cast<std::size_t>(released_smx)].fit_count(
        blocked_head_->demand);
    if (known_fit == 0) return;  // still nowhere to place: rescan is a no-op
    known_smx = released_smx;
  }
  pumping_ = true;
  do {
    repump_ = false;
    while (!pending_.empty()) {
      if (fault_skip_head_ && pending_.size() >= 2) {
        std::swap(pending_[0], pending_[1]);  // deliberate LEFTOVER violation
      }
      KernelExec* head = pending_.front();
      blocked_head_ = nullptr;
      place_blocks(*head, known_smx, known_fit);
      known_smx = -1;  // the hint describes pre-placement state only
      known_fit = 0;
      if (head->fully_placed()) {
        // LEFTOVER: only once the oldest kernel has all blocks assigned may
        // the next kernel's blocks fill the remaining capacity.
        pending_.pop_front();
        continue;
      }
      // place_blocks exited with blocks left exactly because every SMX fit
      // is zero now — remember that so the next release can pump cheaply.
      blocked_head_ = head;
      break;  // strict dispatch order: never skip past a waiting kernel
    }
  } while (repump_);
  pumping_ = false;
}

std::uint64_t BlockScheduler::place_blocks(KernelExec& exec, int known_smx,
                                           int known_fit) {
  if (known_smx >= 0) {
    // The caller proved every other SMX fit is zero and known_fit > 0, so
    // the scan's pick is predetermined and a single placement exhausts
    // either the kernel's unplaced blocks or the device — exactly where the
    // scanning loop below would stop.
    return place_on(exec, known_smx, known_fit);
  }
  std::uint64_t placed_total = 0;
  // One fit scan serves the whole call: a chosen SMX is always occupied with
  // its full fit (or the loop ends because the kernel ran out of blocks), so
  // its residual fit is exactly zero and every other SMX is untouched — the
  // cached entries stay valid without rescanning. Pick order is identical to
  // the old rescan loop: strict greater-than, lowest index wins ties.
  fit_scratch_.resize(smxs_.size());
  for (std::size_t i = 0; i < smxs_.size(); ++i) {
    fit_scratch_[i] = smxs_[i].fit_count(exec.demand);
  }
  while (exec.blocks_to_place > 0) {
    // Pick the SMX with the most free capacity for this demand (spreads
    // blocks across SMXs the way the hardware distributor does).
    int best = -1;
    int best_fit = 0;
    for (std::size_t i = 0; i < fit_scratch_.size(); ++i) {
      if (fit_scratch_[i] > best_fit) {
        best_fit = fit_scratch_[i];
        best = static_cast<int>(i);
      }
    }
    if (best < 0) break;
    fit_scratch_[static_cast<std::size_t>(best)] = 0;
    placed_total += place_on(exec, best, best_fit);
  }
  return placed_total;
}

std::uint64_t BlockScheduler::place_on(KernelExec& exec, int smx, int fit) {
  const int n = static_cast<int>(std::min<std::uint64_t>(
      exec.blocks_to_place, static_cast<std::uint64_t>(fit)));
  // Memory-contention model: blocks placed into a busier device run
  // slower; evaluated before this batch occupies its resources.
  const double occupancy_before = thread_occupancy();
  const auto duration = static_cast<DurationNs>(
      static_cast<double>(exec.launch.block_duration) *
      (1.0 + exec.launch.contention_sensitivity * occupancy_before));

  pre_state_change_();
  smxs_[static_cast<std::size_t>(smx)].occupy(exec.demand, n);
  resident_blocks_ += n;
  resident_threads_ += exec.demand.threads * n;
  update_occupancy_cache();
  if (observer_ != nullptr) {
    observer_->on_blocks_placed(sim_.now(), exec.op_id, smx, n, exec.demand);
  }

  // A "wave" is a distinct placement instant; batches placed onto several
  // SMXs at the same virtual time belong to one wave.
  if (exec.waves == 0) {
    exec.first_block_time = sim_.now();
    exec.waves = 1;
  } else if (sim_.now() != exec.last_place_time) {
    ++exec.waves;
  }
  exec.last_place_time = sim_.now();
  exec.blocks_to_place -= static_cast<std::uint64_t>(n);
  exec.blocks_outstanding += static_cast<std::uint64_t>(n);

  KernelExec* raw = &exec;
  sim_.schedule(duration,
                [this, raw, smx, n] { on_blocks_complete(raw, smx, n); });
  return static_cast<std::uint64_t>(n);
}

void BlockScheduler::on_blocks_complete(KernelExec* exec, int smx_index,
                                        int count) {
  pre_state_change_();
  smxs_[static_cast<std::size_t>(smx_index)].release(exec->demand, count);
  resident_blocks_ -= count;
  resident_threads_ -= exec->demand.threads * count;
  update_occupancy_cache();
  HQ_CHECK(exec->blocks_outstanding >= static_cast<std::uint64_t>(count));
  exec->blocks_outstanding -= static_cast<std::uint64_t>(count);
  if (observer_ != nullptr) {
    observer_->on_blocks_released(sim_.now(), exec->op_id, smx_index, count,
                                  exec->demand);
  }

  if (exec->complete()) {
    exec->complete_time = sim_.now();
    if (exec->launch.payload) exec->launch.payload();
    --in_flight_;
    on_kernel_complete_(*exec);
    auto it = std::find_if(
        owned_.begin(), owned_.end(),
        [exec](const std::unique_ptr<KernelExec>& p) { return p.get() == exec; });
    HQ_CHECK(it != owned_.end());
    owned_.erase(it);
  }
  pump(smx_index);
}

}  // namespace hq::gpu
