// Application registry: the ported Rodinia benchmarks (paper Table I) as
// harness workload factories, plus the Table III kernel-configuration data.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "hyperq/harness.hpp"
#include "hyperq/schedule.hpp"

namespace hq::rodinia {

/// Unified parameter overrides; unset fields use the paper's Table III
/// configuration (gaussian/needle/srad at 512, nn at 42764 records).
struct AppParams {
  /// gaussian/needle: matrix dimension; srad: image side; nn: record count.
  std::optional<int> size;
  /// srad only: diffusion iterations.
  std::optional<int> iterations;
  std::optional<std::uint64_t> seed;
};

/// Names of the ported applications: gaussian, nn, needle, srad (Table I).
const std::vector<std::string>& app_names();

/// True if `name` is a known application.
bool is_app_name(const std::string& name);

/// Builds a workload item for the named application. Throws on unknown
/// names. The factory creates a fresh instance per call, so items can be
/// reused across harness runs.
fw::WorkloadItem make_app(const std::string& name, const AppParams& params = {});

/// Expands a schedule (from fw::make_schedule) over concrete application
/// types into an ordered workload. `type_names[t]` and `params[t]`
/// correspond to schedule slot type t.
std::vector<fw::WorkloadItem> build_workload(
    const std::vector<fw::Slot>& schedule,
    const std::vector<std::string>& type_names,
    const std::vector<AppParams>& params);

/// One row of the paper's Table III.
struct KernelConfigRow {
  std::string application;
  std::string kernel;
  std::string data_dim;
  int calls = 0;
  std::string grid_dim;
  std::string block_dim;
  int thread_blocks = 0;      ///< per call (largest grid for varying calls)
  int threads_per_block = 0;
};

/// Table III for the paper's default configuration.
std::vector<KernelConfigRow> kernel_config_rows();

}  // namespace hq::rodinia
