// Pinned trace digests for every heterogeneous application pair at the
// paper's full concurrency point (NA = NS = 32), with and without the
// memory-sync transfer mode. One constant per (pair, mode); any change to
// application op streams, device timing, or schedule expansion moves at
// least one of them. Update the table only for intentional model changes
// (and say so in the commit message).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "bench/common.hpp"
#include "trace/trace.hpp"

namespace hq {
namespace {

struct GoldenPair {
  const char* x;
  const char* y;
  std::uint64_t default_digest;
  std::uint64_t memsync_digest;
};

// NA=NS=32, NaiveFifo, seed 42, timing config — the bench::run_pair recipe.
constexpr GoldenPair kGolden[] = {
    {"gaussian", "nn", 0x33946b992e936468ULL, 0x01698b9bea03da5eULL},
    {"gaussian", "needle", 0xab8e3d89e059dab0ULL, 0x33c2201895dca60cULL},
    {"gaussian", "srad", 0xb9002409b18c5af6ULL, 0x67e0c6c5040fb398ULL},
    {"nn", "needle", 0xd8ee0dbb27553fc0ULL, 0xc9e8663a16f64c23ULL},
    {"nn", "srad", 0x1758d88002996a1fULL, 0x43a48f5f67982ab8ULL},
    {"needle", "srad", 0x34b0f4e33d596379ULL, 0x3f080a982f6eb060ULL},
};

std::uint64_t digest_for(const bench::Pair& pair, bool memory_sync,
                         bool collect_telemetry = false) {
  const auto result =
      bench::run_pair(pair, 32, 32, fw::Order::NaiveFifo, memory_sync,
                      /*chunk_bytes=*/0, /*shuffle_seed=*/42,
                      /*device=*/nullptr, collect_telemetry);
  return trace::digest(*result.trace);
}

TEST(GoldenPairDigestsTest, AllSixPairsDefaultMode) {
  for (const GoldenPair& g : kGolden) {
    EXPECT_EQ(digest_for({g.x, g.y}, false), g.default_digest)
        << "{" << g.x << ", " << g.y << "} default";
  }
}

TEST(GoldenPairDigestsTest, AllSixPairsMemorySyncMode) {
  for (const GoldenPair& g : kGolden) {
    EXPECT_EQ(digest_for({g.x, g.y}, true), g.memsync_digest)
        << "{" << g.x << ", " << g.y << "} memsync";
  }
}

TEST(GoldenPairDigestsTest, TelemetryObserverIsZeroPerturbation) {
  // The hq_obs telemetry observer is passive: attaching it must leave every
  // pinned digest bit-identical, in both transfer modes. This is the
  // zero-perturbation contract of src/obs/telemetry.hpp, proven against the
  // same constants the perturbation-free runs are pinned to.
  for (const GoldenPair& g : kGolden) {
    EXPECT_EQ(digest_for({g.x, g.y}, false, /*collect_telemetry=*/true),
              g.default_digest)
        << "{" << g.x << ", " << g.y << "} default + telemetry";
    EXPECT_EQ(digest_for({g.x, g.y}, true, /*collect_telemetry=*/true),
              g.memsync_digest)
        << "{" << g.x << ", " << g.y << "} memsync + telemetry";
  }
}

TEST(GoldenPairDigestsTest, FaultInjectorZeroRateIsZeroPerturbation) {
  // Attaching the fault injector with an enabled all-zero-rate plan must
  // leave every pinned digest bit-identical: a zero-rate plan never draws
  // and never emits, so the device sees exactly the fault-free event
  // sequence. This is the zero-perturbation contract of src/fault/fault.hpp.
  const fault::FaultPlan zero = fault::FaultPlan::zero();
  for (const GoldenPair& g : kGolden) {
    const auto default_run =
        bench::run_pair({g.x, g.y}, 32, 32, fw::Order::NaiveFifo, false,
                        /*chunk_bytes=*/0, /*shuffle_seed=*/42,
                        /*device=*/nullptr, /*collect_telemetry=*/false, &zero);
    EXPECT_EQ(trace::digest(*default_run.trace), g.default_digest)
        << "{" << g.x << ", " << g.y << "} default + zero-rate injector";
    EXPECT_EQ(default_run.degraded.stats.total(), 0u);
    const auto memsync_run =
        bench::run_pair({g.x, g.y}, 32, 32, fw::Order::NaiveFifo, true,
                        /*chunk_bytes=*/0, /*shuffle_seed=*/42,
                        /*device=*/nullptr, /*collect_telemetry=*/false, &zero);
    EXPECT_EQ(trace::digest(*memsync_run.trace), g.memsync_digest)
        << "{" << g.x << ", " << g.y << "} memsync + zero-rate injector";
    EXPECT_EQ(memsync_run.degraded.stats.total(), 0u);
  }
}

TEST(GoldenPairDigestsTest, ModesAndPairsAreDistinguishable) {
  // The 12 golden digests must be pairwise distinct: if two scenarios ever
  // hash alike, the digest has stopped discriminating and the table above
  // is no longer a meaningful fingerprint.
  std::vector<std::uint64_t> all;
  for (const GoldenPair& g : kGolden) {
    all.push_back(g.default_digest);
    all.push_back(g.memsync_digest);
  }
  std::sort(all.begin(), all.end());
  EXPECT_TRUE(std::adjacent_find(all.begin(), all.end()) == all.end())
      << "duplicate golden digest";
}

}  // namespace
}  // namespace hq
