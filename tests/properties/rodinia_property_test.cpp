// Parameterized functional sweeps: every ported application verifies against
// its independent reference across a matrix of problem sizes and seeds, run
// end-to-end through the framework (allocation, transfers, kernels,
// read-back) in both serialized and concurrent configurations.
#include <gtest/gtest.h>

#include <tuple>

#include "hyperq/harness.hpp"
#include "rodinia/registry.hpp"

namespace hq::rodinia {
namespace {

struct FunctionalCase {
  const char* app;
  int size;
  std::uint64_t seed;
};

class RodiniaFunctional : public ::testing::TestWithParam<FunctionalCase> {};

TEST_P(RodiniaFunctional, VerifiesSerialized) {
  const FunctionalCase c = GetParam();
  fw::HarnessConfig config;
  config.functional = true;
  config.num_streams = 1;
  config.monitor_power = false;

  AppParams params;
  params.size = c.size;
  params.seed = c.seed;
  if (std::string(c.app) == "srad") params.iterations = 3;

  fw::Harness harness(config);
  const auto result = harness.run({make_app(c.app, params)});
  EXPECT_TRUE(result.all_verified) << c.app << " size=" << c.size;
}

TEST_P(RodiniaFunctional, VerifiesConcurrentWithSelf) {
  // Two instances of the same app running concurrently must both verify:
  // no cross-instance state leaks through the device model.
  const FunctionalCase c = GetParam();
  fw::HarnessConfig config;
  config.functional = true;
  config.num_streams = 2;
  config.monitor_power = false;

  AppParams a = {c.size, std::nullopt, c.seed};
  AppParams b = {c.size, std::nullopt, c.seed + 17};
  if (std::string(c.app) == "srad") {
    a.iterations = 2;
    b.iterations = 2;
  }
  fw::Harness harness(config);
  const auto result = harness.run({make_app(c.app, a), make_app(c.app, b)});
  EXPECT_TRUE(result.all_verified) << c.app << " size=" << c.size;
}

INSTANTIATE_TEST_SUITE_P(
    SizeSeedSweep, RodiniaFunctional,
    ::testing::Values(FunctionalCase{"gaussian", 16, 1},
                      FunctionalCase{"gaussian", 40, 2},
                      FunctionalCase{"gaussian", 96, 3},
                      FunctionalCase{"nn", 128, 4},
                      FunctionalCase{"nn", 1001, 5},
                      FunctionalCase{"nn", 4096, 6},
                      FunctionalCase{"needle", 32, 7},
                      FunctionalCase{"needle", 64, 8},
                      FunctionalCase{"needle", 160, 9},
                      FunctionalCase{"srad", 16, 10},
                      FunctionalCase{"srad", 32, 11},
                      FunctionalCase{"srad", 64, 12}),
    [](const auto& param_info) {
      return std::string(param_info.param.app) + "_" +
             std::to_string(param_info.param.size);
    });

class MixedFunctional : public ::testing::TestWithParam<bool> {};

TEST_P(MixedFunctional, HeterogeneousConcurrentWorkloadVerifies) {
  // All four applications concurrently, with and without memory sync: the
  // full paper scenario at miniature scale, functionally checked.
  const bool memory_sync = GetParam();
  fw::HarnessConfig config;
  config.functional = true;
  config.num_streams = 4;
  config.memory_sync = memory_sync;
  config.monitor_power = false;

  AppParams small_square = {32, 2, 21};
  AppParams nn_params = {500, std::nullopt, 22};
  fw::Harness harness(config);
  const auto result = harness.run({
      make_app("gaussian", small_square),
      make_app("nn", nn_params),
      make_app("needle", small_square),
      make_app("srad", small_square),
  });
  EXPECT_TRUE(result.all_verified);
  EXPECT_EQ(result.apps.size(), 4u);
}

INSTANTIATE_TEST_SUITE_P(SyncModes, MixedFunctional, ::testing::Bool(),
                         [](const auto& param_info) {
                           return param_info.param ? "memsync" : "default";
                         });

}  // namespace
}  // namespace hq::rodinia
