# Empty dependencies file for hq_cli.
# This may be replaced when dependencies are built.
