#include "check/fuzzer.hpp"

#include <algorithm>
#include <iterator>
#include <optional>
#include <sstream>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "common/units.hpp"
#include "exec/parallel.hpp"
#include "fleet/telemetry.hpp"
#include "serve/report.hpp"
#include "serve/streaming.hpp"
#include "trace/trace.hpp"

namespace hq::check {

namespace {

int pick(Rng& rng, std::initializer_list<int> choices) {
  const auto* begin = choices.begin();
  return begin[rng.next_below(choices.size())];
}

/// Sizes proven safe (and fast) by the per-application property tests; the
/// same matrix serves functional and timing cases.
rodinia::AppParams pick_params(const std::string& name, Rng& rng) {
  rodinia::AppParams p;
  if (name == "gaussian") {
    p.size = pick(rng, {16, 40, 96});
  } else if (name == "nn") {
    p.size = pick(rng, {128, 1001, 4096});
  } else if (name == "needle") {
    p.size = pick(rng, {32, 64, 160});
  } else if (name == "srad") {
    p.size = pick(rng, {16, 32, 64});
    p.iterations = pick(rng, {2, 3});
  } else if (name == "hotspot") {
    p.size = pick(rng, {16, 32, 48});
    p.iterations = pick(rng, {2, 5});
  } else if (name == "lud") {
    p.size = pick(rng, {16, 48, 96});
  } else if (name == "pathfinder") {
    p.size = pick(rng, {64, 513, 2000});   // cols
    p.iterations = pick(rng, {10, 40});    // rows
  } else {
    HQ_CHECK_MSG(false, "fuzzer has no parameter table for '" << name << "'");
  }
  p.seed = rng.next_u64();
  return p;
}

}  // namespace

FuzzCase generate_case(std::uint64_t case_seed) {
  Rng rng(case_seed);
  FuzzCase c;
  c.seed = case_seed;

  const auto& names = rodinia::app_names();
  const std::size_t num_types = 1 + rng.next_below(2);
  std::vector<std::size_t> picked;
  while (picked.size() < num_types) {
    const std::size_t i = rng.next_below(names.size());
    if (std::find(picked.begin(), picked.end(), i) == picked.end()) {
      picked.push_back(i);
    }
  }
  for (const std::size_t i : picked) {
    c.type_names.push_back(names[i]);
    c.params.push_back(pick_params(names[i], rng));
  }

  // 2..6 instances total, at least one per type.
  const std::size_t total = 2 + rng.next_below(5);
  c.counts.assign(c.type_names.size(), 1);
  for (std::size_t extra = total > c.counts.size() ? total - c.counts.size() : 0;
       extra > 0; --extra) {
    ++c.counts[rng.next_below(c.counts.size())];
  }

  c.order = fw::kAllOrders[rng.next_below(std::size(fw::kAllOrders))];
  c.slots = fw::make_schedule(c.order, c.counts, &rng);

  fw::HarnessConfig cfg;
  cfg.num_streams = pick(rng, {1, 2, 3, 4, 8, 32});
  cfg.memory_sync = rng.next_below(2) == 0;
  cfg.blocking_transfers = rng.next_below(4) != 0;
  const Bytes chunks[] = {0, 0, 64 * kKiB, kMiB};
  cfg.transfer_chunk_bytes = chunks[rng.next_below(std::size(chunks))];
  const DurationNs staggers[] = {0, 10 * kMicrosecond, 100 * kMicrosecond};
  cfg.launch_stagger = staggers[rng.next_below(std::size(staggers))];
  cfg.functional = rng.next_below(100) < 35;
  cfg.monitor_power = rng.next_below(4) == 0;
  cfg.check_invariants = true;
  c.config = cfg;
  return c;
}

std::string FuzzCase::summary() const {
  std::ostringstream os;
  os << "seed=" << seed << " apps=";
  for (std::size_t t = 0; t < type_names.size(); ++t) {
    if (t > 0) os << "+";
    os << type_names[t] << "x" << counts[t];
  }
  os << " order=" << fw::order_name(order) << " ns=" << config.num_streams
     << " memsync=" << config.memory_sync
     << " blocking=" << config.blocking_transfers
     << " chunk=" << config.transfer_chunk_bytes
     << " stagger=" << config.launch_stagger
     << " functional=" << config.functional
     << " power=" << config.monitor_power;
  return os.str();
}

ServeFuzzCase generate_serve_case(std::uint64_t case_seed) {
  Rng rng(case_seed);
  ServeFuzzCase c;
  c.seed = case_seed;
  serve::ServiceConfig& cfg = c.config;

  const auto& names = rodinia::app_names();
  const std::size_t num_classes = 1 + rng.next_below(2);
  std::vector<std::size_t> picked;
  while (picked.size() < num_classes) {
    const std::size_t i = rng.next_below(names.size());
    if (std::find(picked.begin(), picked.end(), i) == picked.end()) {
      picked.push_back(i);
    }
  }
  for (const std::size_t i : picked) {
    const rodinia::AppParams params = pick_params(names[i], rng);
    cfg.classes.push_back({rodinia::make_app(names[i], params),
                           static_cast<int>(rng.next_below(3))});
  }

  cfg.window = static_cast<DurationNs>(pick(rng, {4, 6, 8})) * kMillisecond;
  cfg.mean_interarrival =
      static_cast<DurationNs>(pick(rng, {150, 300, 600})) * kMicrosecond;
  cfg.num_streams = pick(rng, {2, 4, 8});
  cfg.max_inflight = static_cast<std::size_t>(pick(rng, {2, 3, 4}));
  cfg.queue_cap = cfg.max_inflight + static_cast<std::size_t>(pick(rng, {2, 4, 8}));
  const serve::ShedPolicy policies[] = {serve::ShedPolicy::DropTail,
                                        serve::ShedPolicy::DeadlineAware,
                                        serve::ShedPolicy::Priority};
  cfg.shed_policy = policies[rng.next_below(std::size(policies))];
  const DurationNs deadlines[] = {0, kMillisecond, 3 * kMillisecond};
  cfg.deadline = deadlines[rng.next_below(std::size(deadlines))];
  cfg.seed = rng.next_u64();
  cfg.collect_metrics = false;  // oracle runs only consume the report
  return c;
}

std::string ServeFuzzCase::summary() const {
  std::ostringstream os;
  os << "serve seed=" << seed << " classes=";
  for (std::size_t i = 0; i < config.classes.size(); ++i) {
    if (i > 0) os << "+";
    os << config.classes[i].item.type_name << "(p"
       << config.classes[i].priority << ")";
  }
  os << " ns=" << config.num_streams << " window=" << config.window
     << " gap=" << config.mean_interarrival << " cap=" << config.queue_cap
     << " inflight=" << config.max_inflight
     << " policy=" << serve::shed_policy_name(config.shed_policy)
     << " deadline=" << config.deadline;
  return os.str();
}

FleetFuzzCase generate_fleet_case(std::uint64_t case_seed) {
  FleetFuzzCase c;
  c.seed = case_seed;
  c.config.base = generate_serve_case(case_seed).config;
  // Fleet knobs draw from their own stream so they stay reproducible and
  // never perturb which serve config a case seed maps to.
  Rng rng(case_seed ^ 0xc2b2ae3d27d4eb4fULL);
  fleet::FleetConfig& cfg = c.config;

  const std::size_t n = 1 + rng.next_below(3);
  const bool heterogeneous = n > 1 && rng.next_below(3) == 0;
  cfg.devices.assign(n, cfg.base.device);
  if (heterogeneous) {
    for (std::size_t d = 1; d < n; d += 2) {
      cfg.devices[d] = gpu::DeviceSpec::single_copy_engine();
    }
  }
  const auto& policies = fleet::all_placement_policies();
  cfg.placement = policies[rng.next_below(policies.size())];
  cfg.copy_penalty = rng.next_below(2) == 0 ? 2.0 : 0.5;
  cfg.work_stealing = rng.next_below(2) == 0;
  cfg.device_breaker_enabled = rng.next_below(3) == 0;
  cfg.device_breaker.failure_threshold = 2;
  cfg.device_breaker.cooldown = 2 * kMillisecond;
  return c;
}

std::string FleetFuzzCase::summary() const {
  std::ostringstream os;
  os << "fleet seed=" << seed << " n=" << config.num_devices()
     << " placement=" << fleet::placement_policy_name(config.placement)
     << " steal=" << config.work_stealing
     << " device-breaker=" << config.device_breaker_enabled << " classes=";
  for (std::size_t i = 0; i < config.base.classes.size(); ++i) {
    if (i > 0) os << "+";
    os << config.base.classes[i].item.type_name;
  }
  os << " window=" << config.base.window
     << " gap=" << config.base.mean_interarrival
     << " cap=" << config.base.queue_cap
     << " inflight=" << config.base.max_inflight;
  return os.str();
}

std::vector<std::string> Fuzzer::run_fleet_case(std::uint64_t case_seed,
                                                std::string* summary_out) {
  const FleetFuzzCase c = generate_fleet_case(case_seed);
  if (summary_out != nullptr) *summary_out = c.summary();
  std::vector<std::string> problems;
  const auto fail = [&problems](const std::ostringstream& os) {
    problems.push_back(os.str());
  };

  // A fleet run aborts (hq::Error) on an invariant violation — including
  // per-device serve accounting and the fleet conservation identity checked
  // inside FleetService::run — so every oracle failure carries its seed.
  const auto run_with = [&](const fleet::FleetConfig& cfg, const char* label)
      -> std::optional<fleet::FleetResult> {
    try {
      return fleet::FleetService(cfg).run();
    } catch (const hq::Error& e) {
      std::ostringstream os;
      os << label << ": " << e.what();
      fail(os);
      return std::nullopt;
    }
  };

  // Reported conservation: every arrival lands in exactly one terminal
  // state, and the per-device reports plus the fleet-only shed_no_device
  // reproduce the fleet totals.
  const auto check_conservation = [&](const fleet::FleetReport& r,
                                      const char* label) {
    const std::uint64_t terminal = r.completed_ok + r.completed_late +
                                   r.shed_queue_full + r.shed_breaker +
                                   r.shed_no_device + r.timed_out_queued +
                                   r.quarantined;
    if (r.arrived != terminal) {
      std::ostringstream os;
      os << label << ": fleet accounting leak (arrived " << r.arrived
         << " != terminal states " << terminal << ")";
      fail(os);
    }
    std::uint64_t device_arrived = 0;
    for (const fleet::FleetDeviceStats& dev : r.devices) {
      device_arrived += dev.report.arrived;
    }
    if (device_arrived + r.shed_no_device != r.arrived) {
      std::ostringstream os;
      os << label << ": per-device arrivals " << device_arrived
         << " + shed_no_device " << r.shed_no_device
         << " != fleet arrived " << r.arrived;
      fail(os);
    }
  };

  const auto fleet1 = run_with(c.config, "fleet-run1");
  const auto fleet2 = run_with(c.config, "fleet-run2");
  if (!fleet1 || !fleet2) return problems;

  // --- determinism: identical config => byte-identical fleet report ---------
  if (fleet::fleet_report_json(fleet1->report) !=
      fleet::fleet_report_json(fleet2->report)) {
    std::ostringstream os;
    os << "fleet determinism: reports differ across identical runs (digests "
       << fleet::fleet_report_digest(fleet1->report) << " vs "
       << fleet::fleet_report_digest(fleet2->report) << ")";
    fail(os);
  }
  check_conservation(fleet1->report, "fleet-base");

  // --- observability zero-perturbation ---------------------------------------
  // Attaching the fleet observability plane (per-device telemetry, the job
  // lifecycle tracer, fleet-scope metrics) must leave the report bytes
  // identical, and every export must itself be deterministic across runs.
  fleet::FleetConfig observed_cfg = c.config;
  observed_cfg.base.collect_metrics = true;
  const auto observed1 = run_with(observed_cfg, "fleet-observed1");
  const auto observed2 = run_with(observed_cfg, "fleet-observed2");
  if (observed1 && observed2) {
    if (fleet::fleet_report_json(observed1->report) !=
        fleet::fleet_report_json(fleet1->report)) {
      std::ostringstream os;
      os << "fleet observability perturbation: report changed with "
         << "observers attached (digests "
         << fleet::fleet_report_digest(observed1->report) << " vs "
         << fleet::fleet_report_digest(fleet1->report) << ")";
      fail(os);
    }
    try {
      if (fleet::fleet_metrics_json(*observed1) !=
              fleet::fleet_metrics_json(*observed2) ||
          fleet::fleet_prometheus_text(*observed1) !=
              fleet::fleet_prometheus_text(*observed2) ||
          fleet::fleet_chrome_trace_json(*observed1) !=
              fleet::fleet_chrome_trace_json(*observed2) ||
          fleet::fleet_snapshots_jsonl(*observed1, 500 * kMicrosecond) !=
              fleet::fleet_snapshots_jsonl(*observed2, 500 * kMicrosecond)) {
        std::ostringstream os;
        os << "fleet observability determinism: exports differ across "
           << "identical observed runs";
        fail(os);
      }
    } catch (const hq::Error& e) {
      std::ostringstream os;
      os << "fleet observability export failed: " << e.what();
      fail(os);
    }
  }

  // --- single-device equivalence ---------------------------------------------
  // A 1-device fleet with every fleet-only feature off must emit a device-0
  // report byte-identical to the single-device Service.
  fleet::FleetConfig single;
  single.base = c.config.base;
  const auto single_run = run_with(single, "fleet-single");
  if (single_run) {
    try {
      const serve::ServeResult plain = serve::Service(c.config.base).run();
      const std::string fleet_json =
          serve::report_json(single_run->report.devices[0].report);
      const std::string serve_json = serve::report_json(plain.report);
      if (fleet_json != serve_json) {
        std::ostringstream os;
        os << "fleet equivalence: 1-device fleet report diverges from the "
           << "single-device Service (digests "
           << serve::report_digest(single_run->report.devices[0].report)
           << " vs " << serve::report_digest(plain.report) << ")";
        fail(os);
      }
    } catch (const hq::Error& e) {
      std::ostringstream os;
      os << "fleet equivalence: single-device Service run failed: "
         << e.what();
      fail(os);
    }
  }

  // --- placement permutation safety under injected faults --------------------
  // Every policy must preserve conservation even with a transient fault
  // plan and the device health breaker quarantining/rebalancing devices.
  fleet::FleetConfig faulted = c.config;
  faulted.base.fault_plan = case_fault_plan(case_seed, 0.5);
  faulted.device_breaker_enabled = true;
  faulted.device_breaker.failure_threshold = 2;
  faulted.device_breaker.cooldown = 2 * kMillisecond;
  for (const fleet::PlacementPolicy policy : fleet::all_placement_policies()) {
    faulted.placement = policy;
    std::ostringstream label;
    label << "fleet-faulted-" << fleet::placement_policy_name(policy);
    if (const auto run = run_with(faulted, label.str().c_str())) {
      check_conservation(run->report, label.str().c_str());
    }
  }

  // --- fleet-size monotonicity (flagged, not gating) --------------------------
  // Queueing noise can make a bigger fleet complete marginally less at a
  // fixed load, so a violation flags the case for inspection instead of
  // failing it.
  if (c.config.num_devices() > 1 && single_run && summary_out != nullptr) {
    if (fleet1->report.completed < single_run->report.completed) {
      std::ostringstream os;
      os << *summary_out << " [flag: n=" << c.config.num_devices()
         << " fleet completed " << fleet1->report.completed
         << " < single-device " << single_run->report.completed << "]";
      *summary_out = os.str();
    }
  }

  return problems;
}

std::vector<std::string> Fuzzer::run_fleet_chaos_case(
    std::uint64_t case_seed, double chaos_rate, std::string* summary_out) {
  FleetFuzzCase c = generate_fleet_case(case_seed);
  // Chaos draws from its own stream, so a case seed maps to exactly the
  // fleet config run_fleet_case saw, plus a deterministic lifecycle-fault
  // schedule and failover/hedging knobs layered on top.
  Rng rng(case_seed ^ 0x94d049bb133111ebULL);
  fleet::FleetConfig& cfg = c.config;
  const std::size_t n = cfg.num_devices();
  const DurationNs window = cfg.base.window;

  cfg.device_fault_plans.assign(n, fault::FaultPlan{});
  std::size_t chaotic = 0;
  for (std::size_t d = 0; d < n; ++d) {
    // Fixed draw sequence per device, consumed whether or not the device
    // ends up chaotic, so every decision is a pure function of the seed.
    const double verdict = rng.next_double();
    const std::size_t kind = rng.next_below(3);
    const TimeNs at = static_cast<TimeNs>(
        window / 5 + rng.next_below(static_cast<std::uint64_t>(window) * 3 / 5));
    const std::uint64_t plan_seed = rng.next_u64();
    if (verdict >= chaos_rate) continue;
    fault::FaultPlan plan = fault::FaultPlan::zero();
    plan.seed = plan_seed;
    if (kind == 0) {
      plan.crash_at = at;
    } else if (kind == 1) {
      plan.flap_period = window / 4;
      plan.flap_down = window / 16;
      plan.flap_jitter = 0.5;
    } else {
      plan.degrade_at = at;
      plan.degrade_copy_factor = 3.0;
    }
    cfg.device_fault_plans[d] = plan;
    ++chaotic;
  }
  cfg.failover_budget = static_cast<int>(rng.next_below(4));
  cfg.hedging = rng.next_below(2) == 0;
  cfg.hedge_threshold = rng.next_below(2) == 0 ? 1.5 : 2.5;
  cfg.hedge_min_samples = 2 + rng.next_below(3);

  if (summary_out != nullptr) {
    std::ostringstream os;
    os << c.summary() << " chaos=" << chaotic << "/" << n
       << " budget=" << cfg.failover_budget
       << " hedge=" << cfg.hedging;
    *summary_out = os.str();
  }
  std::vector<std::string> problems;
  const auto fail = [&problems](const std::ostringstream& os) {
    problems.push_back(os.str());
  };

  const auto run_with = [&](const fleet::FleetConfig& run_cfg,
                            const char* label)
      -> std::optional<fleet::FleetResult> {
    try {
      return fleet::FleetService(run_cfg).run();
    } catch (const hq::Error& e) {
      std::ostringstream os;
      os << label << ": " << e.what();
      fail(os);
      return std::nullopt;
    }
  };

  // No-job-lost conservation under arbitrary crash schedules: every
  // arrival lands in exactly one terminal state — including the fleet-only
  // shed_failover_exhausted — and per-device arrivals plus the fleet-only
  // sheds reproduce the fleet total.
  const auto check_chaos_conservation = [&](const fleet::FleetReport& r,
                                            const char* label) {
    const std::uint64_t terminal = r.completed_ok + r.completed_late +
                                   r.shed_queue_full + r.shed_breaker +
                                   r.shed_no_device + r.timed_out_queued +
                                   r.quarantined + r.shed_failover_exhausted;
    if (r.arrived != terminal) {
      std::ostringstream os;
      os << label << ": chaos accounting leak (arrived " << r.arrived
         << " != terminal states " << terminal << ")";
      fail(os);
    }
    std::uint64_t device_arrived = 0;
    for (const fleet::FleetDeviceStats& dev : r.devices) {
      device_arrived += dev.report.arrived;
    }
    if (device_arrived + r.shed_no_device + r.shed_failover_exhausted !=
        r.arrived) {
      std::ostringstream os;
      os << label << ": per-device arrivals " << device_arrived
         << " + shed_no_device " << r.shed_no_device
         << " + shed_failover_exhausted " << r.shed_failover_exhausted
         << " != fleet arrived " << r.arrived;
      fail(os);
    }
  };

  const auto chaos1 = run_with(cfg, "chaos-run1");
  const auto chaos2 = run_with(cfg, "chaos-run2");
  if (!chaos1 || !chaos2) return problems;
  check_chaos_conservation(chaos1->report, "chaos-base");

  // --- failover determinism --------------------------------------------------
  if (fleet::fleet_report_json(chaos1->report) !=
      fleet::fleet_report_json(chaos2->report)) {
    std::ostringstream os;
    os << "chaos determinism: reports differ across identical runs (digests "
       << fleet::fleet_report_digest(chaos1->report) << " vs "
       << fleet::fleet_report_digest(chaos2->report) << ")";
    fail(os);
  }

  // --- inert-knob identity ---------------------------------------------------
  // Hedging off, all per-device plans disabled, and a moved (but inert)
  // failover budget must reproduce the chaos-free fleet case byte-for-byte.
  fleet::FleetConfig inert = cfg;
  inert.device_fault_plans.assign(n, fault::FaultPlan{});
  inert.hedging = false;
  const fleet::FleetConfig baseline = generate_fleet_case(case_seed).config;
  const auto inert_run = run_with(inert, "chaos-inert");
  const auto baseline_run = run_with(baseline, "chaos-baseline");
  if (inert_run && baseline_run) {
    if (fleet::fleet_report_json(inert_run->report) !=
        fleet::fleet_report_json(baseline_run->report)) {
      std::ostringstream os;
      os << "chaos inert-knob perturbation: hedging off + disabled plans "
         << "changed the report (digests "
         << fleet::fleet_report_digest(inert_run->report) << " vs "
         << fleet::fleet_report_digest(baseline_run->report) << ")";
      fail(os);
    }
  }

  // --- all devices dead => clean drain ---------------------------------------
  // Every device crashes at the same instant: the run must terminate with
  // no invariant violation, conserve every arrival, and complete nothing
  // after the crash.
  fleet::FleetConfig doomed = cfg;
  fault::FaultPlan crash_all = fault::FaultPlan::zero();
  crash_all.crash_at = window / 3;
  doomed.device_fault_plans.assign(n, crash_all);
  if (const auto dead = run_with(doomed, "chaos-all-dead")) {
    check_chaos_conservation(dead->report, "chaos-all-dead");
    for (const serve::JobRecord& job : dead->jobs) {
      if ((job.state == serve::JobState::CompletedOk ||
           job.state == serve::JobState::CompletedLate) &&
          job.completed_at > crash_all.crash_at) {
        std::ostringstream os;
        os << "chaos-all-dead: job " << job.job_id << " completed at "
           << job.completed_at << " after every device crashed at "
           << crash_all.crash_at;
        fail(os);
        break;
      }
    }
  }

  return problems;
}

std::vector<std::string> Fuzzer::run_fleet_sdc_case(std::uint64_t case_seed,
                                                    double sdc_rate,
                                                    std::string* summary_out) {
  FleetFuzzCase c = generate_fleet_case(case_seed);
  // SDC draws from their own stream, so a case seed maps to exactly the
  // fleet config run_fleet_case saw, plus a deterministic corruption
  // schedule and integrity knobs layered on top.
  Rng rng(case_seed ^ 0xd6e8feb86659fd93ULL);
  fleet::FleetConfig& cfg = c.config;
  const std::size_t n = cfg.num_devices();
  const DurationNs window = cfg.base.window;

  cfg.device_fault_plans.assign(n, fault::FaultPlan{});
  std::size_t corrupting = 0;
  for (std::size_t d = 0; d < n; ++d) {
    // Fixed draw sequence per device, consumed whether or not the device
    // ends up corrupting, so every decision is a pure function of the seed.
    const double verdict = rng.next_double();
    const std::size_t kind = rng.next_below(3);
    const TimeNs at = static_cast<TimeNs>(
        window / 5 + rng.next_below(static_cast<std::uint64_t>(window) * 3 / 5));
    const std::uint64_t plan_seed = rng.next_u64();
    if (verdict >= sdc_rate) continue;
    fault::FaultPlan plan = fault::FaultPlan::zero();
    plan.seed = plan_seed;
    if (kind == 0) {
      plan.sdc_copy_rate = 0.4;
    } else if (kind == 1) {
      plan.sdc_kernel_rate = 0.6;
      plan.sdc_at = at;
    } else {
      plan.sdc_stuck_at = at;
    }
    cfg.device_fault_plans[d] = plan;
    ++corrupting;
  }
  cfg.integrity = rng.next_below(2) == 0 ? fleet::IntegrityPolicy::SpotCheck
                                         : fleet::IntegrityPolicy::Dmr;
  cfg.spotcheck_rate = rng.next_below(2) == 0 ? 0.5 : 1.0;
  cfg.sdc_blocklist_threshold = rng.next_below(2) == 0 ? 0.6 : 0.8;
  cfg.failover_budget = 1 + static_cast<int>(rng.next_below(3));
  // The lifecycle tracer backs the blocklist-placement oracle; attaching it
  // is zero-perturbation (the observability oracle pins that).
  cfg.base.collect_metrics = true;

  if (summary_out != nullptr) {
    std::ostringstream os;
    os << c.summary() << " sdc=" << corrupting << "/" << n << " policy="
       << fleet::integrity_policy_name(cfg.integrity)
       << " spotcheck=" << cfg.spotcheck_rate
       << " blocklist=" << cfg.sdc_blocklist_threshold;
    *summary_out = os.str();
  }
  std::vector<std::string> problems;
  const auto fail = [&problems](const std::ostringstream& os) {
    problems.push_back(os.str());
  };

  const auto run_with = [&](const fleet::FleetConfig& run_cfg,
                            const char* label)
      -> std::optional<fleet::FleetResult> {
    try {
      return fleet::FleetService(run_cfg).run();
    } catch (const hq::Error& e) {
      std::ostringstream os;
      os << label << ": " << e.what();
      fail(os);
      return std::nullopt;
    }
  };

  // Conservation with verification re-executions counted as attempts:
  // every arrival still lands in exactly one terminal state, per-device
  // arrivals reproduce the fleet total, and every dispatched re-execution
  // is attributed to exactly one device.
  const auto check_sdc_conservation = [&](const fleet::FleetReport& r,
                                          const char* label) {
    const std::uint64_t terminal = r.completed_ok + r.completed_late +
                                   r.shed_queue_full + r.shed_breaker +
                                   r.shed_no_device + r.timed_out_queued +
                                   r.quarantined + r.shed_failover_exhausted;
    if (r.arrived != terminal) {
      std::ostringstream os;
      os << label << ": sdc accounting leak (arrived " << r.arrived
         << " != terminal states " << terminal << ")";
      fail(os);
    }
    std::uint64_t device_arrived = 0;
    std::uint64_t device_verifications = 0;
    std::uint64_t device_injected = 0;
    std::uint64_t device_blocklisted = 0;
    for (const fleet::FleetDeviceStats& dev : r.devices) {
      device_arrived += dev.report.arrived;
      device_verifications += dev.verifications_run;
      device_injected += dev.sdc_injected;
      if (dev.blocklisted) ++device_blocklisted;
    }
    if (device_arrived + r.shed_no_device + r.shed_failover_exhausted !=
        r.arrived) {
      std::ostringstream os;
      os << label << ": per-device arrivals " << device_arrived
         << " + fleet-only sheds don't reproduce fleet arrived "
         << r.arrived;
      fail(os);
    }
    if (device_verifications != r.reexecutions) {
      std::ostringstream os;
      os << label << ": per-device verifications " << device_verifications
         << " != fleet reexecutions " << r.reexecutions;
      fail(os);
    }
    if (device_injected != r.sdc_injected) {
      std::ostringstream os;
      os << label << ": per-device sdc_injected " << device_injected
         << " != fleet sdc_injected " << r.sdc_injected;
      fail(os);
    }
    if (device_blocklisted != r.devices_blocklisted) {
      std::ostringstream os;
      os << label << ": per-device blocklisted flags " << device_blocklisted
         << " != fleet devices_blocklisted " << r.devices_blocklisted;
      fail(os);
    }
    // The exact partition: every corrupted result was either caught by a
    // mismatching comparison or served silently.
    if (r.sdc_injected != r.sdc_detected + r.sdc_missed) {
      std::ostringstream os;
      os << label << ": sdc partition broken (" << r.sdc_injected
         << " injected != " << r.sdc_detected << " detected + "
         << r.sdc_missed << " missed)";
      fail(os);
    }
  };

  const auto sdc1 = run_with(cfg, "sdc-run1");
  const auto sdc2 = run_with(cfg, "sdc-run2");
  if (!sdc1 || !sdc2) return problems;
  check_sdc_conservation(sdc1->report, "sdc-base");

  // --- determinism -----------------------------------------------------------
  if (fleet::fleet_report_json(sdc1->report) !=
      fleet::fleet_report_json(sdc2->report)) {
    std::ostringstream os;
    os << "sdc determinism: reports differ across identical runs (digests "
       << fleet::fleet_report_digest(sdc1->report) << " vs "
       << fleet::fleet_report_digest(sdc2->report) << ")";
    fail(os);
  }

  // --- inert-plan identity ---------------------------------------------------
  // All-clean plans + Trust must reproduce the integrity-free fleet case
  // byte-for-byte: the whole pipeline is gated, not merely quiet.
  fleet::FleetConfig inert = cfg;
  inert.device_fault_plans.assign(n, fault::FaultPlan{});
  inert.integrity = fleet::IntegrityPolicy::Trust;
  const fleet::FleetConfig baseline = generate_fleet_case(case_seed).config;
  const auto inert_run = run_with(inert, "sdc-inert");
  const auto baseline_run = run_with(baseline, "sdc-baseline");
  if (inert_run && baseline_run) {
    if (fleet::fleet_report_json(inert_run->report) !=
        fleet::fleet_report_json(baseline_run->report)) {
      std::ostringstream os;
      os << "sdc inert-plan perturbation: clean plans + trust policy "
         << "changed the report (digests "
         << fleet::fleet_report_digest(inert_run->report) << " vs "
         << fleet::fleet_report_digest(baseline_run->report) << ")";
      fail(os);
    }
  }

  // --- blocklisted devices receive nothing after their blocklist time --------
  if (sdc1->lifecycle != nullptr) {
    for (std::size_t d = 0; d < sdc1->report.devices.size(); ++d) {
      const fleet::FleetDeviceStats& dev = sdc1->report.devices[d];
      if (!dev.blocklisted) continue;
      for (std::size_t job = 0; job < sdc1->lifecycle->num_jobs() &&
                                problems.size() < 8;
           ++job) {
        for (const serve::JobEvent& e :
             sdc1->lifecycle->events(static_cast<int>(job))) {
          const bool lands_work =
              e.kind == serve::JobEventKind::Placed ||
              e.kind == serve::JobEventKind::Queued ||
              e.kind == serve::JobEventKind::Requeued ||
              e.kind == serve::JobEventKind::Stolen ||
              e.kind == serve::JobEventKind::FailedOver ||
              e.kind == serve::JobEventKind::Dispatched ||
              e.kind == serve::JobEventKind::Hedged ||
              e.kind == serve::JobEventKind::VerifyDispatched;
          if (lands_work && e.device == static_cast<int>(d) &&
              e.at > dev.blocklisted_at) {
            std::ostringstream os;
            os << "sdc blocklist leak: job " << job << " event "
               << serve::job_event_kind_name(e.kind) << " landed on device "
               << d << " at " << e.at << " after its blocklist at "
               << dev.blocklisted_at;
            fail(os);
          }
        }
      }
    }
  }

  return problems;
}

std::vector<std::string> Fuzzer::run_serve_case(std::uint64_t case_seed,
                                                std::string* summary_out) {
  const ServeFuzzCase c = generate_serve_case(case_seed);
  if (summary_out != nullptr) *summary_out = c.summary();
  std::vector<std::string> problems;
  const auto fail = [&problems](const std::ostringstream& os) {
    problems.push_back(os.str());
  };

  // A serve run aborts (hq::Error) on an invariant violation — including
  // the serve-accounting identity checked inside Service::run — so every
  // oracle failure is reported with its case seed.
  const auto run_with = [&](const serve::ServiceConfig& cfg, const char* label)
      -> std::optional<serve::ServeResult> {
    try {
      return serve::Service(cfg).run();
    } catch (const hq::Error& e) {
      std::ostringstream os;
      os << label << ": " << e.what();
      fail(os);
      return std::nullopt;
    }
  };

  const auto base1 = run_with(c.config, "serve-run1");
  const auto base2 = run_with(c.config, "serve-run2");
  if (!base1 || !base2) return problems;

  // --- determinism: identical config => byte-identical report ---------------
  if (serve::report_json(base1->report) != serve::report_json(base2->report)) {
    std::ostringstream os;
    os << "serve determinism: reports differ across identical runs (digests "
       << serve::report_digest(base1->report) << " vs "
       << serve::report_digest(base2->report) << ")";
    fail(os);
  }

  // --- accounting: conservation + shed jobs consume no device time ----------
  const serve::ServeReport& r = base1->report;
  if (r.arrived != r.completed_ok + r.completed_late + r.shed_queue_full +
                       r.shed_breaker + r.timed_out_queued + r.quarantined) {
    std::ostringstream os;
    os << "serve accounting: arrived " << r.arrived
       << " != completed_ok " << r.completed_ok << " + completed_late "
       << r.completed_late << " + shed " << r.shed_queue_full << "+"
       << r.shed_breaker << " + timed-out " << r.timed_out_queued
       << " + quarantined " << r.quarantined;
    fail(os);
  }
  for (const serve::JobRecord& job : base1->jobs) {
    const bool undispatched = job.state == serve::JobState::ShedQueueFull ||
                              job.state == serve::JobState::ShedBreaker ||
                              job.state == serve::JobState::TimedOutQueued;
    if (undispatched && (job.dispatched_at != 0 || job.completed_at != 0)) {
      std::ostringstream os;
      os << "serve accounting: job " << job.job_id << " is "
         << serve::job_state_name(job.state)
         << " but carries device timestamps (dispatched "
         << job.dispatched_at << ", completed " << job.completed_at << ")";
      fail(os);
    }
  }

  // --- queue-cap monotonicity ------------------------------------------------
  serve::ServiceConfig uncapped = c.config;
  uncapped.queue_cap = 0;
  if (const auto unbounded = run_with(uncapped, "serve-uncapped")) {
    if (unbounded->report.arrived != r.arrived) {
      std::ostringstream os;
      os << "serve metamorphic: arrivals depend on the queue cap ("
         << unbounded->report.arrived << " uncapped vs " << r.arrived << ")";
      fail(os);
    }
    if (unbounded->report.completed < r.completed) {
      std::ostringstream os;
      os << "serve metamorphic: removing the queue cap decreased completed "
         << "jobs (" << unbounded->report.completed << " < " << r.completed
         << ")";
      fail(os);
    }
  }

  // --- deadline monotonicity (drop-tail, no expiry: pure accounting) --------
  serve::ServiceConfig loose = c.config;
  loose.shed_policy = serve::ShedPolicy::DropTail;
  loose.expire_queued = false;
  loose.deadline = 4 * kMillisecond;
  serve::ServiceConfig tight = loose;
  tight.deadline = kMillisecond;
  const auto loose_run = run_with(loose, "serve-deadline-loose");
  const auto tight_run = run_with(tight, "serve-deadline-tight");
  if (loose_run && tight_run) {
    if (loose_run->report.trace_digest != tight_run->report.trace_digest) {
      std::ostringstream os;
      os << "serve metamorphic: accounting-only deadline perturbed the "
         << "schedule (digests " << loose_run->report.trace_digest << " vs "
         << tight_run->report.trace_digest << ")";
      fail(os);
    }
    if (tight_run->report.goodput_per_sec >
        loose_run->report.goodput_per_sec) {
      std::ostringstream os;
      os << "serve metamorphic: tightening the deadline increased goodput ("
         << tight_run->report.goodput_per_sec << "/s > "
         << loose_run->report.goodput_per_sec << "/s)";
      fail(os);
    }
  }

  // --- legacy equivalence: features off + zero-rate plan == StreamingHarness -
  serve::ServiceConfig bare = c.config;
  bare.queue_cap = 0;
  bare.max_inflight = 0;
  bare.shed_policy = serve::ShedPolicy::DropTail;
  bare.deadline = 0;
  bare.expire_queued = false;
  bare.controller = {};
  bare.breaker_enabled = false;
  bare.fault_plan = fault::FaultPlan::zero();
  const auto bare_run = run_with(bare, "serve-bare");
  if (bare_run) {
    fw::StreamingHarness::Config legacy;
    legacy.device = c.config.device;
    legacy.num_streams = c.config.num_streams;
    legacy.window = c.config.window;
    legacy.mean_interarrival = c.config.mean_interarrival;
    legacy.seed = c.config.seed;
    for (const serve::ClassSpec& klass : c.config.classes) {
      legacy.mix.push_back(klass.item);
    }
    try {
      const fw::StreamingHarness::Result plain =
          fw::StreamingHarness(legacy).run();
      if (plain.trace_digest != bare_run->report.trace_digest ||
          plain.admitted != static_cast<int>(bare_run->report.arrived)) {
        std::ostringstream os;
        os << "serve equivalence: bare service with a zero-rate plan "
           << "diverges from StreamingHarness (digests "
           << bare_run->report.trace_digest << " vs " << plain.trace_digest
           << ", admitted " << bare_run->report.arrived << " vs "
           << plain.admitted << ")";
        fail(os);
      }
    } catch (const hq::Error& e) {
      std::ostringstream os;
      os << "serve equivalence: StreamingHarness run failed: " << e.what();
      fail(os);
    }
  }

  return problems;
}

fault::FaultPlan Fuzzer::case_fault_plan(std::uint64_t case_seed,
                                         double fault_rate) {
  HQ_CHECK_MSG(fault_rate >= 0.0 && fault_rate <= 1.0,
               "fault rate must lie in [0, 1]");
  fault::FaultPlan plan;
  plan.enabled = true;
  // Decorrelate the fault stream from the workload generator without losing
  // reproducibility: the plan is still a pure function of the case seed.
  plan.seed = case_seed ^ 0x9e3779b97f4a7c15ULL;
  plan.copy_stall_rate = 0.25 * fault_rate;
  plan.copy_stall_ns = 50 * kMicrosecond;
  plan.copy_slowdown_rate = 0.25 * fault_rate;
  plan.copy_slowdown_factor = 1.5;
  plan.launch_failure_rate = 0.5 * fault_rate;
  plan.throttle_period = 2 * kMillisecond;
  plan.throttle_duration = 200 * kMicrosecond;
  plan.throttle_factor = 1.25;
  return plan;
}

std::vector<std::string> Fuzzer::run_case(std::uint64_t case_seed,
                                          std::string* summary_out) {
  return run_case(case_seed, 0.0, summary_out);
}

std::vector<std::string> Fuzzer::run_case(std::uint64_t case_seed,
                                          double fault_rate,
                                          std::string* summary_out) {
  const FuzzCase c = generate_case(case_seed);
  if (summary_out != nullptr) *summary_out = c.summary();
  std::vector<std::string> problems;
  const auto fail = [&problems](const std::ostringstream& os) {
    problems.push_back(os.str());
  };

  const auto workload =
      rodinia::build_workload(c.slots, c.type_names, c.params);

  // A harness run aborts (hq::Error) on an invariant violation; catch it so
  // every oracle failure of the case is reported with its seed.
  const auto run_with = [&](const fw::HarnessConfig& cfg, const char* label)
      -> std::optional<fw::HarnessResult> {
    try {
      fw::Harness harness(cfg);
      return harness.run(workload);
    } catch (const hq::Error& e) {
      std::ostringstream os;
      os << label << ": " << e.what();
      fail(os);
      return std::nullopt;
    }
  };

  const auto hyperq1 = run_with(c.config, "hyperq-run1");
  const auto hyperq2 = run_with(c.config, "hyperq-run2");
  fw::HarnessConfig serial_cfg = c.config;
  serial_cfg.num_streams = 1;
  const auto serial = run_with(serial_cfg, "serial");
  fw::HarnessConfig fermi_cfg = c.config;
  fermi_cfg.device = gpu::DeviceSpec::fermi_single_queue();
  const auto fermi = run_with(fermi_cfg, "fermi");
  if (!hyperq1 || !hyperq2 || !serial || !fermi) return problems;

  // --- determinism: identical seed => identical run --------------------------
  const std::uint64_t digest1 = trace::digest(*hyperq1->trace);
  const std::uint64_t digest2 = trace::digest(*hyperq2->trace);
  if (digest1 != digest2) {
    std::ostringstream os;
    os << "determinism: trace digests differ across identical runs ("
       << digest1 << " vs " << digest2 << ")";
    fail(os);
  }
  if (hyperq1->makespan != hyperq2->makespan) {
    std::ostringstream os;
    os << "determinism: makespan differs across identical runs ("
       << hyperq1->makespan << " vs " << hyperq2->makespan << ")";
    fail(os);
  }
  if (hyperq1->energy_exact != hyperq2->energy_exact) {
    std::ostringstream os;
    os << "determinism: energy differs across identical runs ("
       << hyperq1->energy_exact << " vs " << hyperq2->energy_exact << ")";
    fail(os);
  }

  // --- serialization: NS = 1 is never faster ---------------------------------
  if (serial->makespan < hyperq1->makespan) {
    std::ostringstream os;
    os << "metamorphic: serialized makespan " << serial->makespan
       << " < concurrent makespan " << hyperq1->makespan;
    fail(os);
  }

  // --- Hyper-Q: the Fermi single-queue ablation is never materially faster ---
  // Strict dominance does not hold pointwise: head-of-line blocking changes
  // block placement order, and the contention model stretches a block by the
  // occupancy it sees at placement, so Fermi can finish a hair earlier
  // (measured < 0.8% over thousands of cases). A 2% guard band separates
  // that modelling noise from real scheduling regressions.
  if (static_cast<double>(fermi->makespan) <
      static_cast<double>(hyperq1->makespan) * 0.98) {
    std::ostringstream os;
    os << "metamorphic: Fermi makespan " << fermi->makespan
       << " materially below Hyper-Q makespan " << hyperq1->makespan;
    fail(os);
  }

  // --- work conservation: every mode does the same device work ---------------
  const auto check_stats = [&](const gpu::Device::Stats& got,
                               const char* label) {
    const gpu::Device::Stats& want = hyperq1->device_stats;
    if (got.kernels_completed != want.kernels_completed ||
        got.copies_htod != want.copies_htod ||
        got.copies_dtoh != want.copies_dtoh ||
        got.bytes_htod != want.bytes_htod ||
        got.bytes_dtoh != want.bytes_dtoh) {
      std::ostringstream os;
      os << "work conservation: " << label
         << " device stats differ from the Hyper-Q run (kernels "
         << got.kernels_completed << "/" << want.kernels_completed
         << ", copies " << got.copies_htod << "+" << got.copies_dtoh << "/"
         << want.copies_htod << "+" << want.copies_dtoh << ")";
      fail(os);
    }
  };
  check_stats(serial->device_stats, "serialized");
  check_stats(fermi->device_stats, "Fermi");

  // --- Eq. 1–2 bounds on effective transfer latency --------------------------
  for (const fw::AppMetrics& m : hyperq1->apps) {
    if (m.htod_effective_latency > 0 &&
        m.htod_own_time > m.htod_effective_latency) {
      std::ostringstream os;
      os << "latency bound: app " << m.app_id << " (" << m.type
         << ") effective HtoD latency " << m.htod_effective_latency
         << " below own service time " << m.htod_own_time;
      fail(os);
    }
    if (m.htod_effective_latency > hyperq1->makespan ||
        m.dtoh_effective_latency > hyperq1->makespan) {
      std::ostringstream os;
      os << "latency bound: app " << m.app_id << " (" << m.type
         << ") effective latency exceeds makespan " << hyperq1->makespan;
      fail(os);
    }
  }

  // --- energy plausibility ----------------------------------------------------
  {
    const gpu::DeviceSpec& spec = c.config.device;
    const double seconds = to_seconds(hyperq1->makespan);
    const double floor = spec.idle_power * seconds;
    const double ceiling =
        (spec.idle_power + spec.active_base_power + spec.max_dynamic_power +
         spec.copy_engine_power * spec.num_copy_engines) *
        seconds;
    if (hyperq1->energy_exact < floor * (1.0 - 1e-9) ||
        hyperq1->energy_exact > ceiling * (1.0 + 1e-9)) {
      std::ostringstream os;
      os << "energy: phase energy " << hyperq1->energy_exact
         << " J outside plausible range [" << floor << ", " << ceiling << "]";
      fail(os);
    }
  }

  // --- functional equivalence across scheduling modes -------------------------
  if (c.config.functional) {
    const auto check_verified = [&](const fw::HarnessResult& r,
                                    const char* label) {
      if (!r.all_verified) {
        std::ostringstream os;
        os << "functional: " << label << " run failed verification";
        fail(os);
      }
    };
    check_verified(*hyperq1, "Hyper-Q");
    check_verified(*serial, "serialized");
    check_verified(*fermi, "Fermi");

    for (std::size_t i = 0; i < hyperq1->apps.size(); ++i) {
      const std::uint64_t d_hq1 = hyperq1->apps[i].output_digest;
      const std::uint64_t d_hq2 = hyperq2->apps[i].output_digest;
      const std::uint64_t d_serial = serial->apps[i].output_digest;
      const std::uint64_t d_fermi = fermi->apps[i].output_digest;
      if (d_hq1 != d_hq2 || d_hq1 != d_serial || d_hq1 != d_fermi) {
        std::ostringstream os;
        os << "functional: app " << i << " (" << hyperq1->apps[i].type
           << ") output digests diverge across modes (hq " << d_hq1 << "/"
           << d_hq2 << ", serial " << d_serial << ", fermi " << d_fermi << ")";
        fail(os);
      }
    }
  }

  // --- fault-mode oracles ------------------------------------------------------
  if (fault_rate > 0.0) {
    // Attaching an all-zero-rate plan must perturb nothing.
    fw::HarnessConfig zero_cfg = c.config;
    zero_cfg.fault_plan = fault::FaultPlan::zero();
    const auto zeroed = run_with(zero_cfg, "fault-zero");
    if (zeroed) {
      if (trace::digest(*zeroed->trace) != digest1) {
        std::ostringstream os;
        os << "fault: zero-rate plan perturbed the trace digest ("
           << trace::digest(*zeroed->trace) << " vs " << digest1 << ")";
        fail(os);
      }
      if (zeroed->degraded.stats.total() != 0 ||
          !zeroed->degraded.quarantined.empty()) {
        std::ostringstream os;
        os << "fault: zero-rate plan reported "
           << zeroed->degraded.stats.total() << " faults / "
           << zeroed->degraded.quarantined.size() << " quarantined apps";
        fail(os);
      }
    }

    fw::HarnessConfig fault_cfg = c.config;
    fault_cfg.fault_plan = case_fault_plan(case_seed, fault_rate);
    const auto faulted1 = run_with(fault_cfg, "fault-run1");
    const auto faulted2 = run_with(fault_cfg, "fault-run2");
    if (faulted1 && faulted2) {
      // Determinism: the same plan + seed reproduces the faulted run.
      if (trace::digest(*faulted1->trace) != trace::digest(*faulted2->trace) ||
          faulted1->makespan != faulted2->makespan ||
          faulted1->degraded.stats.total() !=
              faulted2->degraded.stats.total()) {
        std::ostringstream os;
        os << "fault: faulted run is not deterministic (digests "
           << trace::digest(*faulted1->trace) << "/"
           << trace::digest(*faulted2->trace) << ", makespans "
           << faulted1->makespan << "/" << faulted2->makespan << ", faults "
           << faulted1->degraded.stats.total() << "/"
           << faulted2->degraded.stats.total() << ")";
        fail(os);
      }
      // Injected faults only ever add service time or submission delay, so
      // the faulted run is never materially faster (same 2% guard band as
      // the Fermi oracle for contention-model noise).
      if (static_cast<double>(faulted1->makespan) <
          static_cast<double>(hyperq1->makespan) * 0.98) {
        std::ostringstream os;
        os << "fault: faulted makespan " << faulted1->makespan
           << " materially below fault-free makespan " << hyperq1->makespan;
        fail(os);
      }
      // Transient faults never drop device work, and the plan stays below
      // the retry budget, so nothing may be quarantined.
      check_stats(faulted1->device_stats, "faulted");
      if (!faulted1->degraded.quarantined.empty()) {
        std::ostringstream os;
        os << "fault: transient-only plan quarantined "
           << faulted1->degraded.quarantined.size() << " app(s)";
        fail(os);
      }
      // At full intensity every copy draws a stall at rate 0.25 and every
      // launch at rate 0.5 — a run with zero observed faults means the
      // injector is wired to nothing.
      if (fault_rate >= 1.0 && faulted1->degraded.stats.total() == 0) {
        std::ostringstream os;
        os << "fault: rate-1 plan injected zero faults";
        fail(os);
      }
      // Retried launches still reach the device: functional outputs are
      // byte-identical to the fault-free run.
      if (c.config.functional) {
        if (!faulted1->all_verified) {
          std::ostringstream os;
          os << "fault: faulted run failed verification";
          fail(os);
        }
        for (std::size_t i = 0; i < hyperq1->apps.size(); ++i) {
          if (faulted1->apps[i].output_digest !=
              hyperq1->apps[i].output_digest) {
            std::ostringstream os;
            os << "fault: app " << i << " (" << hyperq1->apps[i].type
               << ") output digest diverges under transient faults ("
               << faulted1->apps[i].output_digest << " vs "
               << hyperq1->apps[i].output_digest << ")";
            fail(os);
          }
        }
      }
    }
  }

  return problems;
}

FuzzReport Fuzzer::run(const Progress& progress) {
  // Case seeds derive from the master seed exactly as the serial loop drew
  // them, so --jobs N fuzzes the same cases as --jobs 1. Serving-mode seeds
  // are drawn after the harness seeds, so enabling them never changes which
  // harness cases an existing master seed covers.
  Rng master(options_.seed);
  const std::size_t harness_cases = static_cast<std::size_t>(options_.iterations);
  const std::size_t serve_cases =
      static_cast<std::size_t>(options_.serve_iterations);
  std::vector<std::uint64_t> case_seeds;
  case_seeds.reserve(harness_cases + serve_cases +
                     static_cast<std::size_t>(options_.fleet_iterations));
  for (int i = 0; i < options_.iterations; ++i) {
    case_seeds.push_back(master.next_u64());
  }
  for (int i = 0; i < options_.serve_iterations; ++i) {
    case_seeds.push_back(master.next_u64());
  }
  for (int i = 0; i < options_.fleet_iterations; ++i) {
    case_seeds.push_back(master.next_u64());
  }

  struct CaseResult {
    std::string summary;
    std::vector<std::string> problems;
  };
  const auto run_one = [&](std::size_t i) {
    CaseResult r;
    if (i < harness_cases) {
      r.problems = run_case(case_seeds[i], options_.fault_rate, &r.summary);
    } else if (i < harness_cases + serve_cases) {
      r.problems = run_serve_case(case_seeds[i], &r.summary);
    } else {
      r.problems = run_fleet_case(case_seeds[i], &r.summary);
      if (options_.chaos_rate > 0) {
        std::string chaos_summary;
        std::vector<std::string> chaos = run_fleet_chaos_case(
            case_seeds[i], options_.chaos_rate, &chaos_summary);
        r.summary = std::move(chaos_summary);
        r.problems.insert(r.problems.end(),
                          std::make_move_iterator(chaos.begin()),
                          std::make_move_iterator(chaos.end()));
      }
      if (options_.sdc_rate > 0) {
        std::string sdc_summary;
        std::vector<std::string> sdc = run_fleet_sdc_case(
            case_seeds[i], options_.sdc_rate, &sdc_summary);
        r.summary = std::move(sdc_summary);
        r.problems.insert(r.problems.end(),
                          std::make_move_iterator(sdc.begin()),
                          std::make_move_iterator(sdc.end()));
      }
    }
    return r;
  };

  // Reduce and report in iteration order as results retire: the report and
  // the progress sequence are byte-identical at any job count.
  FuzzReport report;
  const auto reduce = [&](std::size_t i, CaseResult r) {
    ++report.iterations_run;
    const bool clean = r.problems.empty();
    if (!clean) {
      FuzzFailure f;
      f.iteration = static_cast<int>(i);
      f.case_seed = case_seeds[i];
      f.case_summary = r.summary;
      f.problems = std::move(r.problems);
      report.failures.push_back(std::move(f));
    }
    if (progress) progress(static_cast<int>(i), case_seeds[i], r.summary, clean);
  };

  const int jobs =
      options_.jobs == 0 ? exec::ThreadPool::hardware_jobs() : options_.jobs;
  if (jobs <= 1) {
    for (std::size_t i = 0; i < case_seeds.size(); ++i) reduce(i, run_one(i));
  } else {
    exec::ThreadPool pool(jobs);
    std::vector<exec::Future<CaseResult>> futures;
    futures.reserve(case_seeds.size());
    for (std::size_t i = 0; i < case_seeds.size(); ++i) {
      futures.push_back(pool.submit([&run_one, i] { return run_one(i); }));
    }
    for (std::size_t i = 0; i < futures.size(); ++i) {
      reduce(i, futures[i].get());
    }
  }
  return report;
}

std::string FuzzReport::to_string() const {
  std::ostringstream os;
  os << iterations_run << " iteration(s), " << failures.size()
     << " failing case(s)";
  for (const FuzzFailure& f : failures) {
    os << "\n[iteration " << f.iteration << "] " << f.case_summary;
    for (const std::string& p : f.problems) os << "\n  - " << p;
  }
  return os.str();
}

}  // namespace hq::check
