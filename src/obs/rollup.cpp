#include "obs/rollup.hpp"

#include <algorithm>
#include <map>
#include <ostream>
#include <sstream>

#include "common/check.hpp"
#include "obs/report.hpp"

namespace hq::obs {

void FleetRollup::add_device(int device_id, std::string name,
                             std::shared_ptr<const MetricsRegistry> registry) {
  HQ_CHECK_MSG(device_id >= 0, "fleet rollup: device id must be >= 0, got "
                                   << device_id);
  HQ_CHECK_MSG(registry != nullptr,
               "fleet rollup: device " << device_id << " has no registry");
  for (const DeviceEntry& d : devices_) {
    HQ_CHECK_MSG(d.device_id != device_id,
                 "fleet rollup: device " << device_id << " added twice");
  }
  devices_.push_back(DeviceEntry{device_id, std::move(name),
                                 std::move(registry)});
  // Once out of order, stays out of order until devices() re-sorts —
  // comparing only the last two entries must not clobber an earlier
  // violation.
  sorted_ = sorted_ && (devices_.size() < 2 ||
                        devices_[devices_.size() - 2].device_id < device_id);
}

const std::vector<FleetRollup::DeviceEntry>& FleetRollup::devices() const {
  if (!sorted_) {
    std::sort(devices_.begin(), devices_.end(),
              [](const DeviceEntry& a, const DeviceEntry& b) {
                return a.device_id < b.device_id;
              });
    sorted_ = true;
  }
  return devices_;
}

double series_value_at(const Series& series, TimeNs t) {
  const auto& pts = series.points();
  const auto it = std::upper_bound(
      pts.begin(), pts.end(), t,
      [](TimeNs time, const Series::Point& p) { return time < p.time; });
  if (it == pts.begin()) return 0.0;
  return std::prev(it)->value;
}

namespace {

/// Union of metric names over the (ascending-id) device set, in
/// first-encounter order, with the entries each name maps to. Kind
/// mismatches across devices are configuration bugs and throw.
struct NameUnion {
  std::vector<std::string> names;
  std::map<std::string, std::vector<const MetricsRegistry::Entry*>> entries;
};

NameUnion union_names(const std::vector<FleetRollup::DeviceEntry>& devices) {
  NameUnion u;
  for (const FleetRollup::DeviceEntry& d : devices) {
    d.registry->for_each([&](const MetricsRegistry::Entry& e) {
      auto [it, fresh] = u.entries.try_emplace(e.name);
      if (fresh) {
        u.names.push_back(e.name);
      } else if (!it->second.empty()) {
        HQ_CHECK_MSG(it->second.front()->kind == e.kind,
                     "fleet rollup: metric '"
                         << e.name << "' is "
                         << metric_kind_name(it->second.front()->kind)
                         << " on one device and " << metric_kind_name(e.kind)
                         << " on device " << d.device_id);
      }
      it->second.push_back(&e);
    });
  }
  return u;
}

}  // namespace

MetricsRegistry FleetRollup::merged() const {
  MetricsRegistry out;
  const NameUnion u = union_names(devices());
  for (const std::string& name : u.names) {
    const auto& sources = u.entries.at(name);
    const MetricsRegistry::Entry& first = *sources.front();
    switch (first.kind) {
      case MetricKind::Counter: {
        Counter& c = out.counter(name, first.help);
        for (const MetricsRegistry::Entry* e : sources) {
          c.add(std::get<Counter>(e->metric).value());
        }
        break;
      }
      case MetricKind::Gauge: {
        double sum = 0.0;
        for (const MetricsRegistry::Entry* e : sources) {
          sum += std::get<Gauge>(e->metric).value();
        }
        out.gauge(name, first.help).set(sum);
        break;
      }
      case MetricKind::Histogram: {
        Histogram& h = out.histogram(
            name, std::get<Histogram>(first.metric).bounds(), first.help);
        for (const MetricsRegistry::Entry* e : sources) {
          h.merge(std::get<Histogram>(e->metric));
        }
        break;
      }
      case MetricKind::Series: {
        // Point-wise sum of the per-device piecewise-constant
        // trajectories: an event exists wherever any device's series has
        // one, and the value there is the sum of every device's value in
        // effect at that instant.
        Series& s = out.series(name, first.help);
        std::vector<TimeNs> times;
        for (const MetricsRegistry::Entry* e : sources) {
          for (const Series::Point& p : std::get<Series>(e->metric).points()) {
            times.push_back(p.time);
          }
        }
        std::sort(times.begin(), times.end());
        times.erase(std::unique(times.begin(), times.end()), times.end());
        for (const TimeNs t : times) {
          double sum = 0.0;
          for (const MetricsRegistry::Entry* e : sources) {
            sum += series_value_at(std::get<Series>(e->metric), t);
          }
          s.sample(t, sum);
        }
        break;
      }
    }
  }
  return out;
}

namespace {

std::string hex_digest(std::uint64_t v) {
  char buf[17] = {};
  for (int i = 15; i >= 0; --i) {
    buf[i] = "0123456789abcdef"[v & 0xF];
    v >>= 4;
  }
  return "0x" + std::string(buf, 16);
}

void write_registry_entries(std::ostream& os, const MetricsRegistry& registry,
                            const char* entry_indent,
                            const char* close_indent) {
  os << "[";
  bool first = true;
  registry.for_each([&](const MetricsRegistry::Entry& e) {
    os << (first ? "\n" : ",\n") << entry_indent;
    first = false;
    write_metric_entry_json(os, e);
  });
  if (!first) os << "\n" << close_indent;
  os << "]";
}

/// One Prometheus sample group for an entry, with an optional label
/// (`device="3"`, no braces). Byte-compatible with obs::write_prometheus
/// when the label is empty and the prefix is "hq_".
void emit_prometheus_entry(std::ostream& os, const std::string& name,
                           const std::string& label,
                           const MetricsRegistry::Entry& e) {
  const std::string inst = label.empty() ? "" : "{" + label + "}";
  switch (e.kind) {
    case MetricKind::Counter:
      os << name << inst << " " << std::get<Counter>(e.metric).value()
         << "\n";
      break;
    case MetricKind::Gauge: {
      const Gauge& g = std::get<Gauge>(e.metric);
      os << name << inst << " " << format_double(g.value()) << "\n";
      os << name << "_peak" << inst << " " << format_double(g.peak()) << "\n";
      break;
    }
    case MetricKind::Histogram: {
      const Histogram& h = std::get<Histogram>(e.metric);
      const std::string le_prefix = label.empty() ? "" : label + ",";
      std::uint64_t cumulative = 0;
      for (std::size_t i = 0; i < h.bounds().size(); ++i) {
        cumulative += h.counts()[i];
        os << name << "_bucket{" << le_prefix << "le=\""
           << format_double(h.bounds()[i]) << "\"} " << cumulative << "\n";
      }
      os << name << "_bucket{" << le_prefix << "le=\"+Inf\"} " << h.count()
         << "\n";
      os << name << "_sum" << inst << " " << format_double(h.sum()) << "\n";
      os << name << "_count" << inst << " " << h.count() << "\n";
      break;
    }
    case MetricKind::Series: {
      const Series& s = std::get<Series>(e.metric);
      os << name << inst << " " << format_double(s.last()) << "\n";
      os << name << "_peak" << inst << " " << format_double(s.peak()) << "\n";
      break;
    }
  }
}

void emit_prometheus_meta(std::ostream& os, const std::string& name,
                          const MetricsRegistry::Entry& e) {
  if (!e.help.empty()) os << "# HELP " << name << " " << e.help << "\n";
  const char* type =
      e.kind == MetricKind::Counter
          ? "counter"
          : e.kind == MetricKind::Histogram ? "histogram" : "gauge";
  os << "# TYPE " << name << " " << type << "\n";
}

}  // namespace

void write_fleet_metrics_json(std::ostream& os, const FleetInfo& info,
                              const FleetRollup& rollup) {
  os << "{\n  \"schema_version\": " << kFleetMetricsSchemaVersion << ",\n";
  os << "  \"fleet\": {\"workload\": ";
  write_json_quoted(os, info.workload);
  os << ", \"num_devices\": " << info.num_devices << ", \"placement\": ";
  write_json_quoted(os, info.placement);
  os << ", \"work_stealing\": " << (info.work_stealing ? "true" : "false")
     << ", \"seed\": " << info.seed << ", \"arrived\": " << info.arrived
     << ", \"completed\": " << info.completed
     << ", \"total_time_ns\": " << info.total_time
     << ", \"energy_j\": " << format_double(info.energy_j)
     << ", \"report_digest\": \"" << hex_digest(info.report_digest)
     << "\"},\n";
  os << "  \"devices\": [";
  const auto& devices = rollup.devices();
  for (std::size_t i = 0; i < devices.size(); ++i) {
    os << (i == 0 ? "\n" : ",\n");
    os << "    {\"device\": " << devices[i].device_id << ", \"name\": ";
    write_json_quoted(os, devices[i].name);
    os << ", \"metrics\": ";
    write_registry_entries(os, *devices[i].registry, "      ", "    ");
    os << "}";
  }
  os << (devices.empty() ? "],\n" : "\n  ],\n");
  os << "  \"fleet_metrics\": ";
  write_registry_entries(os, rollup.fleet(), "    ", "  ");
  os << ",\n  \"merged_metrics\": ";
  write_registry_entries(os, rollup.merged(), "    ", "  ");
  os << "\n}\n";
}

std::string fleet_metrics_json(const FleetInfo& info,
                               const FleetRollup& rollup) {
  std::ostringstream os;
  write_fleet_metrics_json(os, info, rollup);
  return os.str();
}

void write_fleet_prometheus(std::ostream& os, const FleetRollup& rollup) {
  // Per-device metrics, name-major: TYPE/HELP once per metric, then one
  // labeled sample group per device (ascending id).
  const auto& devices = rollup.devices();
  const NameUnion u = union_names(devices);
  for (const std::string& raw : u.names) {
    const std::string name = "hq_" + raw;
    bool meta_written = false;
    for (const FleetRollup::DeviceEntry& d : devices) {
      const MetricsRegistry::Entry* e = d.registry->find(raw);
      if (e == nullptr) continue;
      if (!meta_written) {
        emit_prometheus_meta(os, name, *e);
        meta_written = true;
      }
      emit_prometheus_entry(
          os, name, "device=\"" + std::to_string(d.device_id) + "\"", *e);
    }
  }
  // Fleet-scope metrics, unlabeled under their own (fleet_-prefixed) names.
  write_prometheus(os, rollup.fleet());
  // Merged per-device metrics as hq_fleet_<name>.
  const MetricsRegistry merged = rollup.merged();
  merged.for_each([&](const MetricsRegistry::Entry& e) {
    const std::string name = "hq_fleet_" + e.name;
    emit_prometheus_meta(os, name, e);
    emit_prometheus_entry(os, name, "", e);
  });
}

std::string fleet_prometheus_text(const FleetRollup& rollup) {
  std::ostringstream os;
  write_fleet_prometheus(os, rollup);
  return os.str();
}

}  // namespace hq::obs
