// Cluster-scale serving: shard the serving layer across a simulated device
// fleet (library hq_fleet).
//
// FleetService runs N per-device serving engines — each a faithful replica
// of serve::Service's run state (own gpu::Device, cudart runtime, stream
// pool, HtoD mutex, admission queue, overload controller, per-class
// breakers, fault injector, trace recorder) — under ONE virtual clock and
// ONE arrival process. A deterministic placement policy
// (src/fleet/placement.hpp) routes every admitted arrival to a device;
// fleet-only mechanisms move work afterwards:
//
//   * per-device health breakers (fault::CircuitBreaker over job outcomes):
//     a device whose jobs keep quarantining trips open and is quarantined —
//     no policy places on it and its queued jobs are rebalanced to healthy
//     peers (counted as requeued). A half-open probe job re-admits it.
//   * optional work stealing: a device that drains its own queue steals the
//     newest queued job from the deepest peer queue (pop_back — preserving
//     the victim's FIFO latency order) and runs it itself.
//   * when no healthy device exists, arrivals are shed as
//     JobState::ShedNoDevice (a fleet-only terminal state).
//
// Fleet fault domains (device lifecycle chaos) layer three more mechanisms
// on top, all on the virtual clock and fully deterministic:
//
//   * device-lifecycle faults: a FaultPlan can crash a device permanently
//     at a virtual time, flap it down/up on a seeded schedule, or derate
//     its copy bandwidth from a point in time (src/fault/lifecycle.hpp).
//     Per-device plans come from `device_fault_plans`.
//   * in-flight failover: when a device goes down, its queued jobs AND its
//     running jobs are requeued to healthy survivors through the placement
//     policy, consuming a per-job `failover_budget`. A job whose budget (or
//     the supply of survivors) runs out ends in the fleet-only terminal
//     state JobState::ShedFailoverExhausted. Cancelled attempts drain as
//     zombies — their device work stands in the trace, but their outcome is
//     discarded.
//   * hedged dispatch: when a dispatched job runs past `hedge_threshold`
//     times its class's running mean service time, a second attempt is
//     dispatched on an idle healthy peer. First completion wins; the loser
//     is cancelled deterministically.
//
// Single-device equivalence: a 1-device fleet with the fleet-only features
// off schedules, draws RNG, and spawns coroutines exactly as the
// single-device Service, so the nested per-device ServeReport is
// byte-identical to Service::run()'s report for the same base config — the
// fleet fuzz oracle and golden tests pin this.
//
// Fault decorrelation: device d > 0 runs the base fault plan with its seed
// offset by d, so a heterogeneous-fault fleet stays deterministic without
// every device failing in lockstep. Device 0 uses the plan verbatim
// (required for the 1-device equivalence above). Non-empty
// `device_fault_plans` replaces this scheme: device d runs
// device_fault_plans[d] exactly as given (disabled plans run fault-free).
//
// Determinism contract: same config + seed => byte-identical FleetReport
// JSON and digest at any --jobs count (jobs only shard independent runs).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "fault/fault.hpp"
#include "fleet/placement.hpp"
#include "fleet/report.hpp"
#include "obs/telemetry.hpp"
#include "serve/lifecycle.hpp"
#include "serve/service.hpp"

namespace hq::fleet {

/// How the fleet checks completed jobs for silent data corruption.
enum class IntegrityPolicy : std::uint8_t {
  /// Every completed result is accepted as correct (the historical
  /// behavior; zero-perturbation baseline).
  Trust,
  /// A seeded fraction of completed jobs (`spotcheck_rate`) is re-executed
  /// on a different device and the two functional digests compared.
  SpotCheck,
  /// Dual modular redundancy: every completed job is re-executed on a
  /// different device; a mismatch is broken by a third execution
  /// (majority-of-2-then-tiebreak vote).
  Dmr,
};

const char* integrity_policy_name(IntegrityPolicy policy);

struct FleetConfig {
  /// The per-device serving configuration (classes, arrival process, queue
  /// bounds, controller, class breakers, fault plan, ...). base.device is
  /// the spec template when `devices` is empty. base.collect_metrics turns
  /// the fleet observability plane on: every device gets its own
  /// obs::TelemetryObserver + serving instruments, and the run records a
  /// per-job lifecycle trace plus fleet-scope latency breakdowns — all
  /// zero-perturbation (the FleetReport bytes are identical either way;
  /// golden tests pin this).
  serve::ServiceConfig base;

  /// Per-device specs. Empty = a 1-device fleet of base.device. Mixed specs
  /// give a heterogeneous fleet.
  std::vector<gpu::DeviceSpec> devices;

  PlacementPolicy placement = PlacementPolicy::RoundRobin;
  /// Copy-queue weight of the copy-contention-aware policy.
  double copy_penalty = 2.0;
  /// Idle devices steal the newest queued job from the deepest peer queue.
  bool work_stealing = false;
  /// One health breaker per device over its job outcomes; tripped devices
  /// are quarantined and their queues rebalanced.
  bool device_breaker_enabled = false;
  fault::CircuitBreaker::Config device_breaker;

  /// Per-device fault plans. Empty = the legacy scheme (base.fault_plan
  /// with the seed offset by the device index). Non-empty: must have
  /// exactly num_devices() entries; device d runs device_fault_plans[d]
  /// verbatim, and a disabled entry runs that device fault-free. This is
  /// the only way to give devices distinct lifecycle faults (crash/flap/
  /// degrade schedules).
  std::vector<fault::FaultPlan> device_fault_plans;

  /// Maximum failover hops per job. Each time a job's device goes down the
  /// job is requeued to a healthy survivor, consuming one unit; at 0
  /// remaining (or when no survivor exists) the job terminates as
  /// ShedFailoverExhausted.
  int failover_budget = 3;

  /// Hedged dispatch: once a class has `hedge_min_samples` completed
  /// winners, a job still inflight after `hedge_threshold` x the class's
  /// running mean service time gets a second attempt on an idle healthy
  /// peer. First completion wins; the loser is cancelled.
  bool hedging = false;
  double hedge_threshold = 2.0;
  std::size_t hedge_min_samples = 4;

  /// Integrity pipeline (silent-data-corruption detection). Verification
  /// re-executions are extra attempts of the same job on a different
  /// device, consume the per-job failover_budget, and never change the
  /// winning completion's timing — the pipeline is pure post-completion
  /// bookkeeping on the virtual clock.
  IntegrityPolicy integrity = IntegrityPolicy::Trust;
  /// Fraction of completed jobs spot-checked under SpotCheck (seeded,
  /// per-job deterministic draw).
  double spotcheck_rate = 0.1;
  /// A device whose SDC score (EWMA of vote blame attributions) reaches
  /// this threshold is permanently blocklisted.
  double sdc_blocklist_threshold = 0.8;
  /// EWMA smoothing factor for the per-device SDC score.
  double sdc_score_alpha = 0.5;

  /// True when any fleet fault-domain mechanism is configured: per-device
  /// plans, lifecycle faults on the base plan, or hedging. Gates the extra
  /// FleetReport fields so zero-chaos runs render byte-identically to
  /// pre-fault-domain reports (the pinned goldens).
  bool fault_domains_active() const;

  /// True when the integrity pipeline can do anything: a non-Trust policy,
  /// or an SDC fault configured on any device plan. Gates digest
  /// computation, verification dispatch, and the FleetReport integrity
  /// fields so Trust-plus-clean-plans runs render byte-identically to
  /// pre-integrity reports (the pinned goldens).
  bool integrity_active() const;

  std::size_t num_devices() const {
    return devices.empty() ? 1 : devices.size();
  }
  /// Resolved per-device specs (devices, or {base.device} when empty).
  std::vector<gpu::DeviceSpec> device_specs() const;
  /// Replaces `devices` with `n` copies of base.device.
  void resize_homogeneous(std::size_t n);

  /// Throws hq::Error on an unusable configuration.
  void validate() const;
};

/// One device's raw outputs (the report is also nested in FleetReport).
struct FleetDeviceResult {
  serve::ServeReport report;
  check::ServeAccounting accounting;
  std::shared_ptr<trace::Recorder> trace;
  fault::FaultStats fault_stats;
  /// This device's telemetry observer (finalized) and its registry —
  /// `metrics` aliases telemetry->registry(). Null unless
  /// base.collect_metrics.
  std::shared_ptr<obs::TelemetryObserver> telemetry;
  std::shared_ptr<obs::MetricsRegistry> metrics;
};

struct FleetResult {
  FleetReport report;
  std::vector<FleetDeviceResult> devices;
  /// Every job in arrival order (job_id == arrival index == trace app id).
  std::vector<serve::JobRecord> jobs;
  /// Terminal owner device per job (the device that accounted it); -1 for
  /// ShedNoDevice and ShedFailoverExhausted jobs, which are accounted at
  /// the fleet level only.
  std::vector<int> owners;
  /// Per-job lifecycle chains (arrival -> placement -> hops -> dispatch ->
  /// terminal state). Null unless base.collect_metrics.
  std::shared_ptr<serve::JobLifecycleTracer> lifecycle;
  /// Fleet-scope metrics: job latency breakdowns (queue wait, placement,
  /// device service, turnaround) as histograms plus exact-percentile
  /// gauges, and fleet movement counters. Null unless base.collect_metrics.
  std::shared_ptr<obs::MetricsRegistry> fleet_metrics;
};

/// The cluster scheduler: one admission stream fanned out over a device
/// fleet under a single deterministic virtual clock.
class FleetService {
 public:
  explicit FleetService(FleetConfig config) : config_(std::move(config)) {}

  /// Runs one fleet serving experiment; deterministic per configuration.
  FleetResult run();

  const FleetConfig& config() const { return config_; }

 private:
  struct Shard;
  struct RunState;
  static sim::Task generator_task(RunState* st);
  /// Runs one dispatch attempt (primary, failover re-dispatches reuse the
  /// same path, hedges are extra attempts of the same job).
  static sim::Task job_lifecycle(RunState* st, std::size_t attempt_index);

  FleetConfig config_;
};

}  // namespace hq::fleet
