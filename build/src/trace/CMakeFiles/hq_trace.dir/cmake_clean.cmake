file(REMOVE_RECURSE
  "CMakeFiles/hq_trace.dir/ascii_timeline.cpp.o"
  "CMakeFiles/hq_trace.dir/ascii_timeline.cpp.o.d"
  "CMakeFiles/hq_trace.dir/chrome_trace.cpp.o"
  "CMakeFiles/hq_trace.dir/chrome_trace.cpp.o.d"
  "CMakeFiles/hq_trace.dir/trace.cpp.o"
  "CMakeFiles/hq_trace.dir/trace.cpp.o.d"
  "libhq_trace.a"
  "libhq_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hq_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
