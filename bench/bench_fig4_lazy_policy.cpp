// Figure 4 — performance improvement of heterogeneous workloads over
// serialized execution under the lazy (LEFTOVER) resource utilization
// policy, for half-concurrent (NA = 2*NS) and full-concurrent (NA = NS)
// scenarios, across all six application pairings and increasing workload
// sizes.
//
// Paper result: up to 56% improvement (23.6% average) half-concurrent, up to
// 59% (24.8% average) full-concurrent, from Hyper-Q + the hardware block
// scheduler alone (no resource-sharing machinery).
#include <cstdio>

#include "bench/common.hpp"
#include "common/stats.hpp"

int main(int argc, char** argv) {
  using namespace hq;
  using namespace hq::bench;

  const int jobs = parse_jobs(argc, argv);
  print_header("Figure 4",
               "heterogeneous workload speedup vs serialized execution "
               "(lazy resource utilization policy)");

  // Flatten pairings x NA x {serial, half, full} into one run list.
  struct Cell {
    Pair pair;
    int na;
  };
  std::vector<Cell> cells;
  for (const Pair& pair : hetero_pairs()) {
    for (int na : {4, 8, 16, 32}) cells.push_back({pair, na});
  }
  const auto results = run_indexed(jobs, cells.size() * 3, [&](std::size_t i) {
    const Cell& c = cells[i / 3];
    const int ns = i % 3 == 0 ? 1 : (i % 3 == 1 ? c.na / 2 : c.na);
    return run_pair(c.pair, c.na, ns);
  });

  RunningStats half_stats, full_stats;
  TextTable table;
  table.set_header({"pair", "NA", "serial(ms)", "half NS", "half(ms)",
                    "half impr", "full(ms)", "full impr"});

  for (std::size_t c = 0; c < cells.size(); ++c) {
    const Pair& pair = cells[c].pair;
    const int na = cells[c].na;
    const auto& serial = results[c * 3 + 0];
    const auto& half = results[c * 3 + 1];
    const auto& full = results[c * 3 + 2];

    const double serial_ms = to_milliseconds(serial.makespan);
    const double half_impr =
        fw::improvement(static_cast<double>(serial.makespan),
                        static_cast<double>(half.makespan));
    const double full_impr =
        fw::improvement(static_cast<double>(serial.makespan),
                        static_cast<double>(full.makespan));
    half_stats.add(half_impr);
    full_stats.add(full_impr);

    table.add_row({pair.label(), std::to_string(na),
                   format_fixed(serial_ms, 2), std::to_string(na / 2),
                   format_fixed(to_milliseconds(half.makespan), 2),
                   format_percent(half_impr),
                   format_fixed(to_milliseconds(full.makespan), 2),
                   format_percent(full_impr)});
    if (c % 4 == 3) table.add_separator();  // one group per pairing
  }
  std::printf("%s\n", table.render().c_str());

  std::printf("half-concurrent: avg %s, max %s   (paper: avg +23.6%%, max +56%%)\n",
              format_percent(half_stats.mean()).c_str(),
              format_percent(half_stats.max()).c_str());
  std::printf("full-concurrent: avg %s, max %s   (paper: avg +24.8%%, max +59%%)\n",
              format_percent(full_stats.mean()).c_str(),
              format_percent(full_stats.max()).c_str());
  return 0;
}
