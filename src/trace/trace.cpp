#include "trace/trace.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "common/hash.hpp"

namespace hq::trace {

const char* span_kind_name(SpanKind kind) {
  switch (kind) {
    case SpanKind::MemcpyHtoD: return "HtoD";
    case SpanKind::MemcpyDtoH: return "DtoH";
    case SpanKind::Kernel: return "kernel";
    case SpanKind::HostCompute: return "host";
    case SpanKind::LockWait: return "lock-wait";
  }
  return "?";
}

std::uint64_t digest(const Recorder& recorder) {
  Fnv1a64 h;
  h.mix_u64(recorder.size());
  for (const Span& s : recorder.spans()) {
    h.mix_i64(s.lane);
    h.mix_i64(s.app_id);
    h.mix_u64(static_cast<std::uint64_t>(s.kind));
    h.mix_string(s.name);
    h.mix_u64(s.begin);
    h.mix_u64(s.end);
  }
  return h.value();
}

void Recorder::add(Span span) {
  HQ_CHECK_MSG(span.end >= span.begin,
               "span '" << span.name << "' ends before it begins");
  spans_.push_back(std::move(span));
}

std::vector<Span> Recorder::by_app(std::int32_t app_id) const {
  std::vector<Span> out;
  std::copy_if(spans_.begin(), spans_.end(), std::back_inserter(out),
               [app_id](const Span& s) { return s.app_id == app_id; });
  return out;
}

std::vector<Span> Recorder::by_kind(SpanKind kind) const {
  std::vector<Span> out;
  std::copy_if(spans_.begin(), spans_.end(), std::back_inserter(out),
               [kind](const Span& s) { return s.kind == kind; });
  return out;
}

std::vector<Span> Recorder::by_lane(std::int32_t lane) const {
  std::vector<Span> out;
  std::copy_if(spans_.begin(), spans_.end(), std::back_inserter(out),
               [lane](const Span& s) { return s.lane == lane; });
  return out;
}

std::optional<TimeNs> Recorder::min_time() const {
  if (spans_.empty()) return std::nullopt;
  TimeNs t = spans_.front().begin;
  for (const Span& s : spans_) t = std::min(t, s.begin);
  return t;
}

std::optional<TimeNs> Recorder::max_time() const {
  if (spans_.empty()) return std::nullopt;
  TimeNs t = spans_.front().end;
  for (const Span& s : spans_) t = std::max(t, s.end);
  return t;
}

}  // namespace hq::trace
