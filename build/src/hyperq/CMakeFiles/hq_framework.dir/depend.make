# Empty dependencies file for hq_framework.
# This may be replaced when dependencies are built.
