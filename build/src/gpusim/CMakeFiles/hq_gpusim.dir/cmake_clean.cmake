file(REMOVE_RECURSE
  "CMakeFiles/hq_gpusim.dir/block_scheduler.cpp.o"
  "CMakeFiles/hq_gpusim.dir/block_scheduler.cpp.o.d"
  "CMakeFiles/hq_gpusim.dir/copy_engine.cpp.o"
  "CMakeFiles/hq_gpusim.dir/copy_engine.cpp.o.d"
  "CMakeFiles/hq_gpusim.dir/device.cpp.o"
  "CMakeFiles/hq_gpusim.dir/device.cpp.o.d"
  "CMakeFiles/hq_gpusim.dir/device_spec.cpp.o"
  "CMakeFiles/hq_gpusim.dir/device_spec.cpp.o.d"
  "libhq_gpusim.a"
  "libhq_gpusim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hq_gpusim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
