// Device event observation interface.
//
// The simulated device (front end, copy engines, block scheduler, power
// integrator) reports every externally meaningful state transition through
// this interface. The primary client is the hq_check invariant layer, which
// replays the event stream against an independent model of the hardware
// contract (FIFO copy engines, LEFTOVER dispatch, SMX resource conservation,
// energy ≡ ∫power) and flags any divergence; see src/check/invariants.hpp.
//
// All callbacks default to no-ops so observers implement only what they
// need. Callbacks fire synchronously at the instant of the transition and
// must not mutate device state.
#pragma once

#include "common/units.hpp"
#include "gpusim/smx.hpp"
#include "gpusim/types.hpp"

namespace hq::gpu {

struct KernelExec;

/// Operation categories visible to observers (mirrors the device's internal
/// op kinds without exposing them).
enum class ObservedOp : std::uint8_t { Kernel, Copy, Marker };

inline const char* observed_op_name(ObservedOp kind) {
  switch (kind) {
    case ObservedOp::Kernel: return "kernel";
    case ObservedOp::Copy: return "copy";
    case ObservedOp::Marker: return "marker";
  }
  return "?";
}

class DeviceObserver {
 public:
  virtual ~DeviceObserver() = default;

  // --- stream front end ----------------------------------------------------
  /// An operation entered a stream's submission FIFO.
  virtual void on_op_submitted(TimeNs /*now*/, OpId /*op*/, StreamId /*stream*/,
                               ObservedOp /*kind*/) {}
  /// An operation finished and left its stream's FIFO.
  virtual void on_op_completed(TimeNs /*now*/, OpId /*op*/, StreamId /*stream*/) {}

  // --- copy engines --------------------------------------------------------
  /// A transaction entered a copy engine's queue.
  virtual void on_copy_enqueued(TimeNs /*now*/, CopyDirection /*dir*/,
                                OpId /*op*/, StreamId /*stream*/, Bytes /*bytes*/) {}
  /// A transaction finished service; [begin, end] is the service interval.
  virtual void on_copy_served(TimeNs /*now*/, CopyDirection /*dir*/, OpId /*op*/,
                              TimeNs /*begin*/, TimeNs /*end*/, Bytes /*bytes*/) {}

  // --- block scheduler -----------------------------------------------------
  /// A kernel left its work queue and entered the block scheduler.
  virtual void on_kernel_dispatched(TimeNs /*now*/, OpId /*op*/,
                                    int /*priority*/, std::uint64_t /*blocks*/,
                                    const BlockDemand& /*demand*/) {}
  /// `count` blocks of a dispatched kernel became resident on an SMX.
  virtual void on_blocks_placed(TimeNs /*now*/, OpId /*op*/, int /*smx*/,
                                int /*count*/, const BlockDemand& /*demand*/) {}
  /// `count` blocks finished and released their SMX resources.
  virtual void on_blocks_released(TimeNs /*now*/, OpId /*op*/, int /*smx*/,
                                  int /*count*/, const BlockDemand& /*demand*/) {}
  /// A kernel's last block finished.
  virtual void on_kernel_completed(TimeNs /*now*/, const KernelExec& /*exec*/) {}

  // --- power/energy integration -------------------------------------------
  /// The device is about to change state at `now`; `power` and `occupancy`
  /// are the values that were in effect since the previous integration step
  /// (power is piecewise constant between state changes).
  virtual void on_power_integrated(TimeNs /*now*/, Watts /*power*/,
                                   double /*occupancy*/) {}
};

}  // namespace hq::gpu
