// Figure 10 — active power for the {gaussian, needle} 32-application
// workload on 32 streams, comparing the default behaviour with the memory
// synchronization technique.
//
// Paper result: the synchronization approach does not significantly change
// power draw; since it improves performance in most cases, energy drops —
// 10.4% on average and up to 25.7% (vs serialized) when combining
// concurrency with synchronized transfers.
#include <cstdio>

#include "bench/common.hpp"

namespace {

hq::fw::HarnessResult run_scenario(bool memory_sync, int ns) {
  using namespace hq;
  using namespace hq::bench;
  fw::HarnessConfig config = timing_config(ns);
  config.power_period = 15 * kMillisecond;
  config.memory_sync = memory_sync;
  config.sensor = nvml::SensorOptions{};
  Rng rng(42);
  const int counts[] = {16, 16};
  const auto schedule = fw::make_schedule(fw::Order::NaiveFifo, counts, &rng);
  const auto workload = rodinia::build_workload(
      schedule, {"gaussian", "needle"}, {{}, {}});
  return fw::Harness(config).run(workload);
}

}  // namespace

int main() {
  using namespace hq;
  using namespace hq::bench;

  print_header("Figure 10",
               "active power, {gaussian, needle}, 32 apps on 32 streams: "
               "default vs memory synchronization");

  const auto base = run_scenario(false, 32);
  const auto sync = run_scenario(true, 32);
  const auto serial = run_scenario(false, 1);

  std::printf("power trace (W) sampled at 66.7 Hz:\n");
  TextTable trace_table;
  trace_table.set_header({"t (ms)", "default", "memory sync"});
  const auto& longest =
      base.power_trace.size() >= sync.power_trace.size() ? base.power_trace
                                                         : sync.power_trace;
  auto sample_at = [](const std::vector<fw::PowerSample>& samples,
                      std::size_t i) -> std::string {
    if (i >= samples.size()) return "-";
    return hq::format_fixed(samples[i].watts, 1);
  };
  for (std::size_t i = 0; i < longest.size(); ++i) {
    trace_table.add_row({format_fixed(to_milliseconds(longest[i].time), 0),
                         sample_at(base.power_trace, i),
                         sample_at(sync.power_trace, i)});
  }
  std::printf("%s\n", trace_table.render().c_str());

  TextTable summary;
  summary.set_header({"configuration", "makespan", "avg power", "peak power",
                      "energy (exact)", "energy vs serialized"});
  auto add = [&summary, &serial](const char* name,
                                 const fw::HarnessResult& r) {
    summary.add_row({name, format_duration(r.makespan),
                     format_fixed(r.average_power, 1) + " W",
                     format_fixed(r.peak_power, 1) + " W",
                     format_fixed(r.energy_exact, 2) + " J",
                     format_percent(fw::improvement(serial.energy_exact,
                                                    r.energy_exact))});
  };
  add("serialized", serial);
  add("default concurrent", base);
  add("memory synchronization", sync);
  std::printf("%s\n", summary.render().c_str());
  std::printf("paper: synchronization leaves power essentially unchanged "
              "while improving performance, so energy drops (avg -10.4%%, "
              "up to -25.7%% vs serialized)\n");
  return 0;
}
