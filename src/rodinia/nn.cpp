#include "rodinia/nn.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/check.hpp"
#include "common/rng.hpp"

namespace hq::rodinia {
namespace {

constexpr int kEuclidBlock = 256;

}  // namespace

NnApp::NnApp(NnParams params) : RodiniaApp("nn"), params_(params) {
  HQ_CHECK(params_.records >= 1);
  HQ_CHECK(params_.k >= 1 && params_.k <= params_.records);
  const auto records = static_cast<Bytes>(params_.records);
  // Interleaved (lat, lng) pairs, like Rodinia's LatLong struct.
  add_buffer("locations", records * 2 * sizeof(float), /*to_device=*/true,
             /*to_host=*/false);
  add_buffer("distances", records * sizeof(float), /*to_device=*/false,
             /*to_host=*/true);
}

void NnApp::initializeHostMemory(fw::Context& ctx) {
  auto locations = host_view<float>(ctx, "locations");
  Rng rng(params_.seed);
  for (int i = 0; i < params_.records; ++i) {
    locations[2 * i] = static_cast<float>(rng.next_double_in(0.0, 64.0));
    locations[2 * i + 1] = static_cast<float>(rng.next_double_in(0.0, 128.0));
  }
}

void NnApp::euclid_body(fw::Context* ctx) {
  auto locations = device_view<float>(*ctx, "locations");
  auto distances = device_view<float>(*ctx, "distances");
  for (int i = 0; i < params_.records; ++i) {
    const float dlat = locations[2 * i] - params_.lat;
    const float dlng = locations[2 * i + 1] - params_.lng;
    distances[i] = std::sqrt(dlat * dlat + dlng * dlng);
  }
}

sim::Task NnApp::executeKernel(fw::Context& ctx) {
  std::function<void()> body;
  if (ctx.functional) body = [this, ctx_ptr = &ctx] { euclid_body(ctx_ptr); };
  const auto grid_x = static_cast<std::uint32_t>(
      (params_.records + kEuclidBlock - 1) / kEuclidBlock);
  rt::LaunchConfig cfg =
      make_launch("euclid", gpu::Dim3{grid_x, 1, 1},
                  gpu::Dim3{kEuclidBlock, 1, 1}, kEuclid, std::move(body));
  gpu::OpTag tag{ctx.app_id, "euclid"};
  auto op = ctx.runtime->launch_kernel(ctx.stream, std::move(cfg),
                                       std::move(tag));
  co_await op;
  co_await ctx.runtime->stream_synchronize(ctx.stream);
}

bool NnApp::verify(fw::Context& ctx) const {
  auto* self = const_cast<NnApp*>(this);
  auto distances = self->host_view<float>(ctx, "distances");
  auto locations = self->host_view<float>(ctx, "locations");

  // Select k nearest from the device-computed distances (the host-side step
  // of Rodinia nn).
  std::vector<int> order(static_cast<std::size_t>(params_.records));
  std::iota(order.begin(), order.end(), 0);
  std::partial_sort(order.begin(), order.begin() + params_.k, order.end(),
                    [&distances](int x, int y) {
                      if (distances[x] != distances[y]) {
                        return distances[x] < distances[y];
                      }
                      return x < y;
                    });
  nearest_.assign(order.begin(), order.begin() + params_.k);

  // Independent brute-force check against the raw coordinates.
  std::vector<std::pair<double, int>> brute;
  brute.reserve(static_cast<std::size_t>(params_.records));
  for (int i = 0; i < params_.records; ++i) {
    const double dlat = locations[2 * i] - params_.lat;
    const double dlng = locations[2 * i + 1] - params_.lng;
    brute.emplace_back(std::sqrt(dlat * dlat + dlng * dlng), i);
  }
  std::sort(brute.begin(), brute.end());
  for (int i = 0; i < params_.k; ++i) {
    // Compare by distance value (float/double rounding may swap the order
    // of near-ties, which is fine for a k-NN result).
    const double expected = brute[i].first;
    const double actual = distances[nearest_[i]];
    if (std::abs(expected - actual) > 1e-3) return false;
  }
  return true;
}

}  // namespace hq::rodinia
