// Run-wide metric primitives (library hq_obs).
//
// A MetricsRegistry holds four metric shapes, all fully deterministic:
//
//   * Counter   — monotonically increasing 64-bit event count;
//   * Gauge     — last-written double with peak tracking;
//   * Histogram — fixed upper-bound buckets over doubles (used for
//                 copy-queue wait times in nanoseconds);
//   * Series    — an event-driven time series: a point is recorded only
//                 when the value changes, so the series is exactly the
//                 piecewise-constant trajectory of the underlying quantity
//                 with no sampling-rate artefacts.
//
// Registration order is the canonical iteration/export order, and every
// stored value derives from the deterministic simulation, so a report
// rendered from a registry is byte-identical across runs and job counts
// (the PR-2 determinism contract extended to telemetry).
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

#include "common/units.hpp"

namespace hq::obs {

/// Monotonic event count.
class Counter {
 public:
  void add(std::uint64_t delta = 1) { value_ += delta; }
  std::uint64_t value() const { return value_; }

 private:
  std::uint64_t value_ = 0;
};

/// Last-written value with an all-time peak.
class Gauge {
 public:
  void set(double v) {
    value_ = v;
    if (!written_ || v > peak_) peak_ = v;
    written_ = true;
  }
  void add(double delta) { set(value_ + delta); }
  double value() const { return value_; }
  double peak() const { return peak_; }

 private:
  double value_ = 0.0;
  double peak_ = 0.0;
  bool written_ = false;
};

/// Fixed-bucket histogram: counts()[i] is the number of samples v with
/// v <= bounds()[i] (and > bounds()[i-1]); counts().back() is the overflow
/// bucket (> bounds().back()).
class Histogram {
 public:
  /// `upper_bounds` must be non-empty and strictly increasing.
  explicit Histogram(std::vector<double> upper_bounds);

  void record(double v);

  /// Adds another histogram's samples into this one, bucket by bucket.
  /// Both histograms must have identical bounds (the same instrument shape
  /// on every fleet device); merging is commutative and associative, so the
  /// fleet rollup is independent of device merge order.
  void merge(const Histogram& other);

  const std::vector<double>& bounds() const { return bounds_; }
  /// Size bounds().size() + 1; last entry is the overflow bucket.
  const std::vector<std::uint64_t>& counts() const { return counts_; }
  std::uint64_t count() const { return count_; }
  double sum() const { return sum_; }

 private:
  std::vector<double> bounds_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
};

/// Event-driven time series of a piecewise-constant quantity.
class Series {
 public:
  struct Point {
    TimeNs time = 0;
    double value = 0.0;
  };

  /// Records the value at `t`. Consecutive samples with an unchanged value
  /// are dropped; several samples at the same instant coalesce to the last
  /// one (the value in effect after the instant's transitions). `t` must not
  /// decrease between calls.
  void sample(TimeNs t, double value);

  const std::vector<Point>& points() const { return points_; }
  bool empty() const { return points_.empty(); }
  double last() const { return points_.empty() ? 0.0 : points_.back().value; }
  double peak() const { return peak_; }

 private:
  std::vector<Point> points_;
  double peak_ = 0.0;
};

enum class MetricKind : std::uint8_t { Counter, Gauge, Histogram, Series };

const char* metric_kind_name(MetricKind kind);

/// Named metric store with deterministic (registration-order) iteration.
/// Accessors create on first use and return the existing instrument on
/// later calls; re-registering a name as a different kind throws.
class MetricsRegistry {
 public:
  struct Entry {
    std::string name;
    std::string help;
    MetricKind kind = MetricKind::Counter;
    std::variant<Counter, Gauge, Histogram, Series> metric;
  };

  Counter& counter(std::string_view name, std::string_view help = {});
  Gauge& gauge(std::string_view name, std::string_view help = {});
  /// `upper_bounds` is consulted only on first registration.
  Histogram& histogram(std::string_view name, std::vector<double> upper_bounds,
                       std::string_view help = {});
  Series& series(std::string_view name, std::string_view help = {});

  /// nullptr when the name was never registered.
  const Entry* find(std::string_view name) const;
  std::size_t size() const { return entries_.size(); }

  /// Visits entries in registration order (the canonical export order).
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (const Entry& e : entries_) fn(e);
  }

 private:
  Entry& entry(std::string_view name, std::string_view help, MetricKind kind,
               std::variant<Counter, Gauge, Histogram, Series> fresh);

  std::deque<Entry> entries_;  ///< deque: stable references across growth
  std::map<std::string, std::size_t, std::less<>> index_;
};

}  // namespace hq::obs
