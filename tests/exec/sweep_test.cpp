// Determinism-under-parallelism: the same sweep grid must produce
// byte-identical outcomes, digests, and rendered reports at any job count,
// including heavy oversubscription (more jobs than hardware threads).
#include <gtest/gtest.h>

#include <vector>

#include "common/check.hpp"
#include "exec/sweep.hpp"
#include "exec/thread_pool.hpp"

namespace hq::exec {
namespace {

// Small but non-trivial grid: 2 app sets x 1 NA x 2 NS x 2 orders x
// 2 memsync x 1 seed = 16 points, tiny app inputs for speed.
SweepGrid test_grid() {
  SweepGrid grid;
  grid.app_sets = {{"gaussian", "nn"}, {"needle", "srad"}};
  grid.na = {4};
  grid.ns = {2, 4};
  grid.orders = {fw::Order::NaiveFifo, fw::Order::RandomShuffle};
  grid.memory_sync = {false, true};
  grid.seeds = {42};
  grid.base.functional = false;
  grid.base.sensor.noise_stddev = 0.0;
  grid.base.sensor.quantization = 0.0;
  grid.params.size = 64;
  grid.params.iterations = 2;
  return grid;
}

TEST(SweepExpandTest, RowMajorOrderAndIndexing) {
  const SweepGrid grid = test_grid();
  const auto points = SweepRunner::expand(grid);
  ASSERT_EQ(points.size(), 16u);
  for (std::size_t i = 0; i < points.size(); ++i) {
    EXPECT_EQ(points[i].index, i);
  }
  // app_sets is the outermost axis, seeds the innermost.
  EXPECT_EQ(points[0].apps, (std::vector<std::string>{"gaussian", "nn"}));
  EXPECT_EQ(points[8].apps, (std::vector<std::string>{"needle", "srad"}));
  // Within one app set: ns varies slowest of the remaining axes...
  EXPECT_EQ(points[0].ns, 2);
  EXPECT_EQ(points[4].ns, 4);
  // ...then order, then memory_sync.
  EXPECT_EQ(points[0].order, fw::Order::NaiveFifo);
  EXPECT_EQ(points[2].order, fw::Order::RandomShuffle);
  EXPECT_FALSE(points[0].memory_sync);
  EXPECT_TRUE(points[1].memory_sync);
}

TEST(SweepExpandTest, CountsSplitEvenlyWithRemainderToLaterTypes) {
  SweepPoint p;
  p.apps = {"gaussian", "nn"};
  p.na = 7;
  EXPECT_EQ(p.counts(), (std::vector<int>{3, 4}));
  p.apps = {"gaussian", "nn", "srad"};
  p.na = 8;
  EXPECT_EQ(p.counts(), (std::vector<int>{2, 3, 3}));
  p.na = 3;
  EXPECT_EQ(p.counts(), (std::vector<int>{1, 1, 1}));
}

TEST(SweepExpandTest, RejectsMalformedGrids) {
  SweepGrid grid = test_grid();
  grid.app_sets = {};
  EXPECT_THROW(SweepRunner::expand(grid), Error);

  grid = test_grid();
  grid.app_sets = {{"no_such_app"}};
  EXPECT_THROW(SweepRunner::expand(grid), Error);

  grid = test_grid();
  grid.na = {1};  // two types need at least two instances
  EXPECT_THROW(SweepRunner::expand(grid), Error);

  grid = test_grid();
  grid.ns = {0};
  EXPECT_THROW(SweepRunner::expand(grid), Error);
}

TEST(SweepRunnerTest, IdenticalResultsAtJobs128AndOversubscribed) {
  const SweepGrid grid = test_grid();
  SweepRunner runner;

  const auto serial = runner.run(grid, {.jobs = 1, .progress = {}, .journal_path = {}, .resume = false});
  ASSERT_EQ(serial.size(), 16u);
  for (const SweepOutcome& o : serial) {
    EXPECT_GT(o.makespan, 0u) << o.point.label();
    EXPECT_NE(o.trace_digest, 0u) << o.point.label();
  }

  // 2 and 8 workers, plus deliberate oversubscription: far more jobs than
  // this machine has hardware threads. Outcomes must be bit-identical.
  const int oversub = 4 * ThreadPool::hardware_jobs() + 3;
  for (const int jobs : {2, 8, oversub}) {
    const auto parallel = runner.run(grid, {.jobs = jobs, .progress = {}, .journal_path = {}, .resume = false});
    ASSERT_EQ(parallel.size(), serial.size()) << "jobs=" << jobs;
    for (std::size_t i = 0; i < serial.size(); ++i) {
      EXPECT_EQ(parallel[i].point.index, serial[i].point.index);
      EXPECT_EQ(parallel[i].trace_digest, serial[i].trace_digest)
          << "jobs=" << jobs << " point " << serial[i].point.label();
      EXPECT_EQ(parallel[i].makespan, serial[i].makespan);
      EXPECT_DOUBLE_EQ(parallel[i].energy_exact, serial[i].energy_exact);
      EXPECT_DOUBLE_EQ(parallel[i].average_power, serial[i].average_power);
      EXPECT_DOUBLE_EQ(parallel[i].peak_power, serial[i].peak_power);
    }
    EXPECT_EQ(combined_digest(parallel), combined_digest(serial))
        << "jobs=" << jobs;
    // The full rendered aggregate must match byte for byte.
    EXPECT_EQ(render_report(parallel), render_report(serial))
        << "jobs=" << jobs;
  }
}

TEST(SweepRunnerTest, MetricsJsonByteIdenticalAcrossJobCounts) {
  // Telemetry extends the PR-2 contract: with collect_telemetry on, the
  // rendered sweep metrics report must also be byte-identical at any --jobs.
  SweepGrid grid = test_grid();
  grid.app_sets = {{"gaussian", "nn"}};
  grid.base.collect_telemetry = true;
  SweepRunner runner;
  const auto serial = runner.run(grid, {.jobs = 1, .progress = {}, .journal_path = {}, .resume = false});
  ASSERT_EQ(serial.size(), 8u);
  for (const SweepOutcome& o : serial) {
    EXPECT_GT(o.mean_htod_latency_ns, 0.0) << o.point.label();
    EXPECT_GT(o.peak_copy_queue_depth_htod, 0.0) << o.point.label();
  }
  const std::string serial_json = sweep_metrics_json(serial);
  for (const int jobs : {2, 4}) {
    const auto parallel = runner.run(grid, {.jobs = jobs, .progress = {}, .journal_path = {}, .resume = false});
    EXPECT_EQ(sweep_metrics_json(parallel), serial_json) << "jobs=" << jobs;
  }
}

TEST(SweepRunnerTest, ProgressFiresInSubmissionOrder) {
  const SweepGrid grid = test_grid();
  std::vector<std::size_t> indices;
  std::vector<std::size_t> dones;
  SweepRunner::Options options;
  options.jobs = 8;
  options.progress = [&](const SweepOutcome& o, std::size_t done,
                         std::size_t total) {
    indices.push_back(o.point.index);
    dones.push_back(done);
    EXPECT_EQ(total, 16u);
  };
  const auto outcomes = SweepRunner().run(grid, options);
  ASSERT_EQ(indices.size(), outcomes.size());
  for (std::size_t i = 0; i < indices.size(); ++i) {
    EXPECT_EQ(indices[i], i);
    EXPECT_EQ(dones[i], i + 1);
  }
}

TEST(SweepRunnerTest, JobsZeroMeansHardwareConcurrency) {
  SweepGrid grid = test_grid();
  grid.app_sets = {{"gaussian", "nn"}};
  grid.ns = {2};
  grid.orders = {fw::Order::NaiveFifo};
  grid.memory_sync = {false};
  SweepRunner runner;
  const auto hw = runner.run(grid, {.jobs = 0, .progress = {}, .journal_path = {}, .resume = false});
  const auto serial = runner.run(grid, {.jobs = 1, .progress = {}, .journal_path = {}, .resume = false});
  ASSERT_EQ(hw.size(), 1u);
  EXPECT_EQ(combined_digest(hw), combined_digest(serial));
  EXPECT_THROW(runner.run(grid, {.jobs = -1, .progress = {}, .journal_path = {}, .resume = false}), Error);
}

TEST(SweepRunnerTest, CombinedDigestIsOrderAndValueSensitive) {
  const SweepGrid grid = test_grid();
  const auto points = SweepRunner::expand(grid);
  std::vector<SweepOutcome> a;
  for (std::size_t i = 0; i < 3; ++i) {
    a.push_back(SweepRunner::run_point(grid, points[i]));
  }
  auto b = a;
  std::swap(b[0], b[1]);
  EXPECT_NE(combined_digest(a), combined_digest(b));
  b = a;
  b[2].trace_digest ^= 1;
  EXPECT_NE(combined_digest(a), combined_digest(b));
}

}  // namespace
}  // namespace hq::exec
