// TelemetryObserver: run-wide counters, time-series, and per-app
// interleave attribution derived from the device event stream.
//
// The paper's core results are all explained by hidden device state:
// copy-queue interleaving stretches effective transfer latency Le up to 8x
// (Eq. 1-2, Figs. 1/6), LEFTOVER placement governs oversubscription
// (Figs. 4/5), and power tracks concurrency (Figs. 9/10). This observer
// makes that state inspectable: it attaches to a gpu::Device (alongside the
// invariant checker, through ObserverFanout) and derives
//
//   * per-direction copy-queue depth series (queued + in-service),
//   * per-transaction queue-wait histograms (service begin - enqueue),
//   * resident-block and thread-occupancy series,
//   * the piecewise-constant power trajectory and its energy integral,
//   * submission/completion counters per op kind and direction,
//   * per-app HtoD interleave attribution: the count and bytes of *foreign*
//     transfers served inside each app's [Tstart, Tend] HtoD window — the
//     mechanistic cause of the Le stretch the paper infers from profiles.
//
// Zero-perturbation contract: the observer never mutates device state, so
// attaching it leaves the simulated schedule — and every trace::digest —
// bit-identical. Pinned golden tests prove this.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "gpusim/device_spec.hpp"
#include "gpusim/observer.hpp"
#include "obs/metrics.hpp"

namespace hq::obs {

/// Copy-queue interleaving attributed to one application (HtoD direction,
/// the one the paper's Eq. 1-2 and Figure 6 analyse).
struct AppAttribution {
  std::int32_t app_id = -1;
  /// Eq. 1-2 window: service begin of the app's first HtoD transfer to
  /// service end of its last (Tstart, Tend).
  TimeNs htod_window_begin = 0;
  TimeNs htod_window_end = 0;
  std::uint64_t own_htod_count = 0;
  Bytes own_htod_bytes = 0;
  /// Foreign HtoD transfers whose service interval lands inside the window.
  std::uint64_t foreign_htod_count = 0;
  Bytes foreign_htod_bytes = 0;
};

class TelemetryObserver final : public gpu::DeviceObserver {
 public:
  explicit TelemetryObserver(const gpu::DeviceSpec& spec);

  // --- gpu::DeviceObserver -------------------------------------------------
  void on_op_submitted(TimeNs now, gpu::OpId op, gpu::StreamId stream,
                       gpu::ObservedOp kind) override;
  void on_op_completed(TimeNs now, gpu::OpId op, gpu::StreamId stream) override;
  void on_copy_enqueued(TimeNs now, gpu::CopyDirection dir, gpu::OpId op,
                        gpu::StreamId stream, std::int32_t app,
                        Bytes bytes) override;
  void on_copy_served(TimeNs now, gpu::CopyDirection dir, gpu::OpId op,
                      std::int32_t app, TimeNs begin, TimeNs end,
                      Bytes bytes) override;
  void on_blocks_placed(TimeNs now, gpu::OpId op, int smx, int count,
                        const gpu::BlockDemand& demand) override;
  void on_blocks_released(TimeNs now, gpu::OpId op, int smx, int count,
                          const gpu::BlockDemand& demand) override;
  void on_kernel_completed(TimeNs now, const gpu::KernelExec& exec) override;
  void on_power_integrated(TimeNs now, Watts power, double occupancy) override;
  void on_fault_injected(TimeNs now, gpu::ObservedFault kind,
                         std::uint64_t key, DurationNs penalty) override;

  /// Computes the per-app attribution and closes the power series; call once
  /// after the simulation drains. Idempotent.
  void finalize();

  MetricsRegistry& registry() { return registry_; }
  const MetricsRegistry& registry() const { return registry_; }
  /// Valid after finalize(); sorted by app_id, unattributed (-1) excluded.
  const std::vector<AppAttribution>& attribution() const {
    return attribution_;
  }
  std::uint64_t events_observed() const { return events_observed_; }

 private:
  struct CopyRec {
    std::int32_t app = -1;
    TimeNs begin = 0;
    TimeNs end = 0;
    Bytes bytes = 0;
  };

  gpu::DeviceSpec spec_;
  MetricsRegistry registry_;
  std::uint64_t events_observed_ = 0;
  std::uint64_t fault_events_seen_ = 0;
  bool finalized_ = false;

  // Copy-queue state, indexed by CopyDirection.
  std::int64_t queue_depth_[2] = {0, 0};
  std::unordered_map<gpu::OpId, TimeNs> enqueue_time_;

  // Block-scheduler occupancy state.
  std::int64_t resident_blocks_ = 0;
  std::int64_t resident_threads_ = 0;

  // Power integration: the observed value is piecewise constant over
  // [power_segment_begin_, now].
  TimeNs power_segment_begin_ = 0;
  Joules energy_j_ = 0.0;

  /// Served HtoD transfers in service order (FIFO ⇒ non-overlapping and
  /// sorted by begin and by end), the input to the attribution pass.
  std::vector<CopyRec> htod_served_;
  std::vector<AppAttribution> attribution_;
};

}  // namespace hq::obs
