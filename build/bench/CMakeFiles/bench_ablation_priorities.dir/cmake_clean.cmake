file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_priorities.dir/bench_ablation_priorities.cpp.o"
  "CMakeFiles/bench_ablation_priorities.dir/bench_ablation_priorities.cpp.o.d"
  "bench_ablation_priorities"
  "bench_ablation_priorities.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_priorities.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
