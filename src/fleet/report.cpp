#include "fleet/report.hpp"

#include <ostream>
#include <sstream>

#include "common/hash.hpp"
#include "obs/report.hpp"

namespace hq::fleet {
namespace {

double to_ms(DurationNs ns) {
  return static_cast<double>(ns) / static_cast<double>(kMillisecond);
}

}  // namespace

void render_fleet_report_text(std::ostream& os, const FleetReport& report) {
  os << "fleet report: " << report.workload << "\n";
  os << "  fleet: devices=" << report.num_devices
     << " placement=" << report.placement
     << " copy-penalty=" << obs::format_double(report.copy_penalty)
     << " steal=" << (report.work_stealing ? "on" : "off")
     << " device-breaker=" << (report.device_breaker_enabled ? "on" : "off")
     << " seed=" << report.seed << "\n";
  os << "  jobs: arrived=" << report.arrived << " admitted=" << report.admitted
     << " completed=" << report.completed << " (ok=" << report.completed_ok
     << " late=" << report.completed_late << ")\n";
  os << "  rejected: shed-queue-full=" << report.shed_queue_full
     << " shed-breaker=" << report.shed_breaker
     << " shed-no-device=" << report.shed_no_device
     << " timed-out-queued=" << report.timed_out_queued
     << " quarantined=" << report.quarantined << "\n";
  os << "  movement: requeued=" << report.requeued
     << " stolen=" << report.stolen
     << " device-breaker-trips=" << report.device_breaker_trips
     << " probes=" << report.device_breaker_probes
     << " rejected=" << report.device_breaker_rejected << "\n";
  if (report.fault_domains) {
    os << "  fault-domains: hedging=" << (report.hedging ? "on" : "off")
       << " failover-budget=" << report.failover_budget
       << " failed-over=" << report.failed_over
       << " shed-failover-exhausted=" << report.shed_failover_exhausted
       << " hedges=" << report.hedges_launched
       << " hedge-wins=" << report.hedge_wins
       << " hedges-cancelled=" << report.hedges_cancelled
       << " attempts-cancelled=" << report.attempts_cancelled << "\n";
  }
  if (report.integrity) {
    os << "  integrity: policy=" << report.integrity_policy
       << " spotcheck-rate=" << obs::format_double(report.spotcheck_rate)
       << " blocklist-threshold="
       << obs::format_double(report.sdc_blocklist_threshold)
       << " sdc-injected=" << report.sdc_injected
       << " sdc-detected=" << report.sdc_detected
       << " sdc-missed=" << report.sdc_missed
       << " reexecutions=" << report.reexecutions
       << " devices-blocklisted=" << report.devices_blocklisted << "\n";
  }
  os << "  slo: goodput=" << obs::format_double(report.goodput_per_sec)
     << "/s throughput=" << obs::format_double(report.throughput_per_sec)
     << "/s deadline-miss-ratio="
     << obs::format_double(report.deadline_miss_ratio) << "\n";
  os << "  run: total=" << obs::format_double(to_ms(report.total_time))
     << "ms drain=" << obs::format_double(to_ms(report.drain_time))
     << "ms energy=" << obs::format_double(report.energy)
     << "J energy/completed="
     << obs::format_double(report.energy_per_completed) << "J\n";
  os << "  placement-histogram:";
  for (std::size_t d = 0; d < report.placement_histogram.size(); ++d) {
    os << " d" << d << "=" << report.placement_histogram[d];
  }
  os << "\n";
  for (std::size_t d = 0; d < report.devices.size(); ++d) {
    const FleetDeviceStats& dev = report.devices[d];
    const serve::ServeReport& r = dev.report;
    os << "  device " << d << " (" << dev.name << "): arrived=" << r.arrived
       << " ok=" << r.completed_ok << " late=" << r.completed_late
       << " shed=" << (r.shed_queue_full + r.shed_breaker)
       << " quarantined=" << r.quarantined << " placed=" << dev.placed
       << " requeued=" << dev.requeued_in << "/" << dev.requeued_out
       << " stolen=" << dev.stolen_in << "/" << dev.stolen_out
       << " energy=" << obs::format_double(r.energy) << "J";
    if (!dev.breaker_final_state.empty()) {
      os << " breaker=" << dev.breaker_final_state
         << " trips=" << dev.breaker_trips;
    }
    if (report.fault_domains) {
      os << " failed-over=" << dev.failed_over_in << "/" << dev.failed_over_out
         << " hedges=" << dev.hedges_run
         << " cancelled=" << dev.attempts_cancelled
         << " downs=" << dev.lifecycle_downs;
    }
    if (report.integrity) {
      os << " sdc=" << dev.sdc_injected << "/" << dev.sdc_detected
         << " blamed=" << dev.sdc_blamed
         << " verifications=" << dev.verifications_run
         << " sdc-score=" << obs::format_double(dev.sdc_score);
      if (dev.blocklisted) {
        os << " blocklisted-at-us=" << dev.blocklisted_at / kMicrosecond;
      }
    }
    os << "\n";
  }
}

void write_fleet_report_json(std::ostream& os, const FleetReport& report) {
  os << "{\n";
  os << "  \"schema_version\": 1,\n";

  os << "  \"fleet\": {\n";
  os << "    \"workload\": ";
  obs::write_json_quoted(os, report.workload);
  os << ",\n";
  os << "    \"num_devices\": " << report.num_devices << ",\n";
  os << "    \"placement\": ";
  obs::write_json_quoted(os, report.placement);
  os << ",\n";
  os << "    \"copy_penalty\": " << obs::format_double(report.copy_penalty)
     << ",\n";
  os << "    \"work_stealing\": " << (report.work_stealing ? "true" : "false")
     << ",\n";
  os << "    \"device_breaker\": "
     << (report.device_breaker_enabled ? "true" : "false") << ",\n";
  os << "    \"seed\": " << report.seed << "\n";
  os << "  },\n";

  os << "  \"accounting\": {\n";
  os << "    \"arrived\": " << report.arrived << ",\n";
  os << "    \"admitted\": " << report.admitted << ",\n";
  os << "    \"completed\": " << report.completed << ",\n";
  os << "    \"completed_ok\": " << report.completed_ok << ",\n";
  os << "    \"completed_late\": " << report.completed_late << ",\n";
  os << "    \"shed_queue_full\": " << report.shed_queue_full << ",\n";
  os << "    \"shed_breaker\": " << report.shed_breaker << ",\n";
  os << "    \"shed_no_device\": " << report.shed_no_device << ",\n";
  os << "    \"timed_out_queued\": " << report.timed_out_queued << ",\n";
  os << "    \"quarantined\": " << report.quarantined << ",\n";
  os << "    \"requeued\": " << report.requeued << ",\n";
  os << "    \"stolen\": " << report.stolen << "\n";
  os << "  },\n";

  // Rendered only for fault-domain runs so zero-chaos reports keep their
  // pre-fault-domain bytes (the pinned golden digests).
  if (report.fault_domains) {
    os << "  \"fault_domains\": {\n";
    os << "    \"hedging\": " << (report.hedging ? "true" : "false") << ",\n";
    os << "    \"failover_budget\": " << report.failover_budget << ",\n";
    os << "    \"shed_failover_exhausted\": "
       << report.shed_failover_exhausted << ",\n";
    os << "    \"failed_over\": " << report.failed_over << ",\n";
    os << "    \"hedges_launched\": " << report.hedges_launched << ",\n";
    os << "    \"hedge_wins\": " << report.hedge_wins << ",\n";
    os << "    \"hedges_cancelled\": " << report.hedges_cancelled << ",\n";
    os << "    \"attempts_cancelled\": " << report.attempts_cancelled << "\n";
    os << "  },\n";
  }

  // Likewise integrity-gated: Trust-plus-clean-plans reports keep their
  // pre-integrity bytes.
  if (report.integrity) {
    os << "  \"integrity\": {\n";
    os << "    \"policy\": ";
    obs::write_json_quoted(os, report.integrity_policy);
    os << ",\n";
    os << "    \"spotcheck_rate\": "
       << obs::format_double(report.spotcheck_rate) << ",\n";
    os << "    \"sdc_blocklist_threshold\": "
       << obs::format_double(report.sdc_blocklist_threshold) << ",\n";
    os << "    \"sdc_injected\": " << report.sdc_injected << ",\n";
    os << "    \"sdc_detected\": " << report.sdc_detected << ",\n";
    os << "    \"sdc_missed\": " << report.sdc_missed << ",\n";
    os << "    \"reexecutions\": " << report.reexecutions << ",\n";
    os << "    \"devices_blocklisted\": " << report.devices_blocklisted
       << "\n";
    os << "  },\n";
  }

  os << "  \"slo\": {\n";
  os << "    \"goodput_per_sec\": "
     << obs::format_double(report.goodput_per_sec) << ",\n";
  os << "    \"throughput_per_sec\": "
     << obs::format_double(report.throughput_per_sec) << ",\n";
  os << "    \"deadline_miss_ratio\": "
     << obs::format_double(report.deadline_miss_ratio) << "\n";
  os << "  },\n";

  os << "  \"run\": {\n";
  os << "    \"total_time_ns\": " << report.total_time << ",\n";
  os << "    \"drain_time_ns\": " << report.drain_time << ",\n";
  os << "    \"energy_j\": " << obs::format_double(report.energy) << ",\n";
  os << "    \"energy_per_completed_j\": "
     << obs::format_double(report.energy_per_completed) << "\n";
  os << "  },\n";

  os << "  \"device_breaker\": {\n";
  os << "    \"trips\": " << report.device_breaker_trips << ",\n";
  os << "    \"probes\": " << report.device_breaker_probes << ",\n";
  os << "    \"rejected\": " << report.device_breaker_rejected << "\n";
  os << "  },\n";

  os << "  \"placement_histogram\": [";
  for (std::size_t d = 0; d < report.placement_histogram.size(); ++d) {
    os << report.placement_histogram[d]
       << (d + 1 < report.placement_histogram.size() ? ", " : "");
  }
  os << "],\n";

  os << "  \"devices\": [\n";
  for (std::size_t d = 0; d < report.devices.size(); ++d) {
    const FleetDeviceStats& dev = report.devices[d];
    os << "    {\n";
    os << "      \"device\": " << d << ",\n";
    os << "      \"name\": ";
    obs::write_json_quoted(os, dev.name);
    os << ",\n";
    os << "      \"placed\": " << dev.placed << ",\n";
    os << "      \"requeued_in\": " << dev.requeued_in << ",\n";
    os << "      \"requeued_out\": " << dev.requeued_out << ",\n";
    os << "      \"stolen_in\": " << dev.stolen_in << ",\n";
    os << "      \"stolen_out\": " << dev.stolen_out << ",\n";
    os << "      \"breaker_trips\": " << dev.breaker_trips << ",\n";
    os << "      \"breaker_probes\": " << dev.breaker_probes << ",\n";
    os << "      \"breaker_rejected\": " << dev.breaker_rejected << ",\n";
    os << "      \"breaker_final_state\": ";
    obs::write_json_quoted(os, dev.breaker_final_state);
    os << ",\n";
    if (report.fault_domains) {
      os << "      \"failed_over_in\": " << dev.failed_over_in << ",\n";
      os << "      \"failed_over_out\": " << dev.failed_over_out << ",\n";
      os << "      \"hedges_run\": " << dev.hedges_run << ",\n";
      os << "      \"attempts_cancelled\": " << dev.attempts_cancelled
         << ",\n";
      os << "      \"lifecycle_downs\": " << dev.lifecycle_downs << ",\n";
    }
    if (report.integrity) {
      os << "      \"sdc_injected\": " << dev.sdc_injected << ",\n";
      os << "      \"sdc_detected\": " << dev.sdc_detected << ",\n";
      os << "      \"sdc_blamed\": " << dev.sdc_blamed << ",\n";
      os << "      \"verifications_run\": " << dev.verifications_run
         << ",\n";
      os << "      \"sdc_score\": " << obs::format_double(dev.sdc_score)
         << ",\n";
      os << "      \"blocklisted\": " << (dev.blocklisted ? "true" : "false")
         << ",\n";
      os << "      \"blocklisted_at_ns\": " << dev.blocklisted_at << ",\n";
    }
    // The nested report keeps serve's own (top-level) indentation; JSON
    // whitespace carries no meaning and the bytes stay deterministic.
    os << "      \"report\": ";
    serve::write_report_json(os, dev.report);
    os << "    }" << (d + 1 < report.devices.size() ? "," : "") << "\n";
  }
  os << "  ]\n";
  os << "}\n";
}

std::string fleet_report_json(const FleetReport& report) {
  std::ostringstream os;
  write_fleet_report_json(os, report);
  return os.str();
}

std::uint64_t fleet_report_digest(const FleetReport& report) {
  Fnv1a64 hash;
  hash.mix_string(fleet_report_json(report));
  return hash.value();
}

}  // namespace hq::fleet
