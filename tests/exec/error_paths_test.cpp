// Failure-path contracts of the hq_exec job engine: deterministic exception
// propagation from parallel_map, CancelledError delivery through Future,
// and pool teardown with work still queued.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <semaphore>
#include <stdexcept>
#include <string>
#include <thread>

#include "exec/parallel.hpp"
#include "exec/thread_pool.hpp"

namespace hq::exec {
namespace {

TEST(ParallelMapErrorTest, RethrowsLowestIndexAfterAllJobsSettle) {
  ThreadPool pool(4);
  std::atomic<int> completed{0};
  const auto fn = [&](std::size_t i) -> int {
    if (i == 2 || i == 5) throw std::runtime_error("boom " + std::to_string(i));
    ++completed;
    return static_cast<int>(i);
  };
  try {
    parallel_map(&pool, 8, fn);
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    // Two jobs threw; the rethrow is deterministically the lowest index.
    EXPECT_STREQ(e.what(), "boom 2");
  }
  // Every non-throwing job settled before the rethrow unwound.
  EXPECT_EQ(completed.load(), 6);
}

TEST(ParallelMapErrorTest, SerialInlinePathThrowsTheSameWay) {
  const auto fn = [](std::size_t i) -> int {
    if (i >= 1) throw std::runtime_error("boom " + std::to_string(i));
    return static_cast<int>(i);
  };
  try {
    parallel_map(nullptr, 4, fn);
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "boom 1");
  }
}

TEST(FutureErrorTest, CancelPendingDeliversCancelledErrorAndPoolSurvives) {
  ThreadPool pool(1);
  std::binary_semaphore started{0};
  std::binary_semaphore release{0};
  auto running = pool.submit([&] {
    started.release();
    release.acquire();
    return 1;
  });
  started.acquire();  // the lone worker is now busy
  auto queued = pool.submit([] { return 2; });
  pool.cancel_pending();
  release.release();
  EXPECT_EQ(running.get(), 1);  // in-flight jobs are unaffected
  EXPECT_THROW(queued.get(), CancelledError);
  // The pool stays serviceable after a cancellation round.
  EXPECT_EQ(pool.submit([] { return 3; }).get(), 3);
  pool.wait_idle();
}

TEST(FutureErrorTest, DestructorCancelsQueuedWorkAndJoinsInFlight) {
  auto pool = std::make_unique<ThreadPool>(1);
  std::binary_semaphore started{0};
  std::binary_semaphore release{0};
  auto running = pool->submit([&] {
    started.release();
    release.acquire();
    return 10;
  });
  started.acquire();
  auto queued1 = pool->submit([] { return 11; });
  auto queued2 = pool->submit([] { return 12; });
  // The destructor abandons the queue first (settling queued futures as
  // cancelled), then joins. Unblocking the in-flight job only once that
  // abandonment is observable proves the join really waited for it.
  std::thread unblocker([&] {
    queued1.wait();  // settles at destructor entry
    release.release();
  });
  pool.reset();
  unblocker.join();
  EXPECT_EQ(running.get(), 10);
  EXPECT_THROW(queued1.get(), CancelledError);
  EXPECT_THROW(queued2.get(), CancelledError);
}

TEST(FutureErrorTest, JobExceptionIsStoredAndRethrownOnEveryGet) {
  ThreadPool pool(2);
  auto f = pool.submit([]() -> int { throw std::invalid_argument("bad job"); });
  try {
    f.get();
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_STREQ(e.what(), "bad job");
  }
  EXPECT_THROW(f.get(), std::invalid_argument);
}

}  // namespace
}  // namespace hq::exec
