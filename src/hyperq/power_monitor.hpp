// PowerMonitor (paper Section III-E / IV).
//
// "We implement a PowerMonitor class which links to the NVIDIA Management
// Library (NVML) API and logs GPU power draw readings from the on-board
// sensor ... which continually samples through the NVML API at a constant
// rate, set in these tests at 15 ms" — and for the power figures the sensor
// is oversampled at 66.7 Hz to reduce noise.
#pragma once

#include <vector>

#include "common/units.hpp"
#include "nvml/nvml.hpp"
#include "sim/simulator.hpp"
#include "sim/task.hpp"

namespace hq::fw {

struct PowerSample {
  TimeNs time = 0;
  Watts watts = 0;
};

/// Samples the NVML power sensor on its own (simulated) monitoring thread.
class PowerMonitor {
 public:
  PowerMonitor(sim::Simulator& sim, nvml::ManagementLibrary& nvml,
               DurationNs period = 15 * kMillisecond);

  /// Spawns the sampling task; records one sample immediately.
  void start();
  /// Requests the sampling task to exit; it wakes at most one period later.
  void stop();

  bool running() const { return running_; }
  DurationNs period() const { return period_; }
  const std::vector<PowerSample>& samples() const { return samples_; }

  /// Trapezoidal energy integral of the samples within [begin, end].
  Joules energy_between(TimeNs begin, TimeNs end) const;
  /// Mean of samples within [begin, end]; 0 when none.
  Watts average_power(TimeNs begin, TimeNs end) const;
  /// Maximum sample within [begin, end]; 0 when none.
  Watts peak_power(TimeNs begin, TimeNs end) const;

 private:
  static sim::Task sample_loop(PowerMonitor* self);

  sim::Simulator& sim_;
  nvml::ManagementLibrary& nvml_;
  DurationNs period_;
  bool running_ = false;
  bool stop_requested_ = false;
  std::vector<PowerSample> samples_;
};

}  // namespace hq::fw
