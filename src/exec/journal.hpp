// Crash-safe sweep journal (part of hq_sweep).
//
// SweepRunner checkpoints every finished grid point as one self-contained
// text line, appended and flushed under a mutex as workers complete (so a
// kill at any instant loses at most the in-flight points). On --resume the
// journal is replayed: finished points are restored verbatim and only the
// missing ones are re-run, and because every scalar round-trips exactly
// (integers as decimal, doubles in std::to_chars shortest form parsed back
// by strtod) the resumed report and metrics JSON are byte-identical to the
// uninterrupted run.
//
// Format (one record per line, space-separated key=value pairs):
//
//   hq-sweep-journal version=v1 grid=<hex> points=<n> end
//   point index=<i> makespan=<ns> energy=<d> ... digest=<hex> end
//
// The header's grid key fingerprints the expanded grid (per-point labels +
// every result-affecting base-config field), so resuming against a different
// grid or configuration is a structured error, never silent corruption. The
// trailing `end` token makes
// torn lines (a crash mid-write) detectable: they are simply ignored.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "exec/sweep.hpp"

namespace hq::exec {

/// Fingerprint of an expanded grid: mixes every point label plus all of the
/// base config's result-affecting state — device spec, application params,
/// transfer/launch/power knobs, fault plan, retry policy, and watchdog.
/// Two grids with the same key produce interchangeable journals.
std::uint64_t sweep_grid_key(const SweepGrid& grid,
                             std::span<const SweepPoint> points);

/// First line of every journal.
std::string journal_header_line(std::uint64_t grid_key,
                                std::size_t total_points);

/// One finished point as a self-contained record (no trailing newline).
std::string journal_outcome_line(const SweepOutcome& outcome);

/// Parses one outcome record; the point is restored from `points` by index.
/// Returns nullopt for torn, foreign, or out-of-range lines.
std::optional<SweepOutcome> parse_journal_outcome(
    const std::string& line, std::span<const SweepPoint> points);

/// Replays a journal stream into `cached` (indexed by point). The header
/// must match `grid_key` and `points.size()` — a mismatch throws hq::Error
/// (resuming the wrong sweep must never silently mix results). An empty
/// stream is a fresh journal (returns 0, `*header_read` stays false — the
/// caller must write a fresh header before appending). Later records for
/// the same index win. Returns the number of distinct points restored.
std::size_t load_journal(std::istream& in, std::uint64_t grid_key,
                         std::span<const SweepPoint> points,
                         std::vector<std::optional<SweepOutcome>>* cached,
                         bool* header_read = nullptr);

}  // namespace hq::exec
