// Integrity pipeline tests: silent-data-corruption injection (stuck-at,
// kernel-ramp), verification re-execution (spot-check / DMR), the
// majority-of-2-then-tiebreak vote, per-device SDC scores and blocklisting,
// and the interaction edge cases the fleet must survive — a tiebreak vote,
// a corrupting device winning a hedge race, a spot-check landing on a job
// that was failed over mid-flight, and blocklisting the last healthy
// device.
#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <string>
#include <vector>

#include "fleet/fleet.hpp"
#include "fleet/report.hpp"
#include "serve/lifecycle.hpp"
#include "serve/report.hpp"
#include "tests/hyperq/synthetic_app.hpp"

namespace hq::fleet {
namespace {

using fw::testing::SyntheticApp;

serve::ServiceConfig integrity_base() {
  serve::ServiceConfig config;
  config.window = 10 * kMillisecond;
  config.mean_interarrival = 100 * kMicrosecond;
  config.num_streams = 2;
  config.max_inflight = 2;
  SyntheticApp::Spec spec;
  spec.num_kernels = 3;
  spec.block_duration = 30 * kMicrosecond;
  config.classes.push_back(
      {fw::WorkloadItem{"synthetic",
                        [spec] { return std::make_unique<SyntheticApp>(spec); }},
       0});
  config.collect_metrics = false;
  return config;
}

FleetConfig integrity_fleet(std::size_t devices) {
  FleetConfig config;
  config.base = integrity_base();
  config.resize_homogeneous(devices);
  config.placement = PlacementPolicy::LeastLoaded;
  return config;
}

fault::FaultPlan stuck_at_plan(TimeNs at, std::uint64_t seed = 7) {
  fault::FaultPlan plan = fault::FaultPlan::zero();
  plan.seed = seed;
  plan.sdc_stuck_at = at;
  return plan;
}

fault::FaultPlan clean_plan() { return fault::FaultPlan{}; }

/// Conservation under the integrity pipeline: every arrival is terminal,
/// per-device counters roll up to the fleet totals, and the exact
/// injected == detected + missed partition holds.
void check_integrity_conservation(const FleetResult& result) {
  const FleetReport& r = result.report;
  EXPECT_EQ(r.arrived, r.completed_ok + r.completed_late + r.shed_queue_full +
                           r.shed_breaker + r.shed_no_device +
                           r.timed_out_queued + r.quarantined +
                           r.shed_failover_exhausted);
  std::uint64_t injected = 0;
  std::uint64_t verifications = 0;
  std::uint64_t blocklisted = 0;
  for (const FleetDeviceStats& dev : r.devices) {
    injected += dev.sdc_injected;
    verifications += dev.verifications_run;
    if (dev.blocklisted) ++blocklisted;
    EXPECT_LE(dev.sdc_detected, dev.sdc_injected);
  }
  EXPECT_EQ(injected, r.sdc_injected);
  EXPECT_EQ(verifications, r.reexecutions);
  EXPECT_EQ(blocklisted, r.devices_blocklisted);
  EXPECT_EQ(r.sdc_injected, r.sdc_detected + r.sdc_missed);
  for (const serve::JobRecord& job : result.jobs) {
    EXPECT_NE(job.state, serve::JobState::Queued);
    EXPECT_NE(job.state, serve::JobState::Inflight);
  }
}

TEST(FleetIntegrityTest, StuckAtDeviceIsDetectedBlamedAndBlocklisted) {
  FleetConfig config = integrity_fleet(3);
  config.integrity = IntegrityPolicy::Dmr;
  config.device_fault_plans = {stuck_at_plan(kMillisecond), clean_plan(),
                               clean_plan()};
  ASSERT_TRUE(config.integrity_active());
  FleetResult result = FleetService(config).run();
  const FleetReport& r = result.report;

  EXPECT_TRUE(r.integrity);
  EXPECT_EQ(r.integrity_policy, "dmr");
  // The liar produced corrupted results and DMR caught them.
  EXPECT_GT(r.sdc_injected, 0u);
  EXPECT_GT(r.sdc_detected, 0u);
  EXPECT_GT(r.devices[0].sdc_injected, 0u);
  EXPECT_GT(r.devices[0].sdc_blamed, 0u);
  // The vote blamed device 0 until its EWMA crossed the threshold: it is
  // the one and only blocklisted device, and the fleet kept serving.
  EXPECT_TRUE(r.devices[0].blocklisted);
  EXPECT_GE(r.devices[0].blocklisted_at, kMillisecond);
  EXPECT_FALSE(r.devices[1].blocklisted);
  EXPECT_FALSE(r.devices[2].blocklisted);
  EXPECT_EQ(r.devices_blocklisted, 1u);
  EXPECT_GT(r.completed, 0u);
  EXPECT_GT(r.reexecutions, 0u);
  check_integrity_conservation(result);
}

TEST(FleetIntegrityTest, TwoWayDmrTieIsBrokenByThirdExecution) {
  // A DMR mismatch between the primary and its verify re-execution cannot
  // be attributed two-ways: a third execution breaks the tie, and the
  // majority vote blames the stuck-at device.
  FleetConfig config = integrity_fleet(3);
  config.integrity = IntegrityPolicy::Dmr;
  config.base.collect_metrics = true;
  config.device_fault_plans = {stuck_at_plan(kMillisecond), clean_plan(),
                               clean_plan()};
  FleetResult result = FleetService(config).run();

  bool saw_tiebreak = false;
  bool blamed_liar = false;
  for (const serve::JobRecord& job : result.jobs) {
    int verifies = 0;
    for (const serve::JobEvent& e : result.lifecycle->events(job.job_id)) {
      if (e.kind == serve::JobEventKind::VerifyDispatched) ++verifies;
      if (e.kind == serve::JobEventKind::CorruptionDetected && e.device == 0) {
        blamed_liar = true;
      }
    }
    if (verifies >= 2) saw_tiebreak = true;
  }
  EXPECT_TRUE(saw_tiebreak) << "no job needed a tiebreak execution";
  EXPECT_TRUE(blamed_liar) << "no vote blamed the stuck-at device";
  check_integrity_conservation(result);
}

TEST(FleetIntegrityTest, CorruptingDeviceWinningHedgeRaceIsStillCaught) {
  // Device 0 straggles (long copy stalls), so hedges race its jobs; the
  // stuck-at device 1 is fast, becomes the hedge target, and wins races.
  // The winner's result is the one the integrity pipeline verifies, so the
  // corruption is caught even when it arrived through a hedge. The
  // blocklist threshold is parked at 1.0 (EWMA-unreachable) so the liar
  // keeps racing instead of being removed after a few votes.
  FleetConfig config = integrity_fleet(3);
  config.integrity = IntegrityPolicy::Dmr;
  config.sdc_blocklist_threshold = 1.0;
  config.base.collect_metrics = true;
  config.hedging = true;
  config.hedge_threshold = 1.5;
  config.hedge_min_samples = 2;
  fault::FaultPlan laggy = fault::FaultPlan::zero();
  laggy.copy_stall_rate = 0.8;
  laggy.copy_stall_ns = 2 * kMillisecond;
  config.device_fault_plans = {laggy, stuck_at_plan(kMillisecond),
                               clean_plan()};
  FleetResult result = FleetService(config).run();
  const FleetReport& r = result.report;

  EXPECT_GT(r.hedges_launched, 0u);
  EXPECT_GT(r.sdc_injected, 0u);
  EXPECT_GT(r.sdc_detected, 0u);
  EXPECT_LE(r.hedge_wins, r.hedges_launched);
  EXPECT_EQ(r.devices_blocklisted, 0u);
  // At least one job was hedged onto the liar AND had its corruption
  // caught by the vote.
  bool liar_hedge_caught = false;
  for (const serve::JobRecord& job : result.jobs) {
    bool hedged_on_liar = false;
    bool corruption_detected = false;
    for (const serve::JobEvent& e : result.lifecycle->events(job.job_id)) {
      if (e.kind == serve::JobEventKind::Hedged && e.device == 1) {
        hedged_on_liar = true;
      }
      if (e.kind == serve::JobEventKind::CorruptionDetected) {
        corruption_detected = true;
      }
    }
    if (hedged_on_liar && corruption_detected) liar_hedge_caught = true;
  }
  EXPECT_TRUE(liar_hedge_caught)
      << "no hedge landed on the corrupting device and got caught";
  check_integrity_conservation(result);
}

TEST(FleetIntegrityTest, SpotCheckCoversJobFailedOverMidFlight) {
  // Device 0 crashes mid-window; its in-flight jobs fail over and complete
  // on a survivor. With a 100% spot-check rate the re-dispatched primary
  // is still verified — on a device that is neither the crashed one nor
  // the one that ran the primary.
  FleetConfig config = integrity_fleet(3);
  // Light enough load that the survivors have dispatch slack for the
  // verification right after absorbing the crashed device's work.
  config.base.mean_interarrival = 250 * kMicrosecond;
  config.integrity = IntegrityPolicy::SpotCheck;
  config.spotcheck_rate = 1.0;
  config.base.collect_metrics = true;
  fault::FaultPlan crash = fault::FaultPlan::zero();
  crash.crash_at = 3 * kMillisecond;
  config.device_fault_plans = {crash, clean_plan(), clean_plan()};
  FleetResult result = FleetService(config).run();
  const FleetReport& r = result.report;

  EXPECT_EQ(r.integrity_policy, "spotcheck");
  EXPECT_GT(r.failed_over, 0u);
  EXPECT_GT(r.reexecutions, 0u);
  // No device corrupts here: spot-checks all agree, nothing is detected.
  EXPECT_EQ(r.sdc_injected, 0u);
  EXPECT_EQ(r.sdc_detected, 0u);
  EXPECT_EQ(r.sdc_missed, 0u);

  bool verified_after_failover = false;
  for (std::size_t i = 0; i < result.jobs.size(); ++i) {
    const serve::JobRecord& job = result.jobs[i];
    bool failed_over = false;
    for (const serve::JobEvent& e : result.lifecycle->events(job.job_id)) {
      if (e.kind == serve::JobEventKind::FailedOver) failed_over = true;
      if (e.kind == serve::JobEventKind::VerifyDispatched && failed_over) {
        verified_after_failover = true;
        // The verify runs on a different device than the job's owner.
        EXPECT_NE(e.device, result.owners[i]) << "job " << job.job_id;
      }
    }
  }
  EXPECT_TRUE(verified_after_failover)
      << "no failed-over job was spot-checked";
  check_integrity_conservation(result);
}

TEST(FleetIntegrityTest, BlocklistOfLastHealthyDeviceDrainsCleanly) {
  // Both devices go stuck-at: every 2-way DMR mismatch blames both
  // participants (no third device exists to break the tie), both EWMA
  // scores cross the threshold, and the whole fleet is blocklisted. The
  // run must still terminate with every arrival in a terminal state.
  FleetConfig config = integrity_fleet(2);
  config.integrity = IntegrityPolicy::Dmr;
  config.device_fault_plans = {stuck_at_plan(kMillisecond, 7),
                               stuck_at_plan(kMillisecond, 11)};
  FleetResult result = FleetService(config).run();
  const FleetReport& r = result.report;

  EXPECT_EQ(r.devices_blocklisted, 2u);
  EXPECT_TRUE(r.devices[0].blocklisted);
  EXPECT_TRUE(r.devices[1].blocklisted);
  EXPECT_GT(r.completed, 0u);       // pre-onset work finished
  EXPECT_GT(r.shed_no_device, 0u);  // post-blocklist arrivals had no home
  check_integrity_conservation(result);
}

TEST(FleetIntegrityTest, KernelRampInjectsNothingBeforeOnset) {
  // The kernel-corruption ramp starts at sdc_at: an onset beyond the run
  // window injects nothing (but the integrity surface is still rendered),
  // while an early onset corrupts for real.
  FleetConfig late = integrity_fleet(2);
  late.integrity = IntegrityPolicy::Dmr;
  fault::FaultPlan ramp = fault::FaultPlan::zero();
  ramp.sdc_kernel_rate = 0.8;
  ramp.sdc_at = 20 * kMillisecond;  // past the 10ms window
  late.device_fault_plans = {ramp, clean_plan()};
  const FleetReport late_report = FleetService(late).run().report;
  EXPECT_TRUE(late_report.integrity);
  EXPECT_EQ(late_report.sdc_injected, 0u);

  FleetConfig early = late;
  early.device_fault_plans[0].sdc_at = 2 * kMillisecond;
  const FleetReport early_report = FleetService(early).run().report;
  EXPECT_GT(early_report.sdc_injected, 0u);
}

TEST(FleetIntegrityTest, SdcRunsAreByteIdenticalAcrossRuns) {
  FleetConfig config = integrity_fleet(3);
  config.integrity = IntegrityPolicy::SpotCheck;
  config.spotcheck_rate = 0.5;
  fault::FaultPlan ramp = fault::FaultPlan::zero();
  ramp.sdc_kernel_rate = 0.6;
  ramp.sdc_at = 2 * kMillisecond;
  config.device_fault_plans = {stuck_at_plan(4 * kMillisecond), ramp,
                               clean_plan()};
  const std::string a = fleet_report_json(FleetService(config).run().report);
  const std::string b = fleet_report_json(FleetService(config).run().report);
  EXPECT_EQ(a, b);
}

TEST(FleetIntegrityTest, InertIntegrityKnobsAreByteIdenticalToBaseline) {
  // Trust + corruption-free plans means the pipeline never engages: the
  // spot-check / blocklist knobs must not move a single report byte.
  FleetConfig baseline = integrity_fleet(2);
  FleetConfig tuned = integrity_fleet(2);
  tuned.integrity = IntegrityPolicy::Trust;
  tuned.spotcheck_rate = 0.9;
  tuned.sdc_blocklist_threshold = 0.25;
  tuned.sdc_score_alpha = 0.9;
  tuned.device_fault_plans = {clean_plan(), clean_plan()};
  EXPECT_FALSE(tuned.integrity_active());
  const std::string a = fleet_report_json(FleetService(baseline).run().report);
  const std::string b = fleet_report_json(FleetService(tuned).run().report);
  EXPECT_EQ(a, b);
}

TEST(FleetIntegrityTest, ValidateRejectsBadIntegrityConfigs) {
  FleetConfig config = integrity_fleet(2);
  config.spotcheck_rate = 1.5;
  EXPECT_THROW(config.validate(), hq::Error);

  config = integrity_fleet(2);
  config.sdc_blocklist_threshold = 0;
  EXPECT_THROW(config.validate(), hq::Error);

  config = integrity_fleet(2);
  config.sdc_score_alpha = 0;
  EXPECT_THROW(config.validate(), hq::Error);

  config = integrity_fleet(2);
  config.sdc_score_alpha = 1.5;
  EXPECT_THROW(config.validate(), hq::Error);
}

}  // namespace
}  // namespace hq::fleet
