#include "fleet/placement.hpp"

namespace hq::fleet {

const char* placement_policy_name(PlacementPolicy policy) {
  switch (policy) {
    case PlacementPolicy::RoundRobin: return "round-robin";
    case PlacementPolicy::LeastLoaded: return "least-loaded";
    case PlacementPolicy::CopyAware: return "copy-aware";
    case PlacementPolicy::ClassAffinity: return "class-affinity";
  }
  return "?";
}

std::optional<PlacementPolicy> parse_placement_policy(const std::string& name) {
  if (name == "round-robin") return PlacementPolicy::RoundRobin;
  if (name == "least-loaded") return PlacementPolicy::LeastLoaded;
  if (name == "copy-aware") return PlacementPolicy::CopyAware;
  if (name == "class-affinity") return PlacementPolicy::ClassAffinity;
  return std::nullopt;
}

std::vector<PlacementPolicy> all_placement_policies() {
  return {PlacementPolicy::RoundRobin, PlacementPolicy::LeastLoaded,
          PlacementPolicy::CopyAware, PlacementPolicy::ClassAffinity};
}

std::optional<std::size_t> Placer::place(std::span<const DeviceLoad> loads,
                                         std::size_t klass) {
  const std::size_t n = loads.size();
  if (n == 0) return std::nullopt;

  switch (policy_) {
    case PlacementPolicy::RoundRobin: {
      for (std::size_t step = 0; step < n; ++step) {
        const std::size_t i = (rr_next_ + step) % n;
        if (loads[i].healthy) {
          rr_next_ = (i + 1) % n;
          return i;
        }
      }
      return std::nullopt;
    }
    case PlacementPolicy::LeastLoaded: {
      std::optional<std::size_t> best;
      for (std::size_t i = 0; i < n; ++i) {
        if (!loads[i].healthy) continue;
        if (!best || loads[i].outstanding < loads[*best].outstanding) best = i;
      }
      return best;
    }
    case PlacementPolicy::CopyAware: {
      std::optional<std::size_t> best;
      double best_score = 0;
      for (std::size_t i = 0; i < n; ++i) {
        if (!loads[i].healthy) continue;
        const double score = static_cast<double>(loads[i].outstanding) +
                             copy_penalty_ *
                                 static_cast<double>(loads[i].copy_depth);
        if (!best || score < best_score) {
          best = i;
          best_score = score;
        }
      }
      return best;
    }
    case PlacementPolicy::ClassAffinity: {
      const std::size_t preferred = klass % n;
      for (std::size_t step = 0; step < n; ++step) {
        const std::size_t i = (preferred + step) % n;
        if (loads[i].healthy) return i;
      }
      return std::nullopt;
    }
  }
  return std::nullopt;
}

}  // namespace hq::fleet
