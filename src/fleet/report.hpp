// Final report of one fleet serving run (library hq_fleet).
//
// A FleetReport nests one full serve::ServeReport per device (exactly the
// report the single-device Service would emit for that shard's jobs) under
// fleet-level aggregates: cluster goodput/SLO numbers, the placement
// histogram, shed/requeue/steal counters, and the per-device health-breaker
// trajectories.
//
// Determinism contract: fleet_report_json renders byte-identically for a
// given report (doubles through obs::format_double, fixed field order,
// devices in index order), so fleet_report_digest — FNV-1a over that
// rendering — is the fingerprint the golden tests and CI diffs pin. Same
// config + seed => byte-identical report at any --jobs count.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "serve/report.hpp"

namespace hq::fleet {

/// One device's slice of the fleet run: its full serving report plus the
/// fleet-level routing counters that the single-device report cannot know.
struct FleetDeviceStats {
  std::string name;  ///< device spec name (after fault degradation)
  /// Arrivals the placer routed here (initial placement, before any
  /// requeue/steal movement).
  std::uint64_t placed = 0;
  std::uint64_t requeued_in = 0;   ///< jobs moved here from quarantined peers
  std::uint64_t requeued_out = 0;  ///< jobs moved away when this device tripped
  std::uint64_t stolen_in = 0;     ///< jobs this device stole while idle
  std::uint64_t stolen_out = 0;    ///< queued jobs stolen by idle peers
  // Device health breaker (all zero / empty when disabled).
  std::uint64_t breaker_trips = 0;
  std::uint64_t breaker_probes = 0;
  std::uint64_t breaker_rejected = 0;
  std::string breaker_final_state;  ///< "closed" / "open" / "half-open"; empty = disabled
  // Fleet fault domains (all zero unless FleetReport::fault_domains;
  // rendered only then, keeping zero-chaos reports byte-identical).
  std::uint64_t failed_over_in = 0;   ///< jobs failed over onto this device
  std::uint64_t failed_over_out = 0;  ///< jobs moved away when this device went down
  std::uint64_t hedges_run = 0;       ///< hedge attempts dispatched here
  std::uint64_t attempts_cancelled = 0;  ///< attempts cancelled here (failover + lost hedges)
  std::uint64_t lifecycle_downs = 0;  ///< down transitions (a crash counts once)
  // Integrity pipeline (all zero unless FleetReport::integrity; rendered
  // only then, keeping pre-integrity reports byte-identical).
  std::uint64_t sdc_injected = 0;  ///< corrupted results this device produced
  std::uint64_t sdc_detected = 0;  ///< of those, caught by a comparison
  std::uint64_t sdc_blamed = 0;    ///< vote outcomes that blamed this device
  std::uint64_t verifications_run = 0;  ///< verify/tiebreak attempts run here
  double sdc_score = 0;      ///< final EWMA of blame attributions
  bool blocklisted = false;  ///< permanently removed by the integrity pipeline
  TimeNs blocklisted_at = 0;  ///< virtual time of the blocklist (0 = never)
  /// The per-device serving report, computed exactly as serve::Service
  /// computes it (for a 1-device fleet this is byte-identical to the
  /// single-device report — the fleet oracle pins that).
  serve::ServeReport report;
};

struct FleetReport {
  // --- configuration echo --------------------------------------------------
  std::string workload;  ///< class names joined with '+'
  std::size_t num_devices = 0;
  std::string placement;
  double copy_penalty = 0;
  bool work_stealing = false;
  bool device_breaker_enabled = false;
  std::uint64_t seed = 0;

  // --- fleet job accounting ------------------------------------------------
  std::uint64_t arrived = 0;
  std::uint64_t admitted = 0;
  std::uint64_t completed = 0;
  std::uint64_t completed_ok = 0;
  std::uint64_t completed_late = 0;
  std::uint64_t shed_queue_full = 0;
  std::uint64_t shed_breaker = 0;
  /// Arrivals rejected because no healthy device existed (fleet-only
  /// terminal state; never attributed to a device).
  std::uint64_t shed_no_device = 0;
  std::uint64_t timed_out_queued = 0;
  std::uint64_t quarantined = 0;
  /// Queued jobs moved off a device whose health breaker tripped.
  std::uint64_t requeued = 0;
  /// Queued jobs taken by an idle device (work stealing).
  std::uint64_t stolen = 0;

  // --- SLO -----------------------------------------------------------------
  double goodput_per_sec = 0;
  double throughput_per_sec = 0;
  double deadline_miss_ratio = 0;

  // --- run totals ----------------------------------------------------------
  DurationNs total_time = 0;
  DurationNs drain_time = 0;
  Joules energy = 0;  ///< summed over devices
  Joules energy_per_completed = 0;

  // --- fleet health --------------------------------------------------------
  std::uint64_t device_breaker_trips = 0;
  std::uint64_t device_breaker_probes = 0;
  std::uint64_t device_breaker_rejected = 0;

  // --- fleet fault domains -------------------------------------------------
  /// True when lifecycle faults, per-device fault plans, or hedging were
  /// configured (FleetConfig::fault_domains_active). Gates every
  /// fault-domain field in both renderings so zero-chaos reports stay
  /// byte-identical to pre-fault-domain output (the pinned goldens).
  bool fault_domains = false;
  bool hedging = false;
  int failover_budget = 0;
  /// Jobs dropped after exhausting the failover budget or the supply of
  /// healthy survivors (fleet-only terminal state, like shed_no_device).
  std::uint64_t shed_failover_exhausted = 0;
  std::uint64_t failed_over = 0;  ///< failover hops across the fleet
  std::uint64_t hedges_launched = 0;
  std::uint64_t hedge_wins = 0;  ///< completions won by the hedge attempt
  std::uint64_t hedges_cancelled = 0;  ///< losing attempts of hedged jobs
  std::uint64_t attempts_cancelled = 0;  ///< all cancelled attempts (failover + hedge)

  // --- integrity pipeline ---------------------------------------------------
  /// True when the integrity pipeline was active
  /// (FleetConfig::integrity_active). Gates every integrity field in both
  /// renderings so Trust-plus-clean-plans reports stay byte-identical to
  /// pre-integrity output (the pinned goldens).
  bool integrity = false;
  std::string integrity_policy;  ///< "trust" / "spotcheck" / "dmr"
  double spotcheck_rate = 0;
  double sdc_blocklist_threshold = 0;
  /// Corrupted results produced fleet-wide. Exact partition invariant
  /// (fuzz-pinned): sdc_injected == sdc_detected + sdc_missed.
  std::uint64_t sdc_injected = 0;
  std::uint64_t sdc_detected = 0;  ///< caught by a verification comparison
  std::uint64_t sdc_missed = 0;    ///< served without any mismatching compare
  std::uint64_t reexecutions = 0;  ///< verify + tiebreak attempts dispatched
  std::uint64_t devices_blocklisted = 0;

  /// placement_histogram[d] == devices[d].placed (kept flat for reports).
  std::vector<std::uint64_t> placement_histogram;
  std::vector<FleetDeviceStats> devices;
};

/// Human-readable multi-line summary (the hqserve fleet default output).
void render_fleet_report_text(std::ostream& os, const FleetReport& report);

/// Canonical JSON rendering (byte-identical per report; see header note).
void write_fleet_report_json(std::ostream& os, const FleetReport& report);
std::string fleet_report_json(const FleetReport& report);

/// FNV-1a digest of fleet_report_json — the run fingerprint pinned by the
/// golden fleet tests.
std::uint64_t fleet_report_digest(const FleetReport& report);

}  // namespace hq::fleet
