# Empty dependencies file for bench_fig4_lazy_policy.
# This may be replaced when dependencies are built.
