// Behavioral tests for the fleet serving engine: single-device equivalence
// against serve::Service, conservation and job-identity invariants, work
// stealing, device-breaker rebalancing, the cluster-scaling acceptance
// criterion (a 4-device fleet beats the single device under every placement
// policy at 4x its saturation arrival rate), and byte-identical reports
// across runs and job counts.
#include "fleet/fleet.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <string>
#include <vector>

#include "exec/parallel.hpp"
#include "fleet/report.hpp"
#include "serve/report.hpp"
#include "tests/hyperq/synthetic_app.hpp"

namespace hq::fleet {
namespace {

using fw::testing::SyntheticApp;

serve::ServiceConfig serve_base() {
  serve::ServiceConfig config;
  config.window = 10 * kMillisecond;
  config.mean_interarrival = 100 * kMicrosecond;
  config.num_streams = 2;
  config.max_inflight = 2;
  SyntheticApp::Spec spec;
  spec.num_kernels = 3;
  spec.block_duration = 30 * kMicrosecond;
  config.classes.push_back(
      {fw::WorkloadItem{"synthetic",
                        [spec] { return std::make_unique<SyntheticApp>(spec); }},
       0});
  config.collect_metrics = false;
  return config;
}

/// Arrivals at ~4x the rate two streams / two inflight slots can serve, so
/// a single device saturates and a 4-device fleet has real work to spread.
serve::ServiceConfig saturating_base() {
  serve::ServiceConfig config = serve_base();
  config.mean_interarrival = 50 * kMicrosecond;
  config.queue_cap = 8;
  return config;
}

/// The saturating mix split over four classes, so class-affinity has
/// distinct affinities to spread (one class degenerates it to device 0).
serve::ServiceConfig saturating_multiclass_base() {
  serve::ServiceConfig config = saturating_base();
  config.classes.clear();
  SyntheticApp::Spec spec;
  spec.num_kernels = 3;
  spec.block_duration = 30 * kMicrosecond;
  for (const char* name : {"synth-a", "synth-b", "synth-c", "synth-d"}) {
    config.classes.push_back(
        {fw::WorkloadItem{name, [spec] { return std::make_unique<SyntheticApp>(
                                    spec); }},
         0});
  }
  return config;
}

void check_conservation(const FleetReport& r) {
  EXPECT_EQ(r.arrived, r.completed_ok + r.completed_late + r.shed_queue_full +
                           r.shed_breaker + r.shed_no_device +
                           r.timed_out_queued + r.quarantined);
  std::uint64_t device_arrived = 0;
  for (const FleetDeviceStats& dev : r.devices) {
    device_arrived += dev.report.arrived;
  }
  EXPECT_EQ(device_arrived + r.shed_no_device, r.arrived);
}

/// Every job id appears exactly once, owners match the per-device reports,
/// and no job was duplicated or lost by placement, stealing, or rebalance.
void check_job_identity(const FleetResult& result) {
  const std::size_t n = result.jobs.size();
  ASSERT_EQ(result.owners.size(), n);
  std::set<int> seen;
  std::vector<std::uint64_t> owned(result.report.num_devices, 0);
  for (std::size_t i = 0; i < n; ++i) {
    const serve::JobRecord& job = result.jobs[i];
    EXPECT_EQ(job.job_id, static_cast<int>(i));
    EXPECT_TRUE(seen.insert(job.job_id).second) << "duplicate id " << i;
    const int owner = result.owners[i];
    if (job.state == serve::JobState::ShedNoDevice) {
      EXPECT_EQ(owner, -1);
    } else {
      ASSERT_GE(owner, 0);
      ASSERT_LT(owner, static_cast<int>(result.report.num_devices));
      ++owned[static_cast<std::size_t>(owner)];
    }
  }
  for (std::size_t d = 0; d < result.report.num_devices; ++d) {
    EXPECT_EQ(owned[d], result.report.devices[d].report.arrived)
        << "device " << d;
  }
}

TEST(FleetTest, SingleDeviceFleetMatchesServeServiceByteForByte) {
  FleetConfig config;
  config.base = serve_base();
  const FleetResult fleet = FleetService(config).run();
  const serve::ServeResult plain = serve::Service(serve_base()).run();

  ASSERT_EQ(fleet.report.devices.size(), 1u);
  EXPECT_EQ(serve::report_json(fleet.report.devices[0].report),
            serve::report_json(plain.report));
  EXPECT_EQ(fleet.report.devices[0].report.trace_digest,
            plain.report.trace_digest);
  check_conservation(fleet.report);
  check_job_identity(fleet);
}

TEST(FleetTest, SingleDeviceEquivalenceHoldsUnderOverloadAndFaults) {
  serve::ServiceConfig base = saturating_base();
  base.deadline = 2 * kMillisecond;
  base.breaker_enabled = true;
  base.fault_plan.enabled = true;
  base.fault_plan.seed = 77;
  base.fault_plan.launch_failure_rate = 0.3;
  FleetConfig config;
  config.base = base;
  const FleetResult fleet = FleetService(config).run();
  const serve::ServeResult plain = serve::Service(base).run();
  EXPECT_EQ(serve::report_json(fleet.report.devices[0].report),
            serve::report_json(plain.report));
  check_conservation(fleet.report);
}

TEST(FleetTest, FleetReportIsByteIdenticalAcrossRuns) {
  FleetConfig config;
  config.base = saturating_base();
  config.resize_homogeneous(3);
  config.placement = PlacementPolicy::LeastLoaded;
  config.work_stealing = true;
  const FleetResult a = FleetService(config).run();
  const FleetResult b = FleetService(config).run();
  EXPECT_EQ(fleet_report_json(a.report), fleet_report_json(b.report));
  EXPECT_EQ(fleet_report_digest(a.report), fleet_report_digest(b.report));
}

TEST(FleetTest, FleetReportIsByteIdenticalAcrossJobCounts) {
  // Shard four distinct fleet configs over 1 worker and over 8; the JSON
  // bytes must match in index order.
  const auto run_config = [](std::size_t i) {
    FleetConfig config;
    config.base = saturating_base();
    config.base.seed = 20 + i;
    config.resize_homogeneous(2 + i % 3);
    config.placement = all_placement_policies()[i % 4];
    config.work_stealing = i % 2 == 0;
    return fleet_report_json(FleetService(config).run().report);
  };
  const auto serial = exec::parallel_map_jobs(1, 4, run_config);
  const auto threaded = exec::parallel_map_jobs(8, 4, run_config);
  ASSERT_EQ(serial.size(), threaded.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i], threaded[i]) << "config " << i;
  }
}

TEST(FleetTest, FourDevicesBeatOneUnderEveryPolicyAtSaturation) {
  // The acceptance criterion: at 4x single-device saturation load, adding
  // devices must raise goodput under EVERY placement policy.
  FleetConfig single;
  single.base = saturating_multiclass_base();
  const double single_goodput =
      FleetService(single).run().report.goodput_per_sec;
  ASSERT_GT(single_goodput, 0.0);

  for (const PlacementPolicy policy : all_placement_policies()) {
    FleetConfig fleet;
    fleet.base = saturating_multiclass_base();
    fleet.resize_homogeneous(4);
    fleet.placement = policy;
    const FleetResult result = FleetService(fleet).run();
    EXPECT_GT(result.report.goodput_per_sec, single_goodput)
        << placement_policy_name(policy);
    check_conservation(result.report);
    check_job_identity(result);
  }
}

TEST(FleetTest, WorkStealingMovesJobsAndPreservesJobIdentity) {
  // Class-affinity with one class funnels every arrival to device 0; with
  // stealing on, the idle peers must take work from its queue, and no job
  // may be duplicated or lost in transit.
  FleetConfig config;
  config.base = saturating_base();
  config.base.queue_cap = 16;
  config.resize_homogeneous(4);
  config.placement = PlacementPolicy::ClassAffinity;
  config.work_stealing = true;
  const FleetResult result = FleetService(config).run();

  EXPECT_GT(result.report.stolen, 0u);
  EXPECT_EQ(result.report.placement_histogram[0], result.report.arrived);
  std::uint64_t stolen_in = 0;
  std::uint64_t stolen_out = 0;
  for (const FleetDeviceStats& dev : result.report.devices) {
    stolen_in += dev.stolen_in;
    stolen_out += dev.stolen_out;
  }
  EXPECT_EQ(stolen_in, result.report.stolen);
  EXPECT_EQ(stolen_out, result.report.stolen);
  EXPECT_EQ(result.report.devices[0].stolen_in, 0u);
  check_conservation(result.report);
  check_job_identity(result);

  // Stealing strictly helps here: the no-steal run completes less.
  FleetConfig no_steal = config;
  no_steal.work_stealing = false;
  const FleetResult baseline = FleetService(no_steal).run();
  EXPECT_GT(result.report.completed, baseline.report.completed);
}

TEST(FleetTest, DeviceBreakerQuarantinesAndRebalances) {
  // A hot allocation-fault plan quarantines jobs (pinned allocs exhaust
  // their bounded retries) until the per-device health breakers trip;
  // tripped devices must hand their queued jobs to healthy peers
  // (requeued) without breaking conservation or job identity.
  FleetConfig config;
  config.base = saturating_base();
  // Slow jobs keep the queues deep, so a tripping device has something to
  // hand over.
  config.base.classes.clear();
  SyntheticApp::Spec slow;
  slow.num_kernels = 4;
  slow.block_duration = 100 * kMicrosecond;
  config.base.classes.push_back(
      {fw::WorkloadItem{"slow", [slow] {
                          return std::make_unique<SyntheticApp>(slow);
                        }},
       0});
  config.base.queue_cap = 16;
  config.base.fault_plan.enabled = true;
  config.base.fault_plan.seed = 5;
  config.base.fault_plan.host_alloc_failure_rate = 0.85;
  config.resize_homogeneous(2);
  config.placement = PlacementPolicy::RoundRobin;
  config.device_breaker_enabled = true;
  config.device_breaker.failure_threshold = 2;
  config.device_breaker.cooldown = 500 * kMicrosecond;
  const FleetResult result = FleetService(config).run();

  EXPECT_GT(result.report.quarantined, 0u);
  EXPECT_GT(result.report.device_breaker_trips, 0u);
  EXPECT_GT(result.report.requeued, 0u);
  std::uint64_t requeued_in = 0;
  std::uint64_t requeued_out = 0;
  for (const FleetDeviceStats& dev : result.report.devices) {
    requeued_in += dev.requeued_in;
    requeued_out += dev.requeued_out;
    EXPECT_FALSE(dev.breaker_final_state.empty());
  }
  EXPECT_EQ(requeued_in, result.report.requeued);
  // Rebalanced jobs that get shed at the new device's full queue are
  // counted out of the victim but land as shed, not as requeued_in.
  EXPECT_GE(requeued_out, requeued_in);
  check_conservation(result.report);
  check_job_identity(result);

  // The run is still deterministic under faults + rebalancing.
  const FleetResult again = FleetService(config).run();
  EXPECT_EQ(fleet_report_json(result.report), fleet_report_json(again.report));
}

TEST(FleetTest, HeterogeneousFleetRunsAndConserves) {
  FleetConfig config;
  config.base = saturating_base();
  config.devices = {gpu::DeviceSpec::tesla_k20(),
                    gpu::DeviceSpec::single_copy_engine()};
  config.placement = PlacementPolicy::CopyAware;
  const FleetResult result = FleetService(config).run();
  ASSERT_EQ(result.report.devices.size(), 2u);
  EXPECT_NE(result.report.devices[0].name, result.report.devices[1].name);
  EXPECT_GT(result.report.completed, 0u);
  check_conservation(result.report);
  check_job_identity(result);
}

TEST(FleetTest, ValidateRejectsBadConfigs) {
  FleetConfig config;  // no classes
  EXPECT_THROW(FleetService(config).run(), hq::Error);

  FleetConfig bad_penalty;
  bad_penalty.base = serve_base();
  bad_penalty.copy_penalty = -1.0;
  EXPECT_THROW(bad_penalty.validate(), hq::Error);
}

}  // namespace
}  // namespace hq::fleet
