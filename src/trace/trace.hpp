// Execution-span recording.
//
// The simulated device and runtime emit spans (kernel executions, memory
// transfers, lock waits) tagged with a lane (stream index or engine) and the
// owning application instance. The recorder is the data source for:
//   * the ASCII timeline renderer (reproducing the paper's Visual Profiler
//     screenshots, Figs. 1/2/5, as text),
//   * Chrome-trace JSON export (chrome://tracing / Perfetto),
//   * the effective-memory-transfer-latency metric (paper Eq. 1-2).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/units.hpp"

namespace hq::trace {

enum class SpanKind : std::uint8_t {
  MemcpyHtoD,
  MemcpyDtoH,
  Kernel,
  HostCompute,
  LockWait,
};

/// Short label for a span kind ("HtoD", "DtoH", "kernel", ...).
const char* span_kind_name(SpanKind kind);

/// One closed interval of activity attributed to a lane and an application.
struct Span {
  std::int32_t lane = 0;    ///< row identifier; stream index by convention
  std::int32_t app_id = -1; ///< owning application instance, -1 if none
  SpanKind kind = SpanKind::Kernel;
  std::string name;
  TimeNs begin = 0;
  TimeNs end = 0;

  DurationNs duration() const { return end - begin; }
};

class Recorder;

/// Stable 64-bit digest of a recorder's spans (FNV-1a over every field of
/// every span, in recording order). Bit-identical across platforms and
/// toolchains, so it serves as the determinism fingerprint of a whole run:
/// two runs of the same scenario must produce equal digests, and any change
/// to the simulated schedule shows up as a digest change. Used by the golden
/// tests, the seed-sweep determinism tests, and the hqfuzz oracles.
std::uint64_t digest(const Recorder& recorder);

/// Append-only collection of spans with simple query helpers.
class Recorder {
 public:
  void add(Span span);

  const std::vector<Span>& spans() const { return spans_; }
  bool empty() const { return spans_.empty(); }
  std::size_t size() const { return spans_.size(); }
  void clear() { spans_.clear(); }

  std::vector<Span> by_app(std::int32_t app_id) const;
  std::vector<Span> by_kind(SpanKind kind) const;
  std::vector<Span> by_lane(std::int32_t lane) const;

  /// Zero-copy filtering visitors: unlike the by_* helpers above these do
  /// not materialize a span vector per query, so a caller that visits every
  /// app still touches each span only once per visit instead of paying an
  /// allocation + full copy per app.
  template <typename Pred, typename Fn>
  void for_each_if(Pred&& pred, Fn&& fn) const {
    for (const Span& s : spans_) {
      if (pred(s)) fn(s);
    }
  }
  template <typename Fn>
  void for_each_app(std::int32_t app_id, Fn&& fn) const {
    for_each_if([app_id](const Span& s) { return s.app_id == app_id; }, fn);
  }
  template <typename Fn>
  void for_each_kind(SpanKind kind, Fn&& fn) const {
    for_each_if([kind](const Span& s) { return s.kind == kind; }, fn);
  }

  /// Earliest span begin; nullopt when empty.
  std::optional<TimeNs> min_time() const;
  /// Latest span end; nullopt when empty.
  std::optional<TimeNs> max_time() const;

 private:
  std::vector<Span> spans_;
};

/// One-pass per-app span index. Extracting per-app metrics with
/// Recorder::by_app costs O(apps * spans) plus a copy of every matching
/// span per query; building this index once costs O(spans log apps) and
/// each subsequent per-app lookup is O(log apps). The pointers alias the
/// source recorder, which must outlive the index and not grow while the
/// index is in use.
class AppIndex {
 public:
  explicit AppIndex(const Recorder& recorder) {
    for (const Span& s : recorder.spans()) {
      by_app_[s.app_id].push_back(&s);
    }
  }

  /// Spans of one app, in recording order; empty for an unknown app.
  const std::vector<const Span*>& spans_for(std::int32_t app_id) const {
    static const std::vector<const Span*> kEmpty;
    const auto it = by_app_.find(app_id);
    return it == by_app_.end() ? kEmpty : it->second;
  }

  /// Distinct app ids seen, ascending (includes -1 for unattributed spans).
  std::vector<std::int32_t> app_ids() const {
    std::vector<std::int32_t> out;
    out.reserve(by_app_.size());
    for (const auto& [id, spans] : by_app_) out.push_back(id);
    return out;
  }

  std::size_t app_count() const { return by_app_.size(); }

 private:
  std::map<std::int32_t, std::vector<const Span*>> by_app_;
};

}  // namespace hq::trace
