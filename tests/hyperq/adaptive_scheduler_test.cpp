#include "hyperq/adaptive_scheduler.hpp"

#include <gtest/gtest.h>

#include <map>

#include "common/check.hpp"

namespace hq::fw {
namespace {

/// Synthetic objective: penalize adjacent slots of the same type; the global
/// optimum is a perfectly alternating order (which Round-Robin achieves for
/// equal counts).
double adjacency_penalty(const std::vector<Slot>& schedule) {
  double score = 0;
  for (std::size_t i = 1; i < schedule.size(); ++i) {
    if (schedule[i].type == schedule[i - 1].type) score += 1.0;
  }
  return score;
}

TEST(AdaptiveSchedulerTest, FindsRoundRobinForAdjacencyObjective) {
  AdaptiveScheduler::Options options;
  options.evaluation_budget = 10;
  AdaptiveScheduler scheduler(options);
  const int counts[] = {4, 4};
  const auto outcome = scheduler.optimize(counts, adjacency_penalty);
  // Round-Robin has zero adjacent repeats; the canonical phase finds it.
  EXPECT_EQ(outcome.best_score, 0.0);
  EXPECT_EQ(outcome.best_canonical_score, 0.0);
}

TEST(AdaptiveSchedulerTest, HillClimbingImprovesOnCanonicalOrders) {
  // Objective that none of the canonical orders optimize: slot (type 1,
  // instance 1) must sit exactly in the middle.
  auto objective = [](const std::vector<Slot>& schedule) -> double {
    for (std::size_t i = 0; i < schedule.size(); ++i) {
      if (schedule[i] == Slot{1, 1}) {
        const double mid = static_cast<double>(schedule.size()) / 2.0;
        return std::abs(static_cast<double>(i) - mid) + adjacency_penalty(schedule);
      }
    }
    return 1e9;
  };
  AdaptiveScheduler::Options options;
  options.evaluation_budget = 200;
  options.seed = 3;
  AdaptiveScheduler scheduler(options);
  const int counts[] = {6, 6};
  const auto outcome = scheduler.optimize(counts, objective);
  EXPECT_LT(outcome.best_score, outcome.best_canonical_score);
}

TEST(AdaptiveSchedulerTest, RespectsEvaluationBudget) {
  int calls = 0;
  auto counting = [&calls](const std::vector<Slot>&) -> double {
    ++calls;
    return 1.0;
  };
  AdaptiveScheduler::Options options;
  options.evaluation_budget = 17;
  AdaptiveScheduler scheduler(options);
  const int counts[] = {3, 3};
  const auto outcome = scheduler.optimize(counts, counting);
  EXPECT_EQ(calls, 17);
  EXPECT_EQ(outcome.evaluations, 17);
  EXPECT_EQ(outcome.history.size(), 17u);
}

TEST(AdaptiveSchedulerTest, HistoryIsMonotoneNonIncreasing) {
  Rng noise(5);
  auto objective = [&noise](const std::vector<Slot>&) -> double {
    return noise.next_double();
  };
  AdaptiveScheduler::Options options;
  options.evaluation_budget = 50;
  AdaptiveScheduler scheduler(options);
  const int counts[] = {4, 4};
  const auto outcome = scheduler.optimize(counts, objective);
  for (std::size_t i = 1; i < outcome.history.size(); ++i) {
    EXPECT_LE(outcome.history[i], outcome.history[i - 1]);
  }
  EXPECT_DOUBLE_EQ(outcome.history.back(), outcome.best_score);
}

TEST(AdaptiveSchedulerTest, DeterministicPerSeed) {
  auto objective = [](const std::vector<Slot>& schedule) -> double {
    // Arbitrary deterministic score.
    double score = 0;
    for (std::size_t i = 0; i < schedule.size(); ++i) {
      score += static_cast<double>(schedule[i].type * 31 + schedule[i].instance) *
               static_cast<double>(i);
    }
    return score;
  };
  AdaptiveScheduler::Options options;
  options.evaluation_budget = 40;
  options.seed = 11;
  const int counts[] = {5, 5};
  const auto a = AdaptiveScheduler(options).optimize(counts, objective);
  const auto b = AdaptiveScheduler(options).optimize(counts, objective);
  EXPECT_EQ(a.best_schedule, b.best_schedule);
  EXPECT_DOUBLE_EQ(a.best_score, b.best_score);
}

TEST(AdaptiveSchedulerTest, BestScheduleIsValidPermutation) {
  AdaptiveScheduler::Options options;
  options.evaluation_budget = 60;
  AdaptiveScheduler scheduler(options);
  const int counts[] = {3, 7};
  const auto outcome =
      scheduler.optimize(counts, [](const std::vector<Slot>& s) {
        return adjacency_penalty(s);
      });
  ASSERT_EQ(outcome.best_schedule.size(), 10u);
  std::map<int, std::vector<int>> instances;
  for (const Slot& slot : outcome.best_schedule) {
    instances[slot.type].push_back(slot.instance);
  }
  EXPECT_EQ(instances[0].size(), 3u);
  EXPECT_EQ(instances[1].size(), 7u);
}

TEST(AdaptiveSchedulerTest, PooledSearchMatchesSerialSearch) {
  // The trajectory depends on (seed, budget, proposal_batch) only — never
  // on whether a pool evaluates the rounds, nor on its thread count.
  auto objective = [](const std::vector<Slot>& schedule) -> double {
    double score = 0;
    for (std::size_t i = 0; i < schedule.size(); ++i) {
      score += static_cast<double>(schedule[i].type * 17 + schedule[i].instance) *
               static_cast<double>(i % 5);
    }
    return score + adjacency_penalty(schedule);
  };
  const int counts[] = {6, 6};
  for (const int batch : {1, 4}) {
    AdaptiveScheduler::Options options;
    options.evaluation_budget = 45;
    options.seed = 11;
    options.proposal_batch = batch;
    const auto serial = AdaptiveScheduler(options).optimize(counts, objective);

    for (const int threads : {2, 8}) {
      exec::ThreadPool pool(threads);
      options.pool = &pool;
      const auto pooled =
          AdaptiveScheduler(options).optimize(counts, objective);
      EXPECT_EQ(pooled.best_schedule, serial.best_schedule)
          << "batch=" << batch << " threads=" << threads;
      EXPECT_DOUBLE_EQ(pooled.best_score, serial.best_score);
      EXPECT_EQ(pooled.evaluations, serial.evaluations);
      EXPECT_EQ(pooled.history, serial.history);
      EXPECT_EQ(pooled.best_canonical, serial.best_canonical);
    }
  }
}

TEST(AdaptiveSchedulerTest, BatchOneIsTheSerialGreedyClimb) {
  // proposal_batch = 1 must reproduce the original serial algorithm bit for
  // bit: same RNG consumption, same acceptances, same history.
  auto objective = [](const std::vector<Slot>& schedule) -> double {
    return adjacency_penalty(schedule) +
           static_cast<double>(schedule.front().type);
  };
  const int counts[] = {5, 5};
  AdaptiveScheduler::Options defaults;
  defaults.evaluation_budget = 30;
  defaults.seed = 4;
  const auto reference = AdaptiveScheduler(defaults).optimize(counts, objective);

  AdaptiveScheduler::Options explicit_batch = defaults;
  explicit_batch.proposal_batch = 1;
  const auto batched =
      AdaptiveScheduler(explicit_batch).optimize(counts, objective);
  EXPECT_EQ(batched.best_schedule, reference.best_schedule);
  EXPECT_EQ(batched.history, reference.history);
}

TEST(AdaptiveSchedulerTest, TooSmallBudgetThrows) {
  AdaptiveScheduler::Options options;
  options.evaluation_budget = 3;
  AdaptiveScheduler scheduler(options);
  const int counts[] = {2, 2};
  EXPECT_THROW(scheduler.optimize(counts, adjacency_penalty), hq::Error);
}

TEST(AdaptiveSchedulerTest, SingleSlotWorkloadDegenerates) {
  AdaptiveScheduler::Options options;
  options.evaluation_budget = 10;
  AdaptiveScheduler scheduler(options);
  const int counts[] = {1};
  const auto outcome =
      scheduler.optimize(counts, [](const std::vector<Slot>&) { return 1.0; });
  ASSERT_EQ(outcome.best_schedule.size(), 1u);
  // Canonical phase runs; no swaps possible on one slot.
  EXPECT_EQ(outcome.evaluations, 5);
}

}  // namespace
}  // namespace hq::fw
