// Scenario: the streaming GPU service from streaming_service.cpp pushed past
// saturation. Arrivals outrun the device, so an unbounded queue just converts
// every job into a deadline miss; a bounded admission queue sheds the excess
// and keeps the jobs it does accept inside their SLO. The sweep shows the
// classic overload trade-off: tightening the queue cap sheds more work, but
// goodput (jobs finishing within their deadline) climbs dramatically.
#include <cstdio>

#include "common/table.hpp"
#include "rodinia/registry.hpp"
#include "serve/report.hpp"
#include "serve/service.hpp"

int main() {
  using namespace hq;

  serve::ServiceConfig base;
  base.window = 40 * kMillisecond;
  base.mean_interarrival = 60 * kMicrosecond;  // ~2x the service rate
  base.num_streams = 4;
  base.max_inflight = 2;
  base.deadline = 2 * kMillisecond;
  rodinia::AppParams small = {256, 4, 1};
  base.classes = {
      {rodinia::make_app("needle", small), 0},
      {rodinia::make_app("srad", small), 0},
  };
  base.collect_metrics = false;

  TextTable table;
  table.set_header({"queue cap", "arrived", "shed", "completed", "late",
                    "goodput/s", "p95 turnaround"});
  for (const std::size_t cap : {std::size_t{0}, std::size_t{32},
                                std::size_t{16}, std::size_t{8}}) {
    auto config = base;
    config.queue_cap = cap;
    const auto report = serve::Service(config).run().report;
    table.add_row({cap == 0 ? "unbounded" : std::to_string(cap),
                   std::to_string(report.arrived),
                   std::to_string(report.shed_queue_full),
                   std::to_string(report.completed),
                   std::to_string(report.completed_late),
                   format_fixed(report.goodput_per_sec, 0),
                   format_duration(report.p95_turnaround)});
  }
  std::printf("overloaded GPU service: jobs arrive ~2x faster than they can "
              "be served,\n2-ms deadline, mix = {needle, srad}\n\n%s\n",
              table.render().c_str());
  std::printf("past saturation an unbounded queue only manufactures late\n"
              "jobs; shedding at admission trades raw throughput for jobs\n"
              "that actually meet their deadline (goodput).\n");
  return 0;
}
