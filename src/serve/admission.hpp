// Bounded admission control for the streaming serving layer
// (library hq_serve).
//
// The serving Service (src/serve/service.hpp) feeds every arrival through
// one AdmissionQueue. The queue bounds the number of jobs the service holds
// (queued + inflight); when the bound is hit a shed policy picks a victim —
// either the arriving job or a previously queued one — and the victim is
// rejected without ever touching the device (the "shed jobs consume no
// device time" invariant, checked by verify_serve_accounting).
//
// Determinism contract: shedding decisions depend only on the queue
// contents, the virtual clock, and the policy — never on host state — and
// every tie breaks on job id, so admission trajectories are bit-identical
// across runs and --jobs counts.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <string>

#include "common/units.hpp"

namespace hq::serve {

/// Victim-selection policy applied when the queue is full.
enum class ShedPolicy : std::uint8_t {
  /// Reject the arriving job (classic bounded-queue tail drop).
  DropTail,
  /// Shed the job with the least deadline slack among queued + arriving;
  /// jobs without a deadline never lose this comparison. Keeps the jobs
  /// most likely to still meet their SLO.
  DeadlineAware,
  /// Shed the lowest-priority job among queued + arriving (larger priority
  /// values are more important).
  Priority,
};

/// Canonical name used in CLI flags and reports ("drop-tail", "deadline",
/// "priority").
const char* shed_policy_name(ShedPolicy policy);

/// Inverse of shed_policy_name; nullopt on an unknown name.
std::optional<ShedPolicy> parse_shed_policy(const std::string& name);

/// Admission-relevant view of one job.
struct QueuedJob {
  int job_id = -1;
  /// Priority class; larger = more important (Priority policy only).
  int priority = 0;
  TimeNs arrived_at = 0;
  /// Absolute deadline; 0 = no deadline.
  TimeNs deadline_at = 0;
};

/// FIFO dispatch queue with a capacity bound over queued + inflight jobs
/// and policy-driven shedding. Not a scheduler: dispatch order is always
/// arrival order; the policy only chooses who to reject under overload.
class AdmissionQueue {
 public:
  struct Config {
    /// Bound on queued + inflight jobs; 0 = unbounded (never sheds).
    std::size_t capacity = 0;
    ShedPolicy policy = ShedPolicy::DropTail;
  };

  explicit AdmissionQueue(Config config) : config_(config) {}

  const Config& config() const { return config_; }

  /// Offers an arriving job. With room (capacity 0, or queued + inflight <
  /// capacity) the job is queued and nullopt returned. Otherwise the policy
  /// picks a victim among queued jobs and the arrival: the victim is
  /// returned shed (removed from the queue if it was queued, with the
  /// arrival queued in its place).
  std::optional<QueuedJob> offer(const QueuedJob& job, TimeNs now,
                                 std::size_t inflight);

  /// Pops the oldest queued job. The queue must not be empty.
  QueuedJob pop_front();

  /// Pops the newest queued job — the work-stealing end (src/fleet): a
  /// thief takes the job that least disrupts the victim's FIFO latency
  /// ordering. The queue must not be empty.
  QueuedJob pop_back();

  /// Returns a previously popped job to the head/tail of the queue without
  /// re-counting admission or re-running the shed policy (the job was
  /// already accepted once). Used by the fleet layer when a dispatch is
  /// blocked by the device health breaker (restore_front preserves FIFO
  /// order) or a steal attempt is abandoned (restore_back reverts the
  /// pop_back). Never called by the single-device Service.
  void restore_front(const QueuedJob& job);
  void restore_back(const QueuedJob& job);

  bool empty() const { return queue_.empty(); }
  std::size_t size() const { return queue_.size(); }

  // --- counters (monotonic, for reports) -----------------------------------
  std::size_t peak_depth() const { return peak_depth_; }
  std::uint64_t accepted() const { return accepted_; }
  std::uint64_t sheds() const { return sheds_; }

 private:
  Config config_;
  std::deque<QueuedJob> queue_;
  std::size_t peak_depth_ = 0;
  std::uint64_t accepted_ = 0;
  std::uint64_t sheds_ = 0;
};

}  // namespace hq::serve
