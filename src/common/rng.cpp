#include "common/rng.hpp"

#include <cmath>

namespace hq {
namespace {

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
  // xoshiro must not start from the all-zero state.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::next_below(std::uint64_t bound) {
  HQ_CHECK(bound > 0);
  // Lemire-style rejection to avoid modulo bias.
  const std::uint64_t threshold = (0 - bound) % bound;
  for (;;) {
    const std::uint64_t r = next_u64();
    if (r >= threshold) return r % bound;
  }
}

std::int64_t Rng::next_in(std::int64_t lo, std::int64_t hi) {
  HQ_CHECK(lo <= hi);
  const std::uint64_t span =
      static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
  if (span == 0) {  // full 64-bit range
    return static_cast<std::int64_t>(next_u64());
  }
  return lo + static_cast<std::int64_t>(next_below(span));
}

double Rng::next_double() {
  // 53 random mantissa bits.
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::next_double_in(double lo, double hi) {
  HQ_CHECK(lo <= hi);
  return lo + (hi - lo) * next_double();
}

double Rng::next_gaussian() {
  if (have_cached_gaussian_) {
    have_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  double u, v, s;
  do {
    u = next_double_in(-1.0, 1.0);
    v = next_double_in(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double factor = std::sqrt(-2.0 * std::log(s) / s);
  cached_gaussian_ = v * factor;
  have_cached_gaussian_ = true;
  return u * factor;
}

Rng Rng::split() { return Rng(next_u64() ^ 0xa5a5a5a5deadbeefull); }

}  // namespace hq
