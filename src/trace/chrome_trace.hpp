// Chrome-trace (chrome://tracing / Perfetto) JSON export of a recorded
// timeline. Each lane becomes a tid; spans become complete ("ph":"X") events
// with microsecond timestamps.
#pragma once

#include <iosfwd>
#include <string>

#include "trace/trace.hpp"

namespace hq::trace {

/// Writes the recorder contents as a Chrome-trace JSON array.
void write_chrome_trace(const Recorder& recorder, std::ostream& os);

/// Convenience: render to a string.
std::string chrome_trace_json(const Recorder& recorder);

}  // namespace hq::trace
