// Simulated NVIDIA Management Library (NVML).
//
// The paper's PowerMonitor class "links to the NVML API and logs GPU power
// draw readings from the on-board sensor" at a 15 ms period (oversampled at
// 66.7 Hz to reduce noise). This module reproduces the relevant behaviour of
// that sensor on the simulated device:
//   * the reading is a *windowed average* of true board power since the
//     previous query (the on-board sensor integrates, it does not sample
//     instantaneously),
//   * successive readings are low-pass filtered (EMA),
//   * deterministic pseudo-random gaussian noise and quantization model the
//     measurement error the paper oversamples to suppress.
#pragma once

#include "common/rng.hpp"
#include "common/units.hpp"
#include "gpusim/device.hpp"
#include "sim/simulator.hpp"

namespace hq::nvml {

struct SensorOptions {
  /// EMA weight applied to each new windowed average (1.0 = no filtering).
  double filter_alpha = 0.4;
  /// Standard deviation of additive gaussian read noise, in watts.
  double noise_stddev = 0.8;
  /// Reading granularity in watts (NVML reports milliwatts, but the K20
  /// sensor's effective resolution is far coarser).
  double quantization = 0.25;
  /// Seed for the deterministic noise stream.
  std::uint64_t seed = 0x5eed0f0da7a5eedull;
};

/// On-board power sensor model. Reads are lazy: each read averages the true
/// power over the window since the previous read and folds it into the
/// filtered state.
class PowerSensor {
 public:
  PowerSensor(sim::Simulator& sim, const gpu::Device& device,
              SensorOptions options = {});

  /// Current sensor reading in watts.
  Watts read();

  /// Number of reads served (diagnostic).
  std::uint64_t reads() const { return reads_; }

 private:
  sim::Simulator& sim_;
  const gpu::Device& device_;
  SensorOptions options_;
  Rng rng_;

  bool primed_ = false;
  TimeNs last_read_time_ = 0;
  Joules last_energy_ = 0.0;
  double filtered_ = 0.0;
  std::uint64_t reads_ = 0;
};

/// NVML-style device query facade (nvmlDeviceGetPowerUsage and friends).
class ManagementLibrary {
 public:
  ManagementLibrary(sim::Simulator& sim, const gpu::Device& device,
                    SensorOptions sensor_options = {});

  /// Sensor power reading in milliwatts, like nvmlDeviceGetPowerUsage.
  unsigned int power_usage_mw();
  /// Sensor power reading in watts.
  Watts power_usage_watts();
  /// Exact cumulative board energy (ground truth, used for energy metrics).
  Joules total_energy() const { return device_.energy(); }
  /// GPU utilization percentage over the window since the last call, like
  /// nvmlDeviceGetUtilizationRates().gpu (fraction of time at least one
  /// kernel was resident).
  double utilization_gpu();
  const std::string& device_name() const { return device_.spec().name; }

 private:
  sim::Simulator& sim_;
  const gpu::Device& device_;
  PowerSensor sensor_;
  TimeNs util_last_time_ = 0;
  double util_last_busy_ = 0.0;
};

}  // namespace hq::nvml
