// Deterministic fan-out helpers on top of ThreadPool.
//
// parallel_map is the workhorse used by the sweep runner, the fuzzer, and
// the figure benches: it evaluates fn(0..count-1) with bounded concurrency
// and returns the results **in index order**, so anything folded over the
// result vector is byte-identical no matter how many threads ran.
#pragma once

#include <cstddef>
#include <vector>

#include "exec/thread_pool.hpp"

namespace hq::exec {

/// Evaluates fn(i) for i in [0, count) and returns the results indexed by i.
/// A null pool runs serially inline. If any invocation throws, the exception
/// for the **lowest** index is rethrown (after every job has settled), so
/// failure behaviour is deterministic too.
template <typename Fn>
auto parallel_map(ThreadPool* pool, std::size_t count, Fn&& fn)
    -> std::vector<std::invoke_result_t<Fn&, std::size_t>> {
  using R = std::invoke_result_t<Fn&, std::size_t>;
  std::vector<R> out;
  out.reserve(count);
  if (pool == nullptr) {
    for (std::size_t i = 0; i < count; ++i) out.push_back(fn(i));
    return out;
  }
  std::vector<Future<R>> futures;
  futures.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    futures.push_back(pool->submit([&fn, i] { return fn(i); }));
  }
  // Settle everything first so an early rethrow can't unwind past jobs that
  // still reference fn.
  for (const Future<R>& f : futures) f.wait();
  for (const Future<R>& f : futures) out.push_back(f.get());
  return out;
}

/// parallel_map with an ad-hoc pool of `jobs` workers (1 = serial inline).
template <typename Fn>
auto parallel_map_jobs(int jobs, std::size_t count, Fn&& fn)
    -> std::vector<std::invoke_result_t<Fn&, std::size_t>> {
  if (jobs <= 1) return parallel_map(nullptr, count, std::forward<Fn>(fn));
  ThreadPool pool(jobs);
  return parallel_map(&pool, count, std::forward<Fn>(fn));
}

/// parallel_map that submits ceil(count / batch_size) pool jobs, each
/// evaluating a contiguous index range [b*batch_size, min(count, ...)).
/// Cheaper per-item than one future per index when fn is short, and each
/// worker touches a contiguous slice (better locality, no interleaved
/// queue contention). Results are still returned **in index order** — the
/// batch size can never change the output — and if any invocation throws,
/// the exception for the lowest index is rethrown after every job settled
/// (batches are contiguous and ascending, so batch order = index order).
template <typename Fn>
auto parallel_map_batched(ThreadPool* pool, std::size_t count,
                          std::size_t batch_size, Fn&& fn)
    -> std::vector<std::invoke_result_t<Fn&, std::size_t>> {
  using R = std::invoke_result_t<Fn&, std::size_t>;
  if (pool == nullptr || count == 0) {
    return parallel_map(nullptr, count, std::forward<Fn>(fn));
  }
  if (batch_size == 0) batch_size = 1;
  if (batch_size > count) batch_size = count;
  const std::size_t batches = (count + batch_size - 1) / batch_size;
  std::vector<Future<std::vector<R>>> futures;
  futures.reserve(batches);
  for (std::size_t b = 0; b < batches; ++b) {
    const std::size_t begin = b * batch_size;
    const std::size_t end = begin + batch_size < count ? begin + batch_size
                                                       : count;
    futures.push_back(pool->submit([&fn, begin, end] {
      std::vector<R> chunk;
      chunk.reserve(end - begin);
      for (std::size_t i = begin; i < end; ++i) chunk.push_back(fn(i));
      return chunk;
    }));
  }
  for (const auto& f : futures) f.wait();
  std::vector<R> out;
  out.reserve(count);
  for (auto& f : futures) {
    std::vector<R> chunk = f.get();
    for (R& r : chunk) out.push_back(std::move(r));
  }
  return out;
}

/// Batch size that spreads `count` items over `jobs` workers with ~4
/// batches per worker — enough slack to absorb uneven run times without
/// per-item submission overhead.
inline std::size_t default_batch_size(int jobs, std::size_t count) {
  if (jobs <= 1) return count;
  const std::size_t lanes = static_cast<std::size_t>(jobs) * 4;
  return count < lanes ? 1 : count / lanes;
}

}  // namespace hq::exec
