file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_copy_engines.dir/bench_ablation_copy_engines.cpp.o"
  "CMakeFiles/bench_ablation_copy_engines.dir/bench_ablation_copy_engines.cpp.o.d"
  "bench_ablation_copy_engines"
  "bench_ablation_copy_engines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_copy_engines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
