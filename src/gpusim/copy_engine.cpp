#include "gpusim/copy_engine.hpp"

#include <cmath>

#include "common/check.hpp"
#include "gpusim/observer.hpp"

namespace hq::gpu {

CopyEngine::CopyEngine(sim::Simulator& sim, CopyDirection direction,
                       double bytes_per_sec, DurationNs overhead,
                       std::function<void()> pre_state_change)
    : sim_(sim),
      direction_(direction),
      bytes_per_sec_(bytes_per_sec),
      overhead_(overhead),
      pre_state_change_(std::move(pre_state_change)) {
  HQ_CHECK(bytes_per_sec_ > 0);
  HQ_CHECK(pre_state_change_ != nullptr);
}

DurationNs CopyEngine::service_time(Bytes bytes) const {
  const double transfer_ns =
      static_cast<double>(bytes) / bytes_per_sec_ * 1e9;
  return overhead_ + static_cast<DurationNs>(std::ceil(transfer_ns));
}

void CopyEngine::enqueue(Transaction txn) {
  HQ_CHECK(txn.ready != nullptr);
  HQ_CHECK(txn.on_served != nullptr);
  if (observer_ != nullptr) {
    observer_->on_copy_enqueued(sim_.now(), direction_, txn.op_id, txn.stream,
                                txn.app_id, txn.bytes);
  }
  queue_.push_back(std::move(txn));
  pump();
}

void CopyEngine::pump() {
  if (busy_ || queue_.empty()) return;
  // Head-of-line blocking: only the queue head is ever examined, exactly
  // like the hardware copy queue.
  if (!queue_.front().ready()) return;
  begin_service();
}

void CopyEngine::begin_service() {
  Transaction txn = std::move(queue_.front());
  queue_.pop_front();

  pre_state_change_();
  busy_ = true;
  const TimeNs begin = sim_.now();
  DurationNs dur = service_time(txn.bytes);
  if (fault_hook_ != nullptr) {
    dur += fault_hook_(begin, direction_, txn.op_id, txn.bytes, dur);
  }
  sim_.schedule(dur, [this, txn = std::move(txn), begin] {
    pre_state_change_();
    busy_ = false;
    bytes_transferred_ += txn.bytes;
    ++transactions_served_;
    if (observer_ != nullptr) {
      observer_->on_copy_served(sim_.now(), direction_, txn.op_id, txn.app_id,
                                begin, sim_.now(), txn.bytes);
    }
    txn.on_served(begin, sim_.now());
    pump();
  });
}

}  // namespace hq::gpu
