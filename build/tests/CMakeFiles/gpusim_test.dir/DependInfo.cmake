
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/gpusim/block_scheduler_test.cpp" "tests/CMakeFiles/gpusim_test.dir/gpusim/block_scheduler_test.cpp.o" "gcc" "tests/CMakeFiles/gpusim_test.dir/gpusim/block_scheduler_test.cpp.o.d"
  "/root/repo/tests/gpusim/copy_engine_modes_test.cpp" "tests/CMakeFiles/gpusim_test.dir/gpusim/copy_engine_modes_test.cpp.o" "gcc" "tests/CMakeFiles/gpusim_test.dir/gpusim/copy_engine_modes_test.cpp.o.d"
  "/root/repo/tests/gpusim/copy_engine_test.cpp" "tests/CMakeFiles/gpusim_test.dir/gpusim/copy_engine_test.cpp.o" "gcc" "tests/CMakeFiles/gpusim_test.dir/gpusim/copy_engine_test.cpp.o.d"
  "/root/repo/tests/gpusim/device_test.cpp" "tests/CMakeFiles/gpusim_test.dir/gpusim/device_test.cpp.o" "gcc" "tests/CMakeFiles/gpusim_test.dir/gpusim/device_test.cpp.o.d"
  "/root/repo/tests/gpusim/priority_test.cpp" "tests/CMakeFiles/gpusim_test.dir/gpusim/priority_test.cpp.o" "gcc" "tests/CMakeFiles/gpusim_test.dir/gpusim/priority_test.cpp.o.d"
  "/root/repo/tests/gpusim/smx_test.cpp" "tests/CMakeFiles/gpusim_test.dir/gpusim/smx_test.cpp.o" "gcc" "tests/CMakeFiles/gpusim_test.dir/gpusim/smx_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/gpusim/CMakeFiles/hq_gpusim.dir/DependInfo.cmake"
  "/root/repo/build/src/cudart/CMakeFiles/hq_cudart.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/hq_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/hq_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/hq_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
