// The framework's abstract Kernel base class (paper Table II).
//
// "We define an abstract Kernel base class from which we can derive specific
// implementations for particular applications. The base class enforces a
// particular interface which allows an application, such as our test
// harness, to access methods on a specific instance of a Kernel object
// without binding to the derived class."
//
// The virtual method set is exactly the paper's Table II:
//   allocateHostMemory    — encapsulates cudaMallocHost calls
//   allocateDeviceMemory  — encapsulates cudaMalloc calls
//   initializeHostMemory  — subroutine(s) for loading/initializing host data
//   transferMemory        — encapsulates cudaMemcpyAsync calls
//   executeKernel         — grid/block setup + kernel function execution
//   freeHostMemory        — encapsulates cudaFreeHost calls
//   freeDeviceMemory      — encapsulates cudaFree calls
#pragma once

#include <string>

#include "cudart/runtime.hpp"
#include "sim/sync.hpp"
#include "sim/task.hpp"
#include "trace/trace.hpp"

namespace hq::fw {

/// Execution context handed to a Kernel instance by the harness. All members
/// are trivially destructible so the context can be passed freely into
/// coroutines (see sim/task.hpp).
struct Context {
  sim::Simulator* sim = nullptr;
  rt::Runtime* runtime = nullptr;
  /// Host-side memory-synchronization mutex (Section III-B); null when the
  /// pseudo-burst transfer mechanism is disabled.
  sim::Mutex* htod_lock = nullptr;
  /// Recorder for host-side spans (lock waits); device spans are recorded by
  /// the device itself.
  trace::Recorder* recorder = nullptr;
  /// Stream assigned for the execution phase (acquired from StreamManager
  /// when the application's child thread starts).
  rt::Stream stream;
  /// Application instance id for trace attribution and metrics.
  int app_id = -1;
  /// Run the real algorithm (byte movement + kernel math). Off for
  /// timing-only studies.
  bool functional = true;
  /// When non-zero, each logical transfer is split into chunks of this many
  /// bytes (the Pai et al. "chunking" ablation). 0 = one transaction per
  /// buffer.
  Bytes transfer_chunk_bytes = 0;
  /// Rodinia's reference implementations use blocking cudaMemcpy: the host
  /// thread waits for each transfer before issuing the next. This is what
  /// lets concurrent applications' transfers interleave in the copy queue
  /// (paper Figure 1). false = cudaMemcpyAsync-style burst submission.
  bool blocking_transfers = true;
};

enum class Direction { HostToDevice, DeviceToHost };

/// Abstract application kernel (paper Table II).
class Kernel {
 public:
  virtual ~Kernel() = default;

  // --- Table II interface --------------------------------------------------
  virtual void allocateHostMemory(Context& ctx) = 0;
  virtual void allocateDeviceMemory(Context& ctx) = 0;
  virtual void initializeHostMemory(Context& ctx) = 0;
  /// Submits the application's transfers for one direction and waits for
  /// them to complete (the Rodinia ports use blocking transfers at stage
  /// boundaries).
  virtual sim::Task transferMemory(Context& ctx, Direction direction) = 0;
  /// Submits every kernel launch of the application's execution pattern and
  /// waits for completion.
  virtual sim::Task executeKernel(Context& ctx) = 0;
  virtual void freeHostMemory(Context& ctx) = 0;
  virtual void freeDeviceMemory(Context& ctx) = 0;

  // --- introspection --------------------------------------------------------
  /// Benchmark name (Table I), e.g. "gaussian".
  virtual const std::string& name() const = 0;
  /// Total bytes moved host-to-device / device-to-host per run.
  virtual Bytes htod_bytes() const = 0;
  virtual Bytes dtoh_bytes() const = 0;
  /// Functional self-check; meaningful only after a functional run.
  virtual bool verify(Context& ctx) const = 0;
  /// Stable 64-bit digest of the application's host-visible outputs,
  /// evaluated after DtoH and before the frees. Used by the hqfuzz
  /// metamorphic oracle "outputs are byte-identical across scheduling
  /// modes". Returns 0 when the application does not implement it.
  virtual std::uint64_t output_digest(Context& /*ctx*/) const { return 0; }
};

}  // namespace hq::fw
