#include "check/serve_invariants.hpp"

#include <map>
#include <set>
#include <sstream>

namespace hq::check {

std::vector<std::string> verify_serve_accounting(const ServeAccounting& acc,
                                                 const trace::Recorder* trace) {
  std::vector<std::string> violations;

  const std::uint64_t accounted = acc.completed_ok + acc.completed_late +
                                  acc.shed_queue_full + acc.shed_breaker +
                                  acc.timed_out_queued + acc.quarantined;
  if (accounted != acc.arrived) {
    std::ostringstream os;
    os << "serve accounting: arrived " << acc.arrived
       << " != accounted " << accounted << " (ok " << acc.completed_ok
       << " + late " << acc.completed_late << " + shed-queue "
       << acc.shed_queue_full << " + shed-breaker " << acc.shed_breaker
       << " + timed-out " << acc.timed_out_queued << " + quarantined "
       << acc.quarantined << ")";
    violations.push_back(os.str());
  }

  const std::uint64_t sheds = acc.shed_queue_full + acc.shed_breaker +
                              acc.timed_out_queued + acc.shed_no_device +
                              acc.shed_failover_exhausted;
  if (acc.undispatched_apps.size() != sheds) {
    std::ostringstream os;
    os << "serve accounting: " << acc.undispatched_apps.size()
       << " undispatched app ids reported but " << sheds
       << " jobs were shed or expired";
    violations.push_back(os.str());
  }

  if (trace != nullptr && !acc.undispatched_apps.empty()) {
    const std::set<std::int32_t> undispatched(acc.undispatched_apps.begin(),
                                              acc.undispatched_apps.end());
    std::map<std::int32_t, std::size_t> leaked;
    for (const trace::Span& s : trace->spans()) {
      if (undispatched.count(s.app_id) != 0) ++leaked[s.app_id];
    }
    for (const auto& [app_id, count] : leaked) {
      std::ostringstream os;
      os << "serve accounting: shed job " << app_id << " owns " << count
         << " trace span(s); shed work must never consume device time";
      violations.push_back(os.str());
    }
  }

  return violations;
}

}  // namespace hq::check
