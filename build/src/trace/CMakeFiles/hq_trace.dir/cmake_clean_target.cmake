file(REMOVE_RECURSE
  "libhq_trace.a"
)
