// Test harness (paper Section IV).
//
// "The execution flow of our test harness begins with loading an application
// scheduling order to execute, instantiating a new class object for each
// separate application, allocating all host and device memory, and
// initializing host memory. Once this has been completed, the host parent
// thread launches a separate thread to monitor the device power consumption
// ... Then the parent thread launches each application class instance on its
// own independent child thread. Within the child thread, each instance runs
// its particular execution pattern (in general, HtoD memory transfer --
// kernel execution -- DtoH memory transfer). After all child threads have
// completed, the host parent thread frees all host and device memory,
// destroys all stream objects, and terminates the power sampling thread."
//
// One Harness::run builds a fresh simulator + device + runtime, executes the
// workload in the given order over NS streams, and returns timing, power,
// energy, per-application and trace results. Runs are fully deterministic.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "fault/fault.hpp"
#include "gpusim/device_spec.hpp"
#include "hyperq/kernel.hpp"
#include "hyperq/metrics.hpp"
#include "hyperq/power_monitor.hpp"
#include "hyperq/stream_manager.hpp"
#include "obs/report.hpp"
#include "obs/telemetry.hpp"
#include "sim/event_fn.hpp"

namespace hq::fw {

/// One application instance in launch order: a display name and a factory
/// creating a fresh Kernel object.
struct WorkloadItem {
  std::string type_name;
  std::function<std::unique_ptr<Kernel>()> factory;
};

struct HarnessConfig {
  gpu::DeviceSpec device = gpu::DeviceSpec::tesla_k20();
  /// Number of streams NS; NA apps on 1 stream = fully serialized, NA apps
  /// on NA streams = fully concurrent.
  int num_streams = 32;
  /// Enables the Section III-B host-side HtoD memory synchronization (the
  /// pseudo-burst / batched transfer mutex).
  bool memory_sync = false;
  /// Pai et al. style transfer chunking ablation; 0 = off.
  Bytes transfer_chunk_bytes = 0;
  /// Blocking (cudaMemcpy-style) transfers, as in the Rodinia reference
  /// implementations. See Context::blocking_transfers.
  bool blocking_transfers = true;
  /// Delay between child-thread launches; prejudices execution order to
  /// follow launch order (Section III-C). The default models the host cost
  /// of pthread creation plus per-thread CUDA setup on the paper's testbed;
  /// it calibrates the copy-queue interleaving depth (Figure 6's ~8x
  /// effective-latency inflation).
  DurationNs launch_stagger = 100 * kMicrosecond;
  /// Run the real algorithms (slower; tests use it, figure benches do not).
  bool functional = false;
  /// Attach the hq_check invariant observer to the device and validate the
  /// run online (clock monotonicity, copy FIFO order, SMX conservation,
  /// LEFTOVER order, stream ordering, memory accounting, energy ≡ ∫power).
  /// A violation aborts the run with a report. Cheap; on by default.
  bool check_invariants = true;
  /// Sample power during the run.
  bool monitor_power = true;
  DurationNs power_period = 15 * kMillisecond;
  nvml::SensorOptions sensor;
  /// Attach the hq_obs telemetry observer (counters, time-series, per-app
  /// interleave attribution; see src/obs/telemetry.hpp). Passive: the
  /// simulated schedule and trace digest are bit-identical either way
  /// (proven against the pinned golden digests). Off by default because the
  /// series buffers cost memory on large sweeps.
  bool collect_telemetry = false;
  /// Deterministic fault plan (see src/fault/fault.hpp). Disabled by
  /// default. An enabled all-zero-rate plan attaches the injector without
  /// perturbing anything — the pinned golden digests stay bit-identical
  /// (proven by the zero-perturbation golden test).
  fault::FaultPlan fault_plan;
  /// Retry policy for transient submission failures (capped exponential
  /// backoff). Only consulted when faults can actually fail submissions.
  rt::RetryPolicy retry;
  /// Per-app watchdog: any app still unfinished this long after the timed
  /// phase begins is flagged quarantined ("watchdog-deadline-exceeded") in
  /// the degraded report. Detection only — the simulation still drains (all
  /// injected delays are finite). 0 = off.
  DurationNs watchdog_timeout = 0;
};

struct HarnessResult {
  /// Timed phase-2 duration: first child launch to last child completion.
  DurationNs makespan = 0;
  TimeNs phase_begin = 0;
  TimeNs phase_end = 0;
  /// Device-integrated (exact) energy over the timed phase.
  Joules energy_exact = 0;
  /// Energy integrated from the sampled power trace (paper methodology).
  Joules energy_sensor = 0;
  Watts average_power = 0;
  Watts peak_power = 0;
  /// Mean thread occupancy over the timed phase.
  double average_occupancy = 0;
  std::vector<AppMetrics> apps;
  std::vector<PowerSample> power_trace;
  /// Full span trace of the run (kernel/copy/lock-wait spans).
  std::shared_ptr<trace::Recorder> trace;
  gpu::Device::Stats device_stats;
  /// Conjunction of per-app verify() results (meaningful in functional runs).
  bool all_verified = true;
  /// Finalized telemetry (nullptr unless config.collect_telemetry).
  std::shared_ptr<obs::TelemetryObserver> telemetry;
  /// Fault accounting and quarantined apps (empty without a fault plan).
  fault::DegradedReport degraded;
  /// Simulator events dispatched by the run. Deterministic for a fixed
  /// scenario, so it doubles as a scheduling-cost metric (bench_sim_single)
  /// and a regression budget (tests/perf).
  std::uint64_t events_processed = 0;
  /// Event-callback storage stats for the run (see sim::Simulator): inline,
  /// pool-slot, and oversize-heap callback counts. The perf budget test
  /// pins `oversize` at zero for the standard workloads.
  sim::CallbackStats callback_stats;
};

class Harness {
 public:
  explicit Harness(HarnessConfig config = {}) : config_(std::move(config)) {}

  /// Executes the workload in the given launch order. Each call is an
  /// independent, deterministic simulation.
  HarnessResult run(const std::vector<WorkloadItem>& workload);

  const HarnessConfig& config() const { return config_; }

 private:
  struct RunState;
  static sim::Task parent_task(RunState* st);
  static sim::Task child_task(RunState* st, int index);
  static sim::Task watchdog_task(RunState* st);

  HarnessConfig config_;
};

/// Builds the run-level header of a telemetry report from a finished run.
/// `workload` and `order` are display strings the harness does not know
/// (e.g. "gaussian+needle", "naive-fifo").
obs::RunInfo telemetry_run_info(const HarnessConfig& config,
                                const HarnessResult& result,
                                std::string workload, std::string order);

/// Per-app report rows (Le, bytes, interleave attribution) in app order.
std::vector<obs::AppReport> telemetry_app_reports(const HarnessResult& result);

}  // namespace hq::fw
