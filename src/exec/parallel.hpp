// Deterministic fan-out helpers on top of ThreadPool.
//
// parallel_map is the workhorse used by the sweep runner, the fuzzer, and
// the figure benches: it evaluates fn(0..count-1) with bounded concurrency
// and returns the results **in index order**, so anything folded over the
// result vector is byte-identical no matter how many threads ran.
#pragma once

#include <cstddef>
#include <vector>

#include "exec/thread_pool.hpp"

namespace hq::exec {

/// Evaluates fn(i) for i in [0, count) and returns the results indexed by i.
/// A null pool runs serially inline. If any invocation throws, the exception
/// for the **lowest** index is rethrown (after every job has settled), so
/// failure behaviour is deterministic too.
template <typename Fn>
auto parallel_map(ThreadPool* pool, std::size_t count, Fn&& fn)
    -> std::vector<std::invoke_result_t<Fn&, std::size_t>> {
  using R = std::invoke_result_t<Fn&, std::size_t>;
  std::vector<R> out;
  out.reserve(count);
  if (pool == nullptr) {
    for (std::size_t i = 0; i < count; ++i) out.push_back(fn(i));
    return out;
  }
  std::vector<Future<R>> futures;
  futures.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    futures.push_back(pool->submit([&fn, i] { return fn(i); }));
  }
  // Settle everything first so an early rethrow can't unwind past jobs that
  // still reference fn.
  for (const Future<R>& f : futures) f.wait();
  for (const Future<R>& f : futures) out.push_back(f.get());
  return out;
}

/// parallel_map with an ad-hoc pool of `jobs` workers (1 = serial inline).
template <typename Fn>
auto parallel_map_jobs(int jobs, std::size_t count, Fn&& fn)
    -> std::vector<std::invoke_result_t<Fn&, std::size_t>> {
  if (jobs <= 1) return parallel_map(nullptr, count, std::forward<Fn>(fn));
  ThreadPool pool(jobs);
  return parallel_map(&pool, count, std::forward<Fn>(fn));
}

}  // namespace hq::exec
