# Empty compiler generated dependencies file for rodinia_test.
# This may be replaced when dependencies are built.
