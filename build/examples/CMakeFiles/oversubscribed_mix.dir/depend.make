# Empty dependencies file for oversubscribed_mix.
# This may be replaced when dependencies are built.
