// Golden fleet digests: two fixed fleet scenarios (4-device homogeneous,
// 2+2 heterogeneous) pinned by their FleetReport digests, byte-identity of
// those scenarios when sharded across 1/2/8 jobs, and a zero-perturbation
// re-check that linking hq_fleet into a binary leaves the whole-surface
// simulation digest untouched.
//
// Update the pinned constants only for intentional model changes, never to
// silence an accidental diff — a moved digest means the fleet scheduler,
// the serving layer, or the simulator underneath changed behavior.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "bench/common.hpp"
#include "common/hash.hpp"
#include "exec/parallel.hpp"
#include "fleet/fleet.hpp"
#include "fleet/report.hpp"
#include "serve/service.hpp"
#include "serve/streaming.hpp"
#include "tests/hyperq/synthetic_app.hpp"
#include "trace/trace.hpp"

namespace hq::fleet {
namespace {

using fw::testing::SyntheticApp;

// Pinned 2026-08 when the fleet layer landed.
constexpr std::uint64_t kPinnedHomogeneousDigest = 0x71a2819fb95e7eadULL;
constexpr std::uint64_t kPinnedHeterogeneousDigest = 0xc992d15f5854845bULL;
// Must equal zero_perturbation_test.cpp's constant: linking hq_fleet can
// not perturb the existing surface.
constexpr std::uint64_t kPinnedCombinedSurfaceDigest = 0x24c2fc138e23c24fULL;

serve::ServiceConfig golden_base() {
  serve::ServiceConfig config;
  config.window = 10 * kMillisecond;
  config.mean_interarrival = 100 * kMicrosecond;
  config.num_streams = 2;
  config.max_inflight = 2;
  SyntheticApp::Spec spec;
  spec.num_kernels = 3;
  spec.block_duration = 30 * kMicrosecond;
  config.classes.push_back(
      {fw::WorkloadItem{"synthetic",
                        [spec] { return std::make_unique<SyntheticApp>(spec); }},
       0});
  config.collect_metrics = false;
  return config;
}

FleetConfig homogeneous_config() {
  FleetConfig config;
  config.base = golden_base();
  config.resize_homogeneous(4);
  config.placement = PlacementPolicy::LeastLoaded;
  return config;
}

FleetConfig heterogeneous_config() {
  FleetConfig config;
  config.base = golden_base();
  config.devices = {
      gpu::DeviceSpec::tesla_k20(), gpu::DeviceSpec::tesla_k20(),
      gpu::DeviceSpec::single_copy_engine(),
      gpu::DeviceSpec::single_copy_engine()};
  config.placement = PlacementPolicy::CopyAware;
  config.work_stealing = true;
  return config;
}

TEST(GoldenFleetTest, HomogeneousFourDeviceDigestIsPinned) {
  const FleetResult result = FleetService(homogeneous_config()).run();
  EXPECT_EQ(fleet_report_digest(result.report), kPinnedHomogeneousDigest)
      << std::hex << "digest moved: 0x"
      << fleet_report_digest(result.report);
}

TEST(GoldenFleetTest, HeterogeneousTwoPlusTwoDigestIsPinned) {
  const FleetResult result = FleetService(heterogeneous_config()).run();
  EXPECT_EQ(fleet_report_digest(result.report), kPinnedHeterogeneousDigest)
      << std::hex << "digest moved: 0x"
      << fleet_report_digest(result.report);
}

TEST(GoldenFleetTest, GoldenScenariosAreByteIdenticalAcrossJobCounts) {
  // Both golden scenarios sharded over 1, 2 and 8 workers: the report
  // bytes (and hence digests) must never depend on the job count.
  const auto run_scenario = [](std::size_t i) {
    const FleetConfig config =
        i % 2 == 0 ? homogeneous_config() : heterogeneous_config();
    return fleet_report_json(FleetService(config).run().report);
  };
  const auto serial = exec::parallel_map_jobs(1, 4, run_scenario);
  for (const int jobs : {2, 8}) {
    const auto threaded = exec::parallel_map_jobs(jobs, 4, run_scenario);
    ASSERT_EQ(threaded.size(), serial.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
      EXPECT_EQ(threaded[i], serial[i]) << "jobs=" << jobs << " i=" << i;
    }
  }
}

TEST(GoldenFleetTest, InertFaultDomainKnobsKeepPinnedDigests) {
  // The fault-domain layer's zero-perturbation contract: with no lifecycle
  // faults and hedging off, the fault-domain knobs are invisible — the
  // pinned digests hold even with all-disabled per-device plans supplied
  // and every inert knob moved off its default.
  FleetConfig homogeneous = homogeneous_config();
  homogeneous.device_fault_plans.assign(4, fault::FaultPlan{});
  homogeneous.failover_budget = 0;
  homogeneous.hedge_threshold = 7.5;
  homogeneous.hedge_min_samples = 1;
  ASSERT_FALSE(homogeneous.fault_domains_active());
  const FleetResult a = FleetService(homogeneous).run();
  EXPECT_EQ(fleet_report_digest(a.report), kPinnedHomogeneousDigest)
      << std::hex << "digest moved: 0x" << fleet_report_digest(a.report);

  FleetConfig heterogeneous = heterogeneous_config();
  heterogeneous.failover_budget = 9;
  const FleetResult b = FleetService(heterogeneous).run();
  EXPECT_EQ(fleet_report_digest(b.report), kPinnedHeterogeneousDigest)
      << std::hex << "digest moved: 0x" << fleet_report_digest(b.report);
}

TEST(GoldenFleetTest, InertIntegrityKnobsKeepPinnedDigests) {
  // The integrity pipeline's zero-perturbation contract: with the Trust
  // policy and no SDC faults configured, every integrity knob is invisible
  // — the pinned digests hold even with the knobs moved off their
  // defaults and corruption-free per-device plans supplied.
  FleetConfig homogeneous = homogeneous_config();
  homogeneous.integrity = IntegrityPolicy::Trust;
  homogeneous.spotcheck_rate = 0.9;
  homogeneous.sdc_blocklist_threshold = 0.25;
  homogeneous.sdc_score_alpha = 0.9;
  homogeneous.device_fault_plans.assign(4, fault::FaultPlan{});
  ASSERT_FALSE(homogeneous.integrity_active());
  const FleetResult a = FleetService(homogeneous).run();
  EXPECT_EQ(fleet_report_digest(a.report), kPinnedHomogeneousDigest)
      << std::hex << "digest moved: 0x" << fleet_report_digest(a.report);

  FleetConfig heterogeneous = heterogeneous_config();
  heterogeneous.spotcheck_rate = 0.0;
  heterogeneous.sdc_blocklist_threshold = 1.0;
  const FleetResult b = FleetService(heterogeneous).run();
  EXPECT_EQ(fleet_report_digest(b.report), kPinnedHeterogeneousDigest)
      << std::hex << "digest moved: 0x" << fleet_report_digest(b.report);
}

TEST(GoldenFleetTest, LinkingFleetLeavesWholeSurfaceDigestUnchanged) {
  // Replicates zero_perturbation_test's combined digest from a binary that
  // links (and above, has exercised) hq_fleet: the fleet layer must be a
  // pure addition with zero perturbation of existing behavior.
  Fnv1a64 combined;
  for (const bool memsync : {false, true}) {
    for (const auto& pair : bench::hetero_pairs()) {
      const auto result =
          bench::run_pair(pair, 16, 16, fw::Order::NaiveFifo, memsync);
      combined.mix_u64(trace::digest(*result.trace));
      combined.mix_u64(result.events_processed);
    }
  }

  fw::StreamingHarness::Config streaming;
  streaming.window = 20 * kMillisecond;
  streaming.mean_interarrival = kMillisecond;
  streaming.num_streams = 8;
  SyntheticApp::Spec spec;
  spec.num_kernels = 3;
  spec.block_duration = 30 * kMicrosecond;
  streaming.mix.push_back(fw::WorkloadItem{
      "synthetic", [spec] { return std::make_unique<SyntheticApp>(spec); }});
  combined.mix_u64(fw::StreamingHarness(streaming).run().trace_digest);

  serve::ServiceConfig serving = golden_base();
  serving.collect_metrics = true;  // match the original scenario exactly
  combined.mix_u64(serve::Service(serving).run().report.trace_digest);

  EXPECT_EQ(combined.value(), kPinnedCombinedSurfaceDigest)
      << std::hex << "combined surface digest moved: 0x" << combined.value();
}

}  // namespace
}  // namespace hq::fleet
