// Property-based sweep: for any launch configuration, the block scheduler
// must execute a kernel in exactly ceil(grid_blocks / device_residency)
// waves, where device_residency is the analytic minimum over the four
// per-SMX constraints (block slots, threads, registers, shared memory)
// multiplied by the SMX count — and the kernel's makespan must equal
// waves * block_duration when it runs alone.
#include <gtest/gtest.h>

#include <memory>

#include "gpusim/block_scheduler.hpp"
#include "sim/simulator.hpp"

namespace hq::gpu {
namespace {

struct LaunchCase {
  std::uint32_t grid_blocks;
  std::uint32_t threads_per_block;
  std::uint32_t regs_per_thread;
  Bytes smem_per_block;
};

int analytic_residency(const DeviceSpec& spec, const LaunchCase& c) {
  int per_smx = spec.max_blocks_per_smx;
  per_smx = std::min(per_smx, spec.max_threads_per_smx /
                                  static_cast<int>(c.threads_per_block));
  per_smx = std::min(per_smx,
                     static_cast<int>(spec.registers_per_smx /
                                      (c.regs_per_thread * c.threads_per_block)));
  if (c.smem_per_block > 0) {
    per_smx = std::min(per_smx, static_cast<int>(spec.shared_mem_per_smx /
                                                 c.smem_per_block));
  }
  return per_smx * spec.num_smx;
}

class WaveProperty : public ::testing::TestWithParam<LaunchCase> {};

TEST_P(WaveProperty, WavesMatchAnalyticResidency) {
  const LaunchCase c = GetParam();
  const DeviceSpec spec = DeviceSpec::tesla_k20();
  const int residency = analytic_residency(spec, c);
  ASSERT_GT(residency, 0);
  const int expected_waves =
      static_cast<int>((c.grid_blocks + residency - 1) / residency);

  sim::Simulator sim;
  int waves = 0;
  TimeNs complete = 0;
  BlockScheduler scheduler(
      sim, spec, [] {},
      [&](const KernelExec& e) {
        waves = e.waves;
        complete = e.complete_time;
      });
  auto exec = std::make_unique<KernelExec>();
  exec->launch = KernelLaunch{"k",
                              Dim3{c.grid_blocks, 1, 1},
                              Dim3{c.threads_per_block, 1, 1},
                              c.regs_per_thread,
                              c.smem_per_block,
                              10 * kMicrosecond,
                              0.0,
                              nullptr};
  scheduler.dispatch(std::move(exec));
  sim.run();

  EXPECT_EQ(waves, expected_waves)
      << "grid=" << c.grid_blocks << " tpb=" << c.threads_per_block
      << " regs=" << c.regs_per_thread << " smem=" << c.smem_per_block
      << " residency=" << residency;
  EXPECT_EQ(complete, static_cast<TimeNs>(expected_waves) * 10 * kMicrosecond);
  EXPECT_EQ(scheduler.resident_blocks(), 0);
}

INSTANTIATE_TEST_SUITE_P(
    ResidencySweep, WaveProperty,
    ::testing::Values(
        // Block-slot limited (16/SMX -> 208 device-wide).
        LaunchCase{1, 32, 16, 0}, LaunchCase{208, 32, 16, 0},
        LaunchCase{209, 32, 16, 0}, LaunchCase{1000, 64, 16, 0},
        // Thread limited (2048/SMX).
        LaunchCase{104, 256, 16, 0}, LaunchCase{105, 256, 16, 0},
        LaunchCase{26, 1024, 16, 0}, LaunchCase{27, 1024, 16, 0},
        LaunchCase{52, 512, 16, 0},
        // Register limited: 128 regs x 256 threads = 32768 -> 2/SMX.
        LaunchCase{26, 256, 128, 0}, LaunchCase{27, 256, 128, 0},
        LaunchCase{100, 128, 64, 0},
        // Shared-memory limited: 16 KiB -> 3/SMX -> 39 device-wide.
        LaunchCase{39, 64, 16, 16 * 1024}, LaunchCase{40, 64, 16, 16 * 1024},
        LaunchCase{120, 32, 16, 24 * 1024},
        // The paper's Table III kernels.
        LaunchCase{1, 512, 14, 0},          // Fan1
        LaunchCase{1024, 256, 20, 0},       // Fan2
        LaunchCase{16, 32, 24, 8712},       // needle_cuda_shared_1 (max call)
        LaunchCase{1024, 256, 24, 2048},    // srad_cuda_*
        LaunchCase{168, 256, 16, 0}));      // euclid

}  // namespace
}  // namespace hq::gpu
