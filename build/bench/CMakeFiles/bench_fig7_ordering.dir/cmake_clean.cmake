file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_ordering.dir/bench_fig7_ordering.cpp.o"
  "CMakeFiles/bench_fig7_ordering.dir/bench_fig7_ordering.cpp.o.d"
  "bench_fig7_ordering"
  "bench_fig7_ordering.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_ordering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
