// Online invariant checking for the simulated device (library hq_check).
//
// The InvariantChecker attaches to a Device as a DeviceObserver and replays
// the event stream against an independent model of the hardware contract the
// paper's results depend on:
//
//   1. Virtual-clock monotonicity — event timestamps never go backwards.
//   2. Copy-engine FIFO — each engine serves transactions strictly in
//      submission order, with non-overlapping service intervals.
//   3. Stream order — operations of a stream complete strictly in
//      submission order (CUDA stream semantics).
//   4. LEFTOVER dispatch — thread blocks are only ever placed for the
//      oldest incompletely-placed kernel of its priority class; the
//      scheduler never skips ahead.
//   5. SMX resource conservation — per-SMX blocks / threads / registers /
//      shared memory never go negative, never exceed the spec limits, and
//      are fully released by the time a kernel completes.
//   6. Energy ≡ ∫ power — the device's reported energy equals the integral
//      of its piecewise-constant instantaneous power, within tolerance.
//   7. Quiescence — at finalize time nothing is resident, no queue holds
//      work, and (via finalize_runtime) no device/host memory is leaked or
//      double-freed.
//   8. Fault accounting — every fault the injector fired was observed as an
//      on_fault_injected event and vice versa, per kind (via
//      finalize_faults); the model can never silently absorb a fault.
//
// The checker never mutates device state and collects violations instead of
// throwing, so a fuzzer can report every broken invariant of a run; callers
// that want hard failures assert on ok() (Harness does this when
// HarnessConfig::check_invariants is set).
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <vector>

#include "gpusim/device.hpp"
#include "gpusim/observer.hpp"

namespace hq::rt {
class Runtime;
}

namespace hq::fault {
struct FaultStats;
}

namespace hq::check {

class InvariantChecker : public gpu::DeviceObserver {
 public:
  explicit InvariantChecker(gpu::DeviceSpec spec);

  // --- DeviceObserver ------------------------------------------------------
  void on_op_submitted(TimeNs now, gpu::OpId op, gpu::StreamId stream,
                       gpu::ObservedOp kind) override;
  void on_op_completed(TimeNs now, gpu::OpId op, gpu::StreamId stream) override;
  void on_copy_enqueued(TimeNs now, gpu::CopyDirection dir, gpu::OpId op,
                        gpu::StreamId stream, std::int32_t app,
                        Bytes bytes) override;
  void on_copy_served(TimeNs now, gpu::CopyDirection dir, gpu::OpId op,
                      std::int32_t app, TimeNs begin, TimeNs end,
                      Bytes bytes) override;
  void on_kernel_dispatched(TimeNs now, gpu::OpId op, int priority,
                            std::uint64_t blocks,
                            const gpu::BlockDemand& demand) override;
  void on_blocks_placed(TimeNs now, gpu::OpId op, int smx, int count,
                        const gpu::BlockDemand& demand) override;
  void on_blocks_released(TimeNs now, gpu::OpId op, int smx, int count,
                          const gpu::BlockDemand& demand) override;
  void on_kernel_completed(TimeNs now, const gpu::KernelExec& exec) override;
  void on_power_integrated(TimeNs now, Watts power, double occupancy) override;
  void on_fault_injected(TimeNs now, gpu::ObservedFault kind,
                         std::uint64_t key, DurationNs penalty) override;

  // --- end-of-run checks ---------------------------------------------------
  /// Run after the simulation drains: checks quiescence (nothing resident,
  /// no queued work left unserved) and energy ≡ ∫power against the device.
  void finalize(const gpu::Device& device);
  /// Checks the runtime's memory accounting: every allocation freed exactly
  /// once and no failed (double) frees.
  void finalize_runtime(const rt::Runtime& runtime);
  /// Fault-mode oracle: the on_fault_injected events observed during the
  /// run must match the injector's own counters, kind by kind — faults are
  /// accounted for, never silently absorbed (and never invented).
  void finalize_faults(const fault::FaultStats& stats);

  // --- results -------------------------------------------------------------
  bool ok() const { return violations_.empty(); }
  const std::vector<std::string>& violations() const { return violations_; }
  /// All violations joined into one human-readable block.
  std::string report() const;
  std::uint64_t events_observed() const { return events_observed_; }

 private:
  struct SmxUsage {
    int blocks = 0;
    int threads = 0;
    std::int64_t registers = 0;
    std::int64_t shared_mem = 0;
  };
  struct EngineState {
    std::deque<gpu::OpId> fifo;  ///< submission order, front = next to serve
    TimeNs last_service_end = 0;
    std::uint64_t served = 0;
  };
  struct PendingKernel {
    gpu::OpId op = 0;
    int priority = 0;
    std::uint64_t blocks_total = 0;
    std::uint64_t placed = 0;
    std::uint64_t outstanding = 0;
  };

  void fail(std::string message);
  /// Monotonicity check shared by every callback.
  void observe_time(TimeNs now, const char* where);
  EngineState& engine(gpu::CopyDirection dir);
  PendingKernel* find_kernel(gpu::OpId op);

  gpu::DeviceSpec spec_;
  std::vector<std::string> violations_;
  std::uint64_t events_observed_ = 0;
  TimeNs last_event_time_ = 0;

  EngineState engines_[2];  ///< indexed by CopyDirection
  /// on_fault_injected events seen, indexed by ObservedFault.
  std::uint64_t fault_events_[gpu::kNumObservedFaults] = {};
  std::map<gpu::StreamId, std::deque<gpu::OpId>> stream_order_;
  /// Mirror of the block scheduler's pending deque, maintained with the
  /// same (priority, dispatch-order) insertion rule; front is the only
  /// kernel whose blocks may legally be placed.
  std::deque<gpu::OpId> leftover_order_;
  std::map<gpu::OpId, PendingKernel> kernels_;
  /// Two-entry memo in front of kernels_ lookups. Placement events hammer
  /// the head kernel while releases trail their placement instant, so
  /// consecutive observer callbacks alternate between at most two ops almost
  /// all the time; the memo turns those tree walks into pointer compares.
  /// std::map node pointers stay valid across insert/erase of other keys;
  /// entries are cleared when their kernel is erased.
  PendingKernel* kernel_memo_[2] = {nullptr, nullptr};
  std::vector<SmxUsage> smx_usage_;
  int resident_blocks_ = 0;
  int resident_threads_ = 0;

  // Independent energy integration (invariant 6).
  Joules energy_j_ = 0.0;
  TimeNs last_integration_ = 0;
  Watts max_plausible_power_ = 0.0;
};

}  // namespace hq::check
