#include "sim/sync.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "common/check.hpp"
#include "sim/simulator.hpp"

namespace hq::sim {
namespace {

// ---------------------------------------------------------------- Event

Task waiter(Simulator& sim, Event& ev, std::vector<TimeNs>* log) {
  co_await ev.wait();
  log->push_back(sim.now());
}

Task firer(Simulator& sim, Event& ev, DurationNs at) {
  co_await sim.delay(at);
  ev.fire();
}

TEST(EventTest, WaitersResumeOnFire) {
  Simulator sim;
  Event ev(sim);
  std::vector<TimeNs> log;
  sim.spawn(waiter(sim, ev, &log));
  sim.spawn(waiter(sim, ev, &log));
  sim.spawn(firer(sim, ev, 500));
  sim.run();
  EXPECT_EQ(log, (std::vector<TimeNs>{500, 500}));
  EXPECT_TRUE(ev.fired());
}

TEST(EventTest, WaitAfterFireDoesNotSuspend) {
  Simulator sim;
  Event ev(sim);
  ev.fire();
  std::vector<TimeNs> log;
  sim.spawn(waiter(sim, ev, &log));
  sim.run();
  EXPECT_EQ(log, (std::vector<TimeNs>{0}));
}

TEST(EventTest, DoubleFireThrows) {
  Simulator sim;
  Event ev(sim);
  ev.fire();
  EXPECT_THROW(ev.fire(), hq::Error);
}

// ---------------------------------------------------------------- Mutex

Task locker(Simulator& sim, Mutex& m, DurationNs hold, std::vector<int>* log,
            int id) {
  co_await m.lock();
  log->push_back(id);
  co_await sim.delay(hold);
  m.unlock();
}

TEST(MutexTest, UncontendedAcquireDoesNotSuspend) {
  Simulator sim;
  Mutex m(sim);
  bool acquired = false;
  auto t = [](Mutex& mu, bool* flag) -> Task {
    co_await mu.lock();
    *flag = true;
    mu.unlock();
  };
  sim.spawn(t(m, &acquired));
  sim.run();
  EXPECT_TRUE(acquired);
  EXPECT_FALSE(m.locked());
}

TEST(MutexTest, FifoFairnessUnderContention) {
  Simulator sim;
  Mutex m(sim);
  std::vector<int> order;
  for (int i = 0; i < 8; ++i) {
    sim.spawn(locker(sim, m, 10, &order, i));
  }
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4, 5, 6, 7}));
  EXPECT_FALSE(m.locked());
  EXPECT_EQ(sim.now(), 80u);  // fully serialized critical sections
}

TEST(MutexTest, MutualExclusionInvariant) {
  Simulator sim;
  Mutex m(sim);
  int inside = 0;
  int max_inside = 0;
  auto t = [](Simulator& s, Mutex& mu, int* in, int* max_in) -> Task {
    co_await mu.lock();
    ++*in;
    *max_in = std::max(*max_in, *in);
    co_await s.delay(7);
    --*in;
    mu.unlock();
  };
  for (int i = 0; i < 20; ++i) sim.spawn(t(sim, m, &inside, &max_inside));
  sim.run();
  EXPECT_EQ(max_inside, 1);
  EXPECT_EQ(inside, 0);
}

TEST(MutexTest, UnlockWithoutLockThrows) {
  Simulator sim;
  Mutex m(sim);
  EXPECT_THROW(m.unlock(), hq::Error);
}

TEST(MutexTest, ScopedLockReleasesOnScopeExit) {
  Simulator sim;
  Mutex m(sim);
  std::vector<int> order;
  auto t = [](Simulator& s, Mutex& mu, std::vector<int>* log, int id) -> Task {
    {
      auto guard = co_await mu.scoped_lock();
      log->push_back(id);
      co_await s.delay(5);
    }
    co_await s.delay(100);  // outside the lock
  };
  for (int i = 0; i < 4; ++i) sim.spawn(t(sim, m, &order, i));
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
  EXPECT_FALSE(m.locked());
  // Lock only serializes the 5ns sections: the last task acquires at t=15,
  // holds for 5, then spends 100 outside the lock.
  EXPECT_EQ(sim.now(), 120u);
}

TEST(MutexTest, GuardMoveTransfersOwnership) {
  Simulator sim;
  Mutex m(sim);
  bool done = false;
  auto t = [](Simulator& s, Mutex& mu, bool* flag) -> Task {
    auto g1 = co_await mu.scoped_lock();
    Mutex::Guard g2 = std::move(g1);
    EXPECT_FALSE(g1.owns_lock());  // NOLINT(bugprone-use-after-move)
    EXPECT_TRUE(g2.owns_lock());
    EXPECT_TRUE(mu.locked());
    co_await s.delay(1);
    g2.reset();
    EXPECT_FALSE(mu.locked());
    *flag = true;
  };
  sim.spawn(t(sim, m, &done));
  sim.run();
  EXPECT_TRUE(done);
}

TEST(MutexTest, NoBargingAtHandoff) {
  // A task that tries to lock at the exact instant of an unlock-with-waiters
  // must queue behind the waiter that was handed the lock.
  Simulator sim;
  Mutex m(sim);
  std::vector<int> order;
  auto holder = [](Simulator& s, Mutex& mu, std::vector<int>* log) -> Task {
    co_await mu.lock();
    log->push_back(0);
    co_await s.delay(10);
    mu.unlock();  // at t=10, waiter 1 is queued
  };
  auto waiter1 = [](Simulator& s, Mutex& mu, std::vector<int>* log) -> Task {
    co_await s.delay(1);
    co_await mu.lock();
    log->push_back(1);
    co_await s.delay(5);
    mu.unlock();
  };
  auto barger = [](Simulator& s, Mutex& mu, std::vector<int>* log) -> Task {
    co_await s.delay(10);  // arrives exactly at handoff time
    co_await mu.lock();
    log->push_back(2);
    mu.unlock();
  };
  sim.spawn(holder(sim, m, &order));
  sim.spawn(waiter1(sim, m, &order));
  sim.spawn(barger(sim, m, &order));
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

// ---------------------------------------------------------------- Semaphore

TEST(SemaphoreTest, LimitsConcurrency) {
  Simulator sim;
  Semaphore sem(sim, 3);
  int inside = 0, max_inside = 0;
  auto t = [](Simulator& s, Semaphore& se, int* in, int* max_in) -> Task {
    co_await se.acquire();
    ++*in;
    *max_in = std::max(*max_in, *in);
    co_await s.delay(10);
    --*in;
    se.release();
  };
  for (int i = 0; i < 10; ++i) sim.spawn(t(sim, sem, &inside, &max_inside));
  sim.run();
  EXPECT_EQ(max_inside, 3);
  EXPECT_EQ(inside, 0);
  EXPECT_EQ(sem.available(), 3u);
  // ceil(10/3)=4 rounds of 10ns each.
  EXPECT_EQ(sim.now(), 40u);
}

TEST(SemaphoreTest, ReleaseWithoutWaitersIncrementsCount) {
  Simulator sim;
  Semaphore sem(sim, 0);
  sem.release();
  EXPECT_EQ(sem.available(), 1u);
}

TEST(SemaphoreTest, ZeroInitialBlocksUntilRelease) {
  Simulator sim;
  Semaphore sem(sim, 0);
  std::vector<TimeNs> log;
  auto t = [](Simulator& s, Semaphore& se, std::vector<TimeNs>* out) -> Task {
    co_await se.acquire();
    out->push_back(s.now());
  };
  auto releaser = [](Simulator& s, Semaphore& se) -> Task {
    co_await s.delay(42);
    se.release();
  };
  sim.spawn(t(sim, sem, &log));
  sim.spawn(releaser(sim, sem));
  sim.run();
  EXPECT_EQ(log, (std::vector<TimeNs>{42}));
}

// ---------------------------------------------------------------- Latch

TEST(LatchTest, WaitCompletesAtLastCountdown) {
  Simulator sim;
  CountdownLatch latch(sim, 3);
  std::vector<TimeNs> log;
  auto joiner = [](Simulator& s, CountdownLatch& l,
                   std::vector<TimeNs>* out) -> Task {
    co_await l.wait();
    out->push_back(s.now());
  };
  auto worker = [](Simulator& s, CountdownLatch& l, DurationNs d) -> Task {
    co_await s.delay(d);
    l.count_down();
  };
  sim.spawn(joiner(sim, latch, &log));
  sim.spawn(worker(sim, latch, 10));
  sim.spawn(worker(sim, latch, 30));
  sim.spawn(worker(sim, latch, 20));
  sim.run();
  EXPECT_EQ(log, (std::vector<TimeNs>{30}));
  EXPECT_EQ(latch.remaining(), 0u);
}

TEST(LatchTest, ZeroCountIsImmediatelyOpen) {
  Simulator sim;
  CountdownLatch latch(sim, 0);
  std::vector<TimeNs> log;
  auto joiner = [](Simulator& s, CountdownLatch& l,
                   std::vector<TimeNs>* out) -> Task {
    co_await l.wait();
    out->push_back(s.now());
  };
  sim.spawn(joiner(sim, latch, &log));
  sim.run();
  EXPECT_EQ(log, (std::vector<TimeNs>{0}));
}

TEST(LatchTest, ExtraCountdownThrows) {
  Simulator sim;
  CountdownLatch latch(sim, 1);
  latch.count_down();
  EXPECT_THROW(latch.count_down(), hq::Error);
}

}  // namespace
}  // namespace hq::sim
