#include "gpusim/device.hpp"

#include <cmath>
#include <limits>
#include <string_view>

#include "common/check.hpp"

namespace hq::gpu {

Device::Device(sim::Simulator& sim, DeviceSpec spec, trace::Recorder* recorder)
    : sim_(sim), spec_(std::move(spec)), recorder_(recorder) {
  HQ_CHECK(spec_.num_work_queues >= 1);
  HQ_CHECK(spec_.num_smx >= 1);
  scheduler_ = std::make_unique<BlockScheduler>(
      sim_, spec_, [this] { pre_state_change(); },
      [this](const KernelExec& exec) { on_kernel_complete(exec); });
  HQ_CHECK(spec_.num_copy_engines == 1 || spec_.num_copy_engines == 2);
  htod_ = std::make_unique<CopyEngine>(sim_, CopyDirection::HtoD,
                                       spec_.htod_bytes_per_sec,
                                       spec_.copy_overhead,
                                       [this] { pre_state_change(); });
  if (spec_.num_copy_engines == 2) {
    dtoh_ = std::make_unique<CopyEngine>(sim_, CopyDirection::DtoH,
                                         spec_.dtoh_bytes_per_sec,
                                         spec_.copy_overhead,
                                         [this] { pre_state_change(); });
  }
  queues_.resize(static_cast<std::size_t>(spec_.num_work_queues));
  last_integration_ = sim_.now();
}

void Device::set_observer(DeviceObserver* observer) {
  observer_ = observer;
  scheduler_->set_observer(observer);
  htod_->set_observer(observer);
  if (dtoh_) dtoh_->set_observer(observer);
}

void Device::set_copy_fault_hook(CopyFaultHook hook) {
  htod_->set_fault_hook(hook);
  if (dtoh_) dtoh_->set_fault_hook(std::move(hook));
}

void Device::register_stream(StreamId stream, int priority) {
  HQ_CHECK_MSG(streams_.find(stream) == streams_.end(),
               "stream " << stream << " registered twice");
  StreamState state;
  state.queue_id = next_queue_rr_;
  state.priority = priority;
  next_queue_rr_ = (next_queue_rr_ + 1) % spec_.num_work_queues;
  streams_.emplace(stream, std::move(state));
}

int Device::priority_of(StreamId stream) const {
  return stream_state(stream).priority;
}

int Device::queue_of(StreamId stream) const {
  return stream_state(stream).queue_id;
}

Device::StreamState& Device::stream_state(StreamId stream) {
  auto it = streams_.find(stream);
  HQ_CHECK_MSG(it != streams_.end(), "unknown stream " << stream);
  return it->second;
}

const Device::StreamState& Device::stream_state(StreamId stream) const {
  auto it = streams_.find(stream);
  HQ_CHECK_MSG(it != streams_.end(), "unknown stream " << stream);
  return it->second;
}

bool Device::is_stream_front(const Op* op) const {
  const StreamState& state = stream_state(op->stream);
  return !state.order.empty() && state.order.front().get() == op;
}

bool Device::stream_idle(StreamId stream) const {
  return stream_state(stream).order.empty();
}

OpId Device::submit_kernel(StreamId stream, KernelLaunch launch, OpTag tag,
                           std::function<void()> on_complete) {
  // Validate against hardware limits; the runtime surfaces friendlier errors
  // before reaching this point.
  HQ_CHECK(launch.grid.count() >= 1);
  HQ_CHECK(launch.block.count() >= 1);
  HQ_CHECK(static_cast<int>(launch.block.count()) <=
           spec_.max_threads_per_block);

  auto op = std::make_unique<Op>();
  op->id = next_op_id_++;
  op->stream = stream;
  op->kind = OpKind::Kernel;
  op->tag = std::move(tag);
  op->kernel = std::move(launch);
  op->submit_time = sim_.now();

  Op* raw = op.get();
  StreamState& state = stream_state(stream);
  op->on_complete = std::move(on_complete);
  state.order.push_back(std::move(op));
  if (observer_ != nullptr) {
    observer_->on_op_submitted(sim_.now(), raw->id, stream, ObservedOp::Kernel);
  }
  queues_[static_cast<std::size_t>(state.queue_id)].fifo.push_back(raw);
  pump_queue(state.queue_id);
  return raw->id;
}

OpId Device::submit_copy(StreamId stream, CopyRequest request, OpTag tag,
                         std::function<void()> on_complete) {
  HQ_CHECK(request.bytes > 0);

  auto op = std::make_unique<Op>();
  op->id = next_op_id_++;
  op->stream = stream;
  op->kind = OpKind::Copy;
  op->tag = std::move(tag);
  op->copy = std::move(request);
  op->on_complete = std::move(on_complete);
  op->submit_time = sim_.now();

  Op* raw = op.get();
  stream_state(stream).order.push_back(std::move(op));
  if (observer_ != nullptr) {
    observer_->on_op_submitted(sim_.now(), raw->id, stream, ObservedOp::Copy);
  }

  CopyEngine& engine = engine_for(raw->copy.direction);
  engine.enqueue(CopyEngine::Transaction{
      raw->id, stream, raw->copy.bytes,
      /*ready=*/[this, raw] { return is_stream_front(raw); },
      /*on_served=*/
      [this, raw](TimeNs begin, TimeNs end) {
        if (raw->copy.payload) raw->copy.payload();
        if (recorder_ != nullptr) {
          recorder_->add(raw->stream, raw->tag.app_id,
                         raw->copy.direction == CopyDirection::HtoD
                             ? trace::SpanKind::MemcpyHtoD
                             : trace::SpanKind::MemcpyDtoH,
                         raw->tag.label.empty()
                             ? std::string_view(
                                   copy_direction_name(raw->copy.direction))
                             : std::string_view(raw->tag.label),
                         begin, end);
        }
        if (raw->copy.direction == CopyDirection::HtoD) {
          ++stats_.copies_htod;
          stats_.bytes_htod += raw->copy.bytes;
        } else {
          ++stats_.copies_dtoh;
          stats_.bytes_dtoh += raw->copy.bytes;
        }
        complete_op(raw);
      },
      /*app_id=*/raw->tag.app_id});
  return raw->id;
}

OpId Device::submit_marker(StreamId stream, OpTag tag,
                           std::function<void()> on_complete) {
  auto op = std::make_unique<Op>();
  op->id = next_op_id_++;
  op->stream = stream;
  op->kind = OpKind::Marker;
  op->tag = std::move(tag);
  op->on_complete = std::move(on_complete);
  op->submit_time = sim_.now();

  Op* raw = op.get();
  stream_state(stream).order.push_back(std::move(op));
  if (observer_ != nullptr) {
    observer_->on_op_submitted(sim_.now(), raw->id, stream, ObservedOp::Marker);
  }
  if (is_stream_front(raw)) {
    sim_.schedule(0, [this, raw] { complete_op(raw); });
  }
  return raw->id;
}

void Device::pump_queue(int queue_id) {
  WorkQueue& wq = queues_[static_cast<std::size_t>(queue_id)];
  if (wq.dispatch_pending || wq.fifo.empty()) return;
  Op* head = wq.fifo.front();
  if (!is_stream_front(head)) return;  // head-of-line blocking

  wq.dispatch_pending = true;
  sim_.schedule(spec_.kernel_dispatch_latency, [this, queue_id] {
    WorkQueue& q = queues_[static_cast<std::size_t>(queue_id)];
    HQ_CHECK(!q.fifo.empty());
    Op* op = q.fifo.front();
    q.fifo.pop_front();
    q.dispatch_pending = false;

    auto exec = std::make_unique<KernelExec>();
    exec->op_id = op->id;
    exec->stream = op->stream;
    exec->priority = stream_state(op->stream).priority;
    exec->tag = op->tag;
    exec->launch = std::move(op->kernel);
    dispatched_kernels_.emplace(op->id, op);
    scheduler_->dispatch(std::move(exec));
    pump_queue(queue_id);
  });
}

void Device::on_kernel_complete(const KernelExec& exec) {
  auto it = dispatched_kernels_.find(exec.op_id);
  HQ_CHECK(it != dispatched_kernels_.end());
  Op* op = it->second;
  dispatched_kernels_.erase(it);

  if (recorder_ != nullptr) {
    recorder_->add(exec.stream, exec.tag.app_id, trace::SpanKind::Kernel,
                   exec.launch.name, exec.first_block_time,
                   exec.complete_time);
  }
  ++stats_.kernels_completed;
  if (observer_ != nullptr) observer_->on_kernel_completed(sim_.now(), exec);
  complete_op(op);
}

void Device::complete_op(Op* op) {
  StreamState& state = stream_state(op->stream);
  HQ_CHECK_MSG(!state.order.empty() && state.order.front().get() == op,
               "op completing out of stream order");
  if (observer_ != nullptr) {
    observer_->on_op_completed(sim_.now(), op->id, op->stream);
  }
  // Keep the op alive until its callback has run.
  std::unique_ptr<Op> owned = std::move(state.order.front());
  state.order.pop_front();
  const int queue_id = state.queue_id;

  if (owned->on_complete) owned->on_complete();

  // The stream's next operation (if any) may now be eligible wherever it
  // sits: its work queue, either copy engine, or — for a marker — it simply
  // completes at this instant.
  if (!state.order.empty() && state.order.front()->kind == OpKind::Marker) {
    Op* marker = state.order.front().get();
    sim_.schedule(0, [this, marker] { complete_op(marker); });
  }
  pump_queue(queue_id);
  htod_->pump();
  if (dtoh_) dtoh_->pump();
}

CopyEngine& Device::engine_for(CopyDirection direction) {
  if (direction == CopyDirection::DtoH && dtoh_) return *dtoh_;
  return *htod_;
}

bool Device::is_active() const {
  return scheduler_->resident_blocks() > 0 || htod_->busy() ||
         (dtoh_ && dtoh_->busy());
}

void Device::pre_state_change() {
  const TimeNs now = sim_.now();
  if (now > last_integration_) {
    const double dt_ns = static_cast<double>(now - last_integration_);
    // One evaluation serves the observer and the integrator: the device
    // state is unchanged between the two reads, so this is the same value
    // (bit-identical) the old double evaluation produced, at half the cost.
    const Watts power = instantaneous_power();
    const double occupancy = scheduler_->thread_occupancy();
    // The power reported to the observer is the piecewise-constant value in
    // effect over [last_integration_, now]; the checker integrates the same
    // quantity independently.
    if (observer_ != nullptr) {
      observer_->on_power_integrated(now, power, occupancy);
    }
    energy_j_ += power * dt_ns / 1e9;
    occupancy_weighted_ns_ += occupancy * dt_ns;
    if (is_active()) busy_ns_ += dt_ns;
    last_integration_ = now;
  }
}

double Device::occupancy_integral_seconds() const {
  const double tail_ns = scheduler_->thread_occupancy() *
                         static_cast<double>(sim_.now() - last_integration_);
  return (occupancy_weighted_ns_ + tail_ns) / 1e9;
}

double Device::busy_seconds() const {
  const double tail_ns = is_active()
                             ? static_cast<double>(sim_.now() - last_integration_)
                             : 0.0;
  return (busy_ns_ + tail_ns) / 1e9;
}

double Device::dynamic_power_term() const {
  const int rt = scheduler_->resident_threads();
  const double u = scheduler_->thread_occupancy();
  if (rt < 0) return std::pow(u, spec_.power_exponent);  // defensive; unseen
  if (dyn_pow_memo_.empty()) {
    dyn_pow_memo_.assign(
        static_cast<std::size_t>(spec_.max_resident_threads()) + 1,
        std::numeric_limits<double>::quiet_NaN());
  }
  if (static_cast<std::size_t>(rt) >= dyn_pow_memo_.size()) {
    return std::pow(u, spec_.power_exponent);  // defensive; unseen
  }
  double& slot = dyn_pow_memo_[static_cast<std::size_t>(rt)];
  // u is a pure function of rt (one division by a constant), so caching by
  // rt returns the exact double std::pow produced for this occupancy.
  if (std::isnan(slot)) slot = std::pow(u, spec_.power_exponent);
  return slot;
}

Watts Device::instantaneous_power() const {
  const double u = scheduler_->thread_occupancy();
  const bool active = is_active();
  Watts p = spec_.idle_power;
  if (active) p += spec_.active_base_power;
  if (u > 0.0) p += spec_.max_dynamic_power * dynamic_power_term();
  if (htod_->busy()) p += spec_.copy_engine_power;
  if (dtoh_ && dtoh_->busy()) p += spec_.copy_engine_power;
  return p;
}

Joules Device::energy() const {
  const double dt_ns = static_cast<double>(sim_.now() - last_integration_);
  return energy_j_ + instantaneous_power() * dt_ns / 1e9;
}

double Device::average_occupancy() const {
  const TimeNs now = sim_.now();
  if (now == 0) return 0.0;
  const double tail_ns = static_cast<double>(now - last_integration_);
  const double weighted =
      occupancy_weighted_ns_ + scheduler_->thread_occupancy() * tail_ns;
  return weighted / static_cast<double>(now);
}

}  // namespace hq::gpu
