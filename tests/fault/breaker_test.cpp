#include "fault/breaker.hpp"

#include <gtest/gtest.h>

#include <string>

#include "common/check.hpp"

namespace hq::fault {
namespace {

TEST(CircuitBreakerTest, StartsClosedAndAdmits) {
  CircuitBreaker breaker;
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::Closed);
  EXPECT_TRUE(breaker.allow(0));
  EXPECT_TRUE(breaker.allow(kMillisecond));
  EXPECT_EQ(breaker.rejected(), 0u);
}

TEST(CircuitBreakerTest, TripsAtConsecutiveFailureThreshold) {
  CircuitBreaker breaker({/*failure_threshold=*/3, /*cooldown=*/kMillisecond});
  breaker.record_failure(10);
  breaker.record_failure(20);
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::Closed);
  breaker.record_failure(30);
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::Open);
  EXPECT_EQ(breaker.trips(), 1u);
  EXPECT_EQ(breaker.last_trip_time(), 30);
  EXPECT_FALSE(breaker.allow(31));
  EXPECT_EQ(breaker.rejected(), 1u);
}

TEST(CircuitBreakerTest, SuccessResetsConsecutiveCount) {
  CircuitBreaker breaker({/*failure_threshold=*/2, /*cooldown=*/kMillisecond});
  breaker.record_failure(1);
  breaker.record_success(2);
  breaker.record_failure(3);
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::Closed);
  breaker.record_failure(4);
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::Open);
}

TEST(CircuitBreakerTest, HalfOpenAdmitsExactlyOneProbe) {
  CircuitBreaker breaker({/*failure_threshold=*/1, /*cooldown=*/kMillisecond});
  breaker.record_failure(0);
  EXPECT_FALSE(breaker.allow(kMillisecond - 1));  // still cooling down
  EXPECT_TRUE(breaker.allow(kMillisecond));       // the probe
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::HalfOpen);
  EXPECT_EQ(breaker.probes(), 1u);
  EXPECT_FALSE(breaker.allow(kMillisecond + 1));  // probe outstanding
}

TEST(CircuitBreakerTest, ProbeSuccessCloses) {
  CircuitBreaker breaker({/*failure_threshold=*/1, /*cooldown=*/kMillisecond});
  breaker.record_failure(0);
  EXPECT_TRUE(breaker.allow(kMillisecond));
  breaker.record_success(kMillisecond + 500);
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::Closed);
  EXPECT_TRUE(breaker.allow(kMillisecond + 501));
}

TEST(CircuitBreakerTest, ProbeFailureReopensForAnotherCooldown) {
  CircuitBreaker breaker({/*failure_threshold=*/1, /*cooldown=*/kMillisecond});
  breaker.record_failure(0);
  EXPECT_TRUE(breaker.allow(kMillisecond));
  breaker.record_failure(kMillisecond + 100);
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::Open);
  EXPECT_EQ(breaker.trips(), 2u);
  EXPECT_FALSE(breaker.allow(2 * kMillisecond + 99));
  EXPECT_TRUE(breaker.allow(2 * kMillisecond + 100));
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::HalfOpen);
}

TEST(CircuitBreakerTest, OpenStragglersDoNotExtendCooldown) {
  CircuitBreaker breaker({/*failure_threshold=*/1, /*cooldown=*/kMillisecond});
  breaker.record_failure(0);
  // Failures from jobs already inflight when the breaker tripped arrive
  // while it is Open; they must not push the probe time out.
  breaker.record_failure(500);
  breaker.record_failure(900);
  EXPECT_TRUE(breaker.allow(kMillisecond));
  EXPECT_EQ(breaker.trips(), 1u);
}

TEST(CircuitBreakerTest, CountersAreMonotonic) {
  CircuitBreaker breaker({/*failure_threshold=*/1, /*cooldown=*/kMillisecond});
  breaker.record_failure(0);
  EXPECT_FALSE(breaker.allow(1));
  EXPECT_FALSE(breaker.allow(2));
  EXPECT_TRUE(breaker.allow(kMillisecond));
  breaker.record_success(kMillisecond + 1);
  EXPECT_EQ(breaker.failures(), 1u);
  EXPECT_EQ(breaker.successes(), 1u);
  EXPECT_EQ(breaker.rejected(), 2u);
  EXPECT_EQ(breaker.probes(), 1u);
  EXPECT_EQ(breaker.trips(), 1u);
}

TEST(CircuitBreakerTest, StateNames) {
  EXPECT_EQ(std::string(breaker_state_name(CircuitBreaker::State::Closed)),
            "closed");
  EXPECT_EQ(std::string(breaker_state_name(CircuitBreaker::State::Open)),
            "open");
  EXPECT_EQ(std::string(breaker_state_name(CircuitBreaker::State::HalfOpen)),
            "half-open");
}

TEST(CircuitBreakerTest, RejectsBadConfig) {
  EXPECT_THROW(CircuitBreaker({/*failure_threshold=*/0, kMillisecond}),
               hq::Error);
  EXPECT_THROW(CircuitBreaker({/*failure_threshold=*/1, /*cooldown=*/0}),
               hq::Error);
}

}  // namespace
}  // namespace hq::fault
