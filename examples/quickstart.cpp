// Quickstart: run a small heterogeneous workload through the Hyper-Q
// management framework and print what happened.
//
//   $ ./quickstart
//
// Walkthrough:
//   1. pick two ported Rodinia applications (gaussian + needle),
//   2. build a Round-Robin launch order for 4 copies of each,
//   3. run them fully concurrent (8 streams) and fully serialized (1
//      stream) on the simulated Tesla K20,
//   4. compare makespan and energy, and show the concurrent timeline.
#include <cstdio>

#include "common/table.hpp"

#include "hyperq/harness.hpp"
#include "hyperq/metrics.hpp"
#include "hyperq/schedule.hpp"
#include "rodinia/registry.hpp"
#include "trace/ascii_timeline.hpp"

int main() {
  using namespace hq;

  // 1-2. Workload: X = gaussian, Y = needle, m = n = 4, Round-Robin order
  // (X1 Y1 X2 Y2 ... — the paper's Figure 3b).
  Rng rng(1);
  const int counts[] = {4, 4};
  const auto schedule = fw::make_schedule(fw::Order::RoundRobin, counts, &rng);
  const auto workload = rodinia::build_workload(
      schedule, {"gaussian", "needle"}, {{}, {}});

  // 3. Fully concurrent: one stream per application.
  fw::HarnessConfig concurrent_cfg;
  concurrent_cfg.num_streams = 8;
  fw::Harness concurrent(concurrent_cfg);
  const auto conc = concurrent.run(workload);

  // ... and fully serialized: everything through one stream.
  fw::HarnessConfig serial_cfg;
  serial_cfg.num_streams = 1;
  fw::Harness serial(serial_cfg);
  const auto ser = serial.run(workload);

  // 4. Results.
  std::printf("workload: 4x gaussian + 4x needle (Round-Robin launch order)\n\n");
  std::printf("serialized (1 stream) : %s, %.2f J\n",
              format_duration(ser.makespan).c_str(), ser.energy_exact);
  std::printf("concurrent (8 streams): %s, %.2f J\n",
              format_duration(conc.makespan).c_str(), conc.energy_exact);
  std::printf("performance improvement: %s    energy improvement: %s\n\n",
              format_percent(fw::improvement(
                                 static_cast<double>(ser.makespan),
                                 static_cast<double>(conc.makespan)))
                  .c_str(),
              format_percent(fw::improvement(ser.energy_exact,
                                             conc.energy_exact))
                  .c_str());

  std::printf("concurrent execution timeline:\n");
  trace::AsciiTimelineOptions opt;
  opt.width = 100;
  std::printf("%s", render_ascii_timeline(*conc.trace, opt).c_str());
  return 0;
}
