// Deterministic discrete-event simulator.
//
// Single-threaded virtual-time engine: a binary heap of (time, sequence,
// callback) events with FIFO tie-breaking, so identical inputs always
// produce identical schedules — the property every experiment in this
// repository relies on.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "common/units.hpp"
#include "sim/task.hpp"

namespace hq::sim {

/// Discrete-event simulation engine with a virtual nanosecond clock.
class Simulator {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Destroys any still-suspended spawned tasks. Their local destructors run,
  /// so objects they reference (mutexes, events) must still be alive; in
  /// normal use every task has finished before the simulator is destroyed.
  ~Simulator();

  /// Current virtual time.
  TimeNs now() const { return now_; }

  /// Schedules a callback `delay` nanoseconds from now. Events scheduled for
  /// the same instant run in scheduling order.
  void schedule(DurationNs delay, std::function<void()> fn);

  /// Schedules a callback at absolute virtual time `t` (must be >= now()).
  void schedule_at(TimeNs t, std::function<void()> fn);

  /// Awaitable that suspends the current task for `d` nanoseconds. A zero
  /// delay still suspends and requeues, providing a deterministic yield
  /// point.
  auto delay(DurationNs d) {
    struct Awaiter {
      Simulator& sim;
      DurationNs dur;
      bool await_ready() const noexcept { return false; }
      void await_suspend(std::coroutine_handle<> h) const {
        sim.schedule(dur, [h] { h.resume(); });
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{*this, d};
  }

  /// Starts a root task: the simulator takes ownership of the coroutine and
  /// resumes it at the current virtual time (in spawn order relative to other
  /// events at the same instant).
  void spawn(Task task);

  /// Runs until the event queue is empty. Returns events processed by this
  /// call. Rethrows the first exception escaping a root task.
  std::size_t run();

  /// Runs all events with time <= t, then advances the clock to exactly t.
  std::size_t run_until(TimeNs t);

  /// Convenience: run_until(now() + d).
  std::size_t run_for(DurationNs d) { return run_until(now_ + d); }

  bool idle() const { return heap_.empty(); }
  std::size_t pending_events() const { return heap_.size(); }
  std::uint64_t events_processed() const { return events_processed_; }

  /// Number of spawned root tasks that have not yet completed.
  std::size_t live_tasks() const { return live_tasks_.size(); }

 private:
  friend struct Task::promise_type;

  struct Event {
    TimeNs time;
    std::uint64_t seq;
    std::function<void()> fn;
    bool operator>(const Event& other) const {
      if (time != other.time) return time > other.time;
      return seq > other.seq;
    }
  };

  /// Called from a root task's final suspend point.
  void on_root_task_finished(Task::Handle h);

  void dispatch_one();
  void reap_finished_tasks();

  TimeNs now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t events_processed_ = 0;
  std::vector<Event> heap_;  // min-heap via std::push_heap/pop_heap
  std::vector<Task::Handle> live_tasks_;
  std::vector<Task::Handle> finished_tasks_;
  std::exception_ptr pending_exception_;
};

}  // namespace hq::sim
