// Chrome-trace (chrome://tracing / Perfetto) JSON export of a recorded
// timeline. Each lane becomes a tid; spans become complete ("ph":"X") events
// with microsecond timestamps. Counter tracks (queue depth, occupancy,
// power) become counter ("ph":"C") events rendered by the viewer as stacked
// area charts under the span lanes.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "common/units.hpp"
#include "trace/trace.hpp"

namespace hq::trace {

/// One sample of a piecewise-constant counter track.
struct CounterPoint {
  TimeNs time = 0;
  double value = 0.0;
};

/// A named counter rendered as a "ph":"C" event sequence. Points must be in
/// non-decreasing time order (the order an event-driven sampler produces).
struct CounterTrack {
  std::string name;
  std::vector<CounterPoint> points;
};

/// Writes the recorder contents as a Chrome-trace JSON array.
void write_chrome_trace(const Recorder& recorder, std::ostream& os);

/// Same, with counter tracks appended to the event array after the spans.
void write_chrome_trace(const Recorder& recorder,
                        const std::vector<CounterTrack>& counters,
                        std::ostream& os);

/// Convenience: render to a string.
std::string chrome_trace_json(const Recorder& recorder);
std::string chrome_trace_json(const Recorder& recorder,
                              const std::vector<CounterTrack>& counters);

}  // namespace hq::trace
