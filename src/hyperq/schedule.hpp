// Application scheduling orders (paper Section III-C, Figure 3).
//
// Given a workload Ω of m copies of application AX and n copies of AY, the
// five techniques produce the launch orders of Figure 3:
//   Naive FIFO          X1 X2 .. Xm Y1 Y2 .. Yn
//   Round-Robin         X1 Y1 X2 Y2 ..            (leftovers appended)
//   Random Shuffle      random permutation of the Naive FIFO order
//   Reverse FIFO        Y1 Y2 .. Yn X1 X2 .. Xm   (type precedence swapped)
//   Reverse Round-Robin Y1 X1 Y2 X2 ..
//
// The generators work for any number of application types; with two types
// and m = n = 4 they reproduce Figure 3 exactly (asserted in tests).
#pragma once

#include <span>
#include <string>
#include <vector>

#include "common/rng.hpp"

namespace hq::fw {

enum class Order {
  NaiveFifo,
  RoundRobin,
  RandomShuffle,
  ReverseFifo,
  ReverseRoundRobin,
};

/// All five orders, in the paper's presentation sequence.
inline constexpr Order kAllOrders[] = {
    Order::NaiveFifo, Order::RoundRobin, Order::RandomShuffle,
    Order::ReverseFifo, Order::ReverseRoundRobin};

const char* order_name(Order order);

/// One schedule entry: application type index (into the caller's type list)
/// and 1-based instance number within that type, matching Figure 3's AX(i)
/// notation.
struct Slot {
  int type = 0;
  int instance = 1;
  friend bool operator==(const Slot&, const Slot&) = default;
};

/// Renders e.g. "X(3)" / "Y(1)" with the caller's type letters.
std::string slot_to_string(const Slot& slot, std::span<const std::string> names);

/// Builds the launch order for `counts[t]` instances of each type t.
/// `rng` is required for Order::RandomShuffle and ignored otherwise.
std::vector<Slot> make_schedule(Order order, std::span<const int> counts,
                                Rng* rng = nullptr);

}  // namespace hq::fw
