// Minimal command-line flag parser for the hqrun tool.
//
// Supports `--flag` (bool), `--key value` and `--key=value` forms, collects
// unknown-flag errors instead of aborting, and renders a usage block from
// the registered options.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

namespace hq::tools {

class ArgParser {
 public:
  /// Registers a value option (`--name <value>`).
  void add_option(const std::string& name, const std::string& help,
                  const std::string& default_value = "");
  /// Registers a boolean flag (`--name`).
  void add_flag(const std::string& name, const std::string& help);

  /// Parses argv; returns false (and fills error()) on unknown or malformed
  /// arguments.
  bool parse(int argc, const char* const* argv);

  /// Value of an option (default when not given on the command line).
  std::string get(const std::string& name) const;
  /// Integer value of an option; nullopt if not an integer.
  std::optional<long long> get_int(const std::string& name) const;
  bool get_flag(const std::string& name) const;
  /// True when the user supplied the option explicitly.
  bool provided(const std::string& name) const;

  const std::string& error() const { return error_; }
  std::string usage(const std::string& program) const;

 private:
  struct Option {
    std::string help;
    std::string value;
    bool is_flag = false;
    bool seen = false;
  };
  std::map<std::string, Option> options_;
  std::vector<std::string> order_;
  std::string error_;
};

}  // namespace hq::tools
