#include "trace/ascii_timeline.hpp"

#include <algorithm>
#include <map>
#include <sstream>

#include "common/check.hpp"

namespace hq::trace {
namespace {

char glyph_for(SpanKind kind) {
  switch (kind) {
    case SpanKind::MemcpyHtoD: return 'H';
    case SpanKind::MemcpyDtoH: return 'D';
    case SpanKind::Kernel: return 'K';
    case SpanKind::HostCompute: return 'h';
    case SpanKind::LockWait: return 'w';
  }
  return '?';
}

/// Copies have priority over host/wait glyphs, kernels over copies, so a
/// cell containing several activities shows the most device-relevant one.
int glyph_rank(SpanKind kind) {
  switch (kind) {
    case SpanKind::Kernel: return 3;
    case SpanKind::MemcpyHtoD: return 2;
    case SpanKind::MemcpyDtoH: return 2;
    case SpanKind::HostCompute: return 1;
    case SpanKind::LockWait: return 0;
  }
  return 0;
}

}  // namespace

std::string render_ascii_timeline(const Recorder& recorder,
                                  const AsciiTimelineOptions& options) {
  HQ_CHECK(options.width > 0);
  if (recorder.empty()) return "";

  const TimeNs t0 = options.begin.value_or(*recorder.min_time());
  const TimeNs t1 = options.end.value_or(*recorder.max_time());
  if (t1 <= t0) return "";
  const double span_ns = static_cast<double>(t1 - t0);
  const int width = options.width;

  // Lane -> (row characters, rank per cell for overwrite priority).
  std::map<std::int32_t, std::pair<std::string, std::vector<int>>> rows;
  for (const Span& s : recorder.spans()) {
    if (s.end <= t0 || s.begin >= t1) continue;
    auto [it, inserted] = rows.try_emplace(
        s.lane, std::string(static_cast<std::size_t>(width), '.'),
        std::vector<int>(static_cast<std::size_t>(width), -1));
    auto& [cells, ranks] = it->second;

    const TimeNs clipped_begin = std::max(s.begin, t0);
    const TimeNs clipped_end = std::min(s.end, t1);
    int c0 = static_cast<int>(static_cast<double>(clipped_begin - t0) /
                              span_ns * width);
    int c1 = static_cast<int>(static_cast<double>(clipped_end - t0) /
                              span_ns * width);
    c0 = std::clamp(c0, 0, width - 1);
    c1 = std::clamp(c1, c0 + 1, width);  // at least one visible cell
    const int rank = glyph_rank(s.kind);
    const char glyph = glyph_for(s.kind);
    for (int c = c0; c < c1; ++c) {
      if (rank >= ranks[static_cast<std::size_t>(c)]) {
        ranks[static_cast<std::size_t>(c)] = rank;
        cells[static_cast<std::size_t>(c)] = glyph;
      }
    }
  }

  std::size_t label_width = 0;
  for (const auto& [lane, row] : rows) {
    std::ostringstream label;
    label << options.lane_prefix << (lane + options.lane_label_base);
    label_width = std::max(label_width, label.str().size());
  }

  std::ostringstream os;
  os << std::string(label_width, ' ') << " |" << "t=" << format_duration(0)
     << " .. " << format_duration(t1 - t0) << "\n";
  for (const auto& [lane, row] : rows) {
    std::ostringstream label;
    label << options.lane_prefix << (lane + options.lane_label_base);
    std::string padded = label.str();
    padded.resize(label_width, ' ');
    os << padded << " |" << row.first << "|\n";
  }
  os << std::string(label_width, ' ')
     << "  H=HtoD copy  D=DtoH copy  K=kernel  h=host  w=lock wait  .=idle\n";
  return os.str();
}

}  // namespace hq::trace
