// Deterministic fault injection + recovery (src/fault) end to end: plan
// parsing, the zero-perturbation contract, seeded determinism, copy-engine
// degradation, retry/backoff, quarantine, watchdog detection, and the
// crash-safe sweep journal. Every harness run here keeps check_invariants
// on, so the fault-accounting oracle (invariant 8: injector stats ==
// observed on_fault_injected events, per kind) is re-proven implicitly by
// every test that completes.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "exec/journal.hpp"
#include "exec/sweep.hpp"
#include "fault/fault.hpp"
#include "hyperq/harness.hpp"
#include "hyperq/schedule.hpp"
#include "rodinia/registry.hpp"
#include "trace/trace.hpp"

namespace hq {
namespace {

// ------------------------------------------------------------ plan parsing

TEST(FaultPlanTest, ZeroKeywordYieldsEnabledZeroRatePlan) {
  const auto plan = fault::parse_fault_plan("zero");
  ASSERT_TRUE(plan.has_value());
  EXPECT_TRUE(plan->enabled);
  EXPECT_FALSE(plan->any_faults());
  EXPECT_EQ(fault_plan_to_string(*plan),
            fault_plan_to_string(fault::FaultPlan::zero()));
}

TEST(FaultPlanTest, ToStringParseRoundTrips) {
  const std::string spec =
      "seed=99,copy-stall-rate=0.25,copy-stall-us=50,copy-slow-rate=0.5,"
      "copy-slow-factor=1.5,launch-fail-rate=0.125,alloc-fail-rate=0.0625,"
      "poison-app=3,offline-smx=2,throttle-period-us=2000,"
      "throttle-duty-us=200,throttle-factor=1.25";
  std::string error;
  const auto plan = fault::parse_fault_plan(spec, &error);
  ASSERT_TRUE(plan.has_value()) << error;
  EXPECT_EQ(plan->seed, 99u);
  EXPECT_EQ(plan->copy_stall_ns, 50 * kMicrosecond);
  EXPECT_EQ(plan->poison_app, 3);
  EXPECT_EQ(plan->offline_smx, 2);
  EXPECT_TRUE(plan->any_faults());
  const auto reparsed = fault::parse_fault_plan(fault_plan_to_string(*plan));
  ASSERT_TRUE(reparsed.has_value());
  EXPECT_EQ(fault_plan_to_string(*reparsed), fault_plan_to_string(*plan));
}

TEST(FaultPlanTest, ToStringRoundTripsHighPrecisionDoubles) {
  fault::FaultPlan plan = fault::FaultPlan::zero();
  plan.copy_stall_rate = 0.1234567890123456;
  plan.copy_slowdown_factor = 1.0000001;
  plan.launch_failure_rate = 1.0 / 3.0;
  const auto reparsed = fault::parse_fault_plan(fault_plan_to_string(plan));
  ASSERT_TRUE(reparsed.has_value()) << fault_plan_to_string(plan);
  EXPECT_EQ(reparsed->copy_stall_rate, plan.copy_stall_rate);
  EXPECT_EQ(reparsed->copy_slowdown_factor, plan.copy_slowdown_factor);
  EXPECT_EQ(reparsed->launch_failure_rate, plan.launch_failure_rate);

  // Plans differing past the 6th significant digit must not serialize
  // identically (they would collide in the sweep-journal grid key).
  fault::FaultPlan close = plan;
  close.copy_stall_rate = 0.1234567890123457;
  EXPECT_NE(fault_plan_to_string(close), fault_plan_to_string(plan));
}

TEST(FaultPlanTest, MalformedSpecsReturnNulloptWithError) {
  std::string error;
  EXPECT_FALSE(fault::parse_fault_plan("", &error).has_value());
  EXPECT_NE(error.find("empty spec"), std::string::npos);
  EXPECT_FALSE(fault::parse_fault_plan("no-such-key=1", &error).has_value());
  EXPECT_NE(error.find("unknown key"), std::string::npos);
  EXPECT_FALSE(
      fault::parse_fault_plan("copy-stall-rate=1.5", &error).has_value());
  EXPECT_NE(error.find("rate in [0,1]"), std::string::npos);
  EXPECT_FALSE(
      fault::parse_fault_plan("copy-slow-factor=0.5", &error).has_value());
  EXPECT_NE(error.find("factor >= 1"), std::string::npos);
  EXPECT_FALSE(fault::parse_fault_plan("copy-stall-rate", &error).has_value());
  EXPECT_NE(error.find("key=value"), std::string::npos);
  EXPECT_FALSE(fault::parse_fault_plan("poison-app=-2", &error).has_value());
}

// --------------------------------------------------------- harness helpers

fw::HarnessConfig small_config(int ns, bool functional = false) {
  fw::HarnessConfig config;
  config.num_streams = ns;
  config.functional = functional;
  config.sensor.noise_stddev = 0.0;
  config.sensor.quantization = 0.0;
  return config;
}

/// 4 apps (2 gaussian + 2 nn) over `config.num_streams` streams, tiny
/// inputs. Deterministic for a fixed config.
fw::HarnessResult run_small(const fw::HarnessConfig& config, int na = 4) {
  Rng rng(7);
  const int counts[] = {na - na / 2, na / 2};
  const auto schedule = fw::make_schedule(fw::Order::NaiveFifo, counts, &rng);
  rodinia::AppParams params;
  params.size = 64;
  params.iterations = 2;
  const auto workload =
      rodinia::build_workload(schedule, {"gaussian", "nn"}, {params, params});
  fw::Harness harness(config);
  return harness.run(workload);
}

// ------------------------------------------------------- zero perturbation

TEST(FaultInjectorTest, ZeroRatePlanIsZeroPerturbation) {
  const auto baseline = run_small(small_config(4));
  auto config = small_config(4);
  config.fault_plan = fault::FaultPlan::zero();
  const auto with_injector = run_small(config);
  EXPECT_EQ(trace::digest(*with_injector.trace), trace::digest(*baseline.trace));
  EXPECT_EQ(with_injector.makespan, baseline.makespan);
  EXPECT_DOUBLE_EQ(with_injector.energy_exact, baseline.energy_exact);
  EXPECT_EQ(with_injector.degraded.stats.total(), 0u);
  EXPECT_FALSE(with_injector.degraded.degraded());
}

// ------------------------------------------------- copy-engine degradation

TEST(FaultInjectorTest, SeededCopyFaultsAreDeterministicAndSlowTheRun) {
  const auto baseline = run_small(small_config(4));
  auto config = small_config(4);
  config.fault_plan.enabled = true;
  config.fault_plan.seed = 5;
  config.fault_plan.copy_stall_rate = 0.5;
  config.fault_plan.copy_stall_ns = 50 * kMicrosecond;
  config.fault_plan.copy_slowdown_rate = 0.5;
  config.fault_plan.copy_slowdown_factor = 1.5;
  const auto a = run_small(config);
  const auto b = run_small(config);

  // Byte-identical replay: same plan + seed, same everything.
  EXPECT_EQ(trace::digest(*a.trace), trace::digest(*b.trace));
  EXPECT_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.degraded.stats.copy_stalls, b.degraded.stats.copy_stalls);
  EXPECT_EQ(a.degraded.stats.copy_slowdowns, b.degraded.stats.copy_slowdowns);

  // The faults actually fired and actually cost time.
  EXPECT_GT(a.degraded.stats.copy_stalls, 0u);
  EXPECT_GT(a.degraded.stats.copy_slowdowns, 0u);
  EXPECT_GT(a.degraded.stats.copy_stall_total_ns, 0u);
  EXPECT_GT(a.makespan, baseline.makespan);
  EXPECT_NE(trace::digest(*a.trace), trace::digest(*baseline.trace));
  EXPECT_FALSE(a.degraded.degraded());
}

TEST(FaultInjectorTest, ThrottleWindowsStretchCopies) {
  const auto baseline = run_small(small_config(4));
  auto config = small_config(4);
  config.fault_plan.enabled = true;
  config.fault_plan.throttle_period = kMillisecond;
  config.fault_plan.throttle_duration = 500 * kMicrosecond;
  config.fault_plan.throttle_factor = 2.0;
  const auto result = run_small(config);
  EXPECT_GT(result.degraded.stats.throttled_copies, 0u);
  EXPECT_GE(result.makespan, baseline.makespan);
  EXPECT_NE(trace::digest(*result.trace), trace::digest(*baseline.trace));
  EXPECT_FALSE(result.degraded.degraded());
}

// ------------------------------------------------------------ launch faults

TEST(FaultInjectorTest, TransientLaunchFailuresRetryAndPreserveOutputs) {
  // Rate 1 makes every launch fail max_retries times before the capped
  // final attempt succeeds: maximum retry pressure, zero aborts. Functional
  // outputs must be unaffected — retries change timing, never results.
  const auto baseline = run_small(small_config(4, /*functional=*/true));
  auto config = small_config(4, /*functional=*/true);
  config.fault_plan.enabled = true;
  config.fault_plan.launch_failure_rate = 1.0;
  const auto faulted = run_small(config);

  EXPECT_GT(faulted.degraded.stats.launch_failures, 0u);
  EXPECT_EQ(faulted.degraded.stats.launch_aborts, 0u);
  EXPECT_FALSE(faulted.degraded.degraded());
  EXPECT_TRUE(faulted.all_verified);
  EXPECT_GE(faulted.makespan, baseline.makespan);
  ASSERT_EQ(faulted.apps.size(), baseline.apps.size());
  for (std::size_t i = 0; i < faulted.apps.size(); ++i) {
    EXPECT_EQ(faulted.apps[i].output_digest, baseline.apps[i].output_digest)
        << "app " << i;
  }
}

TEST(FaultInjectorTest, PoisonedAppIsQuarantinedAndRestCompletes) {
  auto config = small_config(4);
  config.fault_plan.enabled = true;
  config.fault_plan.poison_app = 1;
  const auto result = run_small(config);

  ASSERT_EQ(result.degraded.quarantined.size(), 1u);
  EXPECT_EQ(result.degraded.quarantined[0].app_id, 1);
  EXPECT_EQ(result.degraded.quarantined[0].reason, "launch-aborted");
  EXPECT_GT(result.degraded.stats.launch_aborts, 0u);

  // NA-1 healthy apps still ran to completion.
  ASSERT_EQ(result.apps.size(), 4u);
  int completed = 0;
  for (const fw::AppMetrics& m : result.apps) {
    if (m.app_id == 1) {
      EXPECT_TRUE(m.quarantined);
      continue;
    }
    EXPECT_FALSE(m.quarantined) << "app " << m.app_id;
    EXPECT_GT(m.end_time, 0u) << "app " << m.app_id;
    ++completed;
  }
  EXPECT_EQ(completed, 3);
  EXPECT_GT(result.makespan, 0u);
}

// -------------------------------------------------------- allocation faults

TEST(FaultInjectorTest, AllocRetriesAbsorbModerateFailureRates) {
  // At rate 0.5 a buffer only sticks as failed after 8 consecutive bad
  // draws (p = 2^-8 per buffer): the bounded retry loop absorbs the faults
  // and nobody is quarantined, but the injector accounted every failure.
  auto config = small_config(4);
  config.fault_plan.enabled = true;
  config.fault_plan.seed = 11;
  config.fault_plan.host_alloc_failure_rate = 0.5;
  const auto result = run_small(config);
  EXPECT_GT(result.degraded.stats.host_alloc_failures, 0u);
  EXPECT_FALSE(result.degraded.degraded());
  EXPECT_GT(result.makespan, 0u);
}

TEST(FaultInjectorTest, CertainAllocFailureQuarantinesEveryApp) {
  auto config = small_config(4);
  config.fault_plan.enabled = true;
  config.fault_plan.host_alloc_failure_rate = 1.0;
  const auto result = run_small(config);
  ASSERT_EQ(result.degraded.quarantined.size(), 4u);
  for (const fault::QuarantinedApp& q : result.degraded.quarantined) {
    EXPECT_EQ(q.reason.rfind("allocation-failed:", 0), 0u)
        << "app " << q.app_id << " reason: " << q.reason;
  }
  EXPECT_GT(result.degraded.stats.host_alloc_failures, 0u);
}

// ------------------------------------------------------- compute degradation

TEST(FaultInjectorTest, OfflineSmxDegradesSpecAndNeverBelowOne) {
  fault::FaultPlan plan = fault::FaultPlan::zero();
  plan.offline_smx = 4;
  const auto spec = gpu::DeviceSpec::tesla_k20();
  EXPECT_EQ(fault::FaultInjector(plan).degraded(spec).num_smx,
            spec.num_smx - 4);
  plan.offline_smx = 1000;
  EXPECT_EQ(fault::FaultInjector(plan).degraded(spec).num_smx, 1);

  const auto baseline = run_small(small_config(4));
  auto config = small_config(4);
  config.fault_plan.enabled = true;
  config.fault_plan.offline_smx = spec.num_smx - 1;
  const auto degraded = run_small(config);
  EXPECT_GE(degraded.makespan, baseline.makespan);
  EXPECT_FALSE(degraded.degraded.degraded());
}

// ----------------------------------------------------------------- watchdog

TEST(FaultInjectorTest, WatchdogFlagsAppsPastDeadline) {
  // A 1 us deadline fires long before any app can finish: every app is
  // flagged. Detection only — the run still drains and reports.
  auto config = small_config(4);
  config.watchdog_timeout = kMicrosecond;
  const auto result = run_small(config);
  ASSERT_EQ(result.degraded.quarantined.size(), 4u);
  for (const fault::QuarantinedApp& q : result.degraded.quarantined) {
    EXPECT_EQ(q.reason, "watchdog-deadline-exceeded");
  }
}

TEST(FaultInjectorTest, GenerousWatchdogIsZeroPerturbation) {
  const auto baseline = run_small(small_config(4));
  auto config = small_config(4);
  config.watchdog_timeout = 3600 * 1000 * kMillisecond;  // one sim hour
  const auto result = run_small(config);
  EXPECT_TRUE(result.degraded.quarantined.empty());
  EXPECT_EQ(trace::digest(*result.trace), trace::digest(*baseline.trace));
  EXPECT_EQ(result.makespan, baseline.makespan);
}

// ---------------------------------------------------------- structured errors

TEST(HarnessErrorTest, EmptyWorkloadIsStructuredError) {
  fw::Harness harness(small_config(2));
  try {
    harness.run({});
    FAIL() << "expected hq::Error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("empty workload"), std::string::npos)
        << e.what();
  }
}

// ------------------------------------------------------------ sweep journal

exec::SweepGrid journal_grid() {
  exec::SweepGrid grid;
  grid.app_sets = {{"gaussian", "nn"}};
  grid.na = {4};
  grid.ns = {2, 4};
  grid.orders = {fw::Order::NaiveFifo};
  grid.memory_sync = {false, true};
  grid.seeds = {42};
  grid.base.functional = false;
  grid.base.sensor.noise_stddev = 0.0;
  grid.base.sensor.quantization = 0.0;
  grid.params.size = 64;
  grid.params.iterations = 2;
  return grid;
}

TEST(SweepJournalTest, OutcomeLineRoundTripsEveryField) {
  const exec::SweepGrid grid = journal_grid();
  const auto points = exec::SweepRunner::expand(grid);
  const exec::SweepOutcome outcome =
      exec::SweepRunner::run_point(grid, points[1]);
  const std::string line = exec::journal_outcome_line(outcome);
  const auto parsed = exec::parse_journal_outcome(line, points);
  ASSERT_TRUE(parsed.has_value()) << line;
  EXPECT_EQ(parsed->point.index, outcome.point.index);
  EXPECT_EQ(parsed->point.label(), outcome.point.label());
  EXPECT_EQ(parsed->makespan, outcome.makespan);
  EXPECT_EQ(parsed->trace_digest, outcome.trace_digest);
  EXPECT_EQ(parsed->all_verified, outcome.all_verified);
  EXPECT_EQ(parsed->faults_injected, outcome.faults_injected);
  EXPECT_EQ(parsed->quarantined_apps, outcome.quarantined_apps);
  // Doubles round-trip exactly (shortest to_chars form, strtod back).
  EXPECT_EQ(parsed->energy_exact, outcome.energy_exact);
  EXPECT_EQ(parsed->average_power, outcome.average_power);
  EXPECT_EQ(parsed->peak_power, outcome.peak_power);
  EXPECT_EQ(parsed->average_occupancy, outcome.average_occupancy);
}

TEST(SweepJournalTest, TornAndForeignLinesAreIgnored) {
  const exec::SweepGrid grid = journal_grid();
  const auto points = exec::SweepRunner::expand(grid);
  const exec::SweepOutcome outcome =
      exec::SweepRunner::run_point(grid, points[0]);
  const std::uint64_t key = exec::sweep_grid_key(grid, points);

  std::stringstream journal;
  journal << exec::journal_header_line(key, points.size()) << "\n"
          << exec::journal_outcome_line(outcome) << "\n"
          << "point index=1 makespan=123";  // torn: crash mid-write, no `end`
  std::vector<std::optional<exec::SweepOutcome>> cached;
  EXPECT_EQ(exec::load_journal(journal, key, points, &cached), 1u);
  ASSERT_EQ(cached.size(), points.size());
  EXPECT_TRUE(cached[0].has_value());
  EXPECT_FALSE(cached[1].has_value());
  EXPECT_EQ(cached[0]->trace_digest, outcome.trace_digest);

  // Out-of-range indices are ignored too.
  std::string foreign = exec::journal_outcome_line(outcome);
  foreign.replace(foreign.find("index=0"), 7, "index=99");
  std::stringstream oob;
  oob << exec::journal_header_line(key, points.size()) << "\n" << foreign;
  cached.clear();
  EXPECT_EQ(exec::load_journal(oob, key, points, &cached), 0u);
}

TEST(SweepJournalTest, GridMismatchIsStructuredError) {
  const exec::SweepGrid grid = journal_grid();
  const auto points = exec::SweepRunner::expand(grid);
  const std::uint64_t key = exec::sweep_grid_key(grid, points);
  std::stringstream journal;
  journal << exec::journal_header_line(key ^ 1, points.size()) << "\n";
  std::vector<std::optional<exec::SweepOutcome>> cached;
  try {
    exec::load_journal(journal, key, points, &cached);
    FAIL() << "expected hq::Error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("grid mismatch"), std::string::npos)
        << e.what();
  }
}

TEST(SweepJournalTest, GridKeyTracksFaultPlan) {
  exec::SweepGrid grid = journal_grid();
  const auto points = exec::SweepRunner::expand(grid);
  const std::uint64_t plain = exec::sweep_grid_key(grid, points);
  grid.base.fault_plan = fault::FaultPlan::zero();
  EXPECT_NE(exec::sweep_grid_key(grid, points), plain);
  grid.base.fault_plan.seed = 1;
  grid.base.fault_plan.copy_stall_rate = 0.5;
  EXPECT_NE(exec::sweep_grid_key(grid, points),
            exec::sweep_grid_key(journal_grid(),
                                 exec::SweepRunner::expand(journal_grid())));
}

TEST(SweepJournalTest, GridKeyTracksBaseConfigAndParams) {
  const exec::SweepGrid base = journal_grid();
  const auto points = exec::SweepRunner::expand(base);
  const std::uint64_t plain = exec::sweep_grid_key(base, points);

  // Every result-affecting base-config change must change the key, or
  // --resume would silently splice cached outcomes from the old
  // configuration into the new sweep.
  exec::SweepGrid g = base;
  g.base.device = gpu::DeviceSpec::fermi_single_queue();
  EXPECT_NE(exec::sweep_grid_key(g, points), plain);

  g = base;
  g.params.size = *base.params.size * 2;
  EXPECT_NE(exec::sweep_grid_key(g, points), plain);

  g = base;
  g.base.launch_stagger += kMicrosecond;
  EXPECT_NE(exec::sweep_grid_key(g, points), plain);

  g = base;
  g.base.retry.max_attempts += 1;
  EXPECT_NE(exec::sweep_grid_key(g, points), plain);

  g = base;
  g.base.watchdog_timeout = kMillisecond;
  EXPECT_NE(exec::sweep_grid_key(g, points), plain);

  g = base;
  g.base.blocking_transfers = !g.base.blocking_transfers;
  EXPECT_NE(exec::sweep_grid_key(g, points), plain);
}

TEST(SweepJournalTest, ResumeWithEmptyJournalStillWritesHeader) {
  const exec::SweepGrid grid = journal_grid();
  exec::SweepRunner runner;
  const std::string path =
      ::testing::TempDir() + "hq_fault_test_empty_journal.txt";
  // A crash before the header flush (or a touched file) leaves an empty
  // journal; resuming from it must still produce a headered journal that a
  // later --resume accepts.
  { std::ofstream touch(path, std::ios::trunc); }
  const auto first = runner.run(grid, {.jobs = 1, .progress = {},
                                       .journal_path = path, .resume = true});
  const auto resumed = runner.run(grid, {.jobs = 1, .progress = {},
                                         .journal_path = path,
                                         .resume = true});
  EXPECT_EQ(exec::combined_digest(resumed), exec::combined_digest(first));
  std::remove(path.c_str());
}

TEST(SweepJournalTest, InterruptedSweepResumesByteIdentical) {
  exec::SweepGrid grid = journal_grid();
  grid.base.fault_plan.enabled = true;
  grid.base.fault_plan.seed = 3;
  grid.base.fault_plan.copy_stall_rate = 0.25;
  exec::SweepRunner runner;

  // Reference: uninterrupted, no journal.
  const auto reference =
      runner.run(grid, {.jobs = 1, .progress = {}, .journal_path = {},
                        .resume = false});
  ASSERT_EQ(reference.size(), 4u);

  // Journaled run, then simulate a crash by truncating to header + 2 points.
  const std::string path = ::testing::TempDir() + "hq_fault_test_journal.txt";
  (void)runner.run(grid, {.jobs = 2, .progress = {}, .journal_path = path,
                          .resume = false});
  std::vector<std::string> lines;
  {
    std::ifstream in(path);
    std::string line;
    while (std::getline(in, line)) lines.push_back(line);
  }
  ASSERT_GE(lines.size(), 5u);  // header + 4 points
  {
    std::ofstream out(path, std::ios::trunc);
    for (std::size_t i = 0; i < 3; ++i) out << lines[i] << "\n";
  }

  // Resume re-runs only the missing points; the result must be
  // byte-identical to the uninterrupted run, reports and metrics included.
  const auto resumed =
      runner.run(grid, {.jobs = 2, .progress = {}, .journal_path = path,
                        .resume = true});
  ASSERT_EQ(resumed.size(), reference.size());
  EXPECT_EQ(exec::combined_digest(resumed), exec::combined_digest(reference));
  EXPECT_EQ(exec::render_report(resumed), exec::render_report(reference));
  EXPECT_EQ(exec::sweep_metrics_json(resumed),
            exec::sweep_metrics_json(reference));

  // Resuming under a different plan is a structured error, never a silent
  // mix of incompatible results.
  exec::SweepGrid other = grid;
  other.base.fault_plan.seed = 4;
  EXPECT_THROW(runner.run(other, {.jobs = 1, .progress = {},
                                  .journal_path = path, .resume = true}),
               Error);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace hq
