// Per-SMX resource accounting.
//
// An SMX (Kepler streaming multiprocessor) holds a limited number of
// co-resident thread blocks, bounded by four independent resources: block
// slots, threads, registers and shared memory. The block scheduler packs
// blocks onto SMXs until one of these is exhausted (the LEFTOVER policy).
#pragma once

#include <algorithm>
#include <cstdint>

#include "common/check.hpp"
#include "common/units.hpp"
#include "gpusim/device_spec.hpp"

namespace hq::gpu {

/// Resource demand of a single thread block.
struct BlockDemand {
  int threads = 0;
  std::uint32_t registers = 0;
  Bytes shared_mem = 0;
};

/// One streaming multiprocessor's occupancy state.
class Smx {
 public:
  Smx(const DeviceSpec& spec, int index)
      : index_(index),
        max_blocks_(spec.max_blocks_per_smx),
        max_threads_(spec.max_threads_per_smx),
        max_registers_(spec.registers_per_smx),
        max_shared_mem_(spec.shared_mem_per_smx) {}

  int index() const { return index_; }
  int used_blocks() const { return used_blocks_; }
  int used_threads() const { return used_threads_; }
  int free_blocks() const { return max_blocks_ - used_blocks_; }
  int free_threads() const { return max_threads_ - used_threads_; }
  std::uint32_t free_registers() const { return max_registers_ - used_registers_; }
  Bytes free_shared_mem() const { return max_shared_mem_ - used_shared_mem_; }

  /// How many blocks of the given demand fit right now (0 if none).
  /// Rejects before dividing: on a saturated device (the steady state of
  /// every oversubscribed workload) most SMXs fail the first compare, so
  /// the scheduler's placement scan costs a handful of compares instead of
  /// three integer divisions per SMX.
  int fit_count(const BlockDemand& d) const {
    int n = free_blocks();
    if (n <= 0) return 0;
    if (d.threads > 0) {
      const int ft = free_threads();
      if (ft < d.threads) return 0;
      n = std::min(n, ft / d.threads);
    }
    if (d.registers > 0) {
      const std::uint32_t fr = free_registers();
      if (fr < d.registers) return 0;
      n = std::min(n, static_cast<int>(fr / d.registers));
    }
    if (d.shared_mem > 0) {
      const Bytes fs = free_shared_mem();
      if (fs < d.shared_mem) return 0;
      n = std::min(n, static_cast<int>(fs / d.shared_mem));
    }
    return n;
  }

  /// Claims resources for n blocks; caller must have verified fit_count.
  void occupy(const BlockDemand& d, int n) {
    HQ_CHECK_MSG(n >= 0 && n <= fit_count(d),
                 "SMX " << index_ << " cannot hold " << n << " more blocks");
    used_blocks_ += n;
    used_threads_ += d.threads * n;
    used_registers_ += d.registers * static_cast<std::uint32_t>(n);
    used_shared_mem_ += d.shared_mem * static_cast<Bytes>(n);
  }

  /// Returns resources of n completed blocks.
  void release(const BlockDemand& d, int n) {
    HQ_CHECK(n >= 0 && n <= used_blocks_);
    used_blocks_ -= n;
    used_threads_ -= d.threads * n;
    HQ_CHECK(used_threads_ >= 0);
    const auto regs = d.registers * static_cast<std::uint32_t>(n);
    HQ_CHECK(regs <= used_registers_);
    used_registers_ -= regs;
    const auto smem = d.shared_mem * static_cast<Bytes>(n);
    HQ_CHECK(smem <= used_shared_mem_);
    used_shared_mem_ -= smem;
  }

 private:
  int index_;
  int max_blocks_;
  int max_threads_;
  std::uint32_t max_registers_;
  Bytes max_shared_mem_;

  int used_blocks_ = 0;
  int used_threads_ = 0;
  std::uint32_t used_registers_ = 0;
  Bytes used_shared_mem_ = 0;
};

}  // namespace hq::gpu
