// Scenario: a GPU "service" receiving a continuous stream of heterogeneous
// jobs (the paper's §VI streaming-workloads future work). Jobs arrive as a
// Poisson process, each picks a Rodinia application at random, and the
// framework reports throughput, turnaround percentiles, and energy per job
// as the stream pool grows.
#include <cstdio>

#include "common/table.hpp"
#include "hyperq/streaming.hpp"
#include "rodinia/registry.hpp"

int main() {
  using namespace hq;

  fw::StreamingHarness::Config base;
  base.window = 100 * kMillisecond;
  base.mean_interarrival = 150 * kMicrosecond;
  rodinia::AppParams small = {256, 4, 1};
  rodinia::AppParams nn_params;
  nn_params.size = 20000;
  base.mix = {
      rodinia::make_app("nn", nn_params),
      rodinia::make_app("needle", small),
      rodinia::make_app("srad", small),
      rodinia::make_app("hotspot", small),
  };

  TextTable table;
  table.set_header({"streams", "jobs", "throughput/s", "mean turnaround",
                    "p95 turnaround", "energy/job"});
  for (int ns : {1, 2, 4, 8, 16, 32}) {
    auto config = base;
    config.num_streams = ns;
    const auto r = fw::StreamingHarness(config).run();
    table.add_row({std::to_string(ns), std::to_string(r.completed),
                   format_fixed(r.throughput_per_sec, 0),
                   format_duration(r.mean_turnaround),
                   format_duration(r.p95_turnaround),
                   format_fixed(r.energy_per_task * 1000.0, 1) + " mJ"});
  }
  std::printf("streaming GPU service: Poisson arrivals (mean gap 150 us), "
              "mix = {nn, needle, srad, hotspot}\n\n%s\n",
              table.render().c_str());
  std::printf("the paper's Hyper-Q insight in service form: widening the\n"
              "stream pool slashes queueing delay at identical hardware and\n"
              "near-identical energy per job.\n");
  return 0;
}
