// Deterministic discrete-event simulator.
//
// Single-threaded virtual-time engine: a 4-ary min-heap of (time, sequence,
// callback) events with FIFO tie-breaking, so identical inputs always
// produce identical schedules — the property every experiment in this
// repository relies on.
//
// Event callbacks are stored in sim::EventFn (see sim/event_fn.hpp): small
// trivially-copyable closures live inline in the heap entry, larger ones in
// a per-simulator recycled pool, so steady-state scheduling performs no
// heap allocation. Callback storage never affects dispatch order — the
// (time, seq) key alone decides it.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "common/units.hpp"
#include "sim/event_fn.hpp"
#include "sim/task.hpp"

namespace hq::sim {

/// Discrete-event simulation engine with a virtual nanosecond clock.
class Simulator {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Destroys any still-suspended spawned tasks. Their local destructors run,
  /// so objects they reference (mutexes, events) must still be alive; in
  /// normal use every task has finished before the simulator is destroyed.
  ~Simulator();

  /// Current virtual time.
  TimeNs now() const { return now_; }

  /// Schedules a callback `delay` nanoseconds from now. Events scheduled for
  /// the same instant run in scheduling order.
  template <typename F>
  void schedule(DurationNs delay, F&& fn) {
    schedule_at(now_ + delay, std::forward<F>(fn));
  }

  /// Schedules a callback at absolute virtual time `t` (must be >= now()).
  template <typename F>
  void schedule_at(TimeNs t, F&& fn) {
    check_not_past(t);
    heap_.push_back(Event{t, next_seq_++,
                          EventFn(pool_, callback_stats_, std::forward<F>(fn))});
    sift_up();
  }

  /// Awaitable that suspends the current task for `d` nanoseconds. A zero
  /// delay still suspends and requeues, providing a deterministic yield
  /// point.
  auto delay(DurationNs d) {
    struct Awaiter {
      Simulator& sim;
      DurationNs dur;
      bool await_ready() const noexcept { return false; }
      void await_suspend(std::coroutine_handle<> h) const {
        sim.schedule(dur, [h] { h.resume(); });
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{*this, d};
  }

  /// Starts a root task: the simulator takes ownership of the coroutine and
  /// resumes it at the current virtual time (in spawn order relative to other
  /// events at the same instant).
  void spawn(Task task);

  /// Pre-sizes the event heap for a run expected to keep up to `pending`
  /// events in flight at once (a capacity hint, not a limit). Harnesses call
  /// this with a workload-derived estimate so the heap never reallocates
  /// mid-run.
  void reserve_events(std::size_t pending) { heap_.reserve(pending); }

  /// Runs until the event queue is empty. Returns events processed by this
  /// call. Rethrows the first exception escaping a root task.
  std::size_t run();

  /// Runs all events with time <= t, then advances the clock to exactly t.
  std::size_t run_until(TimeNs t);

  /// Convenience: run_until(now() + d).
  std::size_t run_for(DurationNs d) { return run_until(now_ + d); }

  bool idle() const { return heap_.empty(); }
  std::size_t pending_events() const { return heap_.size(); }
  std::uint64_t events_processed() const { return events_processed_; }

  /// How scheduled callbacks were stored so far (inline / pooled / oversize).
  /// Deterministic for a fixed scenario; the perf budget test pins these.
  CallbackStats callback_stats() const {
    CallbackStats s = callback_stats_;
    s.pool_slabs = pool_.slabs();
    return s;
  }

  /// Number of spawned root tasks that have not yet completed.
  std::size_t live_tasks() const { return live_tasks_.size(); }

 private:
  friend struct Task::promise_type;

  struct Event {
    TimeNs time;
    std::uint64_t seq;
    EventFn fn;
    bool operator>(const Event& other) const {
      if (time != other.time) return time > other.time;
      return seq > other.seq;
    }
  };

  /// Called from a root task's final suspend point.
  void on_root_task_finished(Task::Handle h);

  void check_not_past(TimeNs t) const;
  void sift_up();
  void sift_down(Event tail);
  void dispatch_one();
  void reap_finished_tasks();

  /// Heap fan-out. Four children halve the sift depth versus a binary heap
  /// and the arity is invisible to results: (time, seq) is a strict total
  /// order, so the pop sequence is the same for any correct priority queue.
  static constexpr std::size_t kHeapArity = 4;

  TimeNs now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t events_processed_ = 0;
  // pool_ must be declared before heap_: pending pooled events destroyed
  // with the simulator return their slots to the pool, so the pool has to
  // outlive the heap (members are destroyed in reverse declaration order).
  EventPool pool_;
  CallbackStats callback_stats_;
  std::vector<Event> heap_;  // 4-ary min-heap on (time, seq)
  std::vector<Task::Handle> live_tasks_;
  std::vector<Task::Handle> finished_tasks_;
  std::exception_ptr pending_exception_;
};

}  // namespace hq::sim
