#include "hyperq/harness.hpp"

#include <algorithm>
#include <memory>

#include "check/invariants.hpp"
#include "common/check.hpp"

namespace hq::fw {

/// Everything a run's coroutines need, gathered behind one trivially-
/// destructible pointer (see the coroutine parameter rule in sim/task.hpp).
struct Harness::RunState {
  const HarnessConfig* config = nullptr;
  sim::Simulator* sim = nullptr;
  gpu::Device* device = nullptr;
  rt::Runtime* runtime = nullptr;
  trace::Recorder* recorder = nullptr;
  StreamManager* manager = nullptr;
  sim::Mutex* htod_lock = nullptr;
  PowerMonitor* monitor = nullptr;
  fault::FaultInjector* injector = nullptr;
  sim::CountdownLatch* latch = nullptr;
  std::vector<std::unique_ptr<Kernel>>* apps = nullptr;
  std::vector<Context>* contexts = nullptr;
  std::vector<AppMetrics>* metrics = nullptr;

  TimeNs phase_begin = 0;
  TimeNs phase_end = 0;
  Joules energy_begin = 0;
  Joules energy_end = 0;
  double occupancy_begin = 0;
  double occupancy_end = 0;
  /// Conjunction of verify() results, evaluated before buffers are freed.
  bool all_verified = true;
};

sim::Task Harness::child_task(RunState* st, int index) {
  Kernel* app = (*st->apps)[static_cast<std::size_t>(index)].get();
  Context& ctx = (*st->contexts)[static_cast<std::size_t>(index)];
  AppMetrics& metrics = (*st->metrics)[static_cast<std::size_t>(index)];

  // Streams are assigned dynamically, in launch order (Section III-C: "we
  // create an independent thread for each application, and dynamically
  // assign GPU streams to these threads as they are needed").
  ctx.stream = st->manager->acquire();

  if (st->config->memory_sync) {
    // Section III-B: a mutex around the entire HtoD transfer stage gives a
    // pseudo-burst transfer — all of this application's transfers complete
    // before another application takes control of the copy queue.
    const TimeNs requested = st->sim->now();
    auto guard = co_await st->htod_lock->scoped_lock();
    const TimeNs acquired = st->sim->now();
    if (st->recorder != nullptr && acquired > requested) {
      st->recorder->add(ctx.stream.id, ctx.app_id, trace::SpanKind::LockWait,
                        "htod-lock", requested, acquired);
    }
    co_await app->transferMemory(ctx, Direction::HostToDevice);
    guard.reset();
  } else {
    co_await app->transferMemory(ctx, Direction::HostToDevice);
  }

  co_await app->executeKernel(ctx);
  co_await app->transferMemory(ctx, Direction::DeviceToHost);

  metrics.end_time = st->sim->now();
  // A launch that exhausted its retry budget leaves the stream in a sticky
  // fault state (later submissions fail fast, so the child still drains).
  // Quarantine the app; the rest of the schedule completes normally.
  if (st->injector != nullptr && !metrics.quarantined &&
      st->runtime->stream_fault(ctx.stream) != rt::Status::Ok) {
    metrics.quarantined = true;
    metrics.quarantine_reason = "launch-aborted";
  }
  st->latch->count_down();
}

sim::Task Harness::watchdog_task(RunState* st) {
  co_await st->sim->delay(st->config->watchdog_timeout);
  // Detection only: flag every app that missed the deadline. The simulation
  // still drains (all injected delays are finite), so the run completes and
  // reports the stragglers instead of hanging silently.
  for (std::size_t i = 0; i < st->metrics->size(); ++i) {
    AppMetrics& m = (*st->metrics)[i];
    if (m.end_time == 0 && !m.quarantined) {
      m.quarantined = true;
      m.quarantine_reason = "watchdog-deadline-exceeded";
    }
  }
}

sim::Task Harness::parent_task(RunState* st) {
  // Phase 1 (untimed, as in the paper): instantiate, allocate, initialize.
  for (std::size_t i = 0; i < st->apps->size(); ++i) {
    Kernel& app = *(*st->apps)[i];
    Context& ctx = (*st->contexts)[i];
    // Host initialization only matters when the real algorithms run: in
    // timing-only mode kernels never read the buffers, so filling them (and
    // the hundreds of millions of RNG draws some apps spend doing it) is
    // pure host-side overhead with zero effect on the simulated schedule.
    const bool init_host = st->config->functional;
    if (st->injector == nullptr) {
      app.allocateHostMemory(ctx);
      app.allocateDeviceMemory(ctx);
      if (init_host) app.initializeHostMemory(ctx);
      continue;
    }
    // Under fault injection a pinned allocation can exhaust its bounded
    // retries; quarantine the app and let the rest of the schedule run.
    try {
      app.allocateHostMemory(ctx);
      app.allocateDeviceMemory(ctx);
      if (init_host) app.initializeHostMemory(ctx);
    } catch (const Error& e) {
      AppMetrics& m = (*st->metrics)[i];
      m.quarantined = true;
      m.quarantine_reason = std::string("allocation-failed: ") + e.what();
    }
  }

  if (st->config->monitor_power) st->monitor->start();
  st->phase_begin = st->sim->now();
  st->energy_begin = st->device->energy();
  st->occupancy_begin = st->device->occupancy_integral_seconds();
  if (st->config->watchdog_timeout > 0) {
    st->sim->spawn(watchdog_task(st));
  }

  // Phase 2 (timed): launch each application on its own child thread, in
  // schedule order, with a small stagger that prejudices execution order to
  // follow launch order. Apps quarantined in phase 1 keep their latch slot
  // but are never launched (and consume no stagger).
  bool first_launch = true;
  for (std::size_t i = 0; i < st->apps->size(); ++i) {
    AppMetrics& m = (*st->metrics)[i];
    if (m.quarantined) {
      st->latch->count_down();
      continue;
    }
    if (!first_launch && st->config->launch_stagger > 0) {
      co_await st->sim->delay(st->config->launch_stagger);
    }
    first_launch = false;
    m.launch_time = st->sim->now();
    st->sim->spawn(child_task(st, static_cast<int>(i)));
  }
  co_await st->latch->wait();

  st->phase_end = st->sim->now();
  st->energy_end = st->device->energy();
  st->occupancy_end = st->device->occupancy_integral_seconds();
  if (st->config->monitor_power) st->monitor->stop();

  // Verification must see the DtoH results, so it runs before the frees.
  // Quarantined apps never produced output and are excluded.
  if (st->config->functional) {
    for (std::size_t i = 0; i < st->apps->size(); ++i) {
      if ((*st->metrics)[i].quarantined) continue;
      st->all_verified = st->all_verified &&
                         (*st->apps)[i]->verify((*st->contexts)[i]);
      (*st->metrics)[i].output_digest =
          (*st->apps)[i]->output_digest((*st->contexts)[i]);
    }
  }

  // Phase 3 (untimed): free everything.
  for (std::size_t i = 0; i < st->apps->size(); ++i) {
    Kernel& app = *(*st->apps)[i];
    Context& ctx = (*st->contexts)[i];
    app.freeHostMemory(ctx);
    app.freeDeviceMemory(ctx);
  }
}

HarnessResult Harness::run(const std::vector<WorkloadItem>& workload) {
  HQ_CHECK_MSG(!workload.empty(),
               "Harness::run: empty workload (need at least one application)");

  // The injector (when a plan is enabled) is built first: SMX offlining
  // degrades the spec every other component sees, and the runtime needs the
  // injector for launch/allocation fault decisions.
  std::unique_ptr<fault::FaultInjector> injector;
  gpu::DeviceSpec device_spec = config_.device;
  if (config_.fault_plan.enabled) {
    injector = std::make_unique<fault::FaultInjector>(config_.fault_plan);
    device_spec = injector->degraded(device_spec);
  }

  sim::Simulator sim;
  // Capacity hints from the workload shape: the event heap's high-water mark
  // and the span count both scale with the number of concurrently-resident
  // apps. Over-reserving slightly is cheap; reallocating mid-run is not.
  sim.reserve_events(256 + 16 * workload.size());
  auto recorder = std::make_shared<trace::Recorder>();
  recorder->reserve(64 * workload.size());
  gpu::Device device(sim, device_spec, recorder.get());
  rt::RuntimeOptions rt_options;
  rt_options.functional = config_.functional;
  rt_options.retry = config_.retry;
  rt_options.fault_injector = injector.get();
  rt::Runtime runtime(sim, device, rt_options);
  nvml::ManagementLibrary nvml(sim, device, config_.sensor);
  StreamManager manager(runtime, config_.num_streams);
  sim::Mutex htod_lock(sim);
  sim::CountdownLatch latch(sim, workload.size());
  PowerMonitor monitor(sim, nvml, config_.power_period);

  std::unique_ptr<check::InvariantChecker> checker;
  if (config_.check_invariants) {
    checker = std::make_unique<check::InvariantChecker>(device_spec);
  }
  std::shared_ptr<obs::TelemetryObserver> telemetry;
  gpu::ObserverFanout fanout;
  gpu::DeviceObserver* observer = checker.get();
  if (config_.collect_telemetry) {
    telemetry = std::make_shared<obs::TelemetryObserver>(device_spec);
    // Both observers are passive, so fanning out changes nothing about the
    // simulated schedule (the zero-perturbation golden tests pin this).
    fanout.add(checker.get());
    fanout.add(telemetry.get());
    observer = &fanout;
  }
  if (observer != nullptr) device.set_observer(observer);
  if (injector != nullptr) {
    // Faults report through the same chain as device events, so the checker
    // can reconcile every on_fault_injected against the injector's stats.
    injector->set_observer(observer);
    device.set_copy_fault_hook(
        [inj = injector.get()](TimeNs now, gpu::CopyDirection dir,
                               gpu::OpId op, Bytes bytes, DurationNs base) {
          return inj->copy_service_penalty(now, dir, op, bytes, base);
        });
  }

  std::vector<std::unique_ptr<Kernel>> apps;
  std::vector<Context> contexts;
  std::vector<AppMetrics> metrics;
  apps.reserve(workload.size());
  for (std::size_t i = 0; i < workload.size(); ++i) {
    apps.push_back(workload[i].factory());
    HQ_CHECK_MSG(apps.back() != nullptr,
                 "factory for '" << workload[i].type_name << "' returned null");
    Context ctx;
    ctx.sim = &sim;
    ctx.runtime = &runtime;
    ctx.htod_lock = &htod_lock;
    ctx.recorder = recorder.get();
    ctx.app_id = static_cast<int>(i);
    ctx.functional = config_.functional;
    ctx.transfer_chunk_bytes = config_.transfer_chunk_bytes;
    ctx.blocking_transfers = config_.blocking_transfers;
    contexts.push_back(ctx);
    AppMetrics m;
    m.app_id = static_cast<int>(i);
    m.type = workload[i].type_name;
    metrics.push_back(std::move(m));
  }

  RunState state;
  state.config = &config_;
  state.sim = &sim;
  state.device = &device;
  state.runtime = &runtime;
  state.recorder = recorder.get();
  state.manager = &manager;
  state.htod_lock = &htod_lock;
  state.monitor = &monitor;
  state.injector = injector.get();
  state.latch = &latch;
  state.apps = &apps;
  state.contexts = &contexts;
  state.metrics = &metrics;

  sim.spawn(parent_task(&state));
  sim.run();
  HQ_CHECK_MSG(sim.live_tasks() == 0, "run finished with live tasks");
  const std::uint64_t run_events = sim.events_processed();
  const sim::CallbackStats run_callback_stats = sim.callback_stats();

  if (checker != nullptr) {
    checker->finalize(device);
    checker->finalize_runtime(runtime);
    if (injector != nullptr) checker->finalize_faults(injector->stats());
    HQ_CHECK_MSG(checker->ok(),
                 "invariant violations:\n" << checker->report());
  }

  HarnessResult result;
  result.phase_begin = state.phase_begin;
  result.phase_end = state.phase_end;
  result.makespan = state.phase_end - state.phase_begin;
  result.energy_exact = state.energy_end - state.energy_begin;
  result.energy_sensor =
      monitor.energy_between(state.phase_begin, state.phase_end);
  result.average_power =
      monitor.average_power(state.phase_begin, state.phase_end);
  result.peak_power = monitor.peak_power(state.phase_begin, state.phase_end);
  if (result.makespan > 0) {
    result.average_occupancy = (state.occupancy_end - state.occupancy_begin) /
                               to_seconds(result.makespan);
  }
  result.power_trace = monitor.samples();
  result.device_stats = device.stats();
  result.events_processed = run_events;
  result.callback_stats = run_callback_stats;

  if (telemetry != nullptr) telemetry->finalize();

  // One shared index: per-app extraction over NA apps costs O(spans) total
  // instead of the O(NA * spans) the per-app by_app scans would.
  const trace::AppIndex index(*recorder);
  for (std::size_t i = 0; i < apps.size(); ++i) {
    AppMetrics& m = metrics[i];
    m.htod_effective_latency =
        effective_transfer_latency(index, m.app_id,
                                   trace::SpanKind::MemcpyHtoD)
            .value_or(0);
    m.dtoh_effective_latency =
        effective_transfer_latency(index, m.app_id,
                                   trace::SpanKind::MemcpyDtoH)
            .value_or(0);
    m.htod_own_time =
        own_transfer_time(index, m.app_id, trace::SpanKind::MemcpyHtoD);
    m.htod_bytes = apps[i]->htod_bytes();
    m.dtoh_bytes = apps[i]->dtoh_bytes();
    const auto& spans = index.spans_for(m.app_id);
    if (!spans.empty()) {
      TimeNs first = spans.front()->begin;
      for (const trace::Span* s : spans) first = std::min(first, s->begin);
      m.first_activity = first;
    }
  }
  if (telemetry != nullptr) {
    // attribution() is sorted by app_id == workload index.
    for (const obs::AppAttribution& a : telemetry->attribution()) {
      if (a.app_id < 0 || a.app_id >= static_cast<int>(metrics.size())) {
        continue;
      }
      AppMetrics& m = metrics[static_cast<std::size_t>(a.app_id)];
      m.htod_interleave_count = a.foreign_htod_count;
      m.htod_interleave_bytes = a.foreign_htod_bytes;
    }
  }
  result.all_verified = state.all_verified;
  for (const AppMetrics& m : metrics) {
    if (m.quarantined) {
      result.degraded.quarantined.push_back(
          {m.app_id, m.type, m.quarantine_reason});
    }
  }
  if (injector != nullptr) result.degraded.stats = injector->stats();
  result.apps = std::move(metrics);
  result.trace = std::move(recorder);
  result.telemetry = std::move(telemetry);
  return result;
}

obs::RunInfo telemetry_run_info(const HarnessConfig& config,
                                const HarnessResult& result,
                                std::string workload, std::string order) {
  obs::RunInfo info;
  info.workload = std::move(workload);
  info.num_apps = static_cast<int>(result.apps.size());
  info.num_streams = config.num_streams;
  info.order = std::move(order);
  info.memory_sync = config.memory_sync;
  info.makespan = result.makespan;
  info.energy_j = result.energy_exact;
  info.average_power_w = result.average_power;
  info.peak_power_w = result.peak_power;
  info.average_occupancy = result.average_occupancy;
  info.trace_digest = result.trace ? trace::digest(*result.trace) : 0;
  return info;
}

std::vector<obs::AppReport> telemetry_app_reports(const HarnessResult& result) {
  std::vector<obs::AppReport> out;
  out.reserve(result.apps.size());
  for (const AppMetrics& m : result.apps) {
    obs::AppReport r;
    r.app_id = m.app_id;
    r.type = m.type;
    r.htod_effective_latency = m.htod_effective_latency;
    r.dtoh_effective_latency = m.dtoh_effective_latency;
    r.htod_own_time = m.htod_own_time;
    r.htod_bytes = m.htod_bytes;
    r.dtoh_bytes = m.dtoh_bytes;
    r.htod_interleave_count = m.htod_interleave_count;
    r.htod_interleave_bytes = m.htod_interleave_bytes;
    out.push_back(std::move(r));
  }
  return out;
}

}  // namespace hq::fw
