# Empty dependencies file for order_search.
# This may be replaced when dependencies are built.
