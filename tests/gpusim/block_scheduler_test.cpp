#include "gpusim/block_scheduler.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "sim/simulator.hpp"

namespace hq::gpu {
namespace {

struct Completion {
  std::string name;
  TimeNs dispatch_time;
  TimeNs first_block_time;
  TimeNs complete_time;
  int waves;
};

class BlockSchedulerTest : public ::testing::Test {
 protected:
  BlockSchedulerTest() : spec_(DeviceSpec::tesla_k20()) { make_scheduler(); }

  void make_scheduler() {
    scheduler_ = std::make_unique<BlockScheduler>(
        sim_, spec_, [] {},
        [this](const KernelExec& e) {
          completions_.push_back(Completion{e.launch.name, e.dispatch_time,
                                            e.first_block_time,
                                            e.complete_time, e.waves});
        });
  }

  void dispatch(const std::string& name, std::uint32_t grid_blocks,
                std::uint32_t threads_per_block, DurationNs block_duration,
                std::uint32_t regs = 32, Bytes smem = 0) {
    auto exec = std::make_unique<KernelExec>();
    exec->launch = KernelLaunch{name,
                                Dim3{grid_blocks, 1, 1},
                                Dim3{threads_per_block, 1, 1},
                                regs,
                                smem,
                                block_duration,
                                0.0,
                                nullptr};
    scheduler_->dispatch(std::move(exec));
  }

  sim::Simulator sim_;
  DeviceSpec spec_;
  std::unique_ptr<BlockScheduler> scheduler_;
  std::vector<Completion> completions_;
};

TEST_F(BlockSchedulerTest, SingleBlockKernelRunsForBlockDuration) {
  dispatch("k", 1, 512, 5 * kMicrosecond);
  sim_.run();
  ASSERT_EQ(completions_.size(), 1u);
  EXPECT_EQ(completions_[0].complete_time, 5 * kMicrosecond);
  EXPECT_EQ(completions_[0].waves, 1);
}

TEST_F(BlockSchedulerTest, KernelFittingInOneWaveTakesOneBlockDuration) {
  // 104 resident blocks possible for 256-thread blocks (8 per SMX x 13);
  // 100 blocks fit in a single wave.
  dispatch("k", 100, 256, 10 * kMicrosecond);
  sim_.run();
  ASSERT_EQ(completions_.size(), 1u);
  EXPECT_EQ(completions_[0].complete_time, 10 * kMicrosecond);
  EXPECT_EQ(completions_[0].waves, 1);
}

TEST_F(BlockSchedulerTest, OversizedKernelExecutesInWaves) {
  // 256-thread blocks: 2048/256 = 8 per SMX -> 104 device-wide.
  // 1024 blocks need ceil(1024/104) = 10 waves.
  dispatch("fan2", 1024, 256, 3 * kMicrosecond);
  sim_.run();
  ASSERT_EQ(completions_.size(), 1u);
  EXPECT_EQ(completions_[0].waves, 10);
  EXPECT_EQ(completions_[0].complete_time, 30 * kMicrosecond);
}

TEST_F(BlockSchedulerTest, ResidentBlockCeilingIs208) {
  // 16 blocks of 128 threads per SMX (block-slot limited).
  dispatch("small", 500, 64, 100 * kMicrosecond, 16);
  sim_.run_until(1);
  EXPECT_EQ(scheduler_->resident_blocks(), spec_.max_resident_blocks());
  EXPECT_EQ(scheduler_->resident_blocks(), 208);
  sim_.run();
}

TEST_F(BlockSchedulerTest, LeftoverPolicyPacksSecondKernelIntoFreeSpace) {
  // First kernel uses one 512-thread block: a sliver of one SMX, which then
  // has only 1536 free threads (one 1024-thread slot).
  dispatch("tiny", 1, 512, 50 * kMicrosecond);
  // Second kernel fits entirely into the leftover space (12 SMX x 2 blocks
  // + 1 block on the shared SMX = 25) and completes before the first.
  dispatch("wide", 25, 1024, 10 * kMicrosecond);
  sim_.run();
  ASSERT_EQ(completions_.size(), 2u);
  EXPECT_EQ(completions_[0].name, "wide");
  EXPECT_EQ(completions_[0].complete_time, 10 * kMicrosecond);
  EXPECT_EQ(completions_[1].name, "tiny");
}

TEST_F(BlockSchedulerTest, OversubscribedKernelsOverlapViaLeftover) {
  // Paper Figure 5: five kernels totalling more than 208 thread blocks are
  // co-resident because the scheduler packs whatever fits.
  dispatch("needle_1", 89, 32, 40 * kMicrosecond);
  dispatch("needle_2", 88, 32, 40 * kMicrosecond);
  dispatch("fan1_a", 1, 512, 40 * kMicrosecond);
  dispatch("fan1_b", 1, 512, 40 * kMicrosecond);
  dispatch("fan2", 1024, 256, 40 * kMicrosecond);
  sim_.run_until(1);
  // 89+88+1+1 = 179 small/medium blocks placed, plus fan2 filling leftover.
  EXPECT_GT(scheduler_->resident_blocks(), 179);
  EXPECT_EQ(scheduler_->kernels_in_flight(), 5u);
  sim_.run();
  EXPECT_EQ(completions_.size(), 5u);
}

TEST_F(BlockSchedulerTest, StrictDispatchOrderNoSkipAhead) {
  // A kernel that saturates the device's threads (1024-thread blocks: 2 per
  // SMX, 26 resident; 52 blocks = 2 full waves), then a tiny one. The tiny
  // kernel must not start until the big one's final wave completes, because
  // every wave leaves zero free threads.
  dispatch("big", 52, 1024, 10 * kMicrosecond, 16);
  dispatch("tiny", 1, 32, kMicrosecond);
  sim_.run();
  ASSERT_EQ(completions_.size(), 2u);
  const auto& tiny = completions_[0].name == "tiny" ? completions_[0]
                                                    : completions_[1];
  EXPECT_EQ(tiny.first_block_time, 20 * kMicrosecond);
}

TEST_F(BlockSchedulerTest, ManySmallKernelsRunFullyConcurrently) {
  for (int i = 0; i < 13; ++i) {
    // Spelled with += to dodge GCC 12's -Wrestrict false positive on
    // `const char* + std::string&&` at -O2 (PR 105651).
    std::string name("k");
    name += std::to_string(i);
    dispatch(name, 1, 1024, 20 * kMicrosecond);
  }
  sim_.run();
  ASSERT_EQ(completions_.size(), 13u);
  for (const auto& c : completions_) {
    EXPECT_EQ(c.complete_time, 20 * kMicrosecond) << c.name;
  }
}

TEST_F(BlockSchedulerTest, ContentionSensitivitySlowsBusyDevice) {
  // Fill half the device (52 blocks x 256 threads = 13312 of 26624
  // threads), then dispatch a contention-sensitive kernel.
  dispatch("filler", 52, 256, 100 * kMicrosecond);
  auto exec = std::make_unique<KernelExec>();
  exec->launch = KernelLaunch{"sensitive", Dim3{1, 1, 1}, Dim3{256, 1, 1},
                              32,          0,             10 * kMicrosecond,
                              1.0,         nullptr};
  scheduler_->dispatch(std::move(exec));
  sim_.run();
  ASSERT_EQ(completions_.size(), 2u);
  const auto& s = completions_[0].name == "sensitive" ? completions_[0]
                                                      : completions_[1];
  // Placed at occupancy 0.5 with sensitivity 1.0: 10us * 1.5 = 15us.
  EXPECT_EQ(s.complete_time - s.first_block_time, 15 * kMicrosecond);
}

TEST_F(BlockSchedulerTest, OccupancyDropsToZeroAfterCompletion) {
  dispatch("k", 64, 256, 5 * kMicrosecond);
  sim_.run();
  EXPECT_EQ(scheduler_->resident_blocks(), 0);
  EXPECT_EQ(scheduler_->resident_threads(), 0);
  EXPECT_DOUBLE_EQ(scheduler_->thread_occupancy(), 0.0);
  EXPECT_EQ(scheduler_->kernels_in_flight(), 0u);
}

TEST_F(BlockSchedulerTest, SharedMemoryLimitsResidency) {
  // 48 KiB per SMX, 24 KiB per block -> 2 blocks per SMX, 26 device-wide.
  dispatch("smem_heavy", 200, 64, 10 * kMicrosecond, 16, 24 * kKiB);
  sim_.run_until(1);
  EXPECT_EQ(scheduler_->resident_blocks(), 26);
  sim_.run();
  ASSERT_EQ(completions_.size(), 1u);
  // ceil(200/26) = 8 waves.
  EXPECT_EQ(completions_[0].waves, 8);
}

TEST_F(BlockSchedulerTest, WavesMatchCeilOfBlocksOverResidency) {
  struct Case {
    std::uint32_t grid;
    std::uint32_t tpb;
    int expected_waves;
  };
  // 256-thread blocks -> 104 resident; 1024-thread blocks -> 26 resident.
  const std::vector<Case> cases = {
      {1, 256, 1}, {104, 256, 1}, {105, 256, 2}, {208, 256, 2},
      {209, 256, 3}, {26, 1024, 1}, {27, 1024, 2},
  };
  for (const auto& c : cases) {
    completions_.clear();
    sim::Simulator fresh;
    BlockScheduler sched(
        fresh, spec_, [] {},
        [this](const KernelExec& e) {
          completions_.push_back(Completion{e.launch.name, e.dispatch_time,
                                            e.first_block_time,
                                            e.complete_time, e.waves});
        });
    auto exec = std::make_unique<KernelExec>();
    exec->launch = KernelLaunch{"k", Dim3{c.grid, 1, 1}, Dim3{c.tpb, 1, 1},
                                16,  0, kMicrosecond, 0.0, nullptr};
    sched.dispatch(std::move(exec));
    fresh.run();
    ASSERT_EQ(completions_.size(), 1u);
    EXPECT_EQ(completions_[0].waves, c.expected_waves)
        << "grid=" << c.grid << " tpb=" << c.tpb;
  }
}

TEST_F(BlockSchedulerTest, InvalidLaunchConfigurationsThrow) {
  EXPECT_THROW(dispatch("too_many_threads", 1, 2048, kMicrosecond),
               hq::Error);
  // Register demand exceeding an SMX.
  EXPECT_THROW(dispatch("reg_hog", 1, 1024, kMicrosecond, 128), hq::Error);
  // Shared memory demand exceeding an SMX.
  EXPECT_THROW(dispatch("smem_hog", 1, 64, kMicrosecond, 16, 64 * kKiB),
               hq::Error);
}

}  // namespace
}  // namespace hq::gpu
