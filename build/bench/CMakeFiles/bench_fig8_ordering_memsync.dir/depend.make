# Empty dependencies file for bench_fig8_ordering_memsync.
# This may be replaced when dependencies are built.
